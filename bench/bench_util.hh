/**
 * @file
 * Shared fixture for the evaluation benches: builds the TPC-H database
 * at the configured scale factor (env AQUOMAN_SF, default 0.02), runs
 * queries through both paths, and extrapolates the machine-independent
 * traces to the paper's SF-1000 operating point so that Fig. 16-style
 * numbers land in the same regime the paper reports.
 */

#ifndef AQUOMAN_BENCH_BENCH_UTIL_HH
#define AQUOMAN_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "aquoman/device.hh"
#include "aquoman/perf_model.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

namespace aquoman::bench {

/** Benchmark scale factor (env AQUOMAN_SF). */
inline double
scaleFactor()
{
    const char *env = std::getenv("AQUOMAN_SF");
    return env ? std::atof(env) : 0.02;
}

/** The TPC-H fixture shared by the figure benches. */
struct Fixture
{
    double sf;
    tpch::TpchDatabase db;
    FlashDevice flash;
    ControllerSwitch sw;
    TableStore store;
    Catalog catalog;

    explicit Fixture(double sf_)
        : sf(sf_),
          db(tpch::TpchDatabase::generate(
              tpch::TpchConfig{sf_, 19920101})),
          flash(flashConfig()), sw(flash), store(sw)
    {
        db.installInto(catalog, store);
    }

    static FlashConfig
    flashConfig()
    {
        FlashConfig fc;
        fc.capacityBytes = 32ll << 30;
        return fc;
    }

    /**
     * AQUOMAN configuration whose capacity parameters are scaled from
     * the paper's 1TB operating point down to this fixture's data
     * size, so DRAM-overflow behaviour (Sec. VI-E cond. 4) reproduces.
     */
    AquomanConfig
    scaledDevice(std::int64_t paper_dram_bytes) const
    {
        AquomanConfig cfg;
        double ratio = sf / 1000.0;
        cfg.dramBytes = static_cast<std::int64_t>(
            static_cast<double>(paper_dram_bytes) * ratio);
        cfg.sorterBlockBytes = std::max<std::int64_t>(
            4096,
            static_cast<std::int64_t>((1ll << 30) * ratio));
        cfg.paperScaleRatio = 1.0 / ratio;
        return cfg;
    }

    EngineMetrics
    baselineMetrics(int q)
    {
        Executor ex(catalog, &sw);
        ex.run(tpch::tpchQuery(q, sf));
        return ex.metrics();
    }

    OffloadedQueryResult
    offload(int q, const AquomanConfig &cfg)
    {
        AquomanDevice device(catalog, sw, cfg);
        return device.runQuery(tpch::tpchQuery(q, sf));
    }
};

/** Scale a machine-independent trace linearly to SF-1000. */
inline EngineMetrics
scaleMetrics(const EngineMetrics &m, double sf)
{
    double k = 1000.0 / sf;
    EngineMetrics out = m;
    out.rowOps *= k;
    out.seqRowOps *= k;
    out.flashBytesRead = static_cast<std::int64_t>(m.flashBytesRead * k);
    out.touchedBaseBytes =
        static_cast<std::int64_t>(m.touchedBaseBytes * k);
    out.peakIntermediateBytes =
        static_cast<std::int64_t>(m.peakIntermediateBytes * k);
    out.totalIntermediateBytes =
        static_cast<std::int64_t>(m.totalIntermediateBytes * k);
    return out;
}

/** Scale a device trace linearly to SF-1000. */
inline AquomanRunStats
scaleStats(const AquomanRunStats &s, double sf)
{
    double k = 1000.0 / sf;
    AquomanRunStats out = s;
    out.deviceSeconds *= k;
    out.deviceFlashBytes =
        static_cast<std::int64_t>(s.deviceFlashBytes * k);
    out.deviceDramPeak = static_cast<std::int64_t>(s.deviceDramPeak * k);
    out.spillRows = static_cast<std::int64_t>(s.spillRows * k);
    out.spillGroups = static_cast<std::int64_t>(s.spillGroups * k);
    out.dmaBytes = static_cast<std::int64_t>(s.dmaBytes * k);
    out.hostResidual = scaleMetrics(s.hostResidual, sf);
    return out;
}

/** Print a section header. */
inline void
header(const std::string &title)
{
    std::printf("\n================================================"
                "====================\n%s\n"
                "================================================"
                "====================\n",
                title.c_str());
}

} // namespace aquoman::bench

#endif // AQUOMAN_BENCH_BENCH_UTIL_HH
