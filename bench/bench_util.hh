/**
 * @file
 * Shared fixture for the evaluation benches: builds the TPC-H database
 * at the configured scale factor (env AQUOMAN_SF, default 0.02), runs
 * queries through both paths, and extrapolates the machine-independent
 * traces to the paper's SF-1000 operating point so that Fig. 16-style
 * numbers land in the same regime the paper reports.
 */

#ifndef AQUOMAN_BENCH_BENCH_UTIL_HH
#define AQUOMAN_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "aquoman/device.hh"
#include "aquoman/perf_model.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

namespace aquoman::bench {

/** Benchmark scale factor (env AQUOMAN_SF). */
inline double
scaleFactor()
{
    const char *env = std::getenv("AQUOMAN_SF");
    return env ? std::atof(env) : 0.02;
}

/** The TPC-H fixture shared by the figure benches. */
struct Fixture
{
    double sf;
    tpch::TpchDatabase db;
    FlashDevice flash;
    ControllerSwitch sw;
    TableStore store;
    Catalog catalog;

    explicit Fixture(double sf_)
        : sf(sf_),
          db(tpch::TpchDatabase::generate(
              tpch::TpchConfig{sf_, 19920101})),
          flash(flashConfig()), sw(flash), store(sw)
    {
        db.installInto(catalog, store);
    }

    static FlashConfig
    flashConfig()
    {
        FlashConfig fc;
        fc.capacityBytes = 32ll << 30;
        return fc;
    }

    /**
     * AQUOMAN configuration whose capacity parameters are scaled from
     * the paper's 1TB operating point down to this fixture's data
     * size, so DRAM-overflow behaviour (Sec. VI-E cond. 4) reproduces.
     */
    AquomanConfig
    scaledDevice(std::int64_t paper_dram_bytes) const
    {
        AquomanConfig cfg;
        double ratio = sf / 1000.0;
        cfg.dramBytes = static_cast<std::int64_t>(
            static_cast<double>(paper_dram_bytes) * ratio);
        cfg.sorterBlockBytes = std::max<std::int64_t>(
            4096,
            static_cast<std::int64_t>((1ll << 30) * ratio));
        cfg.paperScaleRatio = 1.0 / ratio;
        return cfg;
    }

    EngineMetrics
    baselineMetrics(int q)
    {
        Executor ex(catalog, &sw);
        ex.run(tpch::tpchQuery(q, sf));
        return ex.metrics();
    }

    OffloadedQueryResult
    offload(int q, const AquomanConfig &cfg)
    {
        AquomanDevice device(catalog, sw, cfg);
        return device.runQuery(tpch::tpchQuery(q, sf));
    }
};

/** Scale a machine-independent trace linearly to SF-1000. */
inline EngineMetrics
scaleMetrics(const EngineMetrics &m, double sf)
{
    double k = 1000.0 / sf;
    EngineMetrics out = m;
    out.rowOps *= k;
    out.seqRowOps *= k;
    out.flashBytesRead = static_cast<std::int64_t>(m.flashBytesRead * k);
    out.touchedBaseBytes =
        static_cast<std::int64_t>(m.touchedBaseBytes * k);
    out.peakIntermediateBytes =
        static_cast<std::int64_t>(m.peakIntermediateBytes * k);
    out.totalIntermediateBytes =
        static_cast<std::int64_t>(m.totalIntermediateBytes * k);
    out.hostFinishBytes =
        static_cast<std::int64_t>(m.hostFinishBytes * k);
    return out;
}

/**
 * Scale a device trace linearly to SF-1000. The Table-Task ledger is
 * scaled per stage component and the totals recomputed from it, so the
 * exact-sum invariants the profiler audits (per-task stage seconds sum
 * to task seconds; task seconds sum to deviceSeconds; task flash bytes
 * partition deviceFlashBytes) survive scaling bitwise.
 */
inline AquomanRunStats
scaleStats(const AquomanRunStats &s, double sf)
{
    double k = 1000.0 / sf;
    AquomanRunStats out = s;
    if (out.tasks.empty()) {
        out.deviceSeconds *= k;
        out.deviceFlashBytes =
            static_cast<std::int64_t>(s.deviceFlashBytes * k);
    } else {
        out.deviceSeconds = 0.0;
        out.deviceFlashBytes = 0;
        for (TableTaskRecord &t : out.tasks) {
            for (int i = 0; i < obs::kNumPipeStages; ++i)
                t.stages.sec[i] *= k;
            t.seconds = t.stages.total();
            t.flashBytes =
                static_cast<std::int64_t>(t.flashBytes * k);
            if (t.rowsIn >= 0)
                t.rowsIn = static_cast<std::int64_t>(t.rowsIn * k);
            if (t.rowsOut >= 0)
                t.rowsOut = static_cast<std::int64_t>(t.rowsOut * k);
            out.deviceSeconds += t.seconds;
            out.deviceFlashBytes += t.flashBytes;
        }
    }
    out.deviceDramPeak = static_cast<std::int64_t>(s.deviceDramPeak * k);
    out.zonePagesConsidered =
        static_cast<std::int64_t>(s.zonePagesConsidered * k);
    out.zonePagesSkipped =
        static_cast<std::int64_t>(s.zonePagesSkipped * k);
    out.spillRows = static_cast<std::int64_t>(s.spillRows * k);
    out.spillGroups = static_cast<std::int64_t>(s.spillGroups * k);
    out.dmaBytes = static_cast<std::int64_t>(s.dmaBytes * k);
    out.hostResidual = scaleMetrics(s.hostResidual, sf);
    return out;
}

/** Print a section header. */
inline void
header(const std::string &title)
{
    std::printf("\n================================================"
                "====================\n%s\n"
                "================================================"
                "====================\n",
                title.c_str());
}

/** Wall-clock seconds since construction (real time, not modelled). */
class WallTimer
{
  public:
    WallTimer() : start(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start;
};

/** Path given with "--json <path>", or empty when the flag is absent. */
inline std::string
jsonPathFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--json requires a path\n");
                std::exit(2);
            }
            return argv[i + 1];
        }
    }
    return std::string();
}

/**
 * One flat record for the --json output: numeric fields (printed with
 * %.17g so modelled seconds round-trip exactly) plus optional raw
 * fields whose values are pre-rendered JSON (histograms, StatSets).
 */
struct JsonRecord
{
    std::vector<std::pair<std::string, double>> fields;
    std::vector<std::pair<std::string, std::string>> raws;

    void
    add(const std::string &name, double value)
    {
        fields.emplace_back(name, value);
    }

    /** Attach @p json (an already-rendered JSON value) as @p name. */
    void
    addRaw(const std::string &name, std::string json)
    {
        raws.emplace_back(name, std::move(json));
    }
};

/** Render @p h as a JSON object string. */
inline std::string
histogramJson(const obs::Histogram &h)
{
    std::ostringstream os;
    h.toJson(os);
    return os.str();
}

/** Render @p s as a JSON object string. */
inline std::string
statSetJson(const StatSet &s)
{
    std::ostringstream os;
    s.toJson(os);
    return os.str();
}

inline void
writeRecordsArray(std::ostream &os, const std::vector<JsonRecord> &records)
{
    os << "[\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        os << "    {";
        bool first = true;
        for (const auto &[name, value] : records[i].fields) {
            os << (first ? "" : ", ") << '"' << name
               << "\": " << obs::jsonNumber(value);
            first = false;
        }
        for (const auto &[name, json] : records[i].raws) {
            os << (first ? "" : ", ") << '"' << name << "\": " << json;
            first = false;
        }
        os << "}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]";
}

/**
 * Write the bench's --json report:
 *   {"records": [...], "histograms": {...}, "trace": {...}}
 * The trace section reflects the global SimTracer (enabled flag, the
 * AQUOMAN_TRACE path if any, and the event count). Returns false (with
 * a message) when the file can't be opened.
 */
inline bool
writeJsonReport(
    const std::string &path, const std::vector<JsonRecord> &records,
    const std::vector<std::pair<std::string, obs::Histogram>> &histograms
        = {})
{
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    f << "{\n  \"records\": ";
    writeRecordsArray(f, records);
    f << ",\n  \"histograms\": {";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        f << (i ? ", " : "") << "\n    \"" << histograms[i].first
          << "\": ";
        histograms[i].second.toJson(f);
    }
    f << (histograms.empty() ? "" : "\n  ") << "},\n";
    const obs::SimTracer &tracer = obs::SimTracer::global();
    f << "  \"trace\": {\"enabled\": "
      << (tracer.enabled() ? "true" : "false") << ", \"path\": \""
      << obs::jsonEscape(tracer.envPath()) << "\", \"events\": "
      << tracer.eventCount() << "}\n}\n";
    return true;
}

/** One numeric column of a bench results table. */
struct TableColumn
{
    std::string header;
    int width = 10;
    int precision = 1;
};

/**
 * Fixed-width results-table printer shared by the figure benches: a
 * left-justified label column, numeric columns with per-column width
 * and precision, and an optional trailing text column.
 */
class StatTable
{
  public:
    StatTable(int label_width, std::vector<TableColumn> columns,
              int trailer_width = 0)
        : labelWidth(label_width), cols(std::move(columns)),
          trailerWidth(trailer_width)
    {
    }

    void
    printHeader(const std::string &label_header,
                const std::string &trailer_header = "") const
    {
        std::printf("%-*s", labelWidth, label_header.c_str());
        for (const TableColumn &c : cols)
            std::printf(" %*s", c.width, c.header.c_str());
        if (trailerWidth > 0)
            std::printf(" %*s", trailerWidth, trailer_header.c_str());
        std::printf("\n");
    }

    void
    printRow(const std::string &label, const std::vector<double> &vals,
             const std::string &trailer = "") const
    {
        std::printf("%-*s", labelWidth, label.c_str());
        for (std::size_t i = 0; i < vals.size() && i < cols.size(); ++i)
            std::printf(" %*.*f", cols[i].width, cols[i].precision,
                        vals[i]);
        if (trailerWidth > 0)
            std::printf(" %*s", trailerWidth, trailer.c_str());
        std::printf("\n");
    }

  private:
    int labelWidth;
    std::vector<TableColumn> cols;
    int trailerWidth;
};

} // namespace aquoman::bench

#endif // AQUOMAN_BENCH_BENCH_UTIL_HH
