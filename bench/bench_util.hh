/**
 * @file
 * Shared fixture for the evaluation benches: builds the TPC-H database
 * at the configured scale factor (env AQUOMAN_SF, default 0.02), runs
 * queries through both paths, and extrapolates the machine-independent
 * traces to the paper's SF-1000 operating point so that Fig. 16-style
 * numbers land in the same regime the paper reports.
 */

#ifndef AQUOMAN_BENCH_BENCH_UTIL_HH
#define AQUOMAN_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "aquoman/device.hh"
#include "aquoman/perf_model.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

namespace aquoman::bench {

/** Benchmark scale factor (env AQUOMAN_SF). */
inline double
scaleFactor()
{
    const char *env = std::getenv("AQUOMAN_SF");
    return env ? std::atof(env) : 0.02;
}

/** The TPC-H fixture shared by the figure benches. */
struct Fixture
{
    double sf;
    tpch::TpchDatabase db;
    FlashDevice flash;
    ControllerSwitch sw;
    TableStore store;
    Catalog catalog;

    explicit Fixture(double sf_)
        : sf(sf_),
          db(tpch::TpchDatabase::generate(
              tpch::TpchConfig{sf_, 19920101})),
          flash(flashConfig()), sw(flash), store(sw)
    {
        db.installInto(catalog, store);
    }

    static FlashConfig
    flashConfig()
    {
        FlashConfig fc;
        fc.capacityBytes = 32ll << 30;
        return fc;
    }

    /**
     * AQUOMAN configuration whose capacity parameters are scaled from
     * the paper's 1TB operating point down to this fixture's data
     * size, so DRAM-overflow behaviour (Sec. VI-E cond. 4) reproduces.
     */
    AquomanConfig
    scaledDevice(std::int64_t paper_dram_bytes) const
    {
        AquomanConfig cfg;
        double ratio = sf / 1000.0;
        cfg.dramBytes = static_cast<std::int64_t>(
            static_cast<double>(paper_dram_bytes) * ratio);
        cfg.sorterBlockBytes = std::max<std::int64_t>(
            4096,
            static_cast<std::int64_t>((1ll << 30) * ratio));
        cfg.paperScaleRatio = 1.0 / ratio;
        return cfg;
    }

    EngineMetrics
    baselineMetrics(int q)
    {
        Executor ex(catalog, &sw);
        ex.run(tpch::tpchQuery(q, sf));
        return ex.metrics();
    }

    OffloadedQueryResult
    offload(int q, const AquomanConfig &cfg)
    {
        AquomanDevice device(catalog, sw, cfg);
        return device.runQuery(tpch::tpchQuery(q, sf));
    }
};

/** Scale a machine-independent trace linearly to SF-1000. */
inline EngineMetrics
scaleMetrics(const EngineMetrics &m, double sf)
{
    double k = 1000.0 / sf;
    EngineMetrics out = m;
    out.rowOps *= k;
    out.seqRowOps *= k;
    out.flashBytesRead = static_cast<std::int64_t>(m.flashBytesRead * k);
    out.touchedBaseBytes =
        static_cast<std::int64_t>(m.touchedBaseBytes * k);
    out.peakIntermediateBytes =
        static_cast<std::int64_t>(m.peakIntermediateBytes * k);
    out.totalIntermediateBytes =
        static_cast<std::int64_t>(m.totalIntermediateBytes * k);
    out.hostFinishBytes =
        static_cast<std::int64_t>(m.hostFinishBytes * k);
    return out;
}

/** Scale a device trace linearly to SF-1000. */
inline AquomanRunStats
scaleStats(const AquomanRunStats &s, double sf)
{
    double k = 1000.0 / sf;
    AquomanRunStats out = s;
    out.deviceSeconds *= k;
    out.deviceFlashBytes =
        static_cast<std::int64_t>(s.deviceFlashBytes * k);
    out.deviceDramPeak = static_cast<std::int64_t>(s.deviceDramPeak * k);
    out.spillRows = static_cast<std::int64_t>(s.spillRows * k);
    out.spillGroups = static_cast<std::int64_t>(s.spillGroups * k);
    out.dmaBytes = static_cast<std::int64_t>(s.dmaBytes * k);
    out.hostResidual = scaleMetrics(s.hostResidual, sf);
    return out;
}

/** Print a section header. */
inline void
header(const std::string &title)
{
    std::printf("\n================================================"
                "====================\n%s\n"
                "================================================"
                "====================\n",
                title.c_str());
}

/** Wall-clock seconds since construction (real time, not modelled). */
class WallTimer
{
  public:
    WallTimer() : start(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start;
};

/** Path given with "--json <path>", or empty when the flag is absent. */
inline std::string
jsonPathFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--json requires a path\n");
                std::exit(2);
            }
            return argv[i + 1];
        }
    }
    return std::string();
}

/** One flat record of numeric fields for the --json output. */
struct JsonRecord
{
    std::vector<std::pair<std::string, double>> fields;

    void
    add(const std::string &name, double value)
    {
        fields.emplace_back(name, value);
    }
};

/**
 * Write @p records as a JSON array of flat objects. Doubles use %.17g
 * so modelled seconds round-trip exactly; integral values print with
 * no fraction. Returns false (with a message) when the file can't be
 * opened.
 */
inline bool
writeJsonRecords(const std::string &path,
                 const std::vector<JsonRecord> &records)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < records.size(); ++i) {
        std::fprintf(f, "  {");
        for (std::size_t j = 0; j < records[i].fields.size(); ++j) {
            const auto &[name, value] = records[i].fields[j];
            std::fprintf(f, "%s\"%s\": %.17g", j ? ", " : "",
                         name.c_str(), value);
        }
        std::fprintf(f, "}%s\n", i + 1 < records.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
}

} // namespace aquoman::bench

#endif // AQUOMAN_BENCH_BENCH_UTIL_HH
