/**
 * @file
 * Reproduces the Sec. VI-E / VIII-B offload behaviour table: per query,
 * whether it ran fully on AQUOMAN, suspended at a mid-plan aggregate,
 * or stayed on the host (regex over a large string heap); plus the
 * spill-over summary ("seven queries caused spillovers; only Q18's was
 * significant") and the Table-Task log of a representative query.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace aquoman;
using namespace aquoman::bench;

int
main()
{
    double sf = scaleFactor();
    Fixture fx(sf);
    HostModel host(HostConfig::large());
    header("Offload classification (paper: 14 full / {11,17,18,22} "
           "suspended / {9,13,16,20} host-only)");

    std::printf("%-5s %-8s %10s %12s %12s  %s\n", "query", "class",
                "dev stages", "host stages", "spill grps",
                "first host reason");
    int spilling = 0;
    for (int q : tpch::allQueryNumbers()) {
        EngineMetrics base = fx.baselineMetrics(q);
        OffloadedQueryResult r = fx.offload(q, fx.scaledDevice(40ll << 30));
        SystemEvaluation ev = evaluateOffload(base, r.stats, host);
        spilling += r.stats.spillGroups > 0;
        std::printf("q%-4d %-8s %10zu %12zu %12lld  %s\n", q,
                    offloadClassName(ev.offloadClass),
                    r.stats.deviceStages.size(),
                    r.stats.hostStages.size(),
                    static_cast<long long>(r.stats.spillGroups),
                    r.stats.hostStages.empty()
                        ? "-"
                        : r.stats.hostStages[0].second.substr(0, 60)
                              .c_str());
    }
    std::printf("\n%d queries caused Aggregate Group-By spill-overs at "
                "this scale (paper: 7 at SF-1000, Q18 dominant).\n",
                spilling);

    header("Table-Task program of q6 (paper Fig. 5 style)");
    OffloadedQueryResult q6 = fx.offload(6, fx.scaledDevice(40ll << 30));
    for (const auto &line : q6.stats.taskLog)
        std::printf("  %s\n", line.c_str());
    return 0;
}
