/**
 * @file
 * Reproduces the Sec. VIII-D rows/second comparison against FCAccel:
 * AQUOMAN sustains ~100.5M rows/s on the filter-and-aggregate q6 and
 * ~69M rows/s on the transform-heavy q1 (2.5x FCAccel's 27M rows/s,
 * thanks to the systolic Row Transformer).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace aquoman;
using namespace aquoman::bench;

int
main()
{
    double sf = scaleFactor();
    Fixture fx(sf);
    header("Sec VIII-D: AQUOMAN vs FCAccel throughput (M rows/s)");

    std::int64_t lineitem_rows = fx.db.lineitem->numRows();
    struct Ref { int q; double aq_paper; double fcaccel; };
    for (Ref ref : {Ref{6, 100.5, 111.0}, Ref{1, 69.0, 27.0}}) {
        OffloadedQueryResult r =
            fx.offload(ref.q, fx.scaledDevice(40ll << 30));
        double mrows = lineitem_rows / r.stats.deviceSeconds / 1e6;
        std::printf("q%-3d measured %6.1f M rows/s | paper AQUOMAN "
                    "%6.1f | FCAccel %6.1f\n",
                    ref.q, mrows, ref.aq_paper, ref.fcaccel);
    }
    std::printf("\npaper shape check: q6 runs near flash line rate; "
                "q1's extra row-transform work lowers rows/s but stays "
                "well above FCAccel's multi-cycle design.\n");
    return 0;
}
