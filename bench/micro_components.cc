/**
 * @file
 * Google-benchmark microbenchmarks of the AQUOMAN hardware-model
 * components: bitonic sorter, VCAS/TopK chain, merger, Aggregate
 * Group-By and PE interpretation. These measure the *simulator's* cost,
 * useful when scaling the benches to larger scale factors.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <string_view>

#include "aquoman/swissknife/bitonic.hh"
#include "flash/flash_device.hh"
#include "obs/metrics.hh"
#include "obs/profile.hh"
#include "obs/trace.hh"
#include "aquoman/swissknife/groupby.hh"
#include "aquoman/swissknife/merger.hh"
#include "aquoman/swissknife/streaming_sorter.hh"
#include "aquoman/swissknife/topk.hh"
#include "aquoman/pe_batch.hh"
#include "aquoman/transform_compiler.hh"
#include "columnstore/encoding.hh"
#include "common/batch_mode.hh"
#include "common/rng.hh"
#include "relalg/eval.hh"
#include "relalg/pred_kernel.hh"

namespace aquoman {
namespace {

KvStream
randomStream(std::int64_t n, std::uint64_t seed)
{
    Rng rng(seed);
    KvStream s(n);
    for (std::int64_t i = 0; i < n; ++i)
        s[i] = {rng.uniform(0, 1 << 30), i};
    return s;
}

void
BM_BitonicSortVector(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    BitonicSorter sorter(n);
    KvStream v = randomStream(n, 1);
    for (auto _ : state) {
        KvStream copy = v;
        sorter.sortVector(copy.data());
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BitonicSortVector)->Arg(8)->Arg(32)->Arg(64);

void
BM_TopKChain(benchmark::State &state)
{
    std::int64_t n = state.range(0);
    KvStream input = randomStream(n, 2);
    for (auto _ : state) {
        TopKAccelerator topk(100, 32);
        topk.pushAll(input);
        benchmark::DoNotOptimize(topk.finish());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TopKChain)->Arg(1 << 12)->Arg(1 << 16);

void
BM_MergerIntersect(benchmark::State &state)
{
    std::int64_t n = state.range(0);
    KvStream left = randomStream(n, 3);
    std::sort(left.begin(), left.end());
    KvStream right;
    for (std::int64_t k = 0; k < n / 4; ++k)
        right.push_back({k * 4, k});
    for (auto _ : state)
        benchmark::DoNotOptimize(intersectInner(left, right));
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MergerIntersect)->Arg(1 << 14)->Arg(1 << 18);

void
BM_GroupByAccelerator(benchmark::State &state)
{
    std::int64_t groups = state.range(0);
    Rng rng(4);
    std::vector<std::pair<std::int64_t, std::int64_t>> rows(1 << 16);
    for (auto &r : rows)
        r = {rng.uniform(0, groups - 1), rng.uniform(0, 100)};
    for (auto _ : state) {
        GroupByAccelerator gb(AquomanConfig{}, 1,
                              {HwAgg::Sum, HwAgg::Cnt});
        for (const auto &[g, v] : rows)
            gb.update({g}, {v, 0});
        benchmark::DoNotOptimize(gb.finish());
    }
    state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_GroupByAccelerator)->Arg(16)->Arg(1024)->Arg(100000);

void
BM_StreamingSorter(benchmark::State &state)
{
    std::int64_t n = state.range(0);
    AquomanConfig cfg;
    cfg.sorterBlockBytes = 1 << 16;
    StreamingSorter sorter(cfg);
    KvStream input = randomStream(n, 5);
    for (auto _ : state) {
        KvStream copy = input;
        benchmark::DoNotOptimize(sorter.sort(copy, true));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StreamingSorter)->Arg(1 << 14)->Arg(1 << 18);

void
BM_PeTransformRow(benchmark::State &state)
{
    std::map<std::string, ColumnType> schema = {
        {"ep", ColumnType::Decimal},
        {"disc", ColumnType::Decimal},
        {"tax", ColumnType::Decimal}};
    auto rev = mul(col("ep"), sub(litDec("1.00"), col("disc")));
    TransformResult tr = compileTransform(
        {{"disc_price", rev},
         {"charge", mul(rev, add(litDec("1.00"), col("tax")))}},
        schema, AquomanConfig{});
    SystolicArray array = tr.program->buildArray();
    std::vector<std::int64_t> in = {10000, 5, 4}, out;
    for (auto _ : state) {
        array.runRow(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PeTransformRow);

// ---------------------------------------------------------------------
// Row Selector / Row Transformer: scalar vs batched
// ---------------------------------------------------------------------

/** q6-shaped probe relation for the selector benchmarks. */
RelTable
selectorInput(std::int64_t rows)
{
    Rng rng(6);
    RelColumn ship("l_shipdate", ColumnType::Date);
    RelColumn disc("l_discount", ColumnType::Decimal);
    RelColumn qty("l_quantity", ColumnType::Decimal);
    RelColumn ep("l_extendedprice", ColumnType::Decimal);
    RelColumn tax("l_tax", ColumnType::Decimal);
    for (std::int64_t i = 0; i < rows; ++i) {
        ship.push(rng.uniform(8035, 10592)); // 1992..1998
        disc.push(rng.uniform(0, 10));
        qty.push(rng.uniform(100, 5000));
        ep.push(rng.uniform(100000, 10000000));
        tax.push(rng.uniform(0, 8));
    }
    RelTable t;
    t.addColumn(std::move(ship));
    t.addColumn(std::move(disc));
    t.addColumn(std::move(qty));
    t.addColumn(std::move(ep));
    t.addColumn(std::move(tax));
    return t;
}

/**
 * A q6/q19-shaped predicate: a selective leading date-range conjunct,
 * then a computed revenue comparison plus two cheap compares. The
 * shrinking selection only evaluates the computed conjunct at the
 * survivors of the date range — the Row Selector's canonical win.
 */
ExprPtr
selectorPredicate()
{
    auto rev = mul(col("l_extendedprice"),
                   sub(litDec("1.00"), col("l_discount")));
    auto charge = mul(rev, add(litDec("1.00"), col("l_tax")));
    return andE(
        andE(lt(col("l_shipdate"), litDateDays(9131)),
             ge(col("l_shipdate"), litDateDays(8766))),
        andE(andE(gt(rev, litDec("30000.00")),
                  lt(charge, litDec("80000.00"))),
             andE(ge(col("l_discount"), litDec("0.05")),
                  lt(col("l_quantity"), litDec("24.00")))));
}

/** Scalar selector: full-width predicate bitmap, then row gather. */
std::vector<std::int64_t>
runSelectorScalar(const ExprPtr &pred, const RelTable &t)
{
    BitVector bv = evalPredicate(pred, t);
    std::vector<std::int64_t> rows;
    for (std::int64_t i = 0; i < t.numRows(); ++i) {
        if (bv.get(i))
            rows.push_back(i);
    }
    return rows;
}

void
BM_RowSelectorScalar(benchmark::State &state)
{
    RelTable t = selectorInput(state.range(0));
    ExprPtr pred = selectorPredicate();
    for (auto _ : state)
        benchmark::DoNotOptimize(runSelectorScalar(pred, t).data());
    state.SetItemsProcessed(state.iterations() * t.numRows());
}
BENCHMARK(BM_RowSelectorScalar)->Arg(1 << 16)->Arg(1 << 20);

void
BM_RowSelectorBatched(benchmark::State &state)
{
    RelTable t = selectorInput(state.range(0));
    ExprPtr pred = selectorPredicate();
    for (auto _ : state) {
        SelectionVector sel = SelectionVector::dense(t.numRows());
        filterSelection(pred, t, sel);
        benchmark::DoNotOptimize(sel.size());
    }
    state.SetItemsProcessed(state.iterations() * t.numRows());
}
BENCHMARK(BM_RowSelectorBatched)->Arg(1 << 16)->Arg(1 << 20);

/** The Fig. 9 revenue transform compiled for the PE chain. */
TransformResult
transformerProgram()
{
    std::map<std::string, ColumnType> schema = {
        {"ep", ColumnType::Decimal},
        {"disc", ColumnType::Decimal},
        {"tax", ColumnType::Decimal}};
    auto rev = mul(col("ep"), sub(litDec("1.00"), col("disc")));
    return compileTransform(
        {{"disc_price", rev},
         {"charge", mul(rev, add(litDec("1.00"), col("tax")))}},
        schema, AquomanConfig{});
}

std::vector<std::vector<std::int64_t>>
transformerInput(std::int64_t rows)
{
    Rng rng(9);
    std::vector<std::vector<std::int64_t>> cols(3);
    for (auto &c : cols) {
        c.resize(rows);
        for (auto &v : c)
            v = rng.uniform(0, 20000);
    }
    return cols;
}

void
BM_RowTransformerScalar(benchmark::State &state)
{
    TransformResult tr = transformerProgram();
    SystolicArray array = tr.program->buildArray();
    auto cols = transformerInput(state.range(0));
    const std::int64_t n = state.range(0);
    std::vector<std::int64_t> in(3), out;
    std::vector<std::int64_t> sink(n);
    for (auto _ : state) {
        for (std::int64_t r = 0; r < n; ++r) {
            in[0] = cols[0][r];
            in[1] = cols[1][r];
            in[2] = cols[2][r];
            array.runRow(in, out);
            sink[r] = out[0] + out[1];
        }
        benchmark::DoNotOptimize(sink.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RowTransformerScalar)->Arg(1 << 16);

void
BM_RowTransformerBatched(benchmark::State &state)
{
    TransformResult tr = transformerProgram();
    PeBatchKernel kernel(tr.program->programs, 3);
    auto cols = transformerInput(state.range(0));
    const std::int64_t n = state.range(0);
    std::vector<std::int64_t> o0(n), o1(n), sink(n);
    const std::int64_t *ins[3] =
        {cols[0].data(), cols[1].data(), cols[2].data()};
    std::int64_t *outs[2] = {o0.data(), o1.data()};
    for (auto _ : state) {
        kernel.run(ins, n, outs, 2);
        for (std::int64_t r = 0; r < n; ++r)
            sink[r] = o0[r] + o1[r];
        benchmark::DoNotOptimize(sink.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RowTransformerBatched)->Arg(1 << 16);

// ---------------------------------------------------------------------
// Column-codec decode throughput
// ---------------------------------------------------------------------

/**
 * Synthetic columns that force each codec to win the per-page size
 * contest: a low-cardinality shuffle (dictionary), long runs (RLE),
 * and a dense high-cardinality band (frame-of-reference). The bench
 * decodes every page back to int64 and reports logical GB/s, i.e. the
 * software line rate backing the simulator's Decode pipe stage.
 */
std::vector<std::int64_t>
codecInput(ColumnCodec codec, std::int64_t n)
{
    Rng rng(static_cast<std::uint64_t>(codec) + 11);
    std::vector<std::int64_t> v(n);
    switch (codec) {
      case ColumnCodec::Dict:
        // 64 distinct wide-spread values, shuffled: too sparse for
        // FOR, too choppy for RLE, dict table cheap per page.
        for (std::int64_t i = 0; i < n; ++i)
            v[i] = rng.uniform(0, 63) * 1'000'000'007;
        break;
      case ColumnCodec::Rle:
        for (std::int64_t i = 0; i < n; ++i)
            v[i] = (i / 500) * 7;
        break;
      default:
        // > kMaxDictValues distinct values in a narrow band.
        for (std::int64_t i = 0; i < n; ++i)
            v[i] = 1'000'000'000 + rng.uniform(0, 999'999);
        break;
    }
    return v;
}

void
decodeBench(benchmark::State &state, ColumnCodec codec)
{
    const std::int64_t n = state.range(0);
    std::vector<std::int64_t> vals = codecInput(codec, n);
    ColumnEncoding enc = encodeValues(vals.data(), n, 8);
    // The input must actually exercise the codec under test.
    std::int64_t hits = 0;
    for (const EncodedPage &p : enc.pages)
        hits += p.codec == codec ? p.rows : 0;
    if (hits * 2 < n) {
        state.SkipWithError("input did not select intended codec");
        return;
    }
    std::vector<std::int64_t> out;
    out.reserve(n);
    for (auto _ : state) {
        out.clear();
        for (const EncodedPage &p : enc.pages)
            decodePage(p.bytes.data(), p.bytes.size(), out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() * n * 8);
    state.counters["ratio"] =
        static_cast<double>(n * 8) / enc.encodedBytes;
}

void
BM_DecodeDict(benchmark::State &state)
{
    decodeBench(state, ColumnCodec::Dict);
}
BENCHMARK(BM_DecodeDict)->Arg(1 << 20);

void
BM_DecodeRle(benchmark::State &state)
{
    decodeBench(state, ColumnCodec::Rle);
}
BENCHMARK(BM_DecodeRle)->Arg(1 << 20);

void
BM_DecodeFor(benchmark::State &state)
{
    decodeBench(state, ColumnCodec::For);
}
BENCHMARK(BM_DecodeFor)->Arg(1 << 20);

void
BM_EncodedPredicate(benchmark::State &state)
{
    // Predicate evaluation directly on dictionary codes, no decode.
    const std::int64_t n = state.range(0);
    std::vector<std::int64_t> vals = codecInput(ColumnCodec::Dict, n);
    ColumnEncoding enc = encodeValues(vals.data(), n, 8);
    for (auto _ : state) {
        std::int64_t matches = 0;
        for (const EncodedPage &p : enc.pages)
            matches += countMatchesEncoded(p, ZoneOp::Lt,
                                           32ll * 1'000'000'007);
        benchmark::DoNotOptimize(matches);
    }
    state.SetBytesProcessed(state.iterations() * n * 8);
}
BENCHMARK(BM_EncodedPredicate)->Arg(1 << 20);

// ---------------------------------------------------------------------
// Disabled-observability overhead check
// ---------------------------------------------------------------------

double
bestOfSeconds(int reps, const std::function<void()> &fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        best = std::min(
            best, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
    }
    return best;
}

/**
 * The observability layer promises that with metrics, tracing, and
 * profile collection disabled, each enabled() guard on the hot paths
 * is negligible: one call site (registry, tracer, or profiler check)
 * under 1% of one 8KB FlashDevice page read — the cheapest
 * instrumented operation. The loop body exercises all three guards,
 * so the per-call-site cost is the iteration cost over three.
 * Returns 0 on success, 1 on violation.
 */
int
checkDisabledObservabilityOverhead()
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    obs::SimTracer &tracer = obs::SimTracer::global();
    if (reg.enabled() || tracer.enabled()) {
        std::printf("observability enabled; skipping disabled-overhead "
                    "check\n");
        return 0;
    }
    // Profile collection defaults on; measure the guard on its
    // disabled path, then restore.
    bool profile_was = obs::profileCollectionEnabled();
    obs::setProfileCollection(false);

    constexpr int kGuardIters = 1 << 22;
    auto guard_loop = [&] {
        int hits = 0;
        for (int i = 0; i < kGuardIters; ++i) {
            if (reg.enabled())
                ++hits;
            if (tracer.enabled())
                ++hits;
            if (obs::profileCollectionEnabled())
                ++hits;
        }
        benchmark::DoNotOptimize(hits);
    };
    constexpr int kGuardsPerIter = 3;
    double guard_sec =
        bestOfSeconds(5, guard_loop) / kGuardIters / kGuardsPerIter;
    obs::setProfileCollection(profile_was);

    FlashConfig fc;
    FlashDevice flash(fc);
    FlashExtent ext = flash.allocate(fc.pageBytes);
    std::vector<std::uint8_t> buf(fc.pageBytes, 1);
    flash.write(ext, 0, buf.data(), fc.pageBytes);
    constexpr int kReadIters = 1 << 12;
    auto read_loop = [&] {
        for (int i = 0; i < kReadIters; ++i)
            flash.read(ext, 0, buf.data(), fc.pageBytes);
        benchmark::DoNotOptimize(buf.data());
    };
    double read_sec = bestOfSeconds(5, read_loop) / kReadIters;

    double overhead = read_sec > 0.0 ? guard_sec / read_sec : 0.0;
    std::printf("disabled-observability guard: %.2fns per call site, "
                "8KB flash read: %.0fns, overhead: %.3f%% (budget "
                "1%%)\n",
                guard_sec * 1e9, read_sec * 1e9, overhead * 100.0);
    if (overhead >= 0.01) {
        std::fprintf(stderr,
                     "FAIL: disabled-observability overhead %.3f%% "
                     ">= 1%%\n",
                     overhead * 100.0);
        return 1;
    }
    return 0;
}

/**
 * Per-kernel throughput sections: each specialized kernel against its
 * scalar reference, in Mrows/s, on the q6-shaped probe relation. Not
 * gated — the numbers locate regressions when the end-to-end gate in
 * checkBatchSpeedup trips.
 */
void
reportKernelSections()
{
    constexpr std::int64_t kRows = 1 << 20;
    RelTable t = selectorInput(kRows);
    std::printf("per-kernel throughput (%lld rows, best of 5):\n",
                static_cast<long long>(kRows));
    auto line = [&](const char *name, double scalar_sec,
                    double kernel_sec, std::int64_t rows) {
        std::printf("  %-17s scalar %7.1f Mrows/s, kernel %7.1f "
                    "Mrows/s (%.1fx)\n",
                    name, rows / scalar_sec / 1e6,
                    rows / kernel_sec / 1e6, scalar_sec / kernel_sec);
    };

    // Branch-free int64/date compare: one column vs one constant.
    {
        ExprPtr p = lt(col("l_shipdate"), litDateDays(9131));
        double scalar = bestOfSeconds(5, [&] {
            benchmark::DoNotOptimize(evalPredicate(p, t).popcount());
        });
        auto k = ConjunctKernel::tryCompile(p, t);
        ConjunctKernel::Scratch s;
        BitVector m;
        double spec = bestOfSeconds(5, [&] {
            k->evalMask(t, nullptr, 0, kRows, m, s);
            benchmark::DoNotOptimize(m.popcount());
        });
        line("int64 compare:", scalar, spec, kRows);
    }

    // Decimal arithmetic subtree: scaled mul + promotion + compare.
    {
        ExprPtr p = gt(mul(col("l_extendedprice"),
                           sub(litDec("1.00"), col("l_discount"))),
                       litDec("30000.00"));
        double scalar = bestOfSeconds(5, [&] {
            benchmark::DoNotOptimize(evalPredicate(p, t).popcount());
        });
        auto k = ConjunctKernel::tryCompile(p, t);
        ConjunctKernel::Scratch s;
        BitVector m;
        double spec = bestOfSeconds(5, [&] {
            k->evalMask(t, nullptr, 0, kRows, m, s);
            benchmark::DoNotOptimize(m.popcount());
        });
        line("decimal arith:", scalar, spec, kRows);
    }

    // Full AND-fold: interpreted conjunct-at-a-time sparse merges
    // (AQUOMAN_BATCH=0 path) vs the compiled word-wise fold.
    {
        ExprPtr p = selectorPredicate();
        const bool was = batchExecutionEnabled();
        setBatchExecutionEnabled(false);
        double scalar = bestOfSeconds(5, [&] {
            SelectionVector sel = SelectionVector::dense(kRows);
            filterSelection(p, t, sel);
            benchmark::DoNotOptimize(sel.size());
        });
        setBatchExecutionEnabled(true);
        double spec = bestOfSeconds(5, [&] {
            SelectionVector sel = SelectionVector::dense(kRows);
            filterSelection(p, t, sel);
            benchmark::DoNotOptimize(sel.size());
        });
        setBatchExecutionEnabled(was);
        line("AND-fold:", scalar, spec, kRows);
    }

    // String prefilter: high-cardinality heap so the dictionary memo
    // is out of play; the literal-run reject skips the wildcard
    // matcher on all but the rare hits.
    {
        constexpr std::int64_t kStrRows = 1 << 17;
        Rng rng(23);
        RelColumn c("p_name", ColumnType::Varchar);
        auto heap = std::make_shared<StringHeap>();
        const char *colors[] = {"red", "blue", "ivory", "linen",
                                "magenta"};
        for (std::int64_t i = 0; i < kStrRows; ++i) {
            std::string s = "part-" + std::to_string(i) + "-"
                + colors[rng.uniform(0, 3)] // magenta never sampled
                + "-" + std::to_string(rng.uniform(0, 1 << 20));
            c.push(heap->intern(s));
        }
        c.heap = heap;
        RelTable st;
        st.addColumn(std::move(c));
        const std::string pat = "%magenta%";
        const RelColumn &sc = st.col(0);
        double scalar = bestOfSeconds(5, [&] {
            std::int64_t hits = 0;
            for (std::int64_t i = 0; i < kStrRows; ++i)
                hits += likeMatch(sc.str(i), pat);
            benchmark::DoNotOptimize(hits);
        });
        ExprPtr p = like(col("p_name"), pat);
        double spec = bestOfSeconds(5, [&] {
            benchmark::DoNotOptimize(evalPredicate(p, st).popcount());
        });
        line("string prefilter:", scalar, spec, kStrRows);
    }
}

/**
 * Morsel-size sweep (--morsel-sweep): Row Transformer throughput at
 * each candidate AQUOMAN_MORSEL value, 4K to 64K. Informational — the
 * winner is recorded as kPeBatchRows's default. Returns 0 always.
 */
int
morselSweep()
{
    constexpr std::int64_t kRows = 1 << 21;
    TransformResult tr = transformerProgram();
    PeBatchKernel kernel(tr.program->programs, 3);
    auto cols = transformerInput(kRows);
    std::vector<std::int64_t> o0(kRows), o1(kRows);
    std::vector<const std::int64_t *> in_ptrs(3);
    std::vector<std::int64_t *> out_ptrs(2);
    std::printf("morsel-size sweep (row transformer, %lld rows, best "
                "of 5):\n",
                static_cast<long long>(kRows));
    for (std::int64_t m : {4096, 8192, 16384, 32768, 65536}) {
        setPeBatchMorselRows(m);
        const std::int64_t morsel = peBatchMorselRows();
        double sec = bestOfSeconds(5, [&] {
            for (std::int64_t b = 0; b < kRows; b += morsel) {
                std::int64_t e = std::min(kRows, b + morsel);
                for (int i = 0; i < 3; ++i)
                    in_ptrs[i] = cols[i].data() + b;
                out_ptrs[0] = o0.data() + b;
                out_ptrs[1] = o1.data() + b;
                kernel.run(in_ptrs.data(), e - b, out_ptrs.data(), 2);
            }
            benchmark::DoNotOptimize(o0.data());
        });
        std::printf("  %6lld rows/morsel: %7.1f Mrows/s%s\n",
                    static_cast<long long>(m), kRows / sec / 1e6,
                    m == kPeBatchRows ? "  (default)" : "");
    }
    setPeBatchMorselRows(0); // restore env/default
    return 0;
}

/**
 * CI perf-smoke gate (--check-batch-speedup): the batched Row Selector
 * must clear 4x the scalar selector's throughput on the q6-shaped
 * probe relation. Also reports the Row Transformer ratio for context
 * (not gated: its win varies more across hosts). Returns 0 on success.
 */
int
checkBatchSpeedup()
{
    constexpr std::int64_t kRows = 1 << 20;
    RelTable t = selectorInput(kRows);
    ExprPtr pred = selectorPredicate();
    double scalar_sel = bestOfSeconds(7, [&] {
        benchmark::DoNotOptimize(runSelectorScalar(pred, t).data());
    });
    double batched_sel = bestOfSeconds(7, [&] {
        SelectionVector sel = SelectionVector::dense(t.numRows());
        filterSelection(pred, t, sel);
        benchmark::DoNotOptimize(sel.size());
    });

    TransformResult tr = transformerProgram();
    SystolicArray array = tr.program->buildArray();
    PeBatchKernel kernel(tr.program->programs, 3);
    auto cols = transformerInput(kRows);
    std::vector<std::int64_t> in(3), out, o0(kRows), o1(kRows);
    const std::int64_t *ins[3] =
        {cols[0].data(), cols[1].data(), cols[2].data()};
    std::int64_t *outs[2] = {o0.data(), o1.data()};
    double scalar_tr = bestOfSeconds(3, [&] {
        for (std::int64_t r = 0; r < kRows; ++r) {
            in[0] = cols[0][r];
            in[1] = cols[1][r];
            in[2] = cols[2][r];
            array.runRow(in, out);
            o0[r] = out[0];
        }
        benchmark::DoNotOptimize(o0.data());
    });
    double batched_tr = bestOfSeconds(3, [&] {
        kernel.run(ins, kRows, outs, 2);
        benchmark::DoNotOptimize(o0.data());
    });

    double sel_speedup =
        batched_sel > 0.0 ? scalar_sel / batched_sel : 0.0;
    double tr_speedup = batched_tr > 0.0 ? scalar_tr / batched_tr : 0.0;
    std::printf("row selector:    scalar %.1f Mrows/s, batched %.1f "
                "Mrows/s, speedup %.2fx (gate: >= 4x)\n",
                kRows / scalar_sel / 1e6, kRows / batched_sel / 1e6,
                sel_speedup);
    std::printf("row transformer: scalar %.1f Mrows/s, batched %.1f "
                "Mrows/s, speedup %.2fx (informational)\n",
                kRows / scalar_tr / 1e6, kRows / batched_tr / 1e6,
                tr_speedup);
    reportKernelSections();
    if (sel_speedup < 4.0) {
        std::fprintf(stderr,
                     "FAIL: batched selector speedup %.2fx < 4x\n",
                     sel_speedup);
        return 1;
    }
    return 0;
}

/**
 * CI zone-map gate (--check-skip-rate): a q6-style one-year window
 * over a *clustered* (sorted) synthetic shipdate column must let the
 * page zone maps skip at least half the pages. Real TPC-H shipdate is
 * unclustered, so fig16 sees ~0 skips; this gate covers the layout the
 * zone maps are designed for. Also cross-checks soundness: the pages
 * that survive pruning must hold every matching row.
 */
int
checkSkipRate()
{
    constexpr std::int64_t kRows = 1 << 21;
    constexpr std::int64_t kSpanDays = 2466; // 1992..1998, like TPC-H
    constexpr std::int64_t kBaseDay = 8036;  // 1992-01-01
    std::vector<std::int64_t> days(kRows);
    for (std::int64_t i = 0; i < kRows; ++i)
        days[i] = kBaseDay + i * kSpanDays / kRows;
    ColumnEncoding enc = encodeValues(days.data(), kRows, 4);

    // l_shipdate >= 1995-01-01 AND l_shipdate < 1996-01-01.
    const std::int64_t lo = kBaseDay + 1096;
    const std::int64_t hi = lo + 365;
    std::int64_t skipped = 0, all_rows_match = 0, kept_rows_match = 0;
    for (const EncodedPage &p : enc.pages) {
        bool skip =
            zoneCompare(p.zone, ZoneOp::Ge, lo) == ZoneVerdict::NonePass
            || zoneCompare(p.zone, ZoneOp::Lt, hi)
                == ZoneVerdict::NonePass;
        std::int64_t m = 0;
        if (countMatchesEncoded(p, ZoneOp::Ge, lo) > 0)
            m = countMatchesEncoded(p, ZoneOp::Lt, hi)
                + countMatchesEncoded(p, ZoneOp::Ge, lo) - p.rows;
        m = std::max<std::int64_t>(m, 0);
        all_rows_match += m;
        if (skip)
            ++skipped;
        else
            kept_rows_match += m;
    }
    double rate = static_cast<double>(skipped) / enc.numPages();
    std::printf("zone-map skip rate: %lld of %lld pages skipped "
                "(%.1f%%) on clustered q6 window (gate: >= 50%%)\n",
                static_cast<long long>(skipped),
                static_cast<long long>(enc.numPages()), rate * 100.0);
    if (kept_rows_match != all_rows_match) {
        std::fprintf(stderr,
                     "FAIL: pruning dropped matching rows (%lld of "
                     "%lld survive)\n",
                     static_cast<long long>(kept_rows_match),
                     static_cast<long long>(all_rows_match));
        return 1;
    }
    if (rate < 0.5) {
        std::fprintf(stderr, "FAIL: skip rate %.1f%% < 50%%\n",
                     rate * 100.0);
        return 1;
    }
    return 0;
}

} // namespace
} // namespace aquoman

int
main(int argc, char **argv)
{
    // Strip our flags before google-benchmark sees the argument list.
    bool check_batch = false;
    bool check_skip = false;
    bool morsel_sweep = false;
    int out_argc = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--check-batch-speedup")
            check_batch = true;
        else if (std::string_view(argv[i]) == "--check-skip-rate")
            check_skip = true;
        else if (std::string_view(argv[i]) == "--morsel-sweep")
            morsel_sweep = true;
        else
            argv[out_argc++] = argv[i];
    }
    argc = out_argc;

    if (int rc = aquoman::checkDisabledObservabilityOverhead())
        return rc;
    if (check_batch || check_skip || morsel_sweep) {
        int rc = 0;
        if (check_batch)
            rc = aquoman::checkBatchSpeedup();
        if (rc == 0 && check_skip)
            rc = aquoman::checkSkipRate();
        if (rc == 0 && morsel_sweep)
            rc = aquoman::morselSweep();
        return rc;
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
