/**
 * @file
 * Google-benchmark microbenchmarks of the AQUOMAN hardware-model
 * components: bitonic sorter, VCAS/TopK chain, merger, Aggregate
 * Group-By and PE interpretation. These measure the *simulator's* cost,
 * useful when scaling the benches to larger scale factors.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <functional>

#include "aquoman/swissknife/bitonic.hh"
#include "flash/flash_device.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "aquoman/swissknife/groupby.hh"
#include "aquoman/swissknife/merger.hh"
#include "aquoman/swissknife/streaming_sorter.hh"
#include "aquoman/swissknife/topk.hh"
#include "aquoman/transform_compiler.hh"
#include "common/rng.hh"

namespace aquoman {
namespace {

KvStream
randomStream(std::int64_t n, std::uint64_t seed)
{
    Rng rng(seed);
    KvStream s(n);
    for (std::int64_t i = 0; i < n; ++i)
        s[i] = {rng.uniform(0, 1 << 30), i};
    return s;
}

void
BM_BitonicSortVector(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    BitonicSorter sorter(n);
    KvStream v = randomStream(n, 1);
    for (auto _ : state) {
        KvStream copy = v;
        sorter.sortVector(copy.data());
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BitonicSortVector)->Arg(8)->Arg(32)->Arg(64);

void
BM_TopKChain(benchmark::State &state)
{
    std::int64_t n = state.range(0);
    KvStream input = randomStream(n, 2);
    for (auto _ : state) {
        TopKAccelerator topk(100, 32);
        topk.pushAll(input);
        benchmark::DoNotOptimize(topk.finish());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TopKChain)->Arg(1 << 12)->Arg(1 << 16);

void
BM_MergerIntersect(benchmark::State &state)
{
    std::int64_t n = state.range(0);
    KvStream left = randomStream(n, 3);
    std::sort(left.begin(), left.end());
    KvStream right;
    for (std::int64_t k = 0; k < n / 4; ++k)
        right.push_back({k * 4, k});
    for (auto _ : state)
        benchmark::DoNotOptimize(intersectInner(left, right));
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MergerIntersect)->Arg(1 << 14)->Arg(1 << 18);

void
BM_GroupByAccelerator(benchmark::State &state)
{
    std::int64_t groups = state.range(0);
    Rng rng(4);
    std::vector<std::pair<std::int64_t, std::int64_t>> rows(1 << 16);
    for (auto &r : rows)
        r = {rng.uniform(0, groups - 1), rng.uniform(0, 100)};
    for (auto _ : state) {
        GroupByAccelerator gb(AquomanConfig{}, 1,
                              {HwAgg::Sum, HwAgg::Cnt});
        for (const auto &[g, v] : rows)
            gb.update({g}, {v, 0});
        benchmark::DoNotOptimize(gb.finish());
    }
    state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_GroupByAccelerator)->Arg(16)->Arg(1024)->Arg(100000);

void
BM_StreamingSorter(benchmark::State &state)
{
    std::int64_t n = state.range(0);
    AquomanConfig cfg;
    cfg.sorterBlockBytes = 1 << 16;
    StreamingSorter sorter(cfg);
    KvStream input = randomStream(n, 5);
    for (auto _ : state) {
        KvStream copy = input;
        benchmark::DoNotOptimize(sorter.sort(copy, true));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StreamingSorter)->Arg(1 << 14)->Arg(1 << 18);

void
BM_PeTransformRow(benchmark::State &state)
{
    std::map<std::string, ColumnType> schema = {
        {"ep", ColumnType::Decimal},
        {"disc", ColumnType::Decimal},
        {"tax", ColumnType::Decimal}};
    auto rev = mul(col("ep"), sub(litDec("1.00"), col("disc")));
    TransformResult tr = compileTransform(
        {{"disc_price", rev},
         {"charge", mul(rev, add(litDec("1.00"), col("tax")))}},
        schema, AquomanConfig{});
    SystolicArray array = tr.program->buildArray();
    std::vector<std::int64_t> in = {10000, 5, 4}, out;
    for (auto _ : state) {
        array.runRow(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PeTransformRow);

// ---------------------------------------------------------------------
// Disabled-observability overhead check
// ---------------------------------------------------------------------

double
bestOfSeconds(int reps, const std::function<void()> &fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        best = std::min(
            best, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
    }
    return best;
}

/**
 * The observability layer promises that with metrics and tracing
 * disabled, the enabled() guards on the hot paths are negligible:
 * per guarded call-site pair (registry + tracer check) under 1% of one
 * 8KB FlashDevice page read — the cheapest instrumented operation.
 * Returns 0 on success, 1 on violation.
 */
int
checkDisabledObservabilityOverhead()
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    obs::SimTracer &tracer = obs::SimTracer::global();
    if (reg.enabled() || tracer.enabled()) {
        std::printf("observability enabled; skipping disabled-overhead "
                    "check\n");
        return 0;
    }

    constexpr int kGuardIters = 1 << 22;
    auto guard_loop = [&] {
        int hits = 0;
        for (int i = 0; i < kGuardIters; ++i) {
            if (reg.enabled())
                ++hits;
            if (tracer.enabled())
                ++hits;
        }
        benchmark::DoNotOptimize(hits);
    };
    double guard_sec = bestOfSeconds(5, guard_loop) / kGuardIters;

    FlashConfig fc;
    FlashDevice flash(fc);
    FlashExtent ext = flash.allocate(fc.pageBytes);
    std::vector<std::uint8_t> buf(fc.pageBytes, 1);
    flash.write(ext, 0, buf.data(), fc.pageBytes);
    constexpr int kReadIters = 1 << 12;
    auto read_loop = [&] {
        for (int i = 0; i < kReadIters; ++i)
            flash.read(ext, 0, buf.data(), fc.pageBytes);
        benchmark::DoNotOptimize(buf.data());
    };
    double read_sec = bestOfSeconds(5, read_loop) / kReadIters;

    double overhead = read_sec > 0.0 ? guard_sec / read_sec : 0.0;
    std::printf("disabled-observability guard: %.2fns per call site, "
                "8KB flash read: %.0fns, overhead: %.3f%% (budget "
                "1%%)\n",
                guard_sec * 1e9, read_sec * 1e9, overhead * 100.0);
    if (overhead >= 0.01) {
        std::fprintf(stderr,
                     "FAIL: disabled-observability overhead %.3f%% "
                     ">= 1%%\n",
                     overhead * 100.0);
        return 1;
    }
    return 0;
}

} // namespace
} // namespace aquoman

int
main(int argc, char **argv)
{
    if (int rc = aquoman::checkDisabledObservabilityOverhead())
        return rc;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
