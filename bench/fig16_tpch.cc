/**
 * @file
 * Reproduces Figure 16 of the paper on TPC-H:
 *  (a) per-query runtime for the five systems S, L, S-AQUOMAN,
 *      L-AQUOMAN and S-AQUOMAN16 (Table VI);
 *  (b) maximum / average memory of L vs L-AQUOMAN (x86 + device DRAM);
 *  (c) fraction of runtime on AQUOMAN and x86 CPU-cycle saving.
 *
 * Queries execute functionally at the bench scale factor (AQUOMAN_SF);
 * machine-independent traces are extrapolated to the paper's SF-1000
 * operating point before the system models price them, so shapes are
 * comparable with the published figure.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "aquoman/query_profile.hh"
#include "bench_util.hh"
#include "columnstore/encoding.hh"
#include "common/compress_mode.hh"
#include "common/thread_pool.hh"

using namespace aquoman;
using namespace aquoman::bench;

namespace {

struct QueryRow
{
    int q;
    double runS, runL, runSAq, runLAq, runSAq16;
    double maxMemL, maxMemLAq, devMemLAq;
    double avgMemL, avgMemLAq;
    double fracOnDevice, cpuSaving;
    double queueWait, suspendCount, hostFinishBytes;
    double flashBytes, zoneConsidered, zoneSkipped;
    OffloadClass cls;
    double wallSeconds; ///< real time of this query's functional runs
    obs::QueryProfile profile; ///< L-AQUOMAN cost attribution
};

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == flag)
            return true;
    return false;
}

std::string
flagValue(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == flag) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a path\n", flag);
                std::exit(2);
            }
            return argv[i + 1];
        }
    }
    return std::string();
}

/**
 * Per-table, per-column compression report: the codec mix the page
 * encoder chose, logical vs encoded bytes, and the resulting ratio.
 * Written as deterministic JSON for the CI artifact.
 */
bool
writeCompressionReport(const std::string &path, const Catalog &cat)
{
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    f << "{\n  \"compression_enabled\": "
      << (compressionEnabled() ? "true" : "false")
      << ",\n  \"tables\": [\n";
    bool first_table = true;
    std::int64_t total_logical = 0, total_encoded = 0;
    for (const auto &[name, entry] : cat.all()) {
        if (!entry.resident)
            continue;
        f << (first_table ? "" : ",\n") << "    {\"table\": \"" << name
          << "\", \"columns\": [\n";
        first_table = false;
        const Table &t = *entry.table;
        for (int c = 0; c < t.numColumns(); ++c) {
            const Column &col = t.col(c);
            std::int64_t logical =
                t.numRows() * columnTypeWidth(col.type());
            const ColumnLayoutMeta *enc =
                entry.resident->encodingMeta(c);
            std::int64_t encoded = enc ? enc->encodedBytes : logical;
            total_logical += logical;
            total_encoded += encoded;
            // Dominant codec over the column's pages (raw layout when
            // the column is stored unencoded).
            std::string codec = "raw";
            if (enc) {
                std::int64_t counts[4] = {};
                for (const PageBlockMeta &p : enc->pages)
                    ++counts[static_cast<int>(p.codec)];
                int best = 0;
                for (int k = 1; k < 4; ++k)
                    if (counts[k] > counts[best])
                        best = k;
                codec = columnCodecName(
                    static_cast<ColumnCodec>(best));
            }
            double ratio = encoded > 0
                ? static_cast<double>(logical) / encoded : 1.0;
            f << "      {\"column\": \"" << col.name()
              << "\", \"codec\": \"" << codec
              << "\", \"logical_bytes\": " << logical
              << ", \"encoded_bytes\": " << encoded
              << ", \"pages\": " << (enc ? enc->numPages() : 0)
              << ", \"ratio\": " << obs::jsonNumber(ratio) << "}"
              << (c + 1 < t.numColumns() ? "," : "") << "\n";
        }
        f << "    ]}";
    }
    double total_ratio = total_encoded > 0
        ? static_cast<double>(total_logical) / total_encoded : 1.0;
    f << "\n  ],\n  \"total_logical_bytes\": " << total_logical
      << ",\n  \"total_encoded_bytes\": " << total_encoded
      << ",\n  \"total_ratio\": " << obs::jsonNumber(total_ratio)
      << "\n}\n";
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = jsonPathFromArgs(argc, argv);
    double sf = scaleFactor();
    Fixture fx(sf);
    header("Fig 16: TPC-H SF-1000 AQUOMAN performance profiling "
           "(functional runs at SF " + std::to_string(sf) + ")");

    HostModel hostS(HostConfig::small());
    HostModel hostL(HostConfig::large());

    // Queries are independent: run them across the shared pool, each
    // writing its own row. Modelled numbers are bit-identical to the
    // serial loop; only wall-clock changes.
    std::vector<int> queries = tpch::allQueryNumbers();
    std::vector<QueryRow> rows(queries.size());
    double gb = 1024.0 * 1024.0 * 1024.0;
    WallTimer bench_timer;
    parallelFor(0, static_cast<std::int64_t>(queries.size()), 1,
                [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
        int q = queries[i];
        WallTimer query_timer;
        EngineMetrics base = scaleMetrics(fx.baselineMetrics(q), sf);
        // Per-configuration trace labels keep every run on its own
        // simulation-trace track when AQUOMAN_TRACE is set.
        AquomanConfig cfg40 = fx.scaledDevice(40ll << 30);
        cfg40.traceLabel = "q" + std::to_string(q) + " dram40";
        AquomanConfig cfg16 = fx.scaledDevice(16ll << 30);
        cfg16.traceLabel = "q" + std::to_string(q) + " dram16";
        OffloadedQueryResult off40 = fx.offload(q, cfg40);
        AquomanRunStats aq40 = scaleStats(off40.stats, sf);
        AquomanRunStats aq16 = scaleStats(fx.offload(q, cfg16).stats, sf);

        SystemEvaluation evS40 = evaluateOffload(base, aq40, hostS);
        SystemEvaluation evL40 = evaluateOffload(base, aq40, hostL);
        SystemEvaluation evS16 = evaluateOffload(base, aq16, hostS);

        QueryRow &r = rows[i];
        r.q = q;
        r.runS = hostS.estimate(base).runtime;
        r.runL = hostL.estimate(base).runtime;
        r.runSAq = evS40.offloadRuntime;
        r.runLAq = evL40.offloadRuntime;
        r.runSAq16 = evS16.offloadRuntime;
        r.maxMemL = hostL.estimate(base).maxRss / gb;
        r.maxMemLAq = evL40.hostMaxRss / gb;
        r.devMemLAq = evL40.deviceDramPeak / gb;
        r.avgMemL = hostL.estimate(base).avgRss / gb;
        r.avgMemLAq = evL40.hostAvgRss / gb;
        r.fracOnDevice = evL40.offloadFraction;
        r.cpuSaving = evL40.cpuSaving;
        r.queueWait = aq40.hostResidual.queueWaitSec;
        r.suspendCount =
            static_cast<double>(aq40.hostResidual.suspendCount);
        r.hostFinishBytes =
            static_cast<double>(aq40.hostResidual.hostFinishBytes);
        r.flashBytes = static_cast<double>(aq40.deviceFlashBytes);
        r.zoneConsidered =
            static_cast<double>(aq40.zonePagesConsidered);
        r.zoneSkipped = static_cast<double>(aq40.zonePagesSkipped);
        r.cls = evL40.offloadClass;

        // Cost-attribution tree: host phase split exactly the way
        // evaluateOffload prices it (residual estimate + result DMA),
        // so the tree's pre-order seconds reproduce the modelled
        // L-AQUOMAN device + host total bitwise.
        HostRunEstimate resL = hostL.estimate(aq40.hostResidual);
        HostPhaseProfile hp;
        hp.hostSeconds = resL.runtime;
        hp.dmaSeconds = static_cast<double>(aq40.dmaBytes)
            / hostL.cfg().storageReadBandwidth;
        hp.dmaBytes = aq40.dmaBytes;
        hp.hostBytes = std::max<std::int64_t>(
            0, aq40.hostResidual.hostFinishBytes - aq40.dmaBytes);
        r.profile = buildQueryProfile(
            "q" + std::to_string(q), off40.compilation, aq40, hp,
            offloadClassName(evL40.offloadClass));
#ifndef NDEBUG
        {
            obs::LedgerAudit audit;
            for (const TableTaskRecord &t : aq40.tasks) {
                audit.taskSeconds.push_back(t.seconds);
                audit.taskFlashBytes.push_back(t.flashBytes);
            }
            audit.deviceSeconds = aq40.deviceSeconds;
            audit.deviceFlashBytes = aq40.deviceFlashBytes;
            std::string err;
            if (!obs::auditLedgers(audit, &err)) {
                std::fprintf(stderr,
                             "ledger audit failed for q%d: %s\n", q,
                             err.c_str());
                std::abort();
            }
        }
#endif
        r.wallSeconds = query_timer.seconds();
    }
    });
    double bench_wall = bench_timer.seconds();

    header("Fig 16(a): run time (seconds, modelled at SF-1000)");
    StatTable tbl_a(5, {{"S", 9, 1},
                        {"L", 9, 1},
                        {"S-AQUOMAN", 11, 1},
                        {"L-AQUOMAN", 11, 1},
                        {"S-AQUOMAN16", 11, 1}});
    tbl_a.printHeader("query");
    double sum_s = 0, sum_l = 0, sum_saq = 0, sum_laq = 0, sum_saq16 = 0;
    for (const auto &r : rows) {
        tbl_a.printRow("q" + std::to_string(r.q),
                       {r.runS, r.runL, r.runSAq, r.runLAq, r.runSAq16});
        sum_s += r.runS;
        sum_l += r.runL;
        sum_saq += r.runSAq;
        sum_laq += r.runLAq;
        sum_saq16 += r.runSAq16;
    }
    tbl_a.printRow("Total", {sum_s, sum_l, sum_saq, sum_laq, sum_saq16});
    std::printf("\npaper shape checks: L/S speedup = %.2fx "
                "(paper ~1.6x); S-AQUOMAN16/L = %.2fx (paper ~1.0x)\n",
                sum_s / sum_l, sum_saq16 / sum_l);

    header("Fig 16(b): memory footprint (GB, system L)");
    StatTable tbl_b(5, {{"L maxRSS", 10, 1},
                        {"L-AQ maxRSS", 12, 1},
                        {"L-AQ devDRAM", 13, 1},
                        {"L avgRSS", 10, 1},
                        {"L-AQ avgRSS", 12, 1}});
    tbl_b.printHeader("query");
    double max_dev = 0, sum_avg_l = 0, sum_avg_laq = 0;
    for (const auto &r : rows) {
        tbl_b.printRow("q" + std::to_string(r.q),
                       {r.maxMemL, r.maxMemLAq, r.devMemLAq, r.avgMemL,
                        r.avgMemLAq});
        max_dev = std::max(max_dev, r.devMemLAq);
        sum_avg_l += r.avgMemL;
        sum_avg_laq += r.avgMemLAq;
    }
    std::printf("\npaper shape checks: max AQUOMAN DRAM = %.1fGB "
                "(paper 40GB); avg x86 RSS saving = %.0f%% "
                "(paper ~60%%, ~3x reduction)\n",
                max_dev, 100.0 * (1.0 - sum_avg_laq / sum_avg_l));

    header("Fig 16(c): %% runtime on AQUOMAN and x86 CPU-cycle saving "
           "(system L)");
    StatTable tbl_c(5, {{"run time %", 14, 1}, {"cpu saving %", 14, 1}},
                    9);
    tbl_c.printHeader("query", "class");
    double sum_saving = 0;
    for (const auto &r : rows) {
        tbl_c.printRow("q" + std::to_string(r.q),
                       {100.0 * r.fracOnDevice, 100.0 * r.cpuSaving},
                       offloadClassName(r.cls));
        sum_saving += r.cpuSaving;
    }
    std::printf("\npaper shape check: average CPU saving = %.0f%% "
                "(paper ~71%%)\n",
                100.0 * sum_saving / rows.size());

    std::printf("\nbench wall-clock: %.2fs for %zu queries on %d "
                "thread(s)\n", bench_wall, rows.size(),
                ThreadPool::global().parallelism());

    if (hasFlag(argc, argv, "--explain")) {
        header("EXPLAIN ANALYZE: L-AQUOMAN (40GB device DRAM, modelled "
               "at SF-1000)");
        for (const auto &r : rows)
            std::printf("\n%s", r.profile.textString().c_str());
    }

    if (!json_path.empty()) {
        std::vector<JsonRecord> records;
        for (const auto &r : rows) {
            JsonRecord rec;
            rec.add("query", r.q);
            rec.add("wall_seconds", r.wallSeconds);
            rec.add("modelled_s_seconds", r.runS);
            rec.add("modelled_l_seconds", r.runL);
            rec.add("modelled_s_aquoman_seconds", r.runSAq);
            rec.add("modelled_l_aquoman_seconds", r.runLAq);
            rec.add("modelled_s_aquoman16_seconds", r.runSAq16);
            rec.add("frac_runtime_on_device", r.fracOnDevice);
            rec.add("cpu_saving", r.cpuSaving);
            rec.add("queue_wait_seconds", r.queueWait);
            rec.add("suspend_count", r.suspendCount);
            rec.add("host_finish_bytes", r.hostFinishBytes);
            rec.add("flash_bytes", r.flashBytes);
            rec.add("zone_pages_considered", r.zoneConsidered);
            rec.add("zone_pages_skipped", r.zoneSkipped);
            rec.addRaw("profile", r.profile.jsonString());
            records.push_back(std::move(rec));
        }
        // Latency distributions over the 22 queries (modelled seconds;
        // deterministic, so p50/p90/p99 are stable across runs).
        obs::Histogram lat_hist, queue_hist, wall_hist;
        for (const auto &r : rows) {
            lat_hist.record(r.runLAq);
            queue_hist.record(r.queueWait);
            wall_hist.record(r.wallSeconds);
        }
        if (writeJsonReport(json_path, records,
                            {{"query_latency_seconds", lat_hist},
                             {"queue_wait_seconds", queue_hist},
                             {"wall_seconds", wall_hist}}))
            std::printf("wrote %s\n", json_path.c_str());
        else
            return 1;
    }

    std::string report_path =
        flagValue(argc, argv, "--compression-report");
    if (!report_path.empty()) {
        if (!writeCompressionReport(report_path, fx.catalog))
            return 1;
        std::printf("wrote %s\n", report_path.c_str());
    }
    return 0;
}
