/**
 * @file
 * Closed-loop throughput bench for the query service layer: N synthetic
 * TPC-H clients each keep one query in flight against a QueryService,
 * cycling through a query rotation for a fixed number of rounds, at
 * device counts 1 / 2 / 4. Reports per-query latency percentiles,
 * queue wait, suspend rate, and modelled throughput (which must rise
 * monotonically with the device count — the array splits every scan
 * Table Task across its stripes).
 *
 * All times are modelled seconds from the service's discrete-event
 * simulation; results are bit-identical for every AQUOMAN_THREADS.
 *
 * JSON report (--json <path>): {"records": [...], "histograms": {...},
 * "trace": {...}} — one record per device count with
 *   devices, clients, rounds, queries_completed, makespan_seconds,
 *   throughput_qps, p50_latency_seconds, p95_latency_seconds,
 *   p99_latency_seconds, mean_queue_wait_seconds, suspend_rate,
 * plus embedded query_latency / queue_wait histograms and per-device
 * switch-port counters; the top-level histograms section carries the
 * largest run's distributions. With AQUOMAN_TRACE=<path> set, each run
 * traces onto "m<devices>."-prefixed tracks of one Perfetto file.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hh"
#include "service/query_service.hh"
#include "workload/tpch_params.hh"

using namespace aquoman;
using namespace aquoman::bench;
using namespace aquoman::service;

namespace {

constexpr int kClients = 6;
constexpr int kRounds = 2;
/// Tighter than the client count so admission queueing is visible.
constexpr int kAdmissionLimit = 4;
const std::vector<int> kRotation{6, 14, 12, 1, 3, 13};

struct RunResult
{
    int devices;
    ServiceStats stats;
    double wallSeconds;
    std::vector<StatSet> switchStats; ///< per-device port counters
    std::vector<obs::QueryProfile> profiles; ///< per completed query
    std::int64_t flightDumps = 0;
};

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == flag)
            return true;
    return false;
}

/**
 * Parameter seed (--seed N, default 0). Seed 0 pins every client to
 * the validation-parameter instances — byte-identical to the plans
 * this bench has always run — while a nonzero seed draws a distinct
 * parameter set per (client, round) from the workload generator.
 */
std::uint64_t
seedFromArgs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--seed")
            return std::strtoull(argv[i + 1], nullptr, 10);
    return 0;
}

/** Render a name->count map as a JSON object string. */
std::string
countsJson(const std::map<std::string, std::int64_t> &counts)
{
    std::string out = "{";
    bool first = true;
    for (const auto &[name, n] : counts) {
        out += (first ? "\"" : ", \"") + obs::jsonEscape(name)
            + "\": " + std::to_string(n);
        first = false;
    }
    return out + "}";
}

RunResult
runWorkload(const tpch::TpchDatabase &db,
            const workload::TpchInstanceGenerator &gen, int num_devices)
{
    WallTimer timer;
    ServiceConfig cfg;
    cfg.numDevices = num_devices;
    cfg.admissionLimit = kAdmissionLimit;
    // Distinct trace tracks per device count, so all three runs can
    // share one AQUOMAN_TRACE file without overlapping timelines.
    cfg.traceLabel = "m" + std::to_string(num_devices);
    QueryService svc(cfg);
    for (const auto &t : {db.region, db.nation, db.supplier, db.customer,
                          db.part, db.partsupp, db.orders, db.lineitem})
        svc.addTable(t);
    db.registerMetadata(svc.catalog());

    // Closed loop: each client resubmits as soon as its query is done.
    std::map<QueryId, int> owner;
    std::vector<int> done(kClients, 0);
    // Seed 0 runs instance 0 (the validation parameters) everywhere;
    // otherwise each (client, round) gets its own parameter draw.
    auto clientQuery = [&](int client, int round) {
        int q = kRotation[(client + round)
                          % static_cast<int>(kRotation.size())];
        std::uint64_t idx = gen.seed() == 0
            ? 0
            : 1 + static_cast<std::uint64_t>(client) * kRounds + round;
        return gen.build(gen.instance(q, idx));
    };
    svc.setOnComplete([&](const QueryRecord &rec) {
        int client = owner.at(rec.id);
        if (++done[client] < kRounds)
            owner[svc.submit(clientQuery(client, done[client]))] = client;
    });
    for (int c = 0; c < kClients; ++c)
        owner[svc.submit(clientQuery(c, 0))] = c;
    svc.drain();

    RunResult r;
    r.devices = num_devices;
    r.stats = svc.aggregate();
    r.wallSeconds = timer.seconds();
    r.flightDumps = svc.flightDumps();
    for (int d = 0; d < num_devices; ++d)
        r.switchStats.push_back(svc.deviceSwitch(d).stats());
    for (QueryId id = 0;
         id < static_cast<QueryId>(svc.numQueries()); ++id)
        r.profiles.push_back(svc.record(id).profile);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = jsonPathFromArgs(argc, argv);
    double sf = scaleFactor();
    std::uint64_t seed = seedFromArgs(argc, argv);
    header("Service throughput: " + std::to_string(kClients)
           + " closed-loop TPC-H clients x " + std::to_string(kRounds)
           + " rounds (functional runs at SF " + std::to_string(sf)
           + ", seed " + std::to_string(seed) + ")");

    tpch::TpchDatabase db =
        tpch::TpchDatabase::generate(tpch::TpchConfig{sf, 19920101});
    workload::TpchInstanceGenerator gen(seed, sf);

    std::vector<RunResult> runs;
    for (int m : {1, 2, 4})
        runs.push_back(runWorkload(db, gen, m));

    std::printf("%-8s %9s %12s %10s %10s %10s %12s %9s\n", "devices",
                "queries", "makespan s", "p50 s", "p95 s", "p99 s",
                "queue-wait s", "qps");
    for (const RunResult &r : runs) {
        std::printf("%-8d %9lld %12.4f %10.4f %10.4f %10.4f %12.4f "
                    "%9.2f\n",
                    r.devices, static_cast<long long>(r.stats.completed),
                    r.stats.makespanSec, r.stats.p50LatencySec,
                    r.stats.p95LatencySec, r.stats.p99LatencySec,
                    r.stats.meanQueueWaitSec, r.stats.throughputQps);
    }

    bool monotonic = true;
    for (std::size_t i = 1; i < runs.size(); ++i)
        monotonic &= runs[i].stats.throughputQps
            > runs[i - 1].stats.throughputQps;
    std::printf("\nthroughput scaling 1 -> %d devices: %.2fx "
                "(monotonic: %s)\n",
                runs.back().devices,
                runs.back().stats.throughputQps
                    / runs.front().stats.throughputQps,
                monotonic ? "yes" : "NO");
    std::printf("suspend rate: %.2f (all runs share one admission "
                "policy)\n", runs.front().stats.suspendRate);

    std::printf("\nbottleneck histogram (Table Tasks, %d devices):\n",
                runs.back().devices);
    for (const auto &[stage, n] : runs.back().stats.bottleneckTaskCounts)
        std::printf("  %-12s %6lld\n", stage.c_str(),
                    static_cast<long long>(n));
    for (const auto &[why, n] : runs.back().stats.suspendReasonCounts)
        std::printf("  suspend %-12s %6lld\n", why.c_str(),
                    static_cast<long long>(n));

    if (hasFlag(argc, argv, "--explain")) {
        header("EXPLAIN ANALYZE: completed queries ("
               + std::to_string(runs.back().devices) + " devices)");
        for (const obs::QueryProfile &p : runs.back().profiles)
            std::printf("\n%s", p.textString().c_str());
    }

    if (!json_path.empty()) {
        std::vector<JsonRecord> records;
        for (const RunResult &r : runs) {
            JsonRecord rec;
            rec.add("devices", r.devices);
            rec.add("clients", kClients);
            rec.add("rounds", kRounds);
            rec.add("seed", static_cast<double>(seed));
            rec.add("queries_completed",
                    static_cast<double>(r.stats.completed));
            rec.add("makespan_seconds", r.stats.makespanSec);
            rec.add("throughput_qps", r.stats.throughputQps);
            rec.add("p50_latency_seconds", r.stats.p50LatencySec);
            rec.add("p95_latency_seconds", r.stats.p95LatencySec);
            rec.add("p99_latency_seconds", r.stats.p99LatencySec);
            rec.add("mean_queue_wait_seconds",
                    r.stats.meanQueueWaitSec);
            rec.add("suspend_rate", r.stats.suspendRate);
            rec.add("flight_dumps",
                    static_cast<double>(r.flightDumps));
            rec.add("wall_seconds", r.wallSeconds);
            rec.addRaw("bottleneck_tasks",
                       countsJson(r.stats.bottleneckTaskCounts));
            rec.addRaw("suspend_reasons",
                       countsJson(r.stats.suspendReasonCounts));
            rec.addRaw("query_latency_histogram",
                       histogramJson(r.stats.latencyHistogram));
            rec.addRaw("queue_wait_histogram",
                       histogramJson(r.stats.queueWaitHistogram));
            std::string ports = "[";
            for (std::size_t d = 0; d < r.switchStats.size(); ++d)
                ports += (d ? ", " : "")
                    + statSetJson(r.switchStats[d]);
            rec.addRaw("switch_ports", ports + "]");
            records.push_back(std::move(rec));
        }
        const ServiceStats &widest = runs.back().stats;
        if (writeJsonReport(
                json_path, records,
                {{"query_latency_seconds", widest.latencyHistogram},
                 {"queue_wait_seconds", widest.queueWaitHistogram}}))
            std::printf("wrote %s\n", json_path.c_str());
        else
            return 1;
    }
    return monotonic ? 0 : 1;
}
