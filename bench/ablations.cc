/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out:
 *  1. Column Predicate Evaluator count — the paper claims 4-6 CPEs
 *     cover most TPC-H filter predicates (Sec. VI-A);
 *  2. Aggregate Group-By bucket count — spill-over sensitivity;
 *  3. Device DRAM capacity — which queries suspend (generalising the
 *     AQUOMAN16 experiment);
 *  4. Sorter merge fan-in — streaming-sorter DRAM/throughput trade.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "aquoman/swissknife/groupby.hh"
#include "aquoman/swissknife/streaming_sorter.hh"
#include "bench_util.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"

using namespace aquoman;
using namespace aquoman::bench;

namespace {

/** Count selector-eligible conjuncts of every filter in a plan. */
void
countSelectorPredicates(const PlanPtr &p, std::vector<int> &out)
{
    if (!p)
        return;
    if (p->kind == PlanKind::Filter) {
        // Split top-level AND; single-column compares are CPE work.
        std::vector<ExprPtr> stack{p->predicate};
        int eligible = 0;
        while (!stack.empty()) {
            ExprPtr e = stack.back();
            stack.pop_back();
            if (e->kind == ExprKind::Logic
                    && e->logicOp == LogicOp::And) {
                stack.push_back(e->children[0]);
                stack.push_back(e->children[1]);
                continue;
            }
            std::vector<std::string> cols;
            collectColumns(e, cols);
            if (cols.size() == 1 && (e->kind == ExprKind::Compare
                                     || e->kind == ExprKind::InList))
                ++eligible;
        }
        out.push_back(eligible);
    }
    for (const auto &c : p->children)
        countSelectorPredicates(c, out);
}

} // namespace

int
main()
{
    double sf = scaleFactor();
    Fixture fx(sf);

    // ------------------------------------------------------------ 1
    header("Ablation 1: Column Predicate Evaluators needed per TPC-H "
           "filter (paper: 4-6 suffice)");
    std::map<int, int> histogram;
    int max_needed = 0;
    for (int q : tpch::allQueryNumbers()) {
        Query query = tpch::tpchQuery(q, sf);
        std::vector<int> counts;
        for (const auto &st : query.stages)
            countSelectorPredicates(st.plan, counts);
        for (int c : counts) {
            histogram[c]++;
            max_needed = std::max(max_needed, c);
        }
    }
    for (const auto &[preds, filters] : histogram)
        std::printf("  %d CPE predicate(s): %d filter(s)\n", preds,
                    filters);
    std::printf("  max simultaneous CPE predicates: %d (paper: 4-6 "
                "evaluators are enough)\n", max_needed);

    // ------------------------------------------------------------ 2
    header("Ablation 2: Aggregate Group-By buckets vs spill-over "
           "(100k-group stream)");
    for (int buckets : {256, 1024, 4096, 16384, 65536}) {
        AquomanConfig cfg;
        cfg.groupByBuckets = buckets;
        GroupByAccelerator gb(cfg, 1, {HwAgg::Sum});
        Rng rng(13);
        for (int i = 0; i < 200000; ++i)
            gb.update({rng.uniform(0, 99999)}, {1});
        std::printf("  %6d buckets: %6.2f%% rows spilled, %lld "
                    "spill groups\n",
                    buckets,
                    100.0 * gb.stats().rowsSpilled / gb.stats().rowsIn,
                    static_cast<long long>(gb.stats().groupsSpilled));
    }

    // ------------------------------------------------------------ 3
    header("Ablation 3: device DRAM capacity vs suspensions "
           "(generalised AQUOMAN16 experiment)");
    for (std::int64_t gbytes : {4, 16, 40, 128}) {
        AquomanConfig cfg = fx.scaledDevice(gbytes << 30);
        // Queries are independent; fan them across the pool and sum
        // their per-query counts in query order.
        std::vector<int> queries = tpch::allQueryNumbers();
        std::vector<int> counts(queries.size(), 0);
        parallelFor(0, static_cast<std::int64_t>(queries.size()), 1,
                    [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i) {
                OffloadedQueryResult r = fx.offload(queries[i], cfg);
                counts[i] = r.stats.suspendedDram;
            }
        });
        int suspended = 0;
        for (int c : counts)
            suspended += c;
        std::printf("  %4lldGB device DRAM: %d quer%s hit the DRAM "
                    "suspension (paper: 4 at 16GB, 0 at 40GB)\n",
                    static_cast<long long>(gbytes), suspended,
                    suspended == 1 ? "y" : "ies");
    }

    // ------------------------------------------------------------ 4
    header("Ablation 4: sorter merge fan-in vs modelled throughput "
           "(100GB random input)");
    for (int fan : {16, 64, 256, 1024}) {
        AquomanConfig cfg;
        cfg.sorterMergeFanIn = fan;
        StreamingSorter sorter(cfg);
        double bytes = 100.0 * (1ll << 30);
        double secs = sorter.modelSeconds(
            static_cast<std::int64_t>(bytes), 1.0, false);
        std::printf("  fan-in %5d: %5.1f GB/s (merge tree depth %s)\n",
                    fan, bytes / secs / 1e9,
                    fan >= 256 ? "3 layers" : ">3 layers");
    }
    return 0;
}
