/**
 * @file
 * Reproduces Figure 17: validation of the trace-based simulator against
 * the detailed device model on queries q1, q6 (no joins, end-to-end)
 * and q3, q10 (multi-way joins within a small DRAM budget). The paper
 * compares its MAL-trace simulator with the FPGA prototype; here the
 * "detailed" model charges per-beat pipeline costs (PE program lengths,
 * sorter cycles, page-touch flash traffic) while the "analytic" model
 * prices the same trace purely as bytes / bandwidth, mirroring the two
 * fidelity levels. Agreement of run time and identical memory usage is
 * the validation.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace aquoman;
using namespace aquoman::bench;

int
main()
{
    double sf = scaleFactor();
    Fixture fx(sf);
    header("Fig 17: validating the analytic model against the detailed "
           "device model (q1, q6, q3, q10)");

    std::printf("%-6s %16s %16s %8s %14s %14s\n", "query",
                "detailed (s)", "analytic (s)", "ratio", "mem det (GB)",
                "mem ana (GB)");
    double gb = 1024.0 * 1024.0 * 1024.0;
    for (int q : {1, 6, 3, 10}) {
        OffloadedQueryResult r = fx.offload(q, fx.scaledDevice(40ll << 30));
        AquomanRunStats scaled = scaleStats(r.stats, sf);
        // Detailed: per-beat charges accumulated during execution.
        double detailed = scaled.deviceSeconds;
        // Analytic: the same flash trace priced at line rate only.
        double analytic = scaled.deviceFlashBytes
            / Fixture::flashConfig().readBandwidth;
        double mem = scaled.deviceDramPeak / gb;
        std::printf("q%-5d %16.1f %16.1f %8.2f %14.2f %14.2f\n", q,
                    detailed, analytic,
                    analytic > 0 ? detailed / analytic : 0.0, mem, mem);
    }
    std::printf("\npaper shape check: both models agree on run time "
                "(ratios near 1) and report identical memory usage, "
                "as Fig. 17 shows for the FPGA prototype vs the "
                "simulator.\n");
    return 0;
}
