/**
 * @file
 * Reproduces Table V: 1GB-Block Streaming Sorter throughput for input
 * lengths of 1/10/100/1000 GB and three sortedness classes (sorted,
 * reverse sorted, random). Functional sorts run at a scaled block size
 * to measure the real scheduler-alternation rates; the throughput
 * figures come from the calibrated cycle model at hardware scale.
 */

#include <algorithm>
#include <cstdio>

#include "aquoman/swissknife/streaming_sorter.hh"
#include "bench_util.hh"
#include "common/rng.hh"

using namespace aquoman;

namespace {

enum class Sortedness { Sorted, Reverse, Random };

KvStream
makeStream(Sortedness s, std::int64_t n)
{
    KvStream out(n);
    Rng rng(7);
    for (std::int64_t i = 0; i < n; ++i) {
        switch (s) {
          case Sortedness::Sorted:
            out[i] = {i, i};
            break;
          case Sortedness::Reverse:
            out[i] = {n - i, i};
            break;
          case Sortedness::Random:
            out[i] = {rng.uniform(0, 1ll << 40), i};
            break;
        }
    }
    return out;
}

} // namespace

int
main()
{
    bench::header("Table V: 1GB-Block Streaming Sorter throughput "
                  "(GB/s)");
    // Functional runs use a scaled block so multi-block behaviour is
    // exercised; the measured alternation drives the hardware model.
    AquomanConfig cfg;
    cfg.sorterBlockBytes = 1 << 16; // 4096 records per scaled "1GB"
    StreamingSorter sorter(cfg);
    const std::int64_t records_per_block =
        cfg.sorterBlockBytes / kKvBytes;

    std::printf("%-12s %14s %18s %10s\n", "Input (GB)", "Sorted",
                "Reverse Sorted", "Random");
    const double paper[4][3] = {{4.4, 4.4, 6.2},
                                {7.9, 7.9, 11.0},
                                {8.5, 8.5, 11.9},
                                {8.6, 8.6, 12.0}};
    const std::int64_t lengths[] = {1, 10, 100, 1000};
    for (int li = 0; li < 4; ++li) {
        std::int64_t blocks = lengths[li];
        double gbps[3];
        int si = 0;
        for (Sortedness s : {Sortedness::Sorted, Sortedness::Reverse,
                             Sortedness::Random}) {
            // Measure the real alternation rate on the scaled stream.
            KvStream stream =
                makeStream(s, blocks * records_per_block);
            SorterStats st = sorter.sort(stream, false);
            // Price the hardware-scale input with that alternation.
            double bytes = static_cast<double>(blocks) * (1ll << 30);
            AquomanConfig hw; // 1GB blocks
            StreamingSorter hw_sorter(hw);
            double secs = hw_sorter.modelSeconds(
                static_cast<std::int64_t>(bytes), st.alternationRate,
                false);
            gbps[si++] = bytes / secs / 1e9;
        }
        std::printf("%-12lld %14.1f %18.1f %10.1f   (paper: %.1f / "
                    "%.1f / %.1f)\n",
                    static_cast<long long>(lengths[li]), gbps[0],
                    gbps[1], gbps[2], paper[li][0], paper[li][1],
                    paper[li][2]);
    }
    std::printf("\nAll configurations share one datapath, so uint32/"
                "uint64/kv throughputs are identical (paper Sec. VII).\n");
    return 0;
}
