/**
 * @file
 * Shared morsel-parallel execution core. One process-wide pool (sized by
 * env AQUOMAN_THREADS, default hardware concurrency, 1 == fully serial)
 * feeds every data-parallel path in the repository: the streaming
 * sorter's block sort/merge, the baseline executor's morsel loops, the
 * TPC-H generator's per-partition streams, and the bench harnesses'
 * query fan-out.
 *
 * Design rules that every caller relies on:
 *  - The calling thread always participates: a parallelFor never blocks
 *    waiting for a free worker, so nested parallel sections cannot
 *    deadlock (inner sections simply degrade toward inline execution
 *    when all workers are busy).
 *  - Work is claimed chunk-by-chunk from an atomic cursor (work
 *    stealing at chunk granularity); any worker may execute any chunk.
 *  - Results must therefore be written to pre-partitioned destinations
 *    (disjoint ranges or per-chunk slots merged in chunk order), which
 *    is what makes every parallel path bit-identical to its serial run.
 *  - The first exception thrown by any chunk is rethrown on the calling
 *    thread after all claimed chunks finish.
 */

#ifndef AQUOMAN_COMMON_THREAD_POOL_HH
#define AQUOMAN_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace aquoman {

/** Process-wide work-sharing pool with a parallel-for primitive. */
class ThreadPool
{
  public:
    /**
     * @param parallelism total concurrency including the calling
     *        thread; the pool spawns parallelism-1 workers. 1 means no
     *        workers at all (everything runs inline on the caller).
     */
    explicit ThreadPool(int parallelism);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Degree of parallelism (worker threads + the calling thread). */
    int parallelism() const { return degree; }

    /**
     * Run @p fn over [begin, end) split into chunks of at most @p grain
     * elements. The caller participates; returns when every chunk has
     * executed. Chunk boundaries are an execution detail: callers must
     * produce identical results for any partitioning of the range.
     * When the range fits one chunk (or the pool is serial) @p fn runs
     * inline with no synchronisation.
     */
    void parallelFor(std::int64_t begin, std::int64_t end,
                     std::int64_t grain,
                     const std::function<void(std::int64_t,
                                              std::int64_t)> &fn);

    /**
     * Deterministically split [begin, end) into consecutive chunks of
     * at most @p grain elements. Used by callers that accumulate
     * per-chunk results and concatenate them in chunk order (the
     * concatenation then equals the serial-order result).
     */
    static std::vector<std::pair<std::int64_t, std::int64_t>>
    splitRange(std::int64_t begin, std::int64_t end, std::int64_t grain);

    /** The process-wide pool (sized from AQUOMAN_THREADS on first use). */
    static ThreadPool &global();

    /**
     * Parallelism requested by the environment: AQUOMAN_THREADS when
     * set to a positive integer, otherwise std::thread::hardware_concurrency.
     */
    static int configuredParallelism();

    /**
     * Re-create the global pool with @p parallelism threads (test hook
     * for comparing parallel against serial runs in one process). Not
     * safe while parallel work is in flight.
     */
    static void setGlobalParallelism(int parallelism);

  private:
    struct Job;

    void workerLoop();

    /** Claim and execute chunks of @p job until its cursor is spent. */
    static void runJob(Job &job);

    int degree;
    std::vector<std::thread> workers;
    std::deque<std::shared_ptr<Job>> jobs;
    std::mutex mu;
    std::condition_variable cv;
    bool stopping = false;
};

/** Convenience wrapper over the global pool. */
inline void
parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
            const std::function<void(std::int64_t, std::int64_t)> &fn)
{
    ThreadPool::global().parallelFor(begin, end, grain, fn);
}

/**
 * A scoped group of independent tasks executed on the pool. Tasks are
 * collected by run() and executed by wait(); the destructor waits for
 * any tasks not yet executed. Nesting groups (tasks that spawn their
 * own groups or parallelFors) is safe because waiting threads always
 * execute work themselves.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &p = ThreadPool::global()) : pool(p) {}

    ~TaskGroup()
    {
        try {
            wait();
        } catch (...) {
            // Destructor must not throw; wait() explicitly to observe
            // task exceptions.
        }
    }

    /** Add a task. Tasks start executing at the next wait(). */
    void run(std::function<void()> fn) { fns.push_back(std::move(fn)); }

    /**
     * Execute all collected tasks across the pool; rethrows the first
     * task exception. The group is reusable after wait() returns.
     */
    void
    wait()
    {
        if (fns.empty())
            return;
        std::vector<std::function<void()>> batch;
        batch.swap(fns);
        pool.parallelFor(0, static_cast<std::int64_t>(batch.size()), 1,
                         [&](std::int64_t b, std::int64_t e) {
                             for (std::int64_t i = b; i < e; ++i)
                                 batch[static_cast<std::size_t>(i)]();
                         });
    }

  private:
    ThreadPool &pool;
    std::vector<std::function<void()>> fns;
};

} // namespace aquoman

#endif // AQUOMAN_COMMON_THREAD_POOL_HH
