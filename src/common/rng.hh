/**
 * @file
 * Deterministic pseudo-random number generator. The TPC-H generator and
 * all property tests use this so that every run of the repository is
 * reproducible regardless of platform or standard-library version.
 *
 * All randomness in the repository flows through this header — never
 * through std::random_device or rand() — and parallel producers derive
 * independent per-partition streams with Rng::stream(), so generated
 * data is bit-identical no matter how many threads produced it.
 */

#ifndef AQUOMAN_COMMON_RNG_HH
#define AQUOMAN_COMMON_RNG_HH

#include <cstdint>

namespace aquoman {

/** splitmix64-based deterministic generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state(seed) {}

    /**
     * Derive the seed of an independent sub-stream of @p base. Used by
     * parallel generators: stream(seed, table, partition) gives every
     * partition its own generator whose output does not depend on how
     * partitions are scheduled across threads. The double splitmix
     * finalisation decorrelates streams whose ids differ in one bit.
     */
    static std::uint64_t
    streamSeed(std::uint64_t base, std::uint64_t stream_a,
               std::uint64_t stream_b = 0)
    {
        std::uint64_t z = base;
        z = mix64(z + 0x9e3779b97f4a7c15ull * (stream_a + 1));
        z = mix64(z ^ (0xbf58476d1ce4e5b9ull * (stream_b + 1)));
        return z;
    }

    /** An Rng positioned at sub-stream (@p stream_a, @p stream_b). */
    static Rng
    stream(std::uint64_t base, std::uint64_t stream_a,
           std::uint64_t stream_b = 0)
    {
        return Rng(streamSeed(base, stream_a, stream_b));
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniform(std::int64_t lo, std::int64_t hi)
    {
        if (hi <= lo)
            return lo;
        std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(next() % span);
    }

    /** Uniform double in [0, 1). */
    double
    uniformReal()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    /** splitmix64 finaliser (also used for stream derivation). */
    static std::uint64_t
    mix64(std::uint64_t z)
    {
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t state;
};

} // namespace aquoman

#endif // AQUOMAN_COMMON_RNG_HH
