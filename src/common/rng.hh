/**
 * @file
 * Deterministic pseudo-random number generator. The TPC-H generator and
 * all property tests use this so that every run of the repository is
 * reproducible regardless of platform or standard-library version.
 */

#ifndef AQUOMAN_COMMON_RNG_HH
#define AQUOMAN_COMMON_RNG_HH

#include <cstdint>

namespace aquoman {

/** splitmix64-based deterministic generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniform(std::int64_t lo, std::int64_t hi)
    {
        if (hi <= lo)
            return lo;
        std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(next() % span);
    }

    /** Uniform double in [0, 1). */
    double
    uniformReal()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    std::uint64_t state;
};

} // namespace aquoman

#endif // AQUOMAN_COMMON_RNG_HH
