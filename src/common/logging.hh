/**
 * @file
 * Logging and error-termination helpers in the spirit of gem5's
 * base/logging.hh. `fatal` reports user-caused configuration errors,
 * `panic` reports internal invariant violations.
 */

#ifndef AQUOMAN_COMMON_LOGGING_HH
#define AQUOMAN_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace aquoman {

/** Exception thrown for unrecoverable user errors (bad configuration). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown for internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &head, const Rest &...rest)
{
    os << head;
    formatInto(os, rest...);
}

} // namespace detail

/** Concatenate all arguments into a single string via operator<<. */
template <typename... Args>
std::string
strCat(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    return os.str();
}

/**
 * Abort processing due to a user-visible misconfiguration.
 * @throws FatalError always.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(strCat("fatal: ", args...));
}

/**
 * Abort processing due to an internal bug (condition that should never
 * happen regardless of user input).
 * @throws PanicError always.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(strCat("panic: ", args...));
}

/** Check an invariant; panics with the stringified condition on failure. */
#define AQ_ASSERT(cond, ...)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::aquoman::panic("assertion failed: ", #cond, " ",               \
                             ::aquoman::strCat(__VA_ARGS__), " at ",         \
                             __FILE__, ":", __LINE__);                       \
        }                                                                    \
    } while (0)

} // namespace aquoman

#endif // AQUOMAN_COMMON_LOGGING_HH
