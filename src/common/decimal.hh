/**
 * @file
 * Fixed-point decimal arithmetic. TPC-H money values have two fractional
 * digits; MonetDB stores them as scaled integers. All engine and AQUOMAN
 * arithmetic on Decimal columns uses these helpers so that the software
 * baseline and the offloaded PE programs agree bit-for-bit.
 */

#ifndef AQUOMAN_COMMON_DECIMAL_HH
#define AQUOMAN_COMMON_DECIMAL_HH

#include <cstdint>
#include <limits>
#include <string>

namespace aquoman {

/** Scale factor applied to decimal column values (two fractional digits). */
constexpr std::int64_t kDecimalScale = 100;

/** Build a scaled decimal from integral and hundredth parts. */
constexpr std::int64_t
makeDecimal(std::int64_t whole, std::int64_t hundredths = 0)
{
    return whole * kDecimalScale + hundredths;
}

/** Multiply two scaled decimals, keeping the result at kDecimalScale. */
constexpr std::int64_t
decimalMul(std::int64_t a, std::int64_t b)
{
    return a * b / kDecimalScale;
}

/** Divide two scaled decimals, keeping the result at kDecimalScale. */
constexpr std::int64_t
decimalDiv(std::int64_t a, std::int64_t b)
{
    return b == 0 ? 0 : a * kDecimalScale / b;
}

/** Format a scaled decimal as "123.45" (INT64_MIN prints as NULL). */
inline std::string
decimalToString(std::int64_t v)
{
    if (v == std::numeric_limits<std::int64_t>::min())
        return "NULL"; // engine null sentinel; negation would overflow
    bool neg = v < 0;
    std::int64_t a = neg ? -v : v;
    std::string s = std::to_string(a / kDecimalScale) + ".";
    std::int64_t frac = a % kDecimalScale;
    if (frac < 10)
        s += "0";
    s += std::to_string(frac);
    return neg ? "-" + s : s;
}

} // namespace aquoman

#endif // AQUOMAN_COMMON_DECIMAL_HH
