/**
 * @file
 * Proleptic-Gregorian date codec. Dates are stored in columns as int32
 * day counts since 1970-01-01 (the usual columnar encoding), which lets
 * the Row Selector compare them as plain integers.
 */

#ifndef AQUOMAN_COMMON_DATE_HH
#define AQUOMAN_COMMON_DATE_HH

#include <cstdint>
#include <string>

#include "common/logging.hh"

namespace aquoman {

/**
 * Days since 1970-01-01 for the given civil date.
 * Uses Howard Hinnant's days_from_civil algorithm.
 */
constexpr std::int32_t
daysFromCivil(int y, int m, int d)
{
    y -= m <= 2;
    const int era = (y >= 0 ? y : y - 399) / 400;
    const unsigned yoe = static_cast<unsigned>(y - era * 400);
    const unsigned doy =
        (153 * (static_cast<unsigned>(m) + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
    const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    return era * 146097 + static_cast<int>(doe) - 719468;
}

/** Civil date decomposition of a day count (inverse of daysFromCivil). */
struct CivilDate
{
    int year;
    int month;
    int day;
};

/** Convert a day count back to a civil date. */
constexpr CivilDate
civilFromDays(std::int32_t z)
{
    z += 719468;
    const int era = (z >= 0 ? z : z - 146096) / 146097;
    const unsigned doe = static_cast<unsigned>(z - era * 146097);
    const unsigned yoe =
        (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    const int y = static_cast<int>(yoe) + era * 400;
    const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    const unsigned mp = (5 * doy + 2) / 153;
    const unsigned d = doy - (153 * mp + 2) / 5 + 1;
    const unsigned m = mp + (mp < 10 ? 3 : -9);
    return {y + (m <= 2), static_cast<int>(m), static_cast<int>(d)};
}

/** Parse an ISO "YYYY-MM-DD" literal to a day count. */
inline std::int32_t
parseDate(const std::string &iso)
{
    if (iso.size() != 10 || iso[4] != '-' || iso[7] != '-')
        fatal("bad date literal '", iso, "'");
    int y = std::stoi(iso.substr(0, 4));
    int m = std::stoi(iso.substr(5, 2));
    int d = std::stoi(iso.substr(8, 2));
    if (m < 1 || m > 12 || d < 1 || d > 31)
        fatal("bad date literal '", iso, "'");
    return daysFromCivil(y, m, d);
}

/** Format a day count as ISO "YYYY-MM-DD". */
inline std::string
dateToString(std::int32_t days)
{
    CivilDate cd = civilFromDays(days);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", cd.year, cd.month,
                  cd.day);
    return buf;
}

/** Add @p months calendar months to a day count (clamping the day). */
inline std::int32_t
addMonths(std::int32_t days, int months)
{
    CivilDate cd = civilFromDays(days);
    int total = cd.year * 12 + (cd.month - 1) + months;
    int y = total / 12;
    int m = total % 12;
    if (m < 0) {
        m += 12;
        y -= 1;
    }
    static const int mdays[12] =
        {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
    int dim = mdays[m];
    if (m == 1 && ((y % 4 == 0 && y % 100 != 0) || y % 400 == 0))
        dim = 29;
    int d = cd.day > dim ? dim : cd.day;
    return daysFromCivil(y, m + 1, d);
}

} // namespace aquoman

#endif // AQUOMAN_COMMON_DATE_HH
