/**
 * @file
 * Lightweight named-statistics registry. The flash model, the host cost
 * model and the AQUOMAN performance model all report through StatSet so
 * benches can print uniform tables.
 */

#ifndef AQUOMAN_COMMON_STATS_HH
#define AQUOMAN_COMMON_STATS_HH

#include <cstdio>
#include <map>
#include <ostream>
#include <string>

namespace aquoman {

/** A named bag of additive double-valued counters. */
class StatSet
{
  public:
    /** Add @p delta to the counter @p name (creating it at zero). */
    void
    add(const std::string &name, double delta)
    {
        counters[name] += delta;
    }

    /** Overwrite counter @p name. */
    void
    set(const std::string &name, double value)
    {
        counters[name] = value;
    }

    /** Track the maximum seen for counter @p name. */
    void
    max(const std::string &name, double value)
    {
        auto it = counters.find(name);
        if (it == counters.end() || it->second < value)
            counters[name] = value;
    }

    /** Read counter @p name (0 if absent). */
    double
    get(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0.0 : it->second;
    }

    /** Reset all counters. */
    void clear() { counters.clear(); }

    /** Merge-add all counters from @p other. */
    void
    merge(const StatSet &other)
    {
        for (const auto &[k, v] : other.counters)
            counters[k] += v;
    }

    /**
     * All counters, sorted by name. std::map keeps iteration order
     * deterministic (ascending by name), so every exposition of a
     * StatSet — print, toJson, bench tables — is reproducible.
     */
    const std::map<std::string, double> &all() const { return counters; }

    /** Print "name value" lines. */
    void
    print(std::ostream &os, const std::string &prefix = "") const
    {
        for (const auto &[k, v] : counters)
            os << prefix << k << " " << v << "\n";
    }

    /**
     * Render as one JSON object, counters in name order. Doubles use
     * %.17g so modelled values round-trip exactly.
     */
    void
    toJson(std::ostream &os) const
    {
        os << "{";
        bool first = true;
        for (const auto &[k, v] : counters) {
            char num[40];
            std::snprintf(num, sizeof num, "%.17g", v);
            os << (first ? "" : ", ") << '"' << k << "\": " << num;
            first = false;
        }
        os << "}";
    }

  private:
    std::map<std::string, double> counters;
};

} // namespace aquoman

#endif // AQUOMAN_COMMON_STATS_HH
