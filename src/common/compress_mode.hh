/**
 * @file
 * Runtime toggle for persisted column compression. When enabled
 * (the default), flash pages hold encoded column bytes (dictionary,
 * RLE, frame-of-reference) with per-page zone maps, and the device
 * prices flash reads on compressed size. AQUOMAN_COMPRESS=0 restores
 * the uncompressed oracle: raw on-flash layout, the pre-compression
 * cost model, bit-identical results, modelled seconds and traces —
 * the storage analogue of the AQUOMAN_BATCH=0 scalar-execution
 * contract.
 *
 * The flag is resolved once and must not change between persisting a
 * table and reading it back (the on-flash layout is part of the data
 * definition); tests that flip it via setCompressionEnabled() rebuild
 * their fixtures.
 */

#ifndef AQUOMAN_COMMON_COMPRESS_MODE_HH
#define AQUOMAN_COMMON_COMPRESS_MODE_HH

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace aquoman {

namespace detail {
/// -1 = unresolved, 0 = uncompressed oracle, 1 = compressed.
inline std::atomic<int> g_compress_mode{-1};
} // namespace detail

/** Compression on? Defaults to on; env AQUOMAN_COMPRESS=0 disables. */
inline bool
compressionEnabled()
{
    int v = detail::g_compress_mode.load(std::memory_order_relaxed);
    if (v < 0) {
        const char *e = std::getenv("AQUOMAN_COMPRESS");
        v = (e != nullptr && std::string_view(e) == "0") ? 0 : 1;
        detail::g_compress_mode.store(v, std::memory_order_relaxed);
    }
    return v == 1;
}

/** Test hook: force compressed (true) or raw-oracle (false) layout. */
inline void
setCompressionEnabled(bool on)
{
    detail::g_compress_mode.store(on ? 1 : 0,
                                  std::memory_order_relaxed);
}

} // namespace aquoman

#endif // AQUOMAN_COMMON_COMPRESS_MODE_HH
