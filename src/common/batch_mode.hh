/**
 * @file
 * Runtime toggle for the vectorized batch execution engine. The batch
 * paths (PeBatchKernel, selection-vector filters) are bit-identical to
 * the scalar interpreter by contract; the flag exists so differential
 * tests can run both strategies against each other and so a regression
 * can be bisected in the field (AQUOMAN_BATCH=0 restores the scalar
 * oracle). Modelled seconds and traces are unaffected either way —
 * only simulator wall-clock changes.
 */

#ifndef AQUOMAN_COMMON_BATCH_MODE_HH
#define AQUOMAN_COMMON_BATCH_MODE_HH

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace aquoman {

namespace detail {
/// -1 = unresolved, 0 = scalar, 1 = batched.
inline std::atomic<int> g_batch_mode{-1};
} // namespace detail

/** Batch engine on? Defaults to on; env AQUOMAN_BATCH=0 disables. */
inline bool
batchExecutionEnabled()
{
    int v = detail::g_batch_mode.load(std::memory_order_relaxed);
    if (v < 0) {
        const char *e = std::getenv("AQUOMAN_BATCH");
        v = (e != nullptr && std::string_view(e) == "0") ? 0 : 1;
        detail::g_batch_mode.store(v, std::memory_order_relaxed);
    }
    return v == 1;
}

/** Test hook: force batch (true) or scalar-oracle (false) execution. */
inline void
setBatchExecutionEnabled(bool on)
{
    detail::g_batch_mode.store(on ? 1 : 0, std::memory_order_relaxed);
}

} // namespace aquoman

#endif // AQUOMAN_COMMON_BATCH_MODE_HH
