#include "common/thread_pool.hh"

#include <atomic>
#include <cstdlib>
#include <exception>

#include "common/logging.hh"

namespace aquoman {

/**
 * One parallelFor invocation. Chunks are claimed from an atomic cursor;
 * `remaining` counts chunks not yet finished, and the submitting thread
 * sleeps on `done` only for chunks still running on workers after it
 * exhausted the cursor itself.
 */
struct ThreadPool::Job
{
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t grain = 1;
    std::int64_t numChunks = 0;
    const std::function<void(std::int64_t, std::int64_t)> *fn = nullptr;

    std::atomic<std::int64_t> nextChunk{0};
    std::atomic<std::int64_t> remaining{0};

    std::mutex mu;
    std::condition_variable done;
    std::exception_ptr error;
};

ThreadPool::ThreadPool(int parallelism)
    : degree(parallelism < 1 ? 1 : parallelism)
{
    workers.reserve(degree - 1);
    for (int i = 0; i < degree - 1; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [this] { return stopping || !jobs.empty(); });
            if (jobs.empty()) {
                if (stopping)
                    return;
                continue;
            }
            job = jobs.front();
            if (job->nextChunk.load(std::memory_order_relaxed)
                    >= job->numChunks) {
                // Cursor spent: retire the job and look again.
                jobs.pop_front();
                continue;
            }
        }
        runJob(*job);
    }
}

void
ThreadPool::runJob(Job &job)
{
    for (;;) {
        std::int64_t c =
            job.nextChunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= job.numChunks)
            return;
        std::int64_t b = job.begin + c * job.grain;
        std::int64_t e = std::min(job.end, b + job.grain);
        try {
            (*job.fn)(b, e);
        } catch (...) {
            std::lock_guard<std::mutex> lock(job.mu);
            if (!job.error)
                job.error = std::current_exception();
        }
        if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(job.mu);
            job.done.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::int64_t begin, std::int64_t end,
                        std::int64_t grain,
                        const std::function<void(std::int64_t,
                                                 std::int64_t)> &fn)
{
    if (end <= begin)
        return;
    AQ_ASSERT(grain > 0, "parallelFor grain must be positive");
    std::int64_t n = end - begin;
    if (degree == 1 || n <= grain || workers.empty()) {
        // Serial fast path: one chunk per grain, inline, in order.
        for (std::int64_t b = begin; b < end; b += grain)
            fn(b, std::min(end, b + grain));
        return;
    }

    auto job = std::make_shared<Job>();
    job->begin = begin;
    job->end = end;
    job->grain = grain;
    job->numChunks = (n + grain - 1) / grain;
    job->fn = &fn;
    job->remaining.store(job->numChunks, std::memory_order_relaxed);

    {
        std::lock_guard<std::mutex> lock(mu);
        jobs.push_back(job);
    }
    cv.notify_all();

    // The caller claims chunks too, so the job always makes progress
    // even when every worker is busy elsewhere (e.g. nested sections).
    runJob(*job);

    {
        std::unique_lock<std::mutex> lock(job->mu);
        job->done.wait(lock, [&] {
            return job->remaining.load(std::memory_order_acquire) == 0;
        });
    }
    {
        std::lock_guard<std::mutex> lock(mu);
        for (auto it = jobs.begin(); it != jobs.end(); ++it) {
            if (it->get() == job.get()) {
                jobs.erase(it);
                break;
            }
        }
    }
    if (job->error)
        std::rethrow_exception(job->error);
}

std::vector<std::pair<std::int64_t, std::int64_t>>
ThreadPool::splitRange(std::int64_t begin, std::int64_t end,
                       std::int64_t grain)
{
    AQ_ASSERT(grain > 0, "splitRange grain must be positive");
    std::vector<std::pair<std::int64_t, std::int64_t>> out;
    for (std::int64_t b = begin; b < end; b += grain)
        out.emplace_back(b, std::min(end, b + grain));
    return out;
}

int
ThreadPool::configuredParallelism()
{
    if (const char *env = std::getenv("AQUOMAN_THREADS")) {
        int n = std::atoi(env);
        if (n >= 1)
            return n;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

} // namespace

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(g_pool_mu);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(configuredParallelism());
    return *g_pool;
}

void
ThreadPool::setGlobalParallelism(int parallelism)
{
    std::lock_guard<std::mutex> lock(g_pool_mu);
    g_pool = std::make_unique<ThreadPool>(parallelism);
}

} // namespace aquoman
