/**
 * @file
 * Packed bit vector used for row-selection masks. AQUOMAN stores one
 * selection bit per row; the Row Selector produces Row-Mask Vectors of
 * kRowVectorSize bits, so the vector exposes 32-bit word access alongside
 * per-bit access.
 */

#ifndef AQUOMAN_COMMON_BITVECTOR_HH
#define AQUOMAN_COMMON_BITVECTOR_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace aquoman {

/** Densely packed vector of bits with 32-bit row-mask word access. */
class BitVector
{
  public:
    BitVector() = default;

    /** Construct @p n bits, all initialised to @p value. */
    explicit BitVector(std::int64_t n, bool value = false)
    {
        resize(n, value);
    }

    /** Number of bits held. */
    std::int64_t size() const { return numBits; }

    /** Resize to @p n bits; new bits take @p value. */
    void
    resize(std::int64_t n, bool value = false)
    {
        std::uint32_t fill = value ? ~0u : 0u;
        std::int64_t old_bits = numBits;
        words.resize((n + 31) / 32, fill);
        numBits = n;
        if (value && old_bits % 32 != 0 && n > old_bits) {
            // Bits above old_bits in the old tail word were zero; set them.
            for (std::int64_t i = old_bits; i < std::min(n, ((old_bits + 31)
                    / 32) * 32); ++i) {
                set(i, true);
            }
        }
        clearTailSlack();
    }

    /** Read bit @p i. */
    bool
    get(std::int64_t i) const
    {
        AQ_ASSERT(i >= 0 && i < numBits);
        return (words[i >> 5] >> (i & 31)) & 1u;
    }

    /** Write bit @p i. */
    void
    set(std::int64_t i, bool value)
    {
        AQ_ASSERT(i >= 0 && i < numBits);
        std::uint32_t bit = 1u << (i & 31);
        if (value)
            words[i >> 5] |= bit;
        else
            words[i >> 5] &= ~bit;
    }

    /** Number of 32-bit mask words. */
    std::int64_t numWords() const { return words.size(); }

    /** Read the 32-row mask word @p w (rows w*32 .. w*32+31). */
    std::uint32_t
    word(std::int64_t w) const
    {
        AQ_ASSERT(w >= 0 && w < numWords());
        return words[w];
    }

    /** Overwrite mask word @p w. */
    void
    setWord(std::int64_t w, std::uint32_t value)
    {
        AQ_ASSERT(w >= 0 && w < numWords());
        words[w] = value;
        if (w == numWords() - 1)
            clearTailSlack();
    }

    /** Bitwise-AND with @p other (sizes must match). */
    void
    andWith(const BitVector &other)
    {
        AQ_ASSERT(numBits == other.numBits);
        for (std::size_t i = 0; i < words.size(); ++i)
            words[i] &= other.words[i];
    }

    /** Bitwise-OR with @p other (sizes must match). */
    void
    orWith(const BitVector &other)
    {
        AQ_ASSERT(numBits == other.numBits);
        for (std::size_t i = 0; i < words.size(); ++i)
            words[i] |= other.words[i];
    }

    /** Count of set bits. */
    std::int64_t
    popcount() const
    {
        std::int64_t n = 0;
        for (std::uint32_t w : words)
            n += __builtin_popcount(w);
        return n;
    }

    /** True if no bit is set. */
    bool
    allZero() const
    {
        for (std::uint32_t w : words)
            if (w)
                return false;
        return true;
    }

  private:
    /** Zero the unused bits in the last word so popcount stays exact. */
    void
    clearTailSlack()
    {
        std::int64_t slack = static_cast<std::int64_t>(words.size()) * 32
            - numBits;
        if (slack > 0 && !words.empty())
            words.back() &= ~0u >> slack;
    }

    std::vector<std::uint32_t> words;
    std::int64_t numBits = 0;
};

} // namespace aquoman

#endif // AQUOMAN_COMMON_BITVECTOR_HH
