/**
 * @file
 * Fundamental scalar types shared across the column store, the baseline
 * engine and the AQUOMAN device model.
 */

#ifndef AQUOMAN_COMMON_TYPES_HH
#define AQUOMAN_COMMON_TYPES_HH

#include <cstdint>
#include <string>

namespace aquoman {

/**
 * Row identifier. MonetDB represents primary keys internally as dense
 * RowIDs; AQUOMAN's join machinery carries <key, RowId> pairs. 64-bit so
 * that SF-1000 lineitem (~6e9 rows) is representable.
 */
using RowId = std::int64_t;

/** Row-Vector ID: index of a 32-row vector within a column file. */
using RowVecId = std::int64_t;

/** Number of rows covered by one Row Vector (Sec. IV of the paper). */
constexpr int kRowVectorSize = 32;

/** Logical column types stored in the column store. */
enum class ColumnType : std::uint8_t
{
    Int32,   ///< 32-bit signed integer
    Int64,   ///< 64-bit signed integer
    Date,    ///< days since 1970-01-01, stored as int32
    Decimal, ///< fixed-point (2 fractional digits), stored as int64
    Varchar, ///< variable-size string backed by a string heap
};

/** Width in bytes of one value of @p type as stored in a column file. */
inline int
columnTypeWidth(ColumnType type)
{
    switch (type) {
      case ColumnType::Int32:
      case ColumnType::Date:
        return 4;
      case ColumnType::Int64:
      case ColumnType::Decimal:
        return 8;
      case ColumnType::Varchar:
        return 8; // offset into the string heap
    }
    return 8;
}

/** Human-readable name of a column type. */
inline const char *
columnTypeName(ColumnType type)
{
    switch (type) {
      case ColumnType::Int32:   return "int32";
      case ColumnType::Int64:   return "int64";
      case ColumnType::Date:    return "date";
      case ColumnType::Decimal: return "decimal";
      case ColumnType::Varchar: return "varchar";
    }
    return "?";
}

} // namespace aquoman

#endif // AQUOMAN_COMMON_TYPES_HH
