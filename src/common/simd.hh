/**
 * @file
 * Runtime CPU-feature dispatch for the specialized batch kernels. The
 * binaries are built for generic x86-64 (SSE2 baseline), so AVX2
 * variants of the hot kernels are compiled with per-function target
 * attributes and selected once per compiled kernel behind a CPUID
 * check. The check is cached; AQUOMAN_AVX2=0 (or the test hook) forces
 * the generic path so the two variants can be diffed for bit-identical
 * output on the same host.
 */

#ifndef AQUOMAN_COMMON_SIMD_HH
#define AQUOMAN_COMMON_SIMD_HH

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace aquoman {

namespace detail {
/// -1 = unresolved, 0 = generic kernels, 1 = AVX2 kernels.
inline std::atomic<int> g_avx2_mode{-1};
} // namespace detail

/**
 * Should kernel dispatch pick the AVX2 variants? True only when the
 * CPU reports AVX2 and neither AQUOMAN_AVX2=0 nor the test hook has
 * forced the generic path.
 */
inline bool
avx2Available()
{
    int v = detail::g_avx2_mode.load(std::memory_order_relaxed);
    if (v < 0) {
#if defined(__x86_64__) && defined(__GNUC__)
        bool on = __builtin_cpu_supports("avx2");
#else
        bool on = false;
#endif
        const char *e = std::getenv("AQUOMAN_AVX2");
        if (e != nullptr && std::string_view(e) == "0")
            on = false;
        v = on ? 1 : 0;
        detail::g_avx2_mode.store(v, std::memory_order_relaxed);
    }
    return v == 1;
}

/**
 * Test hook: force AVX2 (true) or generic (false) kernel selection.
 * Forcing true on a CPU without AVX2 would SIGILL; tests must only
 * force true when a prior avx2Available() probe returned true.
 */
inline void
setAvx2Enabled(bool on)
{
    detail::g_avx2_mode.store(on ? 1 : 0, std::memory_order_relaxed);
}

} // namespace aquoman

#endif // AQUOMAN_COMMON_SIMD_HH
