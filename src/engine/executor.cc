#include "engine/executor.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "columnstore/selection_vector.hh"
#include "common/batch_mode.hh"
#include "common/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "relalg/eval.hh"
#include "relalg/pred_kernel.hh"

namespace aquoman {

namespace {

/**
 * Rows per morsel for the parallel operator paths. Inputs at or below
 * one morsel run inline on the calling thread (parallelFor's serial
 * fast path), so small relations pay no scheduling overhead.
 */
constexpr std::int64_t kMorselRows = 16384;

/** Append the hashable encoding of one value to @p key. */
void
appendKeyValue(std::string &key, const RelColumn &c, std::int64_t row)
{
    if (c.type == ColumnType::Varchar) {
        auto s = c.str(row);
        key.append(s.data(), s.size());
        key.push_back('\0');
    } else {
        std::int64_t v = c.get(row);
        key.append(reinterpret_cast<const char *>(&v), sizeof(v));
    }
}

/** Build the composite key string for @p row over @p cols. */
std::string
makeKey(const RelTable &t, const std::vector<int> &cols, std::int64_t row)
{
    std::string key;
    for (int c : cols)
        appendKeyValue(key, t.col(c), row);
    return key;
}

std::vector<int>
resolveColumns(const RelTable &t, const std::vector<std::string> &names)
{
    std::vector<int> out;
    for (const auto &n : names)
        out.push_back(t.indexOf(n));
    return out;
}

/**
 * Fixed-width composite key over up to four non-varchar columns. Key
 * equality matches the string encoding exactly (raw int64 values), so
 * hash containers group identical row sets in identical insertion
 * order — results are bit-identical to the string-keyed path, minus
 * the per-row string allocation.
 */
struct IntKey
{
    std::array<std::int64_t, 4> v;
    std::uint32_t n;

    bool
    operator==(const IntKey &o) const
    {
        return n == o.n && std::equal(v.begin(), v.begin() + n,
                                      o.v.begin());
    }
};

struct IntKeyHash
{
    std::size_t
    operator()(const IntKey &k) const
    {
        std::uint64_t h = 0x9e3779b97f4a7c15ull;
        for (std::uint32_t i = 0; i < k.n; ++i) {
            std::uint64_t x = static_cast<std::uint64_t>(k.v[i]) + h;
            x ^= x >> 33;
            x *= 0xff51afd7ed558ccdull;
            x ^= x >> 33;
            h = x;
        }
        return static_cast<std::size_t>(h);
    }
};

/** Can rows of @p cols be keyed by raw int64 values? */
bool
intKeyable(const RelTable &t, const std::vector<int> &cols)
{
    if (cols.size() > 4)
        return false;
    for (int c : cols) {
        if (t.col(c).type == ColumnType::Varchar)
            return false;
    }
    return true;
}

IntKey
makeIntKey(const RelTable &t, const std::vector<int> &cols,
           std::int64_t row)
{
    IntKey k;
    k.n = static_cast<std::uint32_t>(cols.size());
    for (std::uint32_t c = 0; c < k.n; ++c)
        k.v[c] = t.col(cols[c]).get(row);
    return k;
}

/**
 * Hash-join candidate enumeration, generic over the key type. Builds
 * on the right side in row order, probes the left in morsels; each
 * morsel's matches land in a local pair list and concatenation in
 * morsel order reproduces the serial probe order exactly (equal_range
 * iteration order is a property of the table, not the prober).
 */
template <typename Key, typename Hash, typename MakeKeyFn>
void
hashJoinCandidates(const RelTable &left, const std::vector<int> &lk,
                   const RelTable &right, const std::vector<int> &rk,
                   MakeKeyFn make_key, std::vector<std::int64_t> &li,
                   std::vector<std::int64_t> &ri)
{
    std::unordered_multimap<Key, std::int64_t, Hash> ht;
    ht.reserve(right.numRows() * 2);
    for (std::int64_t j = 0; j < right.numRows(); ++j)
        ht.emplace(make_key(right, rk, j), j);
    auto morsels = ThreadPool::splitRange(0, left.numRows(), kMorselRows);
    std::vector<std::vector<std::int64_t>> lloc(morsels.size());
    std::vector<std::vector<std::int64_t>> rloc(morsels.size());
    parallelFor(0, static_cast<std::int64_t>(morsels.size()), 1,
                [&](std::int64_t m0, std::int64_t m1) {
        for (std::int64_t m = m0; m < m1; ++m) {
            auto [b, e] = morsels[m];
            for (std::int64_t i = b; i < e; ++i) {
                auto [lo, hi] = ht.equal_range(make_key(left, lk, i));
                for (auto it = lo; it != hi; ++it) {
                    lloc[m].push_back(i);
                    rloc[m].push_back(it->second);
                }
            }
        }
    });
    for (std::size_t m = 0; m < morsels.size(); ++m) {
        li.insert(li.end(), lloc[m].begin(), lloc[m].end());
        ri.insert(ri.end(), rloc[m].begin(), rloc[m].end());
    }
}

/** Three-way compare of two rows on one column (NULL sorts first). */
int
compareValues(const RelColumn &c, std::int64_t a, std::int64_t b)
{
    if (c.type == ColumnType::Varchar) {
        int r = c.str(a).compare(c.str(b));
        return r < 0 ? -1 : (r > 0 ? 1 : 0);
    }
    std::int64_t x = c.get(a), y = c.get(b);
    return x < y ? -1 : (x > y ? 1 : 0);
}

} // namespace

double
exprCost(const ExprPtr &e)
{
    if (!e)
        return 0.0;
    double cost = 1.0;
    if (e->kind == ExprKind::Like)
        cost = 8.0; // string scan per row
    for (const auto &c : e->children)
        cost += exprCost(c);
    return cost;
}

RelTable
gatherRows(const RelTable &t, const std::vector<std::int64_t> &idx)
{
    std::int64_t n = static_cast<std::int64_t>(idx.size());
    RelTable out;
    for (int c = 0; c < t.numColumns(); ++c) {
        const RelColumn &src = t.col(c);
        RelColumn dst(src.name, src.type);
        dst.heap = src.heap;
        dst.vals->resize(n);
        std::vector<std::int64_t> &vals = *dst.vals;
        // Morsels write disjoint ranges of the preallocated vector, so
        // the gather is bit-identical for any thread count.
        parallelFor(0, n, kMorselRows,
                    [&](std::int64_t k0, std::int64_t k1) {
            for (std::int64_t k = k0; k < k1; ++k) {
                std::int64_t i = idx[k];
                vals[k] = i < 0 ? kNullValue : src.get(i);
            }
        });
        out.addColumn(std::move(dst));
    }
    return out;
}

RelTable
Executor::run(const Query &q)
{
    std::map<std::string, RelTable> stages;
    RelTable last;
    for (const auto &s : q.stages) {
        last = runPlan(s.plan, stages);
        stages[s.id] = last;
    }
    return last;
}

RelTable
Executor::runPlan(const PlanPtr &plan,
                  const std::map<std::string, RelTable> &stages)
{
    return execNode(plan, stages);
}

namespace {

/** Human-readable label for one plan node's trace span. */
std::string
planNodeName(const Plan &p)
{
    switch (p.kind) {
      case PlanKind::Scan:
        return p.scanStage.empty() ? "scan " + p.scanTable
                                   : "scan stage " + p.scanStage;
      case PlanKind::Filter:
        return "filter";
      case PlanKind::Project:
        return "project";
      case PlanKind::Join:
        return "join";
      case PlanKind::GroupBy:
        return "groupby";
      case PlanKind::OrderBy:
        return "orderby";
    }
    return "?";
}

/**
 * Rate converting the executor's abstract row-ops into the modelled
 * operator timeline (HostConfig's nominal per-thread rate). The trace
 * axis is modelled work, never wall clock.
 */
constexpr double kTraceOpsPerSec = 125e6;

} // namespace

RelTable
Executor::execNode(const PlanPtr &p,
                   const std::map<std::string, RelTable> &stages)
{
    obs::SimTracer &tracer = obs::SimTracer::global();
    bool tracing = !traceLabel.empty() && tracer.enabled();
    bool profiling =
        profileSink != nullptr && obs::profileCollectionEnabled();
    if (!tracing && !profiling)
        return execNodeDispatch(p, stages);
    if (tracing && traceTrack < 0)
        traceTrack = tracer.track("host:" + traceLabel, "operators");
    obs::ProfileNode *parent = profileCur;
    obs::ProfileNode local;
    if (profiling)
        profileCur = &local; // children report into this node
    double ops_before = trace.rowOps;
    RelTable out = execNodeDispatch(p, stages);
    double ops = trace.rowOps - ops_before;
    if (tracing) {
        // Children ran inside the dispatch, so their spans nest within
        // this one on the shared cumulative row-ops axis.
        tracer.span(traceTrack, planNodeName(*p), "operator",
                    ops_before / kTraceOpsPerSec,
                    trace.rowOps / kTraceOpsPerSec,
                    {obs::arg("rows", out.numRows()),
                     obs::arg("row_ops", ops)});
    }
    if (profiling) {
        profileCur = parent;
        local.name = planNodeName(*p);
        local.kind = "host-op";
        local.rowsOut = out.numRows();
        // Unary/n-ary operators consume their children's outputs;
        // scans have no relational input (rowsIn stays -1).
        std::int64_t rows_in = -1;
        for (const obs::ProfileNode &c : local.children)
            rows_in = rows_in < 0 ? c.rowsOut : rows_in + c.rowsOut;
        local.rowsIn = rows_in;
        // Abstract row-op cost only: host modelled seconds live in the
        // query's host-phase node, never per operator, so profile
        // stage-seconds keep summing exactly to the modelled totals.
        local.detail = "row_ops=" + obs::jsonNumber(ops);
        (parent ? *parent : *profileSink)
            .children.push_back(std::move(local));
    }
    return out;
}

RelTable
Executor::execNodeDispatch(const PlanPtr &p,
                           const std::map<std::string, RelTable> &stages)
{
    switch (p->kind) {
      case PlanKind::Scan:
        return execScan(*p, stages);
      case PlanKind::Filter: {
        // MonetDB filters produce candidate lists (8B per surviving
        // row), not materialised copies.
        RelTable in = execNode(p->children[0], stages);
        RelTable out = execFilter(*p, in);
        accountIntermediate(out.numRows() * 8, in.numRows() * 8);
        return out;
      }
      case PlanKind::Project: {
        // Only computed expressions materialise new BATs; column
        // pass-throughs are views.
        RelTable in = execNode(p->children[0], stages);
        RelTable out = execProject(*p, in);
        std::int64_t computed = 0;
        for (const auto &ne : p->projections)
            computed += ne.expr->kind != ExprKind::ColRef;
        accountIntermediate(out.numRows() * 8 * computed,
                            in.numRows() * 8);
        return out;
      }
      case PlanKind::Join: {
        // Joins materialise <leftRowId, rightRowId> pair lists.
        RelTable l = execNode(p->children[0], stages);
        RelTable r = execNode(p->children[1], stages);
        RelTable out = execJoin(*p, l, r);
        accountIntermediate(out.numRows() * 16,
                            (l.numRows() + r.numRows()) * 8);
        return out;
      }
      case PlanKind::GroupBy: {
        RelTable in = execNode(p->children[0], stages);
        RelTable out = execGroupBy(*p, in);
        accountIntermediate(out.residentBytes(), in.numRows() * 8);
        return out;
      }
      case PlanKind::OrderBy: {
        // Sorting materialises an order-index permutation.
        RelTable in = execNode(p->children[0], stages);
        RelTable out = execOrderBy(*p, in);
        accountIntermediate(in.numRows() * 8, in.numRows() * 8);
        return out;
      }
    }
    panic("unknown plan node");
}

RelTable
Executor::execScan(const Plan &p,
                   const std::map<std::string, RelTable> &stages)
{
    if (!p.scanStage.empty()) {
        auto it = stages.find(p.scanStage);
        if (it == stages.end())
            fatal("unknown stage '", p.scanStage, "'");
        return it->second;
    }
    const CatalogEntry &entry = catalog.get(p.scanTable);
    const Table &t = *entry.table;
    std::vector<std::string> wanted = p.scanColumns;
    if (wanted.empty()) {
        for (int i = 0; i < t.numColumns(); ++i)
            wanted.push_back(t.col(i).name());
    }
    // Materialise columns concurrently (per-column flash reads and
    // decode), then account metrics serially in column order so the
    // trace matches the serial engine bit for bit.
    std::vector<RelColumn> cols(wanted.size());
    TaskGroup group;
    for (std::size_t w = 0; w < wanted.size(); ++w) {
        group.run([&, w] {
            const std::string &name = wanted[w];
            int ci = t.indexOf(name);
            const Column &c = t.col(ci);
            std::string out_name = p.scanAlias.empty()
                ? name : p.scanAlias + "." + name;
            RelColumn rc(out_name, c.type());
            if (flashSwitch && entry.resident) {
                entry.resident->readColumnRange(*flashSwitch,
                                                FlashPort::Host, ci, 0,
                                                c.size(), *rc.vals);
            } else {
                *rc.vals = c.data();
            }
            if (c.type() == ColumnType::Varchar)
                rc.heap = t.stringsPtr();
            cols[w] = std::move(rc);
        });
    }
    group.wait();
    RelTable out;
    for (std::size_t w = 0; w < wanted.size(); ++w) {
        const std::string &name = wanted[w];
        const Column &c = t.col(t.indexOf(name));
        if (flashSwitch) {
            trace.flashBytesRead += c.storedBytes();
            // Without a resident handle the bytes do not physically
            // round-trip (the service's sharded catalogs compute on
            // in-memory columns), but the host-port ledger still
            // records the modelled stream so contention is observable.
            if (!entry.resident)
                flashSwitch->accountRead(FlashPort::Host,
                                         c.storedBytes());
        }
        trace.touchedBaseBytes += c.storedBytes();
        if (c.type() == ColumnType::Varchar) {
            std::int64_t hb = columnHeapBytes(entry, name);
            if (flashSwitch) {
                trace.flashBytesRead += hb;
                if (!entry.resident)
                    flashSwitch->accountRead(FlashPort::Host, hb);
            }
            trace.touchedBaseBytes += hb;
        }
        trace.rowOps += c.size() * 0.25; // mmap-style decode
        out.addColumn(std::move(cols[w]));
    }
    return out;
}

RelTable
Executor::execFilter(const Plan &p, const RelTable &in)
{
    trace.rowOps += in.numRows() * (1.0 + exprCost(p.predicate));
    if (!batchExecutionEnabled()) {
        // Scalar oracle: evaluate the whole predicate tree over every
        // row, then build the candidate list. Each morsel collects its
        // surviving rows locally; concatenating the locals in morsel
        // order yields exactly the serial ascending row order.
        BitVector mask = evalPredicate(p.predicate, in);
        auto morsels =
            ThreadPool::splitRange(0, in.numRows(), kMorselRows);
        std::vector<std::vector<std::int64_t>> locals(morsels.size());
        parallelFor(0, static_cast<std::int64_t>(morsels.size()), 1,
                    [&](std::int64_t m0, std::int64_t m1) {
            for (std::int64_t m = m0; m < m1; ++m) {
                auto [b, e] = morsels[m];
                std::vector<std::int64_t> &l = locals[m];
                for (std::int64_t i = b; i < e; ++i)
                    if (mask.get(i))
                        l.push_back(i);
            }
        });
        std::vector<std::int64_t> idx;
        idx.reserve(mask.popcount());
        for (const auto &l : locals)
            idx.insert(idx.end(), l.begin(), l.end());
        return gatherRows(in, idx);
    }
    // Batched: conjuncts short-circuit over a shrinking selection, so
    // each later conjunct touches only surviving rows instead of the
    // whole relation. Morsel-local survivor lists concatenated in
    // morsel order keep the ascending row order (and hence results)
    // bit-identical to the scalar path for any thread count.
    std::vector<ExprPtr> conjuncts;
    splitAndConjuncts(p.predicate, conjuncts);
    SelectionVector sel = SelectionVector::dense(in.numRows());
    for (const ExprPtr &c : conjuncts) {
        if (sel.empty())
            break;
        // Compiled mask kernel where the conjunct is eligible: the
        // morsel writes verdict words and survivors are extracted by
        // bit walk, instead of an interpreted pass plus a branch per
        // row. The mask is bit-identical to evalExprSel's verdicts, so
        // the surviving row order is unchanged.
        auto kern = ConjunctKernel::tryCompile(c, in);
        auto morsels = ThreadPool::splitRange(0, sel.size(), kMorselRows);
        std::vector<std::vector<std::int64_t>> locals(morsels.size());
        const std::int64_t *base = sel.data(); // nullptr when dense
        parallelFor(0, static_cast<std::int64_t>(morsels.size()), 1,
                    [&](std::int64_t m0, std::int64_t m1) {
            ConjunctKernel::Scratch scratch;
            BitVector mask;
            for (std::int64_t m = m0; m < m1; ++m) {
                auto [b, e] = morsels[m];
                const std::int64_t *rows =
                    base == nullptr ? nullptr : base + b;
                std::vector<std::int64_t> &l = locals[m];
                if (kern != nullptr) {
                    kern->evalMask(in, rows, b, e - b, mask, scratch);
                    const std::int64_t nw = mask.numWords();
                    for (std::int64_t w = 0; w < nw; ++w) {
                        std::uint32_t mw = mask.word(w);
                        const std::int64_t wb = w * 32;
                        while (mw != 0) {
                            l.push_back(sel[b + wb + __builtin_ctz(mw)]);
                            mw &= mw - 1;
                        }
                    }
                    continue;
                }
                RelColumn v = evalExprSel(c, in, rows, b, e - b, "pred");
                for (std::int64_t j = 0; j < e - b; ++j) {
                    std::int64_t val = v.get(j);
                    if (val != 0 && val != kNullValue)
                        l.push_back(sel[b + j]);
                }
            }
        });
        std::vector<std::int64_t> next;
        std::size_t total = 0;
        for (const auto &l : locals)
            total += l.size();
        next.reserve(total);
        for (const auto &l : locals)
            next.insert(next.end(), l.begin(), l.end());
        sel.assign(std::move(next));
    }
    if (sel.isDense() && sel.size() == in.numRows())
        return in; // all rows pass: share columns, materialize nothing
    return gatherRows(in, sel.toIndices());
}

RelTable
Executor::execProject(const Plan &p, const RelTable &in)
{
    // Projections are independent: evaluate them as a task group, then
    // assemble columns and merge per-task metrics in projection order
    // (the same order the serial loop accumulated them).
    std::vector<RelColumn> cols(p.projections.size());
    TaskGroup group;
    for (std::size_t i = 0; i < p.projections.size(); ++i) {
        group.run([&, i] {
            cols[i] = evalExpr(p.projections[i].expr, in,
                               p.projections[i].name);
            cols[i].name = p.projections[i].name;
        });
    }
    group.wait();
    RelTable out;
    for (std::size_t i = 0; i < p.projections.size(); ++i) {
        trace.rowOps += in.numRows() * exprCost(p.projections[i].expr);
        out.addColumn(std::move(cols[i]));
    }
    return out;
}

RelTable
Executor::execJoin(const Plan &p, const RelTable &left,
                   const RelTable &right)
{
    AQ_ASSERT(p.leftKeys.size() == p.rightKeys.size());
    std::vector<int> lk = resolveColumns(left, p.leftKeys);
    std::vector<int> rk = resolveColumns(right, p.rightKeys);

    // Candidate pairs from the equi-keys (or the full cross product
    // when keyless, used only for scalar broadcasts).
    std::vector<std::int64_t> li, ri;
    if (lk.empty()) {
        for (std::int64_t i = 0; i < left.numRows(); ++i) {
            for (std::int64_t j = 0; j < right.numRows(); ++j) {
                li.push_back(i);
                ri.push_back(j);
            }
        }
        trace.rowOps += static_cast<double>(left.numRows())
            * right.numRows();
    } else {
        trace.rowOps += right.numRows() * 4.0;
        if (intKeyable(left, lk) && intKeyable(right, rk)) {
            // All-integer keys: fixed-width composites skip the
            // per-row key-string allocation.
            hashJoinCandidates<IntKey, IntKeyHash>(
                left, lk, right, rk, makeIntKey, li, ri);
        } else {
            hashJoinCandidates<std::string, std::hash<std::string>>(
                left, lk, right, rk, makeKey, li, ri);
        }
        trace.rowOps += left.numRows() * 4.0 + li.size() * 2.0;
    }

    // Apply the residual predicate over the combined candidate rows.
    std::vector<char> pass(li.size(), 1);
    if (p.residual) {
        std::vector<std::string> need;
        collectColumns(p.residual, need);
        RelTable combined;
        if (batchExecutionEnabled() && !need.empty()) {
            // Gather only the columns the residual references (names
            // are disjoint across sides), at the candidate pairs.
            std::int64_t pairs = static_cast<std::int64_t>(li.size());
            for (const auto &cname : need) {
                bool from_left = left.hasColumn(cname);
                const RelColumn &src = from_left ? left.col(cname)
                                                 : right.col(cname);
                const std::vector<std::int64_t> &idx =
                    from_left ? li : ri;
                RelColumn cc(cname, src.type);
                cc.heap = src.heap;
                cc.vals->resize(pairs);
                std::vector<std::int64_t> &vals = *cc.vals;
                parallelFor(0, pairs, kMorselRows,
                            [&](std::int64_t k0, std::int64_t k1) {
                    for (std::int64_t k = k0; k < k1; ++k) {
                        std::int64_t i = idx[k];
                        vals[k] = i < 0 ? kNullValue : src.get(i);
                    }
                });
                combined.addColumn(std::move(cc));
            }
        } else {
            RelTable lg = gatherRows(left, li);
            RelTable rg = gatherRows(right, ri);
            for (int c = 0; c < lg.numColumns(); ++c)
                combined.addColumn(lg.col(c));
            for (int c = 0; c < rg.numColumns(); ++c)
                combined.addColumn(rg.col(c));
        }
        BitVector mask = evalPredicate(p.residual, combined);
        trace.rowOps += li.size() * exprCost(p.residual);
        for (std::size_t k = 0; k < li.size(); ++k)
            pass[k] = mask.get(k);
    }

    std::vector<std::int64_t> out_l, out_r;
    switch (p.joinType) {
      case JoinType::Inner: {
        for (std::size_t k = 0; k < li.size(); ++k) {
            if (pass[k]) {
                out_l.push_back(li[k]);
                out_r.push_back(ri[k]);
            }
        }
        break;
      }
      case JoinType::LeftSemi:
      case JoinType::LeftAnti: {
        std::vector<char> matched(left.numRows(), 0);
        for (std::size_t k = 0; k < li.size(); ++k)
            if (pass[k])
                matched[li[k]] = 1;
        bool want = p.joinType == JoinType::LeftSemi;
        for (std::int64_t i = 0; i < left.numRows(); ++i)
            if (static_cast<bool>(matched[i]) == want)
                out_l.push_back(i);
        break;
      }
      case JoinType::LeftOuter: {
        std::vector<char> matched(left.numRows(), 0);
        for (std::size_t k = 0; k < li.size(); ++k) {
            if (pass[k]) {
                matched[li[k]] = 1;
                out_l.push_back(li[k]);
                out_r.push_back(ri[k]);
            }
        }
        for (std::int64_t i = 0; i < left.numRows(); ++i) {
            if (!matched[i]) {
                out_l.push_back(i);
                out_r.push_back(-1); // NULL right side
            }
        }
        break;
      }
    }

    RelTable lg = gatherRows(left, out_l);
    if (p.joinType == JoinType::LeftSemi || p.joinType == JoinType::LeftAnti)
        return lg;
    RelTable rg = gatherRows(right, out_r);
    RelTable out;
    for (int c = 0; c < lg.numColumns(); ++c)
        out.addColumn(lg.col(c));
    for (int c = 0; c < rg.numColumns(); ++c)
        out.addColumn(rg.col(c));
    return out;
}

RelTable
Executor::execGroupBy(const Plan &p, const RelTable &in)
{
    std::vector<int> gcols = resolveColumns(in, p.groupColumns);

    // Evaluate aggregate inputs once, vectorised.
    std::vector<RelColumn> agg_in;
    for (const auto &a : p.aggregates) {
        agg_in.push_back(a.input ? evalExpr(a.input, in)
                                 : RelColumn("one", ColumnType::Int64));
        if (!a.input)
            agg_in.back().vals->assign(in.numRows(), 1);
        trace.rowOps += in.numRows() * (a.input ? exprCost(a.input) : 0.5);
    }

    std::size_t nagg = p.aggregates.size();

    // SQL: a global aggregate over an empty input yields one row
    // (NULL for Sum/Min/Max/Avg, 0 for Count).
    bool empty_global = p.groupColumns.empty() && in.numRows() == 0;

    // Group ids in row order; first-seen order defines the output
    // order, so both key representations yield identical results.
    std::vector<std::int64_t> first_rows;
    if (empty_global)
        first_rows.push_back(-1);
    std::vector<int> gidx(in.numRows());
    // Grouping only needs key EQUALITY, and heap interning gives every
    // distinct string one canonical offset — so varchar group columns
    // can be keyed by their raw offset values too.
    if (gcols.size() <= 4) {
        std::unordered_map<IntKey, int, IntKeyHash> index;
        index.reserve(in.numRows());
        for (std::int64_t i = 0; i < in.numRows(); ++i) {
            auto [it, fresh] = index.emplace(
                makeIntKey(in, gcols, i),
                static_cast<int>(first_rows.size()));
            if (fresh)
                first_rows.push_back(i);
            gidx[i] = it->second;
        }
    } else {
        std::unordered_map<std::string, int> index;
        index.reserve(in.numRows());
        for (std::int64_t i = 0; i < in.numRows(); ++i) {
            auto [it, fresh] = index.emplace(
                makeKey(in, gcols, i),
                static_cast<int>(first_rows.size()));
            if (fresh)
                first_rows.push_back(i);
            gidx[i] = it->second;
        }
    }
    std::int64_t num_groups =
        static_cast<std::int64_t>(first_rows.size());

    // Accumulate one aggregate at a time into flat per-group arrays.
    // Each group still sees its rows in ascending row order, so every
    // accumulator value matches the row-at-a-time formulation exactly.
    std::vector<std::int64_t> accum(nagg * num_groups, 0);
    std::vector<std::int64_t> counts(nagg * num_groups, 0);
    std::vector<std::vector<std::unordered_set<std::int64_t>>>
        distinct(nagg);
    std::int64_t nrows = in.numRows();
    for (std::size_t a = 0; a < nagg; ++a) {
        std::int64_t *acc = accum.data() + a * num_groups;
        std::int64_t *cnt = counts.data() + a * num_groups;
        const std::vector<std::int64_t> &av = *agg_in[a].vals;
        switch (p.aggregates[a].kind) {
          case AggKind::Sum:
          case AggKind::Avg:
            for (std::int64_t i = 0; i < nrows; ++i) {
                std::int64_t v = av[i];
                if (v == kNullValue)
                    continue;
                cnt[gidx[i]]++;
                acc[gidx[i]] += v;
            }
            break;
          case AggKind::Min:
            std::fill(acc, acc + num_groups,
                      std::numeric_limits<std::int64_t>::max());
            for (std::int64_t i = 0; i < nrows; ++i) {
                std::int64_t v = av[i];
                if (v == kNullValue)
                    continue;
                cnt[gidx[i]]++;
                acc[gidx[i]] = std::min(acc[gidx[i]], v);
            }
            break;
          case AggKind::Max:
            std::fill(acc, acc + num_groups,
                      std::numeric_limits<std::int64_t>::min());
            for (std::int64_t i = 0; i < nrows; ++i) {
                std::int64_t v = av[i];
                if (v == kNullValue)
                    continue;
                cnt[gidx[i]]++;
                acc[gidx[i]] = std::max(acc[gidx[i]], v);
            }
            break;
          case AggKind::Count:
            for (std::int64_t i = 0; i < nrows; ++i) {
                if (av[i] != kNullValue)
                    cnt[gidx[i]]++;
            }
            break;
          case AggKind::CountDistinct:
            distinct[a].resize(num_groups);
            for (std::int64_t i = 0; i < nrows; ++i) {
                std::int64_t v = av[i];
                if (v == kNullValue)
                    continue;
                cnt[gidx[i]]++;
                distinct[a][gidx[i]].insert(v);
            }
            break;
        }
        if (empty_global)
            acc[0] = kNullValue;
    }
    double group_cost = in.numRows() * (4.0 + nagg);
    trace.rowOps += group_cost;
    // Aggregations over huge group domains (orderkey, partkey, custkey
    // granularity) run effectively single-threaded in MonetDB: the
    // shared hash table defeats its per-column parallelism. This is
    // the behaviour AQUOMAN exploits on q17/q18 (Sec. VIII-B: "the
    // part that is off-loaded happens to execute sequentially on the
    // host, effectively using only one hardware thread").
    if (num_groups > 1024 && num_groups > in.numRows() / 50)
        trace.seqRowOps += group_cost * 0.9;

    RelTable out;
    for (int gc : gcols) {
        const RelColumn &src = in.col(gc);
        RelColumn dst(src.name, src.type);
        dst.heap = src.heap;
        for (std::int64_t g = 0; g < num_groups; ++g)
            dst.vals->push_back(src.get(first_rows[g]));
        out.addColumn(std::move(dst));
    }
    for (std::size_t a = 0; a < nagg; ++a) {
        const AggSpec &spec = p.aggregates[a];
        ColumnType in_type = spec.input ? agg_in[a].type : ColumnType::Int64;
        ColumnType out_type = in_type;
        if (spec.kind == AggKind::Count
                || spec.kind == AggKind::CountDistinct) {
            out_type = ColumnType::Int64;
        } else if (spec.kind == AggKind::Avg) {
            out_type = ColumnType::Decimal;
        }
        const std::int64_t *acc = accum.data() + a * num_groups;
        const std::int64_t *cnt = counts.data() + a * num_groups;
        RelColumn dst(spec.name, out_type);
        for (std::int64_t g = 0; g < num_groups; ++g) {
            std::int64_t v = 0;
            switch (spec.kind) {
              case AggKind::Sum:
                v = acc[g];
                break;
              case AggKind::Min:
              case AggKind::Max:
                v = cnt[g] ? acc[g] : kNullValue;
                break;
              case AggKind::Count:
                v = cnt[g];
                break;
              case AggKind::CountDistinct:
                v = static_cast<std::int64_t>(distinct[a][g].size());
                break;
              case AggKind::Avg: {
                std::int64_t sum = acc[g];
                if (in_type != ColumnType::Decimal)
                    sum *= kDecimalScale;
                v = cnt[g] ? sum / cnt[g] : kNullValue;
                break;
              }
            }
            dst.vals->push_back(v);
        }
        out.addColumn(std::move(dst));
    }
    return out;
}

RelTable
Executor::execOrderBy(const Plan &p, const RelTable &in)
{
    std::vector<int> keys;
    for (const auto &k : p.sortKeys)
        keys.push_back(in.indexOf(k.column));
    std::vector<std::int64_t> idx(in.numRows());
    for (std::int64_t i = 0; i < in.numRows(); ++i)
        idx[i] = i;
    if (intKeyable(in, keys)) {
        // All-integer sort keys: compare raw values without the
        // per-key column-type dispatch.
        std::vector<const std::int64_t *> kv;
        std::vector<bool> desc;
        for (std::size_t k = 0; k < keys.size(); ++k) {
            kv.push_back(in.col(keys[k]).vals->data());
            desc.push_back(p.sortKeys[k].descending);
        }
        std::stable_sort(idx.begin(), idx.end(),
            [&](std::int64_t a, std::int64_t b) {
                for (std::size_t k = 0; k < kv.size(); ++k) {
                    std::int64_t x = kv[k][a], y = kv[k][b];
                    if (x != y)
                        return desc[k] ? x > y : x < y;
                }
                return false;
            });
    } else {
        std::stable_sort(idx.begin(), idx.end(),
            [&](std::int64_t a, std::int64_t b) {
                for (std::size_t k = 0; k < keys.size(); ++k) {
                    int c = compareValues(in.col(keys[k]), a, b);
                    if (c != 0)
                        return p.sortKeys[k].descending ? c > 0 : c < 0;
                }
                return false;
            });
    }
    double n = static_cast<double>(std::max<std::int64_t>(in.numRows(), 1));
    double sort_ops = n * std::log2(n + 1) * 3.0;
    trace.rowOps += sort_ops;
    trace.seqRowOps += sort_ops * 0.3; // merge phases parallelise poorly
    if (p.limit >= 0 && static_cast<std::int64_t>(idx.size()) > p.limit)
        idx.resize(p.limit);
    return gatherRows(in, idx);
}

void
Executor::accountIntermediate(std::int64_t out_bytes,
                              std::int64_t child_bytes)
{
    trace.totalIntermediateBytes += out_bytes;
    trace.peakIntermediateBytes = std::max(trace.peakIntermediateBytes,
                                           child_bytes + out_bytes);
}

} // namespace aquoman
