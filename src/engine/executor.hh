/**
 * @file
 * Column-at-a-time query executor over the flash-resident column store.
 * This is the software baseline (the paper's MonetDB role): it computes
 * exact query answers and collects machine-independent work metrics
 * which HostModel converts into runtimes for the S and L hosts.
 */

#ifndef AQUOMAN_ENGINE_EXECUTOR_HH
#define AQUOMAN_ENGINE_EXECUTOR_HH

#include <map>
#include <string>
#include <vector>

#include "columnstore/catalog.hh"
#include "engine/metrics.hh"
#include "obs/profile.hh"
#include "relalg/plan.hh"
#include "relalg/reltable.hh"

namespace aquoman {

/** Cost (abstract row-ops) of evaluating one expression node per row. */
double exprCost(const ExprPtr &e);

/**
 * Gather rows @p idx of @p t into a new relation. A negative index
 * emits a NULL row (used by outer joins).
 */
RelTable gatherRows(const RelTable &t, const std::vector<std::int64_t> &idx);

/** Executes Query stages against a Catalog. */
class Executor
{
  public:
    /**
     * @param cat database catalog
     * @param sw  flash controller switch; when non-null, base-table
     *            scans move real bytes through the host port
     */
    explicit Executor(const Catalog &cat, ControllerSwitch *sw = nullptr)
        : catalog(cat), flashSwitch(sw)
    {
    }

    /** Run all stages; returns the last stage's relation. */
    RelTable run(const Query &q);

    /**
     * Run a single plan tree against previously computed stage results.
     */
    RelTable runPlan(const PlanPtr &plan,
                     const std::map<std::string, RelTable> &stages);

    /** Work metrics accumulated since construction (or clearMetrics). */
    const EngineMetrics &metrics() const { return trace; }
    void clearMetrics() { trace = EngineMetrics{}; }

    /**
     * Name this executor's simulation-trace track ("host:<label>").
     * While the tracer is enabled, every plan node then emits one span
     * on the modelled operator timeline (cumulative abstract row-ops at
     * the host's nominal per-thread rate — never wall clock, so spans
     * are identical for every AQUOMAN_THREADS). Empty label (the
     * default) keeps the executor un-traced.
     */
    void
    setTraceLabel(const std::string &label)
    {
        traceLabel = label;
        traceTrack = -1;
    }

    /**
     * Collect per-operator profile nodes into @p sink: each top-level
     * runPlan() appends one "host-op" subtree (rows in/out plus the
     * modelled row-op cost) as a child of @p sink. Collection is also
     * gated on obs::profileCollectionEnabled(); pass nullptr to stop.
     * The sink must outlive every run routed through this executor.
     */
    void setProfileSink(obs::ProfileNode *sink) { profileSink = sink; }

  private:
    RelTable execNode(const PlanPtr &p,
                      const std::map<std::string, RelTable> &stages);
    RelTable execNodeDispatch(const PlanPtr &p,
                              const std::map<std::string, RelTable> &stages);

    RelTable execScan(const Plan &p,
                      const std::map<std::string, RelTable> &stages);
    RelTable execFilter(const Plan &p, const RelTable &in);
    RelTable execProject(const Plan &p, const RelTable &in);
    RelTable execJoin(const Plan &p, const RelTable &left,
                      const RelTable &right);
    RelTable execGroupBy(const Plan &p, const RelTable &in);
    RelTable execOrderBy(const Plan &p, const RelTable &in);

    /**
     * Track intermediate memory with MonetDB-like charges: @p out_bytes
     * is the operator's materialised footprint (candidate lists for
     * filters, computed BATs for projects, RowID pair lists for joins),
     * not the logical relation width.
     */
    void accountIntermediate(std::int64_t out_bytes,
                             std::int64_t child_bytes);

    const Catalog &catalog;
    ControllerSwitch *flashSwitch;
    EngineMetrics trace;

    std::string traceLabel;
    int traceTrack = -1;

    obs::ProfileNode *profileSink = nullptr;
    /** Node the currently executing operator reports into. */
    obs::ProfileNode *profileCur = nullptr;
};

} // namespace aquoman

#endif // AQUOMAN_ENGINE_EXECUTOR_HH
