/**
 * @file
 * Analytic host performance model. Mirrors the paper's baseline
 * methodology (Sec. VIII-A): MonetDB on an x86 host with T hardware
 * threads and D bytes of DRAM, reading from SSDs capped at 2.4 GB/s.
 * Runtime is max(IO time, CPU time) plus a disk-swap penalty when the
 * working set exceeds DRAM (MonetDB's own disk-swap management).
 */

#ifndef AQUOMAN_ENGINE_HOST_MODEL_HH
#define AQUOMAN_ENGINE_HOST_MODEL_HH

#include <algorithm>
#include <cstdint>
#include <string>

#include "engine/metrics.hh"

namespace aquoman {

/** An x86 host configuration (Table VI). */
struct HostConfig
{
    std::string name;
    int hardwareThreads = 32;
    std::int64_t dramBytes = 128ll << 30;

    /** Aggregate SSD read bandwidth (paper: capped at 2.4 GB/s). */
    double storageReadBandwidth = 2.4e9;

    /** SSD write bandwidth for swap spills. */
    double storageWriteBandwidth = 2.4e9 * 5.0 / 8.0;

    /** Row-ops per second per hardware thread. */
    double perThreadRate = 125e6;

    /** Parallel efficiency of multi-threaded execution. */
    double parallelEfficiency = 0.8;

    /** The paper's small host: 4 threads, 16GB. */
    static HostConfig
    small()
    {
        HostConfig c;
        c.name = "S";
        c.hardwareThreads = 4;
        c.dramBytes = 16ll << 30;
        return c;
    }

    /** The paper's large host: 32 threads, 128GB. */
    static HostConfig
    large()
    {
        HostConfig c;
        c.name = "L";
        c.hardwareThreads = 32;
        c.dramBytes = 128ll << 30;
        return c;
    }
};

/** Derived timing/memory figures for one query on one host. */
struct HostRunEstimate
{
    double ioTime = 0.0;   ///< storage-bound seconds (incl. swap)
    double cpuTime = 0.0;  ///< compute-bound seconds
    double runtime = 0.0;  ///< max(ioTime, cpuTime)
    double cpuBusySeconds = 0.0; ///< thread-seconds of CPU consumed
    std::int64_t maxRss = 0;
    std::int64_t avgRss = 0;
};

/** Analytic model mapping EngineMetrics to host runtime. */
class HostModel
{
  public:
    explicit HostModel(HostConfig cfg) : config(std::move(cfg)) {}

    const HostConfig &cfg() const { return config; }

    /** Estimate runtime and memory for @p m on this host. */
    HostRunEstimate
    estimate(const EngineMetrics &m) const
    {
        return estimate(m, config.storageReadBandwidth);
    }

    /**
     * Estimate with an explicit effective storage read bandwidth.
     * The service layer passes the contention-adjusted bandwidth of a
     * ControllerSwitch host port when AQUOMAN traffic shares the
     * device (both_ports_active halves each port's share).
     */
    HostRunEstimate
    estimate(const EngineMetrics &m, double storage_read_bandwidth) const
    {
        HostRunEstimate e;
        double par_threads = 1.0
            + (config.hardwareThreads - 1) * config.parallelEfficiency;
        double par_time = (m.rowOps - m.seqRowOps)
            / (config.perThreadRate * par_threads);
        double seq_time = m.seqRowOps / config.perThreadRate;
        e.cpuTime = par_time + seq_time;

        e.ioTime = m.flashBytesRead / storage_read_bandwidth;
        // Clean base pages are evicted for free; only intermediates
        // beyond DRAM swap to SSD (write + read back), which is
        // MonetDB's own disk-swap management (Sec. VIII-A).
        if (m.peakIntermediateBytes > config.dramBytes) {
            std::int64_t spill =
                m.peakIntermediateBytes - config.dramBytes;
            e.ioTime += spill / config.storageWriteBandwidth
                + spill / storage_read_bandwidth;
        }
        e.runtime = std::max(e.ioTime, e.cpuTime);
        // Threads spin on useful work only for cpuTime's worth.
        e.cpuBusySeconds = m.rowOps / config.perThreadRate;

        e.maxRss = std::min<std::int64_t>(
            config.dramBytes, m.touchedBaseBytes + m.peakIntermediateBytes);
        e.avgRss = std::min<std::int64_t>(
            config.dramBytes,
            m.touchedBaseBytes / 2 + m.totalIntermediateBytes / 2);
        e.avgRss = std::min(e.avgRss, e.maxRss);
        return e;
    }

  private:
    HostConfig config;
};

} // namespace aquoman

#endif // AQUOMAN_ENGINE_HOST_MODEL_HH
