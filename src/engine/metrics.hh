/**
 * @file
 * Work metrics collected while executing a query functionally. The
 * metrics are machine-independent; HostModel and AquomanPerfModel turn
 * them into runtimes for specific system configurations (Table VI).
 */

#ifndef AQUOMAN_ENGINE_METRICS_HH
#define AQUOMAN_ENGINE_METRICS_HH

#include <cstdint>

namespace aquoman {

/** Machine-independent execution trace of one query (or sub-plan). */
struct EngineMetrics
{
    /** Abstract CPU work units (weighted per-row operator costs). */
    double rowOps = 0.0;

    /** Work that executes sequentially regardless of thread count. */
    double seqRowOps = 0.0;

    /** Base-table bytes read from flash. */
    std::int64_t flashBytesRead = 0;

    /** Distinct base-table bytes touched (page-cache working set). */
    std::int64_t touchedBaseBytes = 0;

    /** Peak bytes of live intermediate relations. */
    std::int64_t peakIntermediateBytes = 0;

    /** Sum of bytes of all intermediates ever produced (avg-RSS proxy). */
    std::int64_t totalIntermediateBytes = 0;

    /**
     * Modelled seconds the query waited in the service admission queue
     * before running (0 outside the query-service layer).
     */
    double queueWaitSec = 0.0;

    /**
     * Times the query was suspended to the host: admission-time DRAM
     * reservation failures plus runtime suspensions (Sec. VI-E).
     */
    std::int64_t suspendCount = 0;

    /**
     * Bytes shipped to the host to finish the query: device-to-host
     * DMA of results/intermediates plus base-table bytes the host
     * residual re-read through the controller switch's host port.
     */
    std::int64_t hostFinishBytes = 0;

    /** Merge-add another trace (e.g. a handed-off sub-plan). */
    void
    merge(const EngineMetrics &o)
    {
        rowOps += o.rowOps;
        seqRowOps += o.seqRowOps;
        flashBytesRead += o.flashBytesRead;
        touchedBaseBytes += o.touchedBaseBytes;
        peakIntermediateBytes =
            std::max(peakIntermediateBytes, o.peakIntermediateBytes);
        totalIntermediateBytes += o.totalIntermediateBytes;
        queueWaitSec += o.queueWaitSec;
        suspendCount += o.suspendCount;
        hostFinishBytes += o.hostFinishBytes;
    }
};

} // namespace aquoman

#endif // AQUOMAN_ENGINE_METRICS_HH
