/**
 * @file
 * Functional + timing model of a NAND flash device. Pages are allocated
 * in extents (contiguous page ranges) by the column-store layout layer.
 * Reads and writes move real bytes so that everything downstream (the
 * baseline engine and the AQUOMAN pipeline) computes on data that truly
 * round-tripped through the device, while counters feed the timing model.
 */

#ifndef AQUOMAN_FLASH_FLASH_DEVICE_HH
#define AQUOMAN_FLASH_FLASH_DEVICE_HH

#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "flash/flash_config.hh"
#include "obs/metrics.hh"

namespace aquoman {

/** Identifier of one flash page. */
using PageId = std::int64_t;

/** A contiguous run of flash pages backing one column file. */
struct FlashExtent
{
    PageId firstPage = 0;
    std::int64_t numPages = 0;
    std::int64_t byteLength = 0; ///< valid bytes (may end mid-page)
};

/**
 * Simulated NAND flash array. Storage is allocated lazily per page; the
 * device enforces its configured capacity and tracks read/write traffic
 * for the performance models.
 */
class FlashDevice
{
  public:
    explicit FlashDevice(const FlashConfig &cfg = FlashConfig{})
        : config(cfg)
    {
    }

    /** Device configuration. */
    const FlashConfig &cfg() const { return config; }

    /**
     * Allocate a fresh extent able to hold @p bytes. Requests are
     * rounded up to page granularity here — and only here: callers
     * pass their exact byte need (zero included, for an empty column
     * file) and always receive at least one whole page.
     * @throws FatalError when the device is full.
     */
    FlashExtent
    allocate(std::int64_t bytes)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (bytes < 0)
            bytes = 0;
        std::int64_t pages = (bytes + config.pageBytes - 1)
            / config.pageBytes;
        if (pages == 0)
            pages = 1;
        if (nextFreePage + pages > config.numPages()) {
            std::int64_t free_pages = config.numPages() - nextFreePage;
            fatal("flash device '", config.name, "' full: requested ",
                  bytes, " bytes (", pages, " pages), remaining "
                  "capacity ", free_pages * config.pageBytes, " bytes (",
                  free_pages, " of ", config.numPages(), " pages)");
        }
        FlashExtent ext{nextFreePage, pages, bytes};
        nextFreePage += pages;
        if (static_cast<std::int64_t>(pageStore.size()) < nextFreePage)
            pageStore.resize(nextFreePage);
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        if (reg.enabled()) {
            reg.set("flash." + config.name + ".allocated_pages",
                    static_cast<double>(nextFreePage));
            reg.set("flash." + config.name + ".capacity_used",
                    static_cast<double>(nextFreePage)
                        / static_cast<double>(config.numPages()));
        }
        return ext;
    }

    /** Write @p bytes at byte offset @p offset inside @p ext. */
    void
    write(const FlashExtent &ext, std::int64_t offset, const void *data,
          std::int64_t bytes)
    {
        AQ_ASSERT(offset >= 0 && offset + bytes <= ext.numPages
                  * config.pageBytes);
        {
            // The mutex only serialises the page store; the ledger
            // below is lock-free.
            std::lock_guard<std::mutex> lock(mu);
            const auto *src = static_cast<const std::uint8_t *>(data);
            std::int64_t pos = offset;
            std::int64_t remaining = bytes;
            while (remaining > 0) {
                PageId page = ext.firstPage + pos / config.pageBytes;
                std::int64_t in_page = pos % config.pageBytes;
                std::int64_t chunk =
                    std::min(remaining, config.pageBytes - in_page);
                ensurePage(page);
                std::memcpy(pageStore[page].data() + in_page, src,
                            chunk);
                src += chunk;
                pos += chunk;
                remaining -= chunk;
            }
        }
        std::int64_t pages_touched =
            (bytes + config.pageBytes - 1) / config.pageBytes;
        // Hot-path ledger: relaxed atomics, no ordering needed — the
        // counters are pure sums read after the writers joined.
        bytesWrittenCtr.fetch_add(bytes, std::memory_order_relaxed);
        pagesWrittenCtr.fetch_add(pages_touched,
                                  std::memory_order_relaxed);
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        if (reg.enabled()) {
            reg.add("flash." + config.name + ".bytes_written",
                    static_cast<double>(bytes));
            // Command-queue occupancy: one page command per touched
            // page, clipped to the queue depth the controller exposes.
            reg.observe("flash." + config.name + ".cmdq_occupancy",
                        static_cast<double>(std::min<std::int64_t>(
                            pages_touched, config.commandQueueDepth)));
        }
    }

    /** Read @p bytes at byte offset @p offset inside @p ext. */
    void
    read(const FlashExtent &ext, std::int64_t offset, void *out,
         std::int64_t bytes) const
    {
        AQ_ASSERT(offset >= 0 && offset + bytes <= ext.numPages
                  * config.pageBytes);
        {
            std::lock_guard<std::mutex> lock(mu);
            auto *dst = static_cast<std::uint8_t *>(out);
            std::int64_t pos = offset;
            std::int64_t remaining = bytes;
            while (remaining > 0) {
                PageId page = ext.firstPage + pos / config.pageBytes;
                std::int64_t in_page = pos % config.pageBytes;
                std::int64_t chunk =
                    std::min(remaining, config.pageBytes - in_page);
                if (page < static_cast<PageId>(pageStore.size())
                        && !pageStore[page].empty()) {
                    std::memcpy(dst, pageStore[page].data() + in_page,
                                chunk);
                } else {
                    std::memset(dst, 0, chunk); // erased reads as zero
                }
                dst += chunk;
                pos += chunk;
                remaining -= chunk;
            }
        }
        std::int64_t pages_touched =
            (bytes + config.pageBytes - 1) / config.pageBytes;
        bytesReadCtr.fetch_add(bytes, std::memory_order_relaxed);
        pagesReadCtr.fetch_add(pages_touched,
                               std::memory_order_relaxed);
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        if (reg.enabled()) {
            reg.add("flash." + config.name + ".bytes_read",
                    static_cast<double>(bytes));
            reg.observe("flash." + config.name + ".cmdq_occupancy",
                        static_cast<double>(std::min<std::int64_t>(
                            pages_touched, config.commandQueueDepth)));
        }
    }

    /**
     * Snapshot of the traffic counters (flash.bytesRead/bytesWritten/
     * pagesRead/pagesWritten). The hot-path ledgers are relaxed
     * atomics; each is an exact sum of the increments that happened
     * before the call.
     */
    StatSet
    stats() const
    {
        StatSet s;
        s.add("flash.bytesRead",
              static_cast<double>(
                  bytesReadCtr.load(std::memory_order_relaxed)));
        s.add("flash.bytesWritten",
              static_cast<double>(
                  bytesWrittenCtr.load(std::memory_order_relaxed)));
        s.add("flash.pagesRead",
              static_cast<double>(
                  pagesReadCtr.load(std::memory_order_relaxed)));
        s.add("flash.pagesWritten",
              static_cast<double>(
                  pagesWrittenCtr.load(std::memory_order_relaxed)));
        return s;
    }

    /** Pages currently allocated. */
    std::int64_t allocatedPages() const { return nextFreePage; }

  private:
    void
    ensurePage(PageId page)
    {
        AQ_ASSERT(page >= 0
                  && page < static_cast<PageId>(pageStore.size()));
        if (pageStore[page].empty())
            pageStore[page].resize(config.pageBytes, 0);
    }

    FlashConfig config;
    /// One device serves concurrent host/AQUOMAN streams; the command
    /// queue serialises page operations. The traffic counters are
    /// lock-free so the ledger adds no serialisation of their own.
    mutable std::mutex mu;
    std::vector<std::vector<std::uint8_t>> pageStore;
    PageId nextFreePage = 0;
    mutable std::atomic<std::int64_t> bytesReadCtr{0};
    mutable std::atomic<std::int64_t> bytesWrittenCtr{0};
    mutable std::atomic<std::int64_t> pagesReadCtr{0};
    mutable std::atomic<std::int64_t> pagesWrittenCtr{0};
};

} // namespace aquoman

#endif // AQUOMAN_FLASH_FLASH_DEVICE_HH
