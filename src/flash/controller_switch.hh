/**
 * @file
 * Flash controller switch (Fig. 3 of the paper). AQUOMAN and the x86
 * host both access NAND flash through this switch, which fairly
 * arbitrates page commands. In the simulator it accounts per-port
 * traffic and models the effective bandwidth each port observes when
 * both are active.
 */

#ifndef AQUOMAN_FLASH_CONTROLLER_SWITCH_HH
#define AQUOMAN_FLASH_CONTROLLER_SWITCH_HH

#include <atomic>
#include <cstdint>

#include "common/stats.hh"
#include "flash/flash_device.hh"
#include "obs/metrics.hh"

namespace aquoman {

/** Ports into the flash controller switch. */
enum class FlashPort
{
    Host,    ///< legacy OS I/O path
    Aquoman, ///< in-storage accelerator path
};

/**
 * Fair round-robin arbiter between the host I/O queues and the AQUOMAN
 * page-request stream. Functionally both ports read the same device;
 * the switch records who moved how many bytes so the performance models
 * can derive contention-adjusted bandwidth.
 */
class ControllerSwitch
{
  public:
    explicit ControllerSwitch(FlashDevice &dev) : device(dev) {}

    /** Read through the switch on behalf of @p port. */
    void
    read(FlashPort port, const FlashExtent &ext, std::int64_t offset,
         void *out, std::int64_t bytes)
    {
        device.read(ext, offset, out, bytes);
        portBytesRead[portIdx(port)].fetch_add(
            bytes, std::memory_order_relaxed);
        observePort("bytes_read", port, bytes);
    }

    /** Write through the switch on behalf of @p port. */
    void
    write(FlashPort port, const FlashExtent &ext, std::int64_t offset,
          const void *data, std::int64_t bytes)
    {
        device.write(ext, offset, data, bytes);
        portBytesWritten[portIdx(port)].fetch_add(
            bytes, std::memory_order_relaxed);
        observePort("bytes_written", port, bytes);
    }

    /**
     * Account @p bytes of modelled read traffic on @p port without
     * moving data. The AQUOMAN pipeline and the service layer's host
     * fallback compute on in-memory columns but stream page reads in
     * the model; this keeps the per-port ledgers complete.
     */
    void
    accountRead(FlashPort port, std::int64_t bytes)
    {
        portBytesRead[portIdx(port)].fetch_add(
            bytes, std::memory_order_relaxed);
        observePort("bytes_read", port, bytes);
    }

    /** Account modelled write traffic on @p port (no data movement). */
    void
    accountWrite(FlashPort port, std::int64_t bytes)
    {
        portBytesWritten[portIdx(port)].fetch_add(
            bytes, std::memory_order_relaxed);
        observePort("bytes_written", port, bytes);
    }

    /** Total bytes read on @p port (real + modelled). */
    std::int64_t
    bytesRead(FlashPort port) const
    {
        return portBytesRead[portIdx(port)].load(
            std::memory_order_relaxed);
    }

    /** Total bytes written on @p port (real + modelled). */
    std::int64_t
    bytesWritten(FlashPort port) const
    {
        return portBytesWritten[portIdx(port)].load(
            std::memory_order_relaxed);
    }

    /**
     * Bandwidth seen by one port. With both ports active the fair
     * arbiter halves each port's share of the device's read bandwidth.
     */
    double
    effectiveReadBandwidth(bool both_ports_active) const
    {
        double bw = device.cfg().readBandwidth;
        return both_ports_active ? bw / 2.0 : bw;
    }

    /**
     * Snapshot of the per-port traffic counters. The hot-path ledgers
     * are relaxed atomics (exact sums, no mutex on read/write paths).
     */
    StatSet
    stats() const
    {
        StatSet s;
        for (FlashPort port : {FlashPort::Host, FlashPort::Aquoman}) {
            std::int64_t r = bytesRead(port);
            std::int64_t w = bytesWritten(port);
            if (r != 0)
                s.add(portName(port) + ".bytesRead",
                      static_cast<double>(r));
            if (w != 0)
                s.add(portName(port) + ".bytesWritten",
                      static_cast<double>(w));
        }
        return s;
    }

    /** Underlying device. */
    FlashDevice &dev() { return device; }

  private:
    static std::string
    portName(FlashPort port)
    {
        return port == FlashPort::Host ? "host" : "aquoman";
    }

    /** Mirror port traffic into the global metrics registry. */
    void
    observePort(const char *what, FlashPort port, std::int64_t bytes)
    {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        if (reg.enabled()) {
            reg.add("switch." + device.cfg().name + "."
                        + portName(port) + "." + what,
                    static_cast<double>(bytes));
        }
    }

    static int portIdx(FlashPort port) { return static_cast<int>(port); }

    FlashDevice &device;
    /// Queries run concurrently through one switch; the per-port byte
    /// ledgers are lock-free relaxed atomics (exact sums).
    mutable std::atomic<std::int64_t> portBytesRead[2]{};
    mutable std::atomic<std::int64_t> portBytesWritten[2]{};
};

} // namespace aquoman

#endif // AQUOMAN_FLASH_CONTROLLER_SWITCH_HH
