/**
 * @file
 * Configuration of the simulated NAND flash device. Defaults reproduce
 * the BlueDBM custom flash card used by the AQUOMAN prototype (Sec. VII):
 * 8KB pages, 2.4 GB/s read, 800 MB/s write, command queue of depth 128.
 */

#ifndef AQUOMAN_FLASH_FLASH_CONFIG_HH
#define AQUOMAN_FLASH_FLASH_CONFIG_HH

#include <cstdint>
#include <string>

namespace aquoman {

/**
 * Flash page access granularity in bytes (paper: 8KB). The single
 * authority for the page size: FlashConfig defaults to it, the column
 * encoder sizes its page blocks by it, and FlashDevice::allocate
 * rounds every request up to this granularity.
 */
inline constexpr std::int64_t kFlashPageBytes = 8 * 1024;

/** Static parameters of a simulated flash device. */
struct FlashConfig
{
    /** Device name, used in diagnostics (e.g. "ssd0" in a multi-SSD
     *  service array). */
    std::string name = "flash";

    /** Page access granularity in bytes (paper: 8KB). */
    std::int64_t pageBytes = kFlashPageBytes;

    /** Pages per erase block. */
    int pagesPerBlock = 256;

    /** Sequential read bandwidth in bytes/second (paper: 2.4 GB/s). */
    double readBandwidth = 2.4e9;

    /** Write bandwidth in bytes/second (paper: 800 MB/s). */
    double writeBandwidth = 0.8e9;

    /** Single page read latency in seconds (typical NAND + transfer). */
    double pageReadLatency = 100e-6;

    /** Depth of the flash command queue (paper: 128). */
    int commandQueueDepth = 128;

    /** Total device capacity in bytes (paper: 1TB; tests shrink this). */
    std::int64_t capacityBytes = 1ll << 40;

    /** Number of pages the device can hold. */
    std::int64_t numPages() const { return capacityBytes / pageBytes; }

    /**
     * Time to stream @p bytes sequentially out of flash. The pipeline of
     * in-flight page reads (command queue) hides per-page latency, so
     * streaming time is bandwidth-bound with a single leading latency.
     */
    double
    sequentialReadTime(std::int64_t bytes) const
    {
        if (bytes <= 0)
            return 0.0;
        return pageReadLatency + static_cast<double>(bytes) / readBandwidth;
    }

    /** Time to write @p bytes sequentially. */
    double
    sequentialWriteTime(std::int64_t bytes) const
    {
        if (bytes <= 0)
            return 0.0;
        return static_cast<double>(bytes) / writeBandwidth;
    }
};

} // namespace aquoman

#endif // AQUOMAN_FLASH_FLASH_CONFIG_HH
