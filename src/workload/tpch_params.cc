#include "workload/tpch_params.hh"

#include <algorithm>

#include "common/date.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "tpch/text_pool.hh"

namespace aquoman::workload {

namespace {

const std::string &
pick(Rng &rng, const std::vector<std::string> &pool)
{
    return pool[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(pool.size()) - 1))];
}

/** "Brand#MN" with M,N uniform in [1,5] (spec 4.2.3: P_BRAND). */
std::string
pickBrand(Rng &rng)
{
    return "Brand#" + std::to_string(rng.uniform(1, 5)) +
           std::to_string(rng.uniform(1, 5));
}

/** Full p_type: syl1 + ' ' + syl2 + ' ' + syl3. */
std::string
pickType(Rng &rng)
{
    return pick(rng, tpch::kTypeSyl1) + " " + pick(rng, tpch::kTypeSyl2) +
           " " + pick(rng, tpch::kTypeSyl3);
}

/** Full p_container: syl1 + ' ' + syl2. */
std::string
pickContainer(Rng &rng)
{
    return pick(rng, tpch::kContainerSyl1) + " " +
           pick(rng, tpch::kContainerSyl2);
}

std::string
pickNation(Rng &rng)
{
    auto i = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(tpch::kNations.size()) - 1));
    return tpch::kNations[i].name;
}

/** January 1st of a uniform year in [lo, hi]. */
std::int32_t
pickJan1(Rng &rng, int lo, int hi)
{
    return daysFromCivil(static_cast<int>(rng.uniform(lo, hi)), 1, 1);
}

/** First of a uniform month in [1993-01, 1993-01 + months - 1]. */
std::int32_t
pickMonthStart(Rng &rng, int months)
{
    return addMonths(daysFromCivil(1993, 1, 1),
                     static_cast<int>(rng.uniform(0, months - 1)));
}

/** @p n distinct values in [lo, hi], in draw order. */
std::vector<std::int64_t>
pickDistinct(Rng &rng, int n, std::int64_t lo, std::int64_t hi)
{
    std::vector<std::int64_t> out;
    while (static_cast<int>(out.size()) < n) {
        std::int64_t v = rng.uniform(lo, hi);
        if (std::find(out.begin(), out.end(), v) == out.end())
            out.push_back(v);
    }
    return out;
}

} // namespace

std::string
QueryInstance::name() const
{
    std::string base =
        (queryNumber < 10 ? "q0" : "q") + std::to_string(queryNumber);
    if (index == 0)
        return base;
    return base + "#" + std::to_string(index);
}

tpch::TpchQueryParams
drawParams(std::uint64_t seed, int query_number, std::uint64_t index)
{
    AQ_ASSERT(query_number >= 1 && query_number <= 22);
    tpch::TpchQueryParams p;
    if (index == 0)
        return p; // validation parameters, always instance 0

    Rng rng = Rng::stream(seed, static_cast<std::uint64_t>(query_number),
                          index);
    switch (query_number) {
      case 1:
        // DELTA in [60, 120] days back from 1998-12-01 (spec 2.4.1).
        p.q1CutoffDate = daysFromCivil(1998, 12, 1) -
                         static_cast<std::int32_t>(rng.uniform(60, 120));
        break;
      case 2:
        p.q2Size = rng.uniform(1, 50);
        p.q2TypeSuffix = pick(rng, tpch::kTypeSyl3);
        p.q2Region = pick(rng, tpch::kRegions);
        break;
      case 3:
        p.q3Segment = pick(rng, tpch::kSegments);
        p.q3Date = daysFromCivil(1995, 3, 1) +
                   static_cast<std::int32_t>(rng.uniform(0, 30));
        break;
      case 4:
        // First of a month in [1993-01, 1997-10] (58 months).
        p.q4StartDate = pickMonthStart(rng, 58);
        break;
      case 5:
        p.q5Region = pick(rng, tpch::kRegions);
        p.q5StartDate = pickJan1(rng, 1993, 1997);
        break;
      case 6:
        p.q6StartDate = pickJan1(rng, 1993, 1997);
        p.q6DiscountCents = rng.uniform(2, 9);
        p.q6Quantity = rng.uniform(24, 25);
        break;
      case 7: {
        auto pair = pickDistinct(
            rng, 2, 0, static_cast<std::int64_t>(tpch::kNations.size()) - 1);
        p.q7Nation1 = tpch::kNations[static_cast<std::size_t>(pair[0])].name;
        p.q7Nation2 = tpch::kNations[static_cast<std::size_t>(pair[1])].name;
        break;
      }
      case 8: {
        // Nation first; its region follows (spec: REGION is the region
        // of NATION).
        auto n = static_cast<std::size_t>(rng.uniform(
            0, static_cast<std::int64_t>(tpch::kNations.size()) - 1));
        p.q8Nation = tpch::kNations[n].name;
        p.q8Region = tpch::kRegions[static_cast<std::size_t>(
            tpch::kNations[n].regionKey)];
        p.q8Type = pickType(rng);
        break;
      }
      case 9:
        p.q9Color = pick(rng, tpch::kColors);
        break;
      case 10:
        // First of a month in [1993-02, 1995-01] (24 months).
        p.q10StartDate = addMonths(daysFromCivil(1993, 2, 1),
                                   static_cast<int>(rng.uniform(0, 23)));
        break;
      case 11:
        p.q11Nation = pickNation(rng);
        break;
      case 12: {
        auto pair = pickDistinct(
            rng, 2, 0, static_cast<std::int64_t>(tpch::kModes.size()) - 1);
        p.q12Mode1 = tpch::kModes[static_cast<std::size_t>(pair[0])];
        p.q12Mode2 = tpch::kModes[static_cast<std::size_t>(pair[1])];
        p.q12StartDate = pickJan1(rng, 1993, 1997);
        break;
      }
      case 13:
        // Comment words stay fixed (queries.hh): dbgen plants only the
        // special/requests pair, so no parameter to draw.
        break;
      case 14:
        // First of a month in [1993-01, 1997-12] (60 months).
        p.q14StartDate = pickMonthStart(rng, 60);
        break;
      case 15:
        // First of a month in [1993-01, 1997-10] (58 months).
        p.q15StartDate = pickMonthStart(rng, 58);
        break;
      case 16:
        p.q16Brand = pickBrand(rng);
        p.q16TypePrefix = pick(rng, tpch::kTypeSyl1) + " " +
                          pick(rng, tpch::kTypeSyl2);
        p.q16Sizes = pickDistinct(rng, 8, 1, 50);
        break;
      case 17:
        p.q17Brand = pickBrand(rng);
        p.q17Container = pickContainer(rng);
        break;
      case 18:
        p.q18Quantity = rng.uniform(312, 315);
        break;
      case 19:
        p.q19Brand1 = pickBrand(rng);
        p.q19Brand2 = pickBrand(rng);
        p.q19Brand3 = pickBrand(rng);
        p.q19Qty1 = rng.uniform(1, 10);
        p.q19Qty2 = rng.uniform(10, 20);
        p.q19Qty3 = rng.uniform(20, 30);
        break;
      case 20:
        p.q20Color = pick(rng, tpch::kColors);
        p.q20StartDate = pickJan1(rng, 1993, 1997);
        p.q20Nation = pickNation(rng);
        break;
      case 21:
        p.q21Nation = pickNation(rng);
        break;
      case 22:
        // Seven distinct country codes in [10, 34] (10 + nationkey).
        p.q22Codes = pickDistinct(rng, 7, 10, 34);
        break;
      default:
        break;
    }
    return p;
}

namespace {

const std::int32_t kDbgenStart = daysFromCivil(1992, 1, 1);
const std::int32_t kDbgenEnd = daysFromCivil(1998, 12, 31);

void
checkDate(int q, const char *what, std::int32_t d)
{
    if (d < kDbgenStart || d > kDbgenEnd)
        fatal("q", q, " ", what, " ", dateToString(d),
              " outside dbgen's date domain");
}

void
checkInPool(int q, const char *what, const std::string &v,
            const std::vector<std::string> &pool)
{
    if (std::find(pool.begin(), pool.end(), v) == pool.end())
        fatal("q", q, " ", what, " '", v, "' not in the spec's pool");
}

void
checkNation(int q, const char *what, const std::string &v)
{
    for (const auto &n : tpch::kNations)
        if (v == n.name)
            return;
    fatal("q", q, " ", what, " '", v, "' is not a TPC-H nation");
}

void
checkBrand(int q, const char *what, const std::string &v)
{
    bool ok = v.size() == 8 && v.compare(0, 6, "Brand#") == 0 &&
              v[6] >= '1' && v[6] <= '5' && v[7] >= '1' && v[7] <= '5';
    if (!ok)
        fatal("q", q, " ", what, " '", v, "' is not a Brand#MN value");
}

} // namespace

void
validateParams(int q, const tpch::TpchQueryParams &p)
{
    // q1: cutoff must leave the window inside the populated domain.
    checkDate(1, "cutoff", p.q1CutoffDate);

    if (p.q2Size < 1 || p.q2Size > 50)
        fatal("q2 size ", p.q2Size, " outside p_size domain [1,50]");
    checkInPool(2, "type suffix", p.q2TypeSuffix, tpch::kTypeSyl3);
    checkInPool(2, "region", p.q2Region, tpch::kRegions);

    checkInPool(3, "segment", p.q3Segment, tpch::kSegments);
    checkDate(3, "date", p.q3Date);

    checkDate(4, "window start", p.q4StartDate);
    checkDate(4, "window end", addMonths(p.q4StartDate, 3) - 1);

    checkInPool(5, "region", p.q5Region, tpch::kRegions);
    checkDate(5, "window start", p.q5StartDate);
    checkDate(5, "window end", addMonths(p.q5StartDate, 12) - 1);

    checkDate(6, "window start", p.q6StartDate);
    checkDate(6, "window end", addMonths(p.q6StartDate, 12) - 1);
    // Band centre +/- 1 must stay inside l_discount's [0.00, 0.10].
    if (p.q6DiscountCents < 1 || p.q6DiscountCents > 9)
        fatal("q6 discount centre ", p.q6DiscountCents,
              " leaves the band outside [0.00,0.10]");
    if (p.q6Quantity < 1 || p.q6Quantity > 50)
        fatal("q6 quantity ", p.q6Quantity, " outside l_quantity [1,50]");

    checkNation(7, "nation1", p.q7Nation1);
    checkNation(7, "nation2", p.q7Nation2);
    if (p.q7Nation1 == p.q7Nation2)
        fatal("q7 nations must be distinct");

    checkNation(8, "nation", p.q8Nation);
    checkInPool(8, "region", p.q8Region, tpch::kRegions);
    for (const auto &n : tpch::kNations)
        if (p.q8Nation == n.name &&
            tpch::kRegions[static_cast<std::size_t>(n.regionKey)] !=
                p.q8Region)
            fatal("q8 region '", p.q8Region, "' does not contain nation '",
                  p.q8Nation, "'");

    checkInPool(9, "color", p.q9Color, tpch::kColors);

    checkDate(10, "window start", p.q10StartDate);
    checkDate(10, "window end", addMonths(p.q10StartDate, 3) - 1);

    checkNation(11, "nation", p.q11Nation);

    checkInPool(12, "mode1", p.q12Mode1, tpch::kModes);
    checkInPool(12, "mode2", p.q12Mode2, tpch::kModes);
    if (p.q12Mode1 == p.q12Mode2)
        fatal("q12 ship modes must be distinct");
    checkDate(12, "window start", p.q12StartDate);
    checkDate(12, "window end", addMonths(p.q12StartDate, 12) - 1);

    checkDate(14, "window start", p.q14StartDate);
    checkDate(14, "window end", addMonths(p.q14StartDate, 1) - 1);

    checkDate(15, "window start", p.q15StartDate);
    checkDate(15, "window end", addMonths(p.q15StartDate, 3) - 1);

    checkBrand(16, "brand", p.q16Brand);
    if (p.q16Sizes.size() != 8)
        fatal("q16 needs 8 sizes, got ", p.q16Sizes.size());
    for (auto s : p.q16Sizes)
        if (s < 1 || s > 50)
            fatal("q16 size ", s, " outside p_size domain [1,50]");

    checkBrand(17, "brand", p.q17Brand);

    if (p.q18Quantity < 1)
        fatal("q18 quantity threshold must be positive");

    checkBrand(19, "brand1", p.q19Brand1);
    checkBrand(19, "brand2", p.q19Brand2);
    checkBrand(19, "brand3", p.q19Brand3);
    if (p.q19Qty1 < 1 || p.q19Qty1 > 10 || p.q19Qty2 < 10 ||
        p.q19Qty2 > 20 || p.q19Qty3 < 20 || p.q19Qty3 > 30)
        fatal("q19 quantity bands outside the spec's ranges");

    checkInPool(20, "color", p.q20Color, tpch::kColors);
    checkDate(20, "window start", p.q20StartDate);
    checkDate(20, "window end", addMonths(p.q20StartDate, 12) - 1);
    checkNation(20, "nation", p.q20Nation);

    checkNation(21, "nation", p.q21Nation);

    if (p.q22Codes.size() != 7)
        fatal("q22 needs 7 country codes, got ", p.q22Codes.size());
    for (auto c : p.q22Codes)
        if (c < 10 || c > 34)
            fatal("q22 country code ", c, " outside [10,34]");

    (void)q;
}

QueryInstance
TpchInstanceGenerator::instance(int query_number,
                                std::uint64_t index) const
{
    QueryInstance inst;
    inst.queryNumber = query_number;
    inst.index = index;
    inst.params = drawParams(seed_, query_number, index);
    validateParams(query_number, inst.params);
    return inst;
}

Query
TpchInstanceGenerator::build(const QueryInstance &inst) const
{
    Query q = tpch::tpchQuery(inst.queryNumber, sf_, inst.params);
    q.name = inst.name();
    return q;
}

} // namespace aquoman::workload
