/**
 * @file
 * Multi-tenant workload mix: each tenant owns an arrival source, a
 * weighted set of query classes, a priority / fair-share weight for
 * admission, and an SLO target. buildTrace() merges the per-tenant
 * arrival streams into one deterministic, time-ordered event trace the
 * service bench replays open-loop.
 *
 * Determinism: every tenant draws from its own Rng sub-stream (seed,
 * tenant-index), and the merge breaks time ties by (time, tenant,
 * per-tenant sequence), so a fixed (mix, seed, horizon) yields a
 * byte-identical trace regardless of tenant count or thread count.
 */

#ifndef AQUOMAN_WORKLOAD_TENANT_MIX_HH
#define AQUOMAN_WORKLOAD_TENANT_MIX_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/arrivals.hh"

namespace aquoman::workload {

/** Weight of one query class within a tenant's traffic. */
struct QueryClassWeight
{
    int queryNumber = 1;
    double weight = 1.0;
};

/** One tenant of the simulated service. */
struct TenantSpec
{
    std::string name;

    /** Admission priority class; lower is more urgent. */
    int priority = 1;

    /** Fair-share weight within the priority class (DRR quantum). */
    double weight = 1.0;

    /** Device-DRAM this tenant may hold across admitted queries
     *  (0 = unlimited). */
    std::int64_t dramQuotaBytes = 0;

    /** Latency SLO (modelled seconds) used for goodput accounting. */
    double sloSec = 1.0;

    /** Arrival process (rateQps is the tenant's offered load). */
    ArrivalConfig arrivals;

    /** Query-class mix; weights need not sum to 1. */
    std::vector<QueryClassWeight> classes;
};

/** One arrival in the merged trace. */
struct WorkloadEvent
{
    double atSec = 0.0;
    int tenant = 0;            ///< index into the mix
    int queryNumber = 1;
    std::uint64_t instance = 0; ///< instance index within (tenant, query)
};

/**
 * Generate the merged arrival trace of @p mix over [0, horizon_sec).
 * Query instances are numbered 1.. per (tenant, query class) with the
 * tenant index folded into the high 32 bits, so every event maps to a
 * distinct generated plan (instance 0 — the validation parameters — is
 * reserved for closed-loop benches).
 */
std::vector<WorkloadEvent> buildTrace(const std::vector<TenantSpec> &mix,
                                      std::uint64_t seed,
                                      double horizon_sec);

} // namespace aquoman::workload

#endif // AQUOMAN_WORKLOAD_TENANT_MIX_HH
