#include "workload/arrivals.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace aquoman::workload {

const char *
arrivalProcessName(ArrivalProcess p)
{
    switch (p) {
      case ArrivalProcess::Poisson: return "poisson";
      case ArrivalProcess::OnOff: return "onoff";
      case ArrivalProcess::Diurnal: return "diurnal";
    }
    return "?";
}

namespace {

/** Exponential variate with mean 1/@p rate by inversion. */
double
expVariate(Rng &rng, double rate)
{
    // 1 - uniformReal() is in (0, 1], so the log is finite.
    return -std::log(1.0 - rng.uniformReal()) / rate;
}

std::vector<double>
poissonArrivals(Rng &rng, double rate, double horizon)
{
    std::vector<double> out;
    double t = expVariate(rng, rate);
    while (t < horizon) {
        out.push_back(t);
        t += expVariate(rng, rate);
    }
    return out;
}

std::vector<double>
onOffArrivals(const ArrivalConfig &cfg, Rng &rng, double horizon)
{
    // Alternate exponential on/off periods; arrivals are Poisson at
    // the boosted on-rate during on periods, silent otherwise.
    double duty = cfg.meanOnSec / (cfg.meanOnSec + cfg.meanOffSec);
    double on_rate = cfg.rateQps / duty;
    std::vector<double> out;
    double t = 0.0;
    bool on = true; // start in a burst so short horizons see traffic
    while (t < horizon) {
        double period = expVariate(rng, 1.0 / (on ? cfg.meanOnSec
                                                  : cfg.meanOffSec));
        double end = std::min(horizon, t + period);
        if (on) {
            double a = t + expVariate(rng, on_rate);
            while (a < end) {
                out.push_back(a);
                a += expVariate(rng, on_rate);
            }
        }
        t += period;
        on = !on;
    }
    return out;
}

std::vector<double>
diurnalArrivals(const ArrivalConfig &cfg, Rng &rng, double horizon)
{
    std::vector<double> profile = cfg.diurnalProfile;
    if (profile.empty())
        profile = {1.0};
    double sum = 0.0, peak = 0.0;
    for (double m : profile) {
        AQ_ASSERT(m >= 0.0);
        sum += m;
        peak = std::max(peak, m);
    }
    AQ_ASSERT(sum > 0.0);
    double mean = sum / static_cast<double>(profile.size());
    // Thinning: generate at the peak instantaneous rate, accept with
    // probability profile(t) / peak.
    double peak_rate = cfg.rateQps * peak / mean;
    double slot = horizon / static_cast<double>(profile.size());
    std::vector<double> out;
    double t = expVariate(rng, peak_rate);
    while (t < horizon) {
        auto idx = std::min(profile.size() - 1,
                            static_cast<std::size_t>(t / slot));
        if (rng.uniformReal() * peak < profile[idx])
            out.push_back(t);
        t += expVariate(rng, peak_rate);
    }
    return out;
}

} // namespace

std::vector<double>
generateArrivals(const ArrivalConfig &cfg, std::uint64_t seed,
                 std::uint64_t stream, double horizon_sec)
{
    AQ_ASSERT(cfg.rateQps > 0.0 && horizon_sec > 0.0);
    Rng rng = Rng::stream(seed, 0x4152525641ull /* "ARRVA" */, stream);
    switch (cfg.process) {
      case ArrivalProcess::Poisson:
        return poissonArrivals(rng, cfg.rateQps, horizon_sec);
      case ArrivalProcess::OnOff:
        return onOffArrivals(cfg, rng, horizon_sec);
      case ArrivalProcess::Diurnal:
        return diurnalArrivals(cfg, rng, horizon_sec);
    }
    return {};
}

} // namespace aquoman::workload
