#include "workload/tenant_mix.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "common/rng.hh"

namespace aquoman::workload {

std::vector<WorkloadEvent>
buildTrace(const std::vector<TenantSpec> &mix, std::uint64_t seed,
           double horizon_sec)
{
    struct Tagged
    {
        WorkloadEvent ev;
        std::uint64_t seq; ///< per-tenant arrival sequence (tie-break)
    };
    std::vector<Tagged> merged;

    for (std::size_t t = 0; t < mix.size(); ++t) {
        const TenantSpec &spec = mix[t];
        AQ_ASSERT(!spec.classes.empty());
        double total_weight = 0.0;
        for (const auto &c : spec.classes) {
            AQ_ASSERT(c.queryNumber >= 1 && c.queryNumber <= 22);
            AQ_ASSERT(c.weight > 0.0);
            total_weight += c.weight;
        }

        // Stream 2t: arrival times; stream 2t+1: query-class picks.
        auto arrivals = generateArrivals(spec.arrivals, seed,
                                         2 * static_cast<std::uint64_t>(t),
                                         horizon_sec);
        Rng pick = Rng::stream(seed, 0x4d495843ull /* "MIXC" */,
                               2 * static_cast<std::uint64_t>(t) + 1);
        std::map<int, std::uint64_t> next_instance;
        for (std::size_t i = 0; i < arrivals.size(); ++i) {
            double u = pick.uniformReal() * total_weight;
            int qnum = spec.classes.back().queryNumber;
            for (const auto &c : spec.classes) {
                if (u < c.weight) {
                    qnum = c.queryNumber;
                    break;
                }
                u -= c.weight;
            }
            WorkloadEvent ev;
            ev.atSec = arrivals[i];
            ev.tenant = static_cast<int>(t);
            ev.queryNumber = qnum;
            // High bits carry the tenant so instances are distinct
            // across tenants sharing a query class (and never 0, the
            // reserved validation-parameter instance).
            ev.instance = (static_cast<std::uint64_t>(t) << 32) |
                          ++next_instance[qnum];
            merged.push_back({ev, i});
        }
    }

    std::sort(merged.begin(), merged.end(),
              [](const Tagged &a, const Tagged &b) {
                  if (a.ev.atSec != b.ev.atSec)
                      return a.ev.atSec < b.ev.atSec;
                  if (a.ev.tenant != b.ev.tenant)
                      return a.ev.tenant < b.ev.tenant;
                  return a.seq < b.seq;
              });

    std::vector<WorkloadEvent> out;
    out.reserve(merged.size());
    for (const auto &m : merged)
        out.push_back(m.ev);
    return out;
}

} // namespace aquoman::workload
