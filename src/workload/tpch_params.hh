/**
 * @file
 * Parameterized TPC-H query generator: turns the 22 templates of
 * tpch/queries.hh into an unbounded stream of distinct query instances
 * by drawing substitution parameters (TPC-H spec Sec. 2.4) from the
 * repository's deterministic Rng. Every (seed, query, instance) triple
 * yields a bit-reproducible TpchQueryParams regardless of generation
 * order or thread count — the generator derives an independent
 * Rng::stream per triple, the same discipline dbgen uses for parallel
 * table partitions.
 *
 * Instance 0 of every query is pinned to the spec's validation
 * parameters (the TpchQueryParams defaults), so existing benchmarks can
 * move onto the generator without changing the plans they run.
 */

#ifndef AQUOMAN_WORKLOAD_TPCH_PARAMS_HH
#define AQUOMAN_WORKLOAD_TPCH_PARAMS_HH

#include <cstdint>
#include <string>

#include "tpch/queries.hh"

namespace aquoman::workload {

/** One generated query instance: template number + drawn parameters. */
struct QueryInstance
{
    int queryNumber = 1;
    std::uint64_t index = 0; ///< instance index within (seed, query)
    tpch::TpchQueryParams params;

    /** Stable display name, e.g. "q06#17" ("q06" for instance 0). */
    std::string name() const;
};

/**
 * Draw the substitution parameters of instance @p index of query
 * @p query_number under @p seed. Index 0 returns the validation
 * parameters unchanged; other indices draw every parameter from
 * Rng::stream(seed, query_number, index) per the spec's domains.
 */
tpch::TpchQueryParams drawParams(std::uint64_t seed, int query_number,
                                 std::uint64_t index);

/**
 * Assert that @p p is inside the value domains dbgen actually
 * generates (dates within [1992-01-01, 1998-12-31], sizes in [1,50],
 * discount band within [0.00,0.10], names from the spec pools, ...).
 * fatal()s on the first violation; returns normally otherwise.
 */
void validateParams(int query_number, const tpch::TpchQueryParams &p);

/** Deterministic instance generator bound to one (seed, scale). */
class TpchInstanceGenerator
{
  public:
    TpchInstanceGenerator(std::uint64_t seed, double sf)
        : seed_(seed), sf_(sf) {}

    /** Instance @p index of query @p query_number (validated). */
    QueryInstance instance(int query_number, std::uint64_t index) const;

    /** Build the logical plan of @p inst, renamed to inst.name(). */
    Query build(const QueryInstance &inst) const;

    std::uint64_t seed() const { return seed_; }
    double scaleFactor() const { return sf_; }

  private:
    std::uint64_t seed_;
    double sf_;
};

} // namespace aquoman::workload

#endif // AQUOMAN_WORKLOAD_TPCH_PARAMS_HH
