/**
 * @file
 * Compiled conjunct kernels for the batched Row Selector. A predicate
 * conjunct whose tree is Compare(numeric-arith, numeric-arith) is
 * compiled once into a flat step list (column loads, null-safe decimal
 * scaling, arithmetic temporaries, one final compare) and evaluated
 * column-at-a-time straight into 32-bit selection-mask words — the
 * bitmask AND-fold replacing the old row-at-a-time sparse merges.
 *
 * The compiled kernel transcribes evalExpr's semantics exactly (null
 * propagation, decimal promotion, compare-side scaling), so its mask
 * is bit-identical to evalPredicate over the same rows; conjuncts the
 * compiler rejects (strings, LIKE, IN, CASE, OR, ...) simply keep the
 * reference evaluator path. See DESIGN.md §16.
 */

#ifndef AQUOMAN_RELALG_PRED_KERNEL_HH
#define AQUOMAN_RELALG_PRED_KERNEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvector.hh"
#include "relalg/expr.hh"
#include "relalg/reltable.hh"

namespace aquoman {

/** A predicate conjunct compiled for mask-at-a-time evaluation. */
class ConjunctKernel
{
  public:
    /** Reusable per-thread buffers so morsel loops do not reallocate. */
    struct Scratch
    {
        std::vector<std::vector<std::int64_t>> bufs;
        std::vector<const std::int64_t *> ptrs;
    };

    /**
     * Compile @p e against @p input's schema, or nullptr when the
     * conjunct is not kernel-eligible (non-Compare root, string or
     * non-arith operands). The kernel holds column *indices*, so it
     * stays valid for any RelTable with the same schema.
     */
    static std::unique_ptr<ConjunctKernel>
    tryCompile(const ExprPtr &e, const RelTable &input);

    /**
     * True for a bare column/constant compare: no arithmetic or
     * scaling temporaries, so evaluating it densely costs one
     * streaming pass and no gather. filterSelection AND-folds these
     * over the full range before any selection materializes.
     */
    bool cheap() const { return steps_.empty(); }

    /**
     * Evaluate the conjunct at @p n selected rows of @p input and
     * write the verdict bits into @p out (resized to n; bit i set iff
     * selection position i passes). @p rows names the selected row
     * ids; nullptr means the dense range [first, first + n).
     */
    void evalMask(const RelTable &input, const std::int64_t *rows,
                  std::int64_t first, std::int64_t n, BitVector &out,
                  Scratch &scratch) const;

  private:
    /** Operand of a step: scratch/column buffer or folded constant. */
    struct Operand
    {
        int buf = -1; ///< buffer index, or -1 for a constant
        std::int64_t c = 0;
    };

    enum class StepKind : std::uint8_t
    {
        Scale, ///< null-safe ×kDecimalScale (decimal promotion)
        Arith, ///< binary arithmetic with null propagation
    };

    struct Step
    {
        StepKind kind = StepKind::Arith;
        ArithOp op = ArithOp::Add;
        bool dec = false; ///< decimal Mul/Div semantics
        Operand a, b;
        int dst = -1;
    };

    /** The final compare, with constant sides pre-scaled. */
    struct Cmp
    {
        CmpOp op = CmpOp::Eq;
        Operand a, b;
        std::int64_t sa = 1, sb = 1; ///< decimal compare scaling
    };

    ConjunctKernel() = default;

    std::vector<int> cols_; ///< input column index backing buffer i
    int numBufs_ = 0;       ///< temporaries beyond the column buffers
    std::vector<Step> steps_;
    Cmp cmp_;
};

} // namespace aquoman

#endif // AQUOMAN_RELALG_PRED_KERNEL_HH
