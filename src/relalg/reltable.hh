/**
 * @file
 * Materialised relations flowing between plan operators. Unlike the
 * base-table Table (one string heap per table), a RelTable carries a
 * heap pointer per column so joins can combine columns from different
 * source tables without rewriting heap offsets.
 */

#ifndef AQUOMAN_RELALG_RELTABLE_HH
#define AQUOMAN_RELALG_RELTABLE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "columnstore/string_heap.hh"
#include "columnstore/table.hh"

namespace aquoman {

/** One column of an intermediate relation. */
struct RelColumn
{
    std::string name;
    ColumnType type = ColumnType::Int64;
    std::shared_ptr<std::vector<std::int64_t>> vals;
    std::shared_ptr<const StringHeap> heap; ///< set iff type == Varchar

    RelColumn() : vals(std::make_shared<std::vector<std::int64_t>>()) {}

    RelColumn(std::string n, ColumnType t)
        : name(std::move(n)), type(t),
          vals(std::make_shared<std::vector<std::int64_t>>())
    {
    }

    std::int64_t size() const
    {
        return static_cast<std::int64_t>(vals->size());
    }

    std::int64_t get(std::int64_t i) const { return (*vals)[i]; }
    void push(std::int64_t v) { vals->push_back(v); }

    /** String value at row @p i (Varchar columns only). */
    std::string_view
    str(std::int64_t i) const
    {
        AQ_ASSERT(type == ColumnType::Varchar && heap);
        return heap->get((*vals)[i]);
    }
};

/** A materialised relation: equal-length named columns. */
class RelTable
{
  public:
    RelTable() = default;

    /** Append a column (must match existing row count, or be first). */
    void
    addColumn(RelColumn c)
    {
        if (!columns.empty()) {
            AQ_ASSERT(c.size() == numRows(), "ragged relation: ", c.name,
                      " has ", c.size(), " rows, expected ", numRows());
        }
        AQ_ASSERT(!hasColumn(c.name), "duplicate column ", c.name);
        columns.push_back(std::move(c));
    }

    int numColumns() const { return static_cast<int>(columns.size()); }

    std::int64_t
    numRows() const
    {
        return columns.empty() ? 0 : columns.front().size();
    }

    const RelColumn &col(int i) const { return columns.at(i); }
    RelColumn &col(int i) { return columns.at(i); }

    const RelColumn &
    col(const std::string &name) const
    {
        return columns.at(indexOf(name));
    }

    int
    indexOf(const std::string &name) const
    {
        for (std::size_t i = 0; i < columns.size(); ++i)
            if (columns[i].name == name)
                return static_cast<int>(i);
        fatal("no column '", name, "' in relation");
    }

    bool
    hasColumn(const std::string &name) const
    {
        for (const auto &c : columns)
            if (c.name == name)
                return true;
        return false;
    }

    /** All column names in order. */
    std::vector<std::string>
    columnNames() const
    {
        std::vector<std::string> out;
        for (const auto &c : columns)
            out.push_back(c.name);
        return out;
    }

    /** Approximate resident bytes of this relation (for RSS models). */
    std::int64_t
    residentBytes() const
    {
        std::int64_t total = 0;
        for (const auto &c : columns)
            total += c.size() * 8;
        return total;
    }

    /**
     * Build a RelTable view over an in-memory base Table, copying value
     * vectors (cheap at bench scale) and sharing the string heap.
     */
    static RelTable
    fromTable(const Table &t, const std::string &prefix = "")
    {
        RelTable r;
        for (int i = 0; i < t.numColumns(); ++i) {
            const Column &c = t.col(i);
            RelColumn rc(prefix.empty() ? c.name()
                                        : prefix + "." + c.name(),
                         c.type());
            *rc.vals = c.data();
            if (c.type() == ColumnType::Varchar)
                rc.heap = t.stringsPtr();
            r.addColumn(std::move(rc));
        }
        return r;
    }

  private:
    std::vector<RelColumn> columns;
};

} // namespace aquoman

#endif // AQUOMAN_RELALG_RELTABLE_HH
