#include "relalg/expr.hh"

#include <algorithm>

namespace aquoman {

bool
likeMatch(std::string_view text, std::string_view pattern)
{
    // Iterative wildcard match with backtracking over the last '%'.
    std::size_t t = 0, p = 0;
    std::size_t star_p = std::string_view::npos, star_t = 0;
    while (t < text.size()) {
        if (p < pattern.size()
                && (pattern[p] == '_' || pattern[p] == text[t])) {
            ++t;
            ++p;
        } else if (p < pattern.size() && pattern[p] == '%') {
            star_p = p++;
            star_t = t;
        } else if (star_p != std::string_view::npos) {
            p = star_p + 1;
            t = ++star_t;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '%')
        ++p;
    return p == pattern.size();
}

void
collectColumns(const ExprPtr &e, std::vector<std::string> &out)
{
    if (!e)
        return;
    if (e->kind == ExprKind::ColRef) {
        if (std::find(out.begin(), out.end(), e->column) == out.end())
            out.push_back(e->column);
    }
    for (const auto &c : e->children)
        collectColumns(c, out);
}

} // namespace aquoman
