/**
 * @file
 * Expression trees for scalar computation inside query plans: column
 * references, typed constants, arithmetic, comparisons, boolean logic,
 * LIKE patterns, IN lists and CASE. Expressions carry their result
 * type so fixed-point decimal scaling is applied identically by the
 * software engine and by the PE programs AQUOMAN compiles from them.
 */

#ifndef AQUOMAN_RELALG_EXPR_HH
#define AQUOMAN_RELALG_EXPR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/date.hh"
#include "common/decimal.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace aquoman {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/** Expression node kinds. */
enum class ExprKind
{
    ColRef,  ///< reference to a named column of the input relation
    Const,   ///< typed literal (numeric kinds encoded as int64)
    ConstStr,///< string literal
    Arith,   ///< binary arithmetic (+ - * /)
    Compare, ///< binary comparison (= <> < <= > >=)
    Logic,   ///< AND / OR
    Not,     ///< boolean negation
    Like,    ///< SQL LIKE with % and _ wildcards
    InList,  ///< membership in a literal list
    Case,    ///< CASE WHEN ... THEN ... ELSE ... END
    Year,    ///< calendar year of a Date value
};

enum class ArithOp { Add, Sub, Mul, Div };
enum class CmpOp { Eq, Ne, Lt, Le, Gt, Ge };
enum class LogicOp { And, Or };

/**
 * Immutable expression node. Booleans are represented as Int32 0/1.
 */
struct Expr
{
    ExprKind kind;
    ColumnType resultType = ColumnType::Int64;

    // ColRef
    std::string column;

    // Const / ConstStr
    std::int64_t constVal = 0;
    std::string strVal;

    // Arith / Compare / Logic
    ArithOp arithOp = ArithOp::Add;
    CmpOp cmpOp = CmpOp::Eq;
    LogicOp logicOp = LogicOp::And;

    // Like
    std::string pattern;

    // InList: literal int payloads or string payloads
    std::vector<std::int64_t> listVals;
    std::vector<std::string> listStrs;

    /**
     * Children: binary ops have 2; Not/Like have 1; InList has 1;
     * Case has [when0, then0, when1, then1, ..., else].
     */
    std::vector<ExprPtr> children;
};

/** True when values of @p t are compared/combined as strings. */
inline bool
isStringType(ColumnType t)
{
    return t == ColumnType::Varchar;
}

// ---------------------------------------------------------------------
// Builder helpers
// ---------------------------------------------------------------------

/** Reference column @p name; result type resolved at bind time. */
inline ExprPtr
col(const std::string &name)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::ColRef;
    e->column = name;
    return e;
}

/** Integer literal. */
inline ExprPtr
lit(std::int64_t v)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Const;
    e->resultType = ColumnType::Int64;
    e->constVal = v;
    return e;
}

/** Decimal literal from a "123.45"-style string. */
inline ExprPtr
litDec(const std::string &s)
{
    auto dot = s.find('.');
    std::int64_t whole = std::stoll(dot == std::string::npos
                                    ? s : s.substr(0, dot));
    std::int64_t frac = 0;
    bool neg = !s.empty() && s[0] == '-';
    if (dot != std::string::npos) {
        std::string f = s.substr(dot + 1);
        f.resize(2, '0');
        frac = std::stoll(f);
    }
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Const;
    e->resultType = ColumnType::Decimal;
    e->constVal = neg ? whole * kDecimalScale - frac
                      : whole * kDecimalScale + frac;
    return e;
}

/** Date literal from ISO "YYYY-MM-DD". */
inline ExprPtr
litDate(const std::string &iso)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Const;
    e->resultType = ColumnType::Date;
    e->constVal = parseDate(iso);
    return e;
}

/** Decimal literal from an already-scaled fixed-point value
 *  (hundredths), e.g. litDecScaled(5) == litDec("0.05"). */
inline ExprPtr
litDecScaled(std::int64_t scaled)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Const;
    e->resultType = ColumnType::Decimal;
    e->constVal = scaled;
    return e;
}

/** Date literal from a precomputed day count. */
inline ExprPtr
litDateDays(std::int32_t days)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Const;
    e->resultType = ColumnType::Date;
    e->constVal = days;
    return e;
}

/** String literal. */
inline ExprPtr
litStr(const std::string &s)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::ConstStr;
    e->resultType = ColumnType::Varchar;
    e->strVal = s;
    return e;
}

namespace detail {

inline ExprPtr
binary(ExprKind kind, ExprPtr a, ExprPtr b)
{
    auto e = std::make_shared<Expr>();
    e->kind = kind;
    e->children = {std::move(a), std::move(b)};
    return e;
}

} // namespace detail

inline ExprPtr
arith(ArithOp op, ExprPtr a, ExprPtr b)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Arith;
    e->arithOp = op;
    e->children = {std::move(a), std::move(b)};
    return e;
}

inline ExprPtr add(ExprPtr a, ExprPtr b)
{ return arith(ArithOp::Add, std::move(a), std::move(b)); }
inline ExprPtr sub(ExprPtr a, ExprPtr b)
{ return arith(ArithOp::Sub, std::move(a), std::move(b)); }
inline ExprPtr mul(ExprPtr a, ExprPtr b)
{ return arith(ArithOp::Mul, std::move(a), std::move(b)); }
inline ExprPtr div(ExprPtr a, ExprPtr b)
{ return arith(ArithOp::Div, std::move(a), std::move(b)); }

inline ExprPtr
cmp(CmpOp op, ExprPtr a, ExprPtr b)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Compare;
    e->cmpOp = op;
    e->resultType = ColumnType::Int32;
    e->children = {std::move(a), std::move(b)};
    return e;
}

inline ExprPtr eq(ExprPtr a, ExprPtr b)
{ return cmp(CmpOp::Eq, std::move(a), std::move(b)); }
inline ExprPtr ne(ExprPtr a, ExprPtr b)
{ return cmp(CmpOp::Ne, std::move(a), std::move(b)); }
inline ExprPtr lt(ExprPtr a, ExprPtr b)
{ return cmp(CmpOp::Lt, std::move(a), std::move(b)); }
inline ExprPtr le(ExprPtr a, ExprPtr b)
{ return cmp(CmpOp::Le, std::move(a), std::move(b)); }
inline ExprPtr gt(ExprPtr a, ExprPtr b)
{ return cmp(CmpOp::Gt, std::move(a), std::move(b)); }
inline ExprPtr ge(ExprPtr a, ExprPtr b)
{ return cmp(CmpOp::Ge, std::move(a), std::move(b)); }

inline ExprPtr
logic(LogicOp op, ExprPtr a, ExprPtr b)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Logic;
    e->logicOp = op;
    e->resultType = ColumnType::Int32;
    e->children = {std::move(a), std::move(b)};
    return e;
}

inline ExprPtr andE(ExprPtr a, ExprPtr b)
{ return logic(LogicOp::And, std::move(a), std::move(b)); }
inline ExprPtr orE(ExprPtr a, ExprPtr b)
{ return logic(LogicOp::Or, std::move(a), std::move(b)); }

inline ExprPtr
notE(ExprPtr a)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Not;
    e->resultType = ColumnType::Int32;
    e->children = {std::move(a)};
    return e;
}

/** SQL LIKE: @p a LIKE @p pat with % (any run) and _ (any char). */
inline ExprPtr
like(ExprPtr a, const std::string &pat)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Like;
    e->resultType = ColumnType::Int32;
    e->pattern = pat;
    e->children = {std::move(a)};
    return e;
}

/** Membership in an integer literal list. */
inline ExprPtr
inList(ExprPtr a, std::vector<std::int64_t> vals)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::InList;
    e->resultType = ColumnType::Int32;
    e->listVals = std::move(vals);
    e->children = {std::move(a)};
    return e;
}

/** Membership in a string literal list. */
inline ExprPtr
inStrList(ExprPtr a, std::vector<std::string> vals)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::InList;
    e->resultType = ColumnType::Int32;
    e->listStrs = std::move(vals);
    e->children = {std::move(a)};
    return e;
}

/** BETWEEN a AND b (inclusive). */
inline ExprPtr
between(ExprPtr v, ExprPtr lo, ExprPtr hi)
{
    ExprPtr lower = ge(v, std::move(lo));
    ExprPtr upper = le(std::move(v), std::move(hi));
    return andE(std::move(lower), std::move(upper));
}

/**
 * CASE WHEN w0 THEN t0 [WHEN w1 THEN t1 ...] ELSE e END.
 * @p arms alternates when/then expressions.
 */
inline ExprPtr
caseWhen(std::vector<ExprPtr> arms, ExprPtr else_e)
{
    AQ_ASSERT(arms.size() % 2 == 0 && !arms.empty());
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Case;
    e->children = std::move(arms);
    e->children.push_back(std::move(else_e));
    return e;
}

/** EXTRACT(YEAR FROM date). */
inline ExprPtr
year(ExprPtr a)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Year;
    e->resultType = ColumnType::Int64;
    e->children = {std::move(a)};
    return e;
}

/** LIKE matcher used by the engine and the regex-accelerator model. */
bool likeMatch(std::string_view text, std::string_view pattern);

/** Collect the distinct column names an expression references. */
void collectColumns(const ExprPtr &e, std::vector<std::string> &out);

} // namespace aquoman

#endif // AQUOMAN_RELALG_EXPR_HH
