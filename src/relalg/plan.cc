#include "relalg/plan.hh"

#include <sstream>

namespace aquoman {

namespace {

const char *
joinTypeName(JoinType t)
{
    switch (t) {
      case JoinType::Inner:     return "inner";
      case JoinType::LeftSemi:  return "semi";
      case JoinType::LeftAnti:  return "anti";
      case JoinType::LeftOuter: return "outer";
    }
    return "?";
}

const char *
aggKindName(AggKind k)
{
    switch (k) {
      case AggKind::Sum:           return "sum";
      case AggKind::Min:           return "min";
      case AggKind::Max:           return "max";
      case AggKind::Count:         return "count";
      case AggKind::Avg:           return "avg";
      case AggKind::CountDistinct: return "count_distinct";
    }
    return "?";
}

std::string
exprToString(const ExprPtr &e)
{
    if (!e)
        return "";
    switch (e->kind) {
      case ExprKind::ColRef:
        return e->column;
      case ExprKind::Const:
        if (e->resultType == ColumnType::Date)
            return "date'" + dateToString(
                static_cast<std::int32_t>(e->constVal)) + "'";
        if (e->resultType == ColumnType::Decimal)
            return decimalToString(e->constVal);
        return std::to_string(e->constVal);
      case ExprKind::ConstStr:
        return "'" + e->strVal + "'";
      case ExprKind::Arith: {
        static const char *ops[] = {"+", "-", "*", "/"};
        return "(" + exprToString(e->children[0]) + " "
            + ops[static_cast<int>(e->arithOp)] + " "
            + exprToString(e->children[1]) + ")";
      }
      case ExprKind::Compare: {
        static const char *ops[] = {"=", "<>", "<", "<=", ">", ">="};
        return "(" + exprToString(e->children[0]) + " "
            + ops[static_cast<int>(e->cmpOp)] + " "
            + exprToString(e->children[1]) + ")";
      }
      case ExprKind::Logic:
        return "(" + exprToString(e->children[0])
            + (e->logicOp == LogicOp::And ? " and " : " or ")
            + exprToString(e->children[1]) + ")";
      case ExprKind::Not:
        return "not " + exprToString(e->children[0]);
      case ExprKind::Like:
        return exprToString(e->children[0]) + " like '" + e->pattern + "'";
      case ExprKind::InList: {
        std::string s = exprToString(e->children[0]) + " in (";
        bool first = true;
        for (auto v : e->listVals) {
            s += (first ? "" : ", ") + std::to_string(v);
            first = false;
        }
        for (const auto &v : e->listStrs) {
            s += std::string(first ? "" : ", ") + "'" + v + "'";
            first = false;
        }
        return s + ")";
      }
      case ExprKind::Case:
        return "case(...)";
      case ExprKind::Year:
        return "year(" + exprToString(e->children[0]) + ")";
    }
    return "?";
}

void
planToStream(std::ostringstream &os, const PlanPtr &p, int indent)
{
    std::string pad(indent * 2, ' ');
    os << pad;
    switch (p->kind) {
      case PlanKind::Scan:
        if (!p->scanStage.empty())
            os << "scan stage:" << p->scanStage;
        else
            os << "scan " << p->scanTable;
        if (!p->scanAlias.empty())
            os << " as " << p->scanAlias;
        break;
      case PlanKind::Filter:
        os << "filter " << exprToString(p->predicate);
        break;
      case PlanKind::Project: {
        os << "project ";
        bool first = true;
        for (const auto &ne : p->projections) {
            os << (first ? "" : ", ") << ne.name << "="
               << exprToString(ne.expr);
            first = false;
        }
        break;
      }
      case PlanKind::Join: {
        os << joinTypeName(p->joinType) << "-join on ";
        for (std::size_t i = 0; i < p->leftKeys.size(); ++i) {
            os << (i ? " and " : "") << p->leftKeys[i] << "="
               << p->rightKeys[i];
        }
        if (p->residual)
            os << " residual " << exprToString(p->residual);
        break;
      }
      case PlanKind::GroupBy: {
        os << "group-by [";
        for (std::size_t i = 0; i < p->groupColumns.size(); ++i)
            os << (i ? ", " : "") << p->groupColumns[i];
        os << "] aggs [";
        for (std::size_t i = 0; i < p->aggregates.size(); ++i) {
            os << (i ? ", " : "") << p->aggregates[i].name << "="
               << aggKindName(p->aggregates[i].kind) << "("
               << exprToString(p->aggregates[i].input) << ")";
        }
        os << "]";
        break;
      }
      case PlanKind::OrderBy: {
        os << "order-by ";
        for (std::size_t i = 0; i < p->sortKeys.size(); ++i) {
            os << (i ? ", " : "") << p->sortKeys[i].column
               << (p->sortKeys[i].descending ? " desc" : " asc");
        }
        if (p->limit >= 0)
            os << " limit " << p->limit;
        break;
      }
    }
    os << "\n";
    for (const auto &c : p->children)
        planToStream(os, c, indent + 1);
}

} // namespace

std::string
planToString(const PlanPtr &plan, int indent)
{
    std::ostringstream os;
    planToStream(os, plan, indent);
    return os.str();
}

std::string
queryToString(const Query &q)
{
    std::ostringstream os;
    os << "query " << q.name << "\n";
    for (const auto &s : q.stages) {
        os << "stage " << s.id << ":\n";
        os << planToString(s.plan, 1);
    }
    return os.str();
}

} // namespace aquoman
