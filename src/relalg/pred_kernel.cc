#include "relalg/pred_kernel.hh"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/decimal.hh"
#include "common/simd.hh"
#include "relalg/plan.hh"

namespace aquoman {

namespace {

constexpr std::int64_t kNull = kNullValue;

bool
isIntegral(ColumnType t)
{
    return t == ColumnType::Int32 || t == ColumnType::Int64;
}

bool
isNumeric(ColumnType t)
{
    return t == ColumnType::Int32 || t == ColumnType::Int64
        || t == ColumnType::Date || t == ColumnType::Decimal;
}

// ---------------------------------------------------------------------
// Step loops. Null handling is a branch-free select (ternary compiles
// to cmov/blend), so the loops vectorize and — crucially for the UBSan
// build — never feed kNullValue (INT64_MIN) into arithmetic.
// ---------------------------------------------------------------------

struct AddN
{
    static std::int64_t apply(std::int64_t x, std::int64_t y)
    {
        return x + y;
    }
};
struct SubN
{
    static std::int64_t apply(std::int64_t x, std::int64_t y)
    {
        return x - y;
    }
};
struct MulIntN
{
    static std::int64_t apply(std::int64_t x, std::int64_t y)
    {
        return x * y;
    }
};
struct MulDecN
{
    static std::int64_t apply(std::int64_t x, std::int64_t y)
    {
        return decimalMul(x, y);
    }
};
struct DivIntN
{
    static std::int64_t apply(std::int64_t x, std::int64_t y)
    {
        return y == 0 ? 0 : x / y;
    }
};
struct DivDecN
{
    static std::int64_t apply(std::int64_t x, std::int64_t y)
    {
        return decimalDiv(x, y);
    }
};

/** dst[i] = (x==null || y==null) ? null : Op(x, y), operand shapes
 *  hoisted out of the loop. */
template <class Op>
void
runArith(std::int64_t *dst, const std::int64_t *pa, std::int64_t ca,
         const std::int64_t *pb, std::int64_t cb, std::int64_t n)
{
    if (pa != nullptr && pb != nullptr) {
        for (std::int64_t i = 0; i < n; ++i) {
            std::int64_t x = pa[i], y = pb[i];
            bool nul = x == kNull || y == kNull;
            dst[i] = nul ? kNull : Op::apply(nul ? 0 : x, nul ? 0 : y);
        }
    } else if (pa != nullptr) {
        if (cb == kNull) {
            for (std::int64_t i = 0; i < n; ++i)
                dst[i] = kNull;
            return;
        }
        for (std::int64_t i = 0; i < n; ++i) {
            std::int64_t x = pa[i];
            bool nul = x == kNull;
            dst[i] = nul ? kNull : Op::apply(nul ? 0 : x, cb);
        }
    } else if (pb != nullptr) {
        if (ca == kNull) {
            for (std::int64_t i = 0; i < n; ++i)
                dst[i] = kNull;
            return;
        }
        for (std::int64_t i = 0; i < n; ++i) {
            std::int64_t y = pb[i];
            bool nul = y == kNull;
            dst[i] = nul ? kNull : Op::apply(ca, nul ? 0 : y);
        }
    } else {
        bool nul = ca == kNull || cb == kNull;
        std::int64_t v = nul ? kNull : Op::apply(ca, cb);
        for (std::int64_t i = 0; i < n; ++i)
            dst[i] = v;
    }
}

/** Null-safe decimal promotion: dst[i] = v==null ? null : v*100. */
void
runScale(std::int64_t *dst, const std::int64_t *src, std::int64_t n)
{
    for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t v = src[i];
        bool nul = v == kNull;
        dst[i] = nul ? kNull : (nul ? 0 : v) * kDecimalScale;
    }
}

/** Verdict of (x OP y) under evalExpr's three-way compare. */
template <CmpOp OP>
bool
cmpVerdict(std::int64_t x, std::int64_t y)
{
    if constexpr (OP == CmpOp::Eq)
        return x == y;
    else if constexpr (OP == CmpOp::Ne)
        return x != y;
    else if constexpr (OP == CmpOp::Lt)
        return x < y;
    else if constexpr (OP == CmpOp::Le)
        return x <= y;
    else if constexpr (OP == CmpOp::Gt)
        return x > y;
    else
        return x >= y;
}

/**
 * Generic compare → mask words: 32 verdicts are packed per word, null
 * on either side fails the row (evalExpr's compare-null contract).
 */
template <CmpOp OP>
void
cmpMask(const std::int64_t *pa, std::int64_t ca, std::int64_t sa,
        const std::int64_t *pb, std::int64_t cb, std::int64_t sb,
        std::int64_t n, BitVector &out)
{
    const std::int64_t nw = (n + 31) / 32;
    for (std::int64_t w = 0; w < nw; ++w) {
        const std::int64_t base = w * 32;
        const std::int64_t hi = std::min<std::int64_t>(32, n - base);
        std::uint32_t m = 0;
        for (std::int64_t j = 0; j < hi; ++j) {
            std::int64_t x = pa != nullptr ? pa[base + j] : ca;
            std::int64_t y = pb != nullptr ? pb[base + j] : cb;
            bool nul = x == kNull || y == kNull;
            std::int64_t xs = (nul ? 0 : x) * sa;
            std::int64_t ys = (nul ? 0 : y) * sb;
            bool v = !nul && cmpVerdict<OP>(xs, ys);
            m |= static_cast<std::uint32_t>(v) << j;
        }
        out.setWord(w, m);
    }
}

#if defined(__x86_64__) && defined(__GNUC__)

/**
 * AVX2 AND-fold fast path: unscaled column-vs-constant compare packed
 * straight into mask words via movemask, 4 rows per nibble. This is
 * the kernel the dense cheap-conjunct fold spends its time in.
 */
template <CmpOp OP>
__attribute__((target("avx2"))) void
cmpMaskColConstAvx2(const std::int64_t *pa, std::int64_t cb,
                    std::int64_t n, BitVector &out)
{
    const __m256i vc = _mm256_set1_epi64x(cb);
    const __m256i vnull = _mm256_set1_epi64x(kNull);
    const bool cnull = cb == kNull;
    const std::int64_t full = n / 32;
    for (std::int64_t w = 0; w < full; ++w) {
        std::uint32_t m = 0;
        const std::int64_t base = w * 32;
        for (int g = 0; g < 8; ++g) {
            __m256i vx = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(pa + base + g * 4));
            __m256i hit;
            if constexpr (OP == CmpOp::Eq || OP == CmpOp::Ne)
                hit = _mm256_cmpeq_epi64(vx, vc);
            else if constexpr (OP == CmpOp::Lt || OP == CmpOp::Ge)
                hit = _mm256_cmpgt_epi64(vc, vx);
            else
                hit = _mm256_cmpgt_epi64(vx, vc);
            std::uint32_t bits = static_cast<std::uint32_t>(
                _mm256_movemask_pd(_mm256_castsi256_pd(hit)));
            if constexpr (OP == CmpOp::Ne || OP == CmpOp::Le
                          || OP == CmpOp::Ge)
                bits ^= 0xF;
            std::uint32_t nulls = static_cast<std::uint32_t>(
                _mm256_movemask_pd(_mm256_castsi256_pd(
                    _mm256_cmpeq_epi64(vx, vnull))));
            bits &= ~nulls & 0xF;
            m |= bits << (g * 4);
        }
        out.setWord(w, cnull ? 0 : m);
    }
    // Tail rows: scalar, same verdicts.
    const std::int64_t done = full * 32;
    if (done < n) {
        const std::int64_t hi = n - done;
        std::uint32_t m = 0;
        for (std::int64_t j = 0; j < hi; ++j) {
            std::int64_t x = pa[done + j];
            bool nul = x == kNull || cnull;
            bool v = !nul && cmpVerdict<OP>(x, cb);
            m |= static_cast<std::uint32_t>(v) << j;
        }
        out.setWord(full, m);
    }
}

template <CmpOp OP>
bool
tryCmpMaskAvx2(const std::int64_t *pa, std::int64_t /*ca*/,
               std::int64_t sa, const std::int64_t *pb, std::int64_t cb,
               std::int64_t sb, std::int64_t n, BitVector &out)
{
    if (!avx2Available())
        return false;
    if (pa != nullptr && pb == nullptr && sa == 1 && sb == 1) {
        cmpMaskColConstAvx2<OP>(pa, cb, n, out);
        return true;
    }
    return false;
}

#else

template <CmpOp OP>
bool
tryCmpMaskAvx2(const std::int64_t *, std::int64_t, std::int64_t,
               const std::int64_t *, std::int64_t, std::int64_t,
               std::int64_t, BitVector &)
{
    return false;
}

#endif // __x86_64__ && __GNUC__

template <CmpOp OP>
void
dispatchCmp(const std::int64_t *pa, std::int64_t ca, std::int64_t sa,
            const std::int64_t *pb, std::int64_t cb, std::int64_t sb,
            std::int64_t n, BitVector &out)
{
    if (tryCmpMaskAvx2<OP>(pa, ca, sa, pb, cb, sb, n, out))
        return;
    cmpMask<OP>(pa, ca, sa, pb, cb, sb, n, out);
}

} // namespace

std::unique_ptr<ConjunctKernel>
ConjunctKernel::tryCompile(const ExprPtr &e, const RelTable &input)
{
    if (e->kind != ExprKind::Compare)
        return nullptr;

    auto k = std::unique_ptr<ConjunctKernel>(new ConjunctKernel());

    // Temporaries are numbered in a detached [kTempBase, ...) space
    // while emitting, because column slots (buffers [0, ncols)) keep
    // being discovered until the whole tree is walked; a final remap
    // rebases them to [ncols, ncols + numBufs_).
    constexpr int kTempBase = 1 << 24;

    // Column slot per distinct referenced column; -1 on ineligibility.
    auto col_slot = [&](const std::string &name) -> int {
        int idx = input.indexOf(name);
        for (std::size_t i = 0; i < k->cols_.size(); ++i) {
            if (k->cols_[i] == idx)
                return static_cast<int>(i);
        }
        k->cols_.push_back(idx);
        return static_cast<int>(k->cols_.size()) - 1;
    };

    bool ok = true;

    // Null-safe ×kDecimalScale of an operand (decimal promotion),
    // folded when constant — mirrors evalExpr's promoteToDecimal.
    auto scale = [&](Operand o) {
        if (o.buf < 0) {
            if (o.c != kNullValue)
                o.c *= kDecimalScale;
            return o;
        }
        Step st;
        st.kind = StepKind::Scale;
        st.a = o;
        st.dst = kTempBase + k->numBufs_;
        ++k->numBufs_;
        k->steps_.push_back(st);
        Operand r;
        r.buf = st.dst;
        return r;
    };

    // Emit the numeric subtree rooted at @p node; returns its operand
    // and bound type. Transcribes the evalExpr Arith case exactly.
    auto emit = [&](const ExprPtr &node, auto &&self)
        -> std::pair<Operand, ColumnType> {
        Operand o;
        switch (node->kind) {
          case ExprKind::ColRef: {
            const RelColumn &c = input.col(input.indexOf(node->column));
            if (!isNumeric(c.type)) {
                ok = false;
                return {o, c.type};
            }
            o.buf = col_slot(node->column);
            return {o, c.type};
          }
          case ExprKind::Const:
            if (!isNumeric(node->resultType)) {
                ok = false;
                return {o, node->resultType};
            }
            o.c = node->constVal;
            return {o, node->resultType};
          case ExprKind::Arith: {
            auto [oa, ta] = self(node->children[0], self);
            auto [ob, tb] = self(node->children[1], self);
            if (!ok)
                return {o, ColumnType::Int64};
            bool dec = ta == ColumnType::Decimal
                || tb == ColumnType::Decimal;
            bool date_shift =
                ta == ColumnType::Date && isIntegral(tb);
            if (dec && !date_shift) {
                if (ta != ColumnType::Decimal)
                    oa = scale(oa);
                if (tb != ColumnType::Decimal)
                    ob = scale(ob);
            }
            ColumnType rt = ColumnType::Int64;
            if (date_shift)
                rt = ColumnType::Date;
            else if (ta == ColumnType::Date && tb == ColumnType::Date)
                rt = ColumnType::Int64;
            else if (dec)
                rt = ColumnType::Decimal;
            if (oa.buf < 0 && ob.buf < 0) {
                // Constant subtree: fold with the exact step semantics.
                Operand r;
                if (oa.c == kNullValue || ob.c == kNullValue) {
                    r.c = kNullValue;
                    return {r, rt};
                }
                switch (node->arithOp) {
                  case ArithOp::Add: r.c = oa.c + ob.c; break;
                  case ArithOp::Sub: r.c = oa.c - ob.c; break;
                  case ArithOp::Mul:
                    r.c = dec ? decimalMul(oa.c, ob.c) : oa.c * ob.c;
                    break;
                  case ArithOp::Div:
                    r.c = dec ? decimalDiv(oa.c, ob.c)
                              : (ob.c == 0 ? 0 : oa.c / ob.c);
                    break;
                }
                return {r, rt};
            }
            Step st;
            st.kind = StepKind::Arith;
            st.op = node->arithOp;
            st.dec = dec;
            st.a = oa;
            st.b = ob;
            st.dst = kTempBase + k->numBufs_;
            ++k->numBufs_;
            k->steps_.push_back(st);
            Operand r;
            r.buf = st.dst;
            return {r, rt};
          }
          default:
            ok = false;
            return {o, ColumnType::Int64};
        }
    };

    auto [oa, ta] = emit(e->children[0], emit);
    auto [ob, tb] = emit(e->children[1], emit);
    if (!ok)
        return nullptr;

    k->cmp_.op = e->cmpOp;
    k->cmp_.a = oa;
    k->cmp_.b = ob;
    bool dec =
        ta == ColumnType::Decimal || tb == ColumnType::Decimal;
    k->cmp_.sa = dec && ta != ColumnType::Decimal ? kDecimalScale : 1;
    k->cmp_.sb = dec && tb != ColumnType::Decimal ? kDecimalScale : 1;
    // Fold constant-side scaling so the hot loops see scale 1. The
    // oracle only scales non-null values, hence the guard.
    if (k->cmp_.a.buf < 0) {
        if (k->cmp_.a.c != kNullValue)
            k->cmp_.a.c *= k->cmp_.sa;
        k->cmp_.sa = 1;
    }
    if (k->cmp_.b.buf < 0) {
        if (k->cmp_.b.c != kNullValue)
            k->cmp_.b.c *= k->cmp_.sb;
        k->cmp_.sb = 1;
    }

    // Rebase temporaries now that the column-slot count is final.
    const int ncols = static_cast<int>(k->cols_.size());
    auto rebase = [&](int buf) {
        return buf >= kTempBase ? ncols + (buf - kTempBase) : buf;
    };
    for (Step &st : k->steps_) {
        st.a.buf = rebase(st.a.buf);
        st.b.buf = rebase(st.b.buf);
        st.dst = rebase(st.dst);
    }
    k->cmp_.a.buf = rebase(k->cmp_.a.buf);
    k->cmp_.b.buf = rebase(k->cmp_.b.buf);
    return k;
}

void
ConjunctKernel::evalMask(const RelTable &input, const std::int64_t *rows,
                         std::int64_t first, std::int64_t n,
                         BitVector &out, Scratch &scratch) const
{
    out.resize(n);
    if (n == 0)
        return;
    const int ncols = static_cast<int>(cols_.size());
    const int total = ncols + numBufs_;
    scratch.ptrs.assign(total, nullptr);
    if (static_cast<int>(scratch.bufs.size()) < total)
        scratch.bufs.resize(total);

    for (int i = 0; i < ncols; ++i) {
        const std::vector<std::int64_t> &src = *input.col(cols_[i]).vals;
        if (rows == nullptr) {
            scratch.ptrs[i] = src.data() + first;
        } else {
            std::vector<std::int64_t> &buf = scratch.bufs[i];
            if (static_cast<std::int64_t>(buf.size()) < n)
                buf.resize(n);
            const std::int64_t *sp = src.data();
            for (std::int64_t r = 0; r < n; ++r)
                buf[r] = sp[rows[r]];
            scratch.ptrs[i] = buf.data();
        }
    }

    for (const Step &st : steps_) {
        std::vector<std::int64_t> &dbuf = scratch.bufs[st.dst];
        if (static_cast<std::int64_t>(dbuf.size()) < n)
            dbuf.resize(n);
        std::int64_t *dst = dbuf.data();
        scratch.ptrs[st.dst] = dst;
        const std::int64_t *pa =
            st.a.buf >= 0 ? scratch.ptrs[st.a.buf] : nullptr;
        const std::int64_t *pb =
            st.b.buf >= 0 ? scratch.ptrs[st.b.buf] : nullptr;
        if (st.kind == StepKind::Scale) {
            runScale(dst, pa, n);
            continue;
        }
        switch (st.op) {
          case ArithOp::Add:
            runArith<AddN>(dst, pa, st.a.c, pb, st.b.c, n);
            break;
          case ArithOp::Sub:
            runArith<SubN>(dst, pa, st.a.c, pb, st.b.c, n);
            break;
          case ArithOp::Mul:
            if (st.dec)
                runArith<MulDecN>(dst, pa, st.a.c, pb, st.b.c, n);
            else
                runArith<MulIntN>(dst, pa, st.a.c, pb, st.b.c, n);
            break;
          case ArithOp::Div:
            if (st.dec)
                runArith<DivDecN>(dst, pa, st.a.c, pb, st.b.c, n);
            else
                runArith<DivIntN>(dst, pa, st.a.c, pb, st.b.c, n);
            break;
        }
    }

    const std::int64_t *pa =
        cmp_.a.buf >= 0 ? scratch.ptrs[cmp_.a.buf] : nullptr;
    const std::int64_t *pb =
        cmp_.b.buf >= 0 ? scratch.ptrs[cmp_.b.buf] : nullptr;
    switch (cmp_.op) {
      case CmpOp::Eq:
        dispatchCmp<CmpOp::Eq>(pa, cmp_.a.c, cmp_.sa, pb, cmp_.b.c,
                               cmp_.sb, n, out);
        break;
      case CmpOp::Ne:
        dispatchCmp<CmpOp::Ne>(pa, cmp_.a.c, cmp_.sa, pb, cmp_.b.c,
                               cmp_.sb, n, out);
        break;
      case CmpOp::Lt:
        dispatchCmp<CmpOp::Lt>(pa, cmp_.a.c, cmp_.sa, pb, cmp_.b.c,
                               cmp_.sb, n, out);
        break;
      case CmpOp::Le:
        dispatchCmp<CmpOp::Le>(pa, cmp_.a.c, cmp_.sa, pb, cmp_.b.c,
                               cmp_.sb, n, out);
        break;
      case CmpOp::Gt:
        dispatchCmp<CmpOp::Gt>(pa, cmp_.a.c, cmp_.sa, pb, cmp_.b.c,
                               cmp_.sb, n, out);
        break;
      case CmpOp::Ge:
        dispatchCmp<CmpOp::Ge>(pa, cmp_.a.c, cmp_.sa, pb, cmp_.b.c,
                               cmp_.sb, n, out);
        break;
    }
}

} // namespace aquoman
