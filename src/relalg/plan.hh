/**
 * @file
 * Logical query plans. A Query is an ordered list of Stages; each
 * stage's plan tree scans either base tables (by catalog name) or the
 * result of an earlier stage (by stage id). All TPC-H subqueries are
 * expressed by decorrelation into stages (group-by + join), so no
 * scalar-subquery machinery is needed at runtime.
 */

#ifndef AQUOMAN_RELALG_PLAN_HH
#define AQUOMAN_RELALG_PLAN_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "relalg/expr.hh"

namespace aquoman {

struct Plan;
using PlanPtr = std::shared_ptr<const Plan>;

/** Plan operator kinds. */
enum class PlanKind
{
    Scan,    ///< read a base table or a prior stage result
    Filter,  ///< keep rows where the predicate is true
    Project, ///< compute named output expressions per row
    Join,    ///< equi-join (with optional residual predicate)
    GroupBy, ///< grouped / global aggregation
    OrderBy, ///< sort (optionally top-k limited)
};

/** Join flavours used by the TPC-H plans. */
enum class JoinType
{
    Inner,     ///< emit combined row per match
    LeftSemi,  ///< emit left row when >=1 match passes
    LeftAnti,  ///< emit left row when no match passes
    LeftOuter, ///< emit combined row; unmatched right side is NULL
};

/** Aggregate function kinds. */
enum class AggKind { Sum, Min, Max, Count, Avg, CountDistinct };

/** Null sentinel produced by outer joins; Count/Sum skip it. */
constexpr std::int64_t kNullValue =
    std::numeric_limits<std::int64_t>::min();

/** One named output expression of a Project. */
struct NamedExpr
{
    std::string name;
    ExprPtr expr;
};

/** One aggregate of a GroupBy. */
struct AggSpec
{
    std::string name; ///< output column name
    AggKind kind;
    ExprPtr input;    ///< aggregated expression (ignored for Count(*))
};

/** One sort key of an OrderBy. */
struct SortKey
{
    std::string column;
    bool descending = false;
};

/** Immutable plan node. */
struct Plan
{
    PlanKind kind;
    std::vector<PlanPtr> children;

    // --- Scan ---
    std::string scanTable;   ///< base table name ("" for stage scans)
    std::string scanStage;   ///< prior stage id ("" for base scans)
    std::string scanAlias;   ///< optional prefix for output column names
    /** Columns to read; empty = all. Pruning is done by the builder. */
    std::vector<std::string> scanColumns;

    // --- Filter ---
    ExprPtr predicate;

    // --- Project ---
    std::vector<NamedExpr> projections;

    // --- Join ---
    JoinType joinType = JoinType::Inner;
    std::vector<std::string> leftKeys;
    std::vector<std::string> rightKeys;
    /** Extra predicate over the combined row (non-equi conditions). */
    ExprPtr residual;

    // --- GroupBy ---
    std::vector<std::string> groupColumns;
    std::vector<AggSpec> aggregates;

    // --- OrderBy ---
    std::vector<SortKey> sortKeys;
    std::int64_t limit = -1; ///< top-k cutoff; -1 = unlimited
};

/** One executable stage of a query. */
struct Stage
{
    std::string id;
    PlanPtr plan;
};

/** A complete query: stages execute in order, last one is the answer. */
struct Query
{
    std::string name;
    std::vector<Stage> stages;
};

// ---------------------------------------------------------------------
// Plan builder helpers
// ---------------------------------------------------------------------

/** Scan a base table, optionally aliased and column-pruned. */
inline PlanPtr
scan(const std::string &table, const std::string &alias = "",
     std::vector<std::string> columns = {})
{
    auto p = std::make_shared<Plan>();
    p->kind = PlanKind::Scan;
    p->scanTable = table;
    p->scanAlias = alias;
    p->scanColumns = std::move(columns);
    return p;
}

/** Scan the result of an earlier stage. */
inline PlanPtr
scanStage(const std::string &stage_id)
{
    auto p = std::make_shared<Plan>();
    p->kind = PlanKind::Scan;
    p->scanStage = stage_id;
    return p;
}

inline PlanPtr
filter(PlanPtr child, ExprPtr pred)
{
    auto p = std::make_shared<Plan>();
    p->kind = PlanKind::Filter;
    p->children = {std::move(child)};
    p->predicate = std::move(pred);
    return p;
}

inline PlanPtr
project(PlanPtr child, std::vector<NamedExpr> exprs)
{
    auto p = std::make_shared<Plan>();
    p->kind = PlanKind::Project;
    p->children = {std::move(child)};
    p->projections = std::move(exprs);
    return p;
}

inline PlanPtr
join(JoinType type, PlanPtr left, PlanPtr right,
     std::vector<std::string> left_keys, std::vector<std::string> right_keys,
     ExprPtr residual = nullptr)
{
    auto p = std::make_shared<Plan>();
    p->kind = PlanKind::Join;
    p->joinType = type;
    p->children = {std::move(left), std::move(right)};
    p->leftKeys = std::move(left_keys);
    p->rightKeys = std::move(right_keys);
    p->residual = std::move(residual);
    return p;
}

inline PlanPtr
groupBy(PlanPtr child, std::vector<std::string> group_cols,
        std::vector<AggSpec> aggs)
{
    auto p = std::make_shared<Plan>();
    p->kind = PlanKind::GroupBy;
    p->children = {std::move(child)};
    p->groupColumns = std::move(group_cols);
    p->aggregates = std::move(aggs);
    return p;
}

inline PlanPtr
orderBy(PlanPtr child, std::vector<SortKey> keys, std::int64_t limit = -1)
{
    auto p = std::make_shared<Plan>();
    p->kind = PlanKind::OrderBy;
    p->children = {std::move(child)};
    p->sortKeys = std::move(keys);
    p->limit = limit;
    return p;
}

/** Render a plan tree as an indented string (for docs and debugging). */
std::string planToString(const PlanPtr &plan, int indent = 0);

/** Render a whole query. */
std::string queryToString(const Query &q);

} // namespace aquoman

#endif // AQUOMAN_RELALG_PLAN_HH
