/**
 * @file
 * Vectorised expression evaluation over materialised relations. This is
 * the semantic reference both execution paths share: the baseline engine
 * evaluates expressions with it directly, and the AQUOMAN Row
 * Transformer's PE programs are checked against it in tests.
 */

#ifndef AQUOMAN_RELALG_EVAL_HH
#define AQUOMAN_RELALG_EVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "columnstore/selection_vector.hh"
#include "common/bitvector.hh"
#include "relalg/expr.hh"
#include "relalg/reltable.hh"

namespace aquoman {

/**
 * Resolve the result type of @p e against @p input's schema.
 * Applies SQL-ish promotion: any Decimal operand makes arithmetic and
 * comparison decimal-scaled.
 */
ColumnType bindType(const ExprPtr &e, const RelTable &input);

/** Evaluate @p e over all rows of @p input into a column named @p name. */
RelColumn evalExpr(const ExprPtr &e, const RelTable &input,
                   const std::string &name = "expr");

/** Evaluate a boolean expression into a row-selection bit vector. */
BitVector evalPredicate(const ExprPtr &e, const RelTable &input);

/**
 * Evaluate @p e at @p n selected rows of @p input into a column of
 * length @p n. @p rows names the selected row ids; when nullptr the
 * selection is the dense range [first, first + n). The full dense
 * range delegates to evalExpr (zero-copy column references), so the
 * two entry points are bit-identical by construction.
 */
RelColumn evalExprSel(const ExprPtr &e, const RelTable &input,
                      const std::int64_t *rows, std::int64_t first,
                      std::int64_t n, const std::string &name = "expr");

/** Split the top-level AND tree of @p e into its conjuncts, in order. */
void splitAndConjuncts(const ExprPtr &e, std::vector<ExprPtr> &out);

/**
 * Shrink @p sel to the rows of @p input passing @p pred, evaluating
 * conjunct by conjunct so later conjuncts only see survivors. The
 * resulting selection is exactly the ascending pass set evalPredicate
 * would produce over the rows @p sel selects.
 */
void filterSelection(const ExprPtr &pred, const RelTable &input,
                     SelectionVector &sel);

} // namespace aquoman

#endif // AQUOMAN_RELALG_EVAL_HH
