/**
 * @file
 * Vectorised expression evaluation over materialised relations. This is
 * the semantic reference both execution paths share: the baseline engine
 * evaluates expressions with it directly, and the AQUOMAN Row
 * Transformer's PE programs are checked against it in tests.
 */

#ifndef AQUOMAN_RELALG_EVAL_HH
#define AQUOMAN_RELALG_EVAL_HH

#include <string>

#include "common/bitvector.hh"
#include "relalg/expr.hh"
#include "relalg/reltable.hh"

namespace aquoman {

/**
 * Resolve the result type of @p e against @p input's schema.
 * Applies SQL-ish promotion: any Decimal operand makes arithmetic and
 * comparison decimal-scaled.
 */
ColumnType bindType(const ExprPtr &e, const RelTable &input);

/** Evaluate @p e over all rows of @p input into a column named @p name. */
RelColumn evalExpr(const ExprPtr &e, const RelTable &input,
                   const std::string &name = "expr");

/** Evaluate a boolean expression into a row-selection bit vector. */
BitVector evalPredicate(const ExprPtr &e, const RelTable &input);

} // namespace aquoman

#endif // AQUOMAN_RELALG_EVAL_HH
