#include "relalg/eval.hh"

#include <algorithm>
#include <unordered_map>

#include "common/batch_mode.hh"
#include "common/decimal.hh"
#include "relalg/plan.hh"
#include "relalg/pred_kernel.hh"

namespace aquoman {

namespace {

/** Is this a numeric type that participates in decimal promotion? */
bool
isIntegral(ColumnType t)
{
    return t == ColumnType::Int32 || t == ColumnType::Int64;
}

/** Scale integer values up to decimal when mixing with a decimal side. */
void
promoteToDecimal(RelColumn &c)
{
    if (c.type == ColumnType::Decimal)
        return;
    for (auto &v : *c.vals) {
        if (v != kNullValue)
            v *= kDecimalScale;
    }
    c.type = ColumnType::Decimal;
}

std::int64_t
cmpResult(CmpOp op, int c)
{
    switch (op) {
      case CmpOp::Eq: return c == 0;
      case CmpOp::Ne: return c != 0;
      case CmpOp::Lt: return c < 0;
      case CmpOp::Le: return c <= 0;
      case CmpOp::Gt: return c > 0;
      case CmpOp::Ge: return c >= 0;
    }
    return 0;
}

/**
 * The varchar column @p e references directly, or nullptr. Heap
 * interning dedupes (one canonical offset per distinct string), so
 * string equality against such a column reduces to offset equality.
 */
const RelColumn *
varcharColRef(const ExprPtr &e, const RelTable &input)
{
    if (e->kind != ExprKind::ColRef)
        return nullptr;
    const RelColumn &c = input.col(input.indexOf(e->column));
    return c.type == ColumnType::Varchar && c.heap ? &c : nullptr;
}

} // namespace

ColumnType
bindType(const ExprPtr &e, const RelTable &input)
{
    switch (e->kind) {
      case ExprKind::ColRef:
        return input.col(input.indexOf(e->column)).type;
      case ExprKind::Const:
      case ExprKind::ConstStr:
        return e->resultType;
      case ExprKind::Arith: {
        ColumnType a = bindType(e->children[0], input);
        ColumnType b = bindType(e->children[1], input);
        if (a == ColumnType::Date && isIntegral(b))
            return ColumnType::Date;
        if (a == ColumnType::Date && b == ColumnType::Date)
            return ColumnType::Int64;
        if (a == ColumnType::Decimal || b == ColumnType::Decimal)
            return ColumnType::Decimal;
        return ColumnType::Int64;
      }
      case ExprKind::Compare:
      case ExprKind::Logic:
      case ExprKind::Not:
      case ExprKind::Like:
      case ExprKind::InList:
        return ColumnType::Int32;
      case ExprKind::Case:
        return bindType(e->children[1], input);
      case ExprKind::Year:
        return ColumnType::Int64;
    }
    return ColumnType::Int64;
}

RelColumn
evalExpr(const ExprPtr &e, const RelTable &input, const std::string &name)
{
    std::int64_t n = input.numRows();
    RelColumn out(name, bindType(e, input));
    switch (e->kind) {
      case ExprKind::ColRef: {
        const RelColumn &src = input.col(input.indexOf(e->column));
        out.vals = src.vals; // zero-copy column reference
        out.heap = src.heap;
        out.type = src.type;
        break;
      }
      case ExprKind::Const: {
        out.vals->assign(n, e->constVal);
        break;
      }
      case ExprKind::ConstStr: {
        // Materialise via a tiny private heap so str() works uniformly.
        auto heap = std::make_shared<StringHeap>();
        std::int64_t off = heap->intern(e->strVal);
        out.heap = heap;
        out.vals->assign(n, off);
        break;
      }
      case ExprKind::Arith: {
        RelColumn a = evalExpr(e->children[0], input);
        RelColumn b = evalExpr(e->children[1], input);
        bool dec = a.type == ColumnType::Decimal
            || b.type == ColumnType::Decimal;
        bool date_shift = a.type == ColumnType::Date && isIntegral(b.type);
        if (dec && !date_shift) {
            // Copy-on-promote: a/b may alias input columns.
            if (a.type != ColumnType::Decimal) {
                a.vals = std::make_shared<std::vector<std::int64_t>>(
                    *a.vals);
                promoteToDecimal(a);
            }
            if (b.type != ColumnType::Decimal) {
                b.vals = std::make_shared<std::vector<std::int64_t>>(
                    *b.vals);
                promoteToDecimal(b);
            }
        }
        out.vals->resize(n);
        for (std::int64_t i = 0; i < n; ++i) {
            std::int64_t x = a.get(i);
            std::int64_t y = b.get(i);
            if (x == kNullValue || y == kNullValue) {
                (*out.vals)[i] = kNullValue;
                continue;
            }
            std::int64_t r = 0;
            switch (e->arithOp) {
              case ArithOp::Add: r = x + y; break;
              case ArithOp::Sub: r = x - y; break;
              case ArithOp::Mul:
                r = dec ? decimalMul(x, y) : x * y;
                break;
              case ArithOp::Div:
                r = dec ? decimalDiv(x, y) : (y == 0 ? 0 : x / y);
                break;
            }
            (*out.vals)[i] = r;
        }
        break;
      }
      case ExprKind::Compare: {
        if (e->cmpOp == CmpOp::Eq || e->cmpOp == CmpOp::Ne) {
            // varchar column vs string constant: compare interned
            // offsets instead of string bytes (same result, dedupe
            // makes the canonical offset unique).
            const RelColumn *col = nullptr;
            const Expr *cst = nullptr;
            if (e->children[1]->kind == ExprKind::ConstStr) {
                col = varcharColRef(e->children[0], input);
                cst = e->children[1].get();
            } else if (e->children[0]->kind == ExprKind::ConstStr) {
                col = varcharColRef(e->children[1], input);
                cst = e->children[0].get();
            }
            if (col && cst) {
                std::int64_t off = col->heap->find(cst->strVal);
                bool want_eq = e->cmpOp == CmpOp::Eq;
                const std::vector<std::int64_t> &sv = *col->vals;
                out.vals->resize(n);
                for (std::int64_t i = 0; i < n; ++i)
                    (*out.vals)[i] = (sv[i] == off) == want_eq;
                break;
            }
        }
        RelColumn a = evalExpr(e->children[0], input);
        RelColumn b = evalExpr(e->children[1], input);
        out.vals->resize(n);
        if (isStringType(a.type) || isStringType(b.type)) {
            AQ_ASSERT(isStringType(a.type) && isStringType(b.type),
                      "string compared with non-string");
            for (std::int64_t i = 0; i < n; ++i) {
                int c = a.str(i).compare(b.str(i));
                (*out.vals)[i] = cmpResult(e->cmpOp, c);
            }
        } else {
            bool dec = a.type == ColumnType::Decimal
                || b.type == ColumnType::Decimal;
            std::int64_t sa = dec && a.type != ColumnType::Decimal
                ? kDecimalScale : 1;
            std::int64_t sb = dec && b.type != ColumnType::Decimal
                ? kDecimalScale : 1;
            for (std::int64_t i = 0; i < n; ++i) {
                std::int64_t x = a.get(i);
                std::int64_t y = b.get(i);
                if (x == kNullValue || y == kNullValue) {
                    (*out.vals)[i] = 0;
                    continue;
                }
                x *= sa;
                y *= sb;
                int c = x < y ? -1 : (x > y ? 1 : 0);
                (*out.vals)[i] = cmpResult(e->cmpOp, c);
            }
        }
        break;
      }
      case ExprKind::Logic: {
        RelColumn a = evalExpr(e->children[0], input);
        RelColumn b = evalExpr(e->children[1], input);
        out.vals->resize(n);
        for (std::int64_t i = 0; i < n; ++i) {
            bool x = a.get(i) != 0 && a.get(i) != kNullValue;
            bool y = b.get(i) != 0 && b.get(i) != kNullValue;
            (*out.vals)[i] = e->logicOp == LogicOp::And ? (x && y)
                                                        : (x || y);
        }
        break;
      }
      case ExprKind::Not: {
        RelColumn a = evalExpr(e->children[0], input);
        out.vals->resize(n);
        for (std::int64_t i = 0; i < n; ++i)
            (*out.vals)[i] = a.get(i) == 0 ? 1 : 0;
        break;
      }
      case ExprKind::Like: {
        // Byte prefilter: the pattern's longest literal run is a
        // necessary substring of every match, so strings lacking it
        // are rejected by one memchr-style scan before the wildcard
        // matcher runs. Only guaranteed-false rows are skipped, so the
        // result stays bit-identical to the plain likeMatch loop.
        const std::string_view run = likeLiteralRun(e->pattern);
        const RelColumn *dict = varcharColRef(e->children[0], input);
        if (dict && !run.empty() && !dict->heap->mayContain(run)) {
            // No interned string contains the run: nothing can match.
            out.vals->assign(n, 0);
            break;
        }
        auto match = [&](std::string_view s) -> std::int64_t {
            if (!run.empty() && s.find(run) == std::string_view::npos)
                return 0;
            return likeMatch(s, e->pattern);
        };
        if (dict && dict->heap->numStrings() * 4 < n) {
            // Small dictionary: match each distinct string once and
            // reuse the verdict by interned offset.
            std::unordered_map<std::int64_t, std::int64_t> memo;
            memo.reserve(dict->heap->numStrings());
            const std::vector<std::int64_t> &sv = *dict->vals;
            out.vals->resize(n);
            for (std::int64_t i = 0; i < n; ++i) {
                auto [it, fresh] = memo.try_emplace(sv[i], 0);
                if (fresh)
                    it->second = match(dict->heap->get(sv[i]));
                (*out.vals)[i] = it->second;
            }
            break;
        }
        RelColumn a = evalExpr(e->children[0], input);
        AQ_ASSERT(isStringType(a.type), "LIKE over non-string");
        out.vals->resize(n);
        for (std::int64_t i = 0; i < n; ++i)
            (*out.vals)[i] = match(a.str(i));
        break;
      }
      case ExprKind::InList: {
        if (!e->listStrs.empty()) {
            const RelColumn *col = varcharColRef(e->children[0], input);
            if (col) {
                // Resolve each list literal to its interned offset
                // (-1 when absent, which matches no row).
                std::vector<std::int64_t> offs;
                for (const std::string &v : e->listStrs)
                    offs.push_back(col->heap->find(v));
                const std::vector<std::int64_t> &sv = *col->vals;
                out.vals->resize(n);
                for (std::int64_t i = 0; i < n; ++i) {
                    std::int64_t v = sv[i];
                    bool hit = std::find(offs.begin(), offs.end(), v)
                        != offs.end();
                    (*out.vals)[i] = hit;
                }
                break;
            }
        }
        RelColumn a = evalExpr(e->children[0], input);
        out.vals->resize(n);
        if (!e->listStrs.empty()) {
            AQ_ASSERT(isStringType(a.type));
            for (std::int64_t i = 0; i < n; ++i) {
                std::string_view s = a.str(i);
                bool hit = std::any_of(
                    e->listStrs.begin(), e->listStrs.end(),
                    [&](const std::string &v) { return s == v; });
                (*out.vals)[i] = hit;
            }
        } else {
            for (std::int64_t i = 0; i < n; ++i) {
                std::int64_t v = a.get(i);
                bool hit = std::find(e->listVals.begin(), e->listVals.end(),
                                     v) != e->listVals.end();
                (*out.vals)[i] = hit;
            }
        }
        break;
      }
      case ExprKind::Year: {
        RelColumn a = evalExpr(e->children[0], input);
        out.vals->resize(n);
        for (std::int64_t i = 0; i < n; ++i) {
            std::int64_t v = a.get(i);
            (*out.vals)[i] = v == kNullValue
                ? kNullValue
                : civilFromDays(static_cast<std::int32_t>(v)).year;
        }
        break;
      }
      case ExprKind::Case: {
        std::size_t arms = (e->children.size() - 1) / 2;
        std::vector<RelColumn> whens, thens;
        for (std::size_t a = 0; a < arms; ++a) {
            whens.push_back(evalExpr(e->children[2 * a], input));
            thens.push_back(evalExpr(e->children[2 * a + 1], input));
        }
        RelColumn else_c = evalExpr(e->children.back(), input);
        out.type = thens.empty() ? else_c.type : thens[0].type;
        out.heap = thens.empty() ? else_c.heap : thens[0].heap;
        out.vals->resize(n);
        for (std::int64_t i = 0; i < n; ++i) {
            std::int64_t v = else_c.get(i);
            for (std::size_t a = 0; a < arms; ++a) {
                if (whens[a].get(i) != 0
                        && whens[a].get(i) != kNullValue) {
                    v = thens[a].get(i);
                    break;
                }
            }
            (*out.vals)[i] = v;
        }
        break;
      }
    }
    return out;
}

BitVector
evalPredicate(const ExprPtr &e, const RelTable &input)
{
    RelColumn c = evalExpr(e, input, "pred");
    std::int64_t n = input.numRows();
    BitVector bv(n);
    const std::vector<std::int64_t> &vals = *c.vals;
    for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t v = vals[i];
        bv.set(i, v != 0 && v != kNullValue);
    }
    return bv;
}

RelColumn
evalExprSel(const ExprPtr &e, const RelTable &input,
            const std::int64_t *rows, std::int64_t first, std::int64_t n,
            const std::string &name)
{
    if (rows == nullptr && first == 0 && n == input.numRows())
        return evalExpr(e, input, name);
    // Late materialization: gather only the referenced leaf columns at
    // the selected positions, then run the reference evaluator over
    // the compacted sub-relation. Interior nodes therefore execute the
    // exact evalExpr loops, just over n rows instead of all of them.
    std::vector<std::string> cols;
    collectColumns(e, cols);
    RelTable sub;
    for (const auto &cname : cols) {
        const RelColumn &src = input.col(input.indexOf(cname));
        RelColumn cc(cname, src.type);
        cc.heap = src.heap;
        cc.vals->resize(n);
        std::vector<std::int64_t> &vals = *cc.vals;
        if (rows == nullptr) {
            const std::vector<std::int64_t> &sv = *src.vals;
            std::copy(sv.begin() + first, sv.begin() + first + n,
                      vals.begin());
        } else {
            for (std::int64_t i = 0; i < n; ++i)
                vals[i] = src.get(rows[i]);
        }
        sub.addColumn(std::move(cc));
    }
    if (sub.numColumns() == 0) {
        // Constant expression: give the sub-relation its row count via
        // a dummy column the expression never references.
        RelColumn dummy("__sel_rows", ColumnType::Int64);
        dummy.vals->assign(n, 0);
        sub.addColumn(std::move(dummy));
    }
    return evalExpr(e, sub, name);
}

void
splitAndConjuncts(const ExprPtr &e, std::vector<ExprPtr> &out)
{
    if (e->kind == ExprKind::Logic && e->logicOp == LogicOp::And) {
        splitAndConjuncts(e->children[0], out);
        splitAndConjuncts(e->children[1], out);
    } else {
        out.push_back(e);
    }
}

void
filterSelection(const ExprPtr &pred, const RelTable &input,
                SelectionVector &sel)
{
    std::vector<ExprPtr> conjuncts;
    splitAndConjuncts(pred, conjuncts);

    if (!batchExecutionEnabled()) {
        // Reference path (AQUOMAN_BATCH=0): conjunct-at-a-time sparse
        // merges through the interpreted evaluator — the bit-identical
        // oracle the compiled fold below is diffed against.
        for (const ExprPtr &c : conjuncts) {
            if (sel.empty())
                break;
            std::int64_t n = sel.size();
            RelColumn v = evalExprSel(c, input, sel.data(), 0, n, "pred");
            BitVector mask(n);
            for (std::int64_t i = 0; i < n; ++i)
                mask.set(i, v.get(i) != 0 && v.get(i) != kNullValue);
            sel.filter(mask);
        }
        return;
    }

    std::vector<std::unique_ptr<ConjunctKernel>> kernels(conjuncts.size());
    for (std::size_t i = 0; i < conjuncts.size(); ++i)
        kernels[i] = ConjunctKernel::tryCompile(conjuncts[i], input);
    ConjunctKernel::Scratch scratch;

    // Phase A: while the selection is still dense, AND-fold the masks
    // of every cheap compiled conjunct (bare compares: one streaming
    // pass each, no gather) word-wise, then materialize survivors
    // once. Evaluating these out of order is sound because conjunct
    // verdicts are pure and per-row — NULL fails a comparison on both
    // paths — so AND order changes cost, never the surviving set.
    std::vector<bool> folded(conjuncts.size(), false);
    if (sel.isDense() && !sel.empty()) {
        BitVector acc, m;
        bool any = false;
        for (std::size_t i = 0; i < conjuncts.size(); ++i) {
            if (kernels[i] == nullptr || !kernels[i]->cheap())
                continue;
            BitVector &dst = any ? m : acc;
            kernels[i]->evalMask(input, nullptr, 0, sel.size(), dst,
                                 scratch);
            if (any)
                acc.andWith(m);
            any = true;
            folded[i] = true;
        }
        if (any)
            sel.filter(acc);
    }

    // Phase B: remaining conjuncts in original order over the
    // shrinking selection — compiled kernels where eligible, the
    // reference evaluator otherwise.
    BitVector mask;
    for (std::size_t i = 0; i < conjuncts.size(); ++i) {
        if (folded[i])
            continue;
        if (sel.empty())
            break;
        std::int64_t n = sel.size();
        if (kernels[i] != nullptr) {
            kernels[i]->evalMask(input, sel.data(), 0, n, mask, scratch);
        } else {
            RelColumn v = evalExprSel(conjuncts[i], input, sel.data(), 0,
                                      n, "pred");
            mask.resize(n);
            for (std::int64_t r = 0; r < n; ++r)
                mask.set(r, v.get(r) != 0 && v.get(r) != kNullValue);
        }
        sel.filter(mask);
    }
}

} // namespace aquoman
