#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/metrics.hh"

namespace aquoman::obs {

TraceArg
arg(const std::string &key, double v)
{
    return {key, jsonNumber(v)};
}

TraceArg
arg(const std::string &key, std::int64_t v)
{
    return {key, std::to_string(v)};
}

TraceArg
arg(const std::string &key, const std::string &v)
{
    return {key, "\"" + jsonEscape(v) + "\""};
}

TraceArg
arg(const std::string &key, const char *v)
{
    return arg(key, std::string(v));
}

SimTracer::SimTracer()
{
    const char *env = std::getenv("AQUOMAN_TRACE");
    if (env && env[0]) {
        envPath_ = env;
        on.store(true, std::memory_order_relaxed);
        std::atexit([] {
            SimTracer &t = SimTracer::global();
            if (!t.envPath().empty() && t.eventCount() > 0)
                t.writeJson(t.envPath());
        });
    }
}

SimTracer &
SimTracer::global()
{
    // Intentionally leaked: the constructor registers an atexit hook
    // (AQUOMAN_TRACE) that must outlive static destruction, which would
    // otherwise run before the hook and leave it a destroyed tracer.
    static SimTracer *tracer = new SimTracer;
    return *tracer;
}

int
SimTracer::track(const std::string &process, const std::string &thread)
{
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = 0; i < tracks.size(); ++i) {
        if (tracks[i].process == process && tracks[i].thread == thread)
            return static_cast<int>(i);
    }
    tracks.push_back({process, thread});
    return static_cast<int>(tracks.size() - 1);
}

void
SimTracer::span(int track, const std::string &name,
                const std::string &category, double start_sec,
                double end_sec, std::vector<TraceArg> args)
{
    TraceEvent ev;
    ev.phase = 'X';
    ev.track = track;
    ev.name = name;
    ev.category = category;
    ev.tsSec = start_sec;
    ev.endSec = end_sec;
    ev.args = std::move(args);
    std::lock_guard<std::mutex> lock(mu);
    ev.group = ambient;
    if (ambient != -1)
        ++groupCounts[ambient];
    log.push_back(std::move(ev));
}

void
SimTracer::instant(int track, const std::string &name,
                   const std::string &category, double at_sec,
                   std::vector<TraceArg> args)
{
    TraceEvent ev;
    ev.phase = 'i';
    ev.track = track;
    ev.name = name;
    ev.category = category;
    ev.tsSec = at_sec;
    ev.endSec = at_sec;
    ev.args = std::move(args);
    std::lock_guard<std::mutex> lock(mu);
    ev.group = ambient;
    if (ambient != -1)
        ++groupCounts[ambient];
    log.push_back(std::move(ev));
}

void
SimTracer::setAmbientGroup(std::int64_t group)
{
    std::lock_guard<std::mutex> lock(mu);
    ambient = group;
}

std::int64_t
SimTracer::ambientGroup() const
{
    std::lock_guard<std::mutex> lock(mu);
    return ambient;
}

void
SimTracer::compactLocked()
{
    log.erase(std::remove_if(log.begin(), log.end(),
                             [&](const TraceEvent &ev) {
                                 return ev.group != -1 &&
                                        dropSet.count(ev.group) != 0;
                             }),
              log.end());
    dropSet.clear();
    pendingDropped = 0;
}

void
SimTracer::resolveGroup(std::int64_t group, bool keep)
{
    if (group == -1)
        return;
    std::lock_guard<std::mutex> lock(mu);
    auto it = groupCounts.find(group);
    std::size_t count = it == groupCounts.end() ? 0 : it->second;
    if (it != groupCounts.end())
        groupCounts.erase(it);
    if (keep || count == 0)
        return;
    dropSet.insert(group);
    pendingDropped += count;
    totalDropped += count;
    if (dropSet.size() >= kCompactGroups)
        compactLocked();
}

std::size_t
SimTracer::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(mu);
    return totalDropped;
}

std::vector<TraceEvent>
SimTracer::events() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<TraceEvent> out;
    out.reserve(log.size() - pendingDropped);
    for (const TraceEvent &ev : log)
        if (ev.group == -1 || dropSet.count(ev.group) == 0)
            out.push_back(ev);
    return out;
}

std::size_t
SimTracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return log.size() - pendingDropped;
}

SimTracer::TrackInfo
SimTracer::trackInfo(int track) const
{
    std::lock_guard<std::mutex> lock(mu);
    return tracks.at(static_cast<std::size_t>(track));
}

std::string
SimTracer::toJson() const
{
    std::vector<TrackInfo> tr;
    std::vector<TraceEvent> evs;
    {
        std::lock_guard<std::mutex> lock(mu);
        tr = tracks;
        evs.reserve(log.size() - pendingDropped);
        for (const TraceEvent &ev : log)
            if (ev.group == -1 || dropSet.count(ev.group) == 0)
                evs.push_back(ev);
    }

    // Tracks whose every event was sampled away are omitted entirely —
    // no metadata lines — so a dropped query leaves zero bytes behind.
    std::vector<bool> used(tr.size(), false);
    for (const TraceEvent &ev : evs)
        used[static_cast<std::size_t>(ev.track)] = true;

    // Renumber pids/tids by sorted (process, thread) names so the
    // output never depends on registration order. Each track is fed by
    // one logical (serial) sequence, so preserving per-track recording
    // order with a stable sort keeps the whole file deterministic.
    std::map<std::string, int> pids;
    for (std::size_t i = 0; i < tr.size(); ++i)
        if (used[i])
            pids.emplace(tr[i].process, 0);
    int next_pid = 1;
    for (auto &[name, pid] : pids)
        pid = next_pid++;

    std::map<std::pair<std::string, std::string>, int> tids;
    for (std::size_t i = 0; i < tr.size(); ++i)
        if (used[i])
            tids.emplace(std::make_pair(tr[i].process, tr[i].thread), 0);
    int next_tid = 1;
    for (auto &[name, tid] : tids)
        tid = next_tid++;

    std::vector<std::size_t> order(evs.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    auto sort_key = [&](std::size_t i) {
        const TrackInfo &t = tr[static_cast<std::size_t>(evs[i].track)];
        return std::make_pair(pids.at(t.process),
                              tids.at({t.process, t.thread}));
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return sort_key(a) < sort_key(b);
                     });

    std::ostringstream os;
    os << "{\"traceEvents\": [\n";
    bool first = true;
    auto sep = [&] {
        os << (first ? "" : ",\n");
        first = false;
    };
    // Metadata: process and thread names, in sorted (pid, tid) order.
    for (const auto &[name, pid] : pids) {
        sep();
        os << "  {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": "
           << pid << ", \"tid\": 0, \"args\": {\"name\": \""
           << jsonEscape(name) << "\"}}";
    }
    for (const auto &[name, tid] : tids) {
        sep();
        os << "  {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": "
           << pids.at(name.first) << ", \"tid\": " << tid
           << ", \"args\": {\"name\": \"" << jsonEscape(name.second)
           << "\"}}";
    }
    for (std::size_t i : order) {
        const TraceEvent &ev = evs[i];
        const TrackInfo &t =
            tr[static_cast<std::size_t>(ev.track)];
        sep();
        os << "  {\"ph\": \"" << ev.phase << "\", \"name\": \""
           << jsonEscape(ev.name) << "\", \"cat\": \""
           << jsonEscape(ev.category) << "\", \"pid\": "
           << pids.at(t.process) << ", \"tid\": "
           << tids.at({t.process, t.thread}) << ", \"ts\": "
           << jsonNumber(ev.tsSec * 1e6);
        if (ev.phase == 'X')
            os << ", \"dur\": "
               << jsonNumber((ev.endSec - ev.tsSec) * 1e6);
        if (ev.phase == 'i')
            os << ", \"s\": \"t\"";
        if (!ev.args.empty()) {
            os << ", \"args\": {";
            for (std::size_t a = 0; a < ev.args.size(); ++a) {
                os << (a ? ", " : "") << '"'
                   << jsonEscape(ev.args[a].key)
                   << "\": " << ev.args[a].json;
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n]}\n";
    return os.str();
}

bool
SimTracer::writeJson(const std::string &path) const
{
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "cannot write trace %s\n", path.c_str());
        return false;
    }
    f << toJson();
    return true;
}

void
SimTracer::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    tracks.clear();
    log.clear();
    ambient = -1;
    groupCounts.clear();
    dropSet.clear();
    pendingDropped = 0;
    totalDropped = 0;
}

} // namespace aquoman::obs
