#include "obs/slo.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace aquoman::obs {

namespace {

std::string
seriesKey(const char *name, const std::string &tenant)
{
    return labeledMetric(name, {{"tenant", tenant}});
}

} // namespace

std::vector<BurnRateRule>
defaultBurnRateRules()
{
    // Scaled-down version of the classic page/ticket ladder: the page
    // rule wants a hot, recent burn; the ticket rule a sustained slow
    // one. Window counts, not seconds, so the ladder tracks whatever
    // base window the run uses.
    return {
        BurnRateRule{"page", /*longWindows=*/6, /*shortWindows=*/1,
                     /*threshold=*/4.0},
        BurnRateRule{"ticket", /*longWindows=*/24, /*shortWindows=*/6,
                     /*threshold=*/1.5},
    };
}

SloEngine::SloEngine(SloConfig c) : cfg(std::move(c)), ts(cfg.windowSec)
{
    if (cfg.rules.empty())
        cfg.rules = defaultBurnRateRules();
    for (const auto &rule : cfg.rules) {
        AQ_ASSERT(rule.shortWindows >= 1 && rule.longWindows >= 1,
                  "burn-rate rule windows must be >= 1");
        AQ_ASSERT(rule.threshold > 0.0,
                  "burn-rate rule threshold must be positive");
    }
    for (auto &obj : cfg.objectives) {
        if (!(obj.attainment > 0.0) || !(obj.attainment < 1.0))
            obj.attainment = cfg.defaultAttainment;
        objectives[obj.tenant] = obj;
        tenantRules[obj.tenant].resize(cfg.rules.size());
    }
}

bool
SloEngine::active() const
{
    for (const auto &[tenant, obj] : objectives)
        if (obj.latencyTargetSec > 0.0)
            return true;
    return false;
}

const SloObjective *
SloEngine::objectiveOf(const std::string &tenant) const
{
    auto it = objectives.find(tenant);
    if (it == objectives.end() || !(it->second.latencyTargetSec > 0.0))
        return nullptr;
    return &it->second;
}

bool
SloEngine::isViolation(const std::string &tenant,
                       double latency_sec) const
{
    const SloObjective *obj = objectiveOf(tenant);
    return obj != nullptr && latency_sec > obj->latencyTargetSec;
}

void
SloEngine::recordCompletion(const std::string &tenant, double at_sec,
                            double latency_sec)
{
    tenantRules[tenant].resize(cfg.rules.size());
    ts.add(seriesKey("slo_completed", tenant), at_sec, 1.0);
    ts.observe(seriesKey("slo_latency_seconds", tenant), at_sec,
               latency_sec);
    if (isViolation(tenant, latency_sec))
        ts.add(seriesKey("slo_violations", tenant), at_sec, 1.0);
    horizonSec = std::max(horizonSec, at_sec);
}

void
SloEngine::recordShed(const std::string &tenant, double at_sec)
{
    tenantRules[tenant].resize(cfg.rules.size());
    ts.add(seriesKey("slo_shed", tenant), at_sec, 1.0);
    horizonSec = std::max(horizonSec, at_sec);
}

void
SloEngine::recordSuspend(const std::string &tenant, double at_sec)
{
    tenantRules[tenant].resize(cfg.rules.size());
    ts.add(seriesKey("slo_suspended", tenant), at_sec, 1.0);
    horizonSec = std::max(horizonSec, at_sec);
}

void
SloEngine::recordQueueWait(const std::string &tenant, double at_sec,
                           double wait_sec)
{
    tenantRules[tenant].resize(cfg.rules.size());
    ts.observe(seriesKey("slo_queue_wait_seconds", tenant), at_sec,
               wait_sec);
    horizonSec = std::max(horizonSec, at_sec);
}

void
SloEngine::recordBlame(const std::string &victim,
                       const std::string &culprit, double at_sec,
                       double sec)
{
    ts.add(labeledMetric("slo_blame_seconds",
                         {{"culprit", culprit}, {"tenant", victim}}),
           at_sec, sec);
    horizonSec = std::max(horizonSec, at_sec);
}

void
SloEngine::setAlertSink(std::function<void(const SloAlert &)> fn)
{
    sink = std::move(fn);
}

double
SloEngine::burnOver(const std::string &tenant, std::int64_t first,
                    std::int64_t last) const
{
    const SloObjective *obj = objectiveOf(tenant);
    if (obj == nullptr)
        return 0.0;
    double completed =
        ts.counterInRange(seriesKey("slo_completed", tenant), first, last);
    double shed =
        ts.counterInRange(seriesKey("slo_shed", tenant), first, last);
    double total = completed + shed;
    if (!(total > 0.0))
        return 0.0;
    double bad =
        ts.counterInRange(seriesKey("slo_violations", tenant), first,
                          last) +
        shed;
    return (bad / total) / (1.0 - obj->attainment);
}

void
SloEngine::closeWindow(std::int64_t idx)
{
    for (auto &[tenant, states] : tenantRules) {
        if (objectiveOf(tenant) == nullptr)
            continue;
        for (std::size_t r = 0; r < cfg.rules.size(); ++r) {
            const BurnRateRule &rule = cfg.rules[r];
            double shortBurn =
                burnOver(tenant, idx - rule.shortWindows + 1, idx);
            double longBurn =
                burnOver(tenant, idx - rule.longWindows + 1, idx);
            bool firing = shortBurn >= rule.threshold &&
                          longBurn >= rule.threshold;
            if (firing && !states[r].active) {
                SloAlert alert;
                alert.tenant = tenant;
                alert.rule = rule.name;
                alert.atSec = ts.windowStartSec(idx + 1);
                alert.shortBurn = shortBurn;
                alert.longBurn = longBurn;
                firings.push_back(alert);
                if (sink)
                    sink(alert);
            }
            states[r].active = firing;
        }
    }
}

void
SloEngine::advanceTo(double sec)
{
    std::int64_t target = ts.windowIndex(sec) - 1;
    while (closedThrough < target)
        closeWindow(++closedThrough);
}

void
SloEngine::finish(double sec)
{
    advanceTo(sec);
    std::int64_t last = std::max(ts.windowIndex(sec), ts.lastWindow());
    while (closedThrough < last)
        closeWindow(++closedThrough);
    horizonSec = std::max(horizonSec, sec);
    finished = true;
}

SloEngine::TenantTotals
SloEngine::totals(const std::string &tenant) const
{
    TenantTotals t;
    if (ts.empty())
        return t;
    std::int64_t first = ts.firstWindow();
    std::int64_t last = ts.lastWindow();
    auto sum = [&](const char *name) {
        return static_cast<std::int64_t>(std::llround(
            ts.counterInRange(seriesKey(name, tenant), first, last)));
    };
    t.completed = sum("slo_completed");
    t.violations = sum("slo_violations");
    t.shed = sum("slo_shed");
    t.suspended = sum("slo_suspended");
    if (t.completed > 0)
        t.attainment = static_cast<double>(t.completed - t.violations) /
                       static_cast<double>(t.completed);
    const SloObjective *obj = objectiveOf(tenant);
    double total = static_cast<double>(t.completed + t.shed);
    if (obj != nullptr && total > 0.0) {
        double budget = total * (1.0 - obj->attainment);
        t.budgetConsumed =
            static_cast<double>(t.violations + t.shed) / budget;
    }
    return t;
}

std::vector<std::string>
SloEngine::tenants() const
{
    std::vector<std::string> out;
    out.reserve(tenantRules.size());
    for (const auto &[tenant, states] : tenantRules)
        out.push_back(tenant);
    return out;
}

void
SloEngine::toJson(std::ostream &os) const
{
    os << "{\"window_seconds\":" << jsonNumber(cfg.windowSec)
       << ",\"horizon_seconds\":" << jsonNumber(horizonSec)
       << ",\"tenants\":[";
    bool firstTenant = true;
    std::int64_t lastIdx = ts.lastWindow();
    for (const auto &tenant : tenants()) {
        os << (firstTenant ? "" : ",") << "{\"name\":\""
           << jsonEscape(tenant) << '"';
        firstTenant = false;
        const SloObjective *obj = objectiveOf(tenant);
        if (obj != nullptr)
            os << ",\"objective\":{\"latency_target_seconds\":"
               << jsonNumber(obj->latencyTargetSec) << ",\"attainment\":"
               << jsonNumber(obj->attainment) << '}';
        else
            os << ",\"objective\":null";
        TenantTotals t = totals(tenant);
        os << ",\"totals\":{\"completed\":" << t.completed
           << ",\"violations\":" << t.violations << ",\"shed\":" << t.shed
           << ",\"suspended\":" << t.suspended << ",\"attainment\":"
           << jsonNumber(t.attainment) << ",\"budget_consumed\":"
           << jsonNumber(t.budgetConsumed) << '}';
        os << ",\"windows\":[";
        bool firstWin = true;
        double badCum = 0.0;
        double totalCum = 0.0;
        if (!ts.empty()) {
            for (std::int64_t idx = ts.firstWindow(); idx <= lastIdx;
                 ++idx) {
                double completed = ts.counterAt(
                    seriesKey("slo_completed", tenant), idx);
                double violations = ts.counterAt(
                    seriesKey("slo_violations", tenant), idx);
                double shed =
                    ts.counterAt(seriesKey("slo_shed", tenant), idx);
                double suspended = ts.counterAt(
                    seriesKey("slo_suspended", tenant), idx);
                Histogram lat = ts.histogramAt(
                    seriesKey("slo_latency_seconds", tenant), idx);
                Histogram qw = ts.histogramAt(
                    seriesKey("slo_queue_wait_seconds", tenant), idx);
                badCum += violations + shed;
                totalCum += completed + shed;
                if (completed == 0.0 && violations == 0.0 &&
                    shed == 0.0 && suspended == 0.0 &&
                    lat.count() == 0 && qw.count() == 0)
                    continue;
                os << (firstWin ? "" : ",") << "{\"window\":" << idx
                   << ",\"start_seconds\":"
                   << jsonNumber(ts.windowStartSec(idx))
                   << ",\"completed\":" << jsonNumber(completed)
                   << ",\"violations\":" << jsonNumber(violations)
                   << ",\"shed\":" << jsonNumber(shed)
                   << ",\"suspended\":" << jsonNumber(suspended)
                   << ",\"latency\":";
                lat.toJson(os);
                os << ",\"queue_wait\":";
                qw.toJson(os);
                os << ",\"burn\":"
                   << jsonNumber(burnOver(tenant, idx, idx));
                double budgetCum = 0.0;
                if (obj != nullptr && totalCum > 0.0)
                    budgetCum =
                        badCum / (totalCum * (1.0 - obj->attainment));
                os << ",\"budget_consumed\":" << jsonNumber(budgetCum)
                   << '}';
                firstWin = false;
            }
        }
        os << "]}";
    }
    os << "],\"alerts\":[";
    bool firstAlert = true;
    for (const auto &alert : firings) {
        os << (firstAlert ? "" : ",") << "{\"tenant\":\""
           << jsonEscape(alert.tenant) << "\",\"rule\":\""
           << jsonEscape(alert.rule) << "\",\"at_seconds\":"
           << jsonNumber(alert.atSec) << ",\"short_burn\":"
           << jsonNumber(alert.shortBurn) << ",\"long_burn\":"
           << jsonNumber(alert.longBurn) << '}';
        firstAlert = false;
    }
    os << "]}";
}

std::string
SloEngine::jsonString() const
{
    std::ostringstream os;
    toJson(os);
    return os.str();
}

} // namespace aquoman::obs
