#include "obs/timeseries.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace aquoman::obs {

TimeSeriesStore::TimeSeriesStore(double window_sec) : width(window_sec)
{
    AQ_ASSERT(window_sec > 0.0, "window width must be positive");
}

std::int64_t
TimeSeriesStore::windowIndex(double at_sec) const
{
    if (!(at_sec > 0.0))
        return 0;
    return static_cast<std::int64_t>(std::floor(at_sec / width));
}

void
TimeSeriesStore::add(const std::string &key, double at_sec, double delta)
{
    counters[key][windowIndex(at_sec)] += delta;
}

void
TimeSeriesStore::observe(const std::string &key, double at_sec,
                         double value)
{
    hists[key][windowIndex(at_sec)].record(value);
}

void
TimeSeriesStore::merge(const TimeSeriesStore &other)
{
    AQ_ASSERT(width == other.width,
              "cannot merge stores with different window widths");
    for (const auto &[key, windows] : other.counters)
        for (const auto &[idx, v] : windows)
            counters[key][idx] += v;
    for (const auto &[key, windows] : other.hists)
        for (const auto &[idx, h] : windows)
            hists[key][idx].merge(h);
}

double
TimeSeriesStore::counterAt(const std::string &key,
                           std::int64_t idx) const
{
    auto it = counters.find(key);
    if (it == counters.end())
        return 0.0;
    auto wit = it->second.find(idx);
    return wit == it->second.end() ? 0.0 : wit->second;
}

double
TimeSeriesStore::counterInRange(const std::string &key,
                                std::int64_t first,
                                std::int64_t last) const
{
    auto it = counters.find(key);
    if (it == counters.end())
        return 0.0;
    double sum = 0.0;
    for (auto wit = it->second.lower_bound(first);
         wit != it->second.end() && wit->first <= last; ++wit)
        sum += wit->second;
    return sum;
}

Histogram
TimeSeriesStore::histogramAt(const std::string &key,
                             std::int64_t idx) const
{
    auto it = hists.find(key);
    if (it == hists.end())
        return Histogram{};
    auto wit = it->second.find(idx);
    return wit == it->second.end() ? Histogram{} : wit->second;
}

Histogram
TimeSeriesStore::histogramInRange(const std::string &key,
                                  std::int64_t first,
                                  std::int64_t last) const
{
    Histogram out;
    auto it = hists.find(key);
    if (it == hists.end())
        return out;
    for (auto wit = it->second.lower_bound(first);
         wit != it->second.end() && wit->first <= last; ++wit)
        out.merge(wit->second);
    return out;
}

std::int64_t
TimeSeriesStore::firstWindow() const
{
    bool any = false;
    std::int64_t first = 0;
    for (const auto &[key, windows] : counters)
        if (!windows.empty()) {
            std::int64_t w = windows.begin()->first;
            first = any ? std::min(first, w) : w;
            any = true;
        }
    for (const auto &[key, windows] : hists)
        if (!windows.empty()) {
            std::int64_t w = windows.begin()->first;
            first = any ? std::min(first, w) : w;
            any = true;
        }
    return any ? first : 0;
}

std::int64_t
TimeSeriesStore::lastWindow() const
{
    bool any = false;
    std::int64_t last = 0;
    for (const auto &[key, windows] : counters)
        if (!windows.empty()) {
            std::int64_t w = windows.rbegin()->first;
            last = any ? std::max(last, w) : w;
            any = true;
        }
    for (const auto &[key, windows] : hists)
        if (!windows.empty()) {
            std::int64_t w = windows.rbegin()->first;
            last = any ? std::max(last, w) : w;
            any = true;
        }
    return any ? last : -1;
}

void
TimeSeriesStore::toJson(std::ostream &os) const
{
    os << "{\"window_seconds\":" << jsonNumber(width);
    os << ",\"counters\":{";
    bool first_series = true;
    for (const auto &[key, windows] : counters) {
        os << (first_series ? "" : ",") << '"' << jsonEscape(key)
           << "\":[";
        first_series = false;
        bool first_win = true;
        for (const auto &[idx, v] : windows) {
            os << (first_win ? "" : ",") << "{\"window\":" << idx
               << ",\"start_seconds\":" << jsonNumber(windowStartSec(idx))
               << ",\"value\":" << jsonNumber(v) << '}';
            first_win = false;
        }
        os << ']';
    }
    os << "},\"histograms\":{";
    first_series = true;
    for (const auto &[key, windows] : hists) {
        os << (first_series ? "" : ",") << '"' << jsonEscape(key)
           << "\":[";
        first_series = false;
        bool first_win = true;
        for (const auto &[idx, h] : windows) {
            os << (first_win ? "" : ",") << "{\"window\":" << idx
               << ",\"start_seconds\":" << jsonNumber(windowStartSec(idx))
               << ",\"histogram\":";
            h.toJson(os);
            os << '}';
            first_win = false;
        }
        os << ']';
    }
    os << "}}";
}

std::string
TimeSeriesStore::jsonString() const
{
    std::ostringstream os;
    toJson(os);
    return os.str();
}

namespace {

/** Split a labeledMetric() key into base name and "{...}" block. */
void
splitKey(const std::string &key, std::string *name, std::string *labels)
{
    auto brace = key.find('{');
    if (brace != std::string::npos && key.back() == '}') {
        *name = key.substr(0, brace);
        *labels = key.substr(brace);
    } else {
        *name = key;
        labels->clear();
    }
}

std::int64_t
windowTimestampMs(double start_sec)
{
    return static_cast<std::int64_t>(std::llround(start_sec * 1000.0));
}

} // namespace

void
TimeSeriesStore::toPrometheus(std::ostream &os) const
{
    for (const auto &[key, windows] : counters) {
        std::string name, labels;
        splitKey(key, &name, &labels);
        os << "# TYPE " << name << " counter\n";
        for (const auto &[idx, v] : windows)
            os << name << labels << ' ' << jsonNumber(v) << ' '
               << windowTimestampMs(windowStartSec(idx)) << "\n";
    }
    for (const auto &[key, windows] : hists) {
        std::string name, labels;
        splitKey(key, &name, &labels);
        os << "# TYPE " << name << " summary\n";
        for (const auto &[idx, h] : windows) {
            std::int64_t ts = windowTimestampMs(windowStartSec(idx));
            constexpr std::pair<const char *, double> kQuantiles[] = {
                {"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}};
            for (const auto &[label, q] : kQuantiles) {
                os << name;
                if (labels.empty())
                    os << "{quantile=\"" << label << "\"}";
                else
                    os << labels.substr(0, labels.size() - 1)
                       << ",quantile=\"" << label << "\"}";
                os << ' ' << jsonNumber(h.quantile(q)) << ' ' << ts
                   << "\n";
            }
            os << name << "_sum" << labels << ' ' << jsonNumber(h.sum())
               << ' ' << ts << "\n";
            os << name << "_count" << labels << ' ' << h.count() << ' '
               << ts << "\n";
        }
    }
}

void
TimeSeriesStore::clear()
{
    counters.clear();
    hists.clear();
}

} // namespace aquoman::obs
