#include "obs/profile.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "obs/metrics.hh"

namespace aquoman::obs {

const char *
pipeStageName(PipeStage s)
{
    switch (s) {
      case PipeStage::FlashRead:
        return "flash_read";
      case PipeStage::Selector:
        return "selector";
      case PipeStage::Transformer:
        return "transformer";
      case PipeStage::Swissknife:
        return "swissknife";
      case PipeStage::Switch:
        return "switch";
      case PipeStage::HostPhase:
        return "host_phase";
      case PipeStage::Decode:
        return "decode";
    }
    return "?";
}

const char *
suspendReasonName(SuspendReason r)
{
    switch (r) {
      case SuspendReason::None:
        return "none";
      case SuspendReason::MidPlanGroupBy:
        return "mid_plan_group_by";
      case SuspendReason::StringHeapRegex:
        return "string_heap_regex";
      case SuspendReason::GroupSpill:
        return "group_spill";
      case SuspendReason::DramOverflow:
        return "dram_overflow";
      case SuspendReason::AdmissionDram:
        return "admission_dram";
      case SuspendReason::UnsupportedOp:
        return "unsupported_op";
    }
    return "?";
}

double
StageSeconds::total() const
{
    // Fixed association order: callers rely on bitwise-stable totals.
    double t = 0.0;
    for (int i = 0; i < kNumPipeStages; ++i)
        t += sec[i];
    return t;
}

PipeStage
StageSeconds::bottleneck() const
{
    int best = 0;
    for (int i = 1; i < kNumPipeStages; ++i) {
        if (sec[i] > sec[best])
            best = i;
    }
    return static_cast<PipeStage>(best);
}

StageSeconds &
StageSeconds::operator+=(const StageSeconds &o)
{
    for (int i = 0; i < kNumPipeStages; ++i)
        sec[i] += o.sec[i];
    return *this;
}

double
ProfileNode::selectivity() const
{
    if (rowsIn <= 0 || rowsOut < 0)
        return -1.0;
    return static_cast<double>(rowsOut) / static_cast<double>(rowsIn);
}

StageSeconds
ProfileNode::subtreeStages() const
{
    StageSeconds s = stages;
    for (const ProfileNode &c : children)
        s += c.subtreeStages();
    return s;
}

double
ProfileNode::subtreeSeconds() const
{
    // Pre-order sequential sum: the device records Table Tasks in
    // execution order, so this association reproduces deviceSeconds
    // (plus the trailing host phase) bitwise.
    double t = stages.total();
    for (const ProfileNode &c : children)
        t += c.subtreeSeconds();
    return t;
}

std::int64_t
ProfileNode::subtreeFlashBytes() const
{
    std::int64_t b = flashBytes;
    for (const ProfileNode &c : children)
        b += c.subtreeFlashBytes();
    return b;
}

namespace {

std::string
fmt(const char *f, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), f, v);
    return buf;
}

std::string
fmtCount(std::int64_t v)
{
    if (v < 0)
        return "-";
    return std::to_string(v);
}

std::string
padLeft(std::string s, std::size_t w)
{
    if (s.size() < w)
        s.insert(0, w - s.size(), ' ');
    return s;
}

std::string
padRight(std::string s, std::size_t w)
{
    if (s.size() < w)
        s.append(w - s.size(), ' ');
    return s;
}

struct TextRow
{
    std::string tree;  ///< prefix + name + kind
    const ProfileNode *node = nullptr;
};

void
flattenRows(const ProfileNode &n, const std::string &prefix, bool last,
            bool root, std::vector<TextRow> &rows)
{
    TextRow r;
    if (root) {
        r.tree = n.name + " [" + n.kind + "]";
    } else {
        r.tree = prefix + (last ? "└─ " : "├─ ") + n.name + " ["
            + n.kind + "]";
    }
    r.node = &n;
    rows.push_back(r);
    std::string child_prefix =
        root ? "" : prefix + (last ? "   " : "│  ");
    for (std::size_t i = 0; i < n.children.size(); ++i) {
        flattenRows(n.children[i], child_prefix,
                    i + 1 == n.children.size(), false, rows);
    }
}

void
jsonStageSeconds(std::ostream &os, const StageSeconds &s)
{
    os << '{';
    for (int i = 0; i < kNumPipeStages; ++i) {
        if (i)
            os << ',';
        os << '"' << pipeStageName(static_cast<PipeStage>(i)) << "\":"
           << jsonNumber(s.sec[i]);
    }
    os << '}';
}

void
jsonNode(std::ostream &os, const ProfileNode &n)
{
    os << "{\"name\":\"" << jsonEscape(n.name) << "\",\"kind\":\""
       << jsonEscape(n.kind) << '"';
    os << ",\"rows_in\":" << n.rowsIn << ",\"rows_out\":" << n.rowsOut;
    os << ",\"selectivity\":" << jsonNumber(n.selectivity());
    os << ",\"flash_bytes\":" << n.flashBytes << ",\"switch_bytes\":"
       << n.switchBytes;
    os << ",\"seconds\":" << jsonNumber(n.stages.total());
    os << ",\"stage_seconds\":";
    jsonStageSeconds(os, n.stages);
    os << ",\"bottleneck\":\"" << pipeStageName(n.stages.bottleneck())
       << '"';
    os << ",\"suspend_reason\":\"" << suspendReasonName(n.suspend)
       << '"';
    os << ",\"detail\":\"" << jsonEscape(n.detail) << '"';
    os << ",\"children\":[";
    for (std::size_t i = 0; i < n.children.size(); ++i) {
        if (i)
            os << ',';
        jsonNode(os, n.children[i]);
    }
    os << "]}";
}

} // namespace

void
QueryProfile::renderText(std::ostream &os) const
{
    os << "EXPLAIN ANALYZE " << query;
    if (!offloadClass.empty())
        os << "  class=" << offloadClass;
    os << "  suspend=" << suspendReasonName(suspend);
    os << "  total=" << fmt("%.9g", totalSeconds()) << "s\n";

    std::vector<TextRow> rows;
    flattenRows(root, "", true, true, rows);

    std::size_t tree_w = 4;
    for (const TextRow &r : rows)
        tree_w = std::max(tree_w, r.tree.size());
    tree_w = std::min<std::size_t>(tree_w, 72);

    os << padRight("node", tree_w) << ' ' << padLeft("rows_in", 10)
       << ' ' << padLeft("rows_out", 10) << ' ' << padLeft("sel", 7)
       << ' ' << padLeft("flash_MB", 10) << ' '
       << padLeft("seconds", 13) << ' ' << padRight("bottleneck", 11)
       << '\n';

    for (const TextRow &r : rows) {
        const ProfileNode &n = *r.node;
        StageSeconds sub = n.subtreeStages();
        double sub_total = sub.total();
        std::string sel = n.selectivity() < 0.0
            ? "-" : fmt("%.3f", n.selectivity());
        std::string bn = sub_total > 0.0
            ? pipeStageName(sub.bottleneck()) : "-";
        os << padRight(r.tree, tree_w) << ' '
           << padLeft(fmtCount(n.rowsIn), 10) << ' '
           << padLeft(fmtCount(n.rowsOut), 10) << ' '
           << padLeft(sel, 7) << ' '
           << padLeft(fmt("%.3f", static_cast<double>(
                              n.subtreeFlashBytes()) / 1e6), 10)
           << ' ' << padLeft(fmt("%.6g", sub_total), 13) << ' '
           << padRight(bn, 11);
        if (n.suspend != SuspendReason::None)
            os << " !" << suspendReasonName(n.suspend);
        if (!n.detail.empty())
            os << "  -- " << n.detail;
        os << '\n';
    }
}

std::string
QueryProfile::textString() const
{
    std::ostringstream os;
    renderText(os);
    return os.str();
}

void
QueryProfile::toJson(std::ostream &os) const
{
    os << "{\"query\":\"" << jsonEscape(query) << '"';
    os << ",\"offload_class\":\"" << jsonEscape(offloadClass) << '"';
    os << ",\"suspend_reason\":\"" << suspendReasonName(suspend) << '"';
    os << ",\"total_seconds\":" << jsonNumber(totalSeconds());
    os << ",\"stage_seconds\":";
    jsonStageSeconds(os, root.subtreeStages());
    os << ",\"root\":";
    jsonNode(os, root);
    os << '}';
}

std::string
QueryProfile::jsonString() const
{
    std::ostringstream os;
    toJson(os);
    return os.str();
}

std::size_t
flightRecorderCapacityFromEnv(std::size_t fallback)
{
    const char *env = std::getenv("AQUOMAN_FLIGHT_EVENTS");
    if (!env || !env[0])
        return fallback;
    char *end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v <= 0)
        return fallback;
    return static_cast<std::size_t>(v);
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring(capacity ? capacity : 1)
{
}

void
FlightRecorder::record(double at_sec, std::string category,
                       std::string subject, std::string detail)
{
    FlightEvent &e = ring[head];
    if (count == ring.size())
        ++droppedEvents;
    else
        ++count;
    e.seq = nextSeq++;
    e.atSec = at_sec;
    e.category = std::move(category);
    e.subject = std::move(subject);
    e.detail = std::move(detail);
    head = (head + 1) % ring.size();
}

std::vector<FlightEvent>
FlightRecorder::snapshot() const
{
    std::vector<FlightEvent> out;
    out.reserve(count);
    std::size_t start = (head + ring.size() - count) % ring.size();
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(ring[(start + i) % ring.size()]);
    return out;
}

void
FlightRecorder::render(std::ostream &os, const std::string &why) const
{
    os << "---- flight recorder: " << why << " ----\n";
    os << padLeft("seq", 6) << ' ' << padLeft("t_sec", 12) << ' '
       << padRight("category", 12) << ' ' << padRight("subject", 20)
       << " detail\n";
    for (const FlightEvent &e : snapshot()) {
        os << padLeft(std::to_string(e.seq), 6) << ' '
           << padLeft(fmt("%.6f", e.atSec), 12) << ' '
           << padRight(e.category, 12) << ' '
           << padRight(e.subject, 20) << ' ' << e.detail << '\n';
    }
    os << "---- end flight recorder (" << count << " buffered, "
       << droppedEvents << " overwritten) ----\n";
}

bool
auditLedgers(const LedgerAudit &a, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    // Table-Task spans must tile [0, deviceSeconds]: the sequential
    // sum of per-task seconds reproduces the device total bitwise.
    double acc = 0.0;
    for (double t : a.taskSeconds)
        acc += t;
    if (acc != a.deviceSeconds) {
        return fail("task seconds do not tile deviceSeconds: sum="
                    + jsonNumber(acc) + " deviceSeconds="
                    + jsonNumber(a.deviceSeconds));
    }

    std::int64_t fb = 0;
    for (std::int64_t b : a.taskFlashBytes)
        fb += b;
    if (fb != a.deviceFlashBytes) {
        return fail("task flash bytes do not partition "
                    "deviceFlashBytes: sum=" + std::to_string(fb)
                    + " deviceFlashBytes="
                    + std::to_string(a.deviceFlashBytes));
    }

    if (a.expectedPortTotal >= 0) {
        std::int64_t pb = 0;
        for (std::int64_t b : a.portBytes)
            pb += b;
        if (pb != a.expectedPortTotal) {
            return fail("switch port bytes do not partition the "
                        "expected total: sum=" + std::to_string(pb)
                        + " expected="
                        + std::to_string(a.expectedPortTotal));
        }
    }
    return true;
}

bool
detail::profileGateInit()
{
    const char *env = std::getenv("AQUOMAN_PROFILE");
    // Collection defaults on: it only materialises nodes when a caller
    // installs a sink, so the ambient cost is one relaxed load.
    return !(env && env[0] == '0' && env[1] == '\0');
}

} // namespace aquoman::obs
