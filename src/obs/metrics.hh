/**
 * @file
 * Process-wide metrics: named counters, gauges and log-bucketed latency
 * histograms with JSON and Prometheus-text exposition. All values live
 * in modelled simulation time / modelled bytes, so for a deterministic
 * run the registry contents are bit-identical for every AQUOMAN_THREADS.
 *
 * The registry is disabled by default; every instrumentation site must
 * guard with enabled() (a relaxed atomic load) so the disabled cost is
 * one predictable branch. Enable programmatically or by setting
 * AQUOMAN_METRICS=1 in the environment.
 */

#ifndef AQUOMAN_OBS_METRICS_HH
#define AQUOMAN_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace aquoman::obs {

/** Render @p v as a JSON number that round-trips exactly (%.17g). */
std::string jsonNumber(double v);

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string jsonEscape(const std::string &s);

/**
 * Escape a Prometheus label value: backslash, double quote and newline
 * become \\, \" and \n per the text exposition format.
 */
std::string promLabelEscape(const std::string &s);

/**
 * Canonical registry key for a labeled metric:
 * `name{key="escaped value",...}`. toPrometheus() recognises the
 * brace-suffixed form and emits the label block verbatim (values are
 * already escaped here), merging histogram quantile labels into it.
 */
std::string labeledMetric(
    const std::string &name,
    const std::vector<std::pair<std::string, std::string>> &labels);

/**
 * A log-bucketed histogram of non-negative samples. Buckets subdivide
 * each power-of-two octave into kSubBuckets equal slices, so relative
 * quantile error is bounded by 1/kSubBuckets regardless of magnitude.
 * Counts are order-independent: merging or reordering record() calls
 * yields the identical histogram, which keeps quantiles deterministic.
 */
class Histogram
{
  public:
    static constexpr int kSubBuckets = 16;

    void record(double v);
    void merge(const Histogram &other);

    std::int64_t count() const { return n; }
    double sum() const { return total; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double mean() const { return n ? total / static_cast<double>(n) : 0.0; }

    /**
     * Quantile @p q in [0, 1]: the upper bound of the bucket holding
     * the ceil(q*n)-th sample, clamped to the observed [min, max].
     */
    double quantile(double q) const;

    /** {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,
     *  "p90":..,"p99":..} */
    void toJson(std::ostream &os) const;

  private:
    static int bucketOf(double v);
    static double bucketUpperBound(int idx);

    /// Sparse bucket index -> sample count; std::map iteration order is
    /// ascending bucket (hence ascending value), giving deterministic
    /// quantile walks.
    std::map<int, std::int64_t> buckets;
    std::int64_t n = 0;
    double total = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Process-wide registry of named counters, gauges and histograms.
 * Thread-safe; names are sorted on exposition so output order never
 * depends on registration order.
 */
class MetricsRegistry
{
  public:
    /** The process-wide instance (reads AQUOMAN_METRICS on first use). */
    static MetricsRegistry &global();

    /** Cheap hot-path guard: call sites must check before building
     *  metric names or values. */
    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    void setEnabled(bool e) { on.store(e, std::memory_order_relaxed); }

    /** Add @p delta to counter @p name (creating it at zero). */
    void add(const std::string &name, double delta);

    /** Set gauge @p name to @p value. */
    void set(const std::string &name, double value);

    /** Record @p value into histogram @p name. */
    void observe(const std::string &name, double value);

    double counter(const std::string &name) const;
    double gauge(const std::string &name) const;

    /** Copy of histogram @p name (empty histogram if absent). */
    Histogram histogram(const std::string &name) const;

    /** {"counters":{..},"gauges":{..},"histograms":{..}} */
    void toJson(std::ostream &os) const;

    /**
     * Prometheus text exposition: counters and gauges as single
     * samples, histograms as summaries (quantile labels + _sum/_count).
     * Metric names are sanitised to [a-zA-Z0-9_:]; names that are
     * still invalid afterwards (empty, or starting with a digit) are
     * dropped from the exposition. Keys built with labeledMetric()
     * keep their label block; hostile label blocks (raw newlines,
     * unterminated braces) fall back to a fully sanitised flat name.
     */
    void toPrometheus(std::ostream &os) const;

    /** Drop all metrics (tests; does not change enabled()). */
    void clear();

  private:
    MetricsRegistry();

    mutable std::mutex mu;
    std::atomic<bool> on{false};
    std::map<std::string, double> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Histogram> histograms;
};

} // namespace aquoman::obs

#endif // AQUOMAN_OBS_METRICS_HH
