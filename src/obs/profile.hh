/**
 * @file
 * Cost-attribution profiling for offloaded queries (EXPLAIN ANALYZE).
 *
 * AQUOMAN's argument is an accounting one: which stage of the
 * Row Selector -> Row Transformer -> SQL Swissknife pipeline bounds
 * each Table Task, why a query suspends to the host (paper Sec. VI-E),
 * and where the modelled seconds go. This header defines the shared
 * vocabulary for that accounting:
 *
 *  - PipeStage / StageSeconds: modelled seconds decomposed over the six
 *    pipeline resources, with a deterministic argmax bottleneck rule.
 *  - SuspendReason: the structured taxonomy replacing ad-hoc strings.
 *  - ProfileNode / QueryProfile: one node per relalg operator or Table
 *    Task, rendered as an aligned text tree or deterministic JSON.
 *  - FlightRecorder: a ring buffer of recent structured service events,
 *    dumped when a query suspends or admission fails.
 *  - auditLedgers: debug-mode cross-check that per-task ledgers tile
 *    the device totals and switch-port bytes partition exactly.
 *
 * Everything here is modelled time and modelled bytes only — profile
 * output is byte-identical across AQUOMAN_THREADS and AQUOMAN_BATCH.
 */

#ifndef AQUOMAN_OBS_PROFILE_HH
#define AQUOMAN_OBS_PROFILE_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace aquoman::obs {

/**
 * The resources a modelled second can be attributed to. The first
 * four are the in-device pipeline (Fig. 4 of the paper); Switch is
 * DMA / controller-switch transfer time; HostPhase is x86 residual
 * execution after suspension or for host-only stages; Decode is
 * line-rate decompression of encoded column pages in the Row
 * Transformer (appended last so pre-compression stage indices — and
 * the earliest-wins bottleneck rule on uncompressed runs — are
 * unchanged).
 */
enum class PipeStage
{
    FlashRead,
    Selector,
    Transformer,
    Swissknife,
    Switch,
    HostPhase,
    Decode,
};

inline constexpr int kNumPipeStages = 7;

/** Stable lower-case name ("flash_read", ..., "decode"). */
const char *pipeStageName(PipeStage s);

/**
 * Why (part of) a query left the device. Structured replacement for
 * the ad-hoc reason strings threaded through SuspendError and
 * StageDecision; paper Sec. VI-E and Sec. VIII-B.
 */
enum class SuspendReason
{
    None,           ///< ran to completion on the device
    MidPlanGroupBy, ///< consumes an aggregate not buffered in DRAM
    StringHeapRegex,///< LIKE over a heap exceeding the regex cache
    GroupSpill,     ///< group-by overflowed the HwAgg slots (partial)
    DramOverflow,   ///< runtime device-DRAM exhaustion
    AdmissionDram,  ///< service declined the DRAM reservation upfront
    UnsupportedOp,  ///< operator with no device implementation
};

/** Stable snake_case name ("none", "mid_plan_group_by", ...). */
const char *suspendReasonName(SuspendReason r);

/**
 * Modelled seconds split over the pipeline stages. total() sums
 * the slots in fixed declaration order so the decomposition is exact:
 * accruing into slots and reading total() is how the device keeps its
 * per-task seconds bitwise equal to the stage breakdown.
 */
struct StageSeconds
{
    double sec[kNumPipeStages] = {};

    void
    add(PipeStage s, double t)
    {
        sec[static_cast<int>(s)] += t;
    }

    double at(PipeStage s) const { return sec[static_cast<int>(s)]; }

    /** Fixed-order sum of the six slots (deterministic association). */
    double total() const;

    /**
     * Bottleneck resource: argmax over the slots, earliest slot wins
     * ties so the rule is deterministic. A all-zero breakdown reports
     * FlashRead (callers render it as idle).
     */
    PipeStage bottleneck() const;

    StageSeconds &operator+=(const StageSeconds &o);
};

/**
 * One node of the cost-attribution tree: a relalg operator, a Table
 * Task, a plan stage, or the trailing host phase. `stages` holds the
 * node's *own* modelled seconds (exclusive); tree rollups are computed
 * by the renderers so leaf sums stay exact.
 */
struct ProfileNode
{
    std::string name;
    std::string kind;          ///< "query", "device-stage", "host-stage",
                               ///< "table-task", "host-op", "host-phase"
    std::int64_t rowsIn = -1;  ///< -1 means unknown / not applicable
    std::int64_t rowsOut = -1;
    std::int64_t flashBytes = 0;
    std::int64_t switchBytes = 0;
    StageSeconds stages;       ///< exclusive (self) seconds
    SuspendReason suspend = SuspendReason::None;
    std::string detail;        ///< free-form annotation (deterministic)
    std::vector<ProfileNode> children;

    double selfSeconds() const { return stages.total(); }

    /** rowsOut / rowsIn, or -1 when either side is unknown. */
    double selectivity() const;

    /** Per-stage rollup over this node and its subtree (pre-order). */
    StageSeconds subtreeStages() const;

    /** Pre-order sequential sum of selfSeconds() over the subtree. */
    double subtreeSeconds() const;

    std::int64_t subtreeFlashBytes() const;
};

/**
 * A full query's profile: the tree plus query-level classification.
 * Rendered as an aligned EXPLAIN ANALYZE text tree or as deterministic
 * JSON (stable key order, %.17g numbers) for report merging.
 */
struct QueryProfile
{
    std::string query;
    std::string offloadClass;  ///< "full", "partial", "none" (or "")
    SuspendReason suspend = SuspendReason::None;
    ProfileNode root;

    /**
     * Pre-order sequential sum of every node's self seconds. Device
     * Table Tasks are visited in execution order, so this is bitwise
     * equal to modelled deviceSeconds plus the host-phase seconds.
     */
    double totalSeconds() const { return root.subtreeSeconds(); }

    void renderText(std::ostream &os) const;
    std::string textString() const;

    void toJson(std::ostream &os) const;
    std::string jsonString() const;
};

/**
 * One structured event in the service flight recorder. `seq` is a
 * monotonically increasing sequence number (survives ring wraps).
 */
struct FlightEvent
{
    std::int64_t seq = 0;
    double atSec = 0.0;      ///< simulated service time
    std::string category;    ///< "submit", "admit", "dispatch", ...
    std::string subject;     ///< query label or device name
    std::string detail;
};

/**
 * Fixed-capacity ring buffer of recent FlightEvents. The service
 * records every scheduling decision here cheaply; the ring is rendered
 * (and mirrored as trace instants) only when something goes wrong —
 * a suspension or an admission/allocation failure.
 */
/**
 * Ring capacity for service flight recorders: AQUOMAN_FLIGHT_EVENTS
 * when set to a positive integer, else @p fallback. Values that fail
 * to parse (or are <= 0) fall back silently.
 */
std::size_t flightRecorderCapacityFromEnv(std::size_t fallback = 256);

class FlightRecorder
{
  public:
    explicit FlightRecorder(std::size_t capacity = 128);

    void record(double at_sec, std::string category,
                std::string subject, std::string detail);

    /** Events still in the ring, oldest first. */
    std::vector<FlightEvent> snapshot() const;

    /** Render the ring as aligned text under a "why" header. */
    void render(std::ostream &os, const std::string &why) const;

    std::size_t size() const { return count; }
    std::size_t capacityEvents() const { return ring.size(); }
    /** Events overwritten since construction. */
    std::int64_t dropped() const { return droppedEvents; }
    /** Total events ever recorded. */
    std::int64_t recorded() const { return nextSeq; }

  private:
    std::vector<FlightEvent> ring;
    std::size_t head = 0;  ///< next write position
    std::size_t count = 0;
    std::int64_t nextSeq = 0;
    std::int64_t droppedEvents = 0;
};

/**
 * Inputs for the debug-mode ledger audit. Task decompositions come
 * from AquomanRunStats; the optional switch-port section cross-checks
 * that per-port ControllerSwitch bytes partition an expected total.
 */
struct LedgerAudit
{
    /// Per-Table-Task modelled seconds, in execution order. Their
    /// sequential sum must equal deviceSeconds bitwise (the spans
    /// tile [0, deviceSeconds]).
    std::vector<double> taskSeconds;
    double deviceSeconds = 0.0;

    /// Per-task flash bytes; must sum exactly to deviceFlashBytes.
    std::vector<std::int64_t> taskFlashBytes;
    std::int64_t deviceFlashBytes = 0;

    /// Optional: per-port byte ledgers and the total they must
    /// partition. Skipped when expectedPortTotal < 0.
    std::vector<std::int64_t> portBytes;
    std::int64_t expectedPortTotal = -1;
};

/**
 * Verify the ledgers are mutually consistent. Returns true when every
 * check passes; otherwise fills *error (if non-null) with the first
 * violated invariant. Callers run this under !NDEBUG builds.
 */
bool auditLedgers(const LedgerAudit &a, std::string *error);

namespace detail {

/** Reads AQUOMAN_PROFILE once (default on). */
bool profileGateInit();

inline std::atomic<bool> profileGate{profileGateInit()};

} // namespace detail

/**
 * Global profile-collection gate, analogous to MetricsRegistry's
 * enabled flag: a relaxed atomic initialised from AQUOMAN_PROFILE
 * (default on). Hot paths check it before building ProfileNodes, so
 * the disabled path must stay a single inline relaxed load.
 */
inline bool
profileCollectionEnabled()
{
    return detail::profileGate.load(std::memory_order_relaxed);
}

inline void
setProfileCollection(bool on)
{
    detail::profileGate.store(on, std::memory_order_relaxed);
}

} // namespace aquoman::obs

#endif // AQUOMAN_OBS_PROFILE_HH
