#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace aquoman::obs {

std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

// =====================================================================
// Histogram
// =====================================================================

/// Non-positive samples share one bucket below every positive one.
static constexpr int kZeroBucket = INT32_MIN / 2;

int
Histogram::bucketOf(double v)
{
    if (!(v > 0.0))
        return kZeroBucket;
    int e = 0;
    double f = std::frexp(v, &e); // f in [0.5, 1)
    int sub = static_cast<int>((f - 0.5) * 2.0 * kSubBuckets);
    sub = std::min(sub, kSubBuckets - 1);
    return e * kSubBuckets + sub;
}

double
Histogram::bucketUpperBound(int idx)
{
    if (idx == kZeroBucket)
        return 0.0;
    int e = idx >= 0 ? idx / kSubBuckets
                     : -((-idx + kSubBuckets - 1) / kSubBuckets);
    int sub = idx - e * kSubBuckets;
    return std::ldexp(0.5 + (sub + 1) / (2.0 * kSubBuckets), e);
}

void
Histogram::record(double v)
{
    if (n == 0) {
        lo = hi = v;
    } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    ++n;
    total += v;
    ++buckets[bucketOf(v)];
}

void
Histogram::merge(const Histogram &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        lo = other.lo;
        hi = other.hi;
    } else {
        lo = std::min(lo, other.lo);
        hi = std::max(hi, other.hi);
    }
    n += other.n;
    total += other.total;
    for (const auto &[idx, cnt] : other.buckets)
        buckets[idx] += cnt;
}

double
Histogram::quantile(double q) const
{
    // Empty histograms must answer a defined value, never walk an
    // empty bucket list; a single sample pins every quantile.
    if (n == 0 || buckets.empty())
        return 0.0;
    if (n == 1)
        return lo;
    q = std::clamp(q, 0.0, 1.0);
    auto target = static_cast<std::int64_t>(
        std::ceil(q * static_cast<double>(n)));
    target = std::max<std::int64_t>(target, 1);
    std::int64_t cum = 0;
    for (const auto &[idx, cnt] : buckets) {
        cum += cnt;
        if (cum >= target)
            return std::clamp(bucketUpperBound(idx), lo, hi);
    }
    return hi;
}

void
Histogram::toJson(std::ostream &os) const
{
    os << "{\"count\": " << n
       << ", \"sum\": " << jsonNumber(total)
       << ", \"min\": " << jsonNumber(min())
       << ", \"max\": " << jsonNumber(max())
       << ", \"mean\": " << jsonNumber(mean())
       << ", \"p50\": " << jsonNumber(quantile(0.50))
       << ", \"p90\": " << jsonNumber(quantile(0.90))
       << ", \"p99\": " << jsonNumber(quantile(0.99)) << "}";
}

// =====================================================================
// MetricsRegistry
// =====================================================================

MetricsRegistry::MetricsRegistry()
{
    const char *env = std::getenv("AQUOMAN_METRICS");
    if (env && env[0] && env[0] != '0')
        on.store(true, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry reg;
    return reg;
}

void
MetricsRegistry::add(const std::string &name, double delta)
{
    std::lock_guard<std::mutex> lock(mu);
    counters[name] += delta;
}

void
MetricsRegistry::set(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mu);
    gauges[name] = value;
}

void
MetricsRegistry::observe(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mu);
    histograms[name].record(value);
}

double
MetricsRegistry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = counters.find(name);
    return it == counters.end() ? 0.0 : it->second;
}

double
MetricsRegistry::gauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = gauges.find(name);
    return it == gauges.end() ? 0.0 : it->second;
}

Histogram
MetricsRegistry::histogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = histograms.find(name);
    return it == histograms.end() ? Histogram{} : it->second;
}

void
MetricsRegistry::toJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu);
    os << "{\"counters\": {";
    bool first = true;
    for (const auto &[k, v] : counters) {
        os << (first ? "" : ", ") << '"' << jsonEscape(k)
           << "\": " << jsonNumber(v);
        first = false;
    }
    os << "}, \"gauges\": {";
    first = true;
    for (const auto &[k, v] : gauges) {
        os << (first ? "" : ", ") << '"' << jsonEscape(k)
           << "\": " << jsonNumber(v);
        first = false;
    }
    os << "}, \"histograms\": {";
    first = true;
    for (const auto &[k, h] : histograms) {
        os << (first ? "" : ", ") << '"' << jsonEscape(k) << "\": ";
        h.toJson(os);
        first = false;
    }
    os << "}}";
}

std::string
promLabelEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
labeledMetric(const std::string &name,
              const std::vector<std::pair<std::string, std::string>>
                  &labels)
{
    std::string out = name;
    out += '{';
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ',';
        first = false;
        out += k;
        out += "=\"";
        out += promLabelEscape(v);
        out += '"';
    }
    out += '}';
    return out;
}

namespace {

std::string
promName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

/** A registry key split into sanitised metric name + label block. */
struct PromKey
{
    std::string name;   ///< sanitised base name
    std::string labels; ///< "{...}" incl. braces, or empty
    bool valid = false; ///< name matches [a-zA-Z_:][a-zA-Z0-9_:]*
};

PromKey
splitPromKey(const std::string &key)
{
    PromKey out;
    std::string base = key;
    auto brace = key.find('{');
    // Label blocks come from labeledMetric(), whose values are
    // already escaped; a block with a raw newline or no closing
    // brace is hostile and falls back to a fully sanitised flat name.
    if (brace != std::string::npos && key.back() == '}'
            && key.find('\n', brace) == std::string::npos) {
        base = key.substr(0, brace);
        out.labels = key.substr(brace);
    }
    out.name = promName(base);
    // promName leaves only [a-zA-Z0-9_:]; the name is still invalid
    // when empty or when it starts with a digit.
    out.valid = !out.name.empty()
        && !(out.name[0] >= '0' && out.name[0] <= '9');
    return out;
}

/** `name{existing,quantile="q"}` — merge a quantile into the block. */
std::string
withQuantile(const PromKey &k, const char *q)
{
    std::string out = k.name;
    if (k.labels.empty()) {
        out += "{quantile=\"";
    } else {
        out += k.labels.substr(0, k.labels.size() - 1);
        out += ",quantile=\"";
    }
    out += q;
    out += "\"}";
    return out;
}

} // namespace

void
MetricsRegistry::toPrometheus(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &[k, v] : counters) {
        PromKey pk = splitPromKey(k);
        if (!pk.valid)
            continue;
        os << "# TYPE " << pk.name << " counter\n"
           << pk.name << pk.labels << " " << jsonNumber(v) << "\n";
    }
    for (const auto &[k, v] : gauges) {
        PromKey pk = splitPromKey(k);
        if (!pk.valid)
            continue;
        os << "# TYPE " << pk.name << " gauge\n"
           << pk.name << pk.labels << " " << jsonNumber(v) << "\n";
    }
    for (const auto &[k, h] : histograms) {
        PromKey pk = splitPromKey(k);
        if (!pk.valid)
            continue;
        os << "# TYPE " << pk.name << " summary\n";
        constexpr std::pair<const char *, double> kQuantiles[] = {
            {"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}};
        for (const auto &[label, q] : kQuantiles) {
            os << withQuantile(pk, label) << " "
               << jsonNumber(h.quantile(q)) << "\n";
        }
        os << pk.name << "_sum" << pk.labels << " "
           << jsonNumber(h.sum()) << "\n"
           << pk.name << "_count" << pk.labels << " " << h.count()
           << "\n";
    }
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    counters.clear();
    gauges.clear();
    histograms.clear();
}

} // namespace aquoman::obs
