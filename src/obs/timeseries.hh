/**
 * @file
 * Windowed time-series rollups over labeled counters and histograms,
 * driven by **modelled** simulation seconds. Samples land in
 * fixed-width windows (floor(at_sec / windowSec)); window contents are
 * plain sums and order-independent log-bucketed histograms, so a store
 * fed the same events in any order — or sharded and merged in any
 * order — renders byte-identical JSON. That is the property the SLO
 * engine and the service benches lean on: rollups never depend on
 * AQUOMAN_THREADS.
 *
 * Series are keyed by an exposition-style name built with
 * obs::labeledMetric() (e.g. `slo.completed{tenant="interactive"}`),
 * so the Prometheus renderer can reuse the label block verbatim.
 */

#ifndef AQUOMAN_OBS_TIMESERIES_HH
#define AQUOMAN_OBS_TIMESERIES_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "obs/metrics.hh"

namespace aquoman::obs {

/**
 * A store of windowed series. Not thread-safe by itself: callers that
 * share one store across threads must serialize access (the service
 * feeds it from its serial discrete-event loop).
 */
class TimeSeriesStore
{
  public:
    explicit TimeSeriesStore(double window_sec);

    double windowSec() const { return width; }

    /** Window index holding modelled time @p at_sec (times < 0 clamp
     *  to window 0 so callers cannot mint negative windows). */
    std::int64_t windowIndex(double at_sec) const;

    /** Inclusive start of window @p idx in modelled seconds. */
    double
    windowStartSec(std::int64_t idx) const
    {
        return static_cast<double>(idx) * width;
    }

    /** Add @p delta to counter series @p key in @p at_sec's window. */
    void add(const std::string &key, double at_sec, double delta);

    /** Record @p value into histogram series @p key in @p at_sec's
     *  window. */
    void observe(const std::string &key, double at_sec, double value);

    /**
     * Merge @p other into this store (window widths must match).
     * Order-independent: merging shards in any order, or replaying the
     * original samples directly, yields the identical store.
     */
    void merge(const TimeSeriesStore &other);

    /** Counter value in one window (0 when absent). */
    double counterAt(const std::string &key, std::int64_t idx) const;

    /** Sum of a counter over windows [first, last] inclusive. */
    double counterInRange(const std::string &key, std::int64_t first,
                          std::int64_t last) const;

    /** Histogram for one window (empty when absent). */
    Histogram histogramAt(const std::string &key,
                          std::int64_t idx) const;

    /** Merged histogram over windows [first, last] inclusive. */
    Histogram histogramInRange(const std::string &key,
                               std::int64_t first,
                               std::int64_t last) const;

    bool empty() const { return counters.empty() && hists.empty(); }

    /** Smallest / largest window index holding any sample (0 / -1 on
     *  an empty store). */
    std::int64_t firstWindow() const;
    std::int64_t lastWindow() const;

    /**
     * Deterministic JSON: series sorted by key, windows ascending.
     *   {"window_seconds": W,
     *    "counters": {"key": [{"window":k,"start_seconds":..,"value":..}]},
     *    "histograms": {"key": [{"window":k,"start_seconds":..,
     *                            <Histogram::toJson fields>}]}}
     */
    void toJson(std::ostream &os) const;
    std::string jsonString() const;

    /**
     * Prometheus text exposition with explicit millisecond timestamps
     * (one sample per window at the window's start). Histogram series
     * emit quantile samples plus `_sum` / `_count` companion series so
     * scrape-side rate() and avg() work; counter series emit plain
     * samples. Series keys keep their labeledMetric() label block.
     */
    void toPrometheus(std::ostream &os) const;

    void clear();

  private:
    double width;
    /// series key -> window index -> value; std::map iteration gives
    /// the deterministic (sorted) exposition order.
    std::map<std::string, std::map<std::int64_t, double>> counters;
    std::map<std::string, std::map<std::int64_t, Histogram>> hists;
};

} // namespace aquoman::obs

#endif // AQUOMAN_OBS_TIMESERIES_HH
