/**
 * @file
 * Simulation tracer: structured spans and instants on named tracks,
 * exported as Chrome trace_event JSON (load in Perfetto or
 * chrome://tracing). Timestamps are **modelled** simulation seconds,
 * never wall clock, so a deterministic run produces a byte-identical
 * trace for every AQUOMAN_THREADS value.
 *
 * Tracks map to Perfetto's process/thread hierarchy: a track is a
 * (process, thread) name pair — e.g. ("ssd0", "tasks") or
 * ("queries", "q6#3"). Export sorts tracks by name and renumbers
 * pids/tids, so registration order never leaks into the output.
 *
 * Disabled by default; setting AQUOMAN_TRACE=<path> enables the tracer
 * at first use and installs an atexit hook that writes the trace there,
 * so any binary in the repo honours the variable. Hot paths must guard
 * with enabled().
 */

#ifndef AQUOMAN_OBS_TRACE_HH
#define AQUOMAN_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace aquoman::obs {

/** One span argument: key plus a pre-rendered JSON value token. */
struct TraceArg
{
    std::string key;
    std::string json;
};

TraceArg arg(const std::string &key, double v);
TraceArg arg(const std::string &key, std::int64_t v);
TraceArg arg(const std::string &key, const std::string &v);
TraceArg arg(const std::string &key, const char *v);

/** One recorded event. Spans keep exact start *and* end marks (not a
 *  duration) so tests can assert bitwise contiguity of adjacent spans. */
struct TraceEvent
{
    char phase = 'X'; ///< 'X' complete span, 'i' instant
    int track = -1;
    std::string name;
    std::string category;
    double tsSec = 0.0;
    double endSec = 0.0; ///< == tsSec for instants
    std::vector<TraceArg> args;
};

/** The process-wide simulation tracer. */
class SimTracer
{
  public:
    struct TrackInfo
    {
        std::string process;
        std::string thread;
    };

    /** The process-wide instance (reads AQUOMAN_TRACE on first use). */
    static SimTracer &global();

    /** Cheap hot-path guard; check before building names or args. */
    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    void enable() { on.store(true, std::memory_order_relaxed); }
    void disable() { on.store(false, std::memory_order_relaxed); }

    /** Register (or find) the track (@p process, @p thread). */
    int track(const std::string &process, const std::string &thread);

    /** Record a complete span on @p track over [start_sec, end_sec]. */
    void span(int track, const std::string &name,
              const std::string &category, double start_sec,
              double end_sec, std::vector<TraceArg> args = {});

    /** Record an instant event on @p track at @p at_sec. */
    void instant(int track, const std::string &name,
                 const std::string &category, double at_sec,
                 std::vector<TraceArg> args = {});

    /** Snapshot of all recorded events (tests / exporters). */
    std::vector<TraceEvent> events() const;

    std::size_t eventCount() const;

    TrackInfo trackInfo(int track) const;

    /**
     * Render the whole trace as Chrome trace_event JSON
     * ({"traceEvents": [...]}; ts/dur in microseconds). Deterministic:
     * tracks sort by (process, thread) name and events by track, with
     * per-track recording order preserved.
     */
    std::string toJson() const;

    /** Write toJson() to @p path; false (with a message) on failure. */
    bool writeJson(const std::string &path) const;

    /** Path from AQUOMAN_TRACE ("" when unset). */
    const std::string &envPath() const { return envPath_; }

    /** Drop all tracks and events (does not change enabled()). */
    void clear();

  private:
    SimTracer();

    mutable std::mutex mu;
    std::atomic<bool> on{false};
    std::string envPath_;
    std::vector<TrackInfo> tracks;
    std::vector<TraceEvent> log;
};

} // namespace aquoman::obs

#endif // AQUOMAN_OBS_TRACE_HH
