/**
 * @file
 * Simulation tracer: structured spans and instants on named tracks,
 * exported as Chrome trace_event JSON (load in Perfetto or
 * chrome://tracing). Timestamps are **modelled** simulation seconds,
 * never wall clock, so a deterministic run produces a byte-identical
 * trace for every AQUOMAN_THREADS value.
 *
 * Tracks map to Perfetto's process/thread hierarchy: a track is a
 * (process, thread) name pair — e.g. ("ssd0", "tasks") or
 * ("queries", "q6#3"). Export sorts tracks by name and renumbers
 * pids/tids, so registration order never leaks into the output.
 *
 * Disabled by default; setting AQUOMAN_TRACE=<path> enables the tracer
 * at first use and installs an atexit hook that writes the trace there,
 * so any binary in the repo honours the variable. Hot paths must guard
 * with enabled().
 */

#ifndef AQUOMAN_OBS_TRACE_HH
#define AQUOMAN_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace aquoman::obs {

/** One span argument: key plus a pre-rendered JSON value token. */
struct TraceArg
{
    std::string key;
    std::string json;
};

TraceArg arg(const std::string &key, double v);
TraceArg arg(const std::string &key, std::int64_t v);
TraceArg arg(const std::string &key, const std::string &v);
TraceArg arg(const std::string &key, const char *v);

/** One recorded event. Spans keep exact start *and* end marks (not a
 *  duration) so tests can assert bitwise contiguity of adjacent spans. */
struct TraceEvent
{
    char phase = 'X'; ///< 'X' complete span, 'i' instant
    int track = -1;
    std::string name;
    std::string category;
    double tsSec = 0.0;
    double endSec = 0.0; ///< == tsSec for instants
    /** Tail-sampling group (-1 = ungrouped, always retained). Stamped
     *  from the ambient group at record time; see resolveGroup(). */
    std::int64_t group = -1;
    std::vector<TraceArg> args;
};

/** The process-wide simulation tracer. */
class SimTracer
{
  public:
    struct TrackInfo
    {
        std::string process;
        std::string thread;
    };

    /** The process-wide instance (reads AQUOMAN_TRACE on first use). */
    static SimTracer &global();

    /** Cheap hot-path guard; check before building names or args. */
    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    void enable() { on.store(true, std::memory_order_relaxed); }
    void disable() { on.store(false, std::memory_order_relaxed); }

    /** Register (or find) the track (@p process, @p thread). */
    int track(const std::string &process, const std::string &thread);

    /** Record a complete span on @p track over [start_sec, end_sec]. */
    void span(int track, const std::string &name,
              const std::string &category, double start_sec,
              double end_sec, std::vector<TraceArg> args = {});

    /** Record an instant event on @p track at @p at_sec. */
    void instant(int track, const std::string &name,
                 const std::string &category, double at_sec,
                 std::vector<TraceArg> args = {});

    /**
     * Tail-based sampling. Events are grouped (typically one group per
     * query): setAmbientGroup(g) stamps every subsequently recorded
     * event with g until cleared with setAmbientGroup(-1). This covers
     * worker-thread recordings too, because the service sets the group
     * around the synchronous call that fans work out. Once a group's
     * fate is known (query completed / shed / suspended / sampled),
     * resolveGroup(g, keep) either finalises its events (keep) or
     * drops them from every export (events(), eventCount(), toJson()).
     * Dropped groups are compacted from the log in batches so memory
     * stays bounded; unresolved groups are retained at export.
     * Ungrouped events (group -1) are never sampled away.
     */
    void setAmbientGroup(std::int64_t group);
    std::int64_t ambientGroup() const;
    void resolveGroup(std::int64_t group, bool keep);

    /** Total events shed by resolveGroup(.., false) so far. */
    std::size_t droppedEvents() const;

    /** Snapshot of all recorded events (tests / exporters). */
    std::vector<TraceEvent> events() const;

    std::size_t eventCount() const;

    TrackInfo trackInfo(int track) const;

    /**
     * Render the whole trace as Chrome trace_event JSON
     * ({"traceEvents": [...]}; ts/dur in microseconds). Deterministic:
     * tracks sort by (process, thread) name and events by track, with
     * per-track recording order preserved.
     */
    std::string toJson() const;

    /** Write toJson() to @p path; false (with a message) on failure. */
    bool writeJson(const std::string &path) const;

    /** Path from AQUOMAN_TRACE ("" when unset). */
    const std::string &envPath() const { return envPath_; }

    /** Drop all tracks and events (does not change enabled()). */
    void clear();

  private:
    SimTracer();

    /// Dropped groups pending physical removal are compacted from the
    /// log once this many have accumulated.
    static constexpr std::size_t kCompactGroups = 64;

    void compactLocked();

    mutable std::mutex mu;
    std::atomic<bool> on{false};
    std::string envPath_;
    std::vector<TrackInfo> tracks;
    std::vector<TraceEvent> log;
    std::int64_t ambient = -1;
    /// Live (unresolved) group -> number of events recorded for it.
    std::map<std::int64_t, std::size_t> groupCounts;
    /// Groups resolved as dropped but not yet compacted out of log.
    std::set<std::int64_t> dropSet;
    std::size_t pendingDropped = 0; ///< events in log owned by dropSet
    std::size_t totalDropped = 0;
};

} // namespace aquoman::obs

#endif // AQUOMAN_OBS_TRACE_HH
