#include "obs/latency_anatomy.hh"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string_view>

#include "obs/metrics.hh"

namespace aquoman::obs {

const char *
waitClassName(WaitClass c)
{
    switch (c) {
      case WaitClass::AdmissionQueue:
        return "admission_queue";
      case WaitClass::DramWait:
        return "dram_wait";
      case WaitClass::DeviceBusy:
        return "device_busy";
      case WaitClass::DeviceExec:
        return "device_exec";
      case WaitClass::SuspendHost:
        return "suspend_host";
      case WaitClass::HostFinish:
        return "host_finish";
    }
    return "?";
}

double
WaitLedger::total() const
{
    double t = 0.0;
    for (int i = 0; i < kNumWaitClasses; ++i)
        t += sec[i];
    return t;
}

WaitClass
WaitLedger::dominant() const
{
    int best = 0;
    for (int i = 1; i < kNumWaitClasses; ++i)
        if (sec[i] > sec[best])
            best = i;
    return static_cast<WaitClass>(best);
}

WaitLedger &
WaitLedger::operator+=(const WaitLedger &o)
{
    for (int i = 0; i < kNumWaitClasses; ++i)
        sec[i] += o.sec[i];
    return *this;
}

void
WaitLedger::toJson(std::ostream &os) const
{
    os << '{';
    for (int i = 0; i < kNumWaitClasses; ++i)
        os << (i ? "," : "") << '"'
           << waitClassName(static_cast<WaitClass>(i))
           << "\":" << jsonNumber(sec[i]);
    os << '}';
}

bool
validateWaitPartition(const WaitLedger &w, double total_sec,
                      std::string *error)
{
    if (w.total() == total_sec)
        return true;
    if (error != nullptr) {
        std::ostringstream os;
        os << "wait ledger sums to " << jsonNumber(w.total())
           << " but end-to-end latency is " << jsonNumber(total_sec);
        *error = os.str();
    }
    return false;
}

std::vector<WaitSegment>
criticalPath(const std::vector<WaitSegment> &segments,
             const QueryProfile *profile)
{
    std::vector<WaitSegment> out;
    for (const WaitSegment &s : segments) {
        if (!(s.endSec > s.startSec))
            continue;
        if (!out.empty() && out.back().cls == s.cls &&
            out.back().device == s.device) {
            out.back().endSec = s.endSec;
            if (out.back().detail.empty())
                out.back().detail = s.detail;
            continue;
        }
        out.push_back(s);
    }
    if (profile != nullptr) {
        std::string bottleneck = std::string("bottleneck=") +
            pipeStageName(profile->root.subtreeStages().bottleneck());
        for (WaitSegment &s : out) {
            if (s.cls != WaitClass::DeviceExec)
                continue;
            s.detail += s.detail.empty() ? bottleneck
                                         : " " + bottleneck;
        }
    }
    return out;
}

void
BlameMatrix::resize(int tenants)
{
    n = tenants;
    cells.assign(static_cast<std::size_t>(n) *
                     static_cast<std::size_t>(n),
                 0.0);
}

double
BlameMatrix::rowSum(int victim) const
{
    double t = 0.0;
    for (int c = 0; c < n; ++c)
        t += at(victim, c);
    return t;
}

double
BlameMatrix::total() const
{
    double t = 0.0;
    for (double v : cells)
        t += v;
    return t;
}

BlameMatrix &
BlameMatrix::operator+=(const BlameMatrix &o)
{
    if (n == 0)
        resize(o.n);
    if (o.n == n)
        for (std::size_t i = 0; i < cells.size(); ++i)
            cells[i] += o.cells[i];
    return *this;
}

void
BlameMatrix::toJson(std::ostream &os,
                    const std::vector<std::string> &tenantNames) const
{
    os << "{\"tenants\":[";
    for (int i = 0; i < n; ++i)
        os << (i ? "," : "") << '"'
           << jsonEscape(i < static_cast<int>(tenantNames.size())
                             ? tenantNames[static_cast<std::size_t>(i)]
                             : std::to_string(i))
           << '"';
    os << "],\"seconds\":[";
    for (int v = 0; v < n; ++v) {
        os << (v ? "," : "") << '[';
        for (int c = 0; c < n; ++c)
            os << (c ? "," : "") << jsonNumber(at(v, c));
        os << ']';
    }
    os << "]}";
}

void
BlameMatrix::renderText(std::ostream &os,
                        const std::vector<std::string> &tenantNames) const
{
    auto name = [&](int i) -> std::string {
        return i < static_cast<int>(tenantNames.size())
                   ? tenantNames[static_cast<std::size_t>(i)]
                   : std::to_string(i);
    };
    std::size_t w = 12;
    for (int i = 0; i < n; ++i)
        w = std::max(w, name(i).size() + 2);
    os << std::left << std::setw(static_cast<int>(w))
       << "victim\\culprit";
    for (int c = 0; c < n; ++c)
        os << std::right << std::setw(static_cast<int>(w)) << name(c);
    os << std::right << std::setw(static_cast<int>(w)) << "row_sum"
       << '\n';
    for (int v = 0; v < n; ++v) {
        os << std::left << std::setw(static_cast<int>(w)) << name(v);
        for (int c = 0; c < n; ++c)
            os << std::right << std::setw(static_cast<int>(w))
               << std::fixed << std::setprecision(4) << at(v, c);
        os << std::right << std::setw(static_cast<int>(w)) << std::fixed
           << std::setprecision(4) << rowSum(v) << '\n';
    }
    os.unsetf(std::ios::floatfield);
}

namespace detail {

bool
waitSegmentGateInit()
{
    const char *e = std::getenv("AQUOMAN_WAIT_SEGMENTS");
    return e == nullptr || std::string_view(e) != "0";
}

} // namespace detail

} // namespace aquoman::obs
