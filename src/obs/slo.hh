/**
 * @file
 * SLO engine: per-tenant latency objectives, error-budget accounting,
 * and multi-window burn-rate alerting over the windowed time-series
 * rollups — all in **modelled** simulation seconds, so for a fixed
 * event stream every number, alert, and rendered byte is identical at
 * any AQUOMAN_THREADS.
 *
 * Vocabulary (Google SRE-style):
 *  - An objective is (latency target, attainment fraction): "99% of
 *    completions within 0.5 s". A completion slower than the target, a
 *    shed query, or any other terminal failure is a *bad event*.
 *  - The error budget over a horizon is `total * (1 - attainment)` bad
 *    events; budget_consumed = bad / budget (may exceed 1).
 *  - The burn rate over a window span is
 *    `(bad / total) / (1 - attainment)`: 1.0 burns the budget exactly
 *    at the sustainable rate, higher burns it proportionally faster.
 *  - A burn-rate rule pairs a long window (smooths noise) with a short
 *    window (confirms the burn is still happening) and fires when both
 *    exceed the rule's threshold. Firings are edge-triggered per
 *    (tenant, rule): the alert re-arms only after a window where the
 *    condition no longer holds.
 *
 * The engine is fed by the query service (completions, sheds,
 * suspensions) and evaluated lazily as modelled time advances; alert
 * firings are timestamped at the close of the window that tripped
 * them and delivered through an optional sink (the service mirrors
 * them into the flight recorder and as trace instants).
 */

#ifndef AQUOMAN_OBS_SLO_HH
#define AQUOMAN_OBS_SLO_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/timeseries.hh"

namespace aquoman::obs {

/** One tenant's latency objective. */
struct SloObjective
{
    std::string tenant;

    /** Completion latency target in modelled seconds (<= 0 disables
     *  the objective; events are still rolled up for the timeline). */
    double latencyTargetSec = 0.0;

    /** Fraction of completions that must meet the target (0, 1). */
    double attainment = 0.95;
};

/** One multi-window burn-rate alert rule (windows in base-window
 *  counts, so the rule scales with SloConfig::windowSec). */
struct BurnRateRule
{
    std::string name;
    int longWindows = 6;  ///< smoothing span
    int shortWindows = 1; ///< confirmation span
    double threshold = 4.0;
};

/** The standard two-rule ladder: a fast page rule (short span, high
 *  threshold) and a slow ticket rule (long span, low threshold). */
std::vector<BurnRateRule> defaultBurnRateRules();

/** Static configuration of an SloEngine. */
struct SloConfig
{
    /** Rollup window width in modelled seconds. */
    double windowSec = 1.0;

    /** Attainment used when objectives are derived from tenant
     *  latency targets without an explicit fraction. */
    double defaultAttainment = 0.95;

    std::vector<SloObjective> objectives;

    /** Alert rules; empty means defaultBurnRateRules(). */
    std::vector<BurnRateRule> rules;
};

/** One burn-rate alert firing. */
struct SloAlert
{
    std::string tenant;
    std::string rule;
    double atSec = 0.0; ///< close of the window that tripped the rule
    double shortBurn = 0.0;
    double longBurn = 0.0;
};

/**
 * The engine. Feed events in nondecreasing modelled time, advance the
 * watermark as the simulation clock moves, and call finish() once at
 * the end so the trailing partial window is evaluated and rendered.
 */
class SloEngine
{
  public:
    explicit SloEngine(SloConfig cfg);

    const SloConfig &config() const { return cfg; }

    /** True when at least one objective has a positive target. */
    bool active() const;

    /** Would a completion of @p tenant at @p latency_sec violate its
     *  objective? (False for tenants without an objective.) */
    bool isViolation(const std::string &tenant,
                     double latency_sec) const;

    void recordCompletion(const std::string &tenant, double at_sec,
                          double latency_sec);
    void recordShed(const std::string &tenant, double at_sec);
    void recordSuspend(const std::string &tenant, double at_sec);

    /**
     * Admission-queue wait of one admitted query, windowed per tenant
     * (series "slo_queue_wait_seconds"), so burn-rate breaches can be
     * correlated with queueing onset window by window instead of one
     * whole-run histogram.
     */
    void recordQueueWait(const std::string &tenant, double at_sec,
                         double wait_sec);

    /**
     * Contention-seconds @p victim waited because of @p culprit
     * (series "slo_blame_seconds", labels culprit + tenant=victim) —
     * the windowed twin of the service's BlameMatrix. Not part of the
     * timeline JSON; read it back through store().
     */
    void recordBlame(const std::string &victim,
                     const std::string &culprit, double at_sec,
                     double sec);

    /** Called synchronously for each alert firing, during advanceTo /
     *  finish. */
    void setAlertSink(std::function<void(const SloAlert &)> fn);

    /** Evaluate every window that closed strictly before @p sec. */
    void advanceTo(double sec);

    /** Advance to @p sec, then evaluate the trailing partial window.
     *  Idempotent for a fixed end time. */
    void finish(double sec);

    const std::vector<SloAlert> &alerts() const { return firings; }

    /** Whole-horizon rollup of one tenant. */
    struct TenantTotals
    {
        std::int64_t completed = 0;
        std::int64_t violations = 0;
        std::int64_t shed = 0;
        std::int64_t suspended = 0;
        /** (completed - violations) / completed; 1 when idle. */
        double attainment = 1.0;
        /** bad / (total * (1 - attainment target)); 0 without an
         *  objective. */
        double budgetConsumed = 0.0;
    };

    TenantTotals totals(const std::string &tenant) const;

    /** Tenants seen so far (sorted; union of objectives and events). */
    std::vector<std::string> tenants() const;

    const TimeSeriesStore &store() const { return ts; }

    /**
     * Deterministic timeline JSON (stable key order, %.17g numbers):
     *   {"window_seconds":W, "horizon_seconds":H,
     *    "tenants":[{"name","objective","totals","windows":[...]}],
     *    "alerts":[...]}
     * Per-tenant windows are sparse (only windows with activity) and
     * carry counts, p50/p90/p99 latency, the queue-wait histogram,
     * the single-window burn rate, and cumulative budget consumption.
     */
    void toJson(std::ostream &os) const;
    std::string jsonString() const;

  private:
    struct RuleState
    {
        bool active = false;
    };

    const SloObjective *objectiveOf(const std::string &tenant) const;
    double burnOver(const std::string &tenant, std::int64_t first,
                    std::int64_t last) const;
    void closeWindow(std::int64_t idx);

    SloConfig cfg;
    TimeSeriesStore ts;
    std::map<std::string, SloObjective> objectives;
    /// Tenants in deterministic (sorted) order; values are per-rule
    /// edge-trigger state.
    std::map<std::string, std::vector<RuleState>> tenantRules;
    std::vector<SloAlert> firings;
    std::function<void(const SloAlert &)> sink;
    std::int64_t closedThrough = -1; ///< highest evaluated window
    double horizonSec = 0.0;
    bool finished = false;
};

} // namespace aquoman::obs

#endif // AQUOMAN_OBS_SLO_HH
