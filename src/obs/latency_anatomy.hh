/**
 * @file
 * Latency anatomy: the wait-state ledger, per-query critical path, and
 * the cross-tenant blame matrix.
 *
 * AQUOMAN's SLO engine (DESIGN.md §15) can say *that* a query was
 * slow; this header is the vocabulary for *why*. Every modelled second
 * between a query's submission and its completion is accounted into
 * exactly one of six exclusive wait classes:
 *
 *  - admission_queue: queued while every admission slot was taken.
 *  - dram_wait: queued with free slots, blocked by the tenant's own
 *    device-DRAM quota (the culprit is the tenant itself).
 *  - device_busy: admitted, with no subtask of this query in flight —
 *    another query's subtask held every device it was ready on.
 *  - device_exec: at least one of the query's subtasks executing
 *    (the union of in-flight intervals, so parallel per-device slices
 *    of one Table Task count wall-clock once).
 *  - suspend_host: the trailing host phase of a query that suspended
 *    (Sec. VI-E or an admission DRAM-reservation failure).
 *  - host_finish: the trailing host phase of a never-suspended query
 *    (residual stages + result DMA).
 *
 * Exact-ledger discipline, like StageSeconds and auditLedgers: the
 * fixed-order sum of the six slots equals (doneSec - submitSec)
 * **bitwise** for every completed query, and everything here is
 * modelled time, so the ledger is byte-identical across
 * AQUOMAN_THREADS and AQUOMAN_BATCH.
 *
 * Alongside the wall-exclusive ledger, contention is attributed to a
 * *culprit*: when a subtask completes, every query then pending on
 * that device charges the overlap of its pending interval with the
 * completed hold to the culprit's tenant (waiter-seconds — several
 * victims may blame the same hold, so rows are not bounded by wall
 * time). dram_wait charges the victim's own tenant. The per-(victim ×
 * culprit) totals form the BlameMatrix; a tenant's "total contention
 * wait" is by definition its row sum.
 *
 * WaitSegments record the same partition as timestamped intervals;
 * compressed (criticalPath), they are the chain of waits and
 * executions that bounds the query's completion time. Segment
 * collection is gated by AQUOMAN_WAIT_SEGMENTS (default on); the
 * ledger and blame matrix are always maintained.
 */

#ifndef AQUOMAN_OBS_LATENCY_ANATOMY_HH
#define AQUOMAN_OBS_LATENCY_ANATOMY_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/profile.hh"

namespace aquoman::obs {

/**
 * The exclusive wait classes. Declaration order is load-bearing
 * twice over: WaitLedger::total() sums the slots in this order, and
 * the two host classes sit last so the service can absorb the
 * floating-point residual of the partition into the final (host)
 * slot without disturbing the earlier classes.
 */
enum class WaitClass
{
    AdmissionQueue,
    DramWait,
    DeviceBusy,
    DeviceExec,
    SuspendHost,
    HostFinish,
};

inline constexpr int kNumWaitClasses = 6;

/** Stable snake_case name ("admission_queue", ..., "host_finish"). */
const char *waitClassName(WaitClass c);

/**
 * Modelled seconds split over the wait classes. total() sums the
 * slots in fixed declaration order (deterministic association), the
 * same discipline as StageSeconds.
 */
struct WaitLedger
{
    double sec[kNumWaitClasses] = {};

    void
    add(WaitClass c, double t)
    {
        sec[static_cast<int>(c)] += t;
    }

    double at(WaitClass c) const { return sec[static_cast<int>(c)]; }

    /** Fixed-order sum of the six slots. */
    double total() const;

    /**
     * Dominant class: argmax over the slots, earliest slot wins ties
     * (deterministic). An all-zero ledger reports AdmissionQueue.
     */
    WaitClass dominant() const;

    WaitLedger &operator+=(const WaitLedger &o);

    /** {"admission_queue":...,...,"host_finish":...} (%.17g). */
    void toJson(std::ostream &os) const;
};

/**
 * Verify the exact-partition contract: ledger slots sum bitwise to
 * @p total_sec. Returns true when it holds; otherwise fills *error
 * (if non-null). Callers assert this under !NDEBUG builds.
 */
bool validateWaitPartition(const WaitLedger &w, double total_sec,
                           std::string *error);

/**
 * One timestamped interval of the per-query wait partition. `device`
 * is the device the interval ended on (-1 when not device-bound);
 * `detail` is a deterministic annotation (the Table-Task label for
 * device intervals, "host" for the trailing phase).
 */
struct WaitSegment
{
    WaitClass cls = WaitClass::AdmissionQueue;
    double startSec = 0.0;
    double endSec = 0.0;
    int device = -1;
    std::string detail;
};

/**
 * The per-query critical path: @p segments with zero-length intervals
 * dropped and adjacent segments of the same (class, device) merged.
 * The segments partition [submit, done], so the compressed chain IS
 * the sequence of waits and executions bounding completion time.
 * When @p profile is non-null, device_exec segments are annotated
 * with the profile's bottleneck pipeline stage.
 */
std::vector<WaitSegment> criticalPath(
    const std::vector<WaitSegment> &segments,
    const QueryProfile *profile = nullptr);

/**
 * Dense per-(victim-tenant x culprit-tenant) contention-seconds
 * matrix. Row = victim, column = culprit; rowSum(v) is tenant v's
 * total contention wait (fixed-order sum, so re-summing the rendered
 * cells reproduces it exactly).
 */
struct BlameMatrix
{
    int n = 0;
    std::vector<double> cells; ///< n*n, victim-major

    void resize(int tenants);

    void
    add(int victim, int culprit, double sec)
    {
        cells[static_cast<std::size_t>(victim * n + culprit)] += sec;
    }

    double
    at(int victim, int culprit) const
    {
        return cells[static_cast<std::size_t>(victim * n + culprit)];
    }

    /** Fixed-order sum over row @p victim. */
    double rowSum(int victim) const;

    /** Fixed-order sum over all cells (row-major). */
    double total() const;

    BlameMatrix &operator+=(const BlameMatrix &o);

    /** {"tenants":[...],"seconds":[[row0...],[row1...]]} (%.17g). */
    void toJson(std::ostream &os,
                const std::vector<std::string> &tenantNames) const;

    /** Aligned victim-rows x culprit-columns text table. */
    void renderText(std::ostream &os,
                    const std::vector<std::string> &tenantNames) const;
};

namespace detail {

/** Reads AQUOMAN_WAIT_SEGMENTS once (default on; "0" disables). */
bool waitSegmentGateInit();

inline std::atomic<bool> waitSegmentGate{waitSegmentGateInit()};

} // namespace detail

/**
 * Global wait-segment collection gate, analogous to
 * profileCollectionEnabled(): a relaxed atomic initialised from
 * AQUOMAN_WAIT_SEGMENTS (default on). Only the timestamped
 * WaitSegment vectors are gated — the WaitLedger and BlameMatrix are
 * always maintained (they are cheap and feed the bench gates).
 */
inline bool
waitSegmentCollectionEnabled()
{
    return detail::waitSegmentGate.load(std::memory_order_relaxed);
}

inline void
setWaitSegmentCollection(bool on)
{
    detail::waitSegmentGate.store(on, std::memory_order_relaxed);
}

} // namespace aquoman::obs

#endif // AQUOMAN_OBS_LATENCY_ANATOMY_HH
