/**
 * @file
 * The record format flowing through the SQL Swissknife's sort/merge
 * datapath: <key, value> pairs (the paper's sorter is synthesised for
 * kv<uint64,uint64>; the value field carries the RowID the key was read
 * from, Sec. VI-D).
 */

#ifndef AQUOMAN_AQUOMAN_SWISSKNIFE_KV_HH
#define AQUOMAN_AQUOMAN_SWISSKNIFE_KV_HH

#include <cstdint>
#include <vector>

namespace aquoman {

/** One sort/merge record: a 64-bit key and a 64-bit value (RowID). */
struct Kv
{
    std::int64_t key = 0;
    std::int64_t value = 0;

    friend bool
    operator<(const Kv &a, const Kv &b)
    {
        if (a.key != b.key)
            return a.key < b.key;
        return a.value < b.value;
    }

    friend bool
    operator==(const Kv &a, const Kv &b)
    {
        return a.key == b.key && a.value == b.value;
    }
};

/** Bytes one Kv record occupies in device DRAM / SRAM. */
constexpr std::int64_t kKvBytes = 16;

using KvStream = std::vector<Kv>;

} // namespace aquoman

#endif // AQUOMAN_AQUOMAN_SWISSKNIFE_KV_HH
