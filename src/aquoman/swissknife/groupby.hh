/**
 * @file
 * Aggregate Group-By accelerator (Sec. VI-C, Fig. 12). Group identifier
 * vectors are hashed into a 1024-bucket table; each bucket holds one
 * group identifier (max 16B) and up to eight aggregate slots
 * (sum/min/max/cnt) in banked SRAM. On a hash collision one group keeps
 * the bucket and the other becomes a spill-over group whose rows are
 * shipped to the x86 host (Sec. VI-E).
 */

#ifndef AQUOMAN_AQUOMAN_SWISSKNIFE_GROUPBY_HH
#define AQUOMAN_AQUOMAN_SWISSKNIFE_GROUPBY_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "aquoman/config.hh"
#include "common/logging.hh"

namespace aquoman {

/** Hardware aggregate kinds one SRAM slot supports. */
enum class HwAgg { Sum, Min, Max, Cnt };

/** One finished group: identifier values plus aggregate results. */
struct GroupResult
{
    std::vector<std::int64_t> groupId;
    std::vector<std::int64_t> aggregates;
    std::vector<std::int64_t> counts; ///< rows contributing per agg
    bool fromSpill = false;           ///< accumulated by the host
};

/** Statistics of one Aggregate Group-By run. */
struct GroupByStats
{
    std::int64_t rowsIn = 0;
    std::int64_t rowsSpilled = 0;   ///< rows shipped to the host
    std::int64_t groupsInSram = 0;
    std::int64_t groupsSpilled = 0; ///< distinct spill-over groups
};

/** The Aggregate Group-By accelerator. */
class GroupByAccelerator
{
  public:
    /**
     * @param cfg       device configuration (buckets, id bytes, slots)
     * @param id_width  number of 64-bit group-identifier lanes
     * @param aggs      aggregate kinds, one per aggregate column
     */
    GroupByAccelerator(const AquomanConfig &cfg, int id_width,
                       std::vector<HwAgg> aggs);

    /**
     * Accumulate one row.
     * @param group_id identifier lanes (id_width values)
     * @param values   one value per aggregate column
     */
    void update(const std::vector<std::int64_t> &group_id,
                const std::vector<std::int64_t> &values);

    /**
     * Drain results: SRAM groups plus host-accumulated spill groups,
     * merged. Order is unspecified (the host sorts final output).
     */
    std::vector<GroupResult> finish();

    const GroupByStats &stats() const { return runStats; }

    /** True if the identifier width exceeds the 16B hardware limit. */
    bool idWidthExceedsHardware() const { return idTooWide; }

  private:
    struct Bucket
    {
        bool used = false;
        std::vector<std::int64_t> id;
        std::vector<std::int64_t> agg;
        std::vector<std::int64_t> cnt;
    };

    std::size_t hashId(const std::vector<std::int64_t> &id) const;
    void initAggs(std::vector<std::int64_t> &agg,
                  std::vector<std::int64_t> &cnt) const;
    void applyRow(std::vector<std::int64_t> &agg,
                  std::vector<std::int64_t> &cnt,
                  const std::vector<std::int64_t> &values) const;

    AquomanConfig config;
    int idWidth;
    bool idTooWide;
    std::vector<HwAgg> aggKinds;
    std::vector<Bucket> buckets;
    /** Host-side accumulation of spill-over groups. */
    std::map<std::vector<std::int64_t>, Bucket> spill;
    GroupByStats runStats;
};

} // namespace aquoman

#endif // AQUOMAN_AQUOMAN_SWISSKNIFE_GROUPBY_HH
