/**
 * @file
 * Pipelined bitonic vector sorter (Sec. VI-C). Sorts one hardware
 * vector (power-of-two length) per pipeline beat using the classic
 * bitonic network; the model executes the actual compare-and-swap
 * network so stage and comparator counts are real.
 */

#ifndef AQUOMAN_AQUOMAN_SWISSKNIFE_BITONIC_HH
#define AQUOMAN_AQUOMAN_SWISSKNIFE_BITONIC_HH

#include "aquoman/swissknife/kv.hh"

namespace aquoman {

/** Bitonic sorting network over fixed-size vectors. */
class BitonicSorter
{
  public:
    /** @param vector_size hardware vector length (power of two). */
    explicit BitonicSorter(int vector_size);

    int vectorSize() const { return size; }

    /** Pipeline depth: number of compare stages of the network. */
    int numStages() const { return stages; }

    /** Sort @p v ascending in place via the network. */
    void sortVector(Kv *v);

    /** Compare-and-swap operations executed so far. */
    std::int64_t casOps() const { return ops; }

  private:
    int size;
    int stages;
    std::int64_t ops = 0;
};

} // namespace aquoman

#endif // AQUOMAN_AQUOMAN_SWISSKNIFE_BITONIC_HH
