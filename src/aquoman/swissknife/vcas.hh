/**
 * @file
 * Vector Compare-And-Swap (Algorithm 1 of the paper). A VCAS block
 * stores the current top-n vector (ascending); when a new ascending
 * input vector arrives it keeps the biggest half of the 2n elements and
 * streams out the smallest half, one element-wise CAS step per pipeline
 * stage.
 */

#ifndef AQUOMAN_AQUOMAN_SWISSKNIFE_VCAS_HH
#define AQUOMAN_AQUOMAN_SWISSKNIFE_VCAS_HH

#include <algorithm>
#include <limits>

#include "aquoman/swissknife/kv.hh"
#include "common/logging.hh"

namespace aquoman {

/** One VCAS block holding n elements. */
class Vcas
{
  public:
    explicit Vcas(int n_) : n(n_)
    {
        // Initialise to minus infinity so the first inputs displace.
        top.assign(n, Kv{std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::min()});
    }

    int size() const { return n; }

    /** Current top-n contents, ascending. */
    const KvStream &contents() const { return top; }

    /**
     * Algorithm 1: feed one ascending input vector of n elements. The
     * n element-wise CAS steps walk both tails, keeping the larger
     * half in the block. @p in_out on entry holds the sorted input; on
     * exit it holds the smaller half, ascending, for the next VCAS.
     */
    void
    compareAndSwap(KvStream &in_out)
    {
        AQ_ASSERT(static_cast<int>(in_out.size()) == n,
                  "VCAS expects vectors of ", n);
        KvStream new_top(n);
        int ti = n - 1, ii = n - 1;
        for (int k = n - 1; k >= 0; --k) {
            if (ii < 0 || (ti >= 0 && !(top[ti] < in_out[ii])))
                new_top[k] = top[ti--];
            else
                new_top[k] = in_out[ii--];
        }
        // Leftover prefixes are the n smallest; merge them ascending.
        KvStream out(n);
        int a = 0, b = 0;
        for (int k = 0; k < n; ++k) {
            if (a > ti || (b <= ii && in_out[b] < top[a]))
                out[k] = in_out[b++];
            else
                out[k] = top[a++];
        }
        top.swap(new_top);
        in_out.swap(out);
        casSteps += n;
    }

    /** Element-wise CAS steps performed so far. */
    std::int64_t steps() const { return casSteps; }

  private:
    int n;
    KvStream top;
    std::int64_t casSteps = 0;
};

} // namespace aquoman

#endif // AQUOMAN_AQUOMAN_SWISSKNIFE_VCAS_HH
