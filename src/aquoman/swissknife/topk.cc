#include "aquoman/swissknife/topk.hh"

#include <algorithm>

#include "common/logging.hh"

namespace aquoman {

TopKAccelerator::TopKAccelerator(int k, int vector_size)
    : requestedK(k), vecSize(vector_size), sorter(vector_size)
{
    AQ_ASSERT(k > 0);
    int blocks = (k + vector_size - 1) / vector_size;
    for (int i = 0; i < blocks; ++i)
        chain.emplace_back(vector_size);
}

void
TopKAccelerator::push(const Kv &record)
{
    pending.push_back(record);
    ++pushed;
    if (static_cast<int>(pending.size()) == vecSize)
        flushVector();
}

void
TopKAccelerator::flushVector()
{
    // Pad a short tail vector with minus infinity so it cannot displace
    // real records.
    while (static_cast<int>(pending.size()) < vecSize) {
        pending.push_back(Kv{std::numeric_limits<std::int64_t>::min(),
                             std::numeric_limits<std::int64_t>::min()});
    }
    sorter.sortVector(pending.data());
    ++sortedVectors;
    // The chain: each block keeps the biggest half, streams the rest on.
    for (Vcas &block : chain)
        block.compareAndSwap(pending);
    pending.clear();
}

KvStream
TopKAccelerator::finish()
{
    if (!pending.empty())
        flushVector();
    KvStream all;
    for (const Vcas &block : chain) {
        const KvStream &c = block.contents();
        all.insert(all.end(), c.begin(), c.end());
    }
    std::sort(all.begin(), all.end());
    std::reverse(all.begin(), all.end()); // descending
    // Drop padding and trim to k (or the stream length).
    std::int64_t keep = std::min<std::int64_t>(requestedK, pushed);
    if (static_cast<std::int64_t>(all.size()) > keep)
        all.resize(keep);
    return all;
}

std::int64_t
TopKAccelerator::casSteps() const
{
    std::int64_t total = 0;
    for (const Vcas &block : chain)
        total += block.steps();
    return total;
}

} // namespace aquoman
