#include "aquoman/swissknife/merger.hh"

#include "common/logging.hh"

namespace aquoman {

namespace {

/**
 * Walk both sorted streams like the hardware scheduler: repeatedly take
 * from the stream whose head is smaller, counting vector fetches and
 * source alternations.
 */
template <typename OnLeft, typename OnRight>
void
scheduledWalk(const KvStream &a, const KvStream &b, MergeStats *stats,
              int vector_size, OnLeft on_a, OnRight on_b)
{
    std::size_t i = 0, j = 0;
    int last_src = -1;
    auto account = [&](int src) {
        if (!stats)
            return;
        if (src != last_src) {
            ++stats->sourceSwitches;
            last_src = src;
        }
    };
    while (i < a.size() || j < b.size()) {
        bool take_a;
        if (i >= a.size()) {
            take_a = false;
        } else if (j >= b.size()) {
            take_a = true;
        } else if (a[i].key == b[j].key) {
            // Equal keys alternate sources so the Intersection Engine
            // needs only a look-ahead of one (Sec. VI-C).
            take_a = last_src != 0;
        } else {
            take_a = a[i].key < b[j].key;
        }
        if (take_a) {
            account(0);
            on_a(a[i++]);
        } else {
            account(1);
            on_b(b[j++]);
        }
    }
    if (stats) {
        stats->vectorsFetched +=
            (a.size() + b.size() + vector_size - 1) / vector_size;
    }
}

} // namespace

KvStream
merge2to1(const KvStream &a, const KvStream &b, MergeStats *stats,
          int vector_size)
{
    KvStream out;
    out.reserve(a.size() + b.size());
    scheduledWalk(a, b, stats, vector_size,
                  [&](const Kv &r) { out.push_back(r); },
                  [&](const Kv &r) { out.push_back(r); });
    if (stats)
        stats->recordsOut += static_cast<std::int64_t>(out.size());
    return out;
}

std::vector<MatchedPair>
intersectInner(const KvStream &left, const KvStream &right,
               MergeStats *stats)
{
    std::vector<MatchedPair> out;
    std::size_t i = 0, j = 0;
    while (i < left.size() && j < right.size()) {
        if (left[i].key < right[j].key) {
            ++i;
        } else if (right[j].key < left[i].key) {
            ++j;
        } else {
            AQ_ASSERT(j + 1 >= right.size()
                          || right[j + 1].key != right[j].key,
                      "intersectInner requires unique right keys");
            std::int64_t key = left[i].key;
            while (i < left.size() && left[i].key == key) {
                out.push_back({key, left[i].value, right[j].value});
                ++i;
            }
            ++j;
        }
    }
    if (stats) {
        stats->recordsOut += static_cast<std::int64_t>(out.size());
        stats->vectorsFetched += (left.size() + right.size() + 31) / 32;
    }
    return out;
}

namespace {

KvStream
semiAnti(const KvStream &left, const KvStream &right, bool want_match,
         MergeStats *stats)
{
    KvStream out;
    std::size_t i = 0, j = 0;
    while (i < left.size()) {
        while (j < right.size() && right[j].key < left[i].key)
            ++j;
        bool match = j < right.size() && right[j].key == left[i].key;
        if (match == want_match)
            out.push_back(left[i]);
        ++i;
    }
    if (stats) {
        stats->recordsOut += static_cast<std::int64_t>(out.size());
        stats->vectorsFetched += (left.size() + right.size() + 31) / 32;
    }
    return out;
}

} // namespace

KvStream
intersectSemi(const KvStream &left, const KvStream &right,
              MergeStats *stats)
{
    return semiAnti(left, right, true, stats);
}

KvStream
intersectAnti(const KvStream &left, const KvStream &right,
              MergeStats *stats)
{
    return semiAnti(left, right, false, stats);
}

} // namespace aquoman
