#include "aquoman/swissknife/groupby.hh"

#include <limits>

namespace aquoman {

GroupByAccelerator::GroupByAccelerator(const AquomanConfig &cfg,
                                       int id_width,
                                       std::vector<HwAgg> aggs)
    : config(cfg), idWidth(id_width), aggKinds(std::move(aggs))
{
    AQ_ASSERT(idWidth >= 0);
    AQ_ASSERT(static_cast<int>(aggKinds.size())
                  <= config.aggSlotsPerBucket,
              "bucket supports ", config.aggSlotsPerBucket,
              " aggregate slots, requested ", aggKinds.size());
    idTooWide = idWidth * 8 > config.groupIdBytes;
    buckets.resize(config.groupByBuckets);
}

std::size_t
GroupByAccelerator::hashId(const std::vector<std::int64_t> &id) const
{
    // FNV-1a over the identifier lanes, folded to the bucket count.
    std::uint64_t h = 1469598103934665603ull;
    for (std::int64_t lane : id) {
        for (int b = 0; b < 8; ++b) {
            h ^= static_cast<std::uint8_t>(lane >> (8 * b));
            h *= 1099511628211ull;
        }
    }
    return static_cast<std::size_t>(h % buckets.size());
}

void
GroupByAccelerator::initAggs(std::vector<std::int64_t> &agg,
                             std::vector<std::int64_t> &cnt) const
{
    agg.assign(aggKinds.size(), 0);
    cnt.assign(aggKinds.size(), 0);
    for (std::size_t i = 0; i < aggKinds.size(); ++i) {
        if (aggKinds[i] == HwAgg::Min)
            agg[i] = std::numeric_limits<std::int64_t>::max();
        if (aggKinds[i] == HwAgg::Max)
            agg[i] = std::numeric_limits<std::int64_t>::min();
    }
}

void
GroupByAccelerator::applyRow(std::vector<std::int64_t> &agg,
                             std::vector<std::int64_t> &cnt,
                             const std::vector<std::int64_t> &values) const
{
    for (std::size_t i = 0; i < aggKinds.size(); ++i) {
        std::int64_t v = values[i];
        switch (aggKinds[i]) {
          case HwAgg::Sum: agg[i] += v; break;
          case HwAgg::Min: agg[i] = std::min(agg[i], v); break;
          case HwAgg::Max: agg[i] = std::max(agg[i], v); break;
          case HwAgg::Cnt: agg[i] += 1; break;
        }
        cnt[i] += 1;
    }
}

void
GroupByAccelerator::update(const std::vector<std::int64_t> &group_id,
                           const std::vector<std::int64_t> &values)
{
    AQ_ASSERT(static_cast<int>(group_id.size()) == idWidth);
    AQ_ASSERT(values.size() == aggKinds.size());
    ++runStats.rowsIn;
    Bucket &b = buckets[hashId(group_id)];
    if (!b.used) {
        b.used = true;
        b.id = group_id;
        initAggs(b.agg, b.cnt);
        ++runStats.groupsInSram;
    }
    if (b.id == group_id) {
        applyRow(b.agg, b.cnt, values);
        return;
    }
    // Hash collision: this row belongs to a spill-over group the x86
    // host accumulates (the device keeps streaming at line rate).
    ++runStats.rowsSpilled;
    auto [it, fresh] = spill.try_emplace(group_id);
    if (fresh) {
        initAggs(it->second.agg, it->second.cnt);
        it->second.id = group_id;
        ++runStats.groupsSpilled;
    }
    applyRow(it->second.agg, it->second.cnt, values);
}

std::vector<GroupResult>
GroupByAccelerator::finish()
{
    std::vector<GroupResult> out;
    for (const Bucket &b : buckets) {
        if (b.used)
            out.push_back({b.id, b.agg, b.cnt, false});
    }
    for (const auto &[id, b] : spill)
        out.push_back({id, b.agg, b.cnt, true});
    return out;
}

} // namespace aquoman
