#include "aquoman/swissknife/streaming_sorter.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace aquoman {

namespace {

/** Calibrated cycle model (see header): base vector cost. */
constexpr double kBaseCyclesPerVector = 1.0667;

/** Extra cycles when the scheduler stays on one source. */
constexpr double kSameSourceStall = 0.42;

} // namespace

double
StreamingSorter::modelSeconds(std::int64_t bytes, double alternation,
                              bool folded) const
{
    if (bytes <= 0)
        return 0.0;
    double cycles_per_vector = kBaseCyclesPerVector
        + kSameSourceStall * (1.0 - alternation);
    double peak = kDatapathBytesPerSec / cycles_per_vector;
    // One block of pipeline fill/drain latency: L/(L+1) scaling.
    double blocks = static_cast<double>(bytes) / config.sorterBlockBytes;
    double eff = peak * blocks / (blocks + 1.0);
    double seconds = bytes / eff;
    if (folded) {
        // Folding the final 256-to-1 step over DRAM-resident blocks
        // halves the streaming speed (Sec. VI-C): one extra pass.
        seconds += bytes / eff;
    }
    return seconds;
}

SorterStats
StreamingSorter::sort(KvStream &stream, bool require_total_order) const
{
    SorterStats st;
    st.recordsIn = static_cast<std::int64_t>(stream.size());
    st.bytesIn = st.recordsIn * kKvBytes;
    std::int64_t block_records =
        std::max<std::int64_t>(1, config.sorterBlockBytes / kKvBytes);
    st.numBlocks = (st.recordsIn + block_records - 1) / block_records;
    if (st.recordsIn == 0) {
        st.numBlocks = 0;
        return st;
    }

    // Tag records with their 4MB-run id (the L2->L3 merge boundary,
    // scaled with the block size) to measure scheduler alternation.
    // Runs never shrink below a few hardware vectors even when tests
    // scale the block size down.
    std::int64_t run_records = std::max<std::int64_t>(
        16, block_records / config.sorterMergeFanIn);
    std::vector<std::pair<Kv, std::int64_t>> tagged(stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i)
        tagged[i] = {stream[i], static_cast<std::int64_t>(i)
                                    / run_records};

    // Sort each block (bitonic network + SRAM merge layers in HW).
    for (std::int64_t b = 0; b < st.numBlocks; ++b) {
        auto begin = tagged.begin() + b * block_records;
        auto end = b * block_records + block_records
            <= st.recordsIn ? begin + block_records : tagged.end();
        std::sort(begin, end, [](const auto &x, const auto &y) {
            return x.first < y.first;
        });
    }

    bool fold = require_total_order && st.numBlocks > 1;
    if (fold) {
        // Fold: merge all sorted blocks (all runs DRAM-resident).
        std::sort(tagged.begin(), tagged.end(),
                  [](const auto &x, const auto &y) {
                      return x.first < y.first;
                  });
        st.folded = true;
        st.dramBytes = st.bytesIn; // every block resident during fold
    } else {
        st.dramBytes = std::min<std::int64_t>(st.bytesIn,
                                              config.sorterBlockBytes);
    }

    // Measured alternation across run boundaries in the output order.
    std::int64_t switches = 0;
    for (std::size_t i = 1; i < tagged.size(); ++i)
        switches += tagged[i].second != tagged[i - 1].second;
    st.alternationRate = tagged.size() > 1
        ? static_cast<double>(switches)
              / static_cast<double>(tagged.size() - 1)
        : 0.0;

    for (std::size_t i = 0; i < tagged.size(); ++i)
        stream[i] = tagged[i].first;

    st.seconds = modelSeconds(st.bytesIn, st.alternationRate, st.folded);
    st.throughput = st.seconds > 0 ? st.bytesIn / st.seconds : 0.0;
    return st;
}

} // namespace aquoman
