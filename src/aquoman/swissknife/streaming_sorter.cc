#include "aquoman/swissknife/streaming_sorter.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace aquoman {

namespace {

/** Calibrated cycle model (see header): base vector cost. */
constexpr double kBaseCyclesPerVector = 1.0667;

/** Extra cycles when the scheduler stays on one source. */
constexpr double kSameSourceStall = 0.42;

} // namespace

double
StreamingSorter::modelSeconds(std::int64_t bytes, double alternation,
                              bool folded) const
{
    if (bytes <= 0)
        return 0.0;
    double cycles_per_vector = kBaseCyclesPerVector
        + kSameSourceStall * (1.0 - alternation);
    double peak = kDatapathBytesPerSec / cycles_per_vector;
    // One block of pipeline fill/drain latency: L/(L+1) scaling.
    double blocks = static_cast<double>(bytes) / config.sorterBlockBytes;
    double eff = peak * blocks / (blocks + 1.0);
    double seconds = bytes / eff;
    if (folded) {
        // Folding the final 256-to-1 step over DRAM-resident blocks
        // halves the streaming speed (Sec. VI-C): one extra pass.
        seconds += bytes / eff;
    }
    return seconds;
}

SorterStats
StreamingSorter::sort(KvStream &stream, bool require_total_order) const
{
    SorterStats st;
    st.recordsIn = static_cast<std::int64_t>(stream.size());
    st.bytesIn = st.recordsIn * kKvBytes;
    std::int64_t block_records =
        std::max<std::int64_t>(1, config.sorterBlockBytes / kKvBytes);
    st.numBlocks = (st.recordsIn + block_records - 1) / block_records;
    if (st.recordsIn == 0) {
        st.numBlocks = 0;
        return st;
    }

    // Tag records with their 4MB-run id (the L2->L3 merge boundary,
    // scaled with the block size) to measure scheduler alternation.
    // Runs never shrink below a few hardware vectors even when tests
    // scale the block size down.
    std::int64_t run_records = std::max<std::int64_t>(
        16, block_records / config.sorterMergeFanIn);
    std::vector<std::pair<Kv, std::int64_t>> tagged(stream.size());
    parallelFor(0, st.recordsIn, 1 << 16,
                [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i)
            tagged[i] = {stream[i], i / run_records};
    });

    // Sort each block (bitonic network + SRAM merge layers in HW; each
    // flash channel feeds its own block, so blocks sort concurrently).
    auto cmp = [](const auto &x, const auto &y) {
        return x.first < y.first;
    };
    parallelFor(0, st.numBlocks, 1, [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t b = b0; b < b1; ++b) {
            auto begin = tagged.begin() + b * block_records;
            auto end = b * block_records + block_records
                <= st.recordsIn ? begin + block_records : tagged.end();
            std::sort(begin, end, cmp);
        }
    });

    bool fold = require_total_order && st.numBlocks > 1;
    if (fold) {
        // Fold: merge all sorted blocks (all runs DRAM-resident) with a
        // pairwise merge tree. std::merge prefers the left run on equal
        // keys, so the output — run tags included — is identical for
        // every thread count; rounds of disjoint merges run in parallel.
        std::vector<std::pair<Kv, std::int64_t>> scratch(tagged.size());
        auto *src = &tagged;
        auto *dst = &scratch;
        for (std::int64_t width = block_records;
             width < st.recordsIn; width *= 2) {
            std::int64_t pairs = (st.recordsIn + 2 * width - 1)
                / (2 * width);
            parallelFor(0, pairs, 1,
                        [&](std::int64_t p0, std::int64_t p1) {
                for (std::int64_t p = p0; p < p1; ++p) {
                    std::int64_t lo = p * 2 * width;
                    std::int64_t mid =
                        std::min(lo + width, st.recordsIn);
                    std::int64_t hi =
                        std::min(lo + 2 * width, st.recordsIn);
                    std::merge(src->begin() + lo, src->begin() + mid,
                               src->begin() + mid, src->begin() + hi,
                               dst->begin() + lo, cmp);
                }
            });
            std::swap(src, dst);
        }
        if (src != &tagged)
            tagged = std::move(*src);
        st.folded = true;
        st.dramBytes = st.bytesIn; // every block resident during fold
    } else {
        st.dramBytes = std::min<std::int64_t>(st.bytesIn,
                                              config.sorterBlockBytes);
    }

    // Measured alternation across run boundaries in the output order.
    std::int64_t switches = 0;
    for (std::size_t i = 1; i < tagged.size(); ++i)
        switches += tagged[i].second != tagged[i - 1].second;
    st.alternationRate = tagged.size() > 1
        ? static_cast<double>(switches)
              / static_cast<double>(tagged.size() - 1)
        : 0.0;

    parallelFor(0, st.recordsIn, 1 << 16,
                [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i)
            stream[i] = tagged[i].first;
    });

    st.seconds = modelSeconds(st.bytesIn, st.alternationRate, st.folded);
    st.throughput = st.seconds > 0 ? st.bytesIn / st.seconds : 0.0;
    return st;
}

} // namespace aquoman
