/**
 * @file
 * 1GB-Block Streaming Sorter (Sec. VI-C, Fig. 15). Functionally: the
 * input Kv stream is cut into blocks (1GB in hardware, scaled down in
 * tests), each block is sorted through the pipelined bitonic sorter and
 * three layers of 256-to-1 mergers, and blocks are optionally folded
 * into one fully sorted stream when the device DRAM can hold them.
 *
 * The timing model reproduces Table V's measured behaviour: a 512-bit
 * datapath at 200MHz (12.8 GB/s peak), a per-output-vector stall when
 * the merge scheduler does not alternate sources (so presorted inputs
 * run slower than random ones), and one block of pipeline fill/drain
 * latency (so throughput rises with input length). Constants are
 * calibrated so the four Table V rows land on the published numbers.
 *
 * Execution is morsel-parallel (blocks sort concurrently and the fold
 * is a pairwise merge tree over the shared ThreadPool), mirroring the
 * per-channel parallelism of the hardware; output, alternation
 * statistics and modelled seconds are bit-identical for every
 * AQUOMAN_THREADS setting — only wall-clock changes.
 */

#ifndef AQUOMAN_AQUOMAN_SWISSKNIFE_STREAMING_SORTER_HH
#define AQUOMAN_AQUOMAN_SWISSKNIFE_STREAMING_SORTER_HH

#include <cstdint>

#include "aquoman/config.hh"
#include "aquoman/swissknife/kv.hh"

namespace aquoman {

/** Result statistics of one sorter run. */
struct SorterStats
{
    std::int64_t recordsIn = 0;
    std::int64_t bytesIn = 0;
    std::int64_t numBlocks = 0;

    /** Fraction of adjacent output records from different 4MB runs. */
    double alternationRate = 0.0;

    /** Device DRAM required while sorting/folding. */
    std::int64_t dramBytes = 0;

    /** Modelled wall-clock seconds of the sort. */
    double seconds = 0.0;

    /** Modelled throughput in bytes/second. */
    double throughput = 0.0;

    /** True when blocks were folded into one fully sorted stream. */
    bool folded = false;
};

/** The streaming sorter. */
class StreamingSorter
{
  public:
    explicit StreamingSorter(const AquomanConfig &cfg) : config(cfg) {}

    /**
     * Sort @p stream in place.
     * @param require_total_order fold sorted blocks into one run (needed
     *        by sort-merge join); requires DRAM for all blocks
     * @return statistics including modelled time
     */
    SorterStats sort(KvStream &stream,
                     bool require_total_order = true) const;

    /**
     * Timing-only estimate for @p bytes of input with a measured
     * @p alternation rate (used by the trace-based perf model).
     */
    double modelSeconds(std::int64_t bytes, double alternation,
                        bool folded) const;

    /** Sorter datapath peak (bytes/second). */
    static constexpr double kDatapathBytesPerSec = 12.8e9;

  private:
    AquomanConfig config;
};

} // namespace aquoman

#endif // AQUOMAN_AQUOMAN_SWISSKNIFE_STREAMING_SORTER_HH
