/**
 * @file
 * Merger accelerator (Sec. VI-C, Fig. 14): a 2-to-1 sorted-stream
 * merger (VCAS engine + scheduler) followed by an Intersection Engine.
 * Besides the paper's intersection output it exposes the join flavours
 * AQUOMAN's Table Tasks need: inner (emit matched value pairs against a
 * unique-key side), semi and anti (emit left records with/without a
 * match). The scheduler's source-alternation behaviour is counted
 * because it drives the streaming-sorter throughput model (Table V).
 */

#ifndef AQUOMAN_AQUOMAN_SWISSKNIFE_MERGER_HH
#define AQUOMAN_AQUOMAN_SWISSKNIFE_MERGER_HH

#include <cstdint>

#include "aquoman/swissknife/kv.hh"

namespace aquoman {

/** Scheduler statistics of one merge pass. */
struct MergeStats
{
    std::int64_t vectorsFetched = 0;  ///< input vectors scheduled
    std::int64_t sourceSwitches = 0;  ///< scheduler alternations
    std::int64_t recordsOut = 0;
};

/** 2-to-1 merge of two ascending streams into one ascending stream. */
KvStream merge2to1(const KvStream &a, const KvStream &b,
                   MergeStats *stats = nullptr, int vector_size = 32);

/** A matched pair of values sharing a key. */
struct MatchedPair
{
    std::int64_t key;
    std::int64_t leftValue;
    std::int64_t rightValue;
};

/**
 * Inner intersection join of two ascending streams. The right stream
 * must have unique keys (primary-key side); every left record whose key
 * exists on the right yields one pair, preserving left order of equal
 * keys as produced by the merge.
 */
std::vector<MatchedPair> intersectInner(const KvStream &left,
                                        const KvStream &right,
                                        MergeStats *stats = nullptr);

/** Left records whose key appears on the right (semi join). */
KvStream intersectSemi(const KvStream &left, const KvStream &right,
                       MergeStats *stats = nullptr);

/** Left records whose key does not appear on the right (anti join). */
KvStream intersectAnti(const KvStream &left, const KvStream &right,
                       MergeStats *stats = nullptr);

} // namespace aquoman

#endif // AQUOMAN_AQUOMAN_SWISSKNIFE_MERGER_HH
