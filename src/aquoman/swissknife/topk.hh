/**
 * @file
 * TopK accelerator (Sec. VI-C, Fig. 13): a pipelined bitonic sorter
 * followed by a daisy chain of k/n VCAS blocks that retains the k
 * biggest records of a stream.
 */

#ifndef AQUOMAN_AQUOMAN_SWISSKNIFE_TOPK_HH
#define AQUOMAN_AQUOMAN_SWISSKNIFE_TOPK_HH

#include <memory>
#include <vector>

#include "aquoman/swissknife/bitonic.hh"
#include "aquoman/swissknife/vcas.hh"

namespace aquoman {

/** Keeps the k biggest records of a Kv stream. */
class TopKAccelerator
{
  public:
    /**
     * @param k           records to retain (rounded up to a multiple
     *                    of the vector size)
     * @param vector_size hardware vector width (power of two)
     */
    TopKAccelerator(int k, int vector_size = 32);

    /** Feed one record (buffers to vectors internally). */
    void push(const Kv &record);

    /** Feed a whole stream. */
    void
    pushAll(const KvStream &records)
    {
        for (const Kv &r : records)
            push(r);
    }

    /**
     * Finish and return the biggest records, descending, truncated to
     * the requested k (or fewer if the stream was shorter).
     */
    KvStream finish();

    /** Number of VCAS blocks in the chain. */
    int chainLength() const { return static_cast<int>(chain.size()); }

    /** Total element-wise CAS steps executed (perf counter). */
    std::int64_t casSteps() const;

    /** Vectors pushed through the bitonic sorter (perf counter). */
    std::int64_t vectorsSorted() const { return sortedVectors; }

  private:
    void flushVector();

    int requestedK;
    int vecSize;
    BitonicSorter sorter;
    std::vector<Vcas> chain;
    KvStream pending;
    std::int64_t pushed = 0;
    std::int64_t sortedVectors = 0;
};

} // namespace aquoman

#endif // AQUOMAN_AQUOMAN_SWISSKNIFE_TOPK_HH
