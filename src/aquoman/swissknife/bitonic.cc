#include "aquoman/swissknife/bitonic.hh"

#include <utility>

#include "common/logging.hh"

namespace aquoman {

BitonicSorter::BitonicSorter(int vector_size) : size(vector_size)
{
    AQ_ASSERT(size > 0 && (size & (size - 1)) == 0,
              "bitonic vector size must be a power of two, got ", size);
    // log2(n) * (log2(n)+1) / 2 merge stages.
    int log_n = 0;
    while ((1 << log_n) < size)
        ++log_n;
    stages = log_n * (log_n + 1) / 2;
}

void
BitonicSorter::sortVector(Kv *v)
{
    // Standard iterative bitonic sort network (ascending).
    for (int k = 2; k <= size; k <<= 1) {
        for (int j = k >> 1; j > 0; j >>= 1) {
            for (int i = 0; i < size; ++i) {
                int partner = i ^ j;
                if (partner > i) {
                    bool up = (i & k) == 0;
                    ++ops;
                    if ((v[partner] < v[i]) == up)
                        std::swap(v[i], v[partner]);
                }
            }
        }
    }
}

} // namespace aquoman
