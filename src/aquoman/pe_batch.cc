#include "aquoman/pe_batch.hh"

#include <cstring>
#include <deque>
#include <map>
#include <set>

#include "common/date.hh"
#include "common/decimal.hh"

namespace aquoman {

namespace {

/** Resolved operand for one vectorized op: a column or a constant. */
struct Operand
{
    const std::int64_t *ptr = nullptr;
    std::int64_t c = 0;
};

/**
 * Apply @p f element-wise with the operand shapes specialized, so the
 * common column/column and column/constant cases compile to tight
 * loops without per-element branching.
 */
template <class F>
void
applyOp(std::int64_t *dst, Operand a, Operand b, std::int64_t n, F f)
{
    if (a.ptr != nullptr && b.ptr != nullptr) {
        const std::int64_t *pa = a.ptr, *pb = b.ptr;
        for (std::int64_t i = 0; i < n; ++i)
            dst[i] = f(pa[i], pb[i]);
    } else if (a.ptr != nullptr) {
        const std::int64_t *pa = a.ptr;
        const std::int64_t yb = b.c;
        for (std::int64_t i = 0; i < n; ++i)
            dst[i] = f(pa[i], yb);
    } else if (b.ptr != nullptr) {
        const std::int64_t xa = a.c;
        const std::int64_t *pb = b.ptr;
        for (std::int64_t i = 0; i < n; ++i)
            dst[i] = f(xa, pb[i]);
    } else {
        const std::int64_t v = f(a.c, b.c);
        for (std::int64_t i = 0; i < n; ++i)
            dst[i] = v;
    }
}

} // namespace

PeBatchKernel::PeBatchKernel(
    const std::vector<std::vector<PeInstruction>> &programs,
    int num_inputs)
    : numInputs_(num_inputs), fallback_(programs)
{
    vectorizable_ = compile(programs);
    if (!vectorizable_) {
        vals_.clear();
        outputs_.clear();
        numBuffers_ = 0;
    }
}

/**
 * Symbolically execute one row of the whole array. Every FIFO slot and
 * register becomes a value id; values that would come from a previous
 * row (loop-carried register reads, leftover operand-FIFO entries)
 * defeat vectorization. Registers the program never writes read as the
 * power-on zero, which IS row-invariant and stays vectorizable.
 */
bool
PeBatchKernel::compile(
    const std::vector<std::vector<PeInstruction>> &programs)
{
    vals_.clear();
    int zero_id = -1;
    auto add_val = [&](Val v) {
        vals_.push_back(v);
        return static_cast<int>(vals_.size()) - 1;
    };
    auto zero = [&]() {
        if (zero_id < 0) {
            Val z;
            z.kind = Val::Kind::Zero;
            zero_id = add_val(z);
        }
        return zero_id;
    };

    std::vector<int> fifo;
    for (int i = 0; i < numInputs_; ++i) {
        Val v;
        v.kind = Val::Kind::Input;
        v.input = i;
        fifo.push_back(add_val(v));
    }

    for (const auto &prog : programs) {
        std::set<int> written;
        for (const auto &ins : prog) {
            if (ins.rd != 0 && ins.op != PeOpcode::Store)
                written.insert(ins.rd);
        }
        std::map<int, int> regs; // reg -> value id written THIS row
        std::deque<int> op_reg;
        std::vector<int> out;
        std::size_t in_pos = 0;
        bool carried = false;

        auto read_rs = [&](int rs) -> int {
            if (rs == 0) {
                if (in_pos >= fifo.size()) {
                    // Scalar panics on input-FIFO underflow; the
                    // fallback reproduces that exactly.
                    carried = true;
                    return -1;
                }
                return fifo[in_pos++];
            }
            auto it = regs.find(rs);
            if (it != regs.end())
                return it->second;
            if (written.count(rs)) {
                carried = true; // value from the previous row
                return -1;
            }
            return zero(); // never written: power-on zero every row
        };
        auto write_rd = [&](int rd, int v) {
            if (rd == 0)
                out.push_back(v);
            else
                regs[rd] = v;
        };

        for (const PeInstruction &ins : prog) {
            if (carried)
                break;
            switch (ins.op) {
              case PeOpcode::Pass:
                write_rd(ins.rd, read_rs(ins.rs));
                break;
              case PeOpcode::Copy: {
                int v = read_rs(ins.rs);
                write_rd(ins.rd, v);
                op_reg.push_back(v);
                break;
              }
              case PeOpcode::Store:
                op_reg.push_back(read_rs(ins.rs));
                break;
              default: {
                int a = read_rs(ins.rs);
                int b = -1;
                Val v;
                v.kind = Val::Kind::Op;
                v.op = ins.op;
                if (ins.useImm) {
                    v.useImm = true;
                    v.imm = ins.imm;
                } else if (ins.op == PeOpcode::Year) {
                    // Unary: never pops the operand FIFO.
                } else {
                    if (op_reg.empty()) {
                        carried = true; // operand from a previous row
                        break;
                    }
                    b = op_reg.front();
                    op_reg.pop_front();
                }
                v.a = a;
                v.b = b;
                write_rd(ins.rd, add_val(v));
                break;
              }
            }
        }
        // Leftover operands would feed the NEXT row's pops.
        if (carried || !op_reg.empty())
            return false;
        fifo = std::move(out); // unconsumed inputs are dropped
    }

    outputs_ = std::move(fifo);
    numBuffers_ = 0;
    for (auto &v : vals_) {
        if (v.kind == Val::Kind::Op)
            v.buf = numBuffers_++;
    }
    return true;
}

void
PeBatchKernel::run(const std::int64_t *const *inputs, std::int64_t n,
                   std::int64_t *const *outputs, int num_outputs)
{
    if (n <= 0)
        return;
    if (!vectorizable_) {
        runScalar(inputs, n, outputs, num_outputs);
        return;
    }
    AQ_ASSERT(num_outputs <= numOutputs(),
              "batch kernel produces ", numOutputs(),
              " outputs per row, caller wants ", num_outputs);
    scratch_.resize(numBuffers_);
    for (auto &buf : scratch_) {
        if (static_cast<std::int64_t>(buf.size()) < n)
            buf.resize(n);
    }
    auto operand = [&](int id) {
        Operand o;
        const Val &v = vals_[id];
        switch (v.kind) {
          case Val::Kind::Input:
            o.ptr = inputs[v.input];
            break;
          case Val::Kind::Zero:
            o.c = 0;
            break;
          case Val::Kind::Op:
            o.ptr = scratch_[v.buf].data();
            break;
        }
        return o;
    };
    // Value ids are in definition order, so operands are always ready.
    for (const Val &v : vals_) {
        if (v.kind != Val::Kind::Op)
            continue;
        std::int64_t *dst = scratch_[v.buf].data();
        Operand a = operand(v.a);
        Operand b;
        if (v.useImm)
            b.c = v.imm;
        else if (v.b >= 0)
            b = operand(v.b);
        switch (v.op) {
          case PeOpcode::Add:
            applyOp(dst, a, b, n,
                    [](std::int64_t x, std::int64_t y) { return x + y; });
            break;
          case PeOpcode::Sub:
            applyOp(dst, a, b, n,
                    [](std::int64_t x, std::int64_t y) { return x - y; });
            break;
          case PeOpcode::Mul:
            applyOp(dst, a, b, n,
                    [](std::int64_t x, std::int64_t y) { return x * y; });
            break;
          case PeOpcode::Div:
            applyOp(dst, a, b, n, [](std::int64_t x, std::int64_t y) {
                return peDiv(x, y);
            });
            break;
          case PeOpcode::Eq:
            applyOp(dst, a, b, n, [](std::int64_t x, std::int64_t y) {
                return static_cast<std::int64_t>(x == y);
            });
            break;
          case PeOpcode::Lt:
            applyOp(dst, a, b, n, [](std::int64_t x, std::int64_t y) {
                return static_cast<std::int64_t>(x < y);
            });
            break;
          case PeOpcode::Gt:
            applyOp(dst, a, b, n, [](std::int64_t x, std::int64_t y) {
                return static_cast<std::int64_t>(x > y);
            });
            break;
          case PeOpcode::MulScaled:
            applyOp(dst, a, b, n, [](std::int64_t x, std::int64_t y) {
                return decimalMul(x, y);
            });
            break;
          case PeOpcode::DivScaled:
            applyOp(dst, a, b, n, [](std::int64_t x, std::int64_t y) {
                return decimalDiv(x, y);
            });
            break;
          case PeOpcode::Year:
            applyOp(dst, a, b, n, [](std::int64_t x, std::int64_t) {
                return static_cast<std::int64_t>(
                    civilFromDays(static_cast<std::int32_t>(x)).year);
            });
            break;
          default:
            panic("non-arithmetic opcode in batch kernel DAG");
        }
    }
    for (int o = 0; o < num_outputs; ++o) {
        const Val &v = vals_[outputs_[o]];
        switch (v.kind) {
          case Val::Kind::Input:
            std::memcpy(outputs[o], inputs[v.input],
                        static_cast<std::size_t>(n) * sizeof(std::int64_t));
            break;
          case Val::Kind::Zero:
            std::memset(outputs[o], 0,
                        static_cast<std::size_t>(n) * sizeof(std::int64_t));
            break;
          case Val::Kind::Op:
            std::memcpy(outputs[o], scratch_[v.buf].data(),
                        static_cast<std::size_t>(n) * sizeof(std::int64_t));
            break;
        }
    }
}

void
PeBatchKernel::runScalar(const std::int64_t *const *inputs,
                         std::int64_t n, std::int64_t *const *outputs,
                         int num_outputs)
{
    rowIn_.resize(numInputs_);
    for (std::int64_t r = 0; r < n; ++r) {
        for (int i = 0; i < numInputs_; ++i)
            rowIn_[i] = inputs[i][r];
        fallback_.runRow(rowIn_, rowOut_);
        for (int o = 0; o < num_outputs; ++o)
            outputs[o][r] = rowOut_[o];
    }
}

} // namespace aquoman
