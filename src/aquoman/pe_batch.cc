#include "aquoman/pe_batch.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <set>
#include <string_view>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/date.hh"
#include "common/decimal.hh"
#include "common/simd.hh"

namespace aquoman {

namespace {

std::atomic<std::int64_t> g_morsel_rows{-1};

constexpr std::int64_t kMinMorselRows = 1024;
constexpr std::int64_t kMaxMorselRows = 1 << 20;

// ---------------------------------------------------------------------
// Specialized kernels: one instantiation per (opcode × operand shape).
// The generic loops are written branch-free over the whole morsel so
// the compiler can vectorize them (`omp simd` asserts no loop-carried
// dependence); the AVX2 variants below make the five cheapest ops
// explicit for hosts that have it.
// ---------------------------------------------------------------------

struct AddOp
{
    static std::int64_t apply(std::int64_t x, std::int64_t y)
    {
        return x + y;
    }
};
struct SubOp
{
    static std::int64_t apply(std::int64_t x, std::int64_t y)
    {
        return x - y;
    }
};
struct MulOp
{
    static std::int64_t apply(std::int64_t x, std::int64_t y)
    {
        return x * y;
    }
};
struct DivOp
{
    static std::int64_t apply(std::int64_t x, std::int64_t y)
    {
        return peDiv(x, y);
    }
};
struct EqOp
{
    static std::int64_t apply(std::int64_t x, std::int64_t y)
    {
        return static_cast<std::int64_t>(x == y);
    }
};
struct LtOp
{
    static std::int64_t apply(std::int64_t x, std::int64_t y)
    {
        return static_cast<std::int64_t>(x < y);
    }
};
struct GtOp
{
    static std::int64_t apply(std::int64_t x, std::int64_t y)
    {
        return static_cast<std::int64_t>(x > y);
    }
};
struct MulScaledOp
{
    static std::int64_t apply(std::int64_t x, std::int64_t y)
    {
        return decimalMul(x, y);
    }
};
struct DivScaledOp
{
    static std::int64_t apply(std::int64_t x, std::int64_t y)
    {
        return decimalDiv(x, y);
    }
};
struct YearOp
{
    static std::int64_t apply(std::int64_t x, std::int64_t)
    {
        return civilFromDays(static_cast<std::int32_t>(x)).year;
    }
};

template <class Op>
void
kColCol(std::int64_t *dst, const std::int64_t *a, std::int64_t,
        const std::int64_t *b, std::int64_t, std::int64_t n)
{
#pragma omp simd
    for (std::int64_t i = 0; i < n; ++i)
        dst[i] = Op::apply(a[i], b[i]);
}

template <class Op>
void
kColConst(std::int64_t *dst, const std::int64_t *a, std::int64_t,
          const std::int64_t *, std::int64_t bc, std::int64_t n)
{
#pragma omp simd
    for (std::int64_t i = 0; i < n; ++i)
        dst[i] = Op::apply(a[i], bc);
}

template <class Op>
void
kConstCol(std::int64_t *dst, const std::int64_t *, std::int64_t ac,
          const std::int64_t *b, std::int64_t, std::int64_t n)
{
#pragma omp simd
    for (std::int64_t i = 0; i < n; ++i)
        dst[i] = Op::apply(ac, b[i]);
}

template <class Op>
void
kConstConst(std::int64_t *dst, const std::int64_t *, std::int64_t ac,
            const std::int64_t *, std::int64_t bc, std::int64_t n)
{
    const std::int64_t v = Op::apply(ac, bc);
    for (std::int64_t i = 0; i < n; ++i)
        dst[i] = v;
}

#if defined(__x86_64__) && defined(__GNUC__)

// AVX2 variants for the ops with a native 64-bit vector form: add/sub
// and the signed compares (AVX2 has no 64-bit multiply low, so Mul and
// the scaled decimal ops stay on the autovectorized generic loops).
// Compares produce all-ones lanes; a logical right shift by 63 turns
// them into the 0/1 the PE contract requires. Remainder rows run the
// scalar expression — bit-identical by construction.

#define AQ_AVX2_KERNEL_PAIR(NAME, VECEXPR, SCALEXPR)                         \
    __attribute__((target("avx2"))) void NAME##ColColAvx2(                   \
        std::int64_t *dst, const std::int64_t *a, std::int64_t,              \
        const std::int64_t *b, std::int64_t, std::int64_t n)                 \
    {                                                                        \
        std::int64_t i = 0;                                                  \
        for (; i + 4 <= n; i += 4) {                                         \
            __m256i va = _mm256_loadu_si256(                                 \
                reinterpret_cast<const __m256i *>(a + i));                   \
            __m256i vb = _mm256_loadu_si256(                                 \
                reinterpret_cast<const __m256i *>(b + i));                   \
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),        \
                                (VECEXPR));                                  \
        }                                                                    \
        for (; i < n; ++i) {                                                 \
            std::int64_t x = a[i], y = b[i];                                 \
            dst[i] = (SCALEXPR);                                             \
        }                                                                    \
    }                                                                        \
    __attribute__((target("avx2"))) void NAME##ColConstAvx2(                 \
        std::int64_t *dst, const std::int64_t *a, std::int64_t,              \
        const std::int64_t *, std::int64_t bc, std::int64_t n)               \
    {                                                                        \
        const __m256i vb = _mm256_set1_epi64x(bc);                           \
        std::int64_t i = 0;                                                  \
        for (; i + 4 <= n; i += 4) {                                         \
            __m256i va = _mm256_loadu_si256(                                 \
                reinterpret_cast<const __m256i *>(a + i));                   \
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),        \
                                (VECEXPR));                                  \
        }                                                                    \
        for (; i < n; ++i) {                                                 \
            std::int64_t x = a[i], y = bc;                                   \
            dst[i] = (SCALEXPR);                                             \
        }                                                                    \
    }

AQ_AVX2_KERNEL_PAIR(kAdd, _mm256_add_epi64(va, vb), x + y)
AQ_AVX2_KERNEL_PAIR(kSub, _mm256_sub_epi64(va, vb), x - y)
AQ_AVX2_KERNEL_PAIR(kEq,
                    _mm256_srli_epi64(_mm256_cmpeq_epi64(va, vb), 63),
                    static_cast<std::int64_t>(x == y))
AQ_AVX2_KERNEL_PAIR(kLt,
                    _mm256_srli_epi64(_mm256_cmpgt_epi64(vb, va), 63),
                    static_cast<std::int64_t>(x < y))
AQ_AVX2_KERNEL_PAIR(kGt,
                    _mm256_srli_epi64(_mm256_cmpgt_epi64(va, vb), 63),
                    static_cast<std::int64_t>(x > y))

#undef AQ_AVX2_KERNEL_PAIR

/** AVX2 variant for (op × shape), or nullptr when none exists. */
PeBatchKernel::KernelFn
selectAvx2Kernel(PeOpcode op, bool a_col, bool b_col)
{
    if (a_col && b_col) {
        switch (op) {
          case PeOpcode::Add: return &kAddColColAvx2;
          case PeOpcode::Sub: return &kSubColColAvx2;
          case PeOpcode::Eq: return &kEqColColAvx2;
          case PeOpcode::Lt: return &kLtColColAvx2;
          case PeOpcode::Gt: return &kGtColColAvx2;
          default: return nullptr;
        }
    }
    if (a_col && !b_col) {
        switch (op) {
          case PeOpcode::Add: return &kAddColConstAvx2;
          case PeOpcode::Sub: return &kSubColConstAvx2;
          case PeOpcode::Eq: return &kEqColConstAvx2;
          case PeOpcode::Lt: return &kLtColConstAvx2;
          case PeOpcode::Gt: return &kGtColConstAvx2;
          default: return nullptr;
        }
    }
    return nullptr;
}

#else

PeBatchKernel::KernelFn
selectAvx2Kernel(PeOpcode, bool, bool)
{
    return nullptr;
}

#endif // __x86_64__ && __GNUC__

template <class Op>
PeBatchKernel::KernelFn
selectShape(bool a_col, bool b_col)
{
    if (a_col && b_col)
        return &kColCol<Op>;
    if (a_col)
        return &kColConst<Op>;
    if (b_col)
        return &kConstCol<Op>;
    return &kConstConst<Op>;
}

/**
 * Pick the kernel for (opcode × operand shape), preferring the AVX2
 * variant when the host supports it. Called once per DAG value at
 * kernel-compile time; run() never dispatches on the opcode again.
 */
PeBatchKernel::KernelFn
selectKernel(PeOpcode op, bool a_col, bool b_col, bool use_avx2)
{
    if (use_avx2) {
        if (PeBatchKernel::KernelFn f = selectAvx2Kernel(op, a_col, b_col))
            return f;
    }
    switch (op) {
      case PeOpcode::Add: return selectShape<AddOp>(a_col, b_col);
      case PeOpcode::Sub: return selectShape<SubOp>(a_col, b_col);
      case PeOpcode::Mul: return selectShape<MulOp>(a_col, b_col);
      case PeOpcode::Div: return selectShape<DivOp>(a_col, b_col);
      case PeOpcode::Eq: return selectShape<EqOp>(a_col, b_col);
      case PeOpcode::Lt: return selectShape<LtOp>(a_col, b_col);
      case PeOpcode::Gt: return selectShape<GtOp>(a_col, b_col);
      case PeOpcode::MulScaled:
        return selectShape<MulScaledOp>(a_col, b_col);
      case PeOpcode::DivScaled:
        return selectShape<DivScaledOp>(a_col, b_col);
      case PeOpcode::Year: return selectShape<YearOp>(a_col, b_col);
      default:
        panic("non-arithmetic opcode in batch kernel DAG");
    }
}

/** Can (a op b) be rewritten (b op' a)? Sets @p swapped_op if so. */
bool
commuteOp(PeOpcode op, PeOpcode &swapped_op)
{
    switch (op) {
      case PeOpcode::Add:
      case PeOpcode::Eq:
        swapped_op = op;
        return true;
      case PeOpcode::Lt:
        swapped_op = PeOpcode::Gt;
        return true;
      case PeOpcode::Gt:
        swapped_op = PeOpcode::Lt;
        return true;
      default:
        return false;
    }
}

} // namespace

std::int64_t
peBatchMorselRows()
{
    std::int64_t v = g_morsel_rows.load(std::memory_order_relaxed);
    if (v < 0) {
        v = kPeBatchRows;
        if (const char *e = std::getenv("AQUOMAN_MORSEL")) {
            char *end = nullptr;
            long long parsed = std::strtoll(e, &end, 10);
            if (end != e && parsed > 0) {
                v = std::min(kMaxMorselRows,
                             std::max(kMinMorselRows,
                                      static_cast<std::int64_t>(parsed)));
            }
        }
        g_morsel_rows.store(v, std::memory_order_relaxed);
    }
    return v;
}

void
setPeBatchMorselRows(std::int64_t rows)
{
    if (rows <= 0) {
        g_morsel_rows.store(-1, std::memory_order_relaxed);
        return;
    }
    g_morsel_rows.store(
        std::min(kMaxMorselRows, std::max(kMinMorselRows, rows)),
        std::memory_order_relaxed);
}

PeBatchKernel::PeBatchKernel(
    const std::vector<std::vector<PeInstruction>> &programs,
    int num_inputs)
    : numInputs_(num_inputs), fallback_(programs)
{
    vectorizable_ = compile(programs);
    if (!vectorizable_) {
        vals_.clear();
        outputs_.clear();
        numBuffers_ = 0;
    } else {
        buildSteps();
    }
}

/**
 * Symbolically execute one row of the whole array. Every FIFO slot and
 * register becomes a value id; values that would come from a previous
 * row (loop-carried register reads, leftover operand-FIFO entries)
 * defeat vectorization. Registers the program never writes read as the
 * power-on zero, which IS row-invariant and stays vectorizable.
 */
bool
PeBatchKernel::compile(
    const std::vector<std::vector<PeInstruction>> &programs)
{
    vals_.clear();
    int zero_id = -1;
    auto add_val = [&](Val v) {
        vals_.push_back(v);
        return static_cast<int>(vals_.size()) - 1;
    };
    auto zero = [&]() {
        if (zero_id < 0) {
            Val z;
            z.kind = Val::Kind::Zero;
            zero_id = add_val(z);
        }
        return zero_id;
    };

    std::vector<int> fifo;
    for (int i = 0; i < numInputs_; ++i) {
        Val v;
        v.kind = Val::Kind::Input;
        v.input = i;
        fifo.push_back(add_val(v));
    }

    for (const auto &prog : programs) {
        std::set<int> written;
        for (const auto &ins : prog) {
            if (ins.rd != 0 && ins.op != PeOpcode::Store)
                written.insert(ins.rd);
        }
        std::map<int, int> regs; // reg -> value id written THIS row
        std::deque<int> op_reg;
        std::vector<int> out;
        std::size_t in_pos = 0;
        bool carried = false;

        auto read_rs = [&](int rs) -> int {
            if (rs == 0) {
                if (in_pos >= fifo.size()) {
                    // Scalar panics on input-FIFO underflow; the
                    // fallback reproduces that exactly.
                    carried = true;
                    return -1;
                }
                return fifo[in_pos++];
            }
            auto it = regs.find(rs);
            if (it != regs.end())
                return it->second;
            if (written.count(rs)) {
                carried = true; // value from the previous row
                return -1;
            }
            return zero(); // never written: power-on zero every row
        };
        auto write_rd = [&](int rd, int v) {
            if (rd == 0)
                out.push_back(v);
            else
                regs[rd] = v;
        };

        for (const PeInstruction &ins : prog) {
            if (carried)
                break;
            switch (ins.op) {
              case PeOpcode::Pass:
                write_rd(ins.rd, read_rs(ins.rs));
                break;
              case PeOpcode::Copy: {
                int v = read_rs(ins.rs);
                write_rd(ins.rd, v);
                op_reg.push_back(v);
                break;
              }
              case PeOpcode::Store:
                op_reg.push_back(read_rs(ins.rs));
                break;
              default: {
                int a = read_rs(ins.rs);
                int b = -1;
                Val v;
                v.kind = Val::Kind::Op;
                v.op = ins.op;
                if (ins.useImm) {
                    v.useImm = true;
                    v.imm = ins.imm;
                } else if (ins.op == PeOpcode::Year) {
                    // Unary: never pops the operand FIFO.
                } else {
                    if (op_reg.empty()) {
                        carried = true; // operand from a previous row
                        break;
                    }
                    b = op_reg.front();
                    op_reg.pop_front();
                }
                v.a = a;
                v.b = b;
                write_rd(ins.rd, add_val(v));
                break;
              }
            }
        }
        // Leftover operands would feed the NEXT row's pops.
        if (carried || !op_reg.empty())
            return false;
        fifo = std::move(out); // unconsumed inputs are dropped
    }

    outputs_ = std::move(fifo);
    numBuffers_ = 0;
    for (auto &v : vals_) {
        if (v.kind == Val::Kind::Op)
            v.buf = numBuffers_++;
    }
    return true;
}

/**
 * Lower every Kind::Op value to a Step: resolve each operand to an
 * input column, a scratch buffer, or a constant; normalize const-col
 * shapes of commutable ops to col-const (halving the AVX2 kernel
 * matrix); and select the (opcode × shape) kernel instantiation once.
 */
void
PeBatchKernel::buildSteps()
{
    const bool use_avx2 = avx2Available();
    steps_.clear();
    steps_.reserve(vals_.size());
    auto src_of = [&](int id) {
        Src s;
        if (id < 0)
            return s; // constant 0 (unary ops' unused operand)
        const Val &v = vals_[id];
        switch (v.kind) {
          case Val::Kind::Input:
            s.input = v.input;
            break;
          case Val::Kind::Zero:
            break;
          case Val::Kind::Op:
            s.buf = v.buf;
            break;
        }
        return s;
    };
    for (const Val &v : vals_) {
        if (v.kind != Val::Kind::Op)
            continue;
        Step st;
        st.dstBuf = v.buf;
        st.a = src_of(v.a);
        if (v.useImm)
            st.b.c = v.imm;
        else
            st.b = src_of(v.b);
        bool a_col = st.a.input >= 0 || st.a.buf >= 0;
        bool b_col = st.b.input >= 0 || st.b.buf >= 0;
        PeOpcode op = v.op;
        PeOpcode swapped;
        if (!a_col && b_col && commuteOp(op, swapped)) {
            std::swap(st.a, st.b);
            std::swap(a_col, b_col);
            op = swapped;
        }
        st.fn = selectKernel(op, a_col, b_col, use_avx2);
        steps_.push_back(st);
    }
}

void
PeBatchKernel::run(const std::int64_t *const *inputs, std::int64_t n,
                   std::int64_t *const *outputs, int num_outputs)
{
    if (n <= 0)
        return;
    if (!vectorizable_) {
        runScalar(inputs, n, outputs, num_outputs);
        return;
    }
    AQ_ASSERT(num_outputs <= numOutputs(),
              "batch kernel produces ", numOutputs(),
              " outputs per row, caller wants ", num_outputs);
    scratch_.resize(numBuffers_);
    for (auto &buf : scratch_) {
        if (static_cast<std::int64_t>(buf.size()) < n)
            buf.resize(n);
    }
    auto ptr_of = [&](const Src &s) -> const std::int64_t * {
        if (s.input >= 0)
            return inputs[s.input];
        if (s.buf >= 0)
            return scratch_[s.buf].data();
        return nullptr;
    };
    // Steps are in definition order, so operands are always ready.
    for (const Step &st : steps_) {
        st.fn(scratch_[st.dstBuf].data(), ptr_of(st.a), st.a.c,
              ptr_of(st.b), st.b.c, n);
    }
    for (int o = 0; o < num_outputs; ++o) {
        const Val &v = vals_[outputs_[o]];
        switch (v.kind) {
          case Val::Kind::Input:
            std::memcpy(outputs[o], inputs[v.input],
                        static_cast<std::size_t>(n) * sizeof(std::int64_t));
            break;
          case Val::Kind::Zero:
            std::memset(outputs[o], 0,
                        static_cast<std::size_t>(n) * sizeof(std::int64_t));
            break;
          case Val::Kind::Op:
            std::memcpy(outputs[o], scratch_[v.buf].data(),
                        static_cast<std::size_t>(n) * sizeof(std::int64_t));
            break;
        }
    }
}

void
PeBatchKernel::runScalar(const std::int64_t *const *inputs,
                         std::int64_t n, std::int64_t *const *outputs,
                         int num_outputs)
{
    rowIn_.resize(numInputs_);
    for (std::int64_t r = 0; r < n; ++r) {
        for (int i = 0; i < numInputs_; ++i)
            rowIn_[i] = inputs[i][r];
        fallback_.runRow(rowIn_, rowOut_);
        for (int o = 0; o < num_outputs; ++o)
            outputs[o][r] = rowOut_[o];
    }
}

} // namespace aquoman
