#include "aquoman/task_compiler.hh"

#include <set>
#include <unordered_map>

namespace aquoman {

namespace {

/** Strip an "alias." prefix from a column name. */
std::string
baseColumnName(const std::string &name)
{
    auto dot = name.find('.');
    return dot == std::string::npos ? name : name.substr(dot + 1);
}

/**
 * Per-column string-heap statistics: total unique-string bytes and the
 * distinct-to-row ratio. Determines regex-accelerator cacheability.
 */
struct ColumnHeapInfo
{
    std::int64_t heapBytes = 0;
    std::int64_t distinct = 0;
    std::int64_t rows = 0;
};

ColumnHeapInfo
columnHeapInfo(const Table &t, const std::string &column)
{
    ColumnHeapInfo info;
    const Column &c = t.col(column);
    info.rows = c.size();
    std::set<std::int64_t> offsets;
    for (std::int64_t i = 0; i < c.size(); ++i)
        offsets.insert(c.get(i));
    info.distinct = static_cast<std::int64_t>(offsets.size());
    for (std::int64_t off : offsets) {
        info.heapBytes += static_cast<std::int64_t>(
            t.strings().get(off).size()) + 1;
    }
    return info;
}

/** Find which catalog table owns @p column (TPC-H names are unique). */
const Table *
ownerTable(const Catalog &cat, const std::string &column)
{
    std::string base = baseColumnName(column);
    for (const auto &[name, entry] : cat.all()) {
        if (entry.table->hasColumn(base))
            return entry.table.get();
    }
    return nullptr;
}

/** Collect every LIKE node of an expression. */
void
collectLikes(const ExprPtr &e, std::vector<const Expr *> &out)
{
    if (!e)
        return;
    if (e->kind == ExprKind::Like)
        out.push_back(e.get());
    for (const auto &c : e->children)
        collectLikes(c, out);
}

/** Walk a plan tree collecting all expressions. */
void
collectPlanExprs(const PlanPtr &p, std::vector<ExprPtr> &out)
{
    if (!p)
        return;
    if (p->predicate)
        out.push_back(p->predicate);
    if (p->residual)
        out.push_back(p->residual);
    for (const auto &ne : p->projections)
        out.push_back(ne.expr);
    for (const auto &a : p->aggregates)
        if (a.input)
            out.push_back(a.input);
    for (const auto &c : p->children)
        collectPlanExprs(c, out);
}

} // namespace

std::optional<StageShape>
TaskCompiler::analyze(const PlanPtr &plan, std::string &why) const
{
    StageShape shape;
    PlanPtr node = plan;

    if (node->kind == PlanKind::OrderBy) {
        shape.sortKeys = node->sortKeys;
        shape.limit = node->limit;
        node = node->children[0];
    }

    // Ops above the group-by (or above the join tree when there is no
    // group-by at all -- resolved below).
    std::vector<StageOp> upper;
    while (node->kind == PlanKind::Project
           || node->kind == PlanKind::Filter) {
        StageOp op;
        if (node->kind == PlanKind::Project) {
            op.kind = StageOp::Kind::Project;
            op.projections = node->projections;
        } else {
            op.kind = StageOp::Kind::Filter;
            op.predicate = node->predicate;
        }
        upper.insert(upper.begin(), op);
        node = node->children[0];
    }

    if (node->kind == PlanKind::GroupBy) {
        shape.postOps = upper;
        upper.clear();
        GroupBySpec gb;
        gb.groupColumns = node->groupColumns;
        gb.aggregates = node->aggregates;
        shape.groupBy = gb;
        node = node->children[0];
        while (node->kind == PlanKind::Project
               || node->kind == PlanKind::Filter) {
            StageOp op;
            if (node->kind == PlanKind::Project) {
                op.kind = StageOp::Kind::Project;
                op.projections = node->projections;
            } else {
                op.kind = StageOp::Kind::Filter;
                op.predicate = node->predicate;
            }
            shape.rootOps.insert(shape.rootOps.begin(), op);
            node = node->children[0];
        }
    } else {
        shape.rootOps = upper;
        upper.clear();
    }

    // Below: a join tree over leaves (or a bare leaf).
    // A leaf may still carry Filter/Project ops down to its Scan.
    std::unordered_map<const Plan *, int> node_ids;
    std::string fail;

    // Recursive build.
    struct Builder
    {
        StageShape &shape;
        std::string &fail;

        int
        build(const PlanPtr &p)
        {
            if (p->kind == PlanKind::Join) {
                int l = build(p->children[0]);
                if (l < 0)
                    return -1;
                int r = build(p->children[1]);
                if (r < 0)
                    return -1;
                ShapeNode n;
                n.isLeaf = false;
                n.joinType = p->joinType;
                n.left = l;
                n.right = r;
                n.leftKeys = p->leftKeys;
                n.rightKeys = p->rightKeys;
                n.residual = p->residual;
                shape.nodes.push_back(n);
                return static_cast<int>(shape.nodes.size()) - 1;
            }
            // Leaf: (Filter|Project)* over Scan.
            LeafInfo leaf;
            PlanPtr cur = p;
            std::vector<StageOp> ops;
            while (cur->kind == PlanKind::Filter
                   || cur->kind == PlanKind::Project) {
                StageOp op;
                if (cur->kind == PlanKind::Project) {
                    op.kind = StageOp::Kind::Project;
                    op.projections = cur->projections;
                } else {
                    op.kind = StageOp::Kind::Filter;
                    op.predicate = cur->predicate;
                }
                ops.insert(ops.begin(), op);
                cur = cur->children[0];
            }
            if (cur->kind != PlanKind::Scan) {
                fail = "stage contains an operator below a join that is "
                       "neither a scan nor a filter/project chain";
                return -1;
            }
            leaf.table = cur->scanTable;
            leaf.stageRef = cur->scanStage;
            leaf.alias = cur->scanAlias;
            leaf.columns = cur->scanColumns;
            leaf.ops = std::move(ops);
            shape.leaves.push_back(std::move(leaf));
            ShapeNode n;
            n.isLeaf = true;
            n.leaf = static_cast<int>(shape.leaves.size()) - 1;
            shape.nodes.push_back(n);
            return static_cast<int>(shape.nodes.size()) - 1;
        }
    } builder{shape, fail};

    shape.root = builder.build(node);
    if (shape.root < 0) {
        why = fail;
        return std::nullopt;
    }
    return shape;
}

bool
TaskCompiler::likeOverBigHeap(const ExprPtr &e, const LeafInfo &,
                              std::string &why) const
{
    std::vector<const Expr *> likes;
    collectLikes(e, likes);
    for (const Expr *l : likes) {
        if (l->children[0]->kind != ExprKind::ColRef) {
            why = "LIKE over a computed value";
            return true;
        }
        const std::string &cname = l->children[0]->column;
        const Table *t = ownerTable(catalog, cname);
        if (!t) {
            why = "LIKE over unknown column " + cname;
            return true;
        }
        ColumnHeapInfo info = columnHeapInfo(*t, baseColumnName(cname));
        // Cacheable iff the column's heap fits the regex accelerator's
        // 1MB string cache and the column is dictionary-like (distinct
        // values well below row count). Unique-ish columns (comments,
        // part names) cause random string-heap reads at any scale.
        bool dictionary_like = info.distinct * 2 <= info.rows
            || info.rows < 64;
        if (info.heapBytes > config.regexCacheBytes || !dictionary_like) {
            why = "regular-expression filter over '" + cname
                + "' whose string heap (" + std::to_string(info.heapBytes)
                + "B, " + std::to_string(info.distinct)
                + " distinct) exceeds the regex accelerator cache";
            return true;
        }
    }
    return false;
}

bool
TaskCompiler::checkLeafSupport(const LeafInfo &leaf,
                               std::string &why) const
{
    if (!leaf.table.empty() && !catalog.has(leaf.table)) {
        why = "unknown table " + leaf.table;
        return false;
    }
    for (const auto &op : leaf.ops) {
        if (op.kind == StageOp::Kind::Filter
                && likeOverBigHeap(op.predicate, leaf, why)) {
            return false;
        }
    }
    return true;
}

QueryCompilation
TaskCompiler::compile(const Query &q) const
{
    QueryCompilation out;
    out.queryName = q.name;

    // Pass 1: a big-heap regex anywhere makes offloading unprofitable
    // for the whole query (paper Sec. VIII-B: q9, q13, q16, q20).
    std::string regex_why;
    for (const auto &stage : q.stages) {
        std::vector<ExprPtr> exprs;
        collectPlanExprs(stage.plan, exprs);
        for (const auto &e : exprs) {
            LeafInfo dummy;
            if (likeOverBigHeap(e, dummy, regex_why)) {
                out.regexForcedHost = true;
                break;
            }
        }
        if (out.regexForcedHost)
            break;
    }

    // Pass 2: per-stage decisions. Group-by / top-k outputs are never
    // buffered in device DRAM, so stages reading them run on the host.
    std::set<std::string> host_resident_stages;
    for (const auto &stage : q.stages) {
        StageDecision d;
        d.stageId = stage.id;
        std::string why;
        auto shape = analyze(stage.plan, why);
        if (shape) {
            d.shape = *shape;
            d.shapeValid = true;
        }
        if (out.regexForcedHost) {
            d.onDevice = false;
            d.reason = regex_why;
            d.reasonCode = obs::SuspendReason::StringHeapRegex;
        } else if (!shape) {
            d.onDevice = false;
            d.reason = why;
            d.reasonCode = obs::SuspendReason::UnsupportedOp;
        } else {
            d.onDevice = true;
            for (const auto &leaf : shape->leaves) {
                std::string leaf_why;
                if (!leaf.stageRef.empty()
                        && host_resident_stages.count(leaf.stageRef)) {
                    d.onDevice = false;
                    d.reason = "consumes stage '" + leaf.stageRef
                        + "' whose aggregate output is not buffered in "
                          "device DRAM (Sec. VI-E condition 1)";
                    d.reasonCode = obs::SuspendReason::MidPlanGroupBy;
                    break;
                }
                if (!checkLeafSupport(leaf, leaf_why)) {
                    d.onDevice = false;
                    d.reason = leaf_why;
                    // checkLeafSupport only rejects regex/LIKE cases
                    // today; anything else is a generic unsupported op.
                    d.reasonCode = leaf_why.find("regex") !=
                                           std::string::npos
                        || leaf_why.find("LIKE") != std::string::npos
                        ? obs::SuspendReason::StringHeapRegex
                        : obs::SuspendReason::UnsupportedOp;
                    break;
                }
            }
            if (d.onDevice && shape->groupBy) {
                for (const auto &a : shape->groupBy->aggregates) {
                    if (a.kind == AggKind::CountDistinct) {
                        d.onDevice = false;
                        d.reason = "count(distinct) has no SQL "
                                   "Swissknife accelerator";
                        d.reasonCode =
                            obs::SuspendReason::UnsupportedOp;
                        break;
                    }
                }
            }
        }
        // Track residency for later stages: device-resident only when
        // the stage ran on the device AND has no aggregate/top-k.
        bool aggregate_output = d.shapeValid
            && (d.shape.groupBy.has_value() || d.shape.limit >= 0
                || !d.shape.sortKeys.empty());
        if (!d.onDevice || aggregate_output)
            host_resident_stages.insert(stage.id);
        out.anyDeviceStage |= d.onDevice;
        out.stages.push_back(std::move(d));
    }
    return out;
}

} // namespace aquoman
