#include "aquoman/transform_compiler.hh"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/decimal.hh"
#include "relalg/eval.hh"

namespace aquoman {

namespace {

/**
 * Fold every all-constant subtree into a literal, using the reference
 * evaluator over a one-row dummy relation so folding semantics are
 * identical to runtime semantics.
 */
ExprPtr
foldConstants(const ExprPtr &e)
{
    if (!e || e->kind == ExprKind::ColRef || e->kind == ExprKind::Const
            || e->kind == ExprKind::ConstStr) {
        return e;
    }
    std::vector<std::string> cols;
    collectColumns(e, cols);
    if (cols.empty() && e->kind != ExprKind::Like) {
        RelTable dummy;
        RelColumn one("__one", ColumnType::Int64);
        one.push(1);
        dummy.addColumn(std::move(one));
        RelColumn v = evalExpr(e, dummy);
        auto folded = std::make_shared<Expr>();
        folded->kind = ExprKind::Const;
        folded->resultType = v.type;
        folded->constVal = v.get(0);
        return folded;
    }
    auto copy = std::make_shared<Expr>(*e);
    for (auto &c : copy->children)
        c = foldConstants(c);
    return copy;
}

/** One instruction over virtual registers (>=1). */
struct IrInstr
{
    PeOpcode op;
    int dst = 0;          ///< virtual register, or 0 for "emit to output"
    int src = 0;          ///< virtual register, or 0 for "read input FIFO"
    int operand = 0;      ///< RHS virtual register (0 = none / imm)
    bool useImm = false;
    std::int64_t imm = 0;
};

/** Lowering + code-generation state. */
class Codegen
{
  public:
    Codegen(const std::map<std::string, ColumnType> &schema_)
        : schema(schema_)
    {
    }

    /** Compile failed with @p reason. */
    struct Failure
    {
        std::string reason;
    };

    /**
     * Generate code for @p e. Returns the virtual register holding the
     * result and the value's type.
     */
    std::pair<int, ColumnType>
    gen(const ExprPtr &e)
    {
        std::string key = serialize(e);
        auto hit = cse.find(key);
        if (hit != cse.end())
            return hit->second;
        auto result = genUncached(e);
        cse.emplace(std::move(key), result);
        return result;
    }

    /**
     * Read an input column from the FIFO at its first use. The stream
     * order of input columns is defined as first-use order, so FIFO
     * pops always match arrival order.
     */
    std::pair<int, ColumnType>
    readInput(const std::string &column)
    {
        auto hit = inputRegs.find(column);
        if (hit != inputRegs.end())
            return hit->second;
        auto it = schema.find(column);
        if (it == schema.end())
            throw Failure{"unknown column '" + column + "'"};
        int vr = fresh();
        code.push_back({PeOpcode::Pass, vr, 0, 0, false, 0});
        inputRegs[column] = {vr, it->second};
        inputOrder.push_back(column);
        return {vr, it->second};
    }

    /** Emit the final value of @p e to the output FIFO. */
    ColumnType
    emitOutput(const ExprPtr &e)
    {
        auto [vr, type] = gen(e);
        code.push_back({PeOpcode::Pass, 0, vr, 0, false, 0});
        return type;
    }

    const std::vector<IrInstr> &instructions() const { return code; }
    const std::vector<std::string> &inputs() const { return inputOrder; }
    int numVirtualRegs() const { return nextReg; }

  private:
    int fresh() { return nextReg++; }

    /** ALU op with register LHS and either imm or register RHS. */
    int
    alu(PeOpcode op, int src, int operand_reg, bool use_imm,
        std::int64_t imm)
    {
        int vr = fresh();
        code.push_back({op, vr, src, operand_reg, use_imm, imm});
        return vr;
    }

    /** Materialise an immediate into a register: t = src*0 + imm. */
    int
    materializeImm(int any_reg, std::int64_t imm)
    {
        int t = alu(PeOpcode::Mul, any_reg, 0, true, 0);
        return alu(PeOpcode::Add, t, 0, true, imm);
    }

    static bool
    isDecimal(ColumnType t)
    {
        return t == ColumnType::Decimal;
    }

    /** Scale a value (or fold into an imm) from integer to decimal. */
    std::pair<int, std::int64_t>
    promote(int reg, bool is_imm, std::int64_t imm)
    {
        if (is_imm)
            return {reg, imm * kDecimalScale};
        return {alu(PeOpcode::Mul, reg, 0, true, kDecimalScale), imm};
    }

    struct Operand
    {
        bool isImm;
        std::int64_t imm;
        int reg;            // valid when !isImm
        ColumnType type;
    };

    Operand
    genOperand(const ExprPtr &e)
    {
        if (e->kind == ExprKind::Const)
            return {true, e->constVal, 0, e->resultType};
        if (e->kind == ExprKind::ConstStr)
            throw Failure{"unresolved string constant"};
        auto [vr, t] = gen(e);
        return {false, 0, vr, t};
    }

    /**
     * Emit `a OP b` where exactly the hardware forms are allowed:
     * reg OP imm, or reg OP opReg (Store b; OP a). Non-register LHS is
     * rewritten using commutativity / mirroring / materialisation.
     */
    int
    binary(PeOpcode op, Operand a, Operand b)
    {
        if (a.isImm && b.isImm)
            throw Failure{"constant folding left to the planner"};
        if (a.isImm) {
            // Mirror or materialise so the LHS is a register.
            switch (op) {
              case PeOpcode::Add:
              case PeOpcode::Mul:
              case PeOpcode::MulScaled:
              case PeOpcode::Eq:
                std::swap(a, b);
                break;
              case PeOpcode::Lt:
                op = PeOpcode::Gt;
                std::swap(a, b);
                break;
              case PeOpcode::Gt:
                op = PeOpcode::Lt;
                std::swap(a, b);
                break;
              case PeOpcode::Sub: {
                // c - x == (x - c) * -1
                int t = alu(PeOpcode::Sub, b.reg, 0, true, a.imm);
                return alu(PeOpcode::Mul, t, 0, true, -1);
              }
              default: {
                a = {false, 0, materializeImm(b.reg, a.imm), a.type};
                break;
              }
            }
        }
        if (b.isImm)
            return alu(op, a.reg, 0, true, b.imm);
        // Glued pair: Store pushes the RHS, the ALU pops it.
        code.push_back({PeOpcode::Store, -1, b.reg, 0, false, 0});
        return alu(op, a.reg, b.reg, false, 0);
    }

    std::pair<int, ColumnType>
    genUncached(const ExprPtr &e)
    {
        switch (e->kind) {
          case ExprKind::ColRef:
            return readInput(e->column);
          case ExprKind::Const: {
            // Bare constant output: materialise off any resident input.
            if (inputRegs.empty())
                throw Failure{"constant-only transform"};
            int any = inputRegs.begin()->second.first;
            return {materializeImm(any, e->constVal), e->resultType};
          }
          case ExprKind::Arith:
            return genArith(e);
          case ExprKind::Compare:
            return genCompare(e);
          case ExprKind::Logic: {
            auto [va, ta] = gen(e->children[0]);
            auto [vb, tb] = gen(e->children[1]);
            (void)ta;
            (void)tb;
            if (e->logicOp == LogicOp::And) {
                int r = binary(PeOpcode::Mul, {false, 0, va,
                                               ColumnType::Int32},
                               {false, 0, vb, ColumnType::Int32});
                return {r, ColumnType::Int32};
            }
            int s = binary(PeOpcode::Add,
                           {false, 0, va, ColumnType::Int32},
                           {false, 0, vb, ColumnType::Int32});
            return {alu(PeOpcode::Gt, s, 0, true, 0), ColumnType::Int32};
          }
          case ExprKind::Not: {
            auto [va, ta] = gen(e->children[0]);
            (void)ta;
            return {alu(PeOpcode::Eq, va, 0, true, 0), ColumnType::Int32};
          }
          case ExprKind::InList: {
            if (!e->listStrs.empty())
                throw Failure{"unresolved string IN-list"};
            auto [va, ta] = gen(e->children[0]);
            (void)ta;
            int acc = -1;
            for (std::int64_t v : e->listVals) {
                int hit = alu(PeOpcode::Eq, va, 0, true, v);
                if (acc < 0) {
                    acc = hit;
                } else {
                    acc = binary(PeOpcode::Add,
                                 {false, 0, acc, ColumnType::Int32},
                                 {false, 0, hit, ColumnType::Int32});
                }
            }
            if (acc < 0)
                throw Failure{"empty IN-list"};
            return {alu(PeOpcode::Gt, acc, 0, true, 0),
                    ColumnType::Int32};
          }
          case ExprKind::Case:
            return genCase(e);
          case ExprKind::Year: {
            auto [va, ta] = gen(e->children[0]);
            if (ta != ColumnType::Date)
                throw Failure{"year() over non-date"};
            return {alu(PeOpcode::Year, va, 0, true, 0),
                    ColumnType::Int64};
          }
          case ExprKind::Like:
            throw Failure{"LIKE must be resolved by the regex "
                          "accelerator before PE compilation"};
          case ExprKind::ConstStr:
            throw Failure{"unresolved string constant"};
        }
        throw Failure{"unknown expression kind"};
    }

    std::pair<int, ColumnType>
    genArith(const ExprPtr &e)
    {
        Operand a = genOperand(e->children[0]);
        Operand b = genOperand(e->children[1]);
        bool date_shift = a.type == ColumnType::Date
            && !isDecimal(b.type);
        bool dec = (isDecimal(a.type) || isDecimal(b.type)) && !date_shift;
        if (dec) {
            if (!isDecimal(a.type)) {
                auto [r, i] = promote(a.reg, a.isImm, a.imm);
                a.reg = r;
                a.imm = i;
                a.type = ColumnType::Decimal;
            }
            if (!isDecimal(b.type)) {
                auto [r, i] = promote(b.reg, b.isImm, b.imm);
                b.reg = r;
                b.imm = i;
                b.type = ColumnType::Decimal;
            }
        }
        PeOpcode op;
        ColumnType rt = dec ? ColumnType::Decimal
            : (date_shift ? ColumnType::Date : ColumnType::Int64);
        switch (e->arithOp) {
          case ArithOp::Add: op = PeOpcode::Add; break;
          case ArithOp::Sub:
            op = PeOpcode::Sub;
            if (a.type == ColumnType::Date && b.type == ColumnType::Date)
                rt = ColumnType::Int64;
            break;
          case ArithOp::Mul:
            op = dec ? PeOpcode::MulScaled : PeOpcode::Mul;
            break;
          case ArithOp::Div:
            op = dec ? PeOpcode::DivScaled : PeOpcode::Div;
            break;
          default:
            throw Failure{"bad arith op"};
        }
        return {binary(op, a, b), rt};
    }

    std::pair<int, ColumnType>
    genCompare(const ExprPtr &e)
    {
        Operand a = genOperand(e->children[0]);
        Operand b = genOperand(e->children[1]);
        if (isStringType(a.type) || isStringType(b.type)) {
            // Interned offsets support only (in)equality.
            if (e->cmpOp != CmpOp::Eq && e->cmpOp != CmpOp::Ne)
                throw Failure{"ordered string comparison"};
        }
        bool dec = isDecimal(a.type) || isDecimal(b.type);
        if (dec) {
            if (!isDecimal(a.type)) {
                auto [r, i] = promote(a.reg, a.isImm, a.imm);
                a.reg = r;
                a.imm = i;
            }
            if (!isDecimal(b.type)) {
                auto [r, i] = promote(b.reg, b.isImm, b.imm);
                b.reg = r;
                b.imm = i;
            }
        }
        auto direct = [&](PeOpcode op) {
            return binary(op, a, b);
        };
        auto negated = [&](PeOpcode op) {
            int t = binary(op, a, b);
            return alu(PeOpcode::Eq, t, 0, true, 0);
        };
        int r = 0;
        switch (e->cmpOp) {
          case CmpOp::Eq: r = direct(PeOpcode::Eq); break;
          case CmpOp::Lt: r = direct(PeOpcode::Lt); break;
          case CmpOp::Gt: r = direct(PeOpcode::Gt); break;
          case CmpOp::Ne: r = negated(PeOpcode::Eq); break;
          case CmpOp::Ge: r = negated(PeOpcode::Lt); break;
          case CmpOp::Le: r = negated(PeOpcode::Gt); break;
        }
        return {r, ColumnType::Int32};
    }

    std::pair<int, ColumnType>
    genCase(const ExprPtr &e)
    {
        // Fold right: case(w,t,rest) == w*t + (1-w)*rest. Boolean w is
        // 0/1 so plain Mul is exact for any value type. Constant arms
        // stay immediates for the multiplies.
        std::size_t arms = (e->children.size() - 1) / 2;
        Operand acc = genOperand(e->children.back());
        ColumnType result_t = acc.type;
        for (std::size_t i = arms; i-- > 0;) {
            auto [w, wt] = gen(e->children[2 * i]);
            (void)wt;
            Operand t = genOperand(e->children[2 * i + 1]);
            int notw = alu(PeOpcode::Eq, w, 0, true, 0);
            int lhs = binary(PeOpcode::Mul,
                             {false, 0, w, ColumnType::Int64}, t);
            int rhs = binary(PeOpcode::Mul,
                             {false, 0, notw, ColumnType::Int64}, acc);
            int sum = binary(PeOpcode::Add,
                             {false, 0, lhs, ColumnType::Int64},
                             {false, 0, rhs, ColumnType::Int64});
            acc = {false, 0, sum, t.type};
            result_t = t.type;
        }
        if (acc.isImm)
            throw Failure{"constant-only CASE"};
        return {acc.reg, result_t};
    }

    static std::string
    serialize(const ExprPtr &e)
    {
        std::ostringstream os;
        serializeInto(e, os);
        return os.str();
    }

    static void
    serializeInto(const ExprPtr &e, std::ostringstream &os)
    {
        os << static_cast<int>(e->kind) << "(";
        switch (e->kind) {
          case ExprKind::ColRef: os << e->column; break;
          case ExprKind::Const:
            os << e->constVal << ":" << static_cast<int>(e->resultType);
            break;
          case ExprKind::Arith: os << static_cast<int>(e->arithOp); break;
          case ExprKind::Compare: os << static_cast<int>(e->cmpOp); break;
          case ExprKind::Logic: os << static_cast<int>(e->logicOp); break;
          case ExprKind::InList:
            for (auto v : e->listVals)
                os << v << ",";
            break;
          default: break;
        }
        for (const auto &c : e->children) {
            os << ",";
            serializeInto(c, os);
        }
        os << ")";
    }

    const std::map<std::string, ColumnType> &schema;
    std::vector<IrInstr> code;
    std::unordered_map<std::string, std::pair<int, ColumnType>> cse;
    std::map<std::string, std::pair<int, ColumnType>> inputRegs;
    std::vector<std::string> inputOrder;
    int nextReg = 1;
};

/**
 * Emit the whole program onto one "wide" PE with a direct virtual-to-
 * physical register mapping. Used as the simulator's elastic fallback
 * when a transform cannot be register-allocated into ISA-sized PEs.
 */
std::vector<std::vector<PeInstruction>>
emitWide(const std::vector<IrInstr> &code, int &total_instructions)
{
    std::vector<PeInstruction> prog;
    for (const IrInstr &ins : code) {
        PeInstruction out;
        out.op = ins.op;
        out.useImm = ins.useImm;
        out.imm = ins.imm;
        out.rs = ins.src;
        out.rd = ins.op == PeOpcode::Store ? 0 : ins.dst;
        prog.push_back(out);
    }
    total_instructions = static_cast<int>(prog.size());
    return {std::move(prog)};
}

/**
 * Partition the linear virtual-register program into per-PE chunks and
 * allocate physical registers. Live values cross chunk boundaries
 * through the inter-PE FIFOs (epilogue/prologue PASS pairs, ascending
 * vreg order); raw input-column values not yet consumed are passed
 * through with register-free `Pass r0, r0` instructions.
 *
 * Returns empty when some chunk cannot fit the 7-register file; the
 * caller then falls back to emitWide.
 */
std::vector<std::vector<PeInstruction>>
partition(const std::vector<IrInstr> &code, int num_vregs, int slots,
          int &total_instructions)
{
    std::int64_t n = static_cast<std::int64_t>(code.size());
    std::vector<std::int64_t> def(num_vregs + 1, -1);
    std::vector<std::int64_t> last_use(num_vregs + 1, -1);
    std::vector<std::int64_t> inputs_before(n + 1, 0);
    std::vector<std::int64_t> emits_before(n + 1, 0);
    for (std::int64_t i = 0; i < n; ++i) {
        const IrInstr &ins = code[i];
        if (ins.dst > 0 && def[ins.dst] < 0)
            def[ins.dst] = i;
        if (ins.src > 0)
            last_use[ins.src] = i;
        if (!ins.useImm && ins.operand > 0)
            last_use[ins.operand] = i;
        inputs_before[i + 1] = inputs_before[i] + (ins.src == 0 ? 1 : 0);
        emits_before[i + 1] = emits_before[i]
            + (ins.dst == 0 && ins.op != PeOpcode::Store ? 1 : 0);
    }
    const std::int64_t total_inputs = inputs_before[n];

    /** Values live across point p (defined at/before, used at/after). */
    auto live_at = [&](std::int64_t p) {
        int live = 0;
        for (int v = 1; v <= num_vregs; ++v)
            if (def[v] >= 0 && def[v] <= p && last_use[v] > p)
                ++live;
        return live;
    };

    std::vector<std::vector<PeInstruction>> pes;
    std::int64_t start = 0;
    total_instructions = 0;
    while (start < n) {
        std::vector<int> live_in;
        for (int v = 1; v <= num_vregs; ++v)
            if (def[v] >= 0 && def[v] < start && last_use[v] >= start)
                live_in.push_back(v);

        // Grow the chunk while register pressure and slots permit.
        std::int64_t end = start;
        while (end < n) {
            std::int64_t candidate = end + 1;
            // Keep Store glued to its consumer ALU.
            while (candidate < n
                       && code[candidate - 1].op == PeOpcode::Store)
                ++candidate;
            int max_live = static_cast<int>(live_in.size());
            for (std::int64_t p = start; p < candidate; ++p)
                max_live = std::max(max_live, live_at(p));
            int live_out = 0;
            for (int v = 1; v <= num_vregs; ++v)
                if (def[v] >= 0 && def[v] < candidate
                        && last_use[v] >= candidate)
                    ++live_out;
            std::int64_t raw_pass = total_inputs
                - inputs_before[candidate];
            std::int64_t cost = emits_before[start]
                + static_cast<std::int64_t>(live_in.size())
                + (candidate - start) + live_out + raw_pass;
            if (max_live > kPeRegisters - 1
                    || (cost > slots && end > start)) {
                break;
            }
            if (max_live <= kPeRegisters - 1 && cost <= slots) {
                end = candidate;
            } else {
                // Even the minimal chunk violates a budget.
                if (max_live > kPeRegisters - 1)
                    return {};
                end = candidate; // oversized single group: accept
                break;
            }
        }
        if (end == start)
            return {}; // pressure violation on the first group

        // Physical register allocation for [start, end).
        std::vector<PeInstruction> prog;
        std::map<int, int> phys;
        std::vector<bool> in_use(kPeRegisters, false);
        auto alloc = [&](int vreg) -> int {
            for (int r = 1; r < kPeRegisters; ++r) {
                if (!in_use[r]) {
                    in_use[r] = true;
                    phys[vreg] = r;
                    return r;
                }
            }
            return -1;
        };
        bool overflow = false;
        auto release_dead = [&](std::int64_t now) {
            for (auto it = phys.begin(); it != phys.end();) {
                if (last_use[it->first] >= 0 && last_use[it->first] <= now
                        && last_use[it->first] < end) {
                    in_use[it->second] = false;
                    it = phys.erase(it);
                } else {
                    ++it;
                }
            }
        };

        // Prologue part 1: pass already-emitted output values through
        // (they sit at the head of this PE's input FIFO).
        for (std::int64_t e = 0; e < emits_before[start]; ++e)
            prog.push_back({PeOpcode::Pass, 0, 0, false, 0});
        // Prologue part 2: load live-in values (ascending vreg order).
        for (int v : live_in) {
            if (alloc(v) < 0)
                return {};
        }
        for (std::size_t k = 0; k < live_in.size(); ++k)
            prog.push_back({PeOpcode::Pass, phys[live_in[k]], 0,
                            false, 0});

        for (std::int64_t p = start; p < end && !overflow; ++p) {
            const IrInstr &ins = code[p];
            auto src_of = [&](int vreg) {
                auto it = phys.find(vreg);
                AQ_ASSERT(it != phys.end(), "vreg ", vreg,
                          " not resident");
                return it->second;
            };
            PeInstruction out;
            out.op = ins.op;
            out.useImm = ins.useImm;
            out.imm = ins.imm;
            out.rs = ins.src == 0 ? 0 : src_of(ins.src);
            if (ins.op == PeOpcode::Store) {
                out.rd = 0;
                prog.push_back(out);
                continue;
            }
            release_dead(p);
            if (ins.dst == 0) {
                out.rd = 0;
            } else if (phys.count(ins.dst)) {
                out.rd = phys[ins.dst];
            } else {
                int r = alloc(ins.dst);
                if (r < 0) {
                    overflow = true;
                    break;
                }
                out.rd = r;
            }
            prog.push_back(out);
        }
        if (overflow)
            return {};

        // Epilogue: live-out vregs (ascending), then raw passthroughs.
        for (int v = 1; v <= num_vregs; ++v) {
            if (def[v] >= 0 && def[v] < end && last_use[v] >= end) {
                auto it = phys.find(v);
                AQ_ASSERT(it != phys.end(), "live-out vreg ", v,
                          " not resident");
                prog.push_back({PeOpcode::Pass, 0, it->second, false, 0});
            }
        }
        for (std::int64_t r = 0; r < total_inputs - inputs_before[end];
             ++r) {
            prog.push_back({PeOpcode::Pass, 0, 0, false, 0});
        }
        total_instructions += static_cast<int>(prog.size());
        pes.push_back(std::move(prog));
        start = end;
    }
    return pes;
}

} // namespace

TransformResult
compileTransform(const std::vector<NamedExpr> &outputs,
                 const std::map<std::string, ColumnType> &schema,
                 const AquomanConfig &cfg, bool elastic)
{
    TransformResult result;
    Codegen cg(schema);
    try {
        CompiledTransform ct;
        for (const auto &ne : outputs) {
            ct.outputNames.push_back(ne.name);
            ct.outputTypes.push_back(cg.emitOutput(foldConstants(ne.expr)));
        }
        ct.inputColumns = cg.inputs();
        int total = 0;
        ct.programs = partition(cg.instructions(), cg.numVirtualRegs(),
                                cfg.peInstructionSlots, total);
        bool wide = ct.programs.empty();
        if (wide) {
            ct.programs = emitWide(cg.instructions(), total);
        }
        ct.totalInstructions = total;
        ct.fitsFpgaProfile = !wide
            && static_cast<int>(ct.programs.size())
                <= cfg.numProcessingEngines;
        for (const auto &p : ct.programs) {
            if (static_cast<int>(p.size()) > cfg.peInstructionSlots)
                ct.fitsFpgaProfile = false;
        }
        if (!elastic && !ct.fitsFpgaProfile) {
            result.error = "transform does not fit the FPGA profile ("
                + std::to_string(ct.programs.size()) + " PEs, longest "
                + "program "
                + std::to_string(SystolicArray(ct.programs)
                                     .maxProgramLength())
                + " slots)";
            return result;
        }
        result.program = std::move(ct);
    } catch (const Codegen::Failure &f) {
        result.error = f.reason;
    }
    return result;
}

} // namespace aquoman
