/**
 * @file
 * Static configuration of one AQUOMAN device instance. Defaults follow
 * the paper's FPGA prototype (Sec. VII) and simulator (Sec. VIII-A):
 * 125MHz / 4GB/s pipeline fed by a 2.4GB/s flash card, 4 Column
 * Predicate Evaluators, 4 PEs with 8-instruction memories, a 1024-bucket
 * Aggregate Group-By with 16B group identifiers, a 1MB regex-accelerator
 * string cache, and a 1GB-block streaming sorter.
 */

#ifndef AQUOMAN_AQUOMAN_CONFIG_HH
#define AQUOMAN_AQUOMAN_CONFIG_HH

#include <cstdint>
#include <string>

namespace aquoman {

/** AQUOMAN device parameters (Table VI + Sec. VII). */
struct AquomanConfig
{
    /** Device DRAM for intermediate tables (paper: 40GB / 16GB). */
    std::int64_t dramBytes = 40ll << 30;

    /** Peak processing rate of the fixed pipeline in bytes/second. */
    double processingRate = 4.0e9;

    /** Pipeline clock in Hz (125MHz on the VCU108 prototype). */
    double clockHz = 125e6;

    /** Column Predicate Evaluators in the Row Selector. */
    int numPredicateEvaluators = 4;

    /** Processing engines in the Row Transformer systolic array. */
    int numProcessingEngines = 4;

    /** Instruction-memory slots per PE. */
    int peInstructionSlots = 8;

    /** Buckets in the Aggregate Group-By hash table. */
    int groupByBuckets = 1024;

    /** Maximum group-identifier size in bytes. */
    int groupIdBytes = 16;

    /** Aggregate columns one bucket slot can hold. */
    int aggSlotsPerBucket = 8;

    /** Regex-accelerator string-heap cache (Sec. VI-B). */
    std::int64_t regexCacheBytes = 1 << 20;

    /** Streaming-sorter block size (1GB in hardware; tests shrink it). */
    std::int64_t sorterBlockBytes = 1ll << 30;

    /** Fan-in of each merger layer in the streaming sorter. */
    int sorterMergeFanIn = 256;

    /** Row-Mask Vector circular buffer capacity in bytes. */
    std::int64_t rowMaskBufferBytes = 256 << 10;

    /** Depth of the flash command queue feeding the pipeline. */
    int flashQueueDepth = 128;

    /**
     * Ratio between the paper's SF-1000 dataset and the simulated one
     * (1000 / sf). Used by the memory model to size RowID
     * representations as they would be at the paper's scale while
     * running functionally on a smaller dataset.
     */
    double paperScaleRatio = 1.0;

    /**
     * Label naming this device run's simulation-trace tracks (e.g.
     * "q6#3" in the service, "q6 dram40" in the benches). Empty falls
     * back to the query name.
     */
    std::string traceLabel;

    /** The paper's AQUOMAN setup: 40GB device DRAM. */
    static AquomanConfig
    paper40()
    {
        return AquomanConfig{};
    }

    /** The paper's AQUOMAN16 setup: 16GB device DRAM. */
    static AquomanConfig
    paper16()
    {
        AquomanConfig c;
        c.dramBytes = 16ll << 30;
        return c;
    }
};

} // namespace aquoman

#endif // AQUOMAN_AQUOMAN_CONFIG_HH
