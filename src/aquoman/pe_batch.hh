/**
 * @file
 * Columnar batch execution of Row Transformation Programs. A PE
 * program's per-row FIFO read/write sequence is static (no branches),
 * so one symbolic pass over the instruction memories turns the whole
 * systolic array into a DAG of value definitions that can execute
 * column-at-a-time over flat int64 buffers — no deques, one tight loop
 * per operation per morsel.
 *
 * The compilation is conservative: any program whose semantics depend
 * on state carried between rows (a register read before its first
 * write of the row, an operand FIFO that is popped empty or left
 * non-empty at end of row) is NOT vectorizable, and the kernel falls
 * back to the scalar SystolicArray interpreter internally, preserving
 * bit-identical behaviour — including panics on FIFO underflow. The
 * scalar interpreter therefore stays the semantic oracle; the batch
 * kernel is only ever a faster way to run the same program.
 */

#ifndef AQUOMAN_AQUOMAN_PE_BATCH_HH
#define AQUOMAN_AQUOMAN_PE_BATCH_HH

#include <cstdint>
#include <vector>

#include "aquoman/pe.hh"

namespace aquoman {

/** Rows per batch-kernel morsel (contiguous flat-buffer runs). */
constexpr std::int64_t kPeBatchRows = 16384;

/** A systolic-array program compiled for column-at-a-time execution. */
class PeBatchKernel
{
  public:
    /**
     * Compile @p programs (one instruction memory per PE, chained
     * through their FIFOs) for batch execution over @p num_inputs
     * input columns per row.
     */
    PeBatchKernel(const std::vector<std::vector<PeInstruction>> &programs,
                  int num_inputs);

    /** False when the program needs the scalar fallback. */
    bool vectorizable() const { return vectorizable_; }

    /** Output values the array produces per row (vectorizable only). */
    int numOutputs() const { return static_cast<int>(outputs_.size()); }

    /**
     * Execute rows [0, n): value r of input column i is
     * inputs[i][r]; output column o is written to outputs[o][0..n).
     * @param num_outputs output columns the caller consumes per row
     */
    void run(const std::int64_t *const *inputs, std::int64_t n,
             std::int64_t *const *outputs, int num_outputs);

  private:
    /** One symbolic per-row value (SSA-style definition). */
    struct Val
    {
        enum class Kind : std::uint8_t { Input, Zero, Op };
        Kind kind = Kind::Zero;
        int input = -1;               ///< Kind::Input: input column
        PeOpcode op = PeOpcode::Pass; ///< Kind::Op
        int a = -1;                   ///< left operand value id
        int b = -1;                   ///< right operand id (-1: imm/unary)
        bool useImm = false;
        std::int64_t imm = 0;
        int buf = -1;                 ///< scratch buffer (Kind::Op)
    };

    bool compile(const std::vector<std::vector<PeInstruction>> &programs);
    void runScalar(const std::int64_t *const *inputs, std::int64_t n,
                   std::int64_t *const *outputs, int num_outputs);

    int numInputs_ = 0;
    bool vectorizable_ = false;
    std::vector<Val> vals_;
    std::vector<int> outputs_; ///< value ids of the last PE's out FIFO
    int numBuffers_ = 0;
    std::vector<std::vector<std::int64_t>> scratch_;

    /// Scalar fallback: the reference interpreter, with its cross-row
    /// register/opReg state preserved across run() calls.
    SystolicArray fallback_;
    std::vector<std::int64_t> rowIn_, rowOut_;
};

} // namespace aquoman

#endif // AQUOMAN_AQUOMAN_PE_BATCH_HH
