/**
 * @file
 * Columnar batch execution of Row Transformation Programs. A PE
 * program's per-row FIFO read/write sequence is static (no branches),
 * so one symbolic pass over the instruction memories turns the whole
 * systolic array into a DAG of value definitions that can execute
 * column-at-a-time over flat int64 buffers — no deques, one tight loop
 * per operation per morsel.
 *
 * The compilation is conservative: any program whose semantics depend
 * on state carried between rows (a register read before its first
 * write of the row, an operand FIFO that is popped empty or left
 * non-empty at end of row) is NOT vectorizable, and the kernel falls
 * back to the scalar SystolicArray interpreter internally, preserving
 * bit-identical behaviour — including panics on FIFO underflow. The
 * scalar interpreter therefore stays the semantic oracle; the batch
 * kernel is only ever a faster way to run the same program.
 *
 * Each DAG value is lowered once, at compile time, to a specialized
 * kernel function: one template instantiation per (opcode × operand
 * shape), so run() is a loop over precompiled function pointers with
 * no per-morsel opcode dispatch (DESIGN.md §16). Ops with an AVX2
 * vector form additionally pick an explicit intrinsic variant behind
 * the avx2Available() CPUID check.
 */

#ifndef AQUOMAN_AQUOMAN_PE_BATCH_HH
#define AQUOMAN_AQUOMAN_PE_BATCH_HH

#include <cstdint>
#include <vector>

#include "aquoman/pe.hh"

namespace aquoman {

/** Default rows per batch-kernel morsel (contiguous flat-buffer runs).
 *  16K won the 4K–64K sweep (`micro_components --morsel-sweep`): big
 *  enough to amortize per-morsel setup, small enough that one input
 *  column plus the kernel scratch stays L2-resident. */
constexpr std::int64_t kPeBatchRows = 16384;

/**
 * Effective batch-morsel row count: kPeBatchRows unless overridden via
 * the AQUOMAN_MORSEL environment variable (clamped to [1024, 1M]).
 * Morsel size is a pure performance knob — results are bit-identical
 * at any value, as the kernels carry no cross-morsel state and the
 * scalar fallback processes rows in order regardless of the split.
 */
std::int64_t peBatchMorselRows();

/** Test hook: force the morsel size (0 restores the env/default). */
void setPeBatchMorselRows(std::int64_t rows);

/** A systolic-array program compiled for column-at-a-time execution. */
class PeBatchKernel
{
  public:
    /**
     * Compile @p programs (one instruction memory per PE, chained
     * through their FIFOs) for batch execution over @p num_inputs
     * input columns per row.
     */
    PeBatchKernel(const std::vector<std::vector<PeInstruction>> &programs,
                  int num_inputs);

    /** False when the program needs the scalar fallback. */
    bool vectorizable() const { return vectorizable_; }

    /** Output values the array produces per row (vectorizable only). */
    int numOutputs() const { return static_cast<int>(outputs_.size()); }

    /**
     * Execute rows [0, n): value r of input column i is
     * inputs[i][r]; output column o is written to outputs[o][0..n).
     * @param num_outputs output columns the caller consumes per row
     */
    void run(const std::int64_t *const *inputs, std::int64_t n,
             std::int64_t *const *outputs, int num_outputs);

    /**
     * Specialized inner loop for one DAG value: writes n results to
     * dst from (a_ptr | a_const) op (b_ptr | b_const). The operand
     * shape (column vs constant) and opcode are baked into the
     * function at compile time via template instantiation.
     */
    using KernelFn = void (*)(std::int64_t *dst, const std::int64_t *a,
                              std::int64_t ac, const std::int64_t *b,
                              std::int64_t bc, std::int64_t n);

  private:
    /** One symbolic per-row value (SSA-style definition). */
    struct Val
    {
        enum class Kind : std::uint8_t { Input, Zero, Op };
        Kind kind = Kind::Zero;
        int input = -1;               ///< Kind::Input: input column
        PeOpcode op = PeOpcode::Pass; ///< Kind::Op
        int a = -1;                   ///< left operand value id
        int b = -1;                   ///< right operand id (-1: imm/unary)
        bool useImm = false;
        std::int64_t imm = 0;
        int buf = -1;                 ///< scratch buffer (Kind::Op)
    };

    /** Run-time operand source: input column, scratch buffer, or
     *  constant (the shape is already baked into the kernel). */
    struct Src
    {
        int input = -1; ///< input column index, or -1
        int buf = -1;   ///< scratch buffer index, or -1
        std::int64_t c = 0;
    };

    /** One precompiled op: kernel pointer + resolved operand sources. */
    struct Step
    {
        KernelFn fn = nullptr;
        int dstBuf = -1;
        Src a, b;
    };

    bool compile(const std::vector<std::vector<PeInstruction>> &programs);
    void buildSteps();
    void runScalar(const std::int64_t *const *inputs, std::int64_t n,
                   std::int64_t *const *outputs, int num_outputs);

    int numInputs_ = 0;
    bool vectorizable_ = false;
    std::vector<Val> vals_;
    std::vector<Step> steps_;  ///< one per Kind::Op val, definition order
    std::vector<int> outputs_; ///< value ids of the last PE's out FIFO
    int numBuffers_ = 0;
    std::vector<std::vector<std::int64_t>> scratch_;

    /// Scalar fallback: the reference interpreter, with its cross-row
    /// register/opReg state preserved across run() calls.
    SystolicArray fallback_;
    std::vector<std::int64_t> rowIn_, rowOut_;
};

} // namespace aquoman

#endif // AQUOMAN_AQUOMAN_PE_BATCH_HH
