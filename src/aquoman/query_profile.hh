/**
 * @file
 * Builds the EXPLAIN-ANALYZE cost-attribution tree for one offloaded
 * query from the artefacts a run already produces: the Table-Task
 * compiler's per-stage decisions, the device executor's structured
 * Table-Task ledger, and the host-phase estimate. The tree's pre-order
 * leaf seconds reproduce modelled deviceSeconds plus host seconds
 * bitwise (see obs::QueryProfile::totalSeconds).
 */

#ifndef AQUOMAN_AQUOMAN_QUERY_PROFILE_HH
#define AQUOMAN_AQUOMAN_QUERY_PROFILE_HH

#include <string>

#include "aquoman/device.hh"
#include "obs/profile.hh"

namespace aquoman {

/**
 * The modelled host phase of an offloaded query, split the same way
 * perf_model.hh's evaluateOffload computes it: residual x86 runtime
 * plus result/intermediate DMA over the controller switch.
 */
struct HostPhaseProfile
{
    double hostSeconds = 0.0;  ///< HostModel::estimate(...).runtime
    double dmaSeconds = 0.0;   ///< dmaBytes / storage read bandwidth
    std::int64_t dmaBytes = 0;
    /// Base-table bytes the host pulled through its switch port to
    /// finish suspended stages (informational).
    std::int64_t hostBytes = 0;
};

/**
 * Query-level suspension classification: runtime DRAM overflow wins,
 * then the compiler's whole-query regex verdict, then the first
 * structured stage suspension, then group spill-over.
 */
obs::SuspendReason classifyQuerySuspension(const QueryCompilation &comp,
                                           const AquomanRunStats &stats);

/**
 * Assemble the profile tree. @p offload_class is the caller's label
 * ("full"/"partial"/"none"); empty derives it from the run: no device
 * tasks -> none, any suspension or spill -> partial, else full.
 */
obs::QueryProfile buildQueryProfile(const std::string &query_name,
                                    const QueryCompilation &comp,
                                    const AquomanRunStats &stats,
                                    const HostPhaseProfile &host,
                                    const std::string &offload_class = "");

} // namespace aquoman

#endif // AQUOMAN_AQUOMAN_QUERY_PROFILE_HH
