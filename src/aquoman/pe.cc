#include "aquoman/pe.hh"

#include <sstream>

#include "common/date.hh"
#include "common/decimal.hh"

namespace aquoman {

const char *
peOpcodeName(PeOpcode op)
{
    switch (op) {
      case PeOpcode::Pass:      return "pass";
      case PeOpcode::Copy:      return "copy";
      case PeOpcode::Store:     return "store";
      case PeOpcode::Add:       return "add";
      case PeOpcode::Sub:       return "sub";
      case PeOpcode::Mul:       return "mul";
      case PeOpcode::Div:       return "div";
      case PeOpcode::Eq:        return "eq";
      case PeOpcode::Lt:        return "lt";
      case PeOpcode::Gt:        return "gt";
      case PeOpcode::MulScaled: return "muls";
      case PeOpcode::DivScaled: return "divs";
      case PeOpcode::Year:      return "year";
    }
    return "?";
}

std::string
PeInstruction::toString() const
{
    std::ostringstream os;
    os << peOpcodeName(op) << " r" << rd << ", r" << rs;
    if (useImm)
        os << ", #" << imm;
    return os.str();
}

void
Pe::runRow(std::deque<std::int64_t> &in, std::deque<std::int64_t> &out)
{
    auto read_rs = [&](int rs) -> std::int64_t {
        if (rs == 0) {
            AQ_ASSERT(!in.empty(), "PE input FIFO underflow");
            std::int64_t v = in.front();
            in.pop_front();
            return v;
        }
        return regs[rs];
    };
    auto write_rd = [&](int rd, std::int64_t v) {
        if (rd == 0)
            out.push_back(v);
        else
            regs[rd] = v;
    };
    for (const PeInstruction &i : program) {
        switch (i.op) {
          case PeOpcode::Pass:
            write_rd(i.rd, read_rs(i.rs));
            break;
          case PeOpcode::Copy: {
            std::int64_t v = read_rs(i.rs);
            write_rd(i.rd, v);
            opReg.push_back(v);
            break;
          }
          case PeOpcode::Store:
            opReg.push_back(read_rs(i.rs));
            break;
          default: {
            std::int64_t a = read_rs(i.rs);
            std::int64_t b;
            if (i.useImm) {
                b = i.imm;
            } else if (i.op == PeOpcode::Year) {
                b = 0; // unary
            } else {
                AQ_ASSERT(!opReg.empty(), "PE operand FIFO underflow");
                b = opReg.front();
                opReg.pop_front();
            }
            std::int64_t r = 0;
            switch (i.op) {
              case PeOpcode::Add: r = a + b; break;
              case PeOpcode::Sub: r = a - b; break;
              case PeOpcode::Mul: r = a * b; break;
              case PeOpcode::Div: r = peDiv(a, b); break;
              case PeOpcode::Eq:  r = a == b; break;
              case PeOpcode::Lt:  r = a < b; break;
              case PeOpcode::Gt:  r = a > b; break;
              case PeOpcode::MulScaled: r = decimalMul(a, b); break;
              case PeOpcode::DivScaled: r = decimalDiv(a, b); break;
              case PeOpcode::Year:
                r = civilFromDays(static_cast<std::int32_t>(a)).year;
                break;
              default:
                panic("unreachable PE opcode");
            }
            write_rd(i.rd, r);
            break;
          }
        }
    }
}

SystolicArray::SystolicArray(std::vector<std::vector<PeInstruction>> progs)
{
    AQ_ASSERT(!progs.empty(), "systolic array needs at least one PE");
    pes.resize(progs.size());
    for (std::size_t i = 0; i < progs.size(); ++i)
        pes[i].loadProgram(std::move(progs[i]));
}

int
SystolicArray::maxProgramLength() const
{
    int best = 0;
    for (const Pe &pe : pes)
        best = std::max(best, static_cast<int>(pe.instructions().size()));
    return best;
}

void
SystolicArray::runRow(const std::vector<std::int64_t> &inputs,
                      std::vector<std::int64_t> &outputs)
{
    std::deque<std::int64_t> fifo(inputs.begin(), inputs.end());
    std::deque<std::int64_t> next;
    for (Pe &pe : pes) {
        next.clear();
        pe.runRow(fifo, next);
        fifo.swap(next);
    }
    outputs.assign(fifo.begin(), fifo.end());
}

} // namespace aquoman
