/**
 * @file
 * Row Transformer Processing Engine (Sec. VI-B, Table II). A PE is a
 * 4-stage vector processor with no branches and no data memory: seven
 * general-purpose registers rf[1..7], an operand FIFO (opReg), and a
 * special register rf[0] hardwired to the input FIFO on reads and the
 * output FIFO on writes. The program counter runs the instruction
 * memory once per row and rolls back to zero.
 *
 * Two model extensions over the published ISA, both documented in
 * DESIGN.md: MulScaled/DivScaled are the fixed-point rescaling forms of
 * Mul/Div used for decimal columns (the FPGA implements the rescale in
 * the same DSP pipeline), and Year is the calendar-year extraction the
 * date-handling unit provides.
 */

#ifndef AQUOMAN_AQUOMAN_PE_HH
#define AQUOMAN_AQUOMAN_PE_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace aquoman {

/**
 * PE integer division: divide-by-zero yields 0 (the hardware's
 * saturating behaviour), and INT64_MIN / -1 saturates to INT64_MIN
 * instead of trapping. Shared by the scalar interpreter and the batch
 * kernel so both paths stay bit-identical on every input.
 */
constexpr std::int64_t
peDiv(std::int64_t a, std::int64_t b)
{
    if (b == 0)
        return 0;
    if (b == -1 && a == std::numeric_limits<std::int64_t>::min())
        return a;
    return a / b;
}

/** PE opcodes (Table II plus the documented extensions). */
enum class PeOpcode : std::uint8_t
{
    Pass,      ///< rf[rd] <= rf[rs]
    Copy,      ///< rf[rd] <= rf[rs]; opReg <= rf[rs]
    Store,     ///< opReg <= rf[rs]
    Add,       ///< rf[rd] <= rf[rs] + <opReg|imm>
    Sub,       ///< rf[rd] <= rf[rs] - <opReg|imm>
    Mul,       ///< rf[rd] <= rf[rs] * <opReg|imm>
    Div,       ///< rf[rd] <= rf[rs] / <opReg|imm>
    Eq,        ///< rf[rd] <= rf[rs] == <opReg|imm>
    Lt,        ///< rf[rd] <= rf[rs] < <opReg|imm>
    Gt,        ///< rf[rd] <= rf[rs] > <opReg|imm>
    MulScaled, ///< fixed-point: rf[rd] <= rf[rs] * x / 100
    DivScaled, ///< fixed-point: rf[rd] <= rf[rs] * 100 / x
    Year,      ///< rf[rd] <= year(rf[rs])
};

/** Mnemonic of @p op. */
const char *peOpcodeName(PeOpcode op);

/** One 32-bit PE instruction (decoded form). */
struct PeInstruction
{
    PeOpcode op = PeOpcode::Pass;
    int rd = 0;     ///< destination register (0 = output FIFO)
    int rs = 0;     ///< source register (0 = input FIFO)
    bool useImm = false;
    std::int64_t imm = 0;

    std::string toString() const;
};

/** Number of registers in a PE register file (rf[0] is the FIFO). */
constexpr int kPeRegisters = 8;

/**
 * Functional model of one PE. Executes its instruction memory once per
 * row, popping inputs from @c in and pushing results to @c out.
 */
class Pe
{
  public:
    /**
     * Load the instruction memory. The register file is sized to the
     * program: kPeRegisters for ISA-conformant programs, wider for the
     * simulator's elastic "as big as needed" mode (Sec. VII).
     */
    void
    loadProgram(std::vector<PeInstruction> prog)
    {
        program = std::move(prog);
        int max_reg = kPeRegisters - 1;
        for (const auto &i : program)
            max_reg = std::max({max_reg, i.rd, i.rs});
        regs.assign(max_reg + 1, 0);
    }

    const std::vector<PeInstruction> &instructions() const
    {
        return program;
    }

    /**
     * Run the program once (one row): reads operands from @p in (in
     * order), appends outputs to @p out.
     */
    void runRow(std::deque<std::int64_t> &in,
                std::deque<std::int64_t> &out);

  private:
    std::vector<PeInstruction> program;
    std::vector<std::int64_t> regs;
    std::deque<std::int64_t> opReg;
};

/**
 * The Row Transformer systolic array: a chain of PEs where each PE's
 * output FIFO feeds the next PE's input FIFO. The first PE consumes the
 * row's input column values; the last PE's outputs are the row of the
 * intermediate table.
 */
class SystolicArray
{
  public:
    /** Build a chain of per-PE programs. */
    explicit SystolicArray(std::vector<std::vector<PeInstruction>> progs);

    int numPes() const { return static_cast<int>(pes.size()); }

    /** Instructions loaded into PE @p i. */
    const std::vector<PeInstruction> &
    program(int i) const
    {
        return pes.at(i).instructions();
    }

    /** Longest per-PE program (the array's per-row cycle bound). */
    int maxProgramLength() const;

    /**
     * Push one row of input values through the chain.
     * @param inputs input column values, leftmost column first
     * @param outputs produced intermediate-row values
     */
    void runRow(const std::vector<std::int64_t> &inputs,
                std::vector<std::int64_t> &outputs);

  private:
    std::vector<Pe> pes;
};

} // namespace aquoman

#endif // AQUOMAN_AQUOMAN_PE_HH
