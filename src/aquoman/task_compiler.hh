/**
 * @file
 * The AQUOMAN Table-Task compiler (Sec. V / VI-D / VI-E). Given a query
 * plan, it (a) normalises each stage into the shape the fixed pipeline
 * executes — leaf scans with predicates, a join tree, an optional final
 * aggregate, post-ops — and (b) decides offloadability:
 *
 *  - LIKE over a string column whose heap exceeds the 1MB regex cache
 *    makes the whole query host-executed (paper: q9, q13, q16, q20);
 *  - an Aggregate Group-By / TopK output is never buffered in device
 *    DRAM, so stages consuming one run on the host (paper: q11, q17,
 *    q18, q22 suspend mid-query);
 *  - unsupported operators (outer join, count-distinct, ordered string
 *    comparisons) fall back to the host.
 */

#ifndef AQUOMAN_AQUOMAN_TASK_COMPILER_HH
#define AQUOMAN_AQUOMAN_TASK_COMPILER_HH

#include <optional>
#include <string>
#include <vector>

#include "aquoman/config.hh"
#include "obs/profile.hh"
#include "columnstore/catalog.hh"
#include "relalg/plan.hh"

namespace aquoman {

/** A Filter or Project applied within a leaf / above a group-by. */
struct StageOp
{
    enum class Kind { Filter, Project };
    Kind kind;
    ExprPtr predicate;                 ///< Filter
    std::vector<NamedExpr> projections; ///< Project
};

/** One input of a stage's join tree. */
struct LeafInfo
{
    std::string table;    ///< base table ("" when a stage reference)
    std::string stageRef; ///< prior stage id ("" when a base table)
    std::string alias;    ///< column-name prefix
    std::vector<std::string> columns; ///< pruned scan columns
    /** Filters/projects between the scan and the join, bottom-up. */
    std::vector<StageOp> ops;
};

/** A node of the normalised join tree. */
struct ShapeNode
{
    bool isLeaf = false;
    int leaf = -1;       ///< index into StageShape::leaves
    JoinType joinType = JoinType::Inner;
    int left = -1;       ///< node index
    int right = -1;      ///< node index
    std::vector<std::string> leftKeys;
    std::vector<std::string> rightKeys;
    ExprPtr residual;
};

/** Final aggregation of a stage. */
struct GroupBySpec
{
    std::vector<std::string> groupColumns;
    std::vector<AggSpec> aggregates;
};

/** Normalised stage shape. */
struct StageShape
{
    std::vector<LeafInfo> leaves;
    std::vector<ShapeNode> nodes;
    int root = -1;
    /**
     * Filters/Projects between the join-tree root and the group-by
     * (application order). Projects here are the Row Transformation
     * Programs; Filters feed the Row Selector / mask pipeline.
     */
    std::vector<StageOp> rootOps;
    std::optional<GroupBySpec> groupBy;
    /** Filters/projects above the group-by (having etc.), in order. */
    std::vector<StageOp> postOps;
    std::vector<SortKey> sortKeys;
    std::int64_t limit = -1;
};

/** Why a stage (or query) runs on the host instead of the device. */
struct HostReason
{
    std::string stageId;
    std::string reason;
};

/** Per-stage compilation outcome. */
struct StageDecision
{
    std::string stageId;
    bool onDevice = false;
    std::string reason; ///< populated when onDevice is false
    /** Structured classification of @ref reason (profiling). */
    obs::SuspendReason reasonCode = obs::SuspendReason::None;
    StageShape shape;   ///< valid when the shape was recognised
    bool shapeValid = false;
};

/** Whole-query compilation outcome. */
struct QueryCompilation
{
    std::string queryName;
    bool anyDeviceStage = false;
    /** Set when a big-heap regex forces the whole query to the host. */
    bool regexForcedHost = false;
    std::vector<StageDecision> stages;
};

/** The Table-Task compiler. */
class TaskCompiler
{
  public:
    TaskCompiler(const Catalog &cat, const AquomanConfig &cfg)
        : catalog(cat), config(cfg)
    {
    }

    /** Compile a whole query: stage shapes plus offload decisions. */
    QueryCompilation compile(const Query &q) const;

    /**
     * Normalise one plan tree. Returns nullopt (with @p why set) when
     * the plan does not fit the pipeline's shape.
     */
    std::optional<StageShape> analyze(const PlanPtr &plan,
                                      std::string &why) const;

  private:
    bool likeOverBigHeap(const ExprPtr &e, const LeafInfo &leaf,
                         std::string &why) const;
    bool checkLeafSupport(const LeafInfo &leaf, std::string &why) const;

    const Catalog &catalog;
    const AquomanConfig &config;
};

} // namespace aquoman

#endif // AQUOMAN_AQUOMAN_TASK_COMPILER_HH
