#include "aquoman/query_profile.hh"

#include <map>

namespace aquoman {

obs::SuspendReason
classifyQuerySuspension(const QueryCompilation &comp,
                        const AquomanRunStats &stats)
{
    if (stats.suspendedDram)
        return obs::SuspendReason::DramOverflow;
    if (comp.regexForcedHost)
        return obs::SuspendReason::StringHeapRegex;
    for (const StageSuspension &s : stats.suspensions) {
        if (s.reason != obs::SuspendReason::None)
            return s.reason;
    }
    if (stats.spillGroups > 0)
        return obs::SuspendReason::GroupSpill;
    return obs::SuspendReason::None;
}

namespace {

obs::ProfileNode
taskNode(const TableTaskRecord &t)
{
    obs::ProfileNode n;
    n.name = t.what;
    n.kind = "table-task";
    n.rowsIn = t.rowsIn;
    n.rowsOut = t.rowsOut;
    n.flashBytes = t.flashBytes;
    n.stages = t.stages;
    if (!t.table.empty())
        n.detail = "table=" + t.table;
    return n;
}

} // namespace

obs::QueryProfile
buildQueryProfile(const std::string &query_name,
                  const QueryCompilation &comp,
                  const AquomanRunStats &stats,
                  const HostPhaseProfile &host,
                  const std::string &offload_class)
{
    obs::QueryProfile prof;
    prof.query = query_name;
    prof.suspend = classifyQuerySuspension(comp, stats);
    if (!offload_class.empty()) {
        prof.offloadClass = offload_class;
    } else if (stats.tasks.empty()) {
        prof.offloadClass = "none";
    } else if (!stats.suspensions.empty() || stats.spillGroups > 0) {
        prof.offloadClass = "partial";
    } else {
        prof.offloadClass = "full";
    }

    prof.root.name = query_name;
    prof.root.kind = "query";
    prof.root.suspend = prof.suspend;

    // Group the chronological task ledger by compiled stage; the
    // per-stage groups preserve execution order, so a pre-order walk
    // visits tasks exactly as they accrued.
    std::map<std::string, std::vector<const TableTaskRecord *>> by_stage;
    for (const TableTaskRecord &t : stats.tasks)
        by_stage[t.stage].push_back(&t);

    for (const StageDecision &d : comp.stages) {
        obs::ProfileNode sn;
        sn.name = "stage " + d.stageId;
        bool on_device = false;
        for (const std::string &id : stats.deviceStages)
            on_device |= id == d.stageId;
        sn.kind = on_device ? "device-stage" : "host-stage";
        for (const StageSuspension &s : stats.suspensions) {
            if (s.stage == d.stageId) {
                sn.suspend = s.reason;
                sn.detail = s.detail;
                break;
            }
        }
        auto it = by_stage.find(d.stageId);
        if (it != by_stage.end()) {
            for (const TableTaskRecord *t : it->second)
                sn.children.push_back(taskNode(*t));
        }
        prof.root.children.push_back(std::move(sn));
    }

    // Closing work outside any stage (final gathers, result DMA).
    auto it = by_stage.find("");
    if (it != by_stage.end()) {
        for (const TableTaskRecord *t : it->second)
            prof.root.children.push_back(taskNode(*t));
    }

    obs::ProfileNode hp;
    hp.name = "host phase";
    hp.kind = "host-phase";
    hp.stages.add(obs::PipeStage::Switch, host.dmaSeconds);
    hp.stages.add(obs::PipeStage::HostPhase, host.hostSeconds);
    hp.switchBytes = host.dmaBytes + host.hostBytes;
    hp.detail = "residual x86 estimate + result DMA";
    hp.children = stats.hostOps.children;
    prof.root.children.push_back(std::move(hp));
    return prof;
}

} // namespace aquoman
