/**
 * @file
 * System-level performance model combining the host baseline (Sec.
 * VIII-A) with the AQUOMAN device trace: runtime, CPU-cycle saving and
 * memory footprints for one query on one host configuration, plus the
 * offload classification the paper reports (fully offloaded / partially
 * offloaded-suspended / not offloaded).
 */

#ifndef AQUOMAN_AQUOMAN_PERF_MODEL_HH
#define AQUOMAN_AQUOMAN_PERF_MODEL_HH

#include <algorithm>

#include "aquoman/device.hh"
#include "engine/host_model.hh"

namespace aquoman {

/** The paper's offload classes (Sec. VIII-B). */
enum class OffloadClass { Full, Partial, None };

inline const char *
offloadClassName(OffloadClass c)
{
    switch (c) {
      case OffloadClass::Full:    return "full";
      case OffloadClass::Partial: return "partial";
      case OffloadClass::None:    return "none";
    }
    return "?";
}

/** Derived system figures for one query on one host config. */
struct SystemEvaluation
{
    /** Baseline: MonetDB on plain SSDs. */
    HostRunEstimate baseline;

    /** AQUOMAN path: device seconds + host residual. */
    double deviceSeconds = 0.0;
    double hostResidualSeconds = 0.0;
    double offloadRuntime = 0.0;

    /** Fraction of offloaded runtime spent on the device (Fig 16c). */
    double offloadFraction = 0.0;

    /** x86 CPU-cycle saving vs the baseline (Fig 16c). */
    double cpuSaving = 0.0;

    /** Host memory under offload (Fig 16b). */
    std::int64_t hostMaxRss = 0;
    std::int64_t hostAvgRss = 0;
    std::int64_t deviceDramPeak = 0;

    double speedup = 0.0;
    OffloadClass offloadClass = OffloadClass::None;
};

/**
 * Evaluate one query: @p baseline_metrics comes from running the query
 * on the baseline engine, @p aq from AquomanDevice::runQuery.
 */
inline SystemEvaluation
evaluateOffload(const EngineMetrics &baseline_metrics,
                const AquomanRunStats &aq, const HostModel &host)
{
    SystemEvaluation ev;
    ev.baseline = host.estimate(baseline_metrics);

    HostRunEstimate res = host.estimate(aq.hostResidual);
    double dma = aq.dmaBytes / host.cfg().storageReadBandwidth;
    ev.deviceSeconds = aq.deviceSeconds;
    ev.hostResidualSeconds = res.runtime + dma;
    ev.offloadRuntime = ev.deviceSeconds + ev.hostResidualSeconds;
    ev.offloadFraction = ev.offloadRuntime > 0
        ? ev.deviceSeconds / ev.offloadRuntime : 0.0;
    ev.cpuSaving = baseline_metrics.rowOps > 0
        ? std::max(0.0, 1.0 - aq.hostResidual.rowOps
                             / baseline_metrics.rowOps)
        : 0.0;
    ev.hostMaxRss = res.maxRss;
    ev.hostAvgRss = res.avgRss;
    ev.deviceDramPeak = aq.deviceDramPeak;
    ev.speedup = ev.offloadRuntime > 0
        ? ev.baseline.runtime / ev.offloadRuntime : 1.0;

    // Classification (Sec. VIII-B): None when nothing ran on the
    // device. A query counts as Partial (suspended) when host stages
    // consumed device output AND either the remaining host work is a
    // material fraction of the runtime or the device aggregate spilled
    // per-group state to the host mid-query (conditions 1/3 of
    // Sec. VI-E). Otherwise the query is "offloaded nearly 100% of the
    // time" and counts as Full.
    bool suspended = !aq.deviceStages.empty() && !aq.hostStages.empty();
    if (aq.deviceStages.empty() || ev.offloadFraction < 0.05) {
        ev.offloadClass = OffloadClass::None;
    } else if (suspended
               && (ev.offloadFraction < 0.95 || aq.spillGroups > 0)) {
        ev.offloadClass = OffloadClass::Partial;
    } else {
        ev.offloadClass = OffloadClass::Full;
    }
    return ev;
}

} // namespace aquoman

#endif // AQUOMAN_AQUOMAN_PERF_MODEL_HH
