/**
 * @file
 * The AQUOMAN device executor. Executes the device-eligible stages of a
 * compiled query through the modelled pipeline — Row Selector masks,
 * Row Transformer PE programs, SQL Swissknife group-by/sort/merge — and
 * runs the remaining stages on the host engine, exactly as the paper's
 * suspension mechanism does (Sec. VI-E). Results are bit-exact with the
 * baseline engine; alongside them it produces the performance trace
 * (device seconds, flash traffic, DRAM peak, spill-over, DMA) the
 * evaluation benches consume.
 *
 * Join strategies follow Sec. VI-D:
 *  - already-sorted streams merge directly (e.g. lineitem/orders are
 *    stored in orderkey order), costing no device DRAM;
 *  - a side keyed by a dense primary key becomes a RowID probe
 *    structure (MonetDB's materialised-RowID optimisation);
 *  - otherwise the 1GB-block streaming sorter sorts <key,RowID> pairs
 *    and the Merger intersects them.
 * Device DRAM overflow raises a suspension: the stage (and the rest of
 * the query) falls back to the host.
 */

#ifndef AQUOMAN_AQUOMAN_DEVICE_HH
#define AQUOMAN_AQUOMAN_DEVICE_HH

#include <map>
#include <string>
#include <vector>

#include "aquoman/config.hh"
#include "aquoman/memory_manager.hh"
#include "aquoman/task_compiler.hh"
#include "engine/executor.hh"
#include "engine/metrics.hh"
#include "obs/profile.hh"

namespace aquoman {

/**
 * One Table Task of an offloaded query, as the scheduler sees it: a
 * schedulable unit with a modelled duration and flash footprint. Tasks
 * partition the query's device timeline (their seconds and flashBytes
 * sum to the query totals), so a service can replay them against an
 * SSD array without re-deriving the pipeline model.
 */
struct TableTaskRecord
{
    /** Short description (mirrors the taskLog entry). */
    std::string what;

    /**
     * Base table this task streams from flash, when the task's input
     * relation is rooted in exactly one base table ("" otherwise —
     * multi-table joins and DRAM-resident sorts are not shardable).
     */
    std::string table;

    /** Compiled stage this task belongs to ("" for the epilogue). */
    std::string stage;

    /** Rows entering / leaving the task (-1 when not applicable). */
    std::int64_t rowsIn = -1;
    std::int64_t rowsOut = -1;

    /**
     * Modelled device seconds attributed to this task. Always equals
     * stages.total() bitwise, so per-task stage decompositions sum
     * exactly to the task's seconds and, task by task, to the query's
     * deviceSeconds.
     */
    double seconds = 0.0;

    /** Device flash bytes attributed to this task. */
    std::int64_t flashBytes = 0;

    /** The task's seconds split over the pipeline resources. */
    obs::StageSeconds stages;

    /** Bottleneck resource: argmax of @ref stages (deterministic). */
    obs::PipeStage bottleneck = obs::PipeStage::FlashRead;
};

/** One suspension: which stage left the device, and why. */
struct StageSuspension
{
    std::string stage;
    obs::SuspendReason reason = obs::SuspendReason::None;
    std::string detail;
};

/** Performance trace of one offloaded query. */
struct AquomanRunStats
{
    /** Modelled wall-clock seconds spent in the device pipeline. */
    double deviceSeconds = 0.0;

    /** Flash bytes the device streamed (page-granular model; encoded
     *  bytes when compression is on). */
    std::int64_t deviceFlashBytes = 0;

    /**
     * Zone-map page skipping over encoded leaf scans: pages whose
     * zone maps were consulted, and the subset proven unable to
     * satisfy the scan's predicates (never read, never charged).
     * Both stay 0 on uncompressed (AQUOMAN_COMPRESS=0) runs.
     */
    std::int64_t zonePagesConsidered = 0;
    std::int64_t zonePagesSkipped = 0;

    /** Peak device DRAM across the query. */
    std::int64_t deviceDramPeak = 0;

    /** Aggregate Group-By spill-over to the host. */
    std::int64_t spillRows = 0;
    std::int64_t spillGroups = 0;

    /** Device->host transfers of results and intermediates. */
    std::int64_t dmaBytes = 0;

    /** Table Tasks issued to the device. */
    std::int64_t tasksExecuted = 0;

    /** Rows processed by Row Transformer PE programs. */
    std::int64_t transformedRows = 0;

    /** Host work remaining: suspended stages, post-ops, final sorts. */
    EngineMetrics hostResidual;

    /** True when device DRAM overflow forced a suspension (cond. 4). */
    bool suspendedDram = false;

    /** Human-readable Table Task log (paper Fig. 5 style). */
    std::vector<std::string> taskLog;

    /**
     * Structured Table-Task trace: one record per scheduled task, in
     * issue order, partitioning deviceSeconds / deviceFlashBytes
     * exactly. The query service schedules these across its SSD array.
     */
    std::vector<TableTaskRecord> tasks;

    /** Stages that executed on the device. */
    std::vector<std::string> deviceStages;

    /** Stages that executed on the host, with reasons. */
    std::vector<std::pair<std::string, std::string>> hostStages;

    /** Structured suspension records (mirrors hostStages, typed). */
    std::vector<StageSuspension> suspensions;

    /**
     * Per-operator profile nodes collected from the host-residual
     * executor when obs::profileCollectionEnabled(); the children
     * become the host-phase subtree of the query profile.
     */
    obs::ProfileNode hostOps;
};

/** Result of running one query on the AQUOMAN-augmented system. */
struct OffloadedQueryResult
{
    RelTable result;
    AquomanRunStats stats;
    QueryCompilation compilation;
};

/** The device executor. */
class AquomanDevice
{
  public:
    /**
     * @param cat catalog of flash-resident tables
     * @param sw  flash controller switch (device reads use the
     *            AQUOMAN port)
     * @param cfg device configuration
     */
    AquomanDevice(const Catalog &cat, ControllerSwitch &sw,
                  AquomanConfig cfg);

    /** Run @p q end-to-end (device stages + host residual). */
    OffloadedQueryResult runQuery(const Query &q);

    const AquomanConfig &cfg() const { return config; }

  private:
    struct Impl;

    const Catalog &catalog;
    ControllerSwitch &flashSwitch;
    AquomanConfig config;
};

} // namespace aquoman

#endif // AQUOMAN_AQUOMAN_DEVICE_HH
