/**
 * @file
 * AQUOMAN device DRAM management (Sec. VI-D). Intermediate tables —
 * key+RowID streams left by sort / sort-merge Table Tasks — live in
 * named slots. Sort inputs are garbage-collected as soon as their
 * consuming sort-merge task finishes; backward-pointer tables live for
 * the whole multi-way join. Exceeding the configured DRAM capacity is
 * reported so the device can suspend the query (Sec. VI-E condition 4).
 */

#ifndef AQUOMAN_AQUOMAN_MEMORY_MANAGER_HH
#define AQUOMAN_AQUOMAN_MEMORY_MANAGER_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/logging.hh"

namespace aquoman {

/** Tracks intermediate-table allocations in device DRAM. */
class DeviceMemoryManager
{
  public:
    explicit DeviceMemoryManager(std::int64_t capacity_bytes)
        : capacity(capacity_bytes)
    {
    }

    std::int64_t capacityBytes() const { return capacity; }
    std::int64_t usedBytes() const { return used; }
    std::int64_t peakBytes() const { return peak; }

    /** Bytes still allocatable (the service's admission headroom). */
    std::int64_t freeBytes() const { return capacity - used; }

    /**
     * Allocate @p bytes under slot @p name.
     * @return false when the allocation would exceed device DRAM (the
     *         caller must suspend to the host); state is unchanged.
     */
    bool
    allocate(const std::string &name, std::int64_t bytes)
    {
        AQ_ASSERT(bytes >= 0);
        AQ_ASSERT(slots.find(name) == slots.end(),
                  "slot '", name, "' already allocated");
        if (used + bytes > capacity)
            return false;
        slots[name] = bytes;
        used += bytes;
        peak = std::max(peak, used);
        return true;
    }

    /** Resize an existing slot (streams grow as tasks emit). */
    bool
    grow(const std::string &name, std::int64_t extra_bytes)
    {
        auto it = slots.find(name);
        AQ_ASSERT(it != slots.end(), "no slot '", name, "'");
        if (used + extra_bytes > capacity)
            return false;
        it->second += extra_bytes;
        used += extra_bytes;
        peak = std::max(peak, used);
        return true;
    }

    /** Free a slot (sort inputs GC immediately after the merge). */
    void
    free(const std::string &name)
    {
        auto it = slots.find(name);
        AQ_ASSERT(it != slots.end(), "no slot '", name, "'");
        used -= it->second;
        slots.erase(it);
    }

    bool has(const std::string &name) const
    {
        return slots.count(name) != 0;
    }

    std::int64_t
    slotBytes(const std::string &name) const
    {
        auto it = slots.find(name);
        return it == slots.end() ? 0 : it->second;
    }

    /** Release everything (end of query). */
    void
    reset()
    {
        slots.clear();
        used = 0;
    }

    /** Also clear the peak (start of a fresh measurement). */
    void
    resetPeak()
    {
        reset();
        peak = 0;
    }

  private:
    std::int64_t capacity;
    std::int64_t used = 0;
    std::int64_t peak = 0;
    std::map<std::string, std::int64_t> slots;
};

} // namespace aquoman

#endif // AQUOMAN_AQUOMAN_MEMORY_MANAGER_HH
