#include "aquoman/device.hh"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <unordered_map>

#include "aquoman/pe_batch.hh"
#include "aquoman/swissknife/groupby.hh"
#include "aquoman/swissknife/kv.hh"
#include "aquoman/swissknife/streaming_sorter.hh"
#include "aquoman/swissknife/topk.hh"
#include "aquoman/transform_compiler.hh"
#include "columnstore/encoding.hh"
#include "columnstore/selection_vector.hh"
#include "common/batch_mode.hh"
#include "common/compress_mode.hh"
#include "common/decimal.hh"
#include "obs/trace.hh"
#include "relalg/eval.hh"
#include "relalg/pred_kernel.hh"

namespace aquoman {

namespace {

/** Raised when the device must hand the query back to the host. */
struct SuspendError
{
    std::string reason;
    bool dram = false;
    /// Structured classification of the suspension (Sec. VI-E).
    obs::SuspendReason code = obs::SuspendReason::UnsupportedOp;
};

/** Reference to one base table participating in a tuple table. */
struct LeafRef
{
    std::string table;
    std::string alias;
};

/** One visible column of a device relation. */
struct DevCol
{
    std::string name;
    ColumnType type = ColumnType::Int64;
    int leafIdx = -1;        ///< gather via rowids[leafIdx]
    std::string baseColumn;  ///< column in the base table
    int dataColIdx = -1;     ///< or: computed column
};

/**
 * A device-resident relation: per-tuple RowIDs into base tables plus
 * optional computed data columns (Sec. VI-D: DRAM keeps row indices
 * and keys; attribute payloads are gathered from flash on demand).
 */
struct DeviceRelation
{
    std::vector<LeafRef> leafRefs;
    std::vector<std::shared_ptr<std::vector<RowId>>> rowids;
    std::vector<RelColumn> dataCols;
    std::vector<DevCol> schema;
    std::int64_t rows = 0;

    /** DRAM slot holding this relation ("" when streaming / shared). */
    std::string dramSlot;

    std::int64_t
    tupleBytes() const
    {
        return rows * 8
            * (static_cast<std::int64_t>(rowids.size())
               + static_cast<std::int64_t>(dataCols.size()));
    }
};

} // namespace

// =====================================================================
// Impl
// =====================================================================

struct AquomanDevice::Impl
{
    const Catalog &catalog;
    ControllerSwitch &sw;
    const AquomanConfig &config;
    DeviceMemoryManager dram;
    StreamingSorter sorter;
    AquomanRunStats stats;
    Executor residual;          ///< host engine for suspended work
    int slotCounter = 0;

    std::map<std::string, DeviceRelation> deviceRels;
    std::map<std::string, RelTable> stageTables;

    /** deviceSeconds / deviceFlashBytes at the last task boundary. */
    double taskMarkSeconds = 0.0;
    std::int64_t taskMarkBytes = 0;

    /**
     * Seconds accrued since the last task boundary, split over the
     * pipeline resources. deviceSeconds is always derived as
     * taskMarkSeconds + taskStages.total(), so when the task closes
     * its stage decomposition sums to its seconds bitwise and the
     * per-task seconds tile [0, deviceSeconds] exactly.
     */
    obs::StageSeconds taskStages;

    /** Compiled stage currently executing ("" outside the loop). */
    std::string currentStage;

    /** Simulation-trace tracks (< 0 when tracing is disabled). */
    int taskTrack = -1;
    int stageTrack = -1;

    Impl(const Catalog &cat, ControllerSwitch &sw_,
         const AquomanConfig &cfg)
        : catalog(cat), sw(sw_), config(cfg), dram(cfg.dramBytes),
          sorter(cfg), residual(cat, &sw_)
    {
        // Host-residual operators report into the run's profile tree.
        residual.setProfileSink(&stats.hostOps);
    }

    // ---------------------------------------------------------- util

    /**
     * Close the current Table Task: everything accrued since the last
     * boundary (pipeline time, flash traffic) is attributed to it, so
     * the records exactly partition the query's device totals. @p rel,
     * when rooted in a single base table, makes the task shardable
     * across the devices holding that table's stripes.
     */
    /** Attribute @p t modelled seconds of the current task to @p s. */
    void
    accrue(obs::PipeStage s, double t)
    {
        taskStages.add(s, t);
        stats.deviceSeconds = taskMarkSeconds + taskStages.total();
    }

    void
    recordTask(const std::string &what,
               const DeviceRelation *rel = nullptr,
               std::int64_t rows_in = -1, std::int64_t rows_out = -1)
    {
        TableTaskRecord rec;
        rec.what = what;
        rec.stage = currentStage;
        rec.rowsIn = rows_in;
        rec.rowsOut = rows_out;
        if (rel && rel->leafRefs.size() == 1)
            rec.table = rel->leafRefs[0].table;
        rec.seconds = taskStages.total();
        rec.flashBytes = stats.deviceFlashBytes - taskMarkBytes;
        rec.stages = taskStages;
        rec.bottleneck = taskStages.bottleneck();
        if (taskTrack >= 0) {
            // The marks give this span exact start/end: adjacent task
            // spans tile [0, deviceSeconds] with no gaps or overlaps.
            obs::SimTracer::global().span(
                taskTrack, rec.what, "table-task", taskMarkSeconds,
                stats.deviceSeconds,
                {obs::arg("table", rec.table),
                 obs::arg("flash_bytes", rec.flashBytes)});
        }
        taskMarkSeconds = stats.deviceSeconds;
        taskMarkBytes = stats.deviceFlashBytes;
        taskStages = obs::StageSeconds{};
        stats.tasks.push_back(std::move(rec));
    }

    std::string
    freshSlot(const std::string &what)
    {
        return what + "#" + std::to_string(slotCounter++);
    }

    void
    charge(const std::string &slot, std::int64_t bytes)
    {
        if (!dram.allocate(slot, bytes)) {
            stats.suspendedDram = true;
            throw SuspendError{
                "device DRAM exceeded allocating "
                    + std::to_string(bytes) + "B for " + slot,
                true, obs::SuspendReason::DramOverflow};
        }
        stats.deviceDramPeak = std::max(stats.deviceDramPeak,
                                        dram.peakBytes());
    }

    void
    release(const std::string &slot)
    {
        if (dram.has(slot))
            dram.free(slot);
    }

    /** Page-granular flash bytes to read @p selected of @p total rows. */
    std::int64_t
    pageTouchBytes(std::int64_t total_rows, int width,
                   std::int64_t selected) const
    {
        if (total_rows <= 0 || selected <= 0)
            return 0;
        std::int64_t page = sw.dev().cfg().pageBytes;
        std::int64_t rpp = std::max<std::int64_t>(1, page / width);
        double pages = std::ceil(static_cast<double>(total_rows) / rpp);
        double d = std::min(1.0, static_cast<double>(selected)
                                     / total_rows);
        double touched = pages * (1.0 - std::pow(1.0 - d,
                                                 static_cast<double>(rpp)));
        auto bytes = static_cast<std::int64_t>(touched * page);
        return std::max<std::int64_t>(bytes, selected * width);
    }

    /**
     * Account a device flash read and its streaming time, attributed
     * to the pipeline stage that bounds it: the flash channels, the
     * Row Selector's processing rate, or (when a transform program
     * consumes the stream) the Row Transformer.
     *
     * @p bytes is what actually streams off flash — encoded bytes for
     * compressed columns. The Row Selector's CPEs evaluate directly
     * on the encoded stream (all page codecs are order-preserving:
     * sorted dictionary codes, FOR deltas, RLE runs), so sel_t is
     * also priced on encoded bytes. @p logical_bytes, when larger,
     * is the decoded size the stream expands to; decompression runs
     * at the pipeline's line rate and bounds the stage only when it
     * exceeds every other resource (PipeStage::Decode). Raw streams
     * pass logical == bytes and reproduce the pre-compression math
     * bitwise.
     */
    void
    accountFlash(std::int64_t bytes, std::int64_t rows_processed = 0,
                 int transform_len = 0,
                 std::int64_t logical_bytes = -1)
    {
        stats.deviceFlashBytes += bytes;
        double flash_t = static_cast<double>(bytes)
            / sw.dev().cfg().readBandwidth;
        double sel_t =
            static_cast<double>(bytes) / config.processingRate;
        double tr_t = 0.0;
        if (rows_processed > 0 && transform_len > 0) {
            double vectors = std::ceil(static_cast<double>(rows_processed)
                                       / kRowVectorSize);
            tr_t = vectors * transform_len / config.clockHz;
        }
        double dec_t = 0.0;
        if (logical_bytes > bytes) {
            dec_t = static_cast<double>(logical_bytes)
                / config.processingRate;
        }
        double t = std::max(std::max(flash_t, dec_t),
                            std::max(sel_t, tr_t));
        obs::PipeStage bound = obs::PipeStage::FlashRead;
        if (sel_t > flash_t)
            bound = obs::PipeStage::Selector;
        if (tr_t > flash_t && tr_t > sel_t)
            bound = obs::PipeStage::Transformer;
        if (dec_t > flash_t && dec_t > sel_t && dec_t > tr_t)
            bound = obs::PipeStage::Decode;
        accrue(bound, t);
    }

    const Table &
    baseTable(const std::string &name) const
    {
        return *catalog.get(name).table;
    }

    // ------------------------------------------------ column gathers

    /** Resolve a visible column name in @p rel. */
    const DevCol &
    resolve(const DeviceRelation &rel, const std::string &name) const
    {
        for (const auto &c : rel.schema) {
            if (c.name == name)
                return c;
        }
        throw SuspendError{"column '" + name
                           + "' not visible in device relation"};
    }

    /**
     * Gather the values of one visible column for every tuple.
     * @param account when true, charge flash traffic for base-table
     *        gathers (page-touch model over the tuple density)
     */
    RelColumn
    gather(const DeviceRelation &rel, const std::string &name,
           bool account)
    {
        const DevCol &dc = resolve(rel, name);
        if (dc.dataColIdx >= 0) {
            RelColumn out = rel.dataCols[dc.dataColIdx];
            out.name = name;
            return out; // device DRAM read: no flash traffic
        }
        const LeafRef &ref = rel.leafRefs[dc.leafIdx];
        const Table &t = baseTable(ref.table);
        const Column &src = t.col(dc.baseColumn);
        RelColumn out(name, src.type());
        if (src.type() == ColumnType::Varchar)
            out.heap = t.stringsPtr();
        const auto &ids = *rel.rowids[dc.leafIdx];
        out.vals->resize(ids.size());
        for (std::size_t i = 0; i < ids.size(); ++i)
            (*out.vals)[i] = src.get(ids[i]);
        if (account)
            chargeGather(rel, name);
        return out;
    }

    /** Page-block metadata of a base column when stored encoded
     *  (nullptr on raw layouts / AQUOMAN_COMPRESS=0). */
    const ColumnLayoutMeta *
    encodingFor(const LeafRef &ref, const std::string &column) const
    {
        if (!compressionEnabled())
            return nullptr;
        const CatalogEntry &entry = catalog.get(ref.table);
        if (!entry.resident)
            return nullptr;
        return entry.resident->encodingMeta(
            entry.table->indexOf(column));
    }

    /**
     * Encoded analogue of pageTouchBytes: flash bytes to read
     * @p selected of the @p rows rows held by @p pages encoded page
     * blocks (@p encoded_bytes total). Same probabilistic page-touch
     * shape, floored at the selection's share of the encoded payload.
     */
    std::int64_t
    encodedTouchBytes(std::int64_t pages, std::int64_t rows,
                      std::int64_t encoded_bytes,
                      std::int64_t selected) const
    {
        if (rows <= 0 || selected <= 0 || pages <= 0)
            return 0;
        std::int64_t page = sw.dev().cfg().pageBytes;
        double d = std::min(1.0, static_cast<double>(selected) / rows);
        double rpp = static_cast<double>(rows) / pages;
        double touched = pages * (1.0 - std::pow(1.0 - d, rpp));
        auto bytes = static_cast<std::int64_t>(touched * page);
        auto floor_bytes = static_cast<std::int64_t>(
            static_cast<double>(encoded_bytes) * d);
        return std::max(bytes, floor_bytes);
    }

    /** Heap bytes chargeable for a varchar gather at the relation's
     *  tuple density (0 for non-varchar columns). */
    std::int64_t
    gatherHeapBytes(const DeviceRelation &rel, const LeafRef &ref,
                    const DevCol &dc, const Column &src) const
    {
        if (src.type() != ColumnType::Varchar)
            return 0;
        // String payloads stream from the column's own heap.
        const CatalogEntry &entry = catalog.get(ref.table);
        const Table &t = *entry.table;
        double density = t.numRows() > 0
            ? std::min(1.0, static_cast<double>(rel.rows)
                                / t.numRows())
            : 0.0;
        return static_cast<std::int64_t>(
            columnHeapBytes(entry, dc.baseColumn) * density);
    }

    /**
     * Charge the flash traffic gather(rel, name, true) would account,
     * without materializing values. The batched filter path streams
     * the same page-touch bytes the full-column gather models (the
     * Row Selector still reads every page the selection touches) even
     * though the simulator only evaluates the surviving rows. Encoded
     * columns stream their compressed pages and expand to the raw
     * page-touch bytes in the decoder.
     */
    void
    chargeGather(const DeviceRelation &rel, const std::string &name)
    {
        const DevCol &dc = resolve(rel, name);
        if (dc.dataColIdx >= 0)
            return; // device DRAM read: no flash traffic
        const LeafRef &ref = rel.leafRefs[dc.leafIdx];
        const Table &t = baseTable(ref.table);
        const Column &src = t.col(dc.baseColumn);
        int width = columnTypeWidth(src.type());
        std::int64_t heap_bytes = gatherHeapBytes(rel, ref, dc, src);
        if (const ColumnLayoutMeta *enc =
                encodingFor(ref, dc.baseColumn)) {
            std::int64_t bytes = encodedTouchBytes(
                enc->numPages(), enc->rows, enc->encodedBytes,
                rel.rows);
            std::int64_t logical =
                pageTouchBytes(t.numRows(), width, rel.rows);
            accountFlash(bytes + heap_bytes, 0, 0,
                         logical + heap_bytes);
            return;
        }
        std::int64_t bytes =
            pageTouchBytes(t.numRows(), width, rel.rows) + heap_bytes;
        accountFlash(bytes);
    }

    /** One zone-map-eligible conjunct: a visible column compared (or
     *  IN-listed) against integer constants. */
    struct ZonePred
    {
        std::string column;
        bool inList = false;
        ZoneOp op = ZoneOp::Eq;
        std::int64_t value = 0;
        ColumnType constType = ColumnType::Int64;
        const std::vector<std::int64_t> *list = nullptr;
    };

    static bool
    zonePredFor(const ExprPtr &e, ZonePred *out)
    {
        if (e->kind == ExprKind::InList) {
            const ExprPtr &c0 = e->children[0];
            if (c0->kind != ExprKind::ColRef || e->listVals.empty()
                || !e->listStrs.empty())
                return false;
            out->column = c0->column;
            out->inList = true;
            out->list = &e->listVals;
            return true;
        }
        if (e->kind != ExprKind::Compare)
            return false;
        const ExprPtr &a = e->children[0];
        const ExprPtr &b = e->children[1];
        const Expr *colref = nullptr;
        const Expr *konst = nullptr;
        bool flipped = false;
        if (a->kind == ExprKind::ColRef
            && b->kind == ExprKind::Const) {
            colref = a.get();
            konst = b.get();
        } else if (b->kind == ExprKind::ColRef
                   && a->kind == ExprKind::Const) {
            colref = b.get();
            konst = a.get();
            flipped = true;
        } else {
            return false;
        }
        switch (e->cmpOp) {
          case CmpOp::Eq: out->op = ZoneOp::Eq; break;
          case CmpOp::Ne: out->op = ZoneOp::Ne; break;
          case CmpOp::Lt:
            out->op = flipped ? ZoneOp::Gt : ZoneOp::Lt;
            break;
          case CmpOp::Le:
            out->op = flipped ? ZoneOp::Ge : ZoneOp::Le;
            break;
          case CmpOp::Gt:
            out->op = flipped ? ZoneOp::Lt : ZoneOp::Gt;
            break;
          case CmpOp::Ge:
            out->op = flipped ? ZoneOp::Le : ZoneOp::Ge;
            break;
        }
        out->column = colref->column;
        out->value = konst->constVal;
        out->constType = konst->resultType;
        return true;
    }

    /**
     * Row intervals of the scanned table that survive zone-map
     * pruning: rows of pages whose zone maps prove no row can
     * satisfy one of the scan's eligible conjuncts are excluded
     * (sound — those rows fail the whole AND), the complement over
     * [0, total_rows) is returned merged and ascending.
     */
    std::vector<std::pair<std::int64_t, std::int64_t>>
    zoneSurvivingIntervals(const DeviceRelation &rel,
                           const std::vector<ExprPtr> &conjuncts,
                           std::int64_t total_rows)
    {
        std::vector<std::pair<std::int64_t, std::int64_t>> excluded;
        for (const auto &c : conjuncts) {
            ZonePred zp;
            if (!zonePredFor(c, &zp))
                continue;
            const DevCol &dc = resolve(rel, zp.column);
            if (dc.dataColIdx >= 0)
                continue;
            const ColumnLayoutMeta *enc =
                encodingFor(rel.leafRefs[dc.leafIdx], dc.baseColumn);
            if (!enc)
                continue;
            // The evaluator compares decimals and integers by scaling
            // the non-decimal side by kDecimalScale; mirror that here
            // so the zone verdicts match evalPredicate exactly.
            const Column &src = baseTable(rel.leafRefs[dc.leafIdx]
                                              .table)
                                    .col(dc.baseColumn);
            bool col_dec = src.type() == ColumnType::Decimal;
            bool cst_dec = zp.constType == ColumnType::Decimal;
            std::int64_t cval = zp.value;
            if (!zp.inList && col_dec && !cst_dec)
                cval *= kDecimalScale;
            for (const PageBlockMeta &p : enc->pages) {
                PageZone z = p.zone;
                if (!zp.inList && cst_dec && !col_dec
                    && !z.allNull()) {
                    z.min *= kDecimalScale;
                    z.max *= kDecimalScale;
                }
                ZoneVerdict v = zp.inList
                    ? zoneInList(z, *zp.list)
                    : zoneCompare(z, zp.op, cval);
                if (v == ZoneVerdict::NonePass)
                    excluded.emplace_back(p.firstRow,
                                          p.firstRow + p.rows);
            }
        }
        std::sort(excluded.begin(), excluded.end());
        std::vector<std::pair<std::int64_t, std::int64_t>> surviving;
        std::int64_t at = 0;
        for (const auto &[b, e] : excluded) {
            if (b > at)
                surviving.emplace_back(at, b);
            at = std::max(at, e);
        }
        if (at < total_rows)
            surviving.emplace_back(at, total_rows);
        return surviving;
    }

    /**
     * Charge the flash traffic of a leaf-scan filter: the page-touch
     * read of every predicate column, in column order (both the
     * scalar oracle and the batched Row Selector charge through here,
     * so modelled traffic is independent of evaluation strategy). On
     * encoded tables the per-page zone maps are consulted first:
     * pages that cannot satisfy the scan's conjuncts are skipped —
     * not read, not charged — and every predicate column fetches
     * only its pages overlapping the surviving row ranges (late
     * materialization of the scan).
     *
     * @p charge is false for root-level filters over a pristine base
     * scan: those sites never priced their predicate stream (the
     * columns are charged where they materialize downstream), so only
     * the zone-map verdicts are recorded there — charging sites stay
     * in parity with the uncompressed oracle.
     */
    void
    chargeFilterScan(const DeviceRelation &rel,
                     const std::vector<std::string> &cols,
                     const std::vector<ExprPtr> &conjuncts,
                     bool charge = true)
    {
        if (!compressionEnabled() || rel.leafRefs.size() != 1) {
            // Raw-oracle path: exactly the per-column gather charges.
            if (charge) {
                for (const auto &c : cols)
                    chargeGather(rel, c);
            }
            return;
        }
        std::int64_t total_rows =
            baseTable(rel.leafRefs[0].table).numRows();
        auto surviving =
            zoneSurvivingIntervals(rel, conjuncts, total_rows);
        std::int64_t surv_rows = 0;
        for (const auto &[b, e] : surviving)
            surv_rows += e - b;
        for (const auto &name : cols) {
            const DevCol &dc = resolve(rel, name);
            if (dc.dataColIdx >= 0)
                continue; // device DRAM read: no flash traffic
            const LeafRef &ref = rel.leafRefs[dc.leafIdx];
            const Table &t = baseTable(ref.table);
            const Column &src = t.col(dc.baseColumn);
            int width = columnTypeWidth(src.type());
            std::int64_t heap_bytes =
                gatherHeapBytes(rel, ref, dc, src);
            const ColumnLayoutMeta *enc =
                encodingFor(ref, dc.baseColumn);
            if (!enc) {
                if (charge) {
                    accountFlash(pageTouchBytes(t.numRows(), width,
                                                rel.rows)
                                 + heap_bytes);
                }
                continue;
            }
            // Pages of this column overlapping a surviving interval.
            std::int64_t surv_pages = 0;
            std::int64_t surv_page_rows = 0;
            std::int64_t surv_bytes = 0;
            std::size_t ii = 0;
            for (const PageBlockMeta &p : enc->pages) {
                std::int64_t pb = p.firstRow;
                std::int64_t pe = p.firstRow + p.rows;
                while (ii < surviving.size()
                       && surviving[ii].second <= pb)
                    ++ii;
                if (ii < surviving.size()
                    && surviving[ii].first < pe) {
                    ++surv_pages;
                    surv_page_rows += p.rows;
                    surv_bytes += p.byteLen;
                }
            }
            stats.zonePagesConsidered += enc->numPages();
            stats.zonePagesSkipped += enc->numPages() - surv_pages;
            if (!charge)
                continue;
            std::int64_t selected =
                std::min(rel.rows, surv_page_rows);
            std::int64_t bytes = encodedTouchBytes(
                surv_pages, surv_page_rows, surv_bytes, selected);
            std::int64_t logical =
                pageTouchBytes(surv_page_rows, width, selected);
            accountFlash(bytes + heap_bytes, 0, 0,
                         logical + heap_bytes);
        }
    }

    /**
     * Gather one visible column at the selected tuple positions only
     * (no flash accounting; callers charge via chargeGather so the
     * modelled traffic is independent of the evaluation strategy).
     */
    RelColumn
    gatherAt(const DeviceRelation &rel, const std::string &name,
             const SelectionVector &sel)
    {
        const DevCol &dc = resolve(rel, name);
        std::int64_t n = sel.size();
        if (dc.dataColIdx >= 0) {
            const RelColumn &src = rel.dataCols[dc.dataColIdx];
            RelColumn out(name, src.type);
            out.heap = src.heap;
            out.vals->resize(n);
            for (std::int64_t i = 0; i < n; ++i)
                (*out.vals)[i] = src.get(sel[i]);
            return out;
        }
        const LeafRef &ref = rel.leafRefs[dc.leafIdx];
        const Table &t = baseTable(ref.table);
        const Column &src = t.col(dc.baseColumn);
        RelColumn out(name, src.type());
        if (src.type() == ColumnType::Varchar)
            out.heap = t.stringsPtr();
        const auto &ids = *rel.rowids[dc.leafIdx];
        out.vals->resize(n);
        for (std::int64_t i = 0; i < n; ++i)
            (*out.vals)[i] = src.get(ids[sel[i]]);
        return out;
    }

    /** gatherAt over an explicit (possibly repeated) position list. */
    RelColumn
    gatherAtIdx(const DeviceRelation &rel, const std::string &name,
                const std::vector<std::int64_t> &pos)
    {
        const DevCol &dc = resolve(rel, name);
        std::int64_t n = static_cast<std::int64_t>(pos.size());
        if (dc.dataColIdx >= 0) {
            const RelColumn &src = rel.dataCols[dc.dataColIdx];
            RelColumn out(name, src.type);
            out.heap = src.heap;
            out.vals->resize(n);
            for (std::int64_t i = 0; i < n; ++i)
                (*out.vals)[i] = src.get(pos[i]);
            return out;
        }
        const LeafRef &ref = rel.leafRefs[dc.leafIdx];
        const Table &t = baseTable(ref.table);
        const Column &src = t.col(dc.baseColumn);
        RelColumn out(name, src.type());
        if (src.type() == ColumnType::Varchar)
            out.heap = t.stringsPtr();
        const auto &ids = *rel.rowids[dc.leafIdx];
        out.vals->resize(n);
        for (std::int64_t i = 0; i < n; ++i)
            (*out.vals)[i] = src.get(ids[pos[i]]);
        return out;
    }

    /**
     * Run a compiled Row Transformation Program column-at-a-time: the
     * kernel is compiled once per Table Task and executed over
     * contiguous kPeBatchRows morsels of flat buffers. Bit-identical
     * to the per-row SystolicArray loop (the kernel falls back to it
     * for programs with cross-row state).
     */
    void
    runTransformBatched(const CompiledTransform &ct,
                        const std::vector<RelColumn> &inputs,
                        std::int64_t rows,
                        std::vector<std::vector<std::int64_t> *> outs)
    {
        PeBatchKernel kernel(ct.programs,
                             static_cast<int>(inputs.size()));
        for (auto *o : outs)
            o->resize(rows);
        std::vector<const std::int64_t *> in_ptrs(inputs.size());
        std::vector<std::int64_t *> out_ptrs(outs.size());
        const std::int64_t morsel = peBatchMorselRows();
        for (std::int64_t b = 0; b < rows; b += morsel) {
            std::int64_t e = std::min(rows, b + morsel);
            for (std::size_t i = 0; i < inputs.size(); ++i)
                in_ptrs[i] = inputs[i].vals->data() + b;
            for (std::size_t o = 0; o < outs.size(); ++o)
                out_ptrs[o] = outs[o]->data() + b;
            kernel.run(in_ptrs.data(), e - b, out_ptrs.data(),
                       static_cast<int>(outs.size()));
        }
    }

    /** Materialise the visible columns as a host RelTable. */
    RelTable
    materialize(DeviceRelation &rel, bool account_flash)
    {
        RelTable out;
        for (const auto &c : rel.schema)
            out.addColumn(gather(rel, c.name, account_flash));
        if (rel.schema.empty()) {
            // Keep row count observable even with no visible columns.
            RelColumn dummy("__row", ColumnType::Int64);
            for (std::int64_t i = 0; i < rel.rows; ++i)
                dummy.push(i);
            out.addColumn(std::move(dummy));
        }
        return out;
    }

    /** RelTable view of the visible columns (for evalPredicate). */
    RelTable
    viewFor(DeviceRelation &rel, const std::vector<std::string> &cols,
            bool account)
    {
        RelTable out;
        for (const auto &c : cols)
            out.addColumn(gather(rel, c, account));
        return out;
    }

    /** Keep only tuples at @p keep indices. */
    void
    compact(DeviceRelation &rel, const std::vector<std::int64_t> &keep)
    {
        for (auto &ids : rel.rowids) {
            auto next = std::make_shared<std::vector<RowId>>();
            next->reserve(keep.size());
            for (std::int64_t k : keep)
                next->push_back((*ids)[k]);
            ids = std::move(next);
        }
        for (auto &dc : rel.dataCols) {
            auto next = std::make_shared<std::vector<std::int64_t>>();
            next->reserve(keep.size());
            for (std::int64_t k : keep)
                next->push_back((*dc.vals)[k]);
            dc.vals = std::move(next);
        }
        rel.rows = static_cast<std::int64_t>(keep.size());
    }

    // ----------------------------------------------------- leaf scan

    /** Number of top-level AND conjuncts usable by the Row Selector. */
    static void
    splitConjuncts(const ExprPtr &e, std::vector<ExprPtr> &out)
    {
        if (e->kind == ExprKind::Logic && e->logicOp == LogicOp::And) {
            splitConjuncts(e->children[0], out);
            splitConjuncts(e->children[1], out);
        } else {
            out.push_back(e);
        }
    }

    static bool
    selectorEligible(const ExprPtr &e)
    {
        // Single-column comparison/equality against constants
        // (Sec. VI-A); anything else goes to the Row Transformer.
        std::vector<std::string> cols;
        collectColumns(e, cols);
        if (cols.size() != 1)
            return false;
        switch (e->kind) {
          case ExprKind::Compare:
          case ExprKind::InList:
            return true;
          case ExprKind::Logic:
            // BETWEEN desugars to (a >= lo) and (a <= hi); handled as
            // two conjuncts upstream, so a nested Logic here means OR.
            return false;
          default:
            return false;
        }
    }

    DeviceRelation
    makeBaseLeaf(const LeafInfo &leaf)
    {
        const Table &t = baseTable(leaf.table);
        DeviceRelation rel;
        rel.leafRefs.push_back({leaf.table, leaf.alias});
        auto ids = std::make_shared<std::vector<RowId>>(t.numRows());
        for (std::int64_t i = 0; i < t.numRows(); ++i)
            (*ids)[i] = i;
        rel.rowids.push_back(std::move(ids));
        rel.rows = t.numRows();
        std::vector<std::string> cols = leaf.columns;
        if (cols.empty()) {
            for (int i = 0; i < t.numColumns(); ++i)
                cols.push_back(t.col(i).name());
        }
        for (const auto &c : cols) {
            DevCol dc;
            dc.name = leaf.alias.empty() ? c : leaf.alias + "." + c;
            dc.type = t.col(c).type();
            dc.leafIdx = 0;
            dc.baseColumn = c;
            rel.schema.push_back(dc);
        }
        return rel;
    }

    DeviceRelation
    makeStageLeaf(const LeafInfo &leaf)
    {
        auto it = deviceRels.find(leaf.stageRef);
        if (it == deviceRels.end()) {
            throw SuspendError{"stage '" + leaf.stageRef
                                   + "' is not device-resident",
                               false,
                               obs::SuspendReason::MidPlanGroupBy};
        }
        DeviceRelation rel = it->second; // tuple-table copy (cheap ptrs)
        // Copy-on-write: rowids/dataCols are shared_ptr'd; compact()
        // replaces the vectors rather than mutating them. The copy
        // does not own the persistent stage slot.
        rel.dramSlot.clear();
        return rel;
    }

    void
    applyFilter(DeviceRelation &rel, const ExprPtr &pred,
                bool leaf_scan, const std::string &what)
    {
        std::vector<ExprPtr> conjuncts;
        splitConjuncts(pred, conjuncts);
        int selector_preds = 0;
        int regex_preds = 0;
        for (const auto &c : conjuncts) {
            std::vector<const Expr *> likes;
            if (c->kind == ExprKind::Like
                    || (c->kind == ExprKind::Not
                        && c->children[0]->kind == ExprKind::Like)) {
                ++regex_preds;
            } else if (selectorEligible(c)
                       && selector_preds
                           < config.numPredicateEvaluators) {
                ++selector_preds;
            }
        }
        std::vector<std::string> cols;
        collectColumns(pred, cols);
        // Both evaluation strategies charge the scan identically,
        // column by column in predicate order: zone-map pruning and
        // compressed page-touch when the table is encoded, the raw
        // page-touch model otherwise. A root-level filter over a
        // pristine base scan (single-table queries: the filter sits
        // above the scan, not below a join) still consults the zone
        // maps — the Row Selector skips NonePass pages — but charges
        // nothing, matching the oracle's charging sites.
        if (leaf_scan) {
            chargeFilterScan(rel, cols, conjuncts);
        } else if (rel.leafRefs.size() == 1
                   && rel.rows
                       == baseTable(rel.leafRefs[0].table).numRows()) {
            chargeFilterScan(rel, cols, conjuncts, false);
        }
        std::vector<std::int64_t> keep;
        if (!batchExecutionEnabled()) {
            // Scalar oracle: materialize every predicate column over
            // every tuple, evaluate the whole tree at once.
            RelTable view = viewFor(rel, cols, false);
            BitVector mask = evalPredicate(pred, view);
            keep.reserve(mask.popcount());
            for (std::int64_t i = 0; i < rel.rows; ++i)
                if (mask.get(i))
                    keep.push_back(i);
        } else {
            // Batched Row Selector: flash already charged above;
            // short-circuit conjuncts over a shrinking selection.
            SelectionVector sel = SelectionVector::dense(rel.rows);
            for (const auto &c : conjuncts) {
                if (sel.empty())
                    break;
                std::vector<std::string> ccols;
                collectColumns(c, ccols);
                RelTable view;
                for (const auto &name : ccols)
                    view.addColumn(gatherAt(rel, name, sel));
                if (view.numColumns() == 0) {
                    // Constant conjunct: one verdict for all rows.
                    RelTable one;
                    RelColumn dummy("__sel_rows", ColumnType::Int64);
                    dummy.push(0);
                    one.addColumn(std::move(dummy));
                    RelColumn v = evalExpr(c, one, "pred");
                    if (v.get(0) == 0 || v.get(0) == kNullValue)
                        sel = SelectionVector::dense(0);
                    continue;
                }
                // Compiled mask kernel over the gathered view (flash
                // traffic was charged above, so this only changes CPU
                // cost); same verdicts as evalPredicate by contract.
                if (auto kern = ConjunctKernel::tryCompile(c, view)) {
                    BitVector mask;
                    ConjunctKernel::Scratch scratch;
                    kern->evalMask(view, nullptr, 0, view.numRows(),
                                   mask, scratch);
                    sel.filter(mask);
                    continue;
                }
                sel.filter(evalPredicate(c, view));
            }
            keep = sel.toIndices();
        }
        std::int64_t before = rel.rows;
        compact(rel, keep);
        stats.taskLog.push_back(
            what + ": rowSel " + std::to_string(selector_preds)
            + " CPE predicate(s), " + std::to_string(regex_preds)
            + " regex, transformer rest; " + std::to_string(before)
            + " -> " + std::to_string(rel.rows) + " rows");
        ++stats.tasksExecuted;
        recordTask("rowScan " + what, &rel, before, rel.rows);
    }

    /** String heap backing a visible varchar column. */
    std::shared_ptr<const StringHeap>
    heapFor(DeviceRelation &rel, const std::string &name)
    {
        const DevCol &dc = resolve(rel, name);
        if (dc.dataColIdx >= 0)
            return rel.dataCols[dc.dataColIdx].heap;
        return baseTable(rel.leafRefs[dc.leafIdx].table).stringsPtr();
    }

    /**
     * Rewrite an expression for PE compilation: string constants become
     * dictionary (heap) offsets, string IN-lists become integer lists,
     * and LIKE predicates over cacheable columns are pre-computed by
     * the regex accelerator into one-bit data columns (Sec. VI-B).
     */
    ExprPtr
    resolveForTransform(const ExprPtr &e, DeviceRelation &rel)
    {
        if (!e)
            return e;
        if (e->kind == ExprKind::Compare) {
            const ExprPtr &a = e->children[0];
            const ExprPtr &b = e->children[1];
            auto resolve_const = [&](const ExprPtr &column_side,
                                     const ExprPtr &const_side)
                -> ExprPtr {
                if (column_side->kind != ExprKind::ColRef)
                    throw SuspendError{
                        "string comparison over a computed value"};
                auto heap = heapFor(rel, column_side->column);
                AQ_ASSERT(heap, "varchar column without heap");
                std::int64_t off = heap->find(const_side->strVal);
                if (off < 0) {
                    // The constant never occurs: Eq is false, Ne true.
                    return lit(e->cmpOp == CmpOp::Ne ? 1 : 0);
                }
                auto offc = std::make_shared<Expr>();
                offc->kind = ExprKind::Const;
                offc->resultType = ColumnType::Varchar;
                offc->constVal = off;
                auto copy = std::make_shared<Expr>(*e);
                copy->children = {column_side, offc};
                if (column_side == b) {
                    // Keep the column on the left.
                    copy->cmpOp = e->cmpOp;
                }
                return copy;
            };
            if (a->kind == ExprKind::ConstStr
                    && b->kind == ExprKind::ColRef)
                return resolve_const(b, a);
            if (b->kind == ExprKind::ConstStr
                    && a->kind == ExprKind::ColRef)
                return resolve_const(a, b);
        }
        if (e->kind == ExprKind::InList && !e->listStrs.empty()) {
            const ExprPtr &a = e->children[0];
            if (a->kind != ExprKind::ColRef)
                throw SuspendError{"string IN-list over computed value"};
            auto heap = heapFor(rel, a->column);
            std::vector<std::int64_t> vals;
            for (const auto &s : e->listStrs) {
                std::int64_t off = heap->find(s);
                if (off >= 0)
                    vals.push_back(off);
            }
            if (vals.empty())
                return lit(0);
            auto copy = std::make_shared<Expr>(*e);
            copy->listStrs.clear();
            copy->listVals = std::move(vals);
            return copy;
        }
        if (e->kind == ExprKind::Like) {
            // Regex accelerator: pre-process the string column into a
            // one-bit column (heap is cacheable; the task compiler has
            // already rejected big-heap patterns).
            const ExprPtr &a = e->children[0];
            if (a->kind != ExprKind::ColRef)
                throw SuspendError{"LIKE over a computed value", false,
                                   obs::SuspendReason::StringHeapRegex};
            RelColumn src = gather(rel, a->column, true);
            std::string name = "__regex#" + std::to_string(slotCounter++);
            RelColumn bits(name, ColumnType::Int32);
            bits.vals->reserve(rel.rows);
            for (std::int64_t r = 0; r < rel.rows; ++r)
                bits.push(likeMatch(src.str(r), e->pattern));
            DevCol dc;
            dc.name = name;
            dc.type = ColumnType::Int32;
            dc.dataColIdx = static_cast<int>(rel.dataCols.size());
            rel.dataCols.push_back(std::move(bits));
            rel.schema.push_back(dc);
            stats.taskLog.push_back("regexAccel: '" + e->pattern
                                    + "' over " + a->column);
            return col(name);
        }
        auto copy = std::make_shared<Expr>(*e);
        for (auto &c : copy->children)
            c = resolveForTransform(c, rel);
        return copy;
    }

    void
    applyProject(DeviceRelation &rel,
                 const std::vector<NamedExpr> &projections_in)
    {
        std::vector<NamedExpr> projections;
        for (const auto &ne : projections_in)
            projections.push_back({ne.name,
                                   resolveForTransform(ne.expr, rel)});
        std::vector<DevCol> new_schema;
        std::vector<NamedExpr> computed;
        std::vector<RelColumn> new_data;
        for (const auto &ne : projections) {
            if (ne.expr->kind == ExprKind::ColRef) {
                DevCol dc = resolve(rel, ne.expr->column);
                dc.name = ne.name;
                if (dc.dataColIdx >= 0) {
                    // Pass-through of a computed column: carry the
                    // values into the new data-column set.
                    RelColumn copy = rel.dataCols[dc.dataColIdx];
                    copy.name = ne.name;
                    dc.dataColIdx = static_cast<int>(new_data.size());
                    new_data.push_back(std::move(copy));
                }
                new_schema.push_back(dc);
            } else {
                DevCol dc;
                dc.name = ne.name;
                dc.dataColIdx = -2; // patched below
                new_schema.push_back(dc);
                computed.push_back(ne);
            }
        }
        if (!computed.empty()) {
            // Compile the Row Transformation Program and actually run
            // every tuple through the systolic array.
            std::map<std::string, ColumnType> schema_types;
            for (const auto &c : rel.schema)
                schema_types[c.name] = c.type;
            TransformResult tr = compileTransform(computed, schema_types,
                                                  config, true);
            if (!tr.ok())
                throw SuspendError{"row transform not compilable: "
                                   + tr.error};
            const CompiledTransform &ct = *tr.program;
            std::vector<RelColumn> inputs;
            for (const auto &icol : ct.inputColumns)
                inputs.push_back(gather(rel, icol, true));
            SystolicArray array = ct.buildArray();
            std::vector<RelColumn> outs;
            for (std::size_t o = 0; o < computed.size(); ++o)
                outs.emplace_back(computed[o].name, ct.outputTypes[o]);
            if (batchExecutionEnabled()) {
                std::vector<std::vector<std::int64_t> *> out_vecs;
                for (auto &o : outs)
                    out_vecs.push_back(o.vals.get());
                runTransformBatched(ct, inputs, rel.rows,
                                    std::move(out_vecs));
            } else {
                std::vector<std::int64_t> row_in, row_out;
                for (std::int64_t r = 0; r < rel.rows; ++r) {
                    row_in.clear();
                    for (const auto &ic : inputs)
                        row_in.push_back(ic.get(r));
                    array.runRow(row_in, row_out);
                    for (std::size_t o = 0; o < outs.size(); ++o)
                        outs[o].push(row_out[o]);
                }
            }
            stats.transformedRows += rel.rows;
            double vectors = std::ceil(static_cast<double>(rel.rows)
                                       / kRowVectorSize);
            accrue(obs::PipeStage::Transformer,
                   vectors * array.maxProgramLength() / config.clockHz);
            // Computed columns follow the pass-through data columns.
            int next_data = static_cast<int>(new_data.size());
            for (auto &out_col : outs)
                new_data.push_back(std::move(out_col));
            for (auto &dc : new_schema) {
                if (dc.dataColIdx == -2) {
                    dc.dataColIdx = next_data++;
                    dc.type = new_data[dc.dataColIdx].type;
                }
            }
            stats.taskLog.push_back(
                "rowTransf: " + std::to_string(computed.size())
                + " output column(s), "
                + std::to_string(ct.programs.size()) + " PE(s), "
                + std::to_string(ct.totalInstructions) + " instr");
            ++stats.tasksExecuted;
            recordTask("rowTransf", &rel, rel.rows, rel.rows);
        }
        // Transform outputs stream directly into the next pipeline
        // stage (Sec. IV: "without materialising it in DRAM"), so no
        // device DRAM is charged here; persistent stage outputs are
        // charged when they are parked (runDeviceStage).
        rel.dataCols = std::move(new_data);
        rel.schema = std::move(new_schema);
    }

    void
    applyOps(DeviceRelation &rel, const std::vector<StageOp> &ops,
             bool leaf_scan, const std::string &what)
    {
        for (const auto &op : ops) {
            if (op.kind == StageOp::Kind::Filter)
                applyFilter(rel, op.predicate, leaf_scan, what);
            else
                applyProject(rel, op.projections);
        }
    }

    // ---------------------------------------------------------- join

    /**
     * Device DRAM bytes a persistent relation occupies. Sorted RowID
     * columns can be stored as row masks over the base table (the
     * paper's maskSrc representation), so they cost
     * min(rows x 8B, tableRows / 8).
     */
    /**
     * Bytes per RowID: MonetDB oids (and the paper's sorter value
     * lanes, Table IV) are 64-bit. Tiny dimension tables (nation,
     * region) dictionary-compress to one byte at any scale.
     */
    std::int64_t
    bytesPerRowId(std::int64_t rows) const
    {
        // TPC-H's nation/region tables do not grow with the scale
        // factor, so small tables stay one-byte at any paper scale.
        return rows < 256 ? 1 : 8;
    }

    std::int64_t
    relationDramBytes(const DeviceRelation &rel) const
    {
        std::int64_t total =
            static_cast<std::int64_t>(rel.dataCols.size()) * rel.rows * 8;
        for (std::size_t i = 0; i < rel.rowids.size(); ++i) {
            const auto &ids = *rel.rowids[i];
            std::int64_t table_rows =
                baseTable(rel.leafRefs[i].table).numRows();
            std::int64_t bytes = rel.rows * bytesPerRowId(table_rows);
            if (std::is_sorted(ids.begin(), ids.end())) {
                // Sorted RowID sets store as row masks (maskSrc form).
                bytes = std::min(bytes, table_rows / 8 + 1);
            }
            total += bytes;
        }
        return total;
    }

    /**
     * Drop RowID columns (backward pointers) no longer needed above
     * this point of the join tree -- the paper keeps only "row indices
     * of tables and join keys" in DRAM (Sec. VI-D).
     */
    void
    pruneRelation(DeviceRelation &rel,
                  const std::set<std::string> &needed) const
    {
        std::vector<char> leaf_live(rel.leafRefs.size(), 0);
        for (const auto &c : rel.schema) {
            if (c.leafIdx >= 0 && needed.count(c.name))
                leaf_live[c.leafIdx] = 1;
        }
        std::vector<int> leaf_map(rel.leafRefs.size(), -1);
        std::vector<LeafRef> refs;
        std::vector<std::shared_ptr<std::vector<RowId>>> ids;
        for (std::size_t i = 0; i < rel.leafRefs.size(); ++i) {
            if (leaf_live[i]) {
                leaf_map[i] = static_cast<int>(refs.size());
                refs.push_back(rel.leafRefs[i]);
                ids.push_back(rel.rowids[i]);
            }
        }
        std::vector<DevCol> schema;
        for (const auto &c : rel.schema) {
            if (c.leafIdx >= 0) {
                if (leaf_map[c.leafIdx] >= 0) {
                    DevCol dc = c;
                    dc.leafIdx = leaf_map[c.leafIdx];
                    schema.push_back(dc);
                }
            } else {
                schema.push_back(c); // computed columns always kept
            }
        }
        rel.leafRefs = std::move(refs);
        rel.rowids = std::move(ids);
        rel.schema = std::move(schema);
    }

    /** Is @p name a dense-primary-key column of its base table? */
    bool
    isDensePk(const DeviceRelation &rel, const std::string &name) const
    {
        const DevCol &dc = resolve(rel, name);
        if (dc.leafIdx < 0)
            return false;
        const CatalogEntry &e =
            catalog.get(rel.leafRefs[dc.leafIdx].table);
        return !e.densePrimaryKey.empty()
            && e.densePrimaryKey == dc.baseColumn;
    }

    /** <key, tupleIdx> stream for @p key over @p rel. */
    KvStream
    keyStream(DeviceRelation &rel, const std::string &key, bool account)
    {
        RelColumn c = gather(rel, key, account);
        KvStream s(rel.rows);
        for (std::int64_t i = 0; i < rel.rows; ++i)
            s[i] = {c.get(i), i};
        return s;
    }

    /**
     * Sort a key stream with the streaming sorter unless it is already
     * ordered (MonetDB keeps base tables in RowID order, so fact-table
     * foreign keys like l_orderkey arrive sorted).
     */
    void
    sortStream(KvStream &s, const std::string &what)
    {
        bool already = std::is_sorted(
            s.begin(), s.end(),
            [](const Kv &a, const Kv &b) { return a.key < b.key; });
        if (already) {
            stats.taskLog.push_back(what + ": already sorted, "
                                    "sorter bypassed");
            return;
        }
        std::string slot = freshSlot("sort");
        charge(slot, static_cast<std::int64_t>(s.size()) * kKvBytes);
        SorterStats st = sorter.sort(s, true);
        accrue(obs::PipeStage::Swissknife, st.seconds);
        stats.taskLog.push_back(
            what + ": SORT " + std::to_string(st.recordsIn)
            + " records, " + std::to_string(st.numBlocks) + " block(s)");
        ++stats.tasksExecuted;
        recordTask("sort " + what, nullptr,
                   static_cast<std::int64_t>(s.size()),
                   static_cast<std::int64_t>(s.size()));
        release(slot);
        // The sorted run stays resident until the merge completes.
        charge(freshSlot("sorted"),
               static_cast<std::int64_t>(s.size()) * kKvBytes);
    }

    /**
     * Evaluate the residual predicate (plus trailing key equalities)
     * over candidate tuple pairs; returns the pass mask.
     */
    std::vector<char>
    residualMask(DeviceRelation &l, DeviceRelation &r,
                 const ShapeNode &node,
                 const std::vector<std::int64_t> &li,
                 const std::vector<std::int64_t> &ri)
    {
        ExprPtr pred = node.residual;
        for (std::size_t k = 1; k < node.leftKeys.size(); ++k) {
            ExprPtr e = eq(col(node.leftKeys[k]), col(node.rightKeys[k]));
            pred = pred ? andE(pred, e) : e;
        }
        std::vector<char> pass(li.size(), 1);
        if (!pred)
            return pass;
        std::vector<std::string> cols;
        collectColumns(pred, cols);
        // Build a combined candidate view: columns resolved on either
        // side, gathered per candidate pair.
        RelTable view;
        for (const auto &cname : cols) {
            bool from_left = true;
            try {
                resolve(l, cname);
            } catch (const SuspendError &) {
                from_left = false;
            }
            DeviceRelation &side = from_left ? l : r;
            const std::vector<std::int64_t> &idx = from_left ? li : ri;
            RelColumn cc;
            if (batchExecutionEnabled()) {
                // Same modelled charge as the full gather; values are
                // fetched at the candidate pairs only.
                chargeGather(side, cname);
                cc = gatherAtIdx(side, cname, idx);
            } else {
                RelColumn full = gather(side, cname, true);
                cc = RelColumn(cname, full.type);
                cc.heap = full.heap;
                cc.vals->reserve(idx.size());
                for (std::int64_t i : idx)
                    cc.vals->push_back(full.get(i));
            }
            view.addColumn(std::move(cc));
        }
        BitVector mask = evalPredicate(pred, view);
        for (std::size_t i = 0; i < pass.size(); ++i)
            pass[i] = mask.get(static_cast<std::int64_t>(i));
        return pass;
    }

    /** Combine two relations on matched tuple index pairs (inner). */
    DeviceRelation
    combine(const DeviceRelation &l, const DeviceRelation &r,
            const std::vector<std::int64_t> &li,
            const std::vector<std::int64_t> &ri)
    {
        DeviceRelation out;
        out.leafRefs = l.leafRefs;
        out.leafRefs.insert(out.leafRefs.end(), r.leafRefs.begin(),
                            r.leafRefs.end());
        auto gather_ids = [&](const DeviceRelation &side,
                              const std::vector<std::int64_t> &idx) {
            for (const auto &ids : side.rowids) {
                auto next = std::make_shared<std::vector<RowId>>();
                next->reserve(idx.size());
                for (std::int64_t k : idx)
                    next->push_back((*ids)[k]);
                out.rowids.push_back(std::move(next));
            }
        };
        gather_ids(l, li);
        gather_ids(r, ri);
        auto gather_data = [&](const DeviceRelation &side,
                               const std::vector<std::int64_t> &idx) {
            for (const auto &dc : side.dataCols) {
                RelColumn next(dc.name, dc.type);
                next.heap = dc.heap;
                next.vals->reserve(idx.size());
                for (std::int64_t k : idx)
                    next.vals->push_back(dc.get(k));
                out.dataCols.push_back(std::move(next));
            }
        };
        gather_data(l, li);
        gather_data(r, ri);
        out.rows = static_cast<std::int64_t>(li.size());
        out.schema = l.schema;
        int leaf_off = static_cast<int>(l.leafRefs.size());
        int data_off = static_cast<int>(l.dataCols.size());
        for (DevCol dc : r.schema) {
            if (dc.leafIdx >= 0)
                dc.leafIdx += leaf_off;
            if (dc.dataColIdx >= 0)
                dc.dataColIdx += data_off;
            out.schema.push_back(dc);
        }
        return out;
    }

    DeviceRelation
    execJoin(const ShapeNode &node, DeviceRelation l, DeviceRelation r,
             const std::set<std::string> &needed)
    {
        if (node.leftKeys.empty())
            throw SuspendError{"keyless (broadcast) join"};
        if (node.joinType == JoinType::LeftOuter)
            throw SuspendError{"outer join has no device path"};

        KvStream ls = keyStream(l, node.leftKeys[0], true);
        KvStream rs = keyStream(r, node.rightKeys[0], true);

        bool l_sorted = std::is_sorted(
            ls.begin(), ls.end(),
            [](const Kv &a, const Kv &b) { return a.key < b.key; });
        bool r_sorted = std::is_sorted(
            rs.begin(), rs.end(),
            [](const Kv &a, const Kv &b) { return a.key < b.key; });

        bool probe_right = isDensePk(r, node.rightKeys[0]);
        bool probe_left = node.joinType == JoinType::Inner
            && isDensePk(l, node.leftKeys[0]);

        std::vector<std::int64_t> li, ri;
        std::string path;
        if (probe_right || (probe_left && !probe_right)) {
            // RowID probe (MonetDB materialised-RowID optimisation):
            // the PK side becomes a direct-index structure over its
            // base table's row space; the other side streams.
            DeviceRelation &pk = probe_right ? r : l;
            KvStream &pk_keys = probe_right ? rs : ls;
            KvStream &stream = probe_right ? ls : rs;
            const DevCol &dc =
                resolve(pk, probe_right ? node.rightKeys[0]
                                        : node.leftKeys[0]);
            const Table &pk_table =
                baseTable(pk.leafRefs[dc.leafIdx].table);
            std::int64_t domain = pk_table.numRows();
            // Dense PKs map key -> RowID by subtracting the first key
            // (1 for TPC-H entity keys, 0 for nation/region).
            std::int64_t base = domain > 0
                ? pk_table.col(dc.baseColumn).get(0) : 0;
            std::string slot = freshSlot("probe");
            charge(slot, domain * bytesPerRowId(domain));
            std::vector<std::int64_t> index(domain, -1);
            for (const Kv &kv : pk_keys) {
                std::int64_t key = kv.key - base;
                if (key >= 0 && key < domain)
                    index[key] = kv.value;
            }
            for (const Kv &kv : stream) {
                std::int64_t key = kv.key - base;
                std::int64_t hit =
                    key >= 0 && key < domain ? index[key] : -1;
                if (hit >= 0) {
                    if (probe_right) {
                        li.push_back(kv.value);
                        ri.push_back(hit);
                    } else {
                        li.push_back(hit);
                        ri.push_back(kv.value);
                    }
                } else if (node.joinType == JoinType::LeftAnti
                           && probe_right) {
                    li.push_back(kv.value);
                    ri.push_back(-1);
                }
            }
            release(slot);
            path = "MERGE via RowID probe";
        } else {
            // Sort-merge path through the streaming sorter.
            if (!l_sorted)
                sortStream(ls, "left " + node.leftKeys[0]);
            else
                std::stable_sort(ls.begin(), ls.end(),
                                 [](const Kv &a, const Kv &b) {
                                     return a.key < b.key;
                                 });
            if (!r_sorted)
                sortStream(rs, "right " + node.rightKeys[0]);
            else
                std::stable_sort(rs.begin(), rs.end(),
                                 [](const Kv &a, const Kv &b) {
                                     return a.key < b.key;
                                 });
            // Generalised merge-intersect with bounded duplicate
            // products per key.
            std::size_t i = 0, j = 0;
            while (i < ls.size() && j < rs.size()) {
                if (ls[i].key < rs[j].key) {
                    ++i;
                } else if (rs[j].key < ls[i].key) {
                    ++j;
                } else {
                    std::int64_t key = ls[i].key;
                    std::size_t i2 = i, j2 = j;
                    while (i2 < ls.size() && ls[i2].key == key)
                        ++i2;
                    while (j2 < rs.size() && rs[j2].key == key)
                        ++j2;
                    if ((i2 - i) * (j2 - j) > 1000000) {
                        throw SuspendError{
                            "join key fan-out too large for the merger"};
                    }
                    for (std::size_t a = i; a < i2; ++a)
                        for (std::size_t b = j; b < j2; ++b) {
                            li.push_back(ls[a].value);
                            ri.push_back(rs[b].value);
                        }
                    i = i2;
                    j = j2;
                }
            }
            double merge_bytes =
                static_cast<double>(ls.size() + rs.size()) * kKvBytes;
            accrue(obs::PipeStage::Swissknife,
                   merge_bytes / StreamingSorter::kDatapathBytesPerSec);
            path = "SORT_MERGE";
        }

        std::vector<char> pass = residualMask(l, r, node, li, ri);

        DeviceRelation out;
        if (node.joinType == JoinType::Inner) {
            std::vector<std::int64_t> fl, fr;
            for (std::size_t k = 0; k < li.size(); ++k) {
                if (pass[k] && ri[k] >= 0) {
                    fl.push_back(li[k]);
                    fr.push_back(ri[k]);
                }
            }
            out = combine(l, r, fl, fr);
        } else {
            // Semi/anti: keep left tuples by match status.
            std::vector<char> matched(l.rows, 0);
            for (std::size_t k = 0; k < li.size(); ++k)
                if (pass[k] && ri[k] >= 0)
                    matched[li[k]] = 1;
            bool want = node.joinType == JoinType::LeftSemi;
            std::vector<std::int64_t> keep;
            for (std::int64_t t = 0; t < l.rows; ++t)
                if (static_cast<bool>(matched[t]) == want)
                    keep.push_back(t);
            out = l;
            compact(out, keep);
        }
        pruneRelation(out, needed);
        out.dramSlot = freshSlot("tuples");
        charge(out.dramSlot, relationDramBytes(out));
        // Inputs consumed by this Table Task are garbage-collected
        // immediately (Sec. VI-D).
        if (!l.dramSlot.empty())
            release(l.dramSlot);
        if (!r.dramSlot.empty())
            release(r.dramSlot);
        stats.taskLog.push_back(
            "join " + node.leftKeys[0] + "=" + node.rightKeys[0] + " ["
            + path + "] -> " + std::to_string(out.rows) + " tuples");
        ++stats.tasksExecuted;
        recordTask("join " + node.leftKeys[0] + "=" + node.rightKeys[0],
                   nullptr, l.rows + r.rows, out.rows);
        return out;
    }

    // -------------------------------------------------- aggregation

    RelTable
    execGroupBy(DeviceRelation &rel, const GroupBySpec &spec)
    {
        // Aggregate inputs become one Row Transformation Program.
        std::map<std::string, ColumnType> schema_types;
        for (const auto &c : rel.schema)
            schema_types[c.name] = c.type;

        std::vector<NamedExpr> agg_inputs;
        std::vector<HwAgg> hw;
        // outIdx -> (slot of value, slot of count or -1). The device
        // path never sees NULLs, so every Count/Avg denominator equals
        // the group's row count: all of them share ONE Cnt slot (this
        // is how q1's eight aggregates fit eight bucket slots).
        struct Slot { int value; int count; AggKind kind;
                      ColumnType inType; };
        std::vector<Slot> slots;
        int shared_cnt = -1;
        auto shared_count_slot = [&]() {
            if (shared_cnt < 0) {
                shared_cnt = static_cast<int>(hw.size());
                hw.push_back(HwAgg::Cnt);
            }
            return shared_cnt;
        };
        // transformIdx per aggregate: index into the PE program's
        // outputs (-1 for pure counts, which need no value stream).
        std::vector<int> transform_idx;
        for (const auto &a : spec.aggregates) {
            ColumnType in_type = ColumnType::Int64;
            Slot s{-1, -1, a.kind, in_type};
            int tix = -1;
            switch (a.kind) {
              case AggKind::Sum:
                s.value = static_cast<int>(hw.size());
                hw.push_back(HwAgg::Sum);
                break;
              case AggKind::Min:
                s.value = static_cast<int>(hw.size());
                hw.push_back(HwAgg::Min);
                break;
              case AggKind::Max:
                s.value = static_cast<int>(hw.size());
                hw.push_back(HwAgg::Max);
                break;
              case AggKind::Count:
                s.count = shared_count_slot();
                break;
              case AggKind::Avg:
                s.value = static_cast<int>(hw.size());
                hw.push_back(HwAgg::Sum);
                s.count = shared_count_slot();
                break;
              case AggKind::CountDistinct:
                throw SuspendError{"count(distinct) on device"};
            }
            if (s.value >= 0) {
                AQ_ASSERT(a.input, "value aggregate without input");
                tix = static_cast<int>(agg_inputs.size());
                agg_inputs.push_back(
                    {a.name, resolveForTransform(a.input, rel)});
            }
            transform_idx.push_back(tix);
            slots.push_back(s);
        }
        if (static_cast<int>(hw.size()) > config.aggSlotsPerBucket) {
            throw SuspendError{
                "aggregate needs " + std::to_string(hw.size())
                + " bucket slots, hardware has "
                + std::to_string(config.aggSlotsPerBucket)};
        }

        std::optional<CompiledTransform> ct;
        std::optional<SystolicArray> array;
        std::vector<RelColumn> inputs;
        if (!agg_inputs.empty()) {
            TransformResult tr = compileTransform(agg_inputs,
                                                  schema_types, config,
                                                  true);
            if (!tr.ok())
                throw SuspendError{"aggregate transform: " + tr.error};
            ct = std::move(*tr.program);
            for (std::size_t i = 0; i < slots.size(); ++i) {
                if (transform_idx[i] >= 0)
                    slots[i].inType = ct->outputTypes[transform_idx[i]];
            }
            for (const auto &icol : ct->inputColumns)
                inputs.push_back(gather(rel, icol, true));
            array.emplace(ct->buildArray());
        }
        std::vector<RelColumn> group_cols;
        for (const auto &g : spec.groupColumns)
            group_cols.push_back(gather(rel, g, true));

        GroupByAccelerator gb(config,
                              static_cast<int>(spec.groupColumns.size()),
                              hw);
        // Batched: run the whole transform column-at-a-time first; the
        // per-row loop below then only feeds the accelerator. The
        // hash-update order (and hence spill behaviour) is unchanged.
        bool batched = array && batchExecutionEnabled();
        std::vector<std::vector<std::int64_t>> tcols;
        if (batched) {
            tcols.resize(ct->outputNames.size());
            std::vector<std::vector<std::int64_t> *> out_vecs;
            for (auto &c : tcols)
                out_vecs.push_back(&c);
            runTransformBatched(*ct, inputs, rel.rows,
                                std::move(out_vecs));
        }
        std::vector<std::int64_t> row_in, row_out, gid(group_cols.size()),
            vals(hw.size(), 1);
        for (std::int64_t r = 0; r < rel.rows; ++r) {
            if (array && !batched) {
                row_in.clear();
                for (const auto &ic : inputs)
                    row_in.push_back(ic.get(r));
                array->runRow(row_in, row_out);
            }
            for (std::size_t g = 0; g < group_cols.size(); ++g)
                gid[g] = group_cols[g].get(r);
            for (std::size_t s = 0; s < slots.size(); ++s) {
                if (slots[s].value >= 0)
                    vals[slots[s].value] = batched
                        ? tcols[transform_idx[s]][r]
                        : row_out[transform_idx[s]];
            }
            gb.update(gid, vals);
        }
        stats.transformedRows += rel.rows;
        double vectors = std::ceil(static_cast<double>(rel.rows)
                                   / kRowVectorSize);
        double transform_t = array
            ? vectors * array->maxProgramLength() / config.clockHz
            : vectors / config.clockHz;
        // Spill-over accumulation runs on the host concurrently; the
        // device is not slowed as long as the host keeps up (~200M
        // lookup-accumulates/s, Sec. VI-E).
        double spill_t = gb.stats().rowsSpilled / 200e6;
        // Attribution: the group-by accelerator (a Swissknife unit)
        // only bounds the task when the spill drain outruns the feed.
        accrue(transform_t >= spill_t ? obs::PipeStage::Transformer
                                      : obs::PipeStage::Swissknife,
               std::max(transform_t, spill_t));
        stats.spillRows += gb.stats().rowsSpilled;
        stats.spillGroups += gb.stats().groupsSpilled;
        stats.hostResidual.rowOps += gb.stats().rowsSpilled;

        auto groups = gb.finish();

        RelTable out;
        for (std::size_t g = 0; g < spec.groupColumns.size(); ++g) {
            RelColumn c(spec.groupColumns[g], group_cols[g].type);
            c.heap = group_cols[g].heap;
            for (const auto &gr : groups)
                c.push(gr.groupId[g]);
            out.addColumn(std::move(c));
        }
        bool empty_global = groups.empty() && spec.groupColumns.empty();
        for (std::size_t s = 0; s < slots.size(); ++s) {
            const Slot &slot = slots[s];
            ColumnType out_type = slot.inType;
            if (slot.kind == AggKind::Count)
                out_type = ColumnType::Int64;
            if (slot.kind == AggKind::Avg)
                out_type = ColumnType::Decimal;
            RelColumn c(spec.aggregates[s].name, out_type);
            for (const auto &gr : groups) {
                std::int64_t v = 0;
                switch (slot.kind) {
                  case AggKind::Sum:
                    v = gr.aggregates[slot.value];
                    break;
                  case AggKind::Min:
                  case AggKind::Max:
                    v = gr.counts[slot.value]
                        ? gr.aggregates[slot.value] : kNullValue;
                    break;
                  case AggKind::Count:
                    v = gr.aggregates[slot.count];
                    break;
                  case AggKind::Avg: {
                    std::int64_t sum = gr.aggregates[slot.value];
                    std::int64_t cnt = gr.aggregates[slot.count];
                    if (slot.inType != ColumnType::Decimal)
                        sum *= kDecimalScale;
                    v = cnt ? sum / cnt : kNullValue;
                    break;
                  }
                  default:
                    break;
                }
                c.push(v);
            }
            if (empty_global) {
                c.push(slot.kind == AggKind::Count ? 0 : kNullValue);
            }
            out.addColumn(std::move(c));
        }
        stats.taskLog.push_back(
            "AGGREGATE" + std::string(spec.groupColumns.empty()
                                      ? "" : "_GROUPBY")
            + ": " + std::to_string(groups.size()) + " group(s), "
            + std::to_string(gb.stats().groupsSpilled)
            + " spill-over group(s)");
        ++stats.tasksExecuted;
        recordTask("aggregate", &rel, rel.rows, out.numRows());
        return out;
    }

    // ----------------------------------------------------- stage run

    DeviceRelation
    evalNode(const StageShape &shape, int node_idx,
             const std::set<std::string> &needed)
    {
        const ShapeNode &node = shape.nodes[node_idx];
        if (node.isLeaf) {
            const LeafInfo &leaf = shape.leaves[node.leaf];
            DeviceRelation rel;
            if (!leaf.table.empty()) {
                rel = makeBaseLeaf(leaf);
                // Leaf scan: stream the predicate columns from flash.
                // (Filters account their own column reads at density 1.)
            } else {
                rel = makeStageLeaf(leaf);
            }
            applyOps(rel, leaf.ops, true,
                     leaf.table.empty() ? leaf.stageRef : leaf.table);
            return rel;
        }
        // Children additionally need this join's keys and residual.
        std::set<std::string> child_needed = needed;
        for (const auto &k : node.leftKeys)
            child_needed.insert(k);
        for (const auto &k : node.rightKeys)
            child_needed.insert(k);
        if (node.residual) {
            std::vector<std::string> cols;
            collectColumns(node.residual, cols);
            child_needed.insert(cols.begin(), cols.end());
        }
        DeviceRelation l = evalNode(shape, node.left, child_needed);
        DeviceRelation r = evalNode(shape, node.right, child_needed);
        return execJoin(node, std::move(l), std::move(r), needed);
    }

    /** Run post-ops / order-by on the host engine (residual work). */
    RelTable
    hostFinish(RelTable table, const std::vector<StageOp> &ops,
               const std::vector<SortKey> &sort_keys, std::int64_t limit)
    {
        PlanPtr p = scanStage("__device_out");
        for (const auto &op : ops) {
            if (op.kind == StageOp::Kind::Filter)
                p = filter(p, op.predicate);
            else
                p = project(p, op.projections);
        }
        if (!sort_keys.empty())
            p = orderBy(p, sort_keys, limit);
        std::map<std::string, RelTable> env;
        env["__device_out"] = std::move(table);
        return residual.runPlan(p, env);
    }

    /** Execute one device-eligible stage. */
    void
    runDeviceStage(const Stage &stage, const StageShape &shape)
    {
        // Columns the pipeline above the join tree will touch; when
        // the stage has neither a final projection nor a group-by, the
        // full width is needed and nothing can be pruned.
        std::set<std::string> needed;
        bool narrow = shape.groupBy.has_value();
        for (const auto &op : shape.rootOps) {
            if (op.kind == StageOp::Kind::Project)
                narrow = true;
            std::vector<std::string> cols;
            if (op.predicate)
                collectColumns(op.predicate, cols);
            for (const auto &ne : op.projections)
                collectColumns(ne.expr, cols);
            needed.insert(cols.begin(), cols.end());
        }
        if (shape.groupBy) {
            for (const auto &g : shape.groupBy->groupColumns)
                needed.insert(g);
            for (const auto &a : shape.groupBy->aggregates) {
                if (a.input) {
                    std::vector<std::string> cols;
                    collectColumns(a.input, cols);
                    needed.insert(cols.begin(), cols.end());
                }
            }
        }
        if (!narrow) {
            for (const auto &leaf : shape.leaves) {
                for (const auto &c : leaf.columns) {
                    needed.insert(leaf.alias.empty()
                                      ? c : leaf.alias + "." + c);
                }
            }
            needed.insert("__everything__");
        }

        DeviceRelation root = evalNode(shape, shape.root, needed);
        applyOps(root, shape.rootOps, false, "root");

        if (shape.groupBy) {
            RelTable grouped = execGroupBy(root, *shape.groupBy);
            if (!root.dramSlot.empty())
                release(root.dramSlot);
            stats.dmaBytes += grouped.residentBytes();
            RelTable final = hostFinish(std::move(grouped),
                                        shape.postOps, shape.sortKeys,
                                        shape.limit);
            stageTables[stage.id] = std::move(final);
            return;
        }
        if (shape.postOps.empty() && shape.limit > 0
                && shape.sortKeys.size() == 1
                && resolve(root, shape.sortKeys[0].column).type
                       != ColumnType::Varchar) {
            // TOPK in the SQL Swissknife: a bitonic-sorter + VCAS chain
            // keeps the k biggest keys (Sec. VI-C, Fig. 13).
            RelColumn keys = gather(root, shape.sortKeys[0].column,
                                    true);
            bool desc = shape.sortKeys[0].descending;
            TopKAccelerator topk(static_cast<int>(shape.limit),
                                 kRowVectorSize);
            for (std::int64_t r = 0; r < root.rows; ++r)
                topk.push({desc ? keys.get(r) : -keys.get(r), r});
            KvStream best = topk.finish();
            std::vector<std::int64_t> keep;
            for (const Kv &kv : best)
                keep.push_back(kv.value);
            std::int64_t before = root.rows;
            compact(root, keep);
            stats.taskLog.push_back(
                "TOPK: kept " + std::to_string(root.rows) + " of "
                + std::to_string(before) + " rows ("
                + std::to_string(topk.chainLength())
                + " VCAS block(s))");
            ++stats.tasksExecuted;
            recordTask("topk", &root, before, root.rows);
            RelTable t = materialize(root, true);
            stats.dmaBytes += t.residentBytes();
            stageTables[stage.id] = std::move(t);
            return;
        }
        if (!shape.sortKeys.empty() || !shape.postOps.empty()) {
            // Sorted / post-processed outputs ship to the host.
            RelTable t = materialize(root, true);
            stats.dmaBytes += t.residentBytes();
            RelTable final = hostFinish(std::move(t), shape.postOps,
                                        shape.sortKeys, shape.limit);
            stageTables[stage.id] = std::move(final);
            return;
        }
        // Plain tuple output stays device-resident; it is the only
        // intermediate that must persist across Table Tasks, so it is
        // what device DRAM really holds (Sec. VI-D).
        if (!root.dramSlot.empty())
            release(root.dramSlot);
        root.dramSlot = freshSlot("stage:" + stage.id);
        charge(root.dramSlot, relationDramBytes(root));
        deviceRels[stage.id] = std::move(root);
    }

    /** Execute one stage on the host (materialising device inputs). */
    void
    runHostStage(const Stage &stage)
    {
        // Materialise any device-resident stage this plan consumes.
        std::vector<PlanPtr> work{stage.plan};
        while (!work.empty()) {
            PlanPtr p = work.back();
            work.pop_back();
            if (p->kind == PlanKind::Scan && !p->scanStage.empty()
                    && !stageTables.count(p->scanStage)) {
                auto it = deviceRels.find(p->scanStage);
                if (it != deviceRels.end()) {
                    RelTable t = materialize(it->second, true);
                    stats.dmaBytes += t.residentBytes();
                    stageTables[p->scanStage] = std::move(t);
                }
            }
            for (const auto &c : p->children)
                work.push_back(c);
        }
        stageTables[stage.id] = residual.runPlan(stage.plan, stageTables);
    }
};

// =====================================================================
// AquomanDevice
// =====================================================================

AquomanDevice::AquomanDevice(const Catalog &cat, ControllerSwitch &sw,
                             AquomanConfig cfg)
    : catalog(cat), flashSwitch(sw), config(std::move(cfg))
{
}

OffloadedQueryResult
AquomanDevice::runQuery(const Query &q)
{
    Impl impl(catalog, flashSwitch, config);
    TaskCompiler compiler(catalog, config);
    OffloadedQueryResult out;
    out.compilation = compiler.compile(q);

    obs::SimTracer &tracer = obs::SimTracer::global();
    if (tracer.enabled()) {
        std::string label =
            config.traceLabel.empty() ? q.name : config.traceLabel;
        if (label.empty())
            label = "query";
        impl.taskTrack =
            tracer.track("aquoman:" + label, "table-tasks");
        impl.stageTrack = tracer.track("aquoman:" + label, "stages");
    }

    bool degraded = false; // a runtime suspension poisons later stages
    for (std::size_t s = 0; s < q.stages.size(); ++s) {
        const Stage &stage = q.stages[s];
        const StageDecision &d = out.compilation.stages[s];
        impl.currentStage = stage.id;
        bool try_device = d.onDevice && !degraded;
        if (try_device) {
            // A runtime-degraded dependency forces the host path.
            for (const auto &leaf : d.shape.leaves) {
                if (!leaf.stageRef.empty()
                        && !impl.deviceRels.count(leaf.stageRef)
                        && impl.stageTables.count(leaf.stageRef)) {
                    try_device = false;
                    break;
                }
            }
        }
        if (try_device) {
            std::int64_t dram_before = impl.dram.usedBytes();
            double stage_t0 = impl.stats.deviceSeconds;
            try {
                impl.runDeviceStage(stage, d.shape);
                impl.stats.deviceStages.push_back(stage.id);
                if (impl.stageTrack >= 0) {
                    tracer.span(impl.stageTrack, "stage " + stage.id,
                                "device-stage", stage_t0,
                                impl.stats.deviceSeconds);
                }
                continue;
            } catch (const SuspendError &e) {
                impl.stats.taskLog.push_back(
                    "SUSPEND stage '" + stage.id + "': " + e.reason);
                impl.stats.hostStages.emplace_back(stage.id, e.reason);
                impl.stats.suspensions.push_back(
                    {stage.id, e.code, e.reason});
                ++impl.stats.hostResidual.suspendCount;
                if (e.dram)
                    degraded = true;
                if (impl.stageTrack >= 0) {
                    tracer.instant(
                        impl.stageTrack, "suspend " + stage.id,
                        "device-stage", impl.stats.deviceSeconds,
                        {obs::arg("reason", e.reason)});
                }
                // Roll back partial allocations of this stage.
                (void)dram_before;
                impl.dram.reset();
                impl.deviceRels.erase(stage.id);
                impl.runHostStage(stage);
                continue;
            }
        }
        impl.stats.hostStages.emplace_back(
            stage.id, d.onDevice ? "degraded dependency" : d.reason);
        impl.stats.suspensions.push_back(
            {stage.id,
             d.onDevice ? obs::SuspendReason::DramOverflow
                        : d.reasonCode,
             d.onDevice ? "degraded dependency" : d.reason});
        if (impl.stageTrack >= 0) {
            tracer.instant(impl.stageTrack, "host stage " + stage.id,
                           "host-stage", impl.stats.deviceSeconds,
                           {obs::arg("reason", d.onDevice
                                     ? "degraded dependency"
                                     : d.reason)});
        }
        impl.runHostStage(stage);
    }

    impl.currentStage.clear();
    // The answer is the last stage's table (materialise if needed).
    const std::string &last = q.stages.back().id;
    if (!impl.stageTables.count(last)) {
        auto it = impl.deviceRels.find(last);
        AQ_ASSERT(it != impl.deviceRels.end(), "no result for stage ",
                  last);
        RelTable t = impl.materialize(it->second, true);
        impl.stats.dmaBytes += t.residentBytes();
        impl.stageTables[last] = std::move(t);
    }
    out.result = impl.stageTables[last];
    // Work accrued after the last explicit Table Task (final gathers,
    // result DMA) becomes one closing record so the structured trace
    // partitions the totals exactly.
    if (impl.stats.deviceSeconds > impl.taskMarkSeconds
            || impl.stats.deviceFlashBytes > impl.taskMarkBytes)
        impl.recordTask("epilogue: gathers + result DMA");
    impl.stats.hostResidual.merge(impl.residual.metrics());
    // Everything the host touched to finish the query: DMA'd device
    // output plus the base-table bytes of suspended stages.
    impl.stats.hostResidual.hostFinishBytes =
        impl.stats.dmaBytes + impl.stats.hostResidual.touchedBaseBytes;
    out.stats = std::move(impl.stats);
    out.stats.deviceDramPeak = std::max(out.stats.deviceDramPeak,
                                        impl.dram.peakBytes());
    return out;
}

} // namespace aquoman
