/**
 * @file
 * Compiles Row Transformation Programs: the per-row expression DAG of a
 * Table Task is lowered to the PE ISA (Table II), common subexpressions
 * are shared (the paper's FORK nodes), live values are forwarded
 * between PEs through their FIFOs (PASS nodes), and the linear schedule
 * is partitioned across the systolic array under the register-file and
 * instruction-memory budgets.
 *
 * The compiler operates on integer-resolved expressions: string
 * constants must already be interned to heap offsets and LIKE
 * predicates replaced by regex-accelerator bit columns (the Table-Task
 * compiler does both).
 */

#ifndef AQUOMAN_AQUOMAN_TRANSFORM_COMPILER_HH
#define AQUOMAN_AQUOMAN_TRANSFORM_COMPILER_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "aquoman/config.hh"
#include "aquoman/pe.hh"
#include "relalg/plan.hh"

namespace aquoman {

/** A compiled Row Transformation Program. */
struct CompiledTransform
{
    /** Columns streamed into PE0's input FIFO, in arrival order. */
    std::vector<std::string> inputColumns;

    /** Names and types of the produced intermediate-table columns. */
    std::vector<std::string> outputNames;
    std::vector<ColumnType> outputTypes;

    /** Per-PE instruction memories. */
    std::vector<std::vector<PeInstruction>> programs;

    /** Total instructions including PASS/forwarding overhead. */
    int totalInstructions = 0;

    /** True when the program fits the FPGA profile (PEs x slots). */
    bool fitsFpgaProfile = false;

    /** Build the array ready to execute. */
    SystolicArray
    buildArray() const
    {
        return SystolicArray(programs);
    }
};

/** Why a transform could not be compiled. */
struct TransformError
{
    std::string reason;
};

/** Result of compilation: a program or a reason it is not offloadable. */
struct TransformResult
{
    std::optional<CompiledTransform> program;
    std::string error;

    bool ok() const { return program.has_value(); }
};

/**
 * Compile @p outputs over a relation whose column types are given by
 * @p schema.
 *
 * @param outputs   named per-row expressions (already string-resolved)
 * @param schema    input column name -> type
 * @param cfg       device configuration (PE count / slots)
 * @param elastic   simulator mode: allow more PEs than cfg provides
 *                  (the paper's simulator assumes "as big a Row
 *                  Transformer as needed")
 */
TransformResult
compileTransform(const std::vector<NamedExpr> &outputs,
                 const std::map<std::string, ColumnType> &schema,
                 const AquomanConfig &cfg, bool elastic = true);

} // namespace aquoman

#endif // AQUOMAN_AQUOMAN_TRANSFORM_COMPILER_HH
