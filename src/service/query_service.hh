/**
 * @file
 * Multi-query AQUOMAN service layer. A QueryService owns an array of M
 * simulated SSDs (each a FlashDevice behind its own ControllerSwitch)
 * with tables row-striped across them by the sharded store, and runs
 * K-at-a-time admission control plus a Table-Task scheduler that
 * interleaves the tasks of in-flight queries across the array — one
 * task in flight per device, round-robin across queries, exactly the
 * one-Table-Task-at-a-time regime the paper's device executes.
 *
 * Query lifecycle: Queued -> Running -> [Suspended ->] HostFinish ->
 * Done. Admission reserves the query's intermediate-DRAM budget on its
 * anchor device through DeviceMemoryManager; a failed reservation (or a
 * mid-plan suspension raised by the device executor, Sec. VI-E) ships
 * the remaining work to the host model, whose storage reads are priced
 * at the controller switch's contention-adjusted host-port bandwidth.
 *
 * Determinism contract (DESIGN.md §9): scheduling runs as a serial
 * discrete-event simulation in modelled time with (time, sequence)
 * event ordering, and every per-query decision depends only on
 * admission order — never on wall-clock or thread count. For a fixed
 * schedule seed, all results, metrics, and modelled times are
 * bit-identical for every AQUOMAN_THREADS value.
 */

#ifndef AQUOMAN_SERVICE_QUERY_SERVICE_HH
#define AQUOMAN_SERVICE_QUERY_SERVICE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aquoman/config.hh"
#include "aquoman/device.hh"
#include "columnstore/catalog.hh"
#include "engine/host_model.hh"
#include "engine/metrics.hh"
#include "flash/controller_switch.hh"
#include "obs/latency_anatomy.hh"
#include "obs/metrics.hh"
#include "obs/profile.hh"
#include "obs/slo.hh"
#include "relalg/plan.hh"

namespace aquoman::service {

using QueryId = std::int64_t;

/** Lifecycle states of a service query. */
enum class QueryState
{
    Queued,     ///< submitted, waiting for an admission slot
    Running,    ///< Table Tasks scheduled across the SSD array
    Suspended,  ///< shipped to the host (DRAM pressure / unsupported op)
    HostFinish, ///< host executing residual stages / receiving results
    Done,       ///< result delivered
    Shed,       ///< dropped by admission control (terminal, no result)
};

const char *queryStateName(QueryState s);

/** One structured lifecycle transition (modelled time). */
struct LifecycleEvent
{
    QueryState state = QueryState::Queued;
    double atSec = 0.0;
};

/**
 * One tenant of the service. The admission scheduler serves tenants by
 * strict priority class (lower number first) and, within a class, by
 * deficit round-robin weighted by @c weight — so a heavy tenant cannot
 * starve a light one in the same class, and a backlogged low-priority
 * tenant cannot delay an urgent one.
 */
struct TenantConfig
{
    std::string name = "default";

    /** Priority class; lower is served strictly first. */
    int priority = 1;

    /** Fair-share weight within the priority class (DRR quantum). */
    double weight = 1.0;

    /**
     * Device-DRAM bytes this tenant may hold across concurrently
     * admitted queries (0 = unlimited). A tenant at its quota stays
     * queued — skipped by the scheduler, not shed — until one of its
     * queries frees its reservation. A quota smaller than one query's
     * reservation sheds every arrival immediately.
     */
    std::int64_t dramQuotaBytes = 0;

    /** Latency SLO (modelled seconds, 0 = none); queries finishing
     *  within it count toward the tenant's goodput. */
    double sloSec = 0.0;
};

/** Static configuration of a QueryService instance. */
struct ServiceConfig
{
    /** SSDs in the array (tables are row-striped across all of them). */
    int numDevices = 4;

    /** Maximum concurrently admitted queries (K). */
    int admissionLimit = 8;

    /**
     * Schedule seed: rotates the anchor-device assignment. Any fixed
     * seed yields a fully deterministic schedule.
     */
    std::uint64_t scheduleSeed = 0;

    /** Per-device AQUOMAN pipeline configuration. */
    AquomanConfig device;

    /** Per-SSD flash configuration (name becomes "<name><i>"). */
    FlashConfig flash;

    /** Host completing suspended queries and residual stages. */
    HostConfig host = HostConfig::large();

    /**
     * Device-DRAM bytes reserved per admitted query for intermediates.
     * 0 means device.dramBytes / admissionLimit, so a full admission
     * window always fits. Reservation failure on the anchor device
     * suspends the query to the host at admission. Resolved once at
     * service construction — later mutation of admissionLimit on a
     * copied config cannot skew the quota of a live service.
     */
    std::int64_t queryDramBytes = 0;

    /**
     * Tenants sharing the service. Empty means one implicit
     * unlimited-quota tenant, which makes admission exact FIFO — the
     * pre-multi-tenant behavior, byte-for-byte.
     */
    std::vector<TenantConfig> tenants;

    /**
     * Bound on each tenant's admission queue (0 = unbounded). An
     * arrival that finds its tenant's queue full is shed: dropped
     * deterministically at its modelled arrival time, recorded with
     * QueryState::Shed, never executed.
     */
    int maxQueuedPerTenant = 0;

    /**
     * Prefix for this service's simulation-trace track names (useful
     * when one process runs several services against one tracer).
     * Empty uses the bare device / "queries" / "host-model" names.
     */
    std::string traceLabel;

    /**
     * SLO engine configuration. When `slo.objectives` is empty, one
     * objective per tenant with sloSec > 0 is derived automatically
     * (target = sloSec, attainment = slo.defaultAttainment), so the
     * engine tracks exactly the SLOs admission already reports on.
     * AQUOMAN_SLO_WINDOW=<seconds> overrides `slo.windowSec`.
     */
    obs::SloConfig slo;

    /**
     * Tail-based trace sampling: 0 (default) keeps every query's
     * spans; N > 0 keeps full span trees only for queries that
     * violated their SLO, were shed, or suspended, plus the
     * deterministic 1-in-N sample of healthy queries (id % N == 0).
     * AQUOMAN_TRACE_SAMPLE=<N> overrides. Sampling keys off the
     * modelled outcome, so the sampled trace is byte-identical across
     * AQUOMAN_THREADS.
     */
    int traceSampleEveryN = 0;

    std::int64_t
    resolvedQueryDramBytes() const
    {
        if (queryDramBytes > 0)
            return queryDramBytes;
        return device.dramBytes / std::max(1, admissionLimit);
    }

    ServiceConfig() { flash.name = "ssd"; }
};

/** Full record of one query's trip through the service. */
struct QueryRecord
{
    QueryId id = -1;
    std::string name;
    QueryState state = QueryState::Queued;

    /** Tenant index (into ServiceConfig::tenants; 0 when none given). */
    int tenant = 0;

    /** True when admission control dropped the query (state Shed). */
    bool shed = false;

    /** Structured shed reason ("queue_full",
     *  "quota_below_reservation"; empty when not shed). */
    std::string shedReason;

    /** Device whose switch carries this query's host/DMA traffic and
     *  whose DRAM holds its reservation. */
    int anchorDevice = -1;

    double submitSec = 0.0;
    double admitSec = 0.0;
    double doneSec = 0.0;

    /** Modelled seconds spent waiting for admission. */
    double queueWaitSec = 0.0;

    /** Summed seconds of this query's scheduled device subtasks. */
    double deviceBusySec = 0.0;

    /** Modelled seconds of the HostFinish phase. */
    double hostFinishSec = 0.0;

    /** Suspensions (admission reservation failures + Sec. VI-E). */
    std::int64_t suspendCount = 0;

    /**
     * Wait-state ledger: every modelled second between submitSec and
     * doneSec in exactly one exclusive class. The fixed-order slot sum
     * equals latencySec() bitwise for every completed query (all-zero
     * for shed queries, whose latency is 0).
     */
    obs::WaitLedger waitLedger;

    /**
     * The same partition as timestamped intervals (the critical-path
     * raw material); collected when
     * obs::waitSegmentCollectionEnabled().
     */
    std::vector<obs::WaitSegment> waitSegments;

    /**
     * Contention-seconds this query charged to culprits: device-hold
     * overlaps while pending plus dram_wait. Waiter-seconds, not
     * wall-exclusive — parallel pending waits accrue independently.
     */
    double contentionWaitSec = 0.0;

    /** Bytes shipped to the host to finish the query. */
    std::int64_t hostFinishBytes = 0;

    /** Bit-exact query answer. */
    RelTable result;

    /** Device trace (empty stats when suspended at admission). */
    AquomanRunStats stats;

    /** Host-side work metrics (residual stages, or the whole query). */
    EngineMetrics metrics;

    /**
     * EXPLAIN-ANALYZE cost-attribution tree (built when
     * obs::profileCollectionEnabled(); modelled time only, so it is
     * byte-identical across AQUOMAN_THREADS / AQUOMAN_BATCH).
     */
    obs::QueryProfile profile;

    /** Why the query (partially) left the device, when it did. */
    obs::SuspendReason suspendReason = obs::SuspendReason::None;

    /** Completion latency exceeded the tenant's SLO objective. */
    bool sloViolated = false;

    /** Trace spans retained under tail sampling (always true when
     *  sampling is off). */
    bool traceKept = true;

    /** Timestamped lifecycle transitions (first entry is Queued at
     *  submit time, last is Done). */
    std::vector<LifecycleEvent> lifecycle;

    /** The lifecycle rendered as the legacy "t=..s name: A -> B"
     *  text lines. */
    std::vector<std::string> formatLifecycle() const;

    double latencySec() const { return doneSec - submitSec; }
};

/** Per-tenant slice of the aggregate statistics. */
struct TenantStats
{
    std::string name;
    std::int64_t submitted = 0;
    std::int64_t completed = 0;
    std::int64_t shed = 0;

    double p50LatencySec = 0.0;
    double p90LatencySec = 0.0;
    double p99LatencySec = 0.0;
    double meanQueueWaitSec = 0.0;

    /** shed / submitted. */
    double shedRate = 0.0;

    /** Completed queries that met the tenant's SLO (all, if no SLO). */
    std::int64_t withinSlo = 0;

    /** SLO-meeting completions per modelled second of makespan. */
    double goodputQps = 0.0;

    /** Summed wait ledgers of this tenant's completed queries. */
    obs::WaitLedger waitLedger;

    /**
     * Total contention wait: the tenant's BlameMatrix row sum
     * (device-hold overlaps while its queries were pending, plus their
     * dram_wait). Equals ServiceStats::blame.rowSum(tenant index)
     * bitwise by construction.
     */
    double contentionWaitSec = 0.0;
};

/** Aggregate service statistics over all completed queries. */
struct ServiceStats
{
    std::int64_t completed = 0;

    /** Queries dropped by admission control. */
    std::int64_t shedTotal = 0;

    /** shedTotal / (completed + shedTotal). */
    double shedRate = 0.0;

    /** One entry per configured tenant (one implicit when none). */
    std::vector<TenantStats> tenants;
    double makespanSec = 0.0;
    double throughputQps = 0.0;
    double p50LatencySec = 0.0;
    double p95LatencySec = 0.0;
    double p99LatencySec = 0.0;
    double meanQueueWaitSec = 0.0;

    /** Fraction of completed queries suspended at least once. */
    double suspendRate = 0.0;

    /** Per-device busy seconds (scheduled subtask time). */
    std::vector<double> deviceBusySec;

    /** Per-device Table-Task subtasks executed. */
    std::vector<std::int64_t> deviceTasksRun;

    /** Distribution of completed-query latencies (modelled seconds). */
    obs::Histogram latencyHistogram;

    /** Distribution of admission queue waits (modelled seconds). */
    obs::Histogram queueWaitHistogram;

    /**
     * Aggregate bottleneck histogram: pipeline-stage name -> number of
     * completed Table Tasks bound by that resource.
     */
    std::map<std::string, std::int64_t> bottleneckTaskCounts;

    /** SuspendReason name -> completed queries that suspended for it. */
    std::map<std::string, std::int64_t> suspendReasonCounts;

    /** Shed reason -> queries dropped for it (sibling of
     *  suspendReasonCounts; sheds were previously only tenant totals). */
    std::map<std::string, std::int64_t> shedReasonCounts;

    /** Summed wait ledgers over all completed queries. */
    obs::WaitLedger waitLedger;

    /**
     * Per-(victim x culprit) contention-seconds, indexed like
     * `tenants`. Row sums reappear as TenantStats::contentionWaitSec.
     */
    obs::BlameMatrix blame;

    /** blame.total(): all contention-seconds across tenants. */
    double contentionWaitSec = 0.0;
};

/**
 * The query service: M sharded SSDs, admission control, Table-Task
 * scheduling, suspend/resume to the host.
 */
class QueryService
{
  public:
    explicit QueryService(ServiceConfig cfg);
    ~QueryService();

    QueryService(const QueryService &) = delete;
    QueryService &operator=(const QueryService &) = delete;

    /** Row-stripe @p table across the SSD array and register it. */
    void addTable(std::shared_ptr<const Table> table);

    /** Catalog of registered tables (for key metadata setup). */
    Catalog &catalog();

    int numDevices() const;
    const ControllerSwitch &deviceSwitch(int d) const;

    /** Current modelled time (advances during drain()). */
    double now() const;

    /**
     * Submit @p q arriving at modelled time @p arrival_sec (clamped to
     * now()) on behalf of @p tenant (index into
     * ServiceConfig::tenants). Execution happens inside drain(); the
     * query may be shed there instead of executed.
     */
    QueryId submit(const Query &q, double arrival_sec = 0.0,
                   int tenant = 0);

    /**
     * Completion hook, fired as each query reaches Done. The callback
     * may submit() follow-up queries (closed-loop clients).
     */
    void setOnComplete(std::function<void(const QueryRecord &)> fn);

    /** Run the event loop until no events remain. */
    void drain();

    std::size_t numQueries() const;
    const QueryRecord &record(QueryId id) const;

    /** Aggregate statistics over queries completed so far. */
    ServiceStats aggregate() const;

    /**
     * Flight recorder: ring buffer of recent scheduling events. It is
     * rendered to stderr (and mirrored as trace instants) whenever a
     * query suspends or an admission reservation fails.
     */
    const obs::FlightRecorder &flightRecorder() const;

    /** Number of flight-recorder dumps triggered so far. */
    std::int64_t flightDumps() const;

    /** Text of the most recent dump ("" when none happened). */
    const std::string &lastFlightDump() const;

    /**
     * SLO engine fed by this service's completions / sheds /
     * suspensions (windowed rollups, error budgets, burn-rate alerts).
     * drain() closes windows as modelled time advances and finalises
     * the trailing window when the event queue empties, so the
     * engine's timeline JSON is complete after drain() returns.
     */
    const obs::SloEngine &sloEngine() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace aquoman::service

#endif // AQUOMAN_SERVICE_QUERY_SERVICE_HH
