#include "service/query_service.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <map>
#include <queue>
#include <sstream>

#include "aquoman/query_profile.hh"
#include "engine/executor.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "service/sharded_store.hh"

namespace aquoman::service {

const char *
queryStateName(QueryState s)
{
    switch (s) {
      case QueryState::Queued:
        return "Queued";
      case QueryState::Running:
        return "Running";
      case QueryState::Suspended:
        return "Suspended";
      case QueryState::HostFinish:
        return "HostFinish";
      case QueryState::Done:
        return "Done";
      case QueryState::Shed:
        return "Shed";
    }
    return "?";
}

std::vector<std::string>
QueryRecord::formatLifecycle() const
{
    std::vector<std::string> out;
    const char *prev = "submitted";
    for (const LifecycleEvent &ev : lifecycle) {
        char buf[160];
        std::snprintf(buf, sizeof buf, "t=%.6fs %s: %s -> %s",
                      ev.atSec, name.c_str(), prev,
                      queryStateName(ev.state));
        out.emplace_back(buf);
        prev = queryStateName(ev.state);
    }
    return out;
}

namespace {

/** One per-device slice of a Table Task. */
struct SubTask
{
    double seconds = 0.0;
    std::int64_t bytes = 0;
};

/**
 * One Table Task as scheduled: its per-device subtasks. Scan-type
 * tasks rooted in one sharded base table split across the devices
 * holding stripe rows; everything else runs whole on the anchor.
 */
struct TaskStep
{
    std::string what;
    std::map<int, SubTask> subs; ///< device -> slice
    int remaining = 0;
};

/**
 * RAII ambient trace group: stamps every event recorded inside the
 * scope (including worker-thread recordings during a synchronous
 * fan-out) with the query's sampling group. Restores the previous
 * group, not -1, so nested scopes compose.
 */
class TraceGroupScope
{
  public:
    TraceGroupScope(obs::SimTracer &t, bool active, std::int64_t gid)
        : tracer(active ? &t : nullptr)
    {
        if (tracer) {
            prev = tracer->ambientGroup();
            tracer->setAmbientGroup(gid);
        }
    }

    ~TraceGroupScope()
    {
        if (tracer)
            tracer->setAmbientGroup(prev);
    }

    TraceGroupScope(const TraceGroupScope &) = delete;
    TraceGroupScope &operator=(const TraceGroupScope &) = delete;

  private:
    obs::SimTracer *tracer;
    std::int64_t prev = -1;
};

/** SloConfig with env overrides and per-tenant objectives resolved. */
obs::SloConfig
resolveSloConfig(const ServiceConfig &c)
{
    obs::SloConfig s = c.slo;
    if (const char *env = std::getenv("AQUOMAN_SLO_WINDOW");
        env && env[0]) {
        char *end = nullptr;
        double v = std::strtod(env, &end);
        if (end != env && *end == '\0' && v > 0.0)
            s.windowSec = v;
    }
    if (s.objectives.empty())
        for (const TenantConfig &tc : c.tenants)
            if (tc.sloSec > 0.0)
                s.objectives.push_back(
                    {tc.name, tc.sloSec, s.defaultAttainment});
    return s;
}

int
resolveTraceSampleN(const ServiceConfig &c)
{
    int n = c.traceSampleEveryN;
    if (const char *env = std::getenv("AQUOMAN_TRACE_SAMPLE");
        env && env[0]) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 0)
            n = static_cast<int>(v);
    }
    return n;
}

} // namespace

struct QueryService::Impl
{
    /** One SSD of the array plus its scheduler state. */
    struct DeviceNode
    {
        std::unique_ptr<FlashDevice> flash;
        std::unique_ptr<ControllerSwitch> sw;
        std::unique_ptr<DeviceMemoryManager> dram;

        bool busy = false;
        QueryId inFlight = -1;
        /// Modelled time the in-flight subtask was dispatched (exact
        /// span start for the trace).
        double inFlightStart = 0.0;
        /// One ready-but-not-dispatched subtask: who is waiting and
        /// since when (the entry time bounds its blame overlap with
        /// the holds it sat through).
        struct PendingSub
        {
            QueryId qid = -1;
            double enterSec = 0.0;
        };

        /// Ready subtasks keyed by admission index: the round-robin
        /// cursor walks this order so interleaving is fair and
        /// deterministic.
        std::map<std::int64_t, PendingSub> pending;
        std::int64_t lastServed = -1;

        double busySec = 0.0;
        std::int64_t tasksRun = 0;
    };

    struct QueryExec
    {
        QueryRecord rec;
        Query query;
        /// Compiled stage plan (empty when suspended at admission);
        /// the EXPLAIN-ANALYZE profile is assembled from it.
        QueryCompilation comp;
        std::int64_t admissionIdx = -1;
        std::vector<TaskStep> steps;
        std::size_t nextStep = 0;
        std::int64_t reservedBytes = 0;
        int queryTrack = -1; ///< lifecycle trace track (lazy)

        /// Wait-ledger bookkeeping: the class the open interval will
        /// be accounted under, when it opened, and how many of this
        /// query's subtasks are in flight (union-of-intervals
        /// device_exec attribution — parallel per-device slices count
        /// wall-clock once).
        obs::WaitClass waitClass = obs::WaitClass::AdmissionQueue;
        double waitMark = 0.0;
        int subtasksInFlight = 0;
    };

    enum class EventKind
    {
        Arrival,
        SubtaskDone,
        HostDone,
    };

    struct Event
    {
        double time = 0.0;
        std::int64_t seq = 0; ///< tie-break: schedule order
        EventKind kind = EventKind::Arrival;
        QueryId qid = -1;
        int device = -1;

        bool
        operator>(const Event &o) const
        {
            if (time != o.time)
                return time > o.time;
            return seq > o.seq;
        }
    };

    /** Runtime admission state of one tenant. */
    struct TenantState
    {
        TenantConfig cfg;
        std::deque<QueryId> queue;
        double deficit = 0.0;       ///< DRR credit within its class
        std::int64_t dramInUse = 0; ///< reserved bytes across devices
        std::int64_t submitted = 0;
        std::int64_t shedCount = 0;
    };

    explicit Impl(ServiceConfig cfg_) : cfg(std::move(cfg_)), host(cfg.host)
    {
        AQ_ASSERT(cfg.numDevices > 0, "service needs >= 1 device");
        AQ_ASSERT(cfg.admissionLimit > 0, "admission limit must be >= 1");
        // Resolve the per-query DRAM reservation exactly once: the
        // quota of a live service must not move if a caller mutates
        // admissionLimit on a retained config copy.
        perQueryDram = cfg.resolvedQueryDramBytes();
        if (cfg.tenants.empty())
            tenants.push_back(TenantState{TenantConfig{}, {}, 0.0, 0, 0,
                                          0});
        else
            for (const TenantConfig &tc : cfg.tenants) {
                AQ_ASSERT(tc.weight > 0.0, "tenant weight must be > 0");
                tenants.push_back(TenantState{tc, {}, 0.0, 0, 0, 0});
            }
        tracePrefix = cfg.traceLabel.empty() ? "" : cfg.traceLabel + ".";
        devTracks.assign(cfg.numDevices, -1);
        aqPortTracks.assign(cfg.numDevices, -1);
        hostPortTracks.assign(cfg.numDevices, -1);
        blame.resize(static_cast<int>(tenants.size()));
        std::vector<ControllerSwitch *> switches;
        for (int d = 0; d < cfg.numDevices; ++d) {
            auto node = std::make_unique<DeviceNode>();
            FlashConfig fc = cfg.flash;
            fc.name = cfg.flash.name + std::to_string(d);
            node->flash = std::make_unique<FlashDevice>(fc);
            node->sw = std::make_unique<ControllerSwitch>(*node->flash);
            node->dram = std::make_unique<DeviceMemoryManager>(
                cfg.device.dramBytes);
            switches.push_back(node->sw.get());
            devices.push_back(std::move(node));
        }
        store = std::make_unique<ShardedTableStore>(std::move(switches));
        slo.setAlertSink(
            [this](const obs::SloAlert &a) { onSloAlert(a); });
    }

    // -- event plumbing ------------------------------------------------

    void
    schedule(double time, EventKind kind, QueryId qid, int device = -1)
    {
        events.push(Event{time, nextSeq++, kind, qid, device});
    }

    // -- observability -------------------------------------------------

    std::string
    deviceName(int d) const
    {
        return cfg.flash.name + std::to_string(d);
    }

    std::string
    queryLabel(const QueryExec &e) const
    {
        return e.rec.name + "#" + std::to_string(e.rec.id);
    }

    /// Track registration is lazy so a tracer enabled after service
    /// construction still gets every track.
    int
    devTrack(int d)
    {
        if (devTracks[d] < 0)
            devTracks[d] = tracer.track(tracePrefix + deviceName(d),
                                        "table-tasks");
        return devTracks[d];
    }

    int
    aqPortTrack(int d)
    {
        if (aqPortTracks[d] < 0)
            aqPortTracks[d] = tracer.track(
                tracePrefix + deviceName(d), "switch aquoman-port");
        return aqPortTracks[d];
    }

    int
    hostPortTrack(int d)
    {
        if (hostPortTracks[d] < 0)
            hostPortTracks[d] = tracer.track(
                tracePrefix + deviceName(d), "switch host-port");
        return hostPortTracks[d];
    }

    int
    hostModelTrack()
    {
        if (hostTrack < 0)
            hostTrack =
                tracer.track(tracePrefix + "host-model", "phases");
        return hostTrack;
    }

    int
    sloAlertTrack()
    {
        if (sloTrack < 0)
            sloTrack = tracer.track(tracePrefix + "slo", "alerts");
        return sloTrack;
    }

    const std::string &
    tenantName(const QueryExec &e) const
    {
        return tenants[static_cast<std::size_t>(e.rec.tenant)].cfg.name;
    }

    /** Tail sampling active: spans carry group tags and resolve. */
    bool
    sampling() const
    {
        return traceSampleN > 0 && tracer.enabled();
    }

    /**
     * Burn-rate firing from the SLO engine: remember it in the flight
     * recorder, mirror it as a trace instant (ungrouped — alerts are
     * never sampled away), and bump the labeled alert counter.
     */
    void
    onSloAlert(const obs::SloAlert &a)
    {
        flight.record(a.atSec, "slo-alert", a.tenant,
                      "rule=" + a.rule + " short_burn="
                          + obs::jsonNumber(a.shortBurn) + " long_burn="
                          + obs::jsonNumber(a.longBurn));
        if (tracer.enabled())
            tracer.instant(sloAlertTrack(), a.tenant + " " + a.rule,
                           "slo-alert", a.atSec,
                           {obs::arg("short_burn", a.shortBurn),
                            obs::arg("long_burn", a.longBurn)});
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        if (reg.enabled())
            reg.add(obs::labeledMetric("service.slo_alerts_total",
                                       {{"tenant", a.tenant},
                                        {"rule", a.rule}}),
                    1.0);
    }

    /** Append one event to the flight-recorder ring at modelled time. */
    void
    flightNote(const std::string &cat, const std::string &subject,
               std::string detail = "")
    {
        flight.record(clock, cat, subject, std::move(detail));
    }

    /**
     * Render the flight-recorder ring to stderr, remember the text for
     * lastFlightDump(), and mirror not-yet-dumped events as trace
     * instants on a dedicated track.
     */
    void
    dumpFlight(const std::string &why)
    {
        std::ostringstream os;
        flight.render(os, why);
        lastDump = os.str();
        ++flightDumpCount;
        std::cerr << lastDump;
        if (tracer.enabled()) {
            if (flightTrack < 0)
                flightTrack = tracer.track(
                    tracePrefix + "flight-recorder", "events");
            for (const obs::FlightEvent &ev : flight.snapshot()) {
                if (ev.seq <= lastDumpedSeq)
                    continue;
                tracer.instant(flightTrack,
                               ev.category + " " + ev.subject,
                               "flight-recorder", ev.atSec);
                lastDumpedSeq = ev.seq;
            }
        }
    }

    /**
     * Record a lifecycle transition: a structured {state, atSec} event
     * plus, when tracing, a span on the query's track covering the
     * state just left.
     */
    void
    logState(QueryExec &e, QueryState to)
    {
        TraceGroupScope group(tracer, sampling(), e.rec.id);
        if (to == QueryState::Suspended)
            slo.recordSuspend(tenantName(e), clock);
        if (tracer.enabled()) {
            if (e.queryTrack < 0)
                e.queryTrack = tracer.track(tracePrefix + "queries",
                                            queryLabel(e));
            if (!e.rec.lifecycle.empty()) {
                const LifecycleEvent &prev = e.rec.lifecycle.back();
                tracer.span(e.queryTrack, queryStateName(prev.state),
                            "query-state", prev.atSec, clock);
            }
            if (to == QueryState::Done || to == QueryState::Shed)
                tracer.instant(e.queryTrack, queryStateName(to),
                               "query-state", clock);
        }
        e.rec.lifecycle.push_back({to, clock});
        e.rec.state = to;
    }

    // -- wait-state ledger ---------------------------------------------

    /**
     * Close the wait interval open since e.waitMark into the class it
     * was classified under, record the matching WaitSegment (when
     * collection is on), and — for dram_wait — charge the stall to
     * the tenant's own quota in the blame matrix. @p device / @p
     * detail annotate the segment being closed.
     */
    void
    accrueWait(QueryExec &e, int device = -1,
               const std::string &detail = std::string())
    {
        double dur = clock - e.waitMark;
        if (dur > 0.0) {
            e.rec.waitLedger.add(e.waitClass, dur);
            if (e.waitClass == obs::WaitClass::DramWait) {
                // Quota stalls are self-inflicted: the culprit is the
                // victim tenant's own running reservations.
                blame.add(e.rec.tenant, e.rec.tenant, dur);
                e.rec.contentionWaitSec += dur;
                slo.recordBlame(tenantName(e), tenantName(e), clock,
                                dur);
            }
            if (obs::waitSegmentCollectionEnabled())
                e.rec.waitSegments.push_back(
                    {e.waitClass, e.waitMark, clock, device, detail});
        }
        e.waitMark = clock;
    }

    /** Accrue the open interval, then switch the query's class. */
    void
    setWaitClass(QueryExec &e, obs::WaitClass to, int device = -1,
                 const std::string &detail = std::string())
    {
        if (to == e.waitClass)
            return; // lazy accrual: the open interval just continues
        accrueWait(e, device, detail);
        e.waitClass = to;
    }

    /**
     * (Re)classify every queued query at a stable point — after
     * tryAdmit() ran to fixpoint. With every admission slot taken, the
     * whole queue waits for a slot (admission_queue); with free slots
     * a tenant can only still be queued because its DRAM quota blocks
     * it, else tryAdmit would have served it (dram_wait). The interval
     * since the previous stable point stays with the class assigned
     * there.
     */
    void
    reclassifyQueuedWaits()
    {
        obs::WaitClass cls = running >= cfg.admissionLimit
                                 ? obs::WaitClass::AdmissionQueue
                                 : obs::WaitClass::DramWait;
        for (TenantState &t : tenants)
            for (QueryId qid : t.queue)
                setWaitClass(execs[qid], cls);
    }

    /**
     * A subtask of @p culprit released device @p d after holding it
     * over [hold_start, clock]: every query still pending on d charges
     * the overlap of its pending interval with that hold to the
     * culprit's tenant. These are waiter-seconds — several victims may
     * blame the same hold — distinct from the wall-exclusive
     * device_busy ledger class.
     */
    void
    blameWaiters(int d, double hold_start, const QueryExec &culprit)
    {
        DeviceNode &dn = *devices[d];
        if (dn.pending.empty())
            return;
        for (const auto &[idx, p] : dn.pending) {
            QueryExec &victim = execs[p.qid];
            double ov = clock - std::max(p.enterSec, hold_start);
            if (!(ov > 0.0))
                continue;
            blame.add(victim.rec.tenant, culprit.rec.tenant, ov);
            victim.rec.contentionWaitSec += ov;
            slo.recordBlame(tenantName(victim), tenantName(culprit),
                            clock, ov);
        }
    }

    /**
     * Seal a completed query's ledger: the trailing host class (the
     * last nonzero slot by construction) absorbs the floating-point
     * residual so the fixed-order slot sum equals
     * (doneSec - submitSec) bitwise — telescoping interval sums are
     * not associative-exact on their own. The correction is a few
     * ulps at most; debug builds cross-check it against the natural
     * host interval and assert the exact partition.
     */
    void
    sealWaitLedger(QueryExec &e)
    {
        AQ_ASSERT(e.waitClass == obs::WaitClass::SuspendHost ||
                      e.waitClass == obs::WaitClass::HostFinish,
                  "ledger must seal in a host class");
        double total = e.rec.doneSec - e.rec.submitSec;
        int k = static_cast<int>(e.waitClass);
        obs::WaitLedger &w = e.rec.waitLedger;
        for (int iter = 0; iter < 8 && w.total() != total; ++iter)
            w.sec[k] += total - w.total();
        if (obs::waitSegmentCollectionEnabled() && clock > e.waitMark)
            e.rec.waitSegments.push_back({e.waitClass, e.waitMark,
                                          clock, e.rec.anchorDevice,
                                          "host"});
        e.waitMark = clock;
#ifndef NDEBUG
        std::string err;
        AQ_ASSERT(obs::validateWaitPartition(w, total, &err), err);
        double natural = e.rec.hostFinishSec;
        AQ_ASSERT(std::fabs(w.sec[k] - natural) <=
                      1e-9 * std::max(1.0, std::fabs(natural)),
                  "host-phase residual drifted from its interval");
#endif
    }

    // -- admission -----------------------------------------------------

    /**
     * Deterministic tail-drop: the arriving query is dropped at its
     * modelled arrival time, transitions Queued -> Shed, and never
     * executes. Fires the completion hook so open-loop drivers see
     * every submitted query exactly once.
     */
    void
    shed(QueryExec &e, const char *reason, const std::string &why)
    {
        TenantState &t = tenants[static_cast<std::size_t>(e.rec.tenant)];
        ++t.shedCount;
        e.rec.shed = true;
        e.rec.shedReason = reason;
        e.rec.doneSec = clock;
        logState(e, QueryState::Shed);
        slo.recordShed(t.cfg.name, clock);
        if (sampling())
            tracer.resolveGroup(e.rec.id, /*keep=*/true);
        flightNote("shed", queryLabel(e),
                   "tenant=" + t.cfg.name + " " + why);
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        if (reg.enabled())
            reg.add(obs::labeledMetric("service.tenant_shed_total",
                                       {{"tenant", t.cfg.name}}),
                    1.0);
        shedIds.push_back(e.rec.id);
        if (onComplete)
            onComplete(e.rec);
    }

    /**
     * An arrival enters its tenant's admission queue unless the queue
     * is at its bound (tail drop) or the tenant's DRAM quota can never
     * fit one reservation (immediate shed — queueing would be
     * forever).
     */
    void
    onArrival(QueryId qid)
    {
        QueryExec &e = execs[qid];
        TenantState &t = tenants[static_cast<std::size_t>(e.rec.tenant)];
        if (t.cfg.dramQuotaBytes > 0 &&
            t.cfg.dramQuotaBytes < perQueryDram) {
            shed(e, "quota_below_reservation",
                 "quota " + std::to_string(t.cfg.dramQuotaBytes)
                     + " below per-query reservation "
                     + std::to_string(perQueryDram));
            return;
        }
        if (cfg.maxQueuedPerTenant > 0 &&
            static_cast<int>(t.queue.size()) >= cfg.maxQueuedPerTenant) {
            shed(e, "queue_full",
                 "queue full ("
                     + std::to_string(cfg.maxQueuedPerTenant) + ")");
            return;
        }
        t.queue.push_back(qid);
        tryAdmit();
    }

    /** A tenant may be served when it has work and quota headroom. */
    bool
    eligible(const TenantState &t) const
    {
        if (t.queue.empty())
            return false;
        return t.cfg.dramQuotaBytes <= 0 ||
               t.dramInUse + perQueryDram <= t.cfg.dramQuotaBytes;
    }

    /**
     * Pick the next tenant to serve: strict priority class first, then
     * deficit round-robin within the class. Each pass over the class
     * tops up every eligible tenant's deficit by its weight; a tenant
     * is served when its deficit reaches one query's cost (1.0).
     * Single tenant degenerates to exact FIFO.
     */
    int
    pickTenant()
    {
        int best_prio = 0;
        bool any = false;
        for (const TenantState &t : tenants)
            if (eligible(t) &&
                (!any || t.cfg.priority < best_prio)) {
                best_prio = t.cfg.priority;
                any = true;
            }
        if (!any)
            return -1;
        std::size_t n = tenants.size();
        for (;;) {
            for (std::size_t step = 0; step < n; ++step) {
                std::size_t i = (drrCursor + step) % n;
                TenantState &t = tenants[i];
                if (t.cfg.priority != best_prio || !eligible(t))
                    continue;
                if (t.deficit >= 1.0) {
                    t.deficit -= 1.0;
                    // Stay on this tenant: it keeps its turn while it
                    // has credit, then the cursor moves past it.
                    drrCursor = i;
                    return static_cast<int>(i);
                }
                t.deficit += t.cfg.weight;
            }
            drrCursor = (drrCursor + 1) % n; // full pass: rotate start
        }
    }

    void
    tryAdmit()
    {
        while (running < cfg.admissionLimit) {
            int ti = pickTenant();
            if (ti < 0)
                break;
            TenantState &t = tenants[static_cast<std::size_t>(ti)];
            QueryId qid = t.queue.front();
            t.queue.pop_front();
            if (t.queue.empty())
                t.deficit = 0.0; // classic DRR: no credit hoarding
            admit(qid);
        }
        reclassifyQueuedWaits();
    }

    void
    admit(QueryId qid)
    {
        QueryExec &e = execs[qid];
        TenantState &t = tenants[static_cast<std::size_t>(e.rec.tenant)];
        e.admissionIdx = admissionCounter++;
        e.rec.admitSec = clock;
        e.rec.queueWaitSec = clock - e.rec.submitSec;
        // Close the queue-phase interval (admission_queue or
        // dram_wait, whatever the last stable point decided); until a
        // subtask actually dispatches the query is waiting on devices.
        setWaitClass(e, obs::WaitClass::DeviceBusy);
        slo.recordQueueWait(t.cfg.name, clock, e.rec.queueWaitSec);
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        if (reg.enabled()) {
            reg.observe("service.queue_wait_seconds",
                        e.rec.queueWaitSec);
            reg.observe(obs::labeledMetric(
                            "service.tenant_queue_wait_seconds",
                            {{"tenant", t.cfg.name}}),
                        e.rec.queueWaitSec);
        }
        e.rec.anchorDevice = static_cast<int>(
            (e.admissionIdx + cfg.scheduleSeed) % devices.size());
        ++running;

        DeviceNode &anchor = *devices[e.rec.anchorDevice];
        std::int64_t want = perQueryDram;
        std::string slot = "service.q" + std::to_string(qid);
        if (!anchor.dram->allocate(slot, want)) {
            // Admission-time suspension: no device DRAM for this
            // query's intermediates — the host runs it whole.
            e.rec.suspendReason = obs::SuspendReason::AdmissionDram;
            flightNote("admit-fail", queryLabel(e),
                       "no DRAM on " + deviceName(e.rec.anchorDevice)
                           + " for " + std::to_string(want) + " bytes");
            dumpFlight("admission DRAM reservation failed for "
                       + queryLabel(e));
            runOnHost(e);
            return;
        }
        e.reservedBytes = want;
        t.dramInUse += want;
        flightNote("admit", queryLabel(e),
                   "anchor=" + deviceName(e.rec.anchorDevice)
                       + " dram=" + std::to_string(want));
        runOnDevice(e, want);
    }

    /** Paper suspension path: the host executes the entire query. */
    void
    runOnHost(QueryExec &e)
    {
        TraceGroupScope group(tracer, sampling(), e.rec.id);
        ++e.rec.suspendCount;
        logState(e, QueryState::Suspended);

        DeviceNode &anchor = *devices[e.rec.anchorDevice];
        Executor ex(catalog_, anchor.sw.get());
        if (obs::profileCollectionEnabled())
            ex.setProfileSink(&e.rec.stats.hostOps);
        if (tracer.enabled())
            ex.setTraceLabel(tracePrefix + queryLabel(e));
        e.rec.result = ex.run(e.query);
        e.rec.metrics = ex.metrics();
        e.rec.metrics.suspendCount = e.rec.suspendCount;
        // Everything it touched came over the switch's host port.
        e.rec.metrics.hostFinishBytes = e.rec.metrics.flashBytesRead;
        e.rec.hostFinishBytes = e.rec.metrics.hostFinishBytes;

        beginHostFinish(e, e.rec.metrics, /*dma_bytes=*/0);
    }

    /** Normal path: run functionally now, then schedule the trace. */
    void
    runOnDevice(QueryExec &e, std::int64_t dram_reservation)
    {
        TraceGroupScope group(tracer, sampling(), e.rec.id);
        logState(e, QueryState::Running);

        DeviceNode &anchor = *devices[e.rec.anchorDevice];
        AquomanConfig dev_cfg = cfg.device;
        dev_cfg.dramBytes = dram_reservation;
        if (tracer.enabled())
            dev_cfg.traceLabel = tracePrefix + queryLabel(e);
        AquomanDevice dev(catalog_, *anchor.sw, dev_cfg);
        OffloadedQueryResult r = dev.runQuery(e.query);
        e.rec.result = std::move(r.result);
        e.rec.stats = std::move(r.stats);
        e.comp = std::move(r.compilation);
        e.rec.metrics = e.rec.stats.hostResidual;
        e.rec.suspendCount = e.rec.metrics.suspendCount;
        e.rec.hostFinishBytes = e.rec.metrics.hostFinishBytes;

        buildSteps(e);
        if (e.steps.empty()) {
            afterDeviceWork(e);
            return;
        }
        enqueueStep(e);
    }

    /**
     * Turn the device executor's Table-Task trace into scheduler
     * steps. A task streaming exactly one sharded base table splits
     * into per-device subtasks proportional to stripe rows (devices
     * with empty stripes are skipped); other tasks run on the anchor.
     */
    void
    buildSteps(QueryExec &e)
    {
        for (const TableTaskRecord &t : e.rec.stats.tasks) {
            TaskStep step;
            step.what = t.what;
            const TableSharding *sh =
                !t.table.empty() && store->has(t.table)
                ? &store->sharding(t.table) : nullptr;
            if (sh && sh->totalRows > 0) {
                std::int64_t bytes_left = t.flashBytes;
                for (int d = 0; d < static_cast<int>(devices.size());
                     ++d) {
                    if (sh->rowsOnDevice[d] == 0)
                        continue;
                    SubTask sub;
                    sub.seconds = t.seconds * sh->fraction(d);
                    // Integer byte split: remainder rides the last
                    // non-empty stripe so slices sum exactly.
                    sub.bytes = t.flashBytes * sh->rowsOnDevice[d]
                        / sh->totalRows;
                    step.subs[d] = sub;
                    bytes_left -= sub.bytes;
                }
                if (!step.subs.empty())
                    step.subs.rbegin()->second.bytes += bytes_left;
            } else {
                step.subs[e.rec.anchorDevice] =
                    SubTask{t.seconds, t.flashBytes};
            }
            if (!step.subs.empty())
                e.steps.push_back(std::move(step));
        }
    }

    void
    enqueueStep(QueryExec &e)
    {
        TaskStep &step = e.steps[e.nextStep];
        step.remaining = static_cast<int>(step.subs.size());
        for (const auto &[d, sub] : step.subs)
            devices[d]->pending[e.admissionIdx] = {e.rec.id, clock};
        for (const auto &[d, sub] : step.subs)
            dispatch(d);
    }

    /**
     * Issue the next subtask on device @p d: round-robin over ready
     * queries by admission index (first index above the cursor, else
     * wrap to the smallest).
     */
    void
    dispatch(int d)
    {
        DeviceNode &dn = *devices[d];
        if (dn.busy || dn.pending.empty())
            return;
        auto it = dn.pending.upper_bound(dn.lastServed);
        if (it == dn.pending.end())
            it = dn.pending.begin();
        dn.lastServed = it->first;
        QueryId qid = it->second.qid;
        dn.pending.erase(it);

        QueryExec &e = execs[qid];
        const SubTask &sub = e.steps[e.nextStep].subs.at(d);
        dn.busy = true;
        dn.inFlight = qid;
        dn.inFlightStart = clock;
        // First subtask in flight ends the device_busy wait; further
        // parallel slices extend the same device_exec interval.
        if (e.subtasksInFlight++ == 0)
            setWaitClass(e, obs::WaitClass::DeviceExec, d,
                         e.steps[e.nextStep].what);
        flightNote("dispatch", deviceName(d),
                   queryLabel(e) + " " + e.steps[e.nextStep].what);
        schedule(clock + sub.seconds, EventKind::SubtaskDone, qid, d);
    }

    void
    onSubtaskDone(const Event &ev)
    {
        TraceGroupScope group(tracer, sampling(), ev.qid);
        DeviceNode &dn = *devices[ev.device];
        AQ_ASSERT(dn.busy && dn.inFlight == ev.qid, "scheduler state");
        dn.busy = false;
        dn.inFlight = -1;

        QueryExec &e = execs[ev.qid];
        TaskStep &step = e.steps[e.nextStep];
        const SubTask &sub = step.subs.at(ev.device);
        dn.busySec += sub.seconds;
        ++dn.tasksRun;
        dn.sw->accountRead(FlashPort::Aquoman, sub.bytes);
        e.rec.deviceBusySec += sub.seconds;

        if (tracer.enabled()) {
            // One span per Table-Task subtask on the device's track,
            // mirrored on its switch's AQUOMAN-port track with the
            // bandwidth the port sustained over the span.
            tracer.span(devTrack(ev.device), step.what, "table-task",
                        dn.inFlightStart, clock,
                        {obs::arg("query", e.rec.name),
                         obs::arg("bytes", sub.bytes)});
            double gbps = sub.seconds > 0.0
                ? static_cast<double>(sub.bytes) / sub.seconds / 1e9
                : 0.0;
            tracer.span(aqPortTrack(ev.device), "aquoman read",
                        "switch-port", dn.inFlightStart, clock,
                        {obs::arg("bytes", sub.bytes),
                         obs::arg("bandwidth_gbps", gbps)});
        }
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        if (reg.enabled()) {
            reg.add("service." + deviceName(ev.device) + ".task_seconds",
                    sub.seconds);
            reg.add("service." + deviceName(ev.device) + ".tasks_run",
                    1.0);
        }

        // This hold just ended: queries pending on the device blame
        // the culprit's tenant for the overlap they sat through, and
        // with no slice of this query left in flight its device_exec
        // interval closes (back to device_busy until the next
        // dispatch — or the host phase, scheduled at this same clock).
        blameWaiters(ev.device, dn.inFlightStart, e);
        if (--e.subtasksInFlight == 0)
            setWaitClass(e, obs::WaitClass::DeviceBusy, ev.device,
                         step.what);

        if (--step.remaining == 0) {
            ++e.nextStep;
            if (e.nextStep < e.steps.size())
                enqueueStep(e);
            else
                afterDeviceWork(e);
        }
        dispatch(ev.device);
    }

    /** All Table Tasks done: hand the query to its host phase. */
    void
    afterDeviceWork(QueryExec &e)
    {
        if (e.rec.suspendCount > 0) {
            // The device executor raised Sec. VI-E suspensions while
            // running; surface them in the lifecycle.
            logState(e, QueryState::Suspended);
            flightNote("suspend", queryLabel(e),
                       "suspendCount="
                           + std::to_string(e.rec.suspendCount));
            dumpFlight("query " + queryLabel(e)
                       + " suspended to host");
        }
        beginHostFinish(e, e.rec.metrics, e.rec.stats.dmaBytes);
    }

    /**
     * Price the host phase (residual stages + result DMA) at the
     * anchor switch's contention-adjusted host-port bandwidth: AQUOMAN
     * subtasks active on the anchor halve the host's share.
     */
    void
    beginHostFinish(QueryExec &e, const EngineMetrics &m,
                    std::int64_t dma_bytes)
    {
        TraceGroupScope group(tracer, sampling(), e.rec.id);
        logState(e, QueryState::HostFinish);
        // The rest of the query's life is its host phase — one of the
        // two exclusive trailing classes, by whether it suspended.
        setWaitClass(e, e.rec.suspendCount > 0
                            ? obs::WaitClass::SuspendHost
                            : obs::WaitClass::HostFinish);
        DeviceNode &anchor = *devices[e.rec.anchorDevice];
        bool contended = anchor.busy || !anchor.pending.empty();
        double bw = anchor.sw->effectiveReadBandwidth(contended);
        HostRunEstimate est = host.estimate(m, bw);
        e.rec.hostFinishSec = est.runtime + dma_bytes / bw;
        flightNote("host-finish", queryLabel(e),
                   "sec=" + std::to_string(e.rec.hostFinishSec));
        if (obs::profileCollectionEnabled()) {
            HostPhaseProfile hp;
            hp.hostSeconds = est.runtime;
            hp.dmaSeconds = dma_bytes / bw;
            hp.dmaBytes = dma_bytes;
            hp.hostBytes = std::max<std::int64_t>(
                0, e.rec.hostFinishBytes - dma_bytes);
            e.rec.profile =
                buildQueryProfile(e.rec.name, e.comp, e.rec.stats, hp);
            if (e.rec.suspendReason == obs::SuspendReason::AdmissionDram) {
                // The admission failure outranks anything the (never
                // run) device executor could have reported.
                e.rec.profile.suspend = e.rec.suspendReason;
                e.rec.profile.root.suspend = e.rec.suspendReason;
            } else {
                e.rec.suspendReason = e.rec.profile.suspend;
            }
        }
        if (tracer.enabled()) {
            double end = clock + e.rec.hostFinishSec;
            tracer.span(hostPortTrack(e.rec.anchorDevice),
                        e.rec.name + " host read", "switch-port",
                        clock, end,
                        {obs::arg("bytes", e.rec.hostFinishBytes),
                         obs::arg("bandwidth_gbps", bw / 1e9),
                         obs::arg("contended",
                                  contended ? "yes" : "no")});
            tracer.span(hostModelTrack(),
                        queryLabel(e) + " hostFinish", "host-phase",
                        clock, end,
                        {obs::arg("io_seconds", est.ioTime),
                         obs::arg("cpu_seconds", est.cpuTime),
                         obs::arg("dma_bytes", dma_bytes)});
        }
        schedule(clock + e.rec.hostFinishSec, EventKind::HostDone,
                 e.rec.id);
    }

    void
    finish(QueryExec &e)
    {
        logState(e, QueryState::Done);
        flightNote("done", queryLabel(e));
        e.rec.doneSec = clock;
        sealWaitLedger(e);
        e.rec.metrics.queueWaitSec = e.rec.queueWaitSec;
        TenantState &t = tenants[static_cast<std::size_t>(e.rec.tenant)];
        e.rec.sloViolated =
            slo.isViolation(t.cfg.name, e.rec.latencySec());
        slo.recordCompletion(t.cfg.name, clock, e.rec.latencySec());
        if (sampling()) {
            // Tail-sampling verdict: the interesting outcomes keep
            // their full span trees; healthy queries survive only the
            // deterministic 1-in-N sample.
            bool keep = e.rec.sloViolated || e.rec.suspendCount > 0 ||
                        (e.rec.id % traceSampleN == 0);
            e.rec.traceKept = keep;
            tracer.resolveGroup(e.rec.id, keep);
        }
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        if (reg.enabled()) {
            reg.observe("service.query_latency_seconds",
                        e.rec.latencySec());
            reg.observe(obs::labeledMetric(
                            "service.tenant_latency_seconds",
                            {{"tenant", t.cfg.name}}),
                        e.rec.latencySec());
        }
        if (e.reservedBytes > 0) {
            devices[e.rec.anchorDevice]->dram->free(
                "service.q" + std::to_string(e.rec.id));
            t.dramInUse -= e.reservedBytes;
            e.reservedBytes = 0;
        }
        --running;
        completed.push_back(e.rec.id);
        tryAdmit();
        if (onComplete)
            onComplete(e.rec);
    }

    // -- event loop ----------------------------------------------------

    void
    drain()
    {
        while (!events.empty()) {
            Event ev = events.top();
            events.pop();
            AQ_ASSERT(ev.time >= clock, "time went backwards");
            clock = ev.time;
            // Close every rollup window that ended before this event;
            // burn-rate alerts fire here, in modelled-time order.
            slo.advanceTo(clock);
            switch (ev.kind) {
              case EventKind::Arrival:
                onArrival(ev.qid);
                break;
              case EventKind::SubtaskDone:
                onSubtaskDone(ev);
                break;
              case EventKind::HostDone:
                finish(execs[ev.qid]);
                break;
            }
        }
        // Event queue empty: evaluate the trailing partial window so
        // the timeline is complete up to the final modelled second.
        slo.finish(clock);
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        if (reg.enabled()) {
            for (std::size_t d = 0; d < devices.size(); ++d) {
                double util = clock > 0.0
                    ? devices[d]->busySec / clock : 0.0;
                reg.set("service." + deviceName(static_cast<int>(d))
                            + ".busy_seconds",
                        devices[d]->busySec);
                reg.set("service." + deviceName(static_cast<int>(d))
                            + ".utilization",
                        util);
                // Labeled twin of the flat gauge: one metric family
                // with a device label in the Prometheus exposition.
                reg.set(obs::labeledMetric(
                            "service.device_utilization",
                            {{"device",
                              deviceName(static_cast<int>(d))}}),
                        util);
            }
        }
    }

    ServiceConfig cfg;
    HostModel host;
    Catalog catalog_;
    std::vector<std::unique_ptr<DeviceNode>> devices;
    std::unique_ptr<ShardedTableStore> store;

    std::map<QueryId, QueryExec> execs;
    std::vector<TenantState> tenants;
    std::size_t drrCursor = 0;
    std::int64_t perQueryDram = 0;
    std::vector<QueryId> completed;
    std::vector<QueryId> shedIds;

    /// Per-(victim x culprit) contention-seconds, indexed by tenant.
    obs::BlameMatrix blame;
    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        events;
    std::function<void(const QueryRecord &)> onComplete;

    obs::FlightRecorder flight{obs::flightRecorderCapacityFromEnv(256)};
    std::string lastDump;
    std::int64_t flightDumpCount = 0;
    std::int64_t lastDumpedSeq = -1;
    int flightTrack = -1;

    obs::SloEngine slo{resolveSloConfig(cfg)};
    int traceSampleN = resolveTraceSampleN(cfg);
    int sloTrack = -1;

    double clock = 0.0;
    std::int64_t nextSeq = 0;
    std::int64_t nextQueryId = 0;
    std::int64_t admissionCounter = 0;
    int running = 0;

    obs::SimTracer &tracer = obs::SimTracer::global();
    std::string tracePrefix;
    std::vector<int> devTracks;
    std::vector<int> aqPortTracks;
    std::vector<int> hostPortTracks;
    int hostTrack = -1;
};

// =====================================================================
// QueryService
// =====================================================================

QueryService::QueryService(ServiceConfig cfg)
    : impl(std::make_unique<Impl>(std::move(cfg)))
{
}

QueryService::~QueryService() = default;

void
QueryService::addTable(std::shared_ptr<const Table> table)
{
    impl->store->store(*table);
    // Execution reads the in-memory columns (resident == nullptr);
    // the stripes on flash carry capacity pressure and load traffic,
    // and drive the per-device split of scan Table Tasks.
    impl->catalog_.put(std::move(table), nullptr);
}

Catalog &
QueryService::catalog()
{
    return impl->catalog_;
}

int
QueryService::numDevices() const
{
    return static_cast<int>(impl->devices.size());
}

const ControllerSwitch &
QueryService::deviceSwitch(int d) const
{
    return *impl->devices.at(d)->sw;
}

double
QueryService::now() const
{
    return impl->clock;
}

QueryId
QueryService::submit(const Query &q, double arrival_sec, int tenant)
{
    AQ_ASSERT(tenant >= 0 &&
              tenant < static_cast<int>(impl->tenants.size()),
              "no tenant ", tenant);
    QueryId id = impl->nextQueryId++;
    Impl::QueryExec &e = impl->execs[id];
    e.query = q;
    e.rec.id = id;
    e.rec.name = q.name.empty() ? "q" + std::to_string(id) : q.name;
    e.rec.tenant = tenant;
    e.rec.submitSec = std::max(arrival_sec, impl->clock);
    e.rec.state = QueryState::Queued;
    e.waitMark = e.rec.submitSec; // wait ledger opens at submission
    e.rec.lifecycle.push_back({QueryState::Queued, e.rec.submitSec});
    ++impl->tenants[static_cast<std::size_t>(tenant)].submitted;
    impl->flight.record(e.rec.submitSec, "submit",
                        impl->queryLabel(e), "");
    impl->schedule(e.rec.submitSec, Impl::EventKind::Arrival, id);
    return id;
}

void
QueryService::setOnComplete(std::function<void(const QueryRecord &)> fn)
{
    impl->onComplete = std::move(fn);
}

void
QueryService::drain()
{
    impl->drain();
}

std::size_t
QueryService::numQueries() const
{
    return impl->execs.size();
}

const QueryRecord &
QueryService::record(QueryId id) const
{
    auto it = impl->execs.find(id);
    AQ_ASSERT(it != impl->execs.end(), "no query ", id);
    return it->second.rec;
}

const obs::FlightRecorder &
QueryService::flightRecorder() const
{
    return impl->flight;
}

std::int64_t
QueryService::flightDumps() const
{
    return impl->flightDumpCount;
}

const std::string &
QueryService::lastFlightDump() const
{
    return impl->lastDump;
}

const obs::SloEngine &
QueryService::sloEngine() const
{
    return impl->slo;
}

namespace {

double
percentileOf(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    auto idx = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(sorted.size()))) - 1;
    return sorted[std::min(idx, sorted.size() - 1)];
}

} // namespace

ServiceStats
QueryService::aggregate() const
{
    ServiceStats s;
    s.completed = static_cast<std::int64_t>(impl->completed.size());
    s.shedTotal = static_cast<std::int64_t>(impl->shedIds.size());
    if (s.completed + s.shedTotal > 0)
        s.shedRate = static_cast<double>(s.shedTotal) /
                     static_cast<double>(s.completed + s.shedTotal);
    for (const auto &dn : impl->devices) {
        s.deviceBusySec.push_back(dn->busySec);
        s.deviceTasksRun.push_back(dn->tasksRun);
    }
    for (const Impl::TenantState &t : impl->tenants) {
        TenantStats ts;
        ts.name = t.cfg.name;
        ts.submitted = t.submitted;
        ts.shed = t.shedCount;
        s.tenants.push_back(std::move(ts));
    }
    s.blame = impl->blame;
    s.contentionWaitSec = s.blame.total();
    for (std::size_t ti = 0; ti < s.tenants.size(); ++ti)
        s.tenants[ti].contentionWaitSec =
            s.blame.rowSum(static_cast<int>(ti));
    for (QueryId id : impl->shedIds) {
        const QueryRecord &r = impl->execs.at(id).rec;
        if (!r.shedReason.empty())
            ++s.shedReasonCounts[r.shedReason];
    }
    if (impl->completed.empty())
        return s;

    std::vector<double> lat;
    std::vector<std::vector<double>> tenant_lat(impl->tenants.size());
    double first_submit = 0.0, last_done = 0.0;
    std::int64_t suspended = 0;
    bool first = true;
    for (QueryId id : impl->completed) {
        const QueryRecord &r = impl->execs.at(id).rec;
        lat.push_back(r.latencySec());
        s.latencyHistogram.record(r.latencySec());
        s.queueWaitHistogram.record(r.queueWaitSec);
        s.meanQueueWaitSec += r.queueWaitSec;
        auto ti = static_cast<std::size_t>(r.tenant);
        tenant_lat[ti].push_back(r.latencySec());
        TenantStats &ts = s.tenants[ti];
        ++ts.completed;
        ts.meanQueueWaitSec += r.queueWaitSec;
        ts.waitLedger += r.waitLedger;
        s.waitLedger += r.waitLedger;
        double slo = impl->tenants[ti].cfg.sloSec;
        if (slo <= 0.0 || r.latencySec() <= slo)
            ++ts.withinSlo;
        for (const TableTaskRecord &t : r.stats.tasks)
            ++s.bottleneckTaskCounts[obs::pipeStageName(t.bottleneck)];
        if (r.suspendReason != obs::SuspendReason::None)
            ++s.suspendReasonCounts[obs::suspendReasonName(
                r.suspendReason)];
        if (r.suspendCount > 0)
            ++suspended;
        if (first || r.submitSec < first_submit)
            first_submit = r.submitSec;
        last_done = std::max(last_done, r.doneSec);
        first = false;
    }
    s.meanQueueWaitSec /= static_cast<double>(lat.size());
    s.suspendRate =
        static_cast<double>(suspended) / static_cast<double>(lat.size());
    s.makespanSec = last_done - first_submit;
    s.throughputQps = s.makespanSec > 0.0
        ? static_cast<double>(s.completed) / s.makespanSec : 0.0;

    std::sort(lat.begin(), lat.end());
    s.p50LatencySec = percentileOf(lat, 0.50);
    s.p95LatencySec = percentileOf(lat, 0.95);
    s.p99LatencySec = percentileOf(lat, 0.99);

    for (std::size_t ti = 0; ti < s.tenants.size(); ++ti) {
        TenantStats &ts = s.tenants[ti];
        if (ts.submitted > 0)
            ts.shedRate = static_cast<double>(ts.shed) /
                          static_cast<double>(ts.submitted);
        if (ts.completed > 0)
            ts.meanQueueWaitSec /= static_cast<double>(ts.completed);
        std::sort(tenant_lat[ti].begin(), tenant_lat[ti].end());
        ts.p50LatencySec = percentileOf(tenant_lat[ti], 0.50);
        ts.p90LatencySec = percentileOf(tenant_lat[ti], 0.90);
        ts.p99LatencySec = percentileOf(tenant_lat[ti], 0.99);
        ts.goodputQps = s.makespanSec > 0.0
            ? static_cast<double>(ts.withinSlo) / s.makespanSec : 0.0;
    }
    return s;
}

} // namespace aquoman::service
