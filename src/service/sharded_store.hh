/**
 * @file
 * Sharded persistence of column files across a service-owned array of
 * simulated SSDs. Each table is cut into fixed-width contiguous row
 * stripes (one per device, in device order); stripe widths depend only
 * on the row count and device count, never on thread count, so a
 * sharding is part of the data definition and fully deterministic.
 * Device d receives one extent holding its stripe's on-flash bytes
 * (column slices at their stored width plus the proportional string
 * heap share), written through that device's controller-switch host
 * port — loading a database is a host activity, and the per-device
 * write ledgers and capacity pressure are real.
 *
 * The stripe map is what the Table-Task scheduler consumes: a Table
 * Task that streams a single base table splits into per-device
 * subtasks proportional to the stripe row counts.
 */

#ifndef AQUOMAN_SERVICE_SHARDED_STORE_HH
#define AQUOMAN_SERVICE_SHARDED_STORE_HH

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "columnstore/encoding.hh"
#include "columnstore/table.hh"
#include "common/compress_mode.hh"
#include "flash/controller_switch.hh"

namespace aquoman::service {

/** Row-stripe placement of one table over the device array. */
struct TableSharding
{
    /** Rows of the table resident on each device. */
    std::vector<std::int64_t> rowsOnDevice;

    /** The extent backing each device's stripe (numPages 0 if empty). */
    std::vector<FlashExtent> extents;

    std::int64_t totalRows = 0;
    std::int64_t totalBytes = 0;

    /** Fraction of the table's rows held by device @p d. */
    double
    fraction(int d) const
    {
        if (totalRows <= 0)
            return d == 0 ? 1.0 : 0.0;
        return static_cast<double>(rowsOnDevice[d]) / totalRows;
    }
};

/** Persists tables as row stripes across an array of SSDs. */
class ShardedTableStore
{
  public:
    explicit ShardedTableStore(std::vector<ControllerSwitch *> switches)
        : devices(std::move(switches))
    {
    }

    int numDevices() const { return static_cast<int>(devices.size()); }

    /**
     * Stripe @p t across the array: device d holds rows
     * [d*W, (d+1)*W) for the fixed width W = ceil(rows / M). Real
     * bytes are written so device capacity and load traffic are
     * enforced; reads during execution stay in-memory (the device
     * model accounts streamed pages analytically).
     */
    TableSharding
    store(const Table &t)
    {
        int m = numDevices();
        TableSharding sh;
        sh.totalRows = t.numRows();
        sh.rowsOnDevice.resize(m, 0);
        sh.extents.resize(m);
        std::int64_t width =
            (sh.totalRows + m - 1) / std::max(1, m);
        const auto &heap = t.strings().raw();
        auto heap_bytes = static_cast<std::int64_t>(heap.size());
        std::int64_t heap_written = 0;
        for (int d = 0; d < m; ++d) {
            std::int64_t r0 = std::min<std::int64_t>(sh.totalRows,
                                                     d * width);
            std::int64_t r1 = std::min<std::int64_t>(sh.totalRows,
                                                     (d + 1) * width);
            sh.rowsOnDevice[d] = r1 - r0;
            // Heap share: proportional floor split, remainder on the
            // last stripe so the shares sum to the heap exactly.
            std::int64_t h = 0;
            if (sh.totalRows > 0 && heap_bytes > 0) {
                h = d + 1 == m
                    ? heap_bytes - heap_written
                    : heap_bytes * sh.rowsOnDevice[d] / sh.totalRows;
                heap_written += h;
            }
            std::vector<std::uint8_t> buf = encodeStripe(t, r0, r1);
            std::int64_t col_bytes =
                static_cast<std::int64_t>(buf.size());
            if (col_bytes + h == 0)
                continue;
            FlashExtent ext =
                devices[d]->dev().allocate(col_bytes + h);
            if (col_bytes > 0)
                devices[d]->write(FlashPort::Host, ext, 0, buf.data(),
                                  col_bytes);
            if (h > 0) {
                devices[d]->write(FlashPort::Host, ext, col_bytes,
                                  heap.data() + heap_written - h, h);
            }
            sh.extents[d] = ext;
            sh.totalBytes += col_bytes + h;
        }
        shardings[t.name()] = sh;
        return sh;
    }

    bool has(const std::string &table) const
    {
        return shardings.count(table) != 0;
    }

    const TableSharding &
    sharding(const std::string &table) const
    {
        auto it = shardings.find(table);
        AQ_ASSERT(it != shardings.end(), "table '", table,
                  "' is not sharded");
        return it->second;
    }

  private:
    /**
     * On-flash encoding of rows [r0, r1): column slices in order.
     * With compression enabled each slice becomes encoded page blocks
     * (the same codecs TableStore persists, page-aligned so every
     * block owns one flash page); otherwise raw column slices at
     * their stored width.
     */
    static std::vector<std::uint8_t>
    encodeStripe(const Table &t, std::int64_t r0, std::int64_t r1)
    {
        std::vector<std::uint8_t> buf;
        bool compress = compressionEnabled();
        std::vector<std::int64_t> vals;
        for (int ci = 0; ci < t.numColumns(); ++ci) {
            const Column &c = t.col(ci);
            int width = columnTypeWidth(c.type());
            if (compress) {
                vals.resize(r1 - r0);
                for (std::int64_t r = r0; r < r1; ++r)
                    vals[r - r0] = c.get(r);
                ColumnEncoding enc = encodeValues(
                    vals.data(),
                    static_cast<std::int64_t>(vals.size()), width, r0);
                for (const EncodedPage &page : enc.pages) {
                    std::size_t at = buf.size();
                    buf.resize(at + kFlashPageBytes, 0);
                    std::memcpy(buf.data() + at, page.bytes.data(),
                                page.bytes.size());
                }
                continue;
            }
            std::size_t at = buf.size();
            buf.resize(at + static_cast<std::size_t>(r1 - r0) * width);
            for (std::int64_t r = r0; r < r1; ++r) {
                if (width == 4) {
                    auto v = static_cast<std::int32_t>(c.get(r));
                    std::memcpy(buf.data() + at, &v, 4);
                } else {
                    std::int64_t v = c.get(r);
                    std::memcpy(buf.data() + at, &v, 8);
                }
                at += width;
            }
        }
        return buf;
    }

    std::vector<ControllerSwitch *> devices;
    std::map<std::string, TableSharding> shardings;
};

} // namespace aquoman::service

#endif // AQUOMAN_SERVICE_SHARDED_STORE_HH
