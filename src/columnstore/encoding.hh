/**
 * @file
 * Lightweight column encodings for the on-flash layout: RLE,
 * per-page sorted dictionary, frame-of-reference (FOR), and a raw
 * fallback. A column is cut into page blocks, each independently
 * decodable and sized to fit one flash page (kFlashPageBytes), with a
 * greedy variable rows-per-page fill: runs of near-constant values
 * pack tens of thousands of rows into a single 8KB page, random data
 * degrades gracefully to raw. Every page carries a zone map (min/max
 * over non-null values, null count) so a scan can skip whole pages
 * whose range cannot satisfy a predicate.
 *
 * All codecs are order-preserving over the stored domain (the
 * dictionary is sorted per page, FOR deltas are monotone in the
 * value), so comparison predicates can be evaluated directly on
 * dictionary codes and FOR deltas without materializing values —
 * countMatchesEncoded() is that decode-free kernel.
 *
 * Null handling: the encoder treats the engine's null sentinel
 * (INT64_MIN, relalg's kNullValue) as NULL. Null positions are
 * recorded in a bit-packed bitmap ahead of the payload and excluded
 * from zone maps and codec domains, which keeps FOR ranges finite and
 * makes the round trip exact for every int64 input.
 *
 * Page block layout (little-endian):
 *   [0]  u8  codec            (ColumnCodec)
 *   [1]  u8  bits             code/delta width; raw value width in bits
 *   [2]  u8  hasNulls         0/1
 *   [3]  u8  reserved
 *   [4]  u32 rows
 *   [8]  i64 param            FOR base / dict size / RLE run count
 *   [16] optional null bitmap, ceil(rows/8) bytes
 *   then the codec payload.
 */

#ifndef AQUOMAN_COLUMNSTORE_ENCODING_HH
#define AQUOMAN_COLUMNSTORE_ENCODING_HH

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "flash/flash_config.hh"

namespace aquoman {

/** Per-page storage codec. */
enum class ColumnCodec : std::uint8_t
{
    Raw = 0,  ///< values at their on-flash width
    Rle = 1,  ///< (value, count) runs
    Dict = 2, ///< per-page sorted dictionary + bit-packed codes
    For = 3,  ///< frame of reference: base + bit-packed deltas
};

inline const char *
columnCodecName(ColumnCodec c)
{
    switch (c) {
      case ColumnCodec::Raw: return "raw";
      case ColumnCodec::Rle: return "rle";
      case ColumnCodec::Dict: return "dict";
      case ColumnCodec::For: return "for";
    }
    return "?";
}

/** The null sentinel the encoder recognises (relalg kNullValue). */
inline constexpr std::int64_t kEncodedNull =
    std::numeric_limits<std::int64_t>::min();

/** Zone map of one page: min/max over non-null values, null count. */
struct PageZone
{
    std::int64_t min = std::numeric_limits<std::int64_t>::max();
    std::int64_t max = std::numeric_limits<std::int64_t>::min();
    std::int64_t rows = 0;
    std::int64_t nullCount = 0;

    bool allNull() const { return nullCount == rows; }
};

/** Comparison ops the zone maps understand (mirrors relalg CmpOp). */
enum class ZoneOp { Eq, Ne, Lt, Le, Gt, Ge };

/** Can any / every non-null row of @p z satisfy `value op c`? */
enum class ZoneVerdict { NonePass, SomePass, AllPass };

inline ZoneVerdict
zoneCompare(const PageZone &z, ZoneOp op, std::int64_t c)
{
    if (z.allNull())
        return ZoneVerdict::NonePass; // null comparisons never pass
    bool any = false, all = false;
    switch (op) {
      case ZoneOp::Lt: any = z.min < c;  all = z.max < c;  break;
      case ZoneOp::Le: any = z.min <= c; all = z.max <= c; break;
      case ZoneOp::Gt: any = z.max > c;  all = z.min > c;  break;
      case ZoneOp::Ge: any = z.max >= c; all = z.min >= c; break;
      case ZoneOp::Eq:
        any = z.min <= c && c <= z.max;
        all = z.min == c && z.max == c;
        break;
      case ZoneOp::Ne:
        any = !(z.min == c && z.max == c);
        all = c < z.min || c > z.max;
        break;
    }
    if (!any)
        return ZoneVerdict::NonePass;
    // A page with nulls can never report AllPass: the null rows fail.
    if (all && z.nullCount == 0)
        return ZoneVerdict::AllPass;
    return ZoneVerdict::SomePass;
}

/** Zone verdict for `value IN (list)`. */
inline ZoneVerdict
zoneInList(const PageZone &z, const std::vector<std::int64_t> &list)
{
    if (z.allNull())
        return ZoneVerdict::NonePass;
    bool any = false;
    for (std::int64_t v : list)
        any = any || (z.min <= v && v <= z.max);
    if (!any)
        return ZoneVerdict::NonePass;
    return ZoneVerdict::SomePass;
}

/** One encoded page block plus its metadata. */
struct EncodedPage
{
    ColumnCodec codec = ColumnCodec::Raw;
    std::int64_t firstRow = 0;
    std::int64_t rows = 0;
    PageZone zone;
    std::vector<std::uint8_t> bytes; ///< self-describing block
};

/** A whole column cut into page blocks. */
struct ColumnEncoding
{
    std::int64_t rows = 0;
    std::int64_t encodedBytes = 0; ///< sum of page block sizes
    std::vector<EncodedPage> pages; ///< firstRow ascending

    std::int64_t numPages() const
    {
        return static_cast<std::int64_t>(pages.size());
    }
};

namespace enc_detail {

inline constexpr std::int64_t kHeaderBytes = 16;
/// Granularity of the greedy page fill; one group always fits a page.
inline constexpr std::int64_t kGroupRows = 512;
/// Rows-per-page cap: bounds zone-map granularity (and the u32 rows
/// field) even for perfectly compressible columns.
inline constexpr std::int64_t kMaxRowsPerPage = 1 << 16;
/// Dictionary candidates stop tracking past this many distinct values.
inline constexpr std::int64_t kMaxDictValues = 4096;

inline int
bitsForCount(std::uint64_t n) // codes 0..n-1
{
    int b = 1;
    while (n > (1ull << b))
        ++b;
    return b;
}

inline int
bitsForRange(std::uint64_t range) // deltas 0..range
{
    if (range == 0)
        return 1;
    int b = 0;
    while (b < 64 && range >> b)
        ++b;
    return b;
}

inline std::int64_t
packedBytes(std::int64_t rows, int bits)
{
    return (rows * bits + 7) / 8;
}

/** Append @p bits low bits of @p v to a LSB-first bit stream. */
inline void
putBits(std::vector<std::uint8_t> &out, std::int64_t &bitpos,
        std::uint64_t v, int bits)
{
    for (int i = 0; i < bits; ++i, ++bitpos) {
        if ((bitpos >> 3) >= static_cast<std::int64_t>(out.size()))
            out.push_back(0);
        if ((v >> i) & 1)
            out[bitpos >> 3] |= static_cast<std::uint8_t>(
                1u << (bitpos & 7));
    }
}

inline std::uint64_t
getBits(const std::uint8_t *p, std::int64_t bitpos, int bits)
{
    std::uint64_t v = 0;
    for (int i = 0; i < bits; ++i, ++bitpos) {
        if ((p[bitpos >> 3] >> (bitpos & 7)) & 1)
            v |= 1ull << i;
    }
    return v;
}

/**
 * Word-wise getBits. Bit-identical to getBits on little-endian hosts
 * (the stream is LSB-first, so a 64-bit load sees bit `bitpos & 7`
 * of the field at shift position 0). Only legal when the 8 bytes at
 * `p + (bitpos >> 3)` are in bounds and bits <= 57 (field + intra-byte
 * shift must fit one load); callers gate with fastUnpackCount.
 */
inline std::uint64_t
getBitsFast(const std::uint8_t *p, std::int64_t bitpos, int bits)
{
    std::uint64_t w;
    std::memcpy(&w, p + (bitpos >> 3), 8);
    w >>= (bitpos & 7);
    return w & ((1ull << bits) - 1);
}

/**
 * How many leading fields of a packed stream of @p n fields of
 * @p bits bits each can be read with getBitsFast given @p avail bytes
 * of stream. The remainder must fall back to getBits.
 */
inline std::int64_t
fastUnpackCount(std::int64_t n, int bits, std::int64_t avail)
{
    if (bits <= 0 || bits > 57 || avail < 9)
        return 0;
    return std::min<std::int64_t>(n, 8 * (avail - 8) / bits);
}

template <typename T>
inline void
putScalar(std::vector<std::uint8_t> &out, T v)
{
    std::size_t at = out.size();
    out.resize(at + sizeof(T));
    std::memcpy(out.data() + at, &v, sizeof(T));
}

template <typename T>
inline T
getScalar(const std::uint8_t *p)
{
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
}

/** Incremental per-page statistics driving the codec choice. */
struct PageStats
{
    std::int64_t rows = 0;
    std::int64_t nulls = 0;
    std::int64_t runs = 0; ///< over all rows, nulls included
    bool havePrev = false;
    std::int64_t prev = 0;
    PageZone zone;
    std::unordered_set<std::int64_t> distinct; ///< non-null values
    bool dictOverflow = false;

    void
    add(std::int64_t v)
    {
        if (!havePrev || v != prev)
            ++runs;
        havePrev = true;
        prev = v;
        ++rows;
        zone.rows = rows;
        if (v == kEncodedNull) {
            ++nulls;
            zone.nullCount = nulls;
            return;
        }
        zone.min = std::min(zone.min, v);
        zone.max = std::max(zone.max, v);
        if (!dictOverflow) {
            distinct.insert(v);
            if (static_cast<std::int64_t>(distinct.size())
                > kMaxDictValues)
                dictOverflow = true;
        }
    }

    bool hasNulls() const { return nulls > 0; }

    std::int64_t
    bitmapBytes() const
    {
        return hasNulls() ? (rows + 7) / 8 : 0;
    }

    std::int64_t
    rawSize(int width) const
    {
        return kHeaderBytes + bitmapBytes() + rows * width;
    }

    std::int64_t
    rleSize() const
    {
        return kHeaderBytes + bitmapBytes() + runs * 12;
    }

    /// Negative when the codec is not applicable.
    std::int64_t
    dictSize() const
    {
        if (dictOverflow)
            return -1;
        auto nd = static_cast<std::int64_t>(distinct.size());
        if (nd == 0)
            nd = 1; // all-null page: one-entry placeholder dict
        int bits = bitsForCount(static_cast<std::uint64_t>(nd));
        return kHeaderBytes + bitmapBytes() + nd * 8
            + packedBytes(rows, bits);
    }

    std::int64_t
    forSize() const
    {
        if (zone.min > zone.max) // all null
            return kHeaderBytes + bitmapBytes() + packedBytes(rows, 1);
        std::uint64_t range = static_cast<std::uint64_t>(zone.max)
            - static_cast<std::uint64_t>(zone.min);
        int bits = bitsForRange(range);
        if (bits >= 64)
            return -1; // range needs full width: raw is never worse
        return kHeaderBytes + bitmapBytes() + packedBytes(rows, bits);
    }

    /**
     * Smallest applicable codec and its size. Deterministic tie
     * order: For, Dict, Rle, Raw (cheapest decode among equals).
     */
    std::pair<ColumnCodec, std::int64_t>
    best(int width) const
    {
        ColumnCodec codec = ColumnCodec::For;
        std::int64_t size = forSize();
        auto consider = [&](ColumnCodec c, std::int64_t s) {
            if (s >= 0 && (size < 0 || s < size)) {
                codec = c;
                size = s;
            }
        };
        consider(ColumnCodec::Dict, dictSize());
        consider(ColumnCodec::Rle, rleSize());
        consider(ColumnCodec::Raw, rawSize(width));
        return {codec, size};
    }
};

/** Encode rows [r0, r0+stats.rows) of @p vals with @p codec. */
inline EncodedPage
encodePage(const std::int64_t *vals, std::int64_t first_row,
           const PageStats &stats, ColumnCodec codec, int width)
{
    const std::int64_t n = stats.rows;
    const std::int64_t *v = vals + first_row;
    EncodedPage page;
    page.codec = codec;
    page.firstRow = first_row;
    page.rows = n;
    page.zone = stats.zone;

    std::vector<std::uint8_t> &out = page.bytes;
    std::uint8_t bits = 0;
    std::int64_t param = 0;
    std::vector<std::int64_t> dict;
    switch (codec) {
      case ColumnCodec::Raw:
        bits = static_cast<std::uint8_t>(width * 8);
        break;
      case ColumnCodec::Rle:
        param = stats.runs;
        break;
      case ColumnCodec::Dict: {
        dict.assign(stats.distinct.begin(), stats.distinct.end());
        std::sort(dict.begin(), dict.end());
        if (dict.empty())
            dict.push_back(0); // all-null placeholder
        param = static_cast<std::int64_t>(dict.size());
        bits = static_cast<std::uint8_t>(
            bitsForCount(static_cast<std::uint64_t>(dict.size())));
        break;
      }
      case ColumnCodec::For: {
        param = stats.zone.min > stats.zone.max ? 0 : stats.zone.min;
        std::uint64_t range = stats.zone.min > stats.zone.max
            ? 0
            : static_cast<std::uint64_t>(stats.zone.max)
                - static_cast<std::uint64_t>(stats.zone.min);
        bits = static_cast<std::uint8_t>(bitsForRange(range));
        break;
      }
    }

    out.push_back(static_cast<std::uint8_t>(codec));
    out.push_back(bits);
    out.push_back(stats.hasNulls() ? 1 : 0);
    out.push_back(0);
    putScalar<std::uint32_t>(out, static_cast<std::uint32_t>(n));
    putScalar<std::int64_t>(out, param);

    if (stats.hasNulls()) {
        std::size_t at = out.size();
        out.resize(at + stats.bitmapBytes(), 0);
        for (std::int64_t i = 0; i < n; ++i) {
            if (v[i] == kEncodedNull)
                out[at + (i >> 3)] |= static_cast<std::uint8_t>(
                    1u << (i & 7));
        }
    }

    switch (codec) {
      case ColumnCodec::Raw: {
        std::size_t at = out.size();
        out.resize(at + n * width);
        for (std::int64_t i = 0; i < n; ++i) {
            if (width == 4) {
                auto x = static_cast<std::int32_t>(v[i]);
                std::memcpy(out.data() + at + i * 4, &x, 4);
            } else {
                std::memcpy(out.data() + at + i * 8, &v[i], 8);
            }
        }
        break;
      }
      case ColumnCodec::Rle: {
        std::int64_t i = 0;
        while (i < n) {
            std::int64_t j = i + 1;
            while (j < n && v[j] == v[i])
                ++j;
            putScalar<std::int64_t>(out, v[i]);
            putScalar<std::uint32_t>(
                out, static_cast<std::uint32_t>(j - i));
            i = j;
        }
        break;
      }
      case ColumnCodec::Dict: {
        for (std::int64_t d : dict)
            putScalar<std::int64_t>(out, d);
        std::int64_t bitpos =
            static_cast<std::int64_t>(out.size()) * 8;
        for (std::int64_t i = 0; i < n; ++i) {
            std::uint64_t code = 0;
            if (v[i] != kEncodedNull) {
                code = static_cast<std::uint64_t>(
                    std::lower_bound(dict.begin(), dict.end(), v[i])
                    - dict.begin());
            }
            putBits(out, bitpos, code, bits);
        }
        break;
      }
      case ColumnCodec::For: {
        std::int64_t bitpos =
            static_cast<std::int64_t>(out.size()) * 8;
        for (std::int64_t i = 0; i < n; ++i) {
            std::uint64_t delta = 0;
            if (v[i] != kEncodedNull) {
                delta = static_cast<std::uint64_t>(v[i])
                    - static_cast<std::uint64_t>(param);
            }
            putBits(out, bitpos, delta, bits);
        }
        break;
      }
    }
    AQ_ASSERT(static_cast<std::int64_t>(out.size())
                  <= kFlashPageBytes,
              "encoded page block exceeds the flash page size");
    return page;
}

} // namespace enc_detail

/**
 * Encode @p n values (on-flash width @p width, 4 or 8) into page
 * blocks with a greedy variable rows-per-page fill. Row numbers in the
 * page metadata start at @p first_row.
 */
inline ColumnEncoding
encodeValues(const std::int64_t *vals, std::int64_t n, int width,
             std::int64_t first_row = 0)
{
    using namespace enc_detail;
    ColumnEncoding enc;
    enc.rows = n;
    std::int64_t at = 0;
    while (at < n) {
        PageStats sealed; // stats of the page accepted so far
        PageStats trial;
        std::int64_t taken = 0;
        while (at + taken < n && taken < kMaxRowsPerPage) {
            std::int64_t group = std::min<std::int64_t>(
                {kGroupRows, n - at - taken, kMaxRowsPerPage - taken});
            for (std::int64_t i = 0; i < group; ++i)
                trial.add(vals[at + taken + i]);
            if (taken > 0
                && trial.best(width).second > kFlashPageBytes)
                break; // the new group would overflow the page
            sealed = trial;
            taken += group;
        }
        AQ_ASSERT(taken > 0, "page fill made no progress");
        auto [codec, size] = sealed.best(width);
        (void)size;
        EncodedPage page = encodePage(vals, at, sealed, codec, width);
        page.firstRow = first_row + at;
        enc.encodedBytes += static_cast<std::int64_t>(
            page.bytes.size());
        enc.pages.push_back(std::move(page));
        at += taken;
    }
    return enc;
}

/**
 * Decode one page block produced by encodeValues back into int64
 * values (appended to @p out). Exact inverse of the encoder for every
 * input, nulls (kEncodedNull) included.
 */
inline void
decodePage(const std::uint8_t *p, std::size_t len,
           std::vector<std::int64_t> &out)
{
    using namespace enc_detail;
    AQ_ASSERT(len >= static_cast<std::size_t>(kHeaderBytes),
              "page block shorter than its header");
    auto codec = static_cast<ColumnCodec>(p[0]);
    int bits = p[1];
    bool has_nulls = p[2] != 0;
    std::int64_t n = getScalar<std::uint32_t>(p + 4);
    std::int64_t param = getScalar<std::int64_t>(p + 8);
    const std::uint8_t *cursor = p + kHeaderBytes;
    const std::uint8_t *bitmap = nullptr;
    if (has_nulls) {
        bitmap = cursor;
        cursor += (n + 7) / 8;
    }
    auto is_null = [&](std::int64_t i) {
        return bitmap && ((bitmap[i >> 3] >> (i & 7)) & 1);
    };
    std::size_t base_out = out.size();
    out.resize(base_out + n);
    std::int64_t *dst = out.data() + base_out;

    switch (codec) {
      case ColumnCodec::Raw: {
        int width = bits / 8;
        for (std::int64_t i = 0; i < n; ++i) {
            if (width == 4)
                dst[i] = getScalar<std::int32_t>(cursor + i * 4);
            else
                dst[i] = getScalar<std::int64_t>(cursor + i * 8);
        }
        break;
      }
      case ColumnCodec::Rle: {
        std::int64_t i = 0;
        for (std::int64_t r = 0; r < param; ++r) {
            auto v = getScalar<std::int64_t>(cursor);
            auto cnt = getScalar<std::uint32_t>(cursor + 8);
            cursor += 12;
            for (std::uint32_t k = 0; k < cnt; ++k)
                dst[i++] = v;
        }
        AQ_ASSERT(i == n, "RLE run counts disagree with page rows");
        break;
      }
      case ColumnCodec::Dict: {
        const std::uint8_t *dict = cursor;
        const std::uint8_t *codes = cursor + param * 8;
        std::int64_t fast = fastUnpackCount(
            n, bits, static_cast<std::int64_t>(len) - (codes - p));
        std::int64_t bitpos = 0;
        for (std::int64_t i = 0; i < fast; ++i, bitpos += bits) {
            auto code = getBitsFast(codes, bitpos, bits);
            dst[i] = getScalar<std::int64_t>(
                dict + static_cast<std::int64_t>(code) * 8);
        }
        for (std::int64_t i = fast; i < n; ++i, bitpos += bits) {
            auto code = getBits(codes, bitpos, bits);
            dst[i] = getScalar<std::int64_t>(
                dict + static_cast<std::int64_t>(code) * 8);
        }
        break;
      }
      case ColumnCodec::For: {
        std::int64_t fast = fastUnpackCount(
            n, bits, static_cast<std::int64_t>(len) - (cursor - p));
        std::int64_t bitpos = 0;
        for (std::int64_t i = 0; i < fast; ++i, bitpos += bits) {
            dst[i] = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(param)
                + getBitsFast(cursor, bitpos, bits));
        }
        for (std::int64_t i = fast; i < n; ++i, bitpos += bits) {
            dst[i] = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(param)
                + getBits(cursor, bitpos, bits));
        }
        break;
      }
    }
    if (bitmap) {
        for (std::int64_t i = 0; i < n; ++i) {
            if (is_null(i))
                dst[i] = kEncodedNull;
        }
    }
}

/**
 * Decode-free predicate kernel: rows of the page satisfying
 * `value op c`, evaluated directly on the encoded representation —
 * dictionary codes and FOR deltas are compared in the code domain
 * (both are order-preserving), RLE compares once per run. Null rows
 * never match. Used by the selector-kernel benches and the encoding
 * tests to prove code-domain evaluation matches decoded evaluation.
 */
inline std::int64_t
countMatchesEncoded(const EncodedPage &page, ZoneOp op,
                    std::int64_t c)
{
    using namespace enc_detail;
    ZoneVerdict zv = zoneCompare(page.zone, op, c);
    if (zv == ZoneVerdict::NonePass)
        return 0;
    if (zv == ZoneVerdict::AllPass)
        return page.rows; // zone map proves every (non-null) row passes

    const std::uint8_t *p = page.bytes.data();
    int bits = p[1];
    bool has_nulls = p[2] != 0;
    std::int64_t n = getScalar<std::uint32_t>(p + 4);
    std::int64_t param = getScalar<std::int64_t>(p + 8);
    const std::uint8_t *cursor = p + kHeaderBytes;
    const std::uint8_t *bitmap = nullptr;
    if (has_nulls) {
        bitmap = cursor;
        cursor += (n + 7) / 8;
    }
    auto is_null = [&](std::int64_t i) {
        return bitmap && ((bitmap[i >> 3] >> (i & 7)) & 1);
    };
    auto pass = [&](std::int64_t v) {
        switch (op) {
          case ZoneOp::Eq: return v == c;
          case ZoneOp::Ne: return v != c;
          case ZoneOp::Lt: return v < c;
          case ZoneOp::Le: return v <= c;
          case ZoneOp::Gt: return v > c;
          case ZoneOp::Ge: return v >= c;
        }
        return false;
    };

    std::int64_t count = 0;
    switch (page.codec) {
      case ColumnCodec::Raw: {
        int width = bits / 8;
        for (std::int64_t i = 0; i < n; ++i) {
            std::int64_t v = width == 4
                ? getScalar<std::int32_t>(cursor + i * 4)
                : getScalar<std::int64_t>(cursor + i * 8);
            if (!is_null(i) && pass(v))
                ++count;
        }
        break;
      }
      case ColumnCodec::Rle: {
        std::int64_t i = 0;
        for (std::int64_t r = 0; r < param; ++r) {
            auto v = getScalar<std::int64_t>(cursor);
            auto cnt = getScalar<std::uint32_t>(cursor + 8);
            cursor += 12;
            // One comparison per run; nulls are a sentinel run value.
            bool hit = v != kEncodedNull && pass(v);
            if (hit)
                count += cnt;
            i += cnt;
        }
        break;
      }
      case ColumnCodec::Dict: {
        // Map the constant into the code domain with one binary
        // search, then compare bit-packed codes only.
        const std::uint8_t *dict_bytes = cursor;
        const std::uint8_t *codes = cursor + param * 8;
        std::vector<std::int64_t> dict(param);
        for (std::int64_t d = 0; d < param; ++d)
            dict[d] = getScalar<std::int64_t>(dict_bytes + d * 8);
        // lo = first code with dict[code] >= c; exact = dict[lo] == c.
        std::int64_t lo =
            std::lower_bound(dict.begin(), dict.end(), c)
            - dict.begin();
        bool exact = lo < param && dict[lo] == c;
        auto code_pass = [&](std::uint64_t code) {
            auto k = static_cast<std::int64_t>(code);
            switch (op) {
              case ZoneOp::Eq: return exact && k == lo;
              case ZoneOp::Ne: return !(exact && k == lo);
              case ZoneOp::Lt: return k < lo;
              case ZoneOp::Le: return exact ? k <= lo : k < lo;
              case ZoneOp::Gt: return exact ? k > lo : k >= lo;
              case ZoneOp::Ge: return k >= lo;
            }
            return false;
        };
        std::int64_t fast = fastUnpackCount(
            n, bits,
            static_cast<std::int64_t>(page.bytes.size())
                - (codes - p));
        std::int64_t bitpos = 0;
        for (std::int64_t i = 0; i < n; ++i, bitpos += bits) {
            auto code = i < fast ? getBitsFast(codes, bitpos, bits)
                                 : getBits(codes, bitpos, bits);
            if (!is_null(i) && code_pass(code))
                ++count;
        }
        break;
      }
      case ColumnCodec::For: {
        // Compare deltas against c - base in the unsigned delta
        // domain; out-of-range constants were settled by the zone map
        // (SomePass implies min <= c-ish overlap) but re-check anyway.
        std::int64_t fast = fastUnpackCount(
            n, bits,
            static_cast<std::int64_t>(page.bytes.size())
                - (cursor - p));
        std::int64_t bitpos = 0;
        for (std::int64_t i = 0; i < n; ++i, bitpos += bits) {
            auto delta = i < fast ? getBitsFast(cursor, bitpos, bits)
                                  : getBits(cursor, bitpos, bits);
            auto v = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(param) + delta);
            if (!is_null(i) && pass(v))
                ++count;
        }
        break;
      }
    }
    return count;
}

} // namespace aquoman

#endif // AQUOMAN_COLUMNSTORE_ENCODING_HH
