/**
 * @file
 * String heap backing varchar columns, in the style of MonetDB's string
 * BATs: the column file stores fixed-width offsets into a shared heap of
 * NUL-terminated strings, and repeated strings are interned so that
 * small-domain columns (e.g. country names) have a small heap. The heap
 * size is what decides whether regular-expression filtering can run in
 * AQUOMAN's 1MB regex-accelerator cache (Sec. VI-B / VI-E).
 */

#ifndef AQUOMAN_COLUMNSTORE_STRING_HEAP_HH
#define AQUOMAN_COLUMNSTORE_STRING_HEAP_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"

namespace aquoman {

/**
 * Longest run of literal (non-wildcard) characters in a LIKE pattern.
 * Every string matching the pattern must contain this run as a
 * substring, so it is a *necessary* condition usable as a cheap byte
 * prefilter before the full wildcard match — rejecting on its absence
 * can never drop a true match. Empty for all-wildcard patterns.
 */
inline std::string_view
likeLiteralRun(std::string_view pattern)
{
    std::size_t best = 0, best_len = 0, i = 0;
    while (i < pattern.size()) {
        if (pattern[i] == '%' || pattern[i] == '_') {
            ++i;
            continue;
        }
        std::size_t start = i;
        while (i < pattern.size() && pattern[i] != '%'
               && pattern[i] != '_')
            ++i;
        if (i - start > best_len) {
            best = start;
            best_len = i - start;
        }
    }
    return pattern.substr(best, best_len);
}

/** Interning heap of NUL-terminated strings addressed by byte offset. */
class StringHeap
{
  public:
    /**
     * Intern @p s, returning its heap offset. Identical strings share
     * one heap entry.
     */
    std::int64_t
    intern(std::string_view s)
    {
        auto it = internMap.find(std::string(s));
        if (it != internMap.end())
            return it->second;
        std::int64_t off = static_cast<std::int64_t>(bytes.size());
        bytes.insert(bytes.end(), s.begin(), s.end());
        bytes.push_back('\0');
        internMap.emplace(std::string(s), off);
        return off;
    }

    /**
     * Offset of @p s if it is already interned, -1 otherwise (used to
     * resolve string constants to dictionary offsets without mutating
     * the heap).
     */
    std::int64_t
    find(std::string_view s) const
    {
        auto it = internMap.find(std::string(s));
        return it == internMap.end() ? -1 : it->second;
    }

    /** Read the string at heap offset @p off. */
    std::string_view
    get(std::int64_t off) const
    {
        AQ_ASSERT(off >= 0 && off < static_cast<std::int64_t>(bytes.size()));
        return std::string_view(bytes.data() + off);
    }

    /** Total heap size in bytes (== unique-string bytes). */
    std::int64_t sizeBytes() const
    {
        return static_cast<std::int64_t>(bytes.size());
    }

    /** Number of distinct strings interned. */
    std::int64_t numStrings() const
    {
        return static_cast<std::int64_t>(internMap.size());
    }

    /** Raw heap bytes (for flash persistence). */
    const std::vector<char> &raw() const { return bytes; }

    /**
     * Could any interned string contain @p lit as a substring? One
     * memchr/memcmp scan over the contiguous heap bytes; since @p lit
     * cannot contain the NUL separator, a hit can never straddle two
     * strings, so a miss proves no string contains the run and a whole
     * LIKE morsel can be rejected without running the wildcard
     * matcher. False for an empty heap; true for an empty @p lit.
     */
    bool
    mayContain(std::string_view lit) const
    {
        if (lit.empty())
            return !bytes.empty();
        const char *p = bytes.data();
        const char *end = p + bytes.size();
        while (static_cast<std::size_t>(end - p) >= lit.size()) {
            const char *hit = static_cast<const char *>(
                std::memchr(p, lit.front(),
                            static_cast<std::size_t>(end - p)
                                - lit.size() + 1));
            if (hit == nullptr)
                return false;
            if (std::memcmp(hit, lit.data(), lit.size()) == 0)
                return true;
            p = hit + 1;
        }
        return false;
    }

  private:
    std::vector<char> bytes;
    std::unordered_map<std::string, std::int64_t> internMap;
};

} // namespace aquoman

#endif // AQUOMAN_COLUMNSTORE_STRING_HEAP_HH
