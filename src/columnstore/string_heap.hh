/**
 * @file
 * String heap backing varchar columns, in the style of MonetDB's string
 * BATs: the column file stores fixed-width offsets into a shared heap of
 * NUL-terminated strings, and repeated strings are interned so that
 * small-domain columns (e.g. country names) have a small heap. The heap
 * size is what decides whether regular-expression filtering can run in
 * AQUOMAN's 1MB regex-accelerator cache (Sec. VI-B / VI-E).
 */

#ifndef AQUOMAN_COLUMNSTORE_STRING_HEAP_HH
#define AQUOMAN_COLUMNSTORE_STRING_HEAP_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"

namespace aquoman {

/** Interning heap of NUL-terminated strings addressed by byte offset. */
class StringHeap
{
  public:
    /**
     * Intern @p s, returning its heap offset. Identical strings share
     * one heap entry.
     */
    std::int64_t
    intern(std::string_view s)
    {
        auto it = internMap.find(std::string(s));
        if (it != internMap.end())
            return it->second;
        std::int64_t off = static_cast<std::int64_t>(bytes.size());
        bytes.insert(bytes.end(), s.begin(), s.end());
        bytes.push_back('\0');
        internMap.emplace(std::string(s), off);
        return off;
    }

    /**
     * Offset of @p s if it is already interned, -1 otherwise (used to
     * resolve string constants to dictionary offsets without mutating
     * the heap).
     */
    std::int64_t
    find(std::string_view s) const
    {
        auto it = internMap.find(std::string(s));
        return it == internMap.end() ? -1 : it->second;
    }

    /** Read the string at heap offset @p off. */
    std::string_view
    get(std::int64_t off) const
    {
        AQ_ASSERT(off >= 0 && off < static_cast<std::int64_t>(bytes.size()));
        return std::string_view(bytes.data() + off);
    }

    /** Total heap size in bytes (== unique-string bytes). */
    std::int64_t sizeBytes() const
    {
        return static_cast<std::int64_t>(bytes.size());
    }

    /** Number of distinct strings interned. */
    std::int64_t numStrings() const
    {
        return static_cast<std::int64_t>(internMap.size());
    }

    /** Raw heap bytes (for flash persistence). */
    const std::vector<char> &raw() const { return bytes; }

  private:
    std::vector<char> bytes;
    std::unordered_map<std::string, std::int64_t> internMap;
};

} // namespace aquoman

#endif // AQUOMAN_COLUMNSTORE_STRING_HEAP_HH
