/**
 * @file
 * A relational table as a collection of columns plus the table-local
 * string heap, mirroring MonetDB's column-file-per-attribute layout.
 */

#ifndef AQUOMAN_COLUMNSTORE_TABLE_HH
#define AQUOMAN_COLUMNSTORE_TABLE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "columnstore/column.hh"
#include "columnstore/string_heap.hh"

namespace aquoman {

/** Column collection with shared string heap and name lookup. */
class Table
{
  public:
    Table() : heap(std::make_shared<StringHeap>()) {}

    explicit Table(std::string name_)
        : tableName(std::move(name_)), heap(std::make_shared<StringHeap>())
    {
    }

    const std::string &name() const { return tableName; }

    /** Add a column; all columns must end up the same length. */
    Column &
    addColumn(const std::string &col_name, ColumnType type)
    {
        AQ_ASSERT(colIndex.find(col_name) == colIndex.end(),
                  "duplicate column ", col_name);
        colIndex[col_name] = static_cast<int>(cols.size());
        cols.emplace_back(col_name, type);
        return cols.back();
    }

    /** Column count. */
    int numColumns() const { return static_cast<int>(cols.size()); }

    /** Row count (length of the first column; 0 when empty). */
    std::int64_t
    numRows() const
    {
        return cols.empty() ? 0 : cols.front().size();
    }

    /** Column by position. */
    const Column &col(int i) const { return cols.at(i); }
    Column &col(int i) { return cols.at(i); }

    /** Column by name. @throws FatalError when absent. */
    const Column &
    col(const std::string &col_name) const
    {
        return cols.at(indexOf(col_name));
    }

    Column &
    col(const std::string &col_name)
    {
        return cols.at(indexOf(col_name));
    }

    /** Position of @p col_name. @throws FatalError when absent. */
    int
    indexOf(const std::string &col_name) const
    {
        auto it = colIndex.find(col_name);
        if (it == colIndex.end())
            fatal("no column '", col_name, "' in table '", tableName, "'");
        return it->second;
    }

    /** True if the table has a column of this name. */
    bool
    hasColumn(const std::string &col_name) const
    {
        return colIndex.find(col_name) != colIndex.end();
    }

    /** Table-local string heap backing all varchar columns. */
    StringHeap &strings() { return *heap; }
    const StringHeap &strings() const { return *heap; }
    std::shared_ptr<StringHeap> stringsPtr() const { return heap; }

    /** Intern and append a string value into @p column. */
    void
    pushString(Column &column, std::string_view s)
    {
        AQ_ASSERT(column.type() == ColumnType::Varchar);
        column.push(heap->intern(s));
    }

    /** Read back a string value. */
    std::string_view
    getString(const Column &column, std::int64_t row) const
    {
        AQ_ASSERT(column.type() == ColumnType::Varchar);
        return heap->get(column.get(row));
    }

    /** Sum of all columns' on-flash bytes plus the string heap. */
    std::int64_t
    storedBytes() const
    {
        std::int64_t total = heap->sizeBytes();
        for (const auto &c : cols)
            total += c.storedBytes();
        return total;
    }

    /** Verify that all columns have equal length. */
    void
    checkConsistent() const
    {
        for (const auto &c : cols) {
            AQ_ASSERT(c.size() == numRows(), "ragged table ", tableName,
                      " column ", c.name());
        }
    }

  private:
    std::string tableName;
    /// deque: addColumn must not invalidate references handed out earlier
    std::deque<Column> cols;
    std::map<std::string, int> colIndex;
    std::shared_ptr<StringHeap> heap;
};

} // namespace aquoman

#endif // AQUOMAN_COLUMNSTORE_TABLE_HH
