/**
 * @file
 * Selection vectors for vector-at-a-time execution. A SelectionVector
 * names the tuples of a relation that are still alive after zero or
 * more predicate conjuncts, either as a dense range [0, n) (nothing
 * filtered yet) or as a strictly ascending row-index list. Operators
 * shrink the selection conjunct by conjunct and materialize values only
 * at stage boundaries the perf model prices, instead of copying every
 * column after every predicate.
 */

#ifndef AQUOMAN_COLUMNSTORE_SELECTION_VECTOR_HH
#define AQUOMAN_COLUMNSTORE_SELECTION_VECTOR_HH

#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "common/bitvector.hh"
#include "common/logging.hh"

namespace aquoman {

/**
 * An ordered set of selected row positions. Dense selections carry no
 * index storage; sparse selections hold a strictly ascending index
 * list. A sparse list that covers the full prefix [0, n) is promoted
 * back to dense on construction, so isDense() is canonical.
 */
class SelectionVector
{
  public:
    SelectionVector() = default;

    /** All rows [0, n) selected. */
    static SelectionVector
    dense(std::int64_t n)
    {
        SelectionVector s;
        s.count_ = n;
        return s;
    }

    /**
     * Selection from an explicit index list. @p rows must be strictly
     * ascending; a list equal to [0, rows.size()) is promoted to dense.
     */
    static SelectionVector
    sparse(std::vector<std::int64_t> rows)
    {
        SelectionVector s;
        s.assign(std::move(rows));
        return s;
    }

    std::int64_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    bool isDense() const { return dense_; }

    /** Row id at selection position @p pos. */
    std::int64_t
    operator[](std::int64_t pos) const
    {
        return dense_ ? pos : idx_[pos];
    }

    /** Raw index array, or nullptr when dense. */
    const std::int64_t *
    data() const
    {
        return dense_ ? nullptr : idx_.data();
    }

    /** Replace the selection with a (subset) index list. */
    void
    assign(std::vector<std::int64_t> rows)
    {
        count_ = static_cast<std::int64_t>(rows.size());
        idx_ = std::move(rows);
        dense_ = false;
        normalize();
    }

    /**
     * Shrink to the positions where @p mask is set. @p mask indexes
     * selection positions (0..size()), not row ids.
     */
    void
    filter(const BitVector &mask)
    {
        std::vector<std::int64_t> next;
        next.reserve(count_);
        for (std::int64_t pos = 0; pos < count_; ++pos) {
            if (mask.get(pos))
                next.push_back((*this)[pos]);
        }
        assign(std::move(next));
    }

    /** Materialized ascending row-index list (copies when dense). */
    std::vector<std::int64_t>
    toIndices() const
    {
        if (!dense_)
            return idx_;
        std::vector<std::int64_t> out(count_);
        std::iota(out.begin(), out.end(), 0);
        return out;
    }

  private:
    /** Promote a sparse list equal to [0, n) back to dense. */
    void
    normalize()
    {
        if (dense_)
            return;
        if (idx_.empty()
                || (idx_.front() == 0 && idx_.back() == count_ - 1)) {
            dense_ = true;
            idx_.clear();
            idx_.shrink_to_fit();
        }
    }

    bool dense_ = true;
    std::int64_t count_ = 0;
    std::vector<std::int64_t> idx_;
};

} // namespace aquoman

#endif // AQUOMAN_COLUMNSTORE_SELECTION_VECTOR_HH
