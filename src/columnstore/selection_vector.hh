/**
 * @file
 * Selection vectors for vector-at-a-time execution. A SelectionVector
 * names the tuples of a relation that are still alive after zero or
 * more predicate conjuncts, either as a dense range [0, n) (nothing
 * filtered yet) or as a strictly ascending row-index list. Operators
 * shrink the selection conjunct by conjunct and materialize values only
 * at stage boundaries the perf model prices, instead of copying every
 * column after every predicate.
 */

#ifndef AQUOMAN_COLUMNSTORE_SELECTION_VECTOR_HH
#define AQUOMAN_COLUMNSTORE_SELECTION_VECTOR_HH

#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "common/bitvector.hh"
#include "common/logging.hh"

namespace aquoman {

/**
 * An ordered set of selected row positions. Dense selections carry no
 * index storage; sparse selections hold a strictly ascending index
 * list. A sparse list that covers the full prefix [0, n) is promoted
 * back to dense on construction, so isDense() is canonical.
 */
class SelectionVector
{
  public:
    SelectionVector() = default;

    /** All rows [0, n) selected. */
    static SelectionVector
    dense(std::int64_t n)
    {
        SelectionVector s;
        s.count_ = n;
        return s;
    }

    /**
     * Selection from an explicit index list. @p rows must be strictly
     * ascending; a list equal to [0, rows.size()) is promoted to dense.
     */
    static SelectionVector
    sparse(std::vector<std::int64_t> rows)
    {
        SelectionVector s;
        s.assign(std::move(rows));
        return s;
    }

    std::int64_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    bool isDense() const { return dense_; }

    /** Row id at selection position @p pos. */
    std::int64_t
    operator[](std::int64_t pos) const
    {
        return dense_ ? pos : idx_[pos];
    }

    /** Raw index array, or nullptr when dense. */
    const std::int64_t *
    data() const
    {
        return dense_ ? nullptr : idx_.data();
    }

    /**
     * Replace the selection with a (subset) index list. The dense
     * promotion in normalize() infers "covers [0, n)" from the first
     * and last entry alone, which is only sound for strictly ascending
     * input — debug builds verify the whole list here to catch callers
     * handing over unsorted or duplicated rows.
     */
    void
    assign(std::vector<std::int64_t> rows)
    {
#ifndef NDEBUG
        for (std::size_t i = 1; i < rows.size(); ++i) {
            AQ_ASSERT(rows[i] > rows[i - 1],
                      "selection rows not strictly ascending at ", i);
        }
#endif
        count_ = static_cast<std::int64_t>(rows.size());
        idx_ = std::move(rows);
        dense_ = false;
        normalize();
        checkInvariants();
    }

    /**
     * Shrink to the positions where @p mask is set. @p mask indexes
     * selection positions (0..size()), not row ids. Survivors are
     * extracted word-at-a-time (popcount-sized allocation, ctz bit
     * walk), so an AND-folded mask costs O(words + survivors) rather
     * than a branch per selection position.
     */
    void
    filter(const BitVector &mask)
    {
        AQ_ASSERT(mask.size() == count_,
                  "mask has ", mask.size(), " bits for ", count_,
                  " selected rows");
        const std::int64_t kept = mask.popcount();
        if (kept == count_)
            return; // every position survives: selection unchanged
        std::vector<std::int64_t> next;
        next.reserve(kept);
        const std::int64_t nw = mask.numWords();
        for (std::int64_t w = 0; w < nw; ++w) {
            std::uint32_t m = mask.word(w);
            const std::int64_t base = w * 32;
            while (m != 0) {
                const std::int64_t pos =
                    base + __builtin_ctz(m);
                next.push_back(dense_ ? pos : idx_[pos]);
                m &= m - 1;
            }
        }
        assign(std::move(next));
    }

    /** Materialized ascending row-index list (copies when dense). */
    std::vector<std::int64_t>
    toIndices() const
    {
        if (!dense_)
            return idx_;
        std::vector<std::int64_t> out(count_);
        std::iota(out.begin(), out.end(), 0);
        return out;
    }

  private:
    /** Promote a sparse list equal to [0, n) back to dense. */
    void
    normalize()
    {
        if (dense_)
            return;
        if (idx_.empty()
                || (idx_.front() == 0 && idx_.back() == count_ - 1)) {
            dense_ = true;
            idx_.clear();
            idx_.shrink_to_fit();
        }
    }

    /**
     * Canonical-form invariants, checked after every fold: dense holds
     * no index storage; sparse is non-empty, sized to count_, starts
     * at a valid row and is NOT the full prefix (normalize() would
     * have promoted it). The O(1) checks are always on; the full
     * strict-ascension scan lives in assign() under !NDEBUG.
     */
    void
    checkInvariants() const
    {
        if (dense_) {
            AQ_ASSERT(idx_.empty() && count_ >= 0);
            return;
        }
        AQ_ASSERT(static_cast<std::int64_t>(idx_.size()) == count_);
        AQ_ASSERT(count_ > 0 && idx_.front() >= 0);
        AQ_ASSERT(!(idx_.front() == 0 && idx_.back() == count_ - 1),
                  "unnormalized full-prefix selection");
    }

    bool dense_ = true;
    std::int64_t count_ = 0;
    std::vector<std::int64_t> idx_;
};

} // namespace aquoman

#endif // AQUOMAN_COLUMNSTORE_SELECTION_VECTOR_HH
