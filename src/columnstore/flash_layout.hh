/**
 * @file
 * Persistence of column files onto the simulated flash device. With
 * compression enabled (the default, see common/compress_mode.hh) each
 * column becomes one extent of independently decodable encoded page
 * blocks — dictionary / RLE / frame-of-reference chosen per page, one
 * block per 8KB flash page, each with a zone map — plus one raw extent
 * for the table's string heap. With AQUOMAN_COMPRESS=0 the layout is
 * the raw one: values at their on-flash width (4B for int32/date, 8B
 * for int64/decimal and varchar heap offsets), contiguous.
 *
 * Both the host I/O path and the AQUOMAN path read columns back
 * through the flash controller switch, so all traffic — compressed
 * bytes when compressed — is accounted.
 */

#ifndef AQUOMAN_COLUMNSTORE_FLASH_LAYOUT_HH
#define AQUOMAN_COLUMNSTORE_FLASH_LAYOUT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "columnstore/encoding.hh"
#include "columnstore/table.hh"
#include "common/compress_mode.hh"
#include "flash/controller_switch.hh"

namespace aquoman {

/** Where one encoded page block lives inside its column extent. */
struct PageBlockMeta
{
    ColumnCodec codec = ColumnCodec::Raw;
    std::int64_t firstRow = 0;
    std::int64_t rows = 0;
    std::int64_t byteOffset = 0; ///< page-aligned offset in the extent
    std::int64_t byteLen = 0;    ///< encoded block bytes
    PageZone zone;
};

/** Persisted encoding of one column (empty pages == stored raw). */
struct ColumnLayoutMeta
{
    std::int64_t rows = 0;
    std::int64_t encodedBytes = 0;
    std::vector<PageBlockMeta> pages;

    bool encoded() const { return !pages.empty(); }

    std::int64_t numPages() const
    {
        return static_cast<std::int64_t>(pages.size());
    }
};

/** Flash extents backing one persisted table. */
struct TableLayout
{
    std::vector<FlashExtent> columnExtents; ///< one per column
    FlashExtent heapExtent;                 ///< string heap bytes

    /**
     * Per-column page-block metadata (parallel to columnExtents) when
     * the table was persisted compressed; empty for the raw layout.
     */
    std::vector<ColumnLayoutMeta> columnEncodings;
};

/**
 * A table persisted to flash. The in-memory Table remains the string
 * authority; numeric reads decode real bytes from the device.
 */
class FlashResidentTable
{
  public:
    FlashResidentTable(std::shared_ptr<const Table> tbl, TableLayout lay)
        : tablePtr(std::move(tbl)), layout(std::move(lay))
    {
    }

    const Table &table() const { return *tablePtr; }
    const TableLayout &extents() const { return layout; }

    /** Uncompressed on-flash bytes of column @p col for @p rows rows. */
    std::int64_t
    columnBytes(int col, std::int64_t rows) const
    {
        return rows * columnTypeWidth(tablePtr->col(col).type());
    }

    /**
     * Page-block metadata of column @p col, or nullptr when the
     * column is stored raw.
     */
    const ColumnLayoutMeta *
    encodingMeta(int col) const
    {
        if (static_cast<std::size_t>(col)
                >= layout.columnEncodings.size()
            || !layout.columnEncodings[col].encoded())
            return nullptr;
        return &layout.columnEncodings[col];
    }

    /**
     * Read rows [row_begin, row_end) of column @p col from flash through
     * @p sw on behalf of @p port, decoding into int64 values. Encoded
     * columns read and decode whole page blocks (only the blocks
     * overlapping the range); raw columns read the exact value bytes.
     */
    void
    readColumnRange(ControllerSwitch &sw, FlashPort port, int col,
                    std::int64_t row_begin, std::int64_t row_end,
                    std::vector<std::int64_t> &out) const
    {
        const Column &c = tablePtr->col(col);
        AQ_ASSERT(row_begin >= 0 && row_end <= c.size()
                  && row_begin <= row_end);
        std::int64_t n = row_end - row_begin;
        out.resize(n);
        if (n == 0)
            return;
        if (const ColumnLayoutMeta *meta = encodingMeta(col)) {
            readEncodedRange(sw, port, col, *meta, row_begin, row_end,
                             out);
            return;
        }
        int width = columnTypeWidth(c.type());
        std::vector<std::uint8_t> buf(n * width);
        sw.read(port, layout.columnExtents.at(col), row_begin * width,
                buf.data(), n * width);
        if (width == 4) {
            for (std::int64_t i = 0; i < n; ++i) {
                std::int32_t v;
                std::memcpy(&v, buf.data() + i * 4, 4);
                out[i] = v;
            }
        } else {
            for (std::int64_t i = 0; i < n; ++i) {
                std::int64_t v;
                std::memcpy(&v, buf.data() + i * 8, 8);
                out[i] = v;
            }
        }
    }

  private:
    void
    readEncodedRange(ControllerSwitch &sw, FlashPort port, int col,
                     const ColumnLayoutMeta &meta,
                     std::int64_t row_begin, std::int64_t row_end,
                     std::vector<std::int64_t> &out) const
    {
        const FlashExtent &ext = layout.columnExtents.at(col);
        // First block whose rows extend past row_begin.
        std::size_t lo = 0, hi = meta.pages.size();
        while (lo < hi) {
            std::size_t mid = (lo + hi) / 2;
            const PageBlockMeta &p = meta.pages[mid];
            if (p.firstRow + p.rows <= row_begin)
                lo = mid + 1;
            else
                hi = mid;
        }
        std::vector<std::uint8_t> buf;
        std::vector<std::int64_t> vals;
        for (std::size_t pi = lo; pi < meta.pages.size(); ++pi) {
            const PageBlockMeta &p = meta.pages[pi];
            if (p.firstRow >= row_end)
                break;
            buf.resize(p.byteLen);
            sw.read(port, ext, p.byteOffset, buf.data(), p.byteLen);
            vals.clear();
            decodePage(buf.data(), buf.size(), vals);
            AQ_ASSERT(static_cast<std::int64_t>(vals.size())
                          == p.rows,
                      "decoded row count disagrees with page meta");
            std::int64_t b = std::max(row_begin, p.firstRow);
            std::int64_t e =
                std::min(row_end, p.firstRow + p.rows);
            for (std::int64_t r = b; r < e; ++r)
                out[r - row_begin] = vals[r - p.firstRow];
        }
    }

    std::shared_ptr<const Table> tablePtr;
    TableLayout layout;
};

/** Writes tables onto a flash device and hands back resident handles. */
class TableStore
{
  public:
    explicit TableStore(ControllerSwitch &sw_) : sw(sw_) {}

    /**
     * Persist @p table (host-port writes: loading a database is a host
     * activity) and return the flash-resident handle.
     */
    std::shared_ptr<FlashResidentTable>
    store(std::shared_ptr<const Table> table)
    {
        table->checkConsistent();
        bool compress = compressionEnabled();
        TableLayout layout;
        FlashDevice &dev = sw.dev();
        for (int i = 0; i < table->numColumns(); ++i) {
            const Column &c = table->col(i);
            if (compress) {
                storeEncoded(dev, c, layout);
                continue;
            }
            int width = columnTypeWidth(c.type());
            std::int64_t bytes = c.size() * width;
            FlashExtent ext = dev.allocate(bytes);
            std::vector<std::uint8_t> buf(bytes);
            if (width == 4) {
                for (std::int64_t r = 0; r < c.size(); ++r) {
                    auto v = static_cast<std::int32_t>(c.get(r));
                    std::memcpy(buf.data() + r * 4, &v, 4);
                }
            } else {
                for (std::int64_t r = 0; r < c.size(); ++r) {
                    std::int64_t v = c.get(r);
                    std::memcpy(buf.data() + r * 8, &v, 8);
                }
            }
            if (bytes > 0)
                sw.write(FlashPort::Host, ext, 0, buf.data(), bytes);
            layout.columnExtents.push_back(ext);
        }
        const auto &heap = table->strings().raw();
        layout.heapExtent = dev.allocate(
            static_cast<std::int64_t>(heap.size()));
        if (!heap.empty()) {
            sw.write(FlashPort::Host, layout.heapExtent, 0, heap.data(),
                     static_cast<std::int64_t>(heap.size()));
        }
        return std::make_shared<FlashResidentTable>(std::move(table),
                                                    std::move(layout));
    }

    ControllerSwitch &controller() { return sw; }

  private:
    /** Encode @p c into page blocks, one block per flash page. */
    void
    storeEncoded(FlashDevice &dev, const Column &c, TableLayout &layout)
    {
        int width = columnTypeWidth(c.type());
        std::vector<std::int64_t> vals(c.size());
        for (std::int64_t r = 0; r < c.size(); ++r)
            vals[r] = c.get(r);
        ColumnEncoding enc = encodeValues(
            vals.data(), static_cast<std::int64_t>(vals.size()), width);
        FlashExtent ext =
            dev.allocate(enc.numPages() * kFlashPageBytes);
        ColumnLayoutMeta meta;
        meta.rows = enc.rows;
        meta.encodedBytes = enc.encodedBytes;
        for (std::int64_t p = 0; p < enc.numPages(); ++p) {
            const EncodedPage &page = enc.pages[p];
            PageBlockMeta pm;
            pm.codec = page.codec;
            pm.firstRow = page.firstRow;
            pm.rows = page.rows;
            pm.byteOffset = p * kFlashPageBytes;
            pm.byteLen =
                static_cast<std::int64_t>(page.bytes.size());
            pm.zone = page.zone;
            sw.write(FlashPort::Host, ext, pm.byteOffset,
                     page.bytes.data(), pm.byteLen);
            meta.pages.push_back(pm);
        }
        layout.columnExtents.push_back(ext);
        layout.columnEncodings.resize(layout.columnExtents.size());
        layout.columnEncodings.back() = std::move(meta);
    }

    ControllerSwitch &sw;
};

} // namespace aquoman

#endif // AQUOMAN_COLUMNSTORE_FLASH_LAYOUT_HH
