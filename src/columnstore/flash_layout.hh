/**
 * @file
 * Persistence of column files onto the simulated flash device. Each
 * column becomes one contiguous extent of 8KB pages holding its values
 * in their on-flash width (4B for int32/date, 8B for int64/decimal and
 * varchar heap offsets); the table's string heap becomes one extra
 * extent. Both the host I/O path and the AQUOMAN path read columns back
 * through the flash controller switch, so all traffic is accounted.
 */

#ifndef AQUOMAN_COLUMNSTORE_FLASH_LAYOUT_HH
#define AQUOMAN_COLUMNSTORE_FLASH_LAYOUT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "columnstore/table.hh"
#include "flash/controller_switch.hh"

namespace aquoman {

/** Flash extents backing one persisted table. */
struct TableLayout
{
    std::vector<FlashExtent> columnExtents; ///< one per column
    FlashExtent heapExtent;                 ///< string heap bytes
};

/**
 * A table persisted to flash. The in-memory Table remains the string
 * authority; numeric reads decode real bytes from the device.
 */
class FlashResidentTable
{
  public:
    FlashResidentTable(std::shared_ptr<const Table> tbl, TableLayout lay)
        : tablePtr(std::move(tbl)), layout(std::move(lay))
    {
    }

    const Table &table() const { return *tablePtr; }
    const TableLayout &extents() const { return layout; }

    /** On-flash bytes of column @p col for @p rows rows. */
    std::int64_t
    columnBytes(int col, std::int64_t rows) const
    {
        return rows * columnTypeWidth(tablePtr->col(col).type());
    }

    /**
     * Read rows [row_begin, row_end) of column @p col from flash through
     * @p sw on behalf of @p port, decoding into int64 values.
     */
    void
    readColumnRange(ControllerSwitch &sw, FlashPort port, int col,
                    std::int64_t row_begin, std::int64_t row_end,
                    std::vector<std::int64_t> &out) const
    {
        const Column &c = tablePtr->col(col);
        AQ_ASSERT(row_begin >= 0 && row_end <= c.size()
                  && row_begin <= row_end);
        int width = columnTypeWidth(c.type());
        std::int64_t n = row_end - row_begin;
        out.resize(n);
        if (n == 0)
            return;
        std::vector<std::uint8_t> buf(n * width);
        sw.read(port, layout.columnExtents.at(col), row_begin * width,
                buf.data(), n * width);
        if (width == 4) {
            for (std::int64_t i = 0; i < n; ++i) {
                std::int32_t v;
                std::memcpy(&v, buf.data() + i * 4, 4);
                out[i] = v;
            }
        } else {
            for (std::int64_t i = 0; i < n; ++i) {
                std::int64_t v;
                std::memcpy(&v, buf.data() + i * 8, 8);
                out[i] = v;
            }
        }
    }

  private:
    std::shared_ptr<const Table> tablePtr;
    TableLayout layout;
};

/** Writes tables onto a flash device and hands back resident handles. */
class TableStore
{
  public:
    explicit TableStore(ControllerSwitch &sw_) : sw(sw_) {}

    /**
     * Persist @p table (host-port writes: loading a database is a host
     * activity) and return the flash-resident handle.
     */
    std::shared_ptr<FlashResidentTable>
    store(std::shared_ptr<const Table> table)
    {
        table->checkConsistent();
        TableLayout layout;
        FlashDevice &dev = sw.dev();
        for (int i = 0; i < table->numColumns(); ++i) {
            const Column &c = table->col(i);
            int width = columnTypeWidth(c.type());
            std::int64_t bytes = c.size() * width;
            FlashExtent ext = dev.allocate(std::max<std::int64_t>(bytes, 1));
            std::vector<std::uint8_t> buf(bytes);
            if (width == 4) {
                for (std::int64_t r = 0; r < c.size(); ++r) {
                    auto v = static_cast<std::int32_t>(c.get(r));
                    std::memcpy(buf.data() + r * 4, &v, 4);
                }
            } else {
                for (std::int64_t r = 0; r < c.size(); ++r) {
                    std::int64_t v = c.get(r);
                    std::memcpy(buf.data() + r * 8, &v, 8);
                }
            }
            if (bytes > 0)
                sw.write(FlashPort::Host, ext, 0, buf.data(), bytes);
            layout.columnExtents.push_back(ext);
        }
        const auto &heap = table->strings().raw();
        layout.heapExtent = dev.allocate(
            std::max<std::int64_t>(heap.size(), 1));
        if (!heap.empty()) {
            sw.write(FlashPort::Host, layout.heapExtent, 0, heap.data(),
                     static_cast<std::int64_t>(heap.size()));
        }
        return std::make_shared<FlashResidentTable>(std::move(table),
                                                    std::move(layout));
    }

    ControllerSwitch &controller() { return sw; }

  private:
    ControllerSwitch &sw;
};

} // namespace aquoman

#endif // AQUOMAN_COLUMNSTORE_FLASH_LAYOUT_HH
