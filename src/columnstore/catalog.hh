/**
 * @file
 * Database catalog: names tables, records key metadata (dense primary
 * keys, foreign-key RowID materialisation in the MonetDB style) and owns
 * the flash-resident handles. The AQUOMAN Table-Task compiler consults
 * this metadata for its join and memory optimisations (Sec. VI-D).
 */

#ifndef AQUOMAN_COLUMNSTORE_CATALOG_HH
#define AQUOMAN_COLUMNSTORE_CATALOG_HH

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "columnstore/flash_layout.hh"

namespace aquoman {

/** Per-table catalog entry. */
struct CatalogEntry
{
    std::shared_ptr<const Table> table;
    std::shared_ptr<FlashResidentTable> resident;

    /**
     * Name of the dense primary-key column (RowID-equivalent in
     * MonetDB's internal representation), empty if none.
     */
    std::string densePrimaryKey;

    /**
     * Foreign-key columns materialised as RowID references into another
     * table: fk column name -> (target table, implicit via RowID).
     */
    std::map<std::string, std::string> fkRowIdTargets;

    /** Lazily computed per-varchar-column heap footprints. */
    mutable std::map<std::string, std::int64_t> columnHeapCache;
};

/**
 * Bytes of string heap reachable from @p column of @p entry's table
 * (the sum of its distinct strings). Cached: the value prices scans of
 * one varchar column without charging the whole table heap.
 */
inline std::int64_t
columnHeapBytes(const CatalogEntry &entry, const std::string &column)
{
    auto it = entry.columnHeapCache.find(column);
    if (it != entry.columnHeapCache.end())
        return it->second;
    const Table &t = *entry.table;
    const Column &c = t.col(column);
    std::int64_t bytes = 0;
    if (c.type() == ColumnType::Varchar) {
        std::vector<std::int64_t> offsets(c.size());
        for (std::int64_t i = 0; i < c.size(); ++i)
            offsets[i] = c.get(i);
        std::sort(offsets.begin(), offsets.end());
        offsets.erase(std::unique(offsets.begin(), offsets.end()),
                      offsets.end());
        for (std::int64_t off : offsets) {
            bytes += static_cast<std::int64_t>(
                t.strings().get(off).size()) + 1;
        }
    }
    entry.columnHeapCache[column] = bytes;
    return bytes;
}

/** Name-indexed collection of catalog entries. */
class Catalog
{
  public:
    /** Register a table (already flash-resident). */
    CatalogEntry &
    put(std::shared_ptr<const Table> table,
        std::shared_ptr<FlashResidentTable> resident)
    {
        const std::string &name = table->name();
        CatalogEntry &e = entries[name];
        e.table = std::move(table);
        e.resident = std::move(resident);
        return e;
    }

    /** Lookup by name. @throws FatalError when absent. */
    const CatalogEntry &
    get(const std::string &name) const
    {
        auto it = entries.find(name);
        if (it == entries.end())
            fatal("no table '", name, "' in catalog");
        return it->second;
    }

    CatalogEntry &
    get(const std::string &name)
    {
        auto it = entries.find(name);
        if (it == entries.end())
            fatal("no table '", name, "' in catalog");
        return it->second;
    }

    bool has(const std::string &name) const
    {
        return entries.count(name) != 0;
    }

    const std::map<std::string, CatalogEntry> &all() const
    {
        return entries;
    }

  private:
    std::map<std::string, CatalogEntry> entries;
};

} // namespace aquoman

#endif // AQUOMAN_COLUMNSTORE_CATALOG_HH
