/**
 * @file
 * In-memory representation of one column (a MonetDB BAT tail). Values
 * are held uniformly as int64 for simplicity of the vectorised engine;
 * the declared ColumnType governs on-flash width and interpretation
 * (Date = day count, Decimal = hundredths, Varchar = heap offset).
 */

#ifndef AQUOMAN_COLUMNSTORE_COLUMN_HH
#define AQUOMAN_COLUMNSTORE_COLUMN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "columnstore/string_heap.hh"

namespace aquoman {

/** One named, typed column of values. */
class Column
{
  public:
    Column() = default;

    Column(std::string name_, ColumnType type_)
        : colName(std::move(name_)), colType(type_)
    {
    }

    const std::string &name() const { return colName; }
    ColumnType type() const { return colType; }

    /** Number of values. */
    std::int64_t size() const
    {
        return static_cast<std::int64_t>(vals.size());
    }

    /** Append a raw (already encoded) value. */
    void push(std::int64_t v) { vals.push_back(v); }

    /** Read value at @p row. */
    std::int64_t
    get(std::int64_t row) const
    {
        AQ_ASSERT(row >= 0 && row < size(), "column ", colName);
        return vals[row];
    }

    /** Overwrite value at @p row. */
    void
    set(std::int64_t row, std::int64_t v)
    {
        AQ_ASSERT(row >= 0 && row < size());
        vals[row] = v;
    }

    /** Whole value vector (hot path for the vectorised engine). */
    const std::vector<std::int64_t> &data() const { return vals; }
    std::vector<std::int64_t> &data() { return vals; }

    /** Bytes this column occupies in its on-flash encoding. */
    std::int64_t
    storedBytes() const
    {
        return size() * columnTypeWidth(colType);
    }

    /**
     * Mark the column as sorted ascending (dense primary keys are).
     * AQUOMAN's join planner exploits this to skip sort Table Tasks.
     */
    void setSorted(bool s) { sortedAsc = s; }
    bool sorted() const { return sortedAsc; }

  private:
    std::string colName;
    ColumnType colType = ColumnType::Int64;
    std::vector<std::int64_t> vals;
    bool sortedAsc = false;
};

} // namespace aquoman

#endif // AQUOMAN_COLUMNSTORE_COLUMN_HH
