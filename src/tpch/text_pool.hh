/**
 * @file
 * Word pools for the TPC-H data generator: the fixed value lists the
 * TPC-H specification defines (types, containers, segments, priorities,
 * nations, regions, name syllables) plus a vocabulary for pseudo-text
 * comment grammar. Query predicates (q9 '%green%', q13
 * '%special%requests%', q16 '%Customer%Complaints%', q20 'forest%')
 * depend on these pools, so they follow the spec's lists.
 */

#ifndef AQUOMAN_TPCH_TEXT_POOL_HH
#define AQUOMAN_TPCH_TEXT_POOL_HH

#include <string>
#include <vector>

#include "common/rng.hh"

namespace aquoman::tpch {

/** Colour names used to build p_name (spec: P_NAME from 92 colours). */
extern const std::vector<std::string> kColors;

/** Type syllables: p_type = syl1 + ' ' + syl2 + ' ' + syl3. */
extern const std::vector<std::string> kTypeSyl1;
extern const std::vector<std::string> kTypeSyl2;
extern const std::vector<std::string> kTypeSyl3;

/** Container syllables: p_container = syl1 + ' ' + syl2. */
extern const std::vector<std::string> kContainerSyl1;
extern const std::vector<std::string> kContainerSyl2;

/** Market segments (c_mktsegment). */
extern const std::vector<std::string> kSegments;

/** Order priorities (o_orderpriority). */
extern const std::vector<std::string> kPriorities;

/** Ship instructions (l_shipinstruct). */
extern const std::vector<std::string> kInstructions;

/** Ship modes (l_shipmode). */
extern const std::vector<std::string> kModes;

/** The 25 nations with their region assignment (nationkey order). */
struct NationSpec
{
    const char *name;
    int regionKey;
};
extern const std::vector<NationSpec> kNations;

/** The 5 regions (regionkey order). */
extern const std::vector<std::string> kRegions;

/** Vocabulary for comment grammar. */
extern const std::vector<std::string> kNouns;
extern const std::vector<std::string> kVerbs;
extern const std::vector<std::string> kAdjectives;
extern const std::vector<std::string> kAdverbs;

/** Random word from a pool. */
const std::string &pickWord(Rng &rng, const std::vector<std::string> &pool);

/**
 * Random pseudo-text of roughly @p words words built from the grammar
 * vocabulary (used for *_comment columns).
 */
std::string randomComment(Rng &rng, int words);

} // namespace aquoman::tpch

#endif // AQUOMAN_TPCH_TEXT_POOL_HH
