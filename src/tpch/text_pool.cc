#include "tpch/text_pool.hh"

namespace aquoman::tpch {

const std::vector<std::string> kColors = {
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
    "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
    "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
    "orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
    "puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
    "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
    "steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat",
    "white", "yellow",
};

const std::vector<std::string> kTypeSyl1 = {
    "STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO",
};
const std::vector<std::string> kTypeSyl2 = {
    "ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED",
};
const std::vector<std::string> kTypeSyl3 = {
    "TIN", "NICKEL", "BRASS", "STEEL", "COPPER",
};

const std::vector<std::string> kContainerSyl1 = {
    "SM", "LG", "MED", "JUMBO", "WRAP",
};
const std::vector<std::string> kContainerSyl2 = {
    "CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM",
};

const std::vector<std::string> kSegments = {
    "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD",
};

const std::vector<std::string> kPriorities = {
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW",
};

const std::vector<std::string> kInstructions = {
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
};

const std::vector<std::string> kModes = {
    "REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB",
};

const std::vector<NationSpec> kNations = {
    {"ALGERIA", 0},       {"ARGENTINA", 1},  {"BRAZIL", 1},
    {"CANADA", 1},        {"EGYPT", 4},      {"ETHIOPIA", 0},
    {"FRANCE", 3},        {"GERMANY", 3},    {"INDIA", 2},
    {"INDONESIA", 2},     {"IRAN", 4},       {"IRAQ", 4},
    {"JAPAN", 2},         {"JORDAN", 4},     {"KENYA", 0},
    {"MOROCCO", 0},       {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},         {"ROMANIA", 3},    {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},       {"RUSSIA", 3},     {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1},
};

const std::vector<std::string> kRegions = {
    "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST",
};

const std::vector<std::string> kNouns = {
    "packages", "requests", "accounts", "deposits", "foxes", "ideas",
    "theodolites", "pinto beans", "instructions", "dependencies", "excuses",
    "platelets", "asymptotes", "courts", "dolphins", "multipliers",
    "sauternes", "warthogs", "frets", "dinos", "attainments", "somas",
    "braids", "hockey players", "frays", "warhorses", "dugouts", "notornis",
    "epitaphs", "pearls", "tithes", "waters", "orbits", "gifts", "sheaves",
    "depths", "sentiments", "decoys", "realms", "pains", "grouches",
    "escapades", "hindrances",
};

const std::vector<std::string> kVerbs = {
    "sleep", "wake", "are", "cajole", "haggle", "nag", "use", "boost",
    "affix", "detect", "integrate", "maintain", "nod", "was", "lose", "sublate",
    "solve", "thrash", "promise", "engage", "hinder", "print", "x-ray",
    "breach", "eat", "grow", "impress", "mold", "poach", "serve", "run",
    "dazzle", "snooze", "doze", "unwind", "kindle", "play", "hang", "believe",
    "doubt",
};

const std::vector<std::string> kAdjectives = {
    "furious", "sly", "careful", "blithe", "quick", "fluffy", "slow",
    "quiet", "ruthless", "thin", "close", "dogged", "daring", "brave",
    "stealthy", "permanent", "enticing", "idle", "busy", "regular", "final",
    "ironic", "even", "bold", "silent", "special", "pending", "express",
    "unusual",
};

const std::vector<std::string> kAdverbs = {
    "sometimes", "always", "never", "furiously", "slyly", "carefully",
    "blithely", "quickly", "fluffily", "slowly", "quietly", "ruthlessly",
    "thinly", "closely", "doggedly", "daringly", "bravely", "stealthily",
    "permanently", "enticingly", "idly", "busily", "regularly", "finally",
    "ironically", "evenly", "boldly", "silently",
};

const std::string &
pickWord(Rng &rng, const std::vector<std::string> &pool)
{
    return pool[rng.uniform(0, static_cast<std::int64_t>(pool.size()) - 1)];
}

std::string
randomComment(Rng &rng, int words)
{
    std::string out;
    for (int i = 0; i < words; ++i) {
        const std::vector<std::string> *pool = nullptr;
        switch (rng.uniform(0, 3)) {
          case 0: pool = &kNouns; break;
          case 1: pool = &kVerbs; break;
          case 2: pool = &kAdjectives; break;
          default: pool = &kAdverbs; break;
        }
        if (!out.empty())
            out += " ";
        out += pickWord(rng, *pool);
    }
    return out;
}

} // namespace aquoman::tpch
