/**
 * @file
 * From-scratch TPC-H data generator (dbgen equivalent). Generates all
 * eight tables at a configurable scale factor with the specification's
 * value distributions, so that the 22 queries' selectivities and join
 * fan-outs behave like the real benchmark. Two documented deviations
 * (DESIGN.md §2): o_orderkey is dense rather than sparse, and the
 * "Customer Complaints" supplier-comment density is raised so the q16
 * path is exercised at small scale factors.
 *
 * Generation is morsel-parallel: tables generate concurrently, and
 * large tables are cut into fixed-width key partitions that each draw
 * from their own Rng::stream(seed, table, partition). Partition widths
 * are part of the data definition and never depend on thread count, so
 * the output is byte-identical for every AQUOMAN_THREADS setting.
 */

#ifndef AQUOMAN_TPCH_DBGEN_HH
#define AQUOMAN_TPCH_DBGEN_HH

#include <cstdint>
#include <memory>

#include "columnstore/catalog.hh"
#include "columnstore/flash_layout.hh"
#include "columnstore/table.hh"

namespace aquoman::tpch {

/** Generator configuration. */
struct TpchConfig
{
    /** TPC-H scale factor (1.0 == ~1GB of raw data; paper used 1000). */
    double scaleFactor = 0.01;

    /** RNG seed (generation is fully deterministic per seed). */
    std::uint64_t seed = 19920101;
};

/** TPC-H date constants from the specification. */
extern const std::int32_t kStartDate;   ///< 1992-01-01
extern const std::int32_t kCurrentDate; ///< 1995-06-17
extern const std::int32_t kEndDate;     ///< 1998-12-31

/** The eight generated tables. */
struct TpchDatabase
{
    std::shared_ptr<Table> region;
    std::shared_ptr<Table> nation;
    std::shared_ptr<Table> supplier;
    std::shared_ptr<Table> customer;
    std::shared_ptr<Table> part;
    std::shared_ptr<Table> partsupp;
    std::shared_ptr<Table> orders;
    std::shared_ptr<Table> lineitem;

    /** Expected table cardinalities for @p sf. */
    static std::int64_t supplierRows(double sf);
    static std::int64_t customerRows(double sf);
    static std::int64_t partRows(double sf);
    static std::int64_t ordersRows(double sf);

    /** Generate the full database. */
    static TpchDatabase generate(const TpchConfig &cfg);

    /**
     * Persist every table to flash through @p store and register it in
     * @p catalog with its key metadata (dense primary keys, FK RowID
     * targets) used by the AQUOMAN task compiler.
     */
    void installInto(Catalog &catalog, TableStore &store) const;

    /**
     * Set the key metadata (dense primary keys, FK RowID targets) on
     * tables already registered in @p catalog. Callers that persist
     * the tables themselves — e.g. the query service's sharded store —
     * register the Table objects first and then call this.
     */
    void registerMetadata(Catalog &catalog) const;

    /** Total on-flash bytes of all eight tables. */
    std::int64_t storedBytes() const;
};

} // namespace aquoman::tpch

#endif // AQUOMAN_TPCH_DBGEN_HH
