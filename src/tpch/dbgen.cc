#include "tpch/dbgen.hh"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/date.hh"
#include "common/decimal.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "tpch/text_pool.hh"

namespace aquoman::tpch {

const std::int32_t kStartDate = daysFromCivil(1992, 1, 1);
const std::int32_t kCurrentDate = daysFromCivil(1995, 6, 17);
const std::int32_t kEndDate = daysFromCivil(1998, 12, 31);

namespace {

/**
 * Stream ids for per-table RNG derivation: every table draws from its
 * own Rng::stream(seed, table, partition), so tables and partitions
 * generate independently — and therefore in parallel — while the
 * output stays bit-identical for every AQUOMAN_THREADS setting.
 */
enum TableStream : std::uint64_t
{
    kStreamRegion = 0,
    kStreamNation = 1,
    kStreamSupplier = 2,
    kStreamCustomer = 3,
    kStreamPart = 4,
    kStreamPartsupp = 5,
    kStreamOrders = 6,
};

/**
 * Fixed partition widths (rows of the driving key per partition).
 * These are part of the data definition — they size the RNG streams —
 * so they must never depend on thread count or scale factor.
 */
constexpr std::int64_t kSupplierChunk = 2048;
constexpr std::int64_t kCustomerChunk = 8192;
constexpr std::int64_t kPartChunk = 8192;
constexpr std::int64_t kOrdersChunk = 4096;

/** Latest o_orderdate: ENDDATE - 151 days (ship + receipt slack). */
std::int32_t
maxOrderDate()
{
    return kEndDate - 151;
}

std::string
paddedKeyName(const char *prefix, std::int64_t key)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s%09lld", prefix,
                  static_cast<long long>(key));
    return buf;
}

std::string
randomAddress(Rng &rng)
{
    static const char *alphabet =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,";
    int len = static_cast<int>(rng.uniform(10, 30));
    std::string s;
    s.reserve(len);
    for (int i = 0; i < len; ++i)
        s.push_back(alphabet[rng.uniform(0, 63)]);
    return s;
}

std::string
phoneFor(Rng &rng, std::int64_t nation_key)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
                  static_cast<int>(10 + nation_key),
                  static_cast<int>(rng.uniform(100, 999)),
                  static_cast<int>(rng.uniform(100, 999)),
                  static_cast<int>(rng.uniform(1000, 9999)));
    return buf;
}

/** dbgen's supplier-of-part formula: the i-th of 4 suppliers for part. */
std::int64_t
partSupplier(std::int64_t part_key, int i, std::int64_t num_suppliers)
{
    return (part_key + i * (num_suppliers / 4
                            + (part_key - 1) / num_suppliers))
        % num_suppliers + 1;
}

/** Append all rows of @p src onto @p dst (same schema; re-interns). */
void
appendRows(Table &dst, const Table &src)
{
    for (int c = 0; c < src.numColumns(); ++c) {
        const Column &sc = src.col(c);
        Column &dc = dst.col(c);
        if (sc.type() == ColumnType::Varchar) {
            for (std::int64_t i = 0; i < sc.size(); ++i)
                dst.pushString(dc, src.getString(sc, i));
        } else {
            for (std::int64_t i = 0; i < sc.size(); ++i)
                dc.push(sc.get(i));
        }
    }
}

/**
 * Generate a table over the key range [1, rows] in fixed-width
 * partitions, each from its own RNG stream. @p make must build the
 * table schema and fill rows for keys [lo, hi) from the given Rng; it
 * is called with an empty range once to create the output schema.
 * Partitions run on the shared pool; concatenation is serial and in
 * key order, so the result is independent of thread count.
 */
template <typename MakeFn>
std::shared_ptr<Table>
generatePartitioned(std::int64_t rows, std::int64_t chunk,
                    std::uint64_t seed, std::uint64_t table_stream,
                    MakeFn make)
{
    auto ranges = ThreadPool::splitRange(1, rows + 1, chunk);
    std::vector<Table> parts(ranges.size());
    parallelFor(0, static_cast<std::int64_t>(ranges.size()), 1,
                [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
            Rng rng = Rng::stream(seed, table_stream,
                                  static_cast<std::uint64_t>(p));
            parts[p] = make(ranges[p].first, ranges[p].second, rng);
        }
    });
    Rng unused(0);
    auto out = std::make_shared<Table>(make(1, 1, unused));
    for (const Table &part : parts)
        appendRows(*out, part);
    return out;
}

} // namespace

std::int64_t
TpchDatabase::supplierRows(double sf)
{
    return std::max<std::int64_t>(1, static_cast<std::int64_t>(sf * 10000));
}

std::int64_t
TpchDatabase::customerRows(double sf)
{
    return std::max<std::int64_t>(1, static_cast<std::int64_t>(sf * 150000));
}

std::int64_t
TpchDatabase::partRows(double sf)
{
    return std::max<std::int64_t>(1, static_cast<std::int64_t>(sf * 200000));
}

std::int64_t
TpchDatabase::ordersRows(double sf)
{
    return std::max<std::int64_t>(1,
                                  static_cast<std::int64_t>(sf * 1500000));
}

TpchDatabase
TpchDatabase::generate(const TpchConfig &cfg)
{
    TpchDatabase db;
    const std::int64_t num_supp = supplierRows(cfg.scaleFactor);
    const std::int64_t num_cust = customerRows(cfg.scaleFactor);
    const std::int64_t num_part = partRows(cfg.scaleFactor);
    const std::int64_t num_ord = ordersRows(cfg.scaleFactor);

    // Per-partition generators below fill key ranges [lo, hi); the
    // whole-table drivers run them across the shared thread pool.

    // ------------------------------------------------------------ region
    // (Single fixed partition; keys are the kRegions/kNations indices,
    // so the [lo, hi) range only distinguishes "schema" from "fill".)
    auto make_region = [&](std::int64_t lo, std::int64_t hi, Rng &rng) {
        Table t("region");
        auto &rk = t.addColumn("r_regionkey", ColumnType::Int64);
        auto &rn = t.addColumn("r_name", ColumnType::Varchar);
        auto &rc = t.addColumn("r_comment", ColumnType::Varchar);
        for (std::size_t i = 0; lo < hi && i < kRegions.size(); ++i) {
            rk.push(static_cast<std::int64_t>(i));
            t.pushString(rn, kRegions[i]);
            t.pushString(rc, randomComment(rng, 8));
        }
        return t;
    };

    // ------------------------------------------------------------ nation
    auto make_nation = [&](std::int64_t lo, std::int64_t hi, Rng &rng) {
        Table t("nation");
        auto &nk = t.addColumn("n_nationkey", ColumnType::Int64);
        auto &nn = t.addColumn("n_name", ColumnType::Varchar);
        auto &nr = t.addColumn("n_regionkey", ColumnType::Int64);
        auto &nc = t.addColumn("n_comment", ColumnType::Varchar);
        for (std::size_t i = 0; lo < hi && i < kNations.size(); ++i) {
            nk.push(static_cast<std::int64_t>(i));
            t.pushString(nn, kNations[i].name);
            nr.push(kNations[i].regionKey);
            t.pushString(nc, randomComment(rng, 8));
        }
        return t;
    };

    // ---------------------------------------------------------- supplier
    auto make_supplier = [&](std::int64_t lo, std::int64_t hi, Rng &rng) {
        Table t("supplier");
        auto &sk = t.addColumn("s_suppkey", ColumnType::Int64);
        auto &sn = t.addColumn("s_name", ColumnType::Varchar);
        auto &sa = t.addColumn("s_address", ColumnType::Varchar);
        auto &snk = t.addColumn("s_nationkey", ColumnType::Int64);
        auto &sp = t.addColumn("s_phone", ColumnType::Varchar);
        auto &sb = t.addColumn("s_acctbal", ColumnType::Decimal);
        auto &sc = t.addColumn("s_comment", ColumnType::Varchar);
        for (std::int64_t k = lo; k < hi; ++k) {
            sk.push(k);
            t.pushString(sn, paddedKeyName("Supplier#", k));
            t.pushString(sa, randomAddress(rng));
            std::int64_t nation = rng.uniform(0, 24);
            snk.push(nation);
            t.pushString(sp, phoneFor(rng, nation));
            sb.push(rng.uniform(-99999, 999999)); // -999.99 .. 9999.99
            std::string comment = randomComment(rng, 10);
            // Raised-density substitution for the spec's 5-per-10000
            // "Customer Complaints" suppliers (documented in DESIGN.md).
            if (k % 197 == 5)
                comment += " Customer Complaints";
            t.pushString(sc, comment);
        }
        return t;
    };

    // ---------------------------------------------------------- customer
    auto make_customer = [&](std::int64_t lo, std::int64_t hi, Rng &rng) {
        Table t("customer");
        auto &ck = t.addColumn("c_custkey", ColumnType::Int64);
        auto &cn = t.addColumn("c_name", ColumnType::Varchar);
        auto &ca = t.addColumn("c_address", ColumnType::Varchar);
        auto &cnk = t.addColumn("c_nationkey", ColumnType::Int64);
        auto &cp = t.addColumn("c_phone", ColumnType::Varchar);
        auto &cb = t.addColumn("c_acctbal", ColumnType::Decimal);
        auto &cm = t.addColumn("c_mktsegment", ColumnType::Varchar);
        auto &cc = t.addColumn("c_comment", ColumnType::Varchar);
        for (std::int64_t k = lo; k < hi; ++k) {
            ck.push(k);
            t.pushString(cn, paddedKeyName("Customer#", k));
            t.pushString(ca, randomAddress(rng));
            std::int64_t nation = rng.uniform(0, 24);
            cnk.push(nation);
            t.pushString(cp, phoneFor(rng, nation));
            cb.push(rng.uniform(-99999, 999999));
            t.pushString(cm, pickWord(rng, kSegments));
            t.pushString(cc, randomComment(rng, 12));
        }
        return t;
    };

    // -------------------------------------------------------------- part
    auto make_part = [&](std::int64_t lo, std::int64_t hi, Rng &rng) {
        Table t("part");
        auto &pk = t.addColumn("p_partkey", ColumnType::Int64);
        auto &pn = t.addColumn("p_name", ColumnType::Varchar);
        auto &pm = t.addColumn("p_mfgr", ColumnType::Varchar);
        auto &pb = t.addColumn("p_brand", ColumnType::Varchar);
        auto &pt = t.addColumn("p_type", ColumnType::Varchar);
        auto &ps = t.addColumn("p_size", ColumnType::Int64);
        auto &pc = t.addColumn("p_container", ColumnType::Varchar);
        auto &pr = t.addColumn("p_retailprice", ColumnType::Decimal);
        auto &pcm = t.addColumn("p_comment", ColumnType::Varchar);
        for (std::int64_t k = lo; k < hi; ++k) {
            pk.push(k);
            // p_name: five distinct colours.
            std::string name;
            for (int w = 0; w < 5; ++w) {
                if (w)
                    name += " ";
                name += pickWord(rng, kColors);
            }
            t.pushString(pn, name);
            int mfgr = static_cast<int>(rng.uniform(1, 5));
            int brand = mfgr * 10 + static_cast<int>(rng.uniform(1, 5));
            t.pushString(pm, "Manufacturer#" + std::to_string(mfgr));
            t.pushString(pb, "Brand#" + std::to_string(brand));
            t.pushString(pt, pickWord(rng, kTypeSyl1) + " "
                          + pickWord(rng, kTypeSyl2) + " "
                          + pickWord(rng, kTypeSyl3));
            ps.push(rng.uniform(1, 50));
            t.pushString(pc, pickWord(rng, kContainerSyl1) + " "
                          + pickWord(rng, kContainerSyl2));
            // Spec formula, already in hundredths.
            pr.push(90000 + ((k / 10) % 20001) + 100 * (k % 1000));
            t.pushString(pcm, randomComment(rng, 5));
        }
        return t;
    };

    // ---------------------------------------------------------- partsupp
    auto make_partsupp = [&](std::int64_t lo, std::int64_t hi, Rng &rng) {
        Table t("partsupp");
        auto &pk = t.addColumn("ps_partkey", ColumnType::Int64);
        auto &sk = t.addColumn("ps_suppkey", ColumnType::Int64);
        auto &aq = t.addColumn("ps_availqty", ColumnType::Int64);
        auto &sc = t.addColumn("ps_supplycost", ColumnType::Decimal);
        auto &cm = t.addColumn("ps_comment", ColumnType::Varchar);
        for (std::int64_t k = lo; k < hi; ++k) {
            for (int i = 0; i < 4; ++i) {
                pk.push(k);
                sk.push(partSupplier(k, i, num_supp));
                aq.push(rng.uniform(1, 9999));
                sc.push(rng.uniform(100, 100000)); // 1.00 .. 1000.00
                t.pushString(cm, randomComment(rng, 10));
            }
        }
        return t;
    };

    // ------------------------------------------------- orders + lineitem
    // One partition generates both its orders rows and their lineitems,
    // so lineitem partitions are contiguous o_orderkey ranges too.
    auto make_orders = [&](std::int64_t lo, std::int64_t hi, Rng &rng) {
        Table ot("orders");
        auto &ok = ot.addColumn("o_orderkey", ColumnType::Int64);
        auto &oc = ot.addColumn("o_custkey", ColumnType::Int64);
        auto &os = ot.addColumn("o_orderstatus", ColumnType::Varchar);
        auto &otp = ot.addColumn("o_totalprice", ColumnType::Decimal);
        auto &od = ot.addColumn("o_orderdate", ColumnType::Date);
        auto &op = ot.addColumn("o_orderpriority", ColumnType::Varchar);
        auto &ocl = ot.addColumn("o_clerk", ColumnType::Varchar);
        auto &osp = ot.addColumn("o_shippriority", ColumnType::Int64);
        auto &ocm = ot.addColumn("o_comment", ColumnType::Varchar);

        Table lt("lineitem");
        auto &lok = lt.addColumn("l_orderkey", ColumnType::Int64);
        auto &lpk = lt.addColumn("l_partkey", ColumnType::Int64);
        auto &lsk = lt.addColumn("l_suppkey", ColumnType::Int64);
        auto &lln = lt.addColumn("l_linenumber", ColumnType::Int64);
        auto &lq = lt.addColumn("l_quantity", ColumnType::Decimal);
        auto &lep = lt.addColumn("l_extendedprice", ColumnType::Decimal);
        auto &ld = lt.addColumn("l_discount", ColumnType::Decimal);
        auto &ltx = lt.addColumn("l_tax", ColumnType::Decimal);
        auto &lrf = lt.addColumn("l_returnflag", ColumnType::Varchar);
        auto &lls = lt.addColumn("l_linestatus", ColumnType::Varchar);
        auto &lsd = lt.addColumn("l_shipdate", ColumnType::Date);
        auto &lcd = lt.addColumn("l_commitdate", ColumnType::Date);
        auto &lrd = lt.addColumn("l_receiptdate", ColumnType::Date);
        auto &lsi = lt.addColumn("l_shipinstruct", ColumnType::Varchar);
        auto &lsm = lt.addColumn("l_shipmode", ColumnType::Varchar);
        auto &lcm = lt.addColumn("l_comment", ColumnType::Varchar);

        const std::int64_t clerks =
            std::max<std::int64_t>(1, num_ord / 1000);
        for (std::int64_t k = lo; k < hi; ++k) {
            // Spec: orders reference only custkeys not divisible by 3,
            // so one third of customers have no orders (drives q13/q22).
            std::int64_t cust = rng.uniform(1, num_cust);
            while (cust % 3 == 0)
                cust = rng.uniform(1, num_cust);
            std::int32_t odate = static_cast<std::int32_t>(
                rng.uniform(kStartDate, maxOrderDate()));
            int nlines = static_cast<int>(rng.uniform(1, 7));
            std::int64_t total = 0;
            int f_count = 0, o_count = 0;
            for (int ln = 1; ln <= nlines; ++ln) {
                std::int64_t part = rng.uniform(1, num_part);
                std::int64_t supp =
                    partSupplier(part, static_cast<int>(rng.uniform(0, 3)),
                                 num_supp);
                std::int64_t qty = rng.uniform(1, 50);
                std::int64_t retail =
                    90000 + ((part / 10) % 20001) + 100 * (part % 1000);
                std::int64_t eprice = qty * retail;
                std::int64_t disc = rng.uniform(0, 10);  // 0.00 .. 0.10
                std::int64_t tax = rng.uniform(0, 8);    // 0.00 .. 0.08
                std::int32_t sdate = odate
                    + static_cast<std::int32_t>(rng.uniform(1, 121));
                std::int32_t cdate = odate
                    + static_cast<std::int32_t>(rng.uniform(30, 90));
                std::int32_t rdate = sdate
                    + static_cast<std::int32_t>(rng.uniform(1, 30));
                lok.push(k);
                lpk.push(part);
                lsk.push(supp);
                lln.push(ln);
                lq.push(qty * kDecimalScale);
                lep.push(eprice);
                ld.push(disc);
                ltx.push(tax);
                if (rdate <= kCurrentDate) {
                    lt.pushString(lrf, rng.uniform(0, 1) ? "R" : "A");
                } else {
                    lt.pushString(lrf, "N");
                }
                bool f_status = sdate <= kCurrentDate;
                lt.pushString(lls, f_status ? "F" : "O");
                f_count += f_status;
                o_count += !f_status;
                lsd.push(sdate);
                lcd.push(cdate);
                lrd.push(rdate);
                lt.pushString(lsi, pickWord(rng, kInstructions));
                lt.pushString(lsm, pickWord(rng, kModes));
                lt.pushString(lcm, randomComment(rng, 4));
                total += decimalMul(decimalMul(eprice, 100 + tax),
                                    100 - disc);
            }
            ok.push(k);
            oc.push(cust);
            ot.pushString(os, o_count == 0 ? "O"
                              : (f_count == nlines ? "F" : "P"));
            otp.push(total);
            od.push(odate);
            ot.pushString(op, pickWord(rng, kPriorities));
            ot.pushString(ocl, paddedKeyName("Clerk#",
                                             rng.uniform(1, clerks)));
            osp.push(0);
            std::string comment = randomComment(rng, 8);
            if (rng.uniform(0, 99) == 0) {
                comment += " special " + pickWord(rng, kAdverbs)
                    + " requests";
            }
            ot.pushString(ocm, comment);
        }
        return std::pair<Table, Table>(std::move(ot), std::move(lt));
    };

    // The eight tables are independent generation jobs; large tables
    // further split into fixed partitions inside generatePartitioned.
    TaskGroup tables;
    tables.run([&] {
        db.region = generatePartitioned(1, 1, cfg.seed, kStreamRegion,
                                        make_region);
        db.region->col("r_regionkey").setSorted(true);
    });
    tables.run([&] {
        db.nation = generatePartitioned(1, 1, cfg.seed, kStreamNation,
                                        make_nation);
        db.nation->col("n_nationkey").setSorted(true);
    });
    tables.run([&] {
        db.supplier = generatePartitioned(num_supp, kSupplierChunk,
                                          cfg.seed, kStreamSupplier,
                                          make_supplier);
        db.supplier->col("s_suppkey").setSorted(true);
    });
    tables.run([&] {
        db.customer = generatePartitioned(num_cust, kCustomerChunk,
                                          cfg.seed, kStreamCustomer,
                                          make_customer);
        db.customer->col("c_custkey").setSorted(true);
    });
    tables.run([&] {
        db.part = generatePartitioned(num_part, kPartChunk, cfg.seed,
                                      kStreamPart, make_part);
        db.part->col("p_partkey").setSorted(true);
    });
    tables.run([&] {
        db.partsupp = generatePartitioned(num_part, kPartChunk, cfg.seed,
                                          kStreamPartsupp, make_partsupp);
        db.partsupp->col("ps_partkey").setSorted(true);
    });
    tables.run([&] {
        auto ranges = ThreadPool::splitRange(1, num_ord + 1, kOrdersChunk);
        std::vector<std::pair<Table, Table>> parts(ranges.size());
        parallelFor(0, static_cast<std::int64_t>(ranges.size()), 1,
                    [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p) {
                Rng rng = Rng::stream(cfg.seed, kStreamOrders,
                                      static_cast<std::uint64_t>(p));
                parts[p] = make_orders(ranges[p].first,
                                       ranges[p].second, rng);
            }
        });
        Rng unused(0);
        auto schema = make_orders(1, 1, unused);
        auto ot = std::make_shared<Table>(std::move(schema.first));
        auto lt = std::make_shared<Table>(std::move(schema.second));
        for (const auto &[opart, lpart] : parts) {
            appendRows(*ot, opart);
            appendRows(*lt, lpart);
        }
        ot->col("o_orderkey").setSorted(true);
        db.orders = ot;
        db.lineitem = lt;
    });
    tables.wait();

    db.region->checkConsistent();
    db.nation->checkConsistent();
    db.supplier->checkConsistent();
    db.customer->checkConsistent();
    db.part->checkConsistent();
    db.partsupp->checkConsistent();
    db.orders->checkConsistent();
    db.lineitem->checkConsistent();
    return db;
}

void
TpchDatabase::installInto(Catalog &catalog, TableStore &store) const
{
    for (const auto &t : {region, nation, supplier, customer, part,
                          partsupp, orders, lineitem})
        catalog.put(t, store.store(t));
    registerMetadata(catalog);
}

void
TpchDatabase::registerMetadata(Catalog &catalog) const
{
    catalog.get("region").densePrimaryKey = "r_regionkey";
    catalog.get("nation").densePrimaryKey = "n_nationkey";
    catalog.get("supplier").densePrimaryKey = "s_suppkey";
    catalog.get("customer").densePrimaryKey = "c_custkey";
    catalog.get("part").densePrimaryKey = "p_partkey";
    catalog.get("orders").densePrimaryKey = "o_orderkey";

    catalog.get("nation").fkRowIdTargets["n_regionkey"] = "region";
    catalog.get("supplier").fkRowIdTargets["s_nationkey"] = "nation";
    catalog.get("customer").fkRowIdTargets["c_nationkey"] = "nation";
    catalog.get("partsupp").fkRowIdTargets["ps_partkey"] = "part";
    catalog.get("partsupp").fkRowIdTargets["ps_suppkey"] = "supplier";
    catalog.get("orders").fkRowIdTargets["o_custkey"] = "customer";
    catalog.get("lineitem").fkRowIdTargets["l_orderkey"] = "orders";
    catalog.get("lineitem").fkRowIdTargets["l_partkey"] = "part";
    catalog.get("lineitem").fkRowIdTargets["l_suppkey"] = "supplier";
}

std::int64_t
TpchDatabase::storedBytes() const
{
    return region->storedBytes() + nation->storedBytes()
        + supplier->storedBytes() + customer->storedBytes()
        + part->storedBytes() + partsupp->storedBytes()
        + orders->storedBytes() + lineitem->storedBytes();
}

} // namespace aquoman::tpch
