#include "tpch/queries.hh"

#include "common/date.hh"
#include "tpch/dbgen.hh"

namespace aquoman::tpch {

namespace {

/** sum(l_extendedprice * (1 - l_discount)) input expression. */
ExprPtr
revenueExpr()
{
    return mul(col("l_extendedprice"), sub(litDec("1.00"),
                                           col("l_discount")));
}

Query
q01(double, const TpchQueryParams &p)
{
    auto plan = orderBy(
        groupBy(
            project(
                filter(scan("lineitem", "",
                            {"l_returnflag", "l_linestatus", "l_quantity",
                             "l_extendedprice", "l_discount", "l_tax",
                             "l_shipdate"}),
                       le(col("l_shipdate"), litDateDays(p.q1CutoffDate))),
                {{"l_returnflag", col("l_returnflag")},
                 {"l_linestatus", col("l_linestatus")},
                 {"l_quantity", col("l_quantity")},
                 {"l_extendedprice", col("l_extendedprice")},
                 {"disc_price", revenueExpr()},
                 {"charge", mul(revenueExpr(),
                                add(litDec("1.00"), col("l_tax")))},
                 {"l_discount", col("l_discount")}}),
            {"l_returnflag", "l_linestatus"},
            {{"sum_qty", AggKind::Sum, col("l_quantity")},
             {"sum_base_price", AggKind::Sum, col("l_extendedprice")},
             {"sum_disc_price", AggKind::Sum, col("disc_price")},
             {"sum_charge", AggKind::Sum, col("charge")},
             {"avg_qty", AggKind::Avg, col("l_quantity")},
             {"avg_price", AggKind::Avg, col("l_extendedprice")},
             {"avg_disc", AggKind::Avg, col("l_discount")},
             {"count_order", AggKind::Count, nullptr}}),
        {{"l_returnflag", false}, {"l_linestatus", false}});
    return Query{"q01", {{"out", plan}}};
}

Query
q02(double, const TpchQueryParams &p)
{
    // Eligible (part, supplier) pairs in the region for parts of the
    // chosen size whose type ends in the chosen syllable.
    auto eligible =
        join(JoinType::Inner,
             join(JoinType::Inner,
                  join(JoinType::Inner,
                       join(JoinType::Inner,
                            filter(scan("part", "",
                                        {"p_partkey", "p_mfgr", "p_size",
                                         "p_type"}),
                                   andE(eq(col("p_size"),
                                           lit(p.q2Size)),
                                        like(col("p_type"),
                                             "%" + p.q2TypeSuffix))),
                            scan("partsupp", "",
                                 {"ps_partkey", "ps_suppkey",
                                  "ps_supplycost"}),
                            {"p_partkey"}, {"ps_partkey"}),
                       scan("supplier", "",
                            {"s_suppkey", "s_acctbal", "s_name",
                             "s_address", "s_phone", "s_comment",
                             "s_nationkey"}),
                       {"ps_suppkey"}, {"s_suppkey"}),
                  scan("nation", "", {"n_nationkey", "n_name",
                                      "n_regionkey"}),
                  {"s_nationkey"}, {"n_nationkey"}),
             filter(scan("region", "", {"r_regionkey", "r_name"}),
                    eq(col("r_name"), litStr(p.q2Region))),
             {"n_regionkey"}, {"r_regionkey"});

    auto mincost =
        project(groupBy(scanStage("eligible"), {"p_partkey"},
                        {{"min_cost", AggKind::Min,
                          col("ps_supplycost")}}),
                {{"mc_partkey", col("p_partkey")},
                 {"min_cost", col("min_cost")}});

    auto out = orderBy(
        project(
            join(JoinType::Inner, scanStage("eligible"),
                 scanStage("mincost"),
                 {"p_partkey", "ps_supplycost"}, {"mc_partkey", "min_cost"}),
            {{"s_acctbal", col("s_acctbal")},
             {"s_name", col("s_name")},
             {"n_name", col("n_name")},
             {"out_partkey", col("p_partkey")},
             {"p_mfgr", col("p_mfgr")},
             {"s_address", col("s_address")},
             {"s_phone", col("s_phone")},
             {"s_comment", col("s_comment")}}),
        {{"s_acctbal", true}, {"n_name", false}, {"s_name", false},
         {"out_partkey", false}},
        100);
    return Query{"q02",
                 {{"eligible", eligible}, {"mincost", mincost},
                  {"out", out}}};
}

Query
q03(double, const TpchQueryParams &p)
{
    auto plan = orderBy(
        groupBy(
            project(
                join(JoinType::Inner,
                     filter(scan("lineitem", "",
                                 {"l_orderkey", "l_extendedprice",
                                  "l_discount", "l_shipdate"}),
                            gt(col("l_shipdate"),
                               litDateDays(p.q3Date))),
                     join(JoinType::Inner,
                          filter(scan("orders", "",
                                      {"o_orderkey", "o_custkey",
                                       "o_orderdate", "o_shippriority"}),
                                 lt(col("o_orderdate"),
                                    litDateDays(p.q3Date))),
                          filter(scan("customer", "",
                                      {"c_custkey", "c_mktsegment"}),
                                 eq(col("c_mktsegment"),
                                    litStr(p.q3Segment))),
                          {"o_custkey"}, {"c_custkey"}),
                     {"l_orderkey"}, {"o_orderkey"}),
                {{"l_orderkey", col("l_orderkey")},
                 {"o_orderdate", col("o_orderdate")},
                 {"o_shippriority", col("o_shippriority")},
                 {"rev_in", revenueExpr()}}),
            {"l_orderkey", "o_orderdate", "o_shippriority"},
            {{"revenue", AggKind::Sum, col("rev_in")}}),
        {{"revenue", true}, {"o_orderdate", false}},
        10);
    return Query{"q03", {{"out", plan}}};
}

Query
q04(double, const TpchQueryParams &p)
{
    auto plan = orderBy(
        groupBy(
            join(JoinType::LeftSemi,
                 filter(scan("orders", "",
                             {"o_orderkey", "o_orderdate",
                              "o_orderpriority"}),
                        andE(ge(col("o_orderdate"),
                                litDateDays(p.q4StartDate)),
                             lt(col("o_orderdate"),
                                litDateDays(
                                    addMonths(p.q4StartDate, 3))))),
                 filter(scan("lineitem", "",
                             {"l_orderkey", "l_commitdate",
                              "l_receiptdate"}),
                        lt(col("l_commitdate"), col("l_receiptdate"))),
                 {"o_orderkey"}, {"l_orderkey"}),
            {"o_orderpriority"},
            {{"order_count", AggKind::Count, nullptr}}),
        {{"o_orderpriority", false}});
    return Query{"q04", {{"out", plan}}};
}

Query
q05(double, const TpchQueryParams &p)
{
    auto asia_nations =
        join(JoinType::Inner,
             scan("nation", "", {"n_nationkey", "n_name", "n_regionkey"}),
             filter(scan("region", "", {"r_regionkey", "r_name"}),
                    eq(col("r_name"), litStr(p.q5Region))),
             {"n_regionkey"}, {"r_regionkey"});
    auto cust = join(JoinType::Inner,
                     scan("customer", "", {"c_custkey", "c_nationkey"}),
                     asia_nations, {"c_nationkey"}, {"n_nationkey"});
    auto ord =
        join(JoinType::Inner,
             filter(scan("orders", "", {"o_orderkey", "o_custkey",
                                        "o_orderdate"}),
                    andE(ge(col("o_orderdate"),
                            litDateDays(p.q5StartDate)),
                         lt(col("o_orderdate"),
                            litDateDays(
                                addMonths(p.q5StartDate, 12))))),
             cust, {"o_custkey"}, {"c_custkey"});
    auto li = join(JoinType::Inner,
                   scan("lineitem", "",
                        {"l_orderkey", "l_suppkey", "l_extendedprice",
                         "l_discount"}),
                   ord, {"l_orderkey"}, {"o_orderkey"});
    auto with_supp =
        join(JoinType::Inner, li,
             scan("supplier", "", {"s_suppkey", "s_nationkey"}),
             {"l_suppkey", "c_nationkey"}, {"s_suppkey", "s_nationkey"});
    auto plan = orderBy(
        groupBy(project(with_supp,
                        {{"n_name", col("n_name")},
                         {"rev_in", revenueExpr()}}),
                {"n_name"}, {{"revenue", AggKind::Sum, col("rev_in")}}),
        {{"revenue", true}});
    return Query{"q05", {{"out", plan}}};
}

Query
q06(double, const TpchQueryParams &p)
{
    auto plan = groupBy(
        project(
            filter(scan("lineitem", "",
                        {"l_shipdate", "l_discount", "l_quantity",
                         "l_extendedprice"}),
                   andE(andE(ge(col("l_shipdate"),
                                litDateDays(p.q6StartDate)),
                             lt(col("l_shipdate"),
                                litDateDays(
                                    addMonths(p.q6StartDate, 12)))),
                        andE(between(col("l_discount"),
                                     litDecScaled(p.q6DiscountCents - 1),
                                     litDecScaled(p.q6DiscountCents + 1)),
                             lt(col("l_quantity"),
                                lit(p.q6Quantity))))),
            {{"rev_in", mul(col("l_extendedprice"), col("l_discount"))}}),
        {}, {{"revenue", AggKind::Sum, col("rev_in")}});
    return Query{"q06", {{"out", plan}}};
}

Query
q07(double, const TpchQueryParams &p)
{
    auto li =
        filter(scan("lineitem", "",
                    {"l_orderkey", "l_suppkey", "l_shipdate",
                     "l_extendedprice", "l_discount"}),
               between(col("l_shipdate"), litDate("1995-01-01"),
                       litDate("1996-12-31")));
    auto supp_n1 =
        join(JoinType::Inner,
             scan("supplier", "", {"s_suppkey", "s_nationkey"}),
             scan("nation", "n1", {"n_nationkey", "n_name"}),
             {"s_nationkey"}, {"n1.n_nationkey"});
    auto cust_n2 =
        join(JoinType::Inner,
             scan("customer", "", {"c_custkey", "c_nationkey"}),
             scan("nation", "n2", {"n_nationkey", "n_name"}),
             {"c_nationkey"}, {"n2.n_nationkey"});
    auto ord = join(JoinType::Inner,
                    scan("orders", "", {"o_orderkey", "o_custkey"}),
                    cust_n2, {"o_custkey"}, {"c_custkey"});
    auto joined =
        join(JoinType::Inner,
             join(JoinType::Inner, li, ord, {"l_orderkey"}, {"o_orderkey"}),
             supp_n1, {"l_suppkey"}, {"s_suppkey"});
    auto nation_pair = orE(
        andE(eq(col("n1.n_name"), litStr(p.q7Nation1)),
             eq(col("n2.n_name"), litStr(p.q7Nation2))),
        andE(eq(col("n1.n_name"), litStr(p.q7Nation2)),
             eq(col("n2.n_name"), litStr(p.q7Nation1))));
    auto plan = orderBy(
        groupBy(project(filter(joined, nation_pair),
                        {{"supp_nation", col("n1.n_name")},
                         {"cust_nation", col("n2.n_name")},
                         {"l_year", year(col("l_shipdate"))},
                         {"volume", revenueExpr()}}),
                {"supp_nation", "cust_nation", "l_year"},
                {{"revenue", AggKind::Sum, col("volume")}}),
        {{"supp_nation", false}, {"cust_nation", false},
         {"l_year", false}});
    return Query{"q07", {{"out", plan}}};
}

Query
q08(double, const TpchQueryParams &p)
{
    auto america_nations =
        join(JoinType::Inner,
             scan("nation", "n1", {"n_nationkey", "n_regionkey"}),
             filter(scan("region", "", {"r_regionkey", "r_name"}),
                    eq(col("r_name"), litStr(p.q8Region))),
             {"n1.n_regionkey"}, {"r_regionkey"});
    auto cust = join(JoinType::Inner,
                     scan("customer", "", {"c_custkey", "c_nationkey"}),
                     america_nations, {"c_nationkey"}, {"n1.n_nationkey"});
    auto ord =
        join(JoinType::Inner,
             filter(scan("orders", "",
                         {"o_orderkey", "o_custkey", "o_orderdate"}),
                    between(col("o_orderdate"), litDate("1995-01-01"),
                            litDate("1996-12-31"))),
             cust, {"o_custkey"}, {"c_custkey"});
    auto li =
        join(JoinType::Inner,
             join(JoinType::Inner,
                  scan("lineitem", "",
                       {"l_orderkey", "l_partkey", "l_suppkey",
                        "l_extendedprice", "l_discount"}),
                  filter(scan("part", "", {"p_partkey", "p_type"}),
                         eq(col("p_type"), litStr(p.q8Type))),
                  {"l_partkey"}, {"p_partkey"}),
             ord, {"l_orderkey"}, {"o_orderkey"});
    auto with_supp_nation =
        join(JoinType::Inner,
             join(JoinType::Inner, li,
                  scan("supplier", "", {"s_suppkey", "s_nationkey"}),
                  {"l_suppkey"}, {"s_suppkey"}),
             scan("nation", "n2", {"n_nationkey", "n_name"}),
             {"s_nationkey"}, {"n2.n_nationkey"});
    auto grouped = groupBy(
        project(with_supp_nation,
                {{"o_year", year(col("o_orderdate"))},
                 {"volume", revenueExpr()},
                 {"brazil_volume",
                  caseWhen({eq(col("n2.n_name"), litStr(p.q8Nation)),
                            revenueExpr()},
                           litDec("0.00"))}}),
        {"o_year"},
        {{"sum_brazil", AggKind::Sum, col("brazil_volume")},
         {"sum_all", AggKind::Sum, col("volume")}});
    auto plan = orderBy(
        project(grouped, {{"o_year", col("o_year")},
                          {"mkt_share", div(col("sum_brazil"),
                                            col("sum_all"))}}),
        {{"o_year", false}});
    return Query{"q08", {{"out", plan}}};
}

Query
q09(double, const TpchQueryParams &p)
{
    auto li =
        join(JoinType::Inner,
             join(JoinType::Inner,
                  scan("lineitem", "",
                       {"l_orderkey", "l_partkey", "l_suppkey",
                        "l_quantity", "l_extendedprice", "l_discount"}),
                  filter(scan("part", "", {"p_partkey", "p_name"}),
                         like(col("p_name"), "%" + p.q9Color + "%")),
                  {"l_partkey"}, {"p_partkey"}),
             scan("partsupp", "",
                  {"ps_partkey", "ps_suppkey", "ps_supplycost"}),
             {"l_partkey", "l_suppkey"}, {"ps_partkey", "ps_suppkey"});
    auto with_ord = join(JoinType::Inner, li,
                         scan("orders", "", {"o_orderkey", "o_orderdate"}),
                         {"l_orderkey"}, {"o_orderkey"});
    auto with_nation =
        join(JoinType::Inner,
             join(JoinType::Inner, with_ord,
                  scan("supplier", "", {"s_suppkey", "s_nationkey"}),
                  {"l_suppkey"}, {"s_suppkey"}),
             scan("nation", "", {"n_nationkey", "n_name"}),
             {"s_nationkey"}, {"n_nationkey"});
    auto plan = orderBy(
        groupBy(project(with_nation,
                        {{"nation", col("n_name")},
                         {"o_year", year(col("o_orderdate"))},
                         {"amount",
                          sub(revenueExpr(),
                              mul(col("ps_supplycost"),
                                  col("l_quantity")))}}),
                {"nation", "o_year"},
                {{"sum_profit", AggKind::Sum, col("amount")}}),
        {{"nation", false}, {"o_year", true}});
    return Query{"q09", {{"out", plan}}};
}

Query
q10(double, const TpchQueryParams &p)
{
    auto li =
        join(JoinType::Inner,
             filter(scan("lineitem", "",
                         {"l_orderkey", "l_returnflag", "l_extendedprice",
                          "l_discount"}),
                    eq(col("l_returnflag"), litStr("R"))),
             filter(scan("orders", "",
                         {"o_orderkey", "o_custkey", "o_orderdate"}),
                    andE(ge(col("o_orderdate"),
                            litDateDays(p.q10StartDate)),
                         lt(col("o_orderdate"),
                            litDateDays(
                                addMonths(p.q10StartDate, 3))))),
             {"l_orderkey"}, {"o_orderkey"});
    auto with_cust =
        join(JoinType::Inner, li,
             join(JoinType::Inner,
                  scan("customer", "",
                       {"c_custkey", "c_name", "c_acctbal", "c_phone",
                        "c_nationkey", "c_address", "c_comment"}),
                  scan("nation", "", {"n_nationkey", "n_name"}),
                  {"c_nationkey"}, {"n_nationkey"}),
             {"o_custkey"}, {"c_custkey"});
    auto plan = orderBy(
        groupBy(project(with_cust,
                        {{"c_custkey", col("c_custkey")},
                         {"c_name", col("c_name")},
                         {"c_acctbal", col("c_acctbal")},
                         {"c_phone", col("c_phone")},
                         {"n_name", col("n_name")},
                         {"c_address", col("c_address")},
                         {"c_comment", col("c_comment")},
                         {"rev_in", revenueExpr()}}),
                {"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name",
                 "c_address", "c_comment"},
                {{"revenue", AggKind::Sum, col("rev_in")}}),
        {{"revenue", true}},
        20);
    return Query{"q10", {{"out", plan}}};
}

Query
q11(double sf, const TpchQueryParams &p)
{
    auto german_ps =
        join(JoinType::Inner,
             scan("partsupp", "",
                  {"ps_partkey", "ps_suppkey", "ps_availqty",
                   "ps_supplycost"}),
             join(JoinType::Inner,
                  scan("supplier", "", {"s_suppkey", "s_nationkey"}),
                  filter(scan("nation", "", {"n_nationkey", "n_name"}),
                         eq(col("n_name"), litStr(p.q11Nation))),
                  {"s_nationkey"}, {"n_nationkey"}),
             {"ps_suppkey"}, {"s_suppkey"});
    auto value_in =
        project(german_ps,
                {{"ps_partkey", col("ps_partkey")},
                 {"value_in", mul(col("ps_supplycost"),
                                  col("ps_availqty"))}});
    auto per_part = groupBy(scanStage("german_value"), {"ps_partkey"},
                            {{"value", AggKind::Sum, col("value_in")}});
    auto total = groupBy(scanStage("german_value"), {},
                         {{"total_value", AggKind::Sum, col("value_in")}});
    // value > total * (0.0001 / SF), in integer form:
    // value * round(10000 * SF) > total.
    std::int64_t inv_fraction =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(10000.0 * sf));
    auto out = orderBy(
        project(join(JoinType::Inner, scanStage("per_part"),
                     scanStage("total"), {}, {},
                     gt(mul(col("value"), lit(inv_fraction)),
                        col("total_value"))),
                {{"ps_partkey", col("ps_partkey")},
                 {"value", col("value")}}),
        {{"value", true}});
    return Query{"q11",
                 {{"german_value", value_in}, {"per_part", per_part},
                  {"total", total}, {"out", out}}};
}

Query
q12(double, const TpchQueryParams &p)
{
    auto li = filter(
        scan("lineitem", "",
             {"l_orderkey", "l_shipmode", "l_commitdate", "l_receiptdate",
              "l_shipdate"}),
        andE(andE(inStrList(col("l_shipmode"),
                            {p.q12Mode1, p.q12Mode2}),
                  andE(lt(col("l_commitdate"), col("l_receiptdate")),
                       lt(col("l_shipdate"), col("l_commitdate")))),
             andE(ge(col("l_receiptdate"),
                     litDateDays(p.q12StartDate)),
                  lt(col("l_receiptdate"),
                     litDateDays(addMonths(p.q12StartDate, 12))))));
    auto joined = join(JoinType::Inner, li,
                       scan("orders", "", {"o_orderkey",
                                           "o_orderpriority"}),
                       {"l_orderkey"}, {"o_orderkey"});
    auto high = caseWhen({inStrList(col("o_orderpriority"),
                                    {"1-URGENT", "2-HIGH"}),
                          lit(1)},
                         lit(0));
    auto low = caseWhen({inStrList(col("o_orderpriority"),
                                   {"1-URGENT", "2-HIGH"}),
                         lit(0)},
                        lit(1));
    auto plan = orderBy(
        groupBy(project(joined, {{"l_shipmode", col("l_shipmode")},
                                 {"high_in", high},
                                 {"low_in", low}}),
                {"l_shipmode"},
                {{"high_line_count", AggKind::Sum, col("high_in")},
                 {"low_line_count", AggKind::Sum, col("low_in")}}),
        {{"l_shipmode", false}});
    return Query{"q12", {{"out", plan}}};
}

Query
q13(double)
{
    auto c_orders = groupBy(
        join(JoinType::LeftOuter,
             scan("customer", "", {"c_custkey"}),
             filter(scan("orders", "", {"o_orderkey", "o_custkey",
                                        "o_comment"}),
                    notE(like(col("o_comment"), "%special%requests%"))),
             {"c_custkey"}, {"o_custkey"}),
        {"c_custkey"},
        {{"c_count", AggKind::Count, col("o_orderkey")}});
    auto plan = orderBy(
        groupBy(scanStage("c_orders"), {"c_count"},
                {{"custdist", AggKind::Count, nullptr}}),
        {{"custdist", true}, {"c_count", true}});
    return Query{"q13", {{"c_orders", c_orders}, {"out", plan}}};
}

Query
q14(double, const TpchQueryParams &p)
{
    auto joined =
        join(JoinType::Inner,
             filter(scan("lineitem", "",
                         {"l_partkey", "l_shipdate", "l_extendedprice",
                          "l_discount"}),
                    andE(ge(col("l_shipdate"),
                            litDateDays(p.q14StartDate)),
                         lt(col("l_shipdate"),
                            litDateDays(
                                addMonths(p.q14StartDate, 1))))),
             scan("part", "", {"p_partkey", "p_type"}),
             {"l_partkey"}, {"p_partkey"});
    auto grouped = groupBy(
        project(joined,
                {{"promo_in", caseWhen({like(col("p_type"), "PROMO%"),
                                        revenueExpr()},
                                       litDec("0.00"))},
                 {"all_in", revenueExpr()}}),
        {},
        {{"sum_promo", AggKind::Sum, col("promo_in")},
         {"sum_all", AggKind::Sum, col("all_in")}});
    auto plan = project(grouped,
                        {{"promo_revenue",
                          div(mul(litDec("100.00"), col("sum_promo")),
                              col("sum_all"))}});
    return Query{"q14", {{"out", plan}}};
}

Query
q15(double, const TpchQueryParams &p)
{
    auto revenue = groupBy(
        project(filter(scan("lineitem", "",
                            {"l_suppkey", "l_shipdate", "l_extendedprice",
                             "l_discount"}),
                       andE(ge(col("l_shipdate"),
                               litDateDays(p.q15StartDate)),
                            lt(col("l_shipdate"),
                               litDateDays(
                                   addMonths(p.q15StartDate, 3))))),
                {{"supplier_no", col("l_suppkey")},
                 {"rev_in", revenueExpr()}}),
        {"supplier_no"},
        {{"total_revenue", AggKind::Sum, col("rev_in")}});
    auto maxrev = groupBy(scanStage("revenue"), {},
                          {{"max_revenue", AggKind::Max,
                            col("total_revenue")}});
    auto out = orderBy(
        project(
            join(JoinType::Inner,
                 join(JoinType::Inner, scanStage("revenue"),
                      scanStage("maxrev"),
                      {"total_revenue"}, {"max_revenue"}),
                 scan("supplier", "",
                      {"s_suppkey", "s_name", "s_address", "s_phone"}),
                 {"supplier_no"}, {"s_suppkey"}),
            {{"s_suppkey", col("s_suppkey")},
             {"s_name", col("s_name")},
             {"s_address", col("s_address")},
             {"s_phone", col("s_phone")},
             {"total_revenue", col("total_revenue")}}),
        {{"s_suppkey", false}});
    return Query{"q15",
                 {{"revenue", revenue}, {"maxrev", maxrev}, {"out", out}}};
}

Query
q16(double, const TpchQueryParams &p)
{
    auto eligible_parts =
        filter(scan("part", "", {"p_partkey", "p_brand", "p_type",
                                 "p_size"}),
               andE(andE(ne(col("p_brand"), litStr(p.q16Brand)),
                         notE(like(col("p_type"),
                                   p.q16TypePrefix + "%"))),
                    inList(col("p_size"), p.q16Sizes)));
    auto complainers =
        filter(scan("supplier", "", {"s_suppkey", "s_comment"}),
               like(col("s_comment"), "%Customer%Complaints%"));
    auto ps = join(JoinType::LeftAnti,
                   join(JoinType::Inner,
                        scan("partsupp", "", {"ps_partkey", "ps_suppkey"}),
                        eligible_parts, {"ps_partkey"}, {"p_partkey"}),
                   complainers, {"ps_suppkey"}, {"s_suppkey"});
    auto plan = orderBy(
        groupBy(ps, {"p_brand", "p_type", "p_size"},
                {{"supplier_cnt", AggKind::CountDistinct,
                  col("ps_suppkey")}}),
        {{"supplier_cnt", true}, {"p_brand", false}, {"p_type", false},
         {"p_size", false}});
    return Query{"q16", {{"out", plan}}};
}

Query
q17(double, const TpchQueryParams &p)
{
    auto avg_qty = groupBy(
        scan("lineitem", "", {"l_partkey", "l_quantity"}),
        {"l_partkey"},
        {{"avg_qty", AggKind::Avg, col("l_quantity")}});
    auto threshold =
        project(scanStage("avg_qty"),
                {{"t_partkey", col("l_partkey")},
                 {"limit_qty", mul(litDec("0.20"), col("avg_qty"))}});
    auto joined =
        join(JoinType::Inner,
             join(JoinType::Inner,
                  scan("lineitem", "",
                       {"l_partkey", "l_quantity", "l_extendedprice"}),
                  filter(scan("part", "",
                              {"p_partkey", "p_brand", "p_container"}),
                         andE(eq(col("p_brand"), litStr(p.q17Brand)),
                              eq(col("p_container"),
                                 litStr(p.q17Container)))),
                  {"l_partkey"}, {"p_partkey"}),
             scanStage("threshold"), {"l_partkey"}, {"t_partkey"});
    auto grouped =
        groupBy(filter(joined, lt(col("l_quantity"), col("limit_qty"))),
                {},
                {{"sum_price", AggKind::Sum, col("l_extendedprice")}});
    auto plan = project(grouped,
                        {{"avg_yearly", div(col("sum_price"),
                                            litDec("7.00"))}});
    return Query{"q17",
                 {{"avg_qty", avg_qty}, {"threshold", threshold},
                  {"out", plan}}};
}

Query
q18(double, const TpchQueryParams &p)
{
    auto big_orders =
        project(filter(groupBy(scan("lineitem", "",
                                    {"l_orderkey", "l_quantity"}),
                               {"l_orderkey"},
                               {{"sum_qty", AggKind::Sum,
                                 col("l_quantity")}}),
                       gt(col("sum_qty"), lit(p.q18Quantity))),
                {{"bo_orderkey", col("l_orderkey")}});
    auto joined =
        join(JoinType::Inner,
             join(JoinType::Inner,
                  join(JoinType::Inner,
                       scan("lineitem", "", {"l_orderkey", "l_quantity"}),
                       scanStage("big_orders"),
                       {"l_orderkey"}, {"bo_orderkey"}),
                  scan("orders", "",
                       {"o_orderkey", "o_custkey", "o_orderdate",
                        "o_totalprice"}),
                  {"l_orderkey"}, {"o_orderkey"}),
             scan("customer", "", {"c_custkey", "c_name"}),
             {"o_custkey"}, {"c_custkey"});
    auto plan = orderBy(
        groupBy(joined,
                {"c_name", "c_custkey", "o_orderkey", "o_orderdate",
                 "o_totalprice"},
                {{"sum_quantity", AggKind::Sum, col("l_quantity")}}),
        {{"o_totalprice", true}, {"o_orderdate", false}},
        100);
    return Query{"q18", {{"big_orders", big_orders}, {"out", plan}}};
}

Query
q19(double, const TpchQueryParams &p)
{
    auto joined =
        join(JoinType::Inner,
             filter(scan("lineitem", "",
                         {"l_partkey", "l_quantity", "l_extendedprice",
                          "l_discount", "l_shipinstruct", "l_shipmode"}),
                    andE(inStrList(col("l_shipmode"), {"AIR", "REG AIR"}),
                         eq(col("l_shipinstruct"),
                            litStr("DELIVER IN PERSON")))),
             scan("part", "",
                  {"p_partkey", "p_brand", "p_container", "p_size"}),
             {"l_partkey"}, {"p_partkey"});
    auto clause1 =
        andE(andE(eq(col("p_brand"), litStr(p.q19Brand1)),
                  inStrList(col("p_container"),
                            {"SM CASE", "SM BOX", "SM PACK", "SM PKG"})),
             andE(between(col("l_quantity"), lit(p.q19Qty1),
                          lit(p.q19Qty1 + 10)),
                  between(col("p_size"), lit(1), lit(5))));
    auto clause2 =
        andE(andE(eq(col("p_brand"), litStr(p.q19Brand2)),
                  inStrList(col("p_container"),
                            {"MED BAG", "MED BOX", "MED PKG", "MED PACK"})),
             andE(between(col("l_quantity"), lit(p.q19Qty2),
                          lit(p.q19Qty2 + 10)),
                  between(col("p_size"), lit(1), lit(10))));
    auto clause3 =
        andE(andE(eq(col("p_brand"), litStr(p.q19Brand3)),
                  inStrList(col("p_container"),
                            {"LG CASE", "LG BOX", "LG PACK", "LG PKG"})),
             andE(between(col("l_quantity"), lit(p.q19Qty3),
                          lit(p.q19Qty3 + 10)),
                  between(col("p_size"), lit(1), lit(15))));
    auto plan = groupBy(
        project(filter(joined, orE(orE(clause1, clause2), clause3)),
                {{"rev_in", revenueExpr()}}),
        {}, {{"revenue", AggKind::Sum, col("rev_in")}});
    return Query{"q19", {{"out", plan}}};
}

Query
q20(double, const TpchQueryParams &p)
{
    auto forest_parts = filter(scan("part", "", {"p_partkey", "p_name"}),
                               like(col("p_name"), p.q20Color + "%"));
    auto shipped = groupBy(
        filter(scan("lineitem", "",
                    {"l_partkey", "l_suppkey", "l_shipdate",
                     "l_quantity"}),
               andE(ge(col("l_shipdate"),
                       litDateDays(p.q20StartDate)),
                    lt(col("l_shipdate"),
                       litDateDays(addMonths(p.q20StartDate, 12))))),
        {"l_partkey", "l_suppkey"},
        {{"sum_qty", AggKind::Sum, col("l_quantity")}});
    auto eligible_ps =
        filter(join(JoinType::Inner,
                    join(JoinType::LeftSemi,
                         scan("partsupp", "",
                              {"ps_partkey", "ps_suppkey", "ps_availqty"}),
                         forest_parts, {"ps_partkey"}, {"p_partkey"}),
                    scanStage("shipped"),
                    {"ps_partkey", "ps_suppkey"},
                    {"l_partkey", "l_suppkey"}),
               gt(mul(col("ps_availqty"), lit(2)), col("sum_qty")));
    auto plan = orderBy(
        project(
            join(JoinType::LeftSemi,
                 join(JoinType::Inner,
                      scan("supplier", "",
                           {"s_suppkey", "s_name", "s_address",
                            "s_nationkey"}),
                      filter(scan("nation", "",
                                  {"n_nationkey", "n_name"}),
                             eq(col("n_name"), litStr(p.q20Nation))),
                      {"s_nationkey"}, {"n_nationkey"}),
                 scanStage("eligible_ps"), {"s_suppkey"}, {"ps_suppkey"}),
            {{"s_name", col("s_name")}, {"s_address", col("s_address")}}),
        {{"s_name", false}});
    return Query{"q20",
                 {{"shipped", shipped}, {"eligible_ps", eligible_ps},
                  {"out", plan}}};
}

Query
q21(double, const TpchQueryParams &p)
{
    auto l1 =
        join(JoinType::Inner,
             join(JoinType::Inner,
                  filter(scan("lineitem", "",
                              {"l_orderkey", "l_suppkey", "l_receiptdate",
                               "l_commitdate"}),
                         gt(col("l_receiptdate"), col("l_commitdate"))),
                  filter(scan("orders", "", {"o_orderkey",
                                             "o_orderstatus"}),
                         eq(col("o_orderstatus"), litStr("F"))),
                  {"l_orderkey"}, {"o_orderkey"}),
             join(JoinType::Inner,
                  scan("supplier", "",
                       {"s_suppkey", "s_name", "s_nationkey"}),
                  filter(scan("nation", "", {"n_nationkey", "n_name"}),
                         eq(col("n_name"), litStr(p.q21Nation))),
                  {"s_nationkey"}, {"n_nationkey"}),
             {"l_suppkey"}, {"s_suppkey"});
    auto with_other =
        join(JoinType::LeftSemi, l1,
             scan("lineitem", "l2", {"l_orderkey", "l_suppkey"}),
             {"l_orderkey"}, {"l2.l_orderkey"},
             ne(col("l_suppkey"), col("l2.l_suppkey")));
    auto no_other_late =
        join(JoinType::LeftAnti, with_other,
             filter(scan("lineitem", "l3",
                         {"l_orderkey", "l_suppkey", "l_receiptdate",
                          "l_commitdate"}),
                    gt(col("l3.l_receiptdate"), col("l3.l_commitdate"))),
             {"l_orderkey"}, {"l3.l_orderkey"},
             ne(col("l_suppkey"), col("l3.l_suppkey")));
    auto plan = orderBy(
        groupBy(no_other_late, {"s_name"},
                {{"numwait", AggKind::Count, nullptr}}),
        {{"numwait", true}, {"s_name", false}},
        100);
    return Query{"q21", {{"out", plan}}};
}

Query
q22(double, const TpchQueryParams &p)
{
    // cntrycode == substring(c_phone, 1, 2) == 10 + c_nationkey by the
    // generator's construction; the numeric form keeps the group-by and
    // IN-list in fixed-width columns (DESIGN.md).
    const std::vector<std::int64_t> &codes = p.q22Codes;
    auto cust = project(
        scan("customer", "", {"c_custkey", "c_acctbal", "c_nationkey"}),
        {{"c_custkey", col("c_custkey")},
         {"c_acctbal", col("c_acctbal")},
         {"cntrycode", add(col("c_nationkey"), lit(10))}});
    auto avg_bal =
        groupBy(filter(cust,
                       andE(gt(col("c_acctbal"), litDec("0.00")),
                            inList(col("cntrycode"), codes))),
                {}, {{"avg_acctbal", AggKind::Avg, col("c_acctbal")}});
    auto eligible =
        join(JoinType::LeftAnti,
             join(JoinType::Inner,
                  filter(cust, inList(col("cntrycode"), codes)),
                  scanStage("avg_bal"), {}, {},
                  gt(col("c_acctbal"), col("avg_acctbal"))),
             scan("orders", "", {"o_custkey"}),
             {"c_custkey"}, {"o_custkey"});
    auto plan = orderBy(
        groupBy(eligible, {"cntrycode"},
                {{"numcust", AggKind::Count, nullptr},
                 {"totacctbal", AggKind::Sum, col("c_acctbal")}}),
        {{"cntrycode", false}});
    return Query{"q22", {{"avg_bal", avg_bal}, {"out", plan}}};
}

} // namespace

Query
tpchQuery(int number, double sf)
{
    return tpchQuery(number, sf, TpchQueryParams{});
}

Query
tpchQuery(int number, double sf, const TpchQueryParams &p)
{
    switch (number) {
      case 1: return q01(sf, p);
      case 2: return q02(sf, p);
      case 3: return q03(sf, p);
      case 4: return q04(sf, p);
      case 5: return q05(sf, p);
      case 6: return q06(sf, p);
      case 7: return q07(sf, p);
      case 8: return q08(sf, p);
      case 9: return q09(sf, p);
      case 10: return q10(sf, p);
      case 11: return q11(sf, p);
      case 12: return q12(sf, p);
      case 13: return q13(sf);
      case 14: return q14(sf, p);
      case 15: return q15(sf, p);
      case 16: return q16(sf, p);
      case 17: return q17(sf, p);
      case 18: return q18(sf, p);
      case 19: return q19(sf, p);
      case 20: return q20(sf, p);
      case 21: return q21(sf, p);
      case 22: return q22(sf, p);
      default: fatal("no TPC-H query ", number);
    }
}

std::vector<int>
allQueryNumbers()
{
    std::vector<int> out;
    for (int i = 1; i <= 22; ++i)
        out.push_back(i);
    return out;
}

} // namespace aquoman::tpch
