/**
 * @file
 * The 22 TPC-H queries as logical plans (spec validation parameters).
 * Correlated subqueries are decorrelated into stages the standard way
 * (per-key group-by + join); scalar subqueries become single-row stages
 * broadcast through keyless joins. Two documented adaptations
 * (DESIGN.md): q22 derives cntrycode from c_nationkey + 10 (identical
 * by construction to substring(c_phone,1,2)), and q11's DRAM-fraction
 * comparison is rearranged to integer form to stay in fixed point.
 */

#ifndef AQUOMAN_TPCH_QUERIES_HH
#define AQUOMAN_TPCH_QUERIES_HH

#include <vector>

#include "relalg/plan.hh"

namespace aquoman::tpch {

/**
 * Build TPC-H query @p number (1..22).
 * @param number query number
 * @param sf scale factor (q11's fraction parameter depends on it)
 */
Query tpchQuery(int number, double sf);

/** All query numbers, in order. */
std::vector<int> allQueryNumbers();

} // namespace aquoman::tpch

#endif // AQUOMAN_TPCH_QUERIES_HH
