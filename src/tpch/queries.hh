/**
 * @file
 * The 22 TPC-H queries as logical plans. Every query builder takes a
 * TpchQueryParams carrying the specification's substitution parameters
 * (dates, brands, regions, segments, bands); the defaults are the
 * spec's validation values, so tpchQuery(n, sf) builds exactly the
 * plans this repository has always built. The workload generator
 * (src/workload/tpch_params.hh) draws randomized parameter sets from a
 * deterministic seeded RNG to turn the 22 templates into thousands of
 * distinct query instances.
 *
 * Correlated subqueries are decorrelated into stages the standard way
 * (per-key group-by + join); scalar subqueries become single-row stages
 * broadcast through keyless joins. Three documented adaptations
 * (DESIGN.md): q22 derives cntrycode from c_nationkey + 10 (identical
 * by construction to substring(c_phone,1,2)), q11's DRAM-fraction
 * comparison is rearranged to integer form to stay in fixed point, and
 * q13's comment words stay fixed at special/requests because our dbgen
 * plants only that word pair (randomizing them would collapse the
 * anti-join selectivity to zero).
 */

#ifndef AQUOMAN_TPCH_QUERIES_HH
#define AQUOMAN_TPCH_QUERIES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/date.hh"
#include "relalg/plan.hh"

namespace aquoman::tpch {

/**
 * Substitution parameters of the 22 query templates (TPC-H spec
 * Sec. 2.4, "substitution parameters"). Defaults are the validation
 * values, so a default-constructed set reproduces the canonical plans
 * bit-for-bit. Dates are day counts (common/date.hh); windows derived
 * from a start date (q4 +3 months, q6 +1 year, ...) are computed by
 * the builders so a parameter set stays one value per spec parameter.
 */
struct TpchQueryParams
{
    /** q1: shipdate cutoff (spec: 1998-12-01 minus DELTA in [60,120]). */
    std::int32_t q1CutoffDate = daysFromCivil(1998, 9, 2);

    std::int64_t q2Size = 15;            ///< q2: p_size in [1,50]
    std::string q2TypeSuffix = "BRASS";  ///< q2: p_type %suffix (syl3)
    std::string q2Region = "EUROPE";     ///< q2: region name

    std::string q3Segment = "BUILDING";  ///< q3: c_mktsegment
    /** q3: order/ship date split (spec: [1995-03-01, 1995-03-31]). */
    std::int32_t q3Date = daysFromCivil(1995, 3, 15);

    /** q4: o_orderdate window start (+3 months). */
    std::int32_t q4StartDate = daysFromCivil(1993, 7, 1);

    std::string q5Region = "ASIA";       ///< q5: region name
    /** q5: o_orderdate window start, a Jan 1 (+1 year). */
    std::int32_t q5StartDate = daysFromCivil(1994, 1, 1);

    /** q6: l_shipdate window start, a Jan 1 (+1 year). */
    std::int32_t q6StartDate = daysFromCivil(1994, 1, 1);
    /** q6: discount band centre in hundredths (band is centre +/- 1). */
    std::int64_t q6DiscountCents = 6;
    std::int64_t q6Quantity = 24;        ///< q6: l_quantity < this

    std::string q7Nation1 = "FRANCE";    ///< q7: first nation
    std::string q7Nation2 = "GERMANY";   ///< q7: second nation (distinct)

    std::string q8Nation = "BRAZIL";     ///< q8: market-share nation
    std::string q8Region = "AMERICA";    ///< q8: region of that nation
    std::string q8Type = "ECONOMY ANODIZED STEEL"; ///< q8: full p_type

    std::string q9Color = "green";       ///< q9: p_name %color%

    /** q10: o_orderdate window start, a month start (+3 months). */
    std::int32_t q10StartDate = daysFromCivil(1993, 10, 1);

    std::string q11Nation = "GERMANY";   ///< q11: nation name

    std::string q12Mode1 = "MAIL";       ///< q12: first ship mode
    std::string q12Mode2 = "SHIP";       ///< q12: second mode (distinct)
    /** q12: l_receiptdate window start, a Jan 1 (+1 year). */
    std::int32_t q12StartDate = daysFromCivil(1994, 1, 1);

    /** q14: l_shipdate window start, a month start (+1 month). */
    std::int32_t q14StartDate = daysFromCivil(1995, 9, 1);

    /** q15: l_shipdate window start, a month start (+3 months). */
    std::int32_t q15StartDate = daysFromCivil(1996, 1, 1);

    std::string q16Brand = "Brand#45";   ///< q16: excluded brand
    std::string q16TypePrefix = "MEDIUM POLISHED"; ///< q16: p_type prefix%
    /** q16: eight distinct sizes in [1,50]. */
    std::vector<std::int64_t> q16Sizes = {49, 14, 23, 45, 19, 3, 36, 9};

    std::string q17Brand = "Brand#23";   ///< q17: brand
    std::string q17Container = "MED BOX";///< q17: container

    std::int64_t q18Quantity = 300;      ///< q18: sum(l_quantity) > this

    std::string q19Brand1 = "Brand#12";  ///< q19: small-container brand
    std::string q19Brand2 = "Brand#23";  ///< q19: medium-container brand
    std::string q19Brand3 = "Brand#34";  ///< q19: large-container brand
    std::int64_t q19Qty1 = 1;            ///< q19: band [q, q+10]
    std::int64_t q19Qty2 = 10;           ///< q19: band [q, q+10]
    std::int64_t q19Qty3 = 20;           ///< q19: band [q, q+10]

    std::string q20Color = "forest";     ///< q20: p_name prefix%
    /** q20: l_shipdate window start, a Jan 1 (+1 year). */
    std::int32_t q20StartDate = daysFromCivil(1994, 1, 1);
    std::string q20Nation = "CANADA";    ///< q20: nation name

    std::string q21Nation = "SAUDI ARABIA"; ///< q21: nation name

    /** q22: seven distinct country codes (10 + nationkey). */
    std::vector<std::int64_t> q22Codes = {13, 31, 23, 29, 30, 18, 17};
};

/**
 * Build TPC-H query @p number (1..22) with the spec's validation
 * parameters.
 * @param number query number
 * @param sf scale factor (q11's fraction parameter depends on it)
 */
Query tpchQuery(int number, double sf);

/** Build TPC-H query @p number with explicit substitution parameters. */
Query tpchQuery(int number, double sf, const TpchQueryParams &params);

/** All query numbers, in order. */
std::vector<int> allQueryNumbers();

} // namespace aquoman::tpch

#endif // AQUOMAN_TPCH_QUERIES_HH
