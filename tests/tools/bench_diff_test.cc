/** @file
 * bench_diff core contracts: record-key matching, the exact failure
 * message when a baseline record is missing from the candidate (key and
 * side must both be named), candidate-only records surfacing as notes,
 * modelled-field drift detection, and the matched==0 fatal path.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../../tools/bench_diff_core.hh"

namespace aquoman::tools {
namespace {

Record
makeRecord(double query, double devices, double wall, double modelled)
{
    Record r;
    r["query"] = query;
    r["devices"] = devices;
    r["wall_seconds"] = wall;
    r["modelled_seconds"] = modelled;
    return r;
}

bool
containsMessage(const std::vector<std::string> &msgs,
                const std::string &needle)
{
    for (const std::string &m : msgs)
        if (m.find(needle) != std::string::npos)
            return true;
    return false;
}

TEST(BenchDiff, IdenticalReportsMatchCleanly)
{
    std::vector<Record> base{makeRecord(6, 4, 1.0, 2.0),
                             makeRecord(14, 4, 3.0, 4.0)};
    DiffResult d = diffReports(base, base, DiffOptions{});
    EXPECT_FALSE(d.fatal);
    EXPECT_EQ(d.failures, 0);
    EXPECT_EQ(d.matched, 2);
    EXPECT_DOUBLE_EQ(d.wallGeomean, 1.0);
    EXPECT_TRUE(d.notes.empty());
}

TEST(BenchDiff, BaselineOnlyRecordFailsNamingKeyAndSide)
{
    std::vector<Record> base{makeRecord(6, 4, 1.0, 2.0),
                             makeRecord(14, 8, 1.0, 2.0)};
    std::vector<Record> cand{makeRecord(6, 4, 1.0, 2.0)};
    DiffResult d = diffReports(base, cand, DiffOptions{});
    EXPECT_FALSE(d.fatal);
    EXPECT_EQ(d.matched, 1);
    EXPECT_EQ(d.failures, 1);
    // The message must name the missing record's key AND which side
    // lacks it, so a CI log is actionable without rerunning locally.
    EXPECT_TRUE(containsMessage(
        d.failureMessages,
        "record 'query=14,devices=8' missing from candidate report"))
        << (d.failureMessages.empty() ? std::string("<none>")
                                      : d.failureMessages.front());
}

TEST(BenchDiff, CandidateOnlyRecordIsANoteNotAFailure)
{
    std::vector<Record> base{makeRecord(6, 4, 1.0, 2.0)};
    std::vector<Record> cand{makeRecord(6, 4, 1.0, 2.0),
                             makeRecord(19, 4, 1.0, 2.0)};
    DiffResult d = diffReports(base, cand, DiffOptions{});
    EXPECT_EQ(d.failures, 0);
    EXPECT_EQ(d.matched, 1);
    EXPECT_TRUE(containsMessage(
        d.notes,
        "record 'query=19,devices=4' missing from baseline report"));
}

TEST(BenchDiff, ModelledDriftFails)
{
    std::vector<Record> base{makeRecord(6, 4, 1.0, 2.0)};
    std::vector<Record> cand{makeRecord(6, 4, 1.0, 2.5)};
    DiffResult d = diffReports(base, cand, DiffOptions{});
    EXPECT_EQ(d.failures, 1);
    EXPECT_TRUE(containsMessage(d.failureMessages, "modelled_seconds"));
}

TEST(BenchDiff, MissingModelledFieldNamesFieldAndSide)
{
    std::vector<Record> base{makeRecord(6, 4, 1.0, 2.0)};
    std::vector<Record> cand{makeRecord(6, 4, 1.0, 2.0)};
    cand[0].erase("modelled_seconds");
    DiffResult d = diffReports(base, cand, DiffOptions{});
    EXPECT_EQ(d.failures, 1);
    EXPECT_TRUE(containsMessage(
        d.failureMessages,
        "field 'modelled_seconds' missing from candidate report"));
}

TEST(BenchDiff, WallClockGateUsesGeomean)
{
    // Individual records may regress as long as the geomean holds.
    std::vector<Record> base{makeRecord(6, 4, 1.0, 2.0),
                             makeRecord(14, 4, 1.0, 2.0)};
    std::vector<Record> cand{makeRecord(6, 4, 1.3, 2.0),
                             makeRecord(14, 4, 0.8, 2.0)};
    DiffOptions opt;
    opt.wallThresholdPct = 10.0;
    DiffResult d = diffReports(base, cand, opt);
    // geomean(1.3 * 0.8) = sqrt(1.04) ~ 1.02 <= 1.10.
    EXPECT_EQ(d.failures, 0);
    EXPECT_NEAR(d.wallGeomean, 1.0198, 1e-3);

    cand[1]["wall_seconds"] = 1.3; // geomean 1.3 > 1.10
    DiffResult bad = diffReports(base, cand, opt);
    EXPECT_GE(bad.failures, 1);
    EXPECT_TRUE(containsMessage(bad.failureMessages, "geomean"));
}

TEST(BenchDiff, TrippedWallGateListsPerRecordRatiosWorstFirst)
{
    std::vector<Record> base{makeRecord(6, 4, 1.0, 2.0),
                             makeRecord(14, 4, 1.0, 2.0),
                             makeRecord(19, 4, 1.0, 2.0)};
    std::vector<Record> cand{makeRecord(6, 4, 1.2, 2.0),
                             makeRecord(14, 4, 2.0, 2.0),
                             makeRecord(19, 4, 0.9, 2.0)};
    DiffOptions opt;
    opt.wallThresholdPct = 10.0;
    DiffResult d = diffReports(base, cand, opt);
    ASSERT_GE(d.failures, 1);
    // Every matched record gets a ratio line, sorted worst first, so a
    // CI log pinpoints which queries dragged the geomean over.
    std::vector<std::string> ratio_lines;
    for (const std::string &m : d.failureMessages)
        if (m.find("wall_seconds '") != std::string::npos)
            ratio_lines.push_back(m);
    ASSERT_EQ(ratio_lines.size(), 3u);
    EXPECT_NE(ratio_lines[0].find("'query=14,devices=4' ratio 2.0000"),
              std::string::npos)
        << ratio_lines[0];
    EXPECT_NE(ratio_lines[1].find("'query=6,devices=4' ratio 1.2000"),
              std::string::npos)
        << ratio_lines[1];
    EXPECT_NE(ratio_lines[2].find("'query=19,devices=4' ratio 0.9000"),
              std::string::npos)
        << ratio_lines[2];
    // The breakdown includes the raw baseline -> candidate values.
    EXPECT_NE(ratio_lines[0].find("(1 -> 2)"), std::string::npos)
        << ratio_lines[0];
}

TEST(BenchDiff, HealthyWallGateEmitsNoPerRecordBreakdown)
{
    std::vector<Record> base{makeRecord(6, 4, 1.0, 2.0),
                             makeRecord(14, 4, 1.0, 2.0)};
    std::vector<Record> cand{makeRecord(6, 4, 1.05, 2.0),
                             makeRecord(14, 4, 0.95, 2.0)};
    DiffResult d = diffReports(base, cand, DiffOptions{});
    EXPECT_EQ(d.failures, 0);
    EXPECT_FALSE(containsMessage(d.failureMessages, "wall_seconds '"));
}

TEST(BenchDiff, VerboseEmitsPerRecordRatioNotesWhenHealthy)
{
    std::vector<Record> base{makeRecord(6, 4, 1.0, 2.0),
                             makeRecord(14, 4, 1.0, 2.0)};
    std::vector<Record> cand{makeRecord(6, 4, 1.05, 2.0),
                             makeRecord(14, 4, 0.95, 2.0)};
    DiffOptions opt;
    opt.verbose = true;
    DiffResult d = diffReports(base, cand, opt);
    EXPECT_EQ(d.failures, 0);
    // Ratio lines are notes (informational), never failure messages,
    // and appear even though the geomean gate passes.
    EXPECT_FALSE(containsMessage(d.failureMessages, "wall_seconds '"));
    std::vector<std::string> ratio_lines;
    for (const std::string &m : d.notes)
        if (m.find("wall_seconds '") != std::string::npos)
            ratio_lines.push_back(m);
    ASSERT_EQ(ratio_lines.size(), 2u);
    // Worst first.
    EXPECT_NE(ratio_lines[0].find("'query=6,devices=4' ratio 1.0500"),
              std::string::npos)
        << ratio_lines[0];
    EXPECT_NE(ratio_lines[1].find("'query=14,devices=4' ratio 0.9500"),
              std::string::npos)
        << ratio_lines[1];
}

TEST(BenchDiff, NonVerboseHealthyRunEmitsNoRatioNotes)
{
    std::vector<Record> base{makeRecord(6, 4, 1.0, 2.0)};
    std::vector<Record> cand{makeRecord(6, 4, 1.02, 2.0)};
    DiffResult d = diffReports(base, cand, DiffOptions{});
    EXPECT_EQ(d.failures, 0);
    EXPECT_FALSE(containsMessage(d.notes, "wall_seconds '"));
}

TEST(BenchDiff, NoMatchedRecordsIsFatal)
{
    std::vector<Record> base{makeRecord(6, 4, 1.0, 2.0)};
    std::vector<Record> cand{makeRecord(19, 8, 1.0, 2.0)};
    DiffResult d = diffReports(base, cand, DiffOptions{});
    EXPECT_TRUE(d.fatal);
    EXPECT_FALSE(d.fatalMessage.empty());
}

TEST(BenchDiff, RecordKeyComposition)
{
    Record r = makeRecord(6, 4, 1.0, 2.0);
    r["tenant"] = 2;
    EXPECT_EQ(recordKey(r), "query=6,devices=4,tenant=2");
    Record plain;
    plain["wall_seconds"] = 1.0;
    EXPECT_EQ(recordKey(plain), "");
}

} // namespace
} // namespace aquoman::tools
