/** @file
 * Unit tests of the shared morsel-parallel pool: range splitting,
 * full-coverage parallelFor execution, serial fallback, exception
 * propagation, nested sections, task groups, and repeated pool
 * startup/shutdown.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"

namespace aquoman {
namespace {

TEST(SplitRange, CoversRangeInOrderWithBoundedChunks)
{
    auto chunks = ThreadPool::splitRange(3, 250, 64);
    ASSERT_FALSE(chunks.empty());
    EXPECT_EQ(chunks.front().first, 3);
    EXPECT_EQ(chunks.back().second, 250);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        EXPECT_LT(chunks[i].first, chunks[i].second);
        EXPECT_LE(chunks[i].second - chunks[i].first, 64);
        if (i)
            EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
    }
}

TEST(SplitRange, EmptyRangeYieldsNoChunks)
{
    EXPECT_TRUE(ThreadPool::splitRange(5, 5, 16).empty());
    EXPECT_TRUE(ThreadPool::splitRange(7, 5, 16).empty());
}

TEST(ThreadPoolTest, ParallelForTouchesEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    // Indices are disjoint across chunks, so plain ints suffice.
    std::vector<int> hits(10007, 0);
    pool.parallelFor(0, static_cast<std::int64_t>(hits.size()), 97,
                     [&](std::int64_t b, std::int64_t e) {
                         for (std::int64_t i = b; i < e; ++i)
                             ++hits[i];
                     });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPoolTest, SerialPoolRunsChunksInlineAndInOrder)
{
    ThreadPool pool(1);
    std::vector<std::int64_t> starts;
    auto caller = std::this_thread::get_id();
    pool.parallelFor(0, 100, 16, [&](std::int64_t b, std::int64_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        starts.push_back(b);
    });
    std::vector<std::int64_t> expect{0, 16, 32, 48, 64, 80, 96};
    EXPECT_EQ(starts, expect);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 64, 1,
                         [&](std::int64_t b, std::int64_t) {
                             if (b == 33)
                                 throw std::runtime_error("chunk 33");
                         }),
        std::runtime_error);

    std::atomic<std::int64_t> sum{0};
    pool.parallelFor(0, 64, 1, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i)
            sum += i;
    });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

TEST(ThreadPoolTest, NestedParallelForCompletes)
{
    ThreadPool pool(4);
    std::vector<std::int64_t> inner_sums(8, 0);
    pool.parallelFor(0, 8, 1, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t t = b; t < e; ++t) {
            std::vector<std::int64_t> parts(16, 0);
            pool.parallelFor(0, 160, 10,
                             [&](std::int64_t ib, std::int64_t ie) {
                                 for (std::int64_t i = ib; i < ie; ++i)
                                     parts[i / 10] += i;
                             });
            inner_sums[t] = std::accumulate(parts.begin(), parts.end(),
                                            std::int64_t{0});
        }
    });
    for (std::int64_t s : inner_sums)
        EXPECT_EQ(s, 160 * 159 / 2);
}

TEST(ThreadPoolTest, RepeatedStartupShutdown)
{
    for (int round = 0; round < 3; ++round) {
        for (int degree = 1; degree <= 8; ++degree) {
            ThreadPool pool(degree);
            EXPECT_EQ(pool.parallelism(), degree);
            std::atomic<int> count{0};
            pool.parallelFor(0, 50, 7,
                             [&](std::int64_t b, std::int64_t e) {
                                 count += static_cast<int>(e - b);
                             });
            EXPECT_EQ(count.load(), 50);
        }
    }
}

TEST(TaskGroupTest, RunsAllTasksAndIsReusable)
{
    ThreadPool pool(4);
    TaskGroup group(pool);
    std::vector<int> done(12, 0);
    for (int i = 0; i < 12; ++i)
        group.run([&done, i] { done[i] = i + 1; });
    group.wait();
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(done[i], i + 1);

    int second = 0;
    group.run([&second] { second = 42; });
    group.wait();
    EXPECT_EQ(second, 42);
}

TEST(TaskGroupTest, NestedGroupsComplete)
{
    ThreadPool pool(4);
    std::vector<std::int64_t> totals(4, 0);
    TaskGroup outer(pool);
    for (int t = 0; t < 4; ++t) {
        outer.run([&pool, &totals, t] {
            std::vector<std::int64_t> parts(8, 0);
            TaskGroup inner(pool);
            for (int i = 0; i < 8; ++i)
                inner.run([&parts, i] { parts[i] = i * i; });
            inner.wait();
            totals[t] = std::accumulate(parts.begin(), parts.end(),
                                        std::int64_t{0});
        });
    }
    outer.wait();
    for (std::int64_t s : totals)
        EXPECT_EQ(s, 0 + 1 + 4 + 9 + 16 + 25 + 36 + 49);
}

TEST(TaskGroupTest, WaitRethrowsTaskException)
{
    ThreadPool pool(2);
    TaskGroup group(pool);
    group.run([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(GlobalPool, SetGlobalParallelismRebuildsThePool)
{
    int original = ThreadPool::global().parallelism();
    ThreadPool::setGlobalParallelism(3);
    EXPECT_EQ(ThreadPool::global().parallelism(), 3);

    std::atomic<int> count{0};
    parallelFor(0, 20, 1, [&](std::int64_t b, std::int64_t e) {
        count += static_cast<int>(e - b);
    });
    EXPECT_EQ(count.load(), 20);

    ThreadPool::setGlobalParallelism(original);
    EXPECT_EQ(ThreadPool::global().parallelism(), original);
}

} // namespace
} // namespace aquoman
