/** @file Unit tests for the date codec. */

#include <gtest/gtest.h>

#include "common/date.hh"

namespace aquoman {
namespace {

TEST(DateTest, EpochIsZero)
{
    EXPECT_EQ(daysFromCivil(1970, 1, 1), 0);
}

TEST(DateTest, KnownDates)
{
    EXPECT_EQ(daysFromCivil(1970, 1, 2), 1);
    EXPECT_EQ(daysFromCivil(1969, 12, 31), -1);
    EXPECT_EQ(daysFromCivil(2000, 3, 1), 11017);
}

TEST(DateTest, ParseAndFormatRoundTrip)
{
    for (const char *iso : {"1992-01-01", "1995-06-17", "1998-12-31",
                            "1996-02-29", "2000-02-29"}) {
        EXPECT_EQ(dateToString(parseDate(iso)), iso);
    }
}

TEST(DateTest, RoundTripSweep)
{
    // Every day across the TPC-H date range survives the round trip and
    // day counts are consecutive.
    std::int32_t start = parseDate("1992-01-01");
    std::int32_t end = parseDate("1998-12-31");
    for (std::int32_t d = start; d <= end; ++d) {
        CivilDate cd = civilFromDays(d);
        EXPECT_EQ(daysFromCivil(cd.year, cd.month, cd.day), d);
    }
    EXPECT_EQ(end - start, 2556);
}

TEST(DateTest, ParseRejectsMalformed)
{
    EXPECT_THROW(parseDate("1992/01/01"), FatalError);
    EXPECT_THROW(parseDate("19920101"), FatalError);
    EXPECT_THROW(parseDate("1992-13-01"), FatalError);
    EXPECT_THROW(parseDate("1992-00-10"), FatalError);
    EXPECT_THROW(parseDate("1992-01-32"), FatalError);
}

TEST(DateTest, AddMonths)
{
    EXPECT_EQ(addMonths(parseDate("1993-07-01"), 3),
              parseDate("1993-10-01"));
    EXPECT_EQ(addMonths(parseDate("1994-01-01"), 12),
              parseDate("1995-01-01"));
    EXPECT_EQ(addMonths(parseDate("1996-10-31"), 1),
              parseDate("1996-11-30")); // clamped day
    EXPECT_EQ(addMonths(parseDate("1996-03-31"), -1),
              parseDate("1996-02-29")); // leap clamp
}

TEST(DateTest, YearExtraction)
{
    EXPECT_EQ(civilFromDays(parseDate("1995-06-17")).year, 1995);
    EXPECT_EQ(civilFromDays(parseDate("1992-01-01")).month, 1);
    EXPECT_EQ(civilFromDays(parseDate("1998-12-31")).day, 31);
}

} // namespace
} // namespace aquoman
