/** @file Unit tests for fixed-point decimal arithmetic. */

#include <gtest/gtest.h>

#include "common/decimal.hh"

namespace aquoman {
namespace {

TEST(DecimalTest, MakeDecimal)
{
    EXPECT_EQ(makeDecimal(1), 100);
    EXPECT_EQ(makeDecimal(12, 34), 1234);
    EXPECT_EQ(makeDecimal(0, 5), 5);
}

TEST(DecimalTest, Multiply)
{
    // 2.00 * 3.00 == 6.00
    EXPECT_EQ(decimalMul(200, 300), 600);
    // 1.50 * 0.10 == 0.15
    EXPECT_EQ(decimalMul(150, 10), 15);
    // price * (1 - discount): 100.00 * 0.94 == 94.00
    EXPECT_EQ(decimalMul(10000, 94), 9400);
}

TEST(DecimalTest, Divide)
{
    EXPECT_EQ(decimalDiv(600, 300), 200);  // 6.00 / 3.00 == 2.00
    EXPECT_EQ(decimalDiv(100, 300), 33);   // 1/3 == 0.33 (truncated)
    EXPECT_EQ(decimalDiv(100, 0), 0);      // guarded div-by-zero
}

TEST(DecimalTest, Format)
{
    EXPECT_EQ(decimalToString(1234), "12.34");
    EXPECT_EQ(decimalToString(5), "0.05");
    EXPECT_EQ(decimalToString(-1234), "-12.34");
    EXPECT_EQ(decimalToString(0), "0.00");
    EXPECT_EQ(decimalToString(100), "1.00");
}

TEST(DecimalTest, RevenueFormulaMatchesDoubleMath)
{
    // l_extendedprice * (1 - l_discount) * (1 + l_tax) stays within one
    // hundredth of floating point for representative values.
    for (std::int64_t ep : {100ll * 100, 95000ll, 12345678ll}) {
        for (std::int64_t disc : {0ll, 5ll, 10ll}) {
            for (std::int64_t tax : {0ll, 4ll, 8ll}) {
                std::int64_t got = decimalMul(decimalMul(ep, 100 - disc),
                                              100 + tax);
                double want = (ep / 100.0) * (1.0 - disc / 100.0)
                    * (1.0 + tax / 100.0);
                EXPECT_NEAR(got / 100.0, want, 0.02);
            }
        }
    }
}

} // namespace
} // namespace aquoman
