/** @file Unit tests for the packed row-mask bit vector. */

#include <gtest/gtest.h>

#include "common/bitvector.hh"

namespace aquoman {
namespace {

TEST(BitVectorTest, SetGet)
{
    BitVector bv(100);
    EXPECT_EQ(bv.size(), 100);
    EXPECT_TRUE(bv.allZero());
    bv.set(0, true);
    bv.set(31, true);
    bv.set(32, true);
    bv.set(99, true);
    EXPECT_TRUE(bv.get(0));
    EXPECT_TRUE(bv.get(31));
    EXPECT_TRUE(bv.get(32));
    EXPECT_TRUE(bv.get(99));
    EXPECT_FALSE(bv.get(1));
    EXPECT_EQ(bv.popcount(), 4);
}

TEST(BitVectorTest, WordAccess)
{
    BitVector bv(64);
    bv.setWord(0, 0xdeadbeef);
    EXPECT_EQ(bv.word(0), 0xdeadbeefu);
    EXPECT_EQ(bv.popcount(), __builtin_popcount(0xdeadbeef));
    EXPECT_TRUE(bv.get(0));  // LSB of word 0 is row 0
    EXPECT_TRUE(bv.get(1));
    EXPECT_TRUE(bv.get(2));
    EXPECT_TRUE(bv.get(3));
    EXPECT_FALSE(bv.get(4));
}

TEST(BitVectorTest, TailSlackDoesNotLeakIntoPopcount)
{
    BitVector bv(33);
    bv.setWord(1, ~0u); // only bit 32 is real
    EXPECT_EQ(bv.popcount(), 1);
    EXPECT_TRUE(bv.get(32));
}

TEST(BitVectorTest, AndOr)
{
    BitVector a(40, true);
    BitVector b(40);
    b.set(7, true);
    b.set(39, true);
    a.andWith(b);
    EXPECT_EQ(a.popcount(), 2);
    BitVector c(40);
    c.set(8, true);
    a.orWith(c);
    EXPECT_EQ(a.popcount(), 3);
}

TEST(BitVectorTest, InitialValueTrue)
{
    BitVector bv(70, true);
    EXPECT_EQ(bv.popcount(), 70);
    bv.set(3, false);
    EXPECT_EQ(bv.popcount(), 69);
}

TEST(BitVectorTest, AllZeroAfterClearing)
{
    BitVector bv(10);
    bv.set(5, true);
    EXPECT_FALSE(bv.allZero());
    bv.set(5, false);
    EXPECT_TRUE(bv.allZero());
}

} // namespace
} // namespace aquoman
