/** @file
 * Unit tests for the Row Transformer PE (Table II) and the transform
 * compiler, including the central property: every compiled program
 * computes exactly what the reference expression evaluator computes.
 */

#include <gtest/gtest.h>

#include "aquoman/transform_compiler.hh"
#include "common/rng.hh"
#include "relalg/eval.hh"

namespace aquoman {
namespace {

TEST(PeTest, PassMovesInputToOutput)
{
    Pe pe;
    pe.loadProgram({{PeOpcode::Pass, 0, 0, false, 0}});
    std::deque<std::int64_t> in{42}, out;
    pe.runRow(in, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 42);
}

TEST(PeTest, AluWithImmediate)
{
    // rf[1] <= in; out <= rf[1] * 3
    Pe pe;
    pe.loadProgram({{PeOpcode::Pass, 1, 0, false, 0},
                    {PeOpcode::Mul, 0, 1, true, 3}});
    std::deque<std::int64_t> in{7}, out;
    pe.runRow(in, out);
    EXPECT_EQ(out[0], 21);
}

TEST(PeTest, StoreAndOperandFifo)
{
    // out <= in0 - in1 via the operand FIFO.
    Pe pe;
    pe.loadProgram({{PeOpcode::Pass, 1, 0, false, 0},
                    {PeOpcode::Pass, 2, 0, false, 0},
                    {PeOpcode::Store, 0, 2, false, 0},
                    {PeOpcode::Sub, 0, 1, false, 0}});
    std::deque<std::int64_t> in{10, 4}, out;
    pe.runRow(in, out);
    EXPECT_EQ(out[0], 6);
}

TEST(PeTest, CopyWritesRegisterAndOperandFifo)
{
    // t = in; out0 <= t+t (Copy pushes t to opReg and keeps it in rf).
    Pe pe;
    pe.loadProgram({{PeOpcode::Copy, 1, 0, false, 0},
                    {PeOpcode::Add, 0, 1, false, 0}});
    std::deque<std::int64_t> in{21}, out;
    pe.runRow(in, out);
    EXPECT_EQ(out[0], 42);
}

TEST(PeTest, ComparisonsProduceBooleans)
{
    Pe pe;
    pe.loadProgram({{PeOpcode::Pass, 1, 0, false, 0},
                    {PeOpcode::Lt, 0, 1, true, 10},
                    {PeOpcode::Gt, 0, 1, true, 10},
                    {PeOpcode::Eq, 0, 1, true, 10}});
    std::deque<std::int64_t> in{10}, out;
    pe.runRow(in, out);
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[1], 0);
    EXPECT_EQ(out[2], 1);
}

TEST(PeTest, ScaledOpsMatchDecimalHelpers)
{
    Pe pe;
    pe.loadProgram({{PeOpcode::Pass, 1, 0, false, 0},
                    {PeOpcode::MulScaled, 0, 1, true, 95},
                    {PeOpcode::DivScaled, 0, 1, true, 700}});
    std::deque<std::int64_t> in{10000}, out;
    pe.runRow(in, out);
    EXPECT_EQ(out[0], decimalMul(10000, 95));
    EXPECT_EQ(out[1], decimalDiv(10000, 700));
}

TEST(PeTest, DivByZeroGuarded)
{
    Pe pe;
    pe.loadProgram({{PeOpcode::Pass, 1, 0, false, 0},
                    {PeOpcode::Div, 0, 1, true, 0}});
    std::deque<std::int64_t> in{5}, out;
    pe.runRow(in, out);
    EXPECT_EQ(out[0], 0);
}

TEST(PeTest, InputUnderflowPanics)
{
    Pe pe;
    pe.loadProgram({{PeOpcode::Pass, 0, 0, false, 0}});
    std::deque<std::int64_t> in, out;
    EXPECT_THROW(pe.runRow(in, out), PanicError);
}

TEST(SystolicArrayTest, TwoStageChainForwardsThroughFifo)
{
    // PE0: t = in + 1, forward; PE1: out = t * 2.
    SystolicArray array({{{PeOpcode::Pass, 1, 0, false, 0},
                          {PeOpcode::Add, 2, 1, true, 1},
                          {PeOpcode::Pass, 0, 2, false, 0}},
                         {{PeOpcode::Pass, 1, 0, false, 0},
                          {PeOpcode::Mul, 0, 1, true, 2}}});
    std::vector<std::int64_t> out;
    array.runRow({20}, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 42);
    EXPECT_EQ(array.numPes(), 2);
    EXPECT_EQ(array.maxProgramLength(), 3);
}

// ---------------------------------------------------------------------
// Transform compiler
// ---------------------------------------------------------------------

std::map<std::string, ColumnType>
tpchLineitemSchema()
{
    return {{"l_quantity", ColumnType::Decimal},
            {"l_extendedprice", ColumnType::Decimal},
            {"l_discount", ColumnType::Decimal},
            {"l_tax", ColumnType::Decimal},
            {"l_shipdate", ColumnType::Date},
            {"l_orderkey", ColumnType::Int64},
            {"l_flag", ColumnType::Int32}};
}

/** Random input relation over the schema. */
RelTable
randomInput(const std::map<std::string, ColumnType> &schema,
            std::int64_t rows, std::uint64_t seed)
{
    Rng rng(seed);
    RelTable t;
    for (const auto &[name, type] : schema) {
        RelColumn c(name, type);
        for (std::int64_t i = 0; i < rows; ++i) {
            switch (type) {
              case ColumnType::Decimal:
                c.push(rng.uniform(0, 20000));
                break;
              case ColumnType::Date:
                c.push(rng.uniform(8035, 10592)); // 1992..1998
                break;
              case ColumnType::Int32:
                c.push(rng.uniform(0, 1));
                break;
              default:
                c.push(rng.uniform(1, 100000));
                break;
            }
        }
        t.addColumn(std::move(c));
    }
    return t;
}

/** Compile @p outputs, run them through the PE chain, compare to eval. */
void
checkAgainstReference(const std::vector<NamedExpr> &outputs,
                      bool expect_fpga_fit = false)
{
    auto schema = tpchLineitemSchema();
    AquomanConfig cfg;
    TransformResult tr = compileTransform(outputs, schema, cfg);
    ASSERT_TRUE(tr.ok()) << tr.error;
    const CompiledTransform &ct = *tr.program;
    if (expect_fpga_fit) {
        EXPECT_TRUE(ct.fitsFpgaProfile);
    }

    RelTable input = randomInput(schema, 257, 0xabcdef);
    SystolicArray array = ct.buildArray();

    // Reference results.
    std::vector<RelColumn> want;
    for (const auto &ne : outputs)
        want.push_back(evalExpr(ne.expr, input, ne.name));

    std::vector<std::int64_t> row_in, row_out;
    for (std::int64_t r = 0; r < input.numRows(); ++r) {
        row_in.clear();
        for (const auto &cname : ct.inputColumns)
            row_in.push_back(input.col(cname).get(r));
        array.runRow(row_in, row_out);
        ASSERT_EQ(row_out.size(), outputs.size());
        for (std::size_t o = 0; o < outputs.size(); ++o) {
            ASSERT_EQ(row_out[o], want[o].get(r))
                << "row " << r << " output " << outputs[o].name;
        }
    }
    // Output types match the evaluator's binding.
    for (std::size_t o = 0; o < outputs.size(); ++o)
        EXPECT_EQ(ct.outputTypes[o], want[o].type) << outputs[o].name;
}

TEST(TransformCompilerTest, SimplePassThrough)
{
    checkAgainstReference({{"k", col("l_orderkey")}}, true);
}

TEST(TransformCompilerTest, Fig9RevenueTransform)
{
    // The paper's Fig. 9/10 example transform.
    auto rev = mul(col("l_extendedprice"),
                   sub(litDec("1.00"), col("l_discount")));
    checkAgainstReference(
        {{"qty", col("l_quantity")},
         {"base_price", col("l_extendedprice")},
         {"disc_price", rev},
         {"charge", mul(rev, add(litDec("1.00"), col("l_tax")))}});
}

TEST(TransformCompilerTest, SharedSubexpressionCompiledOnce)
{
    auto rev = mul(col("l_extendedprice"),
                   sub(litDec("1.00"), col("l_discount")));
    auto schema = tpchLineitemSchema();
    TransformResult one = compileTransform({{"a", rev}}, schema,
                                           AquomanConfig{});
    TransformResult two = compileTransform(
        {{"a", rev}, {"b", mul(rev, litDec("2.00"))}}, schema,
        AquomanConfig{});
    ASSERT_TRUE(one.ok() && two.ok());
    // The shared revenue subtree adds only the extra multiply + emit
    // (plus forwarding passes), not a recomputation of the subtree.
    EXPECT_LE(two.program->totalInstructions,
              one.program->totalInstructions + 6);
}

TEST(TransformCompilerTest, ComparisonLoweringAllOps)
{
    checkAgainstReference(
        {{"eq", eq(col("l_orderkey"), lit(500))},
         {"ne", ne(col("l_orderkey"), lit(500))},
         {"lt", lt(col("l_orderkey"), lit(500))},
         {"le", le(col("l_orderkey"), lit(500))},
         {"gt", gt(col("l_orderkey"), lit(500))},
         {"ge", ge(col("l_orderkey"), lit(500))}});
}

TEST(TransformCompilerTest, BooleanLogicAndInList)
{
    checkAgainstReference(
        {{"p", andE(gt(col("l_quantity"), lit(24)),
                    orE(lt(col("l_discount"), litDec("0.05")),
                        eq(col("l_flag"), lit(1))))},
         {"in", inList(col("l_orderkey"), {10, 20, 30, 40})}});
}

TEST(TransformCompilerTest, CaseWhenArithmetic)
{
    checkAgainstReference(
        {{"v", caseWhen({gt(col("l_quantity"), lit(25)),
                         col("l_extendedprice")},
                        litDec("0.00"))}});
}

TEST(TransformCompilerTest, YearAndDateComparisons)
{
    checkAgainstReference(
        {{"y", year(col("l_shipdate"))},
         {"recent", ge(col("l_shipdate"), litDateDays(9497))}});
}

TEST(TransformCompilerTest, ConstMinusColumnRewrite)
{
    checkAgainstReference({{"inv", sub(lit(100), col("l_orderkey"))}});
}

TEST(TransformCompilerTest, DecimalPromotionMatchesEngine)
{
    checkAgainstReference(
        {{"cmp", lt(col("l_quantity"), lit(24))},
         {"sum", add(lit(1), col("l_discount"))},
         {"ratio", div(col("l_extendedprice"), col("l_quantity"))}});
}

TEST(TransformCompilerTest, LikeIsRejected)
{
    std::map<std::string, ColumnType> schema =
        {{"name", ColumnType::Varchar}};
    TransformResult tr = compileTransform(
        {{"m", like(col("name"), "x%")}}, schema, AquomanConfig{});
    EXPECT_FALSE(tr.ok());
    EXPECT_NE(tr.error.find("regex"), std::string::npos);
}

TEST(TransformCompilerTest, OrderedStringComparisonRejected)
{
    std::map<std::string, ColumnType> schema =
        {{"a", ColumnType::Varchar}, {"b", ColumnType::Varchar}};
    TransformResult tr = compileTransform(
        {{"m", lt(col("a"), col("b"))}}, schema, AquomanConfig{});
    EXPECT_FALSE(tr.ok());
}

TEST(TransformCompilerTest, FpgaProfileRejectsHugeTransformInStrictMode)
{
    // A very wide transform cannot fit 4 PEs x 8 slots.
    std::vector<NamedExpr> outs;
    for (int i = 0; i < 12; ++i) {
        outs.push_back({"o" + std::to_string(i),
                        mul(col("l_extendedprice"),
                            add(col("l_quantity"), lit(i)))});
    }
    auto schema = tpchLineitemSchema();
    TransformResult strict = compileTransform(outs, schema,
                                              AquomanConfig{}, false);
    EXPECT_FALSE(strict.ok());
    TransformResult elastic = compileTransform(outs, schema,
                                               AquomanConfig{}, true);
    EXPECT_TRUE(elastic.ok()) << elastic.error;
}

/** Property sweep: random expression trees match the evaluator. */
class RandomExprProperty : public ::testing::TestWithParam<int>
{
};

ExprPtr
randomExpr(Rng &rng, int depth)
{
    if (depth == 0 || rng.uniform(0, 3) == 0) {
        switch (rng.uniform(0, 3)) {
          case 0: return col("l_quantity");
          case 1: return col("l_extendedprice");
          case 2: return col("l_orderkey");
          default: return lit(rng.uniform(1, 50));
        }
    }
    switch (rng.uniform(0, 6)) {
      case 0:
        return add(randomExpr(rng, depth - 1), randomExpr(rng, depth - 1));
      case 1:
        return sub(randomExpr(rng, depth - 1), randomExpr(rng, depth - 1));
      case 2:
        return mul(randomExpr(rng, depth - 1),
                   lit(rng.uniform(1, 9)));
      case 3:
        return lt(randomExpr(rng, depth - 1), randomExpr(rng, depth - 1));
      case 4:
        return caseWhen({gt(col("l_quantity"), lit(25)),
                         randomExpr(rng, depth - 1)},
                        randomExpr(rng, depth - 1));
      default:
        return ge(randomExpr(rng, depth - 1),
                  randomExpr(rng, depth - 1));
    }
}

TEST_P(RandomExprProperty, CompiledEqualsEvaluated)
{
    Rng rng(GetParam() * 7919 + 13);
    ExprPtr e = randomExpr(rng, 3);
    // Constant-only trees are the planner's job, skip them.
    std::vector<std::string> cols;
    collectColumns(e, cols);
    if (cols.empty())
        GTEST_SKIP();
    checkAgainstReference({{"v", e}});
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomExprProperty,
                         ::testing::Range(0, 24));

} // namespace
} // namespace aquoman
