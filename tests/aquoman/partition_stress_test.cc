/** @file
 * Stress tests for the systolic-array partitioner: with tiny
 * instruction memories the compiler must split programs across many
 * PEs, forwarding live values and raw inputs through the inter-PE
 * FIFOs — and every split must still compute exactly what the
 * reference evaluator computes.
 */

#include <gtest/gtest.h>

#include "aquoman/transform_compiler.hh"
#include "common/rng.hh"
#include "relalg/eval.hh"

namespace aquoman {
namespace {

std::map<std::string, ColumnType>
schema()
{
    return {{"a", ColumnType::Int64},    {"b", ColumnType::Int64},
            {"c", ColumnType::Decimal},  {"d", ColumnType::Decimal},
            {"e", ColumnType::Int64},    {"f", ColumnType::Decimal}};
}

RelTable
randomInput(std::int64_t rows, std::uint64_t seed)
{
    Rng rng(seed);
    RelTable t;
    for (const auto &[name, type] : schema()) {
        RelColumn col_(name, type);
        for (std::int64_t i = 0; i < rows; ++i)
            col_.push(rng.uniform(1, 10000));
        t.addColumn(std::move(col_));
    }
    return t;
}

/** Wide multi-output transform touching every input. */
std::vector<NamedExpr>
wideTransform()
{
    auto rev = mul(col("c"), sub(litDec("1.00"), col("d")));
    return {{"o1", add(col("a"), col("b"))},
            {"o2", rev},
            {"o3", mul(rev, add(litDec("1.00"), col("f")))},
            {"o4", caseWhen({gt(col("e"), lit(500)), col("a")},
                            col("b"))},
            {"o5", sub(mul(col("a"), lit(3)), col("e"))},
            {"o6", div(col("c"), col("e"))},
            {"o7", ge(col("d"), col("f"))}};
}

class SlotSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SlotSweep, PartitionedProgramsMatchReference)
{
    AquomanConfig cfg;
    cfg.peInstructionSlots = GetParam();
    auto outputs = wideTransform();
    TransformResult tr = compileTransform(outputs, schema(), cfg, true);
    ASSERT_TRUE(tr.ok()) << tr.error;
    const CompiledTransform &ct = *tr.program;

    // Tighter slots force either multi-PE chunking or the documented
    // wide-PE simulator fallback (register pressure > 7).
    if (GetParam() <= 8) {
        EXPECT_TRUE(ct.programs.size() >= 2 || !ct.fitsFpgaProfile);
    }

    RelTable input = randomInput(199, GetParam() * 31 + 5);
    SystolicArray array = ct.buildArray();
    std::vector<RelColumn> want;
    for (const auto &ne : outputs)
        want.push_back(evalExpr(ne.expr, input, ne.name));
    std::vector<std::int64_t> in, out;
    for (std::int64_t r = 0; r < input.numRows(); ++r) {
        in.clear();
        for (const auto &cn : ct.inputColumns)
            in.push_back(input.col(cn).get(r));
        array.runRow(in, out);
        ASSERT_EQ(out.size(), outputs.size());
        for (std::size_t o = 0; o < outputs.size(); ++o)
            ASSERT_EQ(out[o], want[o].get(r))
                << "slots=" << GetParam() << " row=" << r << " out="
                << outputs[o].name;
    }
}

INSTANTIATE_TEST_SUITE_P(Slots, SlotSweep,
                         ::testing::Values(4, 6, 8, 12, 16, 32, 64));

TEST(PartitionStressTest, ProgramsRespectSlotBudgetWhenFeasible)
{
    // A narrow transform (2 inputs) fits the register file, so the
    // partitioner must really split it across PEs under a small slot
    // budget rather than falling back to one wide PE.
    AquomanConfig cfg;
    cfg.peInstructionSlots = 6;
    auto rev = mul(col("c"), sub(litDec("1.00"), col("d")));
    std::vector<NamedExpr> outs = {
        {"o1", rev},
        {"o2", mul(rev, litDec("2.00"))},
        {"o3", add(mul(rev, litDec("3.00")), litDec("1.00"))}};
    TransformResult tr = compileTransform(outs, schema(), cfg, true);
    ASSERT_TRUE(tr.ok());
    EXPECT_GE(tr.program->programs.size(), 2u);
    int oversize = 0;
    for (const auto &p : tr.program->programs)
        oversize += static_cast<int>(p.size()) > cfg.peInstructionSlots;
    // Oversized chunks appear only when one glued group cannot fit.
    EXPECT_LE(oversize, 1);
}

TEST(PartitionStressTest, TotalInstructionsGrowWithSplitting)
{
    AquomanConfig wide_cfg;
    wide_cfg.peInstructionSlots = 64;
    AquomanConfig tight_cfg;
    tight_cfg.peInstructionSlots = 6;
    auto outputs = wideTransform();
    TransformResult wide = compileTransform(outputs, schema(),
                                            wide_cfg, true);
    TransformResult tight = compileTransform(outputs, schema(),
                                             tight_cfg, true);
    ASSERT_TRUE(wide.ok() && tight.ok());
    // Forwarding PASS instructions are pure overhead of splitting (or
    // equal when both land in the wide fallback).
    EXPECT_GE(tight.program->totalInstructions,
              wide.program->totalInstructions);
}

TEST(PartitionStressTest, SingleColumnPassThroughIsOnePe)
{
    AquomanConfig cfg;
    TransformResult tr = compileTransform({{"x", col("a")}}, schema(),
                                          cfg, true);
    ASSERT_TRUE(tr.ok());
    EXPECT_EQ(tr.program->programs.size(), 1u);
    EXPECT_LE(tr.program->totalInstructions, 2);
    EXPECT_TRUE(tr.program->fitsFpgaProfile);
}

} // namespace
} // namespace aquoman
