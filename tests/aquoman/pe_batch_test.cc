/** @file
 * Differential tests for the columnar PE batch kernel: random programs
 * over all 13 opcodes (imm and operand-FIFO forms, 1-3 PE chains) must
 * produce bit-identical outputs to the scalar Pe interpreter, and the
 * scalar fallback must preserve cross-row state and panic behaviour.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include <cstdlib>

#include "aquoman/pe_batch.hh"
#include "common/date.hh"
#include "common/decimal.hh"
#include "common/rng.hh"
#include "common/simd.hh"

namespace aquoman {
namespace {

constexpr std::int64_t kInt64Min =
    std::numeric_limits<std::int64_t>::min();

/**
 * Run @p programs over @p inputs both ways — PeBatchKernel::run over
 * the whole batch vs. a fresh SystolicArray row at a time — and demand
 * bit-identical outputs. @p num_outputs is the per-row output count of
 * the last PE (the kernel cannot report it for fallback programs).
 */
void
checkBatchAgainstScalar(
    const std::vector<std::vector<PeInstruction>> &programs,
    const std::vector<std::vector<std::int64_t>> &inputs,
    int num_outputs)
{
    const std::int64_t n = inputs.empty()
        ? 0 : static_cast<std::int64_t>(inputs[0].size());

    PeBatchKernel kernel(programs, static_cast<int>(inputs.size()));
    if (kernel.vectorizable())
        ASSERT_EQ(kernel.numOutputs(), num_outputs);

    std::vector<const std::int64_t *> in_ptrs;
    for (const auto &col : inputs)
        in_ptrs.push_back(col.data());
    std::vector<std::vector<std::int64_t>> got(
        num_outputs, std::vector<std::int64_t>(n, 0));
    std::vector<std::int64_t *> out_ptrs;
    for (auto &col : got)
        out_ptrs.push_back(col.data());
    kernel.run(in_ptrs.data(), n, out_ptrs.data(), num_outputs);

    SystolicArray oracle(programs);
    std::vector<std::int64_t> row_in(inputs.size()), row_out;
    for (std::int64_t r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < inputs.size(); ++i)
            row_in[i] = inputs[i][r];
        oracle.runRow(row_in, row_out);
        ASSERT_GE(static_cast<int>(row_out.size()), num_outputs);
        for (int o = 0; o < num_outputs; ++o) {
            ASSERT_EQ(got[o][r], row_out[o])
                << "row " << r << " output " << o << " (vectorizable="
                << kernel.vectorizable() << ")";
        }
    }
}

// ---------------------------------------------------------------------
// Random program sweep
// ---------------------------------------------------------------------

/**
 * Generates random but well-formed PE chains. Well-formed means the
 * scalar interpreter never underflows a FIFO on any row: input pops are
 * bounded by the producer's per-row output count and operand pops only
 * happen after a push earlier in the same program. Value magnitudes are
 * tracked symbolically so multiplies never overflow (signed overflow is
 * UB, not a semantics to differential-test).
 */
class RandomProgramGen
{
  public:
    explicit RandomProgramGen(std::uint64_t seed) : rng(seed) {}

    /** Max |value| of any generated input. */
    static constexpr std::int64_t kInputBound = 1000000;
    /** Operand-magnitude ceiling; candidates exceeding it are skipped. */
    static constexpr double kMaxBound = 4e15;

    std::vector<std::vector<PeInstruction>>
    generate(int num_pes, int num_inputs, int *num_outputs)
    {
        std::vector<std::vector<PeInstruction>> programs;
        // Bounds of the FIFO entries feeding the next PE.
        std::vector<double> fifo(num_inputs,
                                 static_cast<double>(kInputBound));
        for (int p = 0; p < num_pes; ++p)
            programs.push_back(generatePe(fifo));
        *num_outputs = static_cast<int>(fifo.size());
        return programs;
    }

  private:
    std::vector<PeInstruction>
    generatePe(std::vector<double> &fifo)
    {
        std::vector<PeInstruction> prog;
        std::vector<double> out;
        // reg -> bound of the value written this row. Registers never
        // written read as power-on zero; reads of not-yet-written
        // registers are avoided so random programs have no carried
        // state (those paths get targeted tests below).
        std::vector<double> reg_bound(8, 0.0);
        std::vector<int> written;
        std::size_t in_pos = 0;
        std::int64_t op_reg_depth = 0;
        double op_reg_bound = 0.0;

        auto pick_source = [&](double *bound) -> int {
            // Prefer the input FIFO while entries remain, else a
            // register written this row, else an unwritten register.
            bool can_pop = in_pos < fifo.size();
            if (can_pop && (written.empty() || rng.uniform(0, 2) != 0)) {
                *bound = fifo[in_pos++];
                return 0;
            }
            if (!written.empty()) {
                int r = written[rng.uniform(
                    0, static_cast<std::int64_t>(written.size()) - 1)];
                *bound = reg_bound[r];
                return r;
            }
            *bound = 0.0;
            return 7; // never written: reads as zero on every row
        };
        auto write_dest = [&](double bound) -> int {
            if (rng.uniform(0, 2) == 0) {
                out.push_back(bound);
                return 0;
            }
            int r = static_cast<int>(rng.uniform(1, 6));
            if (std::find(written.begin(), written.end(), r)
                    == written.end())
                written.push_back(r);
            reg_bound[r] = bound;
            return r;
        };
        // A leftover operand pushed late in row r is popped early in
        // row r+1, so a pop's bound at generation time can understate
        // the popped value. Operand-FIFO arithmetic is therefore
        // limited to ops whose result bound does not depend on the
        // popped operand (Div, DivScaled, comparisons); growing ops
        // (Add/Sub/Mul/MulScaled) always take immediates.
        auto op_can_pop = [](PeOpcode op) {
            return op == PeOpcode::Div || op == PeOpcode::DivScaled
                || op == PeOpcode::Eq || op == PeOpcode::Lt
                || op == PeOpcode::Gt;
        };

        const int len = static_cast<int>(rng.uniform(2, 8));
        for (int i = 0; i < len; ++i) {
            const int choice = static_cast<int>(rng.uniform(0, 12));
            const auto op = static_cast<PeOpcode>(choice);
            double src_bound = 0.0;
            switch (op) {
              case PeOpcode::Pass: {
                int rs = pick_source(&src_bound);
                prog.push_back({op, write_dest(src_bound), rs, false, 0});
                break;
              }
              case PeOpcode::Copy: {
                int rs = pick_source(&src_bound);
                op_reg_depth++;
                op_reg_bound = std::max(op_reg_bound, src_bound);
                prog.push_back({op, write_dest(src_bound), rs, false, 0});
                break;
              }
              case PeOpcode::Store: {
                int rs = pick_source(&src_bound);
                op_reg_depth++;
                op_reg_bound = std::max(op_reg_bound, src_bound);
                prog.push_back({op, 0, rs, false, 0});
                break;
              }
              case PeOpcode::Year: {
                int rs = pick_source(&src_bound);
                prog.push_back({op, write_dest(1e7), rs, false, 0});
                break;
              }
              default: {
                int rs = pick_source(&src_bound);
                bool use_imm = op_reg_depth == 0 || !op_can_pop(op)
                    || rng.uniform(0, 1);
                std::int64_t imm =
                    use_imm ? rng.uniform(-1000, 1000) : 0;
                double res = resultBound(op, src_bound, 1000.0);
                if (res > kMaxBound) {
                    // Comparisons always stay in bounds; demote.
                    const PeOpcode safe[] = {PeOpcode::Eq, PeOpcode::Lt,
                                             PeOpcode::Gt};
                    prog.push_back({safe[rng.uniform(0, 2)],
                                    write_dest(1.0), rs, use_imm, imm});
                } else {
                    prog.push_back({op, write_dest(res), rs, use_imm,
                                    imm});
                }
                if (!use_imm)
                    op_reg_depth--;
                break;
              }
            }
        }
        // Leftover operands make the kernel fall back (still compared
        // bit-for-bit); drain them half the time to also exercise the
        // vectorized path.
        while (op_reg_depth > 0 && rng.uniform(0, 1)) {
            double src_bound = 0.0;
            int rs = pick_source(&src_bound);
            double res = src_bound + op_reg_bound;
            prog.push_back({PeOpcode::Add, 0, rs, false, 0});
            out.push_back(res);
            op_reg_depth--;
        }
        // Guarantee the next PE (and the test) sees at least one value.
        if (out.empty()) {
            double src_bound = 0.0;
            int rs = pick_source(&src_bound);
            prog.push_back({PeOpcode::Pass, 0, rs, false, 0});
            out.push_back(src_bound);
        }
        fifo = std::move(out);
        return prog;
    }

    /** Upper bound of |op(a, b)| given operand bounds (doubles: the
     * bound only has to be conservative, not exact). */
    static double
    resultBound(PeOpcode op, double a, double b)
    {
        switch (op) {
          case PeOpcode::Add:
          case PeOpcode::Sub: return a + b;
          case PeOpcode::Mul: return a * b;
          case PeOpcode::Div: return a; // |a/b| <= |a|; 0 and MIN/-1 safe
          case PeOpcode::MulScaled: return a * b; // intermediate a*b
          case PeOpcode::DivScaled: return a * 100.0;
          default: return 1.0; // comparisons
        }
    }

    Rng rng;
};

class PeBatchProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PeBatchProperty, RandomProgramsMatchScalarOracle)
{
    Rng rng(GetParam() * 6271 + 17);
    RandomProgramGen gen(GetParam() * 104729 + 5);

    const int num_pes = static_cast<int>(rng.uniform(1, 3));
    const int num_inputs = static_cast<int>(rng.uniform(1, 4));
    int num_outputs = 0;
    auto programs = gen.generate(num_pes, num_inputs, &num_outputs);

    const std::int64_t rows = rng.uniform(1, 300);
    std::vector<std::vector<std::int64_t>> inputs(num_inputs);
    for (auto &col : inputs) {
        col.resize(rows);
        for (auto &v : col) {
            v = rng.uniform(-RandomProgramGen::kInputBound,
                            RandomProgramGen::kInputBound);
        }
    }
    checkBatchAgainstScalar(programs, inputs, num_outputs);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PeBatchProperty,
                         ::testing::Range(0, 64));

// ---------------------------------------------------------------------
// Targeted edge cases
// ---------------------------------------------------------------------

TEST(PeBatchTest, DivEdgeCasesMatchScalar)
{
    // out <= in0 / in1 via the operand FIFO (register form of Div).
    std::vector<std::vector<PeInstruction>> programs =
        {{{PeOpcode::Pass, 1, 0, false, 0},
          {PeOpcode::Store, 0, 0, false, 0},
          {PeOpcode::Div, 0, 1, false, 0}}};
    std::vector<std::vector<std::int64_t>> inputs = {
        {100, 7, kInt64Min, kInt64Min, 42, 0, -100, kInt64Min},
        {7, 0, -1, 1, -6, 0, kInt64Min, 2}};
    checkBatchAgainstScalar(programs, inputs, 1);
}

TEST(PeBatchTest, DivByZeroImmediateIsZero)
{
    std::vector<std::vector<PeInstruction>> programs =
        {{{PeOpcode::Div, 0, 0, true, 0}}};
    std::vector<std::vector<std::int64_t>> inputs =
        {{5, -5, 0, kInt64Min}};
    checkBatchAgainstScalar(programs, inputs, 1);
}

TEST(PeBatchTest, DivScaledEdgeCasesMatchScalar)
{
    // DivScaled's zero-divisor guard lives in decimalDiv; both the
    // immediate-zero and operand-zero forms must agree with it.
    std::vector<std::vector<PeInstruction>> programs =
        {{{PeOpcode::Pass, 1, 0, false, 0},
          {PeOpcode::Store, 0, 0, false, 0},
          {PeOpcode::DivScaled, 0, 1, false, 0},
          {PeOpcode::DivScaled, 0, 1, true, 0}}};
    std::vector<std::vector<std::int64_t>> inputs = {
        {10000, -10000, 0, 123456, 1},
        {0, 700, 0, -95, 3}};
    checkBatchAgainstScalar(programs, inputs, 2);
    EXPECT_EQ(decimalDiv(10000, 0), 0);
}

TEST(PeBatchTest, MulScaledMatchesDecimalHelper)
{
    std::vector<std::vector<PeInstruction>> programs =
        {{{PeOpcode::Pass, 1, 0, false, 0},
          {PeOpcode::MulScaled, 0, 1, true, 95},
          {PeOpcode::MulScaled, 0, 1, true, -105}}};
    std::vector<std::vector<std::int64_t>> inputs =
        {{10000, -10000, 0, 99, -1}};
    checkBatchAgainstScalar(programs, inputs, 2);
}

TEST(PeBatchTest, YearBoundaryDatesMatchScalar)
{
    std::vector<std::vector<PeInstruction>> programs =
        {{{PeOpcode::Year, 0, 0, false, 0}}};
    std::vector<std::vector<std::int64_t>> inputs = {{
        0,                            // 1970-01-01
        -1,                           // 1969-12-31
        365,                          // 1971-01-01
        daysFromCivil(2000, 2, 29),   // leap day
        daysFromCivil(1999, 12, 31),
        daysFromCivil(2000, 1, 1),
        daysFromCivil(1600, 3, 1),
        -719468,                      // 0000-03-01 (era boundary)
        -719469,                      // day before the era boundary
        daysFromCivil(1992, 1, 1),
        daysFromCivil(1998, 12, 31),
    }};
    checkBatchAgainstScalar(programs, inputs, 1);
}

TEST(PeBatchTest, AllImmediateComparisonForms)
{
    std::vector<std::vector<PeInstruction>> programs =
        {{{PeOpcode::Pass, 1, 0, false, 0},
          {PeOpcode::Eq, 0, 1, true, 10},
          {PeOpcode::Lt, 0, 1, true, 10},
          {PeOpcode::Gt, 0, 1, true, 10}}};
    std::vector<std::vector<std::int64_t>> inputs =
        {{9, 10, 11, kInt64Min, -10}};
    checkBatchAgainstScalar(programs, inputs, 3);
}

TEST(PeBatchTest, TwoPeChainVectorizes)
{
    // PE0: t = in + 1; PE1: out = t * 2 — the pe_test chain, batched.
    std::vector<std::vector<PeInstruction>> programs =
        {{{PeOpcode::Pass, 1, 0, false, 0},
          {PeOpcode::Add, 2, 1, true, 1},
          {PeOpcode::Pass, 0, 2, false, 0}},
         {{PeOpcode::Pass, 1, 0, false, 0},
          {PeOpcode::Mul, 0, 1, true, 2}}};
    PeBatchKernel kernel(programs, 1);
    EXPECT_TRUE(kernel.vectorizable());
    std::vector<std::vector<std::int64_t>> inputs = {{20, -1, 0, 1000}};
    checkBatchAgainstScalar(programs, inputs, 1);
}

TEST(PeBatchTest, UnwrittenRegisterReadsAsZeroAndVectorizes)
{
    // rf[5] is never written: it reads as power-on zero on every row,
    // which is row-invariant and must not defeat vectorization.
    std::vector<std::vector<PeInstruction>> programs =
        {{{PeOpcode::Pass, 1, 0, false, 0},
          {PeOpcode::Store, 0, 5, false, 0},
          {PeOpcode::Add, 0, 1, false, 0}}};
    PeBatchKernel kernel(programs, 1);
    EXPECT_TRUE(kernel.vectorizable());
    std::vector<std::vector<std::int64_t>> inputs = {{7, -3, 0}};
    checkBatchAgainstScalar(programs, inputs, 1);
}

TEST(PeBatchTest, LoopCarriedRegisterFallsBackBitIdentical)
{
    // Running sum: r1 is read before its write of the row, so the value
    // comes from the previous row — not vectorizable, and the fallback
    // must reproduce the scalar accumulation exactly.
    std::vector<std::vector<PeInstruction>> programs =
        {{{PeOpcode::Store, 0, 0, false, 0},
          {PeOpcode::Add, 1, 1, false, 0},
          {PeOpcode::Pass, 0, 1, false, 0}}};
    PeBatchKernel kernel(programs, 1);
    EXPECT_FALSE(kernel.vectorizable());
    std::vector<std::vector<std::int64_t>> inputs =
        {{5, 10, -3, 100, 0, 7}};
    checkBatchAgainstScalar(programs, inputs, 1);
}

TEST(PeBatchTest, FallbackPreservesStateAcrossRunCalls)
{
    // The running-sum program again, but split across two run() calls
    // on one kernel: the fallback interpreter's register state must
    // carry over, matching one continuous scalar execution.
    std::vector<std::vector<PeInstruction>> programs =
        {{{PeOpcode::Store, 0, 0, false, 0},
          {PeOpcode::Add, 1, 1, false, 0},
          {PeOpcode::Pass, 0, 1, false, 0}}};
    PeBatchKernel kernel(programs, 1);
    ASSERT_FALSE(kernel.vectorizable());

    const std::vector<std::int64_t> all = {3, 1, 4, 1, 5, 9, 2, 6};
    std::vector<std::int64_t> got(all.size(), 0);
    const std::int64_t *in0 = all.data();
    std::int64_t *out0 = got.data();
    kernel.run(&in0, 3, &out0, 1);
    const std::int64_t *in1 = all.data() + 3;
    std::int64_t *out1 = got.data() + 3;
    kernel.run(&in1, static_cast<std::int64_t>(all.size()) - 3, &out1, 1);

    SystolicArray oracle(programs);
    std::vector<std::int64_t> row_out;
    for (std::size_t r = 0; r < all.size(); ++r) {
        oracle.runRow({all[r]}, row_out);
        ASSERT_EQ(got[r], row_out[0]) << "row " << r;
    }
}

TEST(PeBatchTest, LeftoverOperandFallsBackBitIdentical)
{
    // Copy pushes an operand that is never popped this row; the next
    // row pops it, so the program is inherently cross-row.
    std::vector<std::vector<PeInstruction>> programs =
        {{{PeOpcode::Copy, 1, 0, false, 0},
          {PeOpcode::Pass, 0, 1, false, 0}}};
    PeBatchKernel kernel(programs, 1);
    EXPECT_FALSE(kernel.vectorizable());
    std::vector<std::vector<std::int64_t>> inputs = {{1, 2, 3, 4}};
    checkBatchAgainstScalar(programs, inputs, 1);
}

TEST(PeBatchTest, InputUnderflowPanicsLikeScalar)
{
    // Two pops from a one-column input: the scalar interpreter panics,
    // and the kernel must fall back and panic identically.
    std::vector<std::vector<PeInstruction>> programs =
        {{{PeOpcode::Pass, 0, 0, false, 0},
          {PeOpcode::Pass, 0, 0, false, 0}}};
    PeBatchKernel kernel(programs, 1);
    EXPECT_FALSE(kernel.vectorizable());

    std::vector<std::int64_t> col = {1, 2};
    const std::int64_t *in = col.data();
    std::vector<std::int64_t> sink(col.size(), 0);
    std::int64_t *out = sink.data();
    EXPECT_THROW(kernel.run(&in, 2, &out, 1), PanicError);

    SystolicArray oracle(programs);
    std::vector<std::int64_t> row_out;
    EXPECT_THROW(oracle.runRow({1}, row_out), PanicError);
}

TEST(PeBatchTest, EmptyBatchIsANoop)
{
    std::vector<std::vector<PeInstruction>> programs =
        {{{PeOpcode::Pass, 0, 0, false, 0}}};
    PeBatchKernel kernel(programs, 1);
    ASSERT_TRUE(kernel.vectorizable());
    const std::int64_t *in = nullptr;
    std::int64_t *out = nullptr;
    kernel.run(&in, 0, &out, 1); // must not touch the null buffers
}

// ---------------------------------------------------------------------
// Specialized-kernel matrix: every (opcode × operand shape) dispatch
// target against the scalar oracle, with edge-heavy inputs.
// ---------------------------------------------------------------------

/**
 * Input column for the matrix tests. @p extremes mixes in INT64_MIN
 * (the engine's raw NULL encoding), -1, 0 and large magnitudes — only
 * legal for opcodes whose semantics are total over int64 (compares,
 * peDiv); arithmetic opcodes get bounded values so no case relies on
 * signed-overflow behaviour.
 */
std::vector<std::int64_t>
matrixColumn(std::int64_t n, std::uint64_t seed, bool extremes)
{
    Rng rng(seed);
    std::vector<std::int64_t> v(n);
    for (auto &x : v) {
        if (extremes) {
            switch (rng.uniform(0, 5)) {
              case 0: x = kInt64Min; break;
              case 1: x = -1; break;
              case 2: x = 0; break;
              case 3: x = std::numeric_limits<std::int64_t>::max(); break;
              default: x = rng.uniform(-1000000, 1000000); break;
            }
        } else {
            x = rng.uniform(-1000000, 1000000);
        }
    }
    return v;
}

TEST(PeBatchKernelMatrix, EveryOpcodeAndShapeMatchesScalar)
{
    struct Case
    {
        PeOpcode op;
        bool extremes; ///< opcode is total over int64 (incl. MIN/-1)
        std::int64_t imm;
    };
    const Case cases[] = {
        {PeOpcode::Add, false, 37},
        {PeOpcode::Sub, false, -41},
        {PeOpcode::Mul, false, 7},
        {PeOpcode::Div, true, -1}, // peDiv: /0 -> 0, MIN/-1 -> MIN
        {PeOpcode::Eq, true, 0},
        {PeOpcode::Lt, true, 12},
        {PeOpcode::Gt, true, -12},
        {PeOpcode::MulScaled, false, 95},
        {PeOpcode::DivScaled, false, 0}, // decimalDiv: /0 -> 0
    };
    constexpr std::int64_t kRows = 257; // odd: exercises vector tails
    for (const Case &c : cases) {
        SCOPED_TRACE(testing::Message()
                     << "opcode " << static_cast<int>(c.op));
        auto a = matrixColumn(kRows, 101 + static_cast<int>(c.op),
                              c.extremes);
        auto b = matrixColumn(kRows, 202 + static_cast<int>(c.op),
                              c.extremes);

        // Col-col: both operands popped from input columns.
        checkBatchAgainstScalar(
            {{{PeOpcode::Pass, 1, 0, false, 0},
              {PeOpcode::Store, 0, 0, false, 0},
              {c.op, 0, 1, false, 0}}},
            {a, b}, 1);
        // Col-const: immediate operand baked into the kernel.
        checkBatchAgainstScalar(
            {{{PeOpcode::Pass, 1, 0, false, 0},
              {c.op, 0, 1, true, c.imm}}},
            {a}, 1);
        // Const-col: rf[7] never written reads as constant zero while
        // the operand register holds the column (commuted dispatch).
        checkBatchAgainstScalar(
            {{{PeOpcode::Store, 0, 0, false, 0},
              {c.op, 0, 7, false, 0}}},
            {a}, 1);
    }
    // Year is unary over day counts.
    std::vector<std::int64_t> days(257);
    Rng rng(7);
    for (auto &d : days)
        d = rng.uniform(-100000, 100000);
    checkBatchAgainstScalar({{{PeOpcode::Year, 0, 0, false, 0}}},
                            {days}, 1);
}

TEST(PeBatchKernelMatrix, Avx2AndGenericKernelsBitIdentical)
{
    // Kernel dispatch happens at construction, so build one kernel per
    // mode and demand identical outputs. Covers every opcode with an
    // AVX2 variant (Add/Sub/Eq/Lt/Gt) in col-col and col-const shapes.
    const bool host_avx2 = avx2Available();
    std::vector<std::vector<PeInstruction>> programs =
        {{{PeOpcode::Pass, 1, 0, false, 0},
          {PeOpcode::Store, 0, 0, false, 0},
          {PeOpcode::Add, 2, 1, false, 0},
          {PeOpcode::Sub, 3, 2, true, 17},
          {PeOpcode::Eq, 0, 3, true, 4},
          {PeOpcode::Lt, 0, 3, true, 4},
          {PeOpcode::Store, 0, 2, false, 0}, // opReg <= rf[2]
          {PeOpcode::Gt, 0, 1, false, 0}}};
    constexpr std::int64_t kRows = 1027;
    auto a = matrixColumn(kRows, 31, false);
    auto b = matrixColumn(kRows, 32, false);
    const std::int64_t *ins[2] = {a.data(), b.data()};

    auto run_with = [&](bool mode) {
        setAvx2Enabled(mode);
        PeBatchKernel kernel(programs, 2);
        EXPECT_TRUE(kernel.vectorizable());
        std::vector<std::vector<std::int64_t>> out(
            3, std::vector<std::int64_t>(kRows, 0));
        std::int64_t *outs[3] = {out[0].data(), out[1].data(),
                                 out[2].data()};
        kernel.run(ins, kRows, outs, 3);
        return out;
    };
    auto generic = run_with(false);
    auto vec = run_with(host_avx2);
    setAvx2Enabled(host_avx2);
    EXPECT_EQ(generic, vec);
}

TEST(PeBatchTest, MorselOverrideClampsAndRestores)
{
    setPeBatchMorselRows(2048);
    EXPECT_EQ(peBatchMorselRows(), 2048);
    setPeBatchMorselRows(1); // below floor
    EXPECT_EQ(peBatchMorselRows(), 1024);
    setPeBatchMorselRows(std::int64_t{1} << 22); // above ceiling
    EXPECT_EQ(peBatchMorselRows(), std::int64_t{1} << 20);
    setPeBatchMorselRows(0); // back to env/default
    if (std::getenv("AQUOMAN_MORSEL") == nullptr) {
        EXPECT_EQ(peBatchMorselRows(), kPeBatchRows);
    }
}

} // namespace
} // namespace aquoman
