/** @file Unit tests for device DRAM management (Sec. VI-D). */

#include <gtest/gtest.h>

#include "aquoman/memory_manager.hh"

namespace aquoman {
namespace {

TEST(DeviceMemoryManagerTest, AllocateFreeAndPeak)
{
    DeviceMemoryManager mm(1000);
    EXPECT_TRUE(mm.allocate("a", 400));
    EXPECT_TRUE(mm.allocate("b", 500));
    EXPECT_EQ(mm.usedBytes(), 900);
    EXPECT_EQ(mm.peakBytes(), 900);
    mm.free("a");
    EXPECT_EQ(mm.usedBytes(), 500);
    EXPECT_EQ(mm.peakBytes(), 900); // peak is sticky
    EXPECT_TRUE(mm.allocate("c", 450));
    EXPECT_EQ(mm.peakBytes(), 950);
}

TEST(DeviceMemoryManagerTest, OverflowRefusesWithoutStateChange)
{
    DeviceMemoryManager mm(100);
    EXPECT_TRUE(mm.allocate("a", 80));
    EXPECT_FALSE(mm.allocate("b", 30)); // would exceed
    EXPECT_EQ(mm.usedBytes(), 80);
    EXPECT_FALSE(mm.has("b"));
    EXPECT_TRUE(mm.allocate("b", 20)); // exact fit OK
    EXPECT_EQ(mm.usedBytes(), 100);
}

TEST(DeviceMemoryManagerTest, GrowRespectsCapacity)
{
    DeviceMemoryManager mm(100);
    ASSERT_TRUE(mm.allocate("stream", 10));
    EXPECT_TRUE(mm.grow("stream", 50));
    EXPECT_EQ(mm.slotBytes("stream"), 60);
    EXPECT_FALSE(mm.grow("stream", 50)); // 110 > 100
    EXPECT_EQ(mm.slotBytes("stream"), 60);
}

TEST(DeviceMemoryManagerTest, DuplicateSlotPanics)
{
    DeviceMemoryManager mm(100);
    ASSERT_TRUE(mm.allocate("x", 10));
    EXPECT_THROW(mm.allocate("x", 10), PanicError);
    EXPECT_THROW(mm.free("missing"), PanicError);
}

TEST(DeviceMemoryManagerTest, ResetSemantics)
{
    DeviceMemoryManager mm(100);
    ASSERT_TRUE(mm.allocate("x", 60));
    mm.reset();
    EXPECT_EQ(mm.usedBytes(), 0);
    EXPECT_EQ(mm.peakBytes(), 60); // reset keeps the peak
    mm.resetPeak();
    EXPECT_EQ(mm.peakBytes(), 0);
}

} // namespace
} // namespace aquoman
