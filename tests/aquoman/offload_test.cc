/** @file
 * End-to-end integration tests: every TPC-H query executed through the
 * AQUOMAN device path produces exactly the baseline engine's answer,
 * and the offload behaviour (device/host stage split, suspensions,
 * spill-over) matches the paper's published classification.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "aquoman/device.hh"
#include "aquoman/perf_model.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

namespace aquoman {
namespace {

constexpr double kSf = 0.01;

/** Canonical multiset-of-rows form for result comparison. */
std::vector<std::string>
canonicalRows(const RelTable &t)
{
    std::vector<std::string> rows;
    for (std::int64_t r = 0; r < t.numRows(); ++r) {
        std::ostringstream os;
        for (int c = 0; c < t.numColumns(); ++c) {
            const RelColumn &col = t.col(c);
            if (col.type == ColumnType::Varchar)
                os << col.str(r);
            else
                os << col.get(r);
            os << "|";
        }
        rows.push_back(os.str());
    }
    std::sort(rows.begin(), rows.end());
    return rows;
}

class OffloadTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        tpch::TpchConfig cfg;
        cfg.scaleFactor = kSf;
        db = new tpch::TpchDatabase(tpch::TpchDatabase::generate(cfg));
        FlashConfig fc;
        fc.capacityBytes = 4ll << 30;
        dev = new FlashDevice(fc);
        sw = new ControllerSwitch(*dev);
        store = new TableStore(*sw);
        catalog = new Catalog();
        db->installInto(*catalog, *store);
    }

    static void
    TearDownTestSuite()
    {
        delete catalog;
        delete store;
        delete sw;
        delete dev;
        delete db;
        catalog = nullptr;
    }

    static OffloadedQueryResult
    runAquoman(int q, AquomanConfig cfg = AquomanConfig::paper40())
    {
        AquomanDevice device(*catalog, *sw, cfg);
        return device.runQuery(tpch::tpchQuery(q, kSf));
    }

    static RelTable
    runBaseline(int q, EngineMetrics *metrics = nullptr)
    {
        Executor ex(*catalog);
        RelTable out = ex.run(tpch::tpchQuery(q, kSf));
        if (metrics)
            *metrics = ex.metrics();
        return out;
    }

    static tpch::TpchDatabase *db;
    static FlashDevice *dev;
    static ControllerSwitch *sw;
    static TableStore *store;
    static Catalog *catalog;
};

tpch::TpchDatabase *OffloadTest::db = nullptr;
FlashDevice *OffloadTest::dev = nullptr;
ControllerSwitch *OffloadTest::sw = nullptr;
TableStore *OffloadTest::store = nullptr;
Catalog *OffloadTest::catalog = nullptr;

class AllQueriesEquivalent : public OffloadTest,
                             public ::testing::WithParamInterface<int>
{
};

/**
 * The central correctness property of the repository: the offloaded
 * execution (Row Selector masks, PE programs, Swissknife group-by with
 * spill-over, probe/sort-merge joins, host suspension) computes exactly
 * what the software baseline computes, for every TPC-H query.
 */
TEST_P(AllQueriesEquivalent, DeviceResultEqualsBaseline)
{
    int q = GetParam();
    RelTable want = runBaseline(q);
    OffloadedQueryResult got = runAquoman(q);
    EXPECT_EQ(got.result.numRows(), want.numRows()) << "q" << q;
    EXPECT_EQ(canonicalRows(got.result), canonicalRows(want))
        << "q" << q;
}

INSTANTIATE_TEST_SUITE_P(Tpch, AllQueriesEquivalent,
                         ::testing::ValuesIn(tpch::allQueryNumbers()));

TEST_F(OffloadTest, ClassificationMatchesPaper)
{
    // Paper Sec. VIII-B: 14 fully offloaded; {11,17,18,22} suspended at
    // a mid-plan aggregate; {9,13,16,20} not offloaded (regex).
    std::set<int> expect_none = {9, 13, 16, 20};
    std::set<int> expect_partial = {11, 17, 18, 22};
    HostModel host(HostConfig::large());
    for (int q : tpch::allQueryNumbers()) {
        EngineMetrics base;
        runBaseline(q, &base);
        OffloadedQueryResult r = runAquoman(q);
        SystemEvaluation ev = evaluateOffload(base, r.stats, host);
        OffloadClass want = expect_none.count(q) ? OffloadClass::None
            : expect_partial.count(q) ? OffloadClass::Partial
                                      : OffloadClass::Full;
        EXPECT_EQ(offloadClassName(ev.offloadClass),
                  offloadClassName(want))
            << "q" << q << " fraction=" << ev.offloadFraction
            << " devStages=" << r.stats.deviceStages.size()
            << " hostStages=" << r.stats.hostStages.size()
            << (r.stats.hostStages.empty()
                    ? ""
                    : " firstReason=" + r.stats.hostStages[0].second);
    }
}

TEST_F(OffloadTest, RegexQueriesNeverTouchTheDevice)
{
    for (int q : {9, 13, 16, 20}) {
        OffloadedQueryResult r = runAquoman(q);
        EXPECT_TRUE(r.compilation.regexForcedHost) << "q" << q;
        EXPECT_TRUE(r.stats.deviceStages.empty()) << "q" << q;
        EXPECT_EQ(r.stats.deviceFlashBytes, 0) << "q" << q;
    }
}

TEST_F(OffloadTest, Q1RunsEntirelyOnDeviceGroupBy)
{
    OffloadedQueryResult r = runAquoman(1);
    ASSERT_EQ(r.stats.deviceStages.size(), 1u);
    EXPECT_GT(r.stats.transformedRows, 0);
    EXPECT_GT(r.stats.deviceFlashBytes, 0);
    // Four groups, well within 1024 buckets: no spill-over.
    EXPECT_EQ(r.stats.spillGroups, 0);
}

TEST_F(OffloadTest, Q6UsesRowSelectorOnly)
{
    OffloadedQueryResult r = runAquoman(6);
    EXPECT_EQ(r.stats.deviceStages.size(), 1u);
    // The task log must show CPE predicates in use.
    bool saw_selector = false;
    for (const auto &line : r.stats.taskLog)
        saw_selector |= line.find("rowSel") != std::string::npos;
    EXPECT_TRUE(saw_selector);
}

TEST_F(OffloadTest, MidPlanAggregateSuspends)
{
    OffloadedQueryResult r = runAquoman(17);
    // avg_qty runs on the device; threshold and the final join are
    // suspended to the host (Sec. VI-E condition 1).
    EXPECT_FALSE(r.stats.deviceStages.empty());
    EXPECT_FALSE(r.stats.hostStages.empty());
    bool saw_cond1 = false;
    for (const auto &[stage, reason] : r.stats.hostStages)
        saw_cond1 |= reason.find("not buffered") != std::string::npos;
    EXPECT_TRUE(saw_cond1);
}

TEST_F(OffloadTest, Q18SpillsMassively)
{
    OffloadedQueryResult r = runAquoman(18);
    // Grouping by orderkey: group count far exceeds 1024 buckets.
    EXPECT_GT(r.stats.spillGroups, 1024);
}

TEST_F(OffloadTest, TinyDramForcesRuntimeSuspension)
{
    AquomanConfig tiny = AquomanConfig::paper40();
    tiny.dramBytes = 2 << 10; // 2KB: joins cannot hold tuple tables
    RelTable want = runBaseline(5);
    OffloadedQueryResult r = runAquoman(5, tiny);
    EXPECT_TRUE(r.stats.suspendedDram);
    // Suspension falls back to the host and stays correct.
    EXPECT_EQ(canonicalRows(r.result), canonicalRows(want));
}

TEST_F(OffloadTest, DeviceMemoryScalesWithConfig)
{
    OffloadedQueryResult full = runAquoman(5);
    EXPECT_FALSE(full.stats.suspendedDram);
    EXPECT_GT(full.stats.deviceDramPeak, 0);
    EXPECT_LE(full.stats.deviceDramPeak,
              AquomanConfig::paper40().dramBytes);
}

TEST_F(OffloadTest, TaskLogMentionsJoinPaths)
{
    OffloadedQueryResult r = runAquoman(3);
    bool saw_join = false;
    for (const auto &line : r.stats.taskLog)
        saw_join |= line.find("join") != std::string::npos;
    EXPECT_TRUE(saw_join);
}

TEST_F(OffloadTest, CpuSavingIsSubstantialForOffloadedQueries)
{
    HostModel host(HostConfig::large());
    EngineMetrics base;
    runBaseline(1, &base);
    OffloadedQueryResult r = runAquoman(1);
    SystemEvaluation ev = evaluateOffload(base, r.stats, host);
    EXPECT_GT(ev.cpuSaving, 0.9);
}

} // namespace
} // namespace aquoman
