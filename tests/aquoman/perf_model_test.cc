/** @file Unit tests for the system-level evaluation / classification. */

#include <gtest/gtest.h>

#include "aquoman/perf_model.hh"

namespace aquoman {
namespace {

EngineMetrics
baselineTrace()
{
    EngineMetrics m;
    m.rowOps = 1e11;
    m.flashBytesRead = 100ll << 30;
    m.touchedBaseBytes = 100ll << 30;
    return m;
}

TEST(PerfModelTest, FullyOffloadedQuery)
{
    AquomanRunStats aq;
    aq.deviceSeconds = 40.0;
    aq.deviceStages = {"out"};
    aq.hostResidual.rowOps = 1e6; // only the final sort
    SystemEvaluation ev = evaluateOffload(baselineTrace(), aq,
                                          HostModel(HostConfig::large()));
    EXPECT_EQ(ev.offloadClass, OffloadClass::Full);
    EXPECT_GT(ev.offloadFraction, 0.99);
    EXPECT_GT(ev.cpuSaving, 0.99);
    EXPECT_GT(ev.speedup, 1.0);
}

TEST(PerfModelTest, HostOnlyQueryIsNone)
{
    AquomanRunStats aq;
    aq.hostResidual = baselineTrace();
    aq.hostStages = {{"out", "regex"}};
    SystemEvaluation ev = evaluateOffload(baselineTrace(), aq,
                                          HostModel(HostConfig::large()));
    EXPECT_EQ(ev.offloadClass, OffloadClass::None);
    EXPECT_NEAR(ev.speedup, 1.0, 0.05);
    EXPECT_NEAR(ev.cpuSaving, 0.0, 0.01);
}

TEST(PerfModelTest, SuspendedWithBigHostTailIsPartial)
{
    AquomanRunStats aq;
    aq.deviceSeconds = 20.0;
    aq.deviceStages = {"s1"};
    aq.hostStages = {{"out", "mid-plan aggregate"}};
    aq.hostResidual.rowOps = 5e10; // half the baseline work remains
    SystemEvaluation ev = evaluateOffload(baselineTrace(), aq,
                                          HostModel(HostConfig::large()));
    EXPECT_EQ(ev.offloadClass, OffloadClass::Partial);
}

TEST(PerfModelTest, SuspendedWithSpillIsPartialEvenWhenFast)
{
    AquomanRunStats aq;
    aq.deviceSeconds = 40.0;
    aq.deviceStages = {"s1"};
    aq.hostStages = {{"out", "mid-plan aggregate"}};
    aq.hostResidual.rowOps = 1e6;
    aq.spillGroups = 5000; // q11-style per-group spill to the host
    SystemEvaluation ev = evaluateOffload(baselineTrace(), aq,
                                          HostModel(HostConfig::large()));
    EXPECT_EQ(ev.offloadClass, OffloadClass::Partial);
}

TEST(PerfModelTest, SuspendedWithTinyCleanTailIsFull)
{
    // q15's shape: host finishes a trivial max over the aggregate.
    AquomanRunStats aq;
    aq.deviceSeconds = 40.0;
    aq.deviceStages = {"revenue"};
    aq.hostStages = {{"maxrev", "aggregate output"}};
    aq.hostResidual.rowOps = 1e6;
    SystemEvaluation ev = evaluateOffload(baselineTrace(), aq,
                                          HostModel(HostConfig::large()));
    EXPECT_EQ(ev.offloadClass, OffloadClass::Full);
}

TEST(PerfModelTest, DmaCountsAgainstResidualTime)
{
    AquomanRunStats aq;
    aq.deviceSeconds = 1.0;
    aq.deviceStages = {"s"};
    aq.dmaBytes = 24ll << 30; // 10s at 2.4GB/s
    SystemEvaluation ev = evaluateOffload(baselineTrace(), aq,
                                          HostModel(HostConfig::large()));
    EXPECT_GT(ev.hostResidualSeconds, 9.0);
    EXPECT_LT(ev.offloadFraction, 0.15);
}

} // namespace
} // namespace aquoman
