/** @file
 * Unit and property tests for the SQL Swissknife accelerators: bitonic
 * sorter, VCAS, TopK chain, Merger/Intersection and the Aggregate
 * Group-By (including its spill-over behaviour), plus the streaming
 * sorter's functional and Table V timing behaviour.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "aquoman/swissknife/bitonic.hh"
#include "aquoman/swissknife/groupby.hh"
#include "aquoman/swissknife/merger.hh"
#include "aquoman/swissknife/streaming_sorter.hh"
#include "aquoman/swissknife/topk.hh"
#include "aquoman/swissknife/vcas.hh"
#include "common/rng.hh"

namespace aquoman {
namespace {

KvStream
randomStream(std::int64_t n, std::uint64_t seed, std::int64_t key_range)
{
    Rng rng(seed);
    KvStream s(n);
    for (std::int64_t i = 0; i < n; ++i)
        s[i] = {rng.uniform(0, key_range), i};
    return s;
}

// ----------------------------------------------------------- Bitonic

class BitonicProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BitonicProperty, SortsRandomVectors)
{
    int size = GetParam();
    BitonicSorter sorter(size);
    Rng rng(size * 31 + 7);
    for (int trial = 0; trial < 20; ++trial) {
        KvStream v(size);
        for (int i = 0; i < size; ++i)
            v[i] = {rng.uniform(-1000, 1000), i};
        KvStream want = v;
        std::sort(want.begin(), want.end());
        sorter.sortVector(v.data());
        EXPECT_EQ(v, want);
    }
    EXPECT_GT(sorter.casOps(), 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitonicProperty,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(BitonicTest, StageCountMatchesTheory)
{
    EXPECT_EQ(BitonicSorter(32).numStages(), 15); // 5*6/2
    EXPECT_EQ(BitonicSorter(8).numStages(), 6);   // 3*4/2
    EXPECT_EQ(BitonicSorter(2).numStages(), 1);
}

TEST(BitonicTest, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(BitonicSorter(12), PanicError);
}

// -------------------------------------------------------------- VCAS

TEST(VcasTest, KeepsBiggestHalf)
{
    Vcas block(4);
    KvStream v1 = {{1, 0}, {3, 0}, {5, 0}, {7, 0}};
    block.compareAndSwap(v1);
    // First vector displaces the -inf initial contents entirely.
    EXPECT_EQ(block.contents()[0].key, 1);
    EXPECT_EQ(block.contents()[3].key, 7);

    KvStream v2 = {{2, 0}, {4, 0}, {6, 0}, {8, 0}};
    block.compareAndSwap(v2);
    // Top-4 of {1..8} is {5,6,7,8}; streamed-out half is {1,2,3,4}.
    EXPECT_EQ(block.contents()[0].key, 5);
    EXPECT_EQ(block.contents()[3].key, 8);
    EXPECT_EQ(v2[0].key, 1);
    EXPECT_EQ(v2[3].key, 4);
    EXPECT_EQ(block.steps(), 8);
}

TEST(VcasTest, PropertyTopHalfOfUnion)
{
    Rng rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        int n = 8;
        Vcas block(n);
        KvStream all;
        for (int round = 0; round < 6; ++round) {
            KvStream v(n);
            for (int i = 0; i < n; ++i)
                v[i] = {rng.uniform(0, 100), rng.uniform(0, 1 << 20)};
            std::sort(v.begin(), v.end());
            for (const Kv &r : v)
                all.push_back(r);
            block.compareAndSwap(v);
        }
        std::sort(all.begin(), all.end());
        KvStream want(all.end() - n, all.end());
        EXPECT_EQ(block.contents(), want);
    }
}

// -------------------------------------------------------------- TopK

class TopKProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(TopKProperty, MatchesPartialSort)
{
    auto [k, n] = GetParam();
    KvStream input = randomStream(n, k * 1000003 + n, 1 << 20);
    TopKAccelerator topk(k, 8);
    topk.pushAll(input);
    KvStream got = topk.finish();

    KvStream want = input;
    std::sort(want.begin(), want.end());
    std::reverse(want.begin(), want.end());
    want.resize(std::min<std::int64_t>(k, n));
    EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopKProperty,
    ::testing::Values(std::make_tuple(1, 100), std::make_tuple(8, 64),
                      std::make_tuple(10, 1000), std::make_tuple(16, 7),
                      std::make_tuple(100, 100),
                      std::make_tuple(32, 5000)));

TEST(TopKTest, ChainLengthIsKOverN)
{
    EXPECT_EQ(TopKAccelerator(100, 32).chainLength(), 4);
    EXPECT_EQ(TopKAccelerator(32, 32).chainLength(), 1);
    EXPECT_EQ(TopKAccelerator(1, 32).chainLength(), 1);
}

TEST(TopKTest, CountersAdvance)
{
    TopKAccelerator topk(16, 8);
    topk.pushAll(randomStream(100, 5, 1000));
    topk.finish();
    EXPECT_GE(topk.vectorsSorted(), 100 / 8);
    EXPECT_GT(topk.casSteps(), 0);
}

// ------------------------------------------------------------ Merger

TEST(MergerTest, MergesTwoSortedStreams)
{
    KvStream a = randomStream(500, 1, 1000);
    KvStream b = randomStream(300, 2, 1000);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    MergeStats stats;
    KvStream m = merge2to1(a, b, &stats);
    ASSERT_EQ(m.size(), 800u);
    EXPECT_TRUE(std::is_sorted(m.begin(), m.end(),
                               [](const Kv &x, const Kv &y) {
                                   return x.key < y.key;
                               }));
    EXPECT_GT(stats.sourceSwitches, 0);
    EXPECT_EQ(stats.recordsOut, 800);
}

TEST(MergerTest, IntersectInnerJoinsAgainstUniqueSide)
{
    // Right: unique keys 0..99 (rowids 1000+key). Left: fan-out 0..2.
    KvStream right;
    for (int k = 0; k < 100; ++k)
        right.push_back({k * 2, 1000 + k});
    KvStream left;
    for (int k = 0; k < 150; ++k)
        left.push_back({k, k});
    auto pairs = intersectInner(left, right);
    // Even keys 0..148 match: 75 pairs.
    ASSERT_EQ(pairs.size(), 75u);
    for (const auto &p : pairs) {
        EXPECT_EQ(p.key % 2, 0);
        EXPECT_EQ(p.leftValue, p.key);
        EXPECT_EQ(p.rightValue, 1000 + p.key / 2);
    }
}

TEST(MergerTest, InnerPreservesLeftDuplicates)
{
    KvStream left = {{5, 1}, {5, 2}, {5, 3}, {7, 4}};
    KvStream right = {{5, 100}, {6, 101}, {7, 102}};
    auto pairs = intersectInner(left, right);
    ASSERT_EQ(pairs.size(), 4u);
    EXPECT_EQ(pairs[0].leftValue, 1);
    EXPECT_EQ(pairs[2].leftValue, 3);
    EXPECT_EQ(pairs[3].rightValue, 102);
}

TEST(MergerTest, SemiAntiPartitionLeft)
{
    KvStream left = randomStream(400, 3, 200);
    KvStream right = randomStream(50, 4, 200);
    std::sort(left.begin(), left.end());
    std::sort(right.begin(), right.end());
    KvStream semi = intersectSemi(left, right);
    KvStream anti = intersectAnti(left, right);
    EXPECT_EQ(semi.size() + anti.size(), left.size());
    std::set<std::int64_t> right_keys;
    for (const Kv &r : right)
        right_keys.insert(r.key);
    for (const Kv &r : semi)
        EXPECT_TRUE(right_keys.count(r.key));
    for (const Kv &r : anti)
        EXPECT_FALSE(right_keys.count(r.key));
}

TEST(MergerTest, SortedInputsCauseFewSwitches)
{
    // Disjoint ranges: scheduler drains one source then the other.
    KvStream a, b;
    for (int i = 0; i < 1000; ++i)
        a.push_back({i, 0});
    for (int i = 0; i < 1000; ++i)
        b.push_back({10000 + i, 0});
    MergeStats stats;
    merge2to1(a, b, &stats);
    EXPECT_LE(stats.sourceSwitches, 2);
}

// ----------------------------------------------------------- GroupBy

TEST(GroupByTest, SmallGroupSetStaysInSram)
{
    AquomanConfig cfg;
    GroupByAccelerator gb(cfg, 1, {HwAgg::Sum, HwAgg::Cnt});
    for (int i = 0; i < 1000; ++i)
        gb.update({i % 4}, {i, 0});
    EXPECT_EQ(gb.stats().groupsSpilled, 0);
    EXPECT_EQ(gb.stats().rowsSpilled, 0);
    auto groups = gb.finish();
    ASSERT_EQ(groups.size(), 4u);
    std::map<std::int64_t, std::int64_t> sums;
    for (const auto &g : groups)
        sums[g.groupId[0]] = g.aggregates[0];
    // sum of i in 0..999 with i%4==0: 0+4+...+996.
    EXPECT_EQ(sums[0], 124500);
    for (const auto &g : groups)
        EXPECT_EQ(g.aggregates[1], 250);
}

TEST(GroupByTest, CollisionsSpillToHostAndMergeBack)
{
    AquomanConfig cfg;
    cfg.groupByBuckets = 16; // force collisions
    GroupByAccelerator gb(cfg, 1, {HwAgg::Sum});
    std::map<std::int64_t, std::int64_t> want;
    Rng rng(42);
    for (int i = 0; i < 5000; ++i) {
        std::int64_t g = rng.uniform(0, 99);
        std::int64_t v = rng.uniform(0, 1000);
        gb.update({g}, {v});
        want[g] += v;
    }
    EXPECT_GT(gb.stats().groupsSpilled, 0);
    EXPECT_GT(gb.stats().rowsSpilled, 0);
    auto groups = gb.finish();
    ASSERT_EQ(groups.size(), want.size());
    std::int64_t spilled = 0;
    for (const auto &g : groups) {
        EXPECT_EQ(g.aggregates[0], want[g.groupId[0]]);
        spilled += g.fromSpill;
    }
    EXPECT_EQ(spilled, gb.stats().groupsSpilled);
}

TEST(GroupByTest, MinMaxCntSemantics)
{
    AquomanConfig cfg;
    GroupByAccelerator gb(cfg, 1,
                          {HwAgg::Min, HwAgg::Max, HwAgg::Cnt});
    gb.update({7}, {5, 5, 5});
    gb.update({7}, {-3, -3, -3});
    gb.update({7}, {12, 12, 12});
    auto groups = gb.finish();
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].aggregates[0], -3);
    EXPECT_EQ(groups[0].aggregates[1], 12);
    EXPECT_EQ(groups[0].aggregates[2], 3);
}

TEST(GroupByTest, WideIdentifierFlagged)
{
    AquomanConfig cfg; // 16B limit == two 64-bit lanes
    GroupByAccelerator two(cfg, 2, {HwAgg::Sum});
    EXPECT_FALSE(two.idWidthExceedsHardware());
    GroupByAccelerator three(cfg, 3, {HwAgg::Sum});
    EXPECT_TRUE(three.idWidthExceedsHardware());
}

TEST(GroupByTest, TooManyAggSlotsRejected)
{
    AquomanConfig cfg;
    std::vector<HwAgg> nine(9, HwAgg::Sum);
    EXPECT_THROW(GroupByAccelerator(cfg, 1, nine), PanicError);
}

TEST(GroupByTest, Q18StyleMassiveSpill)
{
    // Group count vastly exceeding 1024 buckets: most rows spill, the
    // device keeps only 1024 groups in SRAM (Sec. VI-E, Q18).
    AquomanConfig cfg;
    GroupByAccelerator gb(cfg, 1, {HwAgg::Sum});
    for (int i = 0; i < 100000; ++i)
        gb.update({i}, {1});
    EXPECT_EQ(gb.stats().groupsInSram, 1024);
    EXPECT_EQ(gb.stats().groupsSpilled, 100000 - 1024);
    auto groups = gb.finish();
    EXPECT_EQ(groups.size(), 100000u);
}

// --------------------------------------------------- StreamingSorter

AquomanConfig
smallSorterConfig()
{
    AquomanConfig cfg;
    cfg.sorterBlockBytes = 4096; // 256 records per block
    return cfg;
}

TEST(StreamingSorterTest, SortsWithinOneBlock)
{
    AquomanConfig cfg = smallSorterConfig();
    StreamingSorter sorter(cfg);
    KvStream s = randomStream(200, 11, 1 << 30);
    KvStream want = s;
    std::sort(want.begin(), want.end());
    SorterStats st = sorter.sort(s);
    EXPECT_EQ(s, want);
    EXPECT_EQ(st.numBlocks, 1);
    EXPECT_FALSE(st.folded);
    EXPECT_GT(st.throughput, 0.0);
}

TEST(StreamingSorterTest, FoldsManyBlocksToTotalOrder)
{
    AquomanConfig cfg = smallSorterConfig();
    StreamingSorter sorter(cfg);
    KvStream s = randomStream(10000, 13, 1 << 30);
    KvStream want = s;
    std::sort(want.begin(), want.end());
    SorterStats st = sorter.sort(s, true);
    EXPECT_EQ(s, want);
    EXPECT_GT(st.numBlocks, 1);
    EXPECT_TRUE(st.folded);
    EXPECT_EQ(st.dramBytes, st.bytesIn);
}

TEST(StreamingSorterTest, BlockModeLeavesSortedRuns)
{
    AquomanConfig cfg = smallSorterConfig();
    StreamingSorter sorter(cfg);
    KvStream s = randomStream(1024, 17, 1 << 30);
    SorterStats st = sorter.sort(s, false);
    EXPECT_FALSE(st.folded);
    std::int64_t block_records = cfg.sorterBlockBytes / kKvBytes;
    for (std::int64_t b = 0; b * block_records
             < static_cast<std::int64_t>(s.size()); ++b) {
        auto begin = s.begin() + b * block_records;
        auto end = std::min(begin + block_records, s.end());
        EXPECT_TRUE(std::is_sorted(begin, end));
    }
}

TEST(StreamingSorterTest, RandomInputFasterThanSorted)
{
    // Table V: random inputs sustain higher throughput than presorted
    // ones because the merge scheduler alternates sources.
    AquomanConfig cfg = smallSorterConfig();
    StreamingSorter sorter(cfg);

    KvStream sorted_in(8192), random_in;
    for (std::int64_t i = 0; i < 8192; ++i)
        sorted_in[i] = {i, i};
    random_in = randomStream(8192, 23, 1 << 30);

    SorterStats sorted_st = sorter.sort(sorted_in, false);
    SorterStats random_st = sorter.sort(random_in, false);
    EXPECT_LT(sorted_st.alternationRate, 0.1);
    EXPECT_GT(random_st.alternationRate, 0.8);
    EXPECT_GT(random_st.throughput, sorted_st.throughput * 1.2);
}

TEST(StreamingSorterTest, ThroughputGrowsWithLength)
{
    // Table V: longer inputs amortise the pipeline fill (4.4 -> 8.6
    // GB/s for sorted data between 1GB and 1000GB).
    AquomanConfig cfg;
    StreamingSorter sorter(cfg);
    double t1 = 1e9 / sorter.modelSeconds(1e9, 0.0, false);
    double t10 = 1e10 / sorter.modelSeconds(1e10, 0.0, false);
    double t1000 = 1e12 / sorter.modelSeconds(1e12, 0.0, false);
    EXPECT_LT(t1, t10);
    EXPECT_LT(t10, t1000);
    EXPECT_NEAR(t1 / 1e9, 4.4, 0.4);
    EXPECT_NEAR(t1000 / 1e9, 8.6, 0.4);
    double r1000 = 1e12 / sorter.modelSeconds(1e12, 1.0, false);
    EXPECT_NEAR(r1000 / 1e9, 12.0, 0.4);
}

} // namespace
} // namespace aquoman
