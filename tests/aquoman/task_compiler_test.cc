/** @file
 * Unit tests for the Table-Task compiler: stage-shape normalisation,
 * the regex-cacheability rule, and the per-stage offload decisions
 * (Sec. V / VI-E).
 */

#include <gtest/gtest.h>

#include <memory>

#include "aquoman/task_compiler.hh"
#include "common/rng.hh"

namespace aquoman {
namespace {

class TaskCompilerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // A fact table with a dictionary column and a unique-text
        // column, plus a dimension with a dense primary key.
        auto fact = std::make_shared<Table>("fact");
        auto &fid = fact->addColumn("f_id", ColumnType::Int64);
        auto &fdim = fact->addColumn("f_dim", ColumnType::Int64);
        auto &fval = fact->addColumn("f_val", ColumnType::Decimal);
        auto &fcat = fact->addColumn("f_category", ColumnType::Varchar);
        auto &fnote = fact->addColumn("f_note", ColumnType::Varchar);
        Rng rng(5);
        for (int i = 1; i <= 2000; ++i) {
            fid.push(i);
            fdim.push(rng.uniform(1, 100));
            fval.push(rng.uniform(0, 10000));
            fact->pushString(fcat, rng.uniform(0, 1) ? "red" : "blue");
            fact->pushString(fnote,
                             "unique note " + std::to_string(i));
        }
        auto dim = std::make_shared<Table>("dim");
        auto &did = dim->addColumn("d_id", ColumnType::Int64);
        auto &dname = dim->addColumn("d_name", ColumnType::Varchar);
        for (int i = 1; i <= 100; ++i) {
            did.push(i);
            dim->pushString(dname, "dim-" + std::to_string(i % 10));
        }
        catalog.put(fact, nullptr);
        catalog.put(dim, nullptr).densePrimaryKey = "d_id";
    }

    QueryCompilation
    compile(const Query &q)
    {
        TaskCompiler tc(catalog, config);
        return tc.compile(q);
    }

    Catalog catalog;
    AquomanConfig config;
};

TEST_F(TaskCompilerTest, RecognisesFilterProjectGroupByShape)
{
    auto plan = orderBy(
        groupBy(project(filter(scan("fact"),
                               gt(col("f_val"), lit(10))),
                        {{"dim", col("f_dim")},
                         {"v2", mul(col("f_val"), lit(2))}}),
                {"dim"}, {{"total", AggKind::Sum, col("v2")}}),
        {{"total", true}}, 5);
    TaskCompiler tc(catalog, config);
    std::string why;
    auto shape = tc.analyze(plan, why);
    ASSERT_TRUE(shape.has_value()) << why;
    EXPECT_EQ(shape->leaves.size(), 1u);
    EXPECT_EQ(shape->leaves[0].table, "fact");
    ASSERT_TRUE(shape->groupBy.has_value());
    EXPECT_EQ(shape->groupBy->groupColumns[0], "dim");
    // Filter and project both landed in rootOps/leaf ops.
    std::size_t ops = shape->rootOps.size() + shape->leaves[0].ops.size();
    EXPECT_EQ(ops, 2u);
    EXPECT_EQ(shape->limit, 5);
    ASSERT_EQ(shape->sortKeys.size(), 1u);
    EXPECT_TRUE(shape->sortKeys[0].descending);
}

TEST_F(TaskCompilerTest, RecognisesJoinTrees)
{
    auto plan = groupBy(
        join(JoinType::Inner, scan("fact"), scan("dim"),
             {"f_dim"}, {"d_id"}),
        {"d_name"}, {{"total", AggKind::Sum, col("f_val")}});
    TaskCompiler tc(catalog, config);
    std::string why;
    auto shape = tc.analyze(plan, why);
    ASSERT_TRUE(shape.has_value()) << why;
    EXPECT_EQ(shape->leaves.size(), 2u);
    const ShapeNode &root = shape->nodes[shape->root];
    EXPECT_FALSE(root.isLeaf);
    EXPECT_EQ(root.leftKeys[0], "f_dim");
    EXPECT_EQ(root.rightKeys[0], "d_id");
}

TEST_F(TaskCompilerTest, RejectsGroupByUnderJoin)
{
    auto grouped = groupBy(scan("fact"), {"f_dim"},
                           {{"t", AggKind::Sum, col("f_val")}});
    auto plan = join(JoinType::Inner, grouped, scan("dim"),
                     {"f_dim"}, {"d_id"});
    TaskCompiler tc(catalog, config);
    std::string why;
    EXPECT_FALSE(tc.analyze(plan, why).has_value());
    EXPECT_FALSE(why.empty());
}

TEST_F(TaskCompilerTest, DictionaryLikeRegexIsOffloadable)
{
    // f_category has 2 distinct values over 2000 rows: cacheable.
    Query q{"q", {{"out", filter(scan("fact"),
                                 like(col("f_category"), "re%"))}}};
    QueryCompilation c = compile(q);
    EXPECT_FALSE(c.regexForcedHost);
    EXPECT_TRUE(c.stages[0].onDevice);
}

TEST_F(TaskCompilerTest, UniqueTextRegexForcesWholeQueryToHost)
{
    // f_note is unique per row: not dictionary-like at any scale.
    Query q{"q",
            {{"s1", filter(scan("fact"), gt(col("f_val"), lit(5)))},
             {"s2", filter(scan("fact"),
                           like(col("f_note"), "%note 7%"))}}};
    QueryCompilation c = compile(q);
    EXPECT_TRUE(c.regexForcedHost);
    // Even the regex-free stage is kept on the host (paper: offload
    // is unprofitable for q9/q13/q16/q20 as a whole).
    EXPECT_FALSE(c.stages[0].onDevice);
    EXPECT_FALSE(c.stages[1].onDevice);
    EXPECT_FALSE(c.anyDeviceStage);
}

TEST_F(TaskCompilerTest, GroupByOutputsAreHostResident)
{
    auto s1 = groupBy(scan("fact"), {"f_dim"},
                      {{"total", AggKind::Sum, col("f_val")}});
    auto s2 = filter(scanStage("s1"), gt(col("total"), lit(100)));
    Query q{"q", {{"s1", s1}, {"s2", s2}}};
    QueryCompilation c = compile(q);
    EXPECT_TRUE(c.stages[0].onDevice);
    EXPECT_FALSE(c.stages[1].onDevice);
    EXPECT_NE(c.stages[1].reason.find("not buffered"),
              std::string::npos);
}

TEST_F(TaskCompilerTest, PlainStageOutputsStayDeviceResident)
{
    auto s1 = filter(scan("fact"), gt(col("f_val"), lit(100)));
    auto s2 = groupBy(scanStage("s1"), {"f_dim"},
                      {{"total", AggKind::Sum, col("f_val")}});
    Query q{"q", {{"s1", s1}, {"s2", s2}}};
    QueryCompilation c = compile(q);
    EXPECT_TRUE(c.stages[0].onDevice);
    EXPECT_TRUE(c.stages[1].onDevice);
}

TEST_F(TaskCompilerTest, CountDistinctFallsToHost)
{
    Query q{"q", {{"out", groupBy(scan("fact"), {"f_dim"},
                                  {{"d", AggKind::CountDistinct,
                                    col("f_val")}})}}};
    QueryCompilation c = compile(q);
    EXPECT_FALSE(c.stages[0].onDevice);
    EXPECT_NE(c.stages[0].reason.find("count(distinct)"),
              std::string::npos);
}

TEST_F(TaskCompilerTest, UnknownTableIsReported)
{
    Query q{"q", {{"out", scan("nope")}}};
    QueryCompilation c = compile(q);
    EXPECT_FALSE(c.stages[0].onDevice);
    EXPECT_NE(c.stages[0].reason.find("unknown table"),
              std::string::npos);
}

TEST_F(TaskCompilerTest, LeafOpsCapturedBelowJoins)
{
    auto plan = join(JoinType::LeftSemi,
                     filter(scan("fact"), gt(col("f_val"), lit(3))),
                     project(filter(scan("dim"),
                                    eq(col("d_name"),
                                       litStr("dim-3"))),
                             {{"d_id", col("d_id")}}),
                     {"f_dim"}, {"d_id"});
    TaskCompiler tc(catalog, config);
    std::string why;
    auto shape = tc.analyze(plan, why);
    ASSERT_TRUE(shape.has_value()) << why;
    ASSERT_EQ(shape->leaves.size(), 2u);
    EXPECT_EQ(shape->leaves[0].ops.size(), 1u); // fact filter
    EXPECT_EQ(shape->leaves[1].ops.size(), 2u); // dim filter+project
    EXPECT_EQ(shape->nodes[shape->root].joinType, JoinType::LeftSemi);
}

} // namespace
} // namespace aquoman
