/** @file
 * Property sweeps for the streaming sorter and merger under adversarial
 * inputs: heavy duplicates, all-equal keys, presorted runs, and
 * stability of the <key, RowID> pairing the join machinery depends on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "aquoman/swissknife/merger.hh"
#include "aquoman/swissknife/streaming_sorter.hh"
#include "common/rng.hh"

namespace aquoman {
namespace {

AquomanConfig
tinyBlocks()
{
    AquomanConfig cfg;
    cfg.sorterBlockBytes = 2048; // 128 records per block
    return cfg;
}

class SorterProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(SorterProperty, SortsArbitraryKeyDistributions)
{
    auto [n, key_range] = GetParam();
    Rng rng(n * 1009 + key_range);
    KvStream s(n);
    for (int i = 0; i < n; ++i)
        s[i] = {rng.uniform(0, key_range), i};
    KvStream want = s;
    std::sort(want.begin(), want.end());
    StreamingSorter sorter(tinyBlocks());
    SorterStats st = sorter.sort(s, true);
    EXPECT_EQ(s, want);
    EXPECT_EQ(st.recordsIn, n);
    // Every RowID payload survives exactly once.
    std::map<std::int64_t, int> seen;
    for (const Kv &kv : s)
        seen[kv.value]++;
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(seen[i], 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SorterProperty,
    ::testing::Values(std::make_tuple(1, 10),      // single record
                      std::make_tuple(127, 1),     // all keys equal
                      std::make_tuple(128, 4),     // exactly one block
                      std::make_tuple(129, 4),     // one spill record
                      std::make_tuple(2000, 3),    // heavy duplicates
                      std::make_tuple(2000, 1 << 30),
                      std::make_tuple(4096, 100)));

TEST(SorterPropertyTest, EmptyStream)
{
    KvStream s;
    StreamingSorter sorter(tinyBlocks());
    SorterStats st = sorter.sort(s, true);
    EXPECT_EQ(st.recordsIn, 0);
    EXPECT_EQ(st.numBlocks, 0);
    EXPECT_EQ(st.seconds, 0.0);
}

TEST(MergerPropertyTest, MergeEqualsStdMerge)
{
    Rng rng(4242);
    for (int trial = 0; trial < 30; ++trial) {
        KvStream a(rng.uniform(0, 300)), b(rng.uniform(0, 300));
        for (auto &kv : a)
            kv = {rng.uniform(0, 40), rng.uniform(0, 1000)};
        for (auto &kv : b)
            kv = {rng.uniform(0, 40), rng.uniform(0, 1000)};
        std::sort(a.begin(), a.end(),
                  [](const Kv &x, const Kv &y) { return x.key < y.key; });
        std::sort(b.begin(), b.end(),
                  [](const Kv &x, const Kv &y) { return x.key < y.key; });
        KvStream got = merge2to1(a, b);
        ASSERT_EQ(got.size(), a.size() + b.size());
        EXPECT_TRUE(std::is_sorted(
            got.begin(), got.end(),
            [](const Kv &x, const Kv &y) { return x.key < y.key; }));
    }
}

TEST(MergerPropertyTest, SemiAntiAgainstSetReference)
{
    Rng rng(7);
    for (int trial = 0; trial < 30; ++trial) {
        KvStream left(200), right(rng.uniform(0, 80));
        for (std::size_t i = 0; i < left.size(); ++i)
            left[i] = {rng.uniform(0, 60), static_cast<std::int64_t>(i)};
        for (auto &kv : right)
            kv = {rng.uniform(0, 60), 0};
        std::sort(left.begin(), left.end());
        std::sort(right.begin(), right.end());
        std::set<std::int64_t> right_keys;
        for (const Kv &kv : right)
            right_keys.insert(kv.key);
        KvStream semi = intersectSemi(left, right);
        KvStream anti = intersectAnti(left, right);
        std::size_t want_semi = 0;
        for (const Kv &kv : left)
            want_semi += right_keys.count(kv.key);
        EXPECT_EQ(semi.size(), want_semi);
        EXPECT_EQ(anti.size(), left.size() - want_semi);
    }
}

TEST(SorterPropertyTest, AlternationBoundedToUnitInterval)
{
    StreamingSorter sorter(tinyBlocks());
    Rng rng(99);
    for (int trial = 0; trial < 10; ++trial) {
        KvStream s(777);
        for (auto &kv : s)
            kv = {rng.uniform(0, trial == 0 ? 1 : 1 << 20), 0};
        SorterStats st = sorter.sort(s, false);
        EXPECT_GE(st.alternationRate, 0.0);
        EXPECT_LE(st.alternationRate, 1.0);
        EXPECT_GT(st.throughput, 0.0);
    }
}

} // namespace
} // namespace aquoman
