/** @file
 * Targeted tests for the device executor's join strategies and
 * Swissknife paths that TPC-H exercises only lightly: the general
 * sort-merge path (non-dense keys), semi/anti joins with residuals,
 * the regex accelerator inside transforms, and the TOPK operator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "aquoman/device.hh"
#include "common/rng.hh"

namespace aquoman {
namespace {

std::vector<std::string>
canon(const RelTable &t)
{
    std::vector<std::string> rows;
    for (std::int64_t r = 0; r < t.numRows(); ++r) {
        std::ostringstream os;
        for (int c = 0; c < t.numColumns(); ++c) {
            if (t.col(c).type == ColumnType::Varchar)
                os << t.col(c).str(r) << "|";
            else
                os << t.col(c).get(r) << "|";
        }
        rows.push_back(os.str());
    }
    std::sort(rows.begin(), rows.end());
    return rows;
}

class DevicePathsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        flash = std::make_unique<FlashDevice>(flashConfig());
        sw = std::make_unique<ControllerSwitch>(*flash);
        store = std::make_unique<TableStore>(*sw);

        // "events": a fact table whose join key is NOT a dense pk
        // (forces the sort-merge path) plus a text column with a small
        // dictionary (regex-accelerator friendly).
        auto ev = std::make_shared<Table>("events");
        auto &eid = ev->addColumn("e_id", ColumnType::Int64);
        auto &code = ev->addColumn("e_code", ColumnType::Int64);
        auto &val = ev->addColumn("e_val", ColumnType::Decimal);
        auto &tag = ev->addColumn("e_tag", ColumnType::Varchar);
        Rng rng(77);
        const char *tags[] = {"alpha-hot", "alpha-cold", "beta-hot",
                              "beta-cold"};
        for (int i = 1; i <= 4000; ++i) {
            eid.push(i);
            code.push(rng.uniform(0, 499) * 7 + 3); // sparse codes
            val.push(rng.uniform(0, 100000));
            ev->pushString(tag, tags[rng.uniform(0, 3)]);
        }
        eid.setSorted(true);

        // "codes": keyed by the same sparse code domain (non-dense).
        auto cd = std::make_shared<Table>("codes");
        auto &ck = cd->addColumn("c_code", ColumnType::Int64);
        auto &cw = cd->addColumn("c_weight", ColumnType::Int64);
        std::vector<std::int64_t> keys;
        for (int k = 0; k < 500; ++k)
            keys.push_back(k * 7 + 3);
        // Shuffle so neither side's key stream arrives sorted.
        for (std::size_t i = keys.size(); i-- > 1;)
            std::swap(keys[i], keys[rng.uniform(0, i)]);
        for (std::int64_t k : keys) {
            ck.push(k);
            cw.push(k % 10);
        }

        catalog.put(ev, store->store(ev));
        catalog.get("events").densePrimaryKey = "e_id";
        catalog.put(cd, store->store(cd));
    }

    static FlashConfig
    flashConfig()
    {
        FlashConfig fc;
        fc.capacityBytes = 1ll << 30;
        return fc;
    }

    RelTable
    baseline(const Query &q)
    {
        Executor ex(catalog);
        return ex.run(q);
    }

    OffloadedQueryResult
    device(const Query &q, AquomanConfig cfg = AquomanConfig::paper40())
    {
        AquomanDevice dev(catalog, *sw, cfg);
        return dev.runQuery(q);
    }

    bool
    logContains(const AquomanRunStats &st, const std::string &needle)
    {
        for (const auto &line : st.taskLog)
            if (line.find(needle) != std::string::npos)
                return true;
        return false;
    }

    std::unique_ptr<FlashDevice> flash;
    std::unique_ptr<ControllerSwitch> sw;
    std::unique_ptr<TableStore> store;
    Catalog catalog;
};

TEST_F(DevicePathsTest, SortMergeJoinPathOnNonDenseKeys)
{
    // Neither join key is a dense primary key and the codes side is
    // shuffled, so the device must use the streaming sorter + merger.
    Query q{"sm",
            {{"out", groupBy(
                  join(JoinType::Inner,
                       filter(scan("events"),
                              gt(col("e_val"), litDec("100.00"))),
                       scan("codes"), {"e_code"}, {"c_code"}),
                  {"c_weight"},
                  {{"total", AggKind::Sum, col("e_val")},
                   {"n", AggKind::Count, nullptr}})}}};
    RelTable want = baseline(q);
    OffloadedQueryResult got = device(q);
    EXPECT_EQ(canon(got.result), canon(want));
    EXPECT_TRUE(logContains(got.stats, "SORT_MERGE"));
    EXPECT_TRUE(logContains(got.stats, "SORT"));
}

TEST_F(DevicePathsTest, SemiAndAntiWithResidualOnDevice)
{
    // Events that share a code with a *different, bigger* event.
    auto semi = groupBy(
        join(JoinType::LeftSemi, scan("events"),
             scan("events", "o", {"e_id", "e_code", "e_val"}),
             {"e_code"}, {"o.e_code"},
             andE(ne(col("e_id"), col("o.e_id")),
                  lt(col("e_val"), col("o.e_val")))),
        {}, {{"n", AggKind::Count, nullptr}});
    auto anti = groupBy(
        join(JoinType::LeftAnti, scan("events"),
             scan("events", "o", {"e_id", "e_code", "e_val"}),
             {"e_code"}, {"o.e_code"},
             andE(ne(col("e_id"), col("o.e_id")),
                  lt(col("e_val"), col("o.e_val")))),
        {}, {{"n", AggKind::Count, nullptr}});
    for (auto plan : {semi, anti}) {
        Query q{"sa", {{"out", plan}}};
        RelTable want = baseline(q);
        OffloadedQueryResult got = device(q);
        ASSERT_TRUE(got.stats.hostStages.empty())
            << got.stats.hostStages[0].second;
        EXPECT_EQ(got.result.col("n").get(0), want.col("n").get(0));
    }
}

TEST_F(DevicePathsTest, RegexAcceleratorInsideTransform)
{
    // LIKE over the small-dictionary tag column inside a CASE: the
    // regex accelerator pre-computes a bit column for the PEs.
    Query q{"rx",
            {{"out", groupBy(
                  project(scan("events"),
                          {{"hot_val",
                            caseWhen({like(col("e_tag"), "%hot"),
                                      col("e_val")},
                                     litDec("0.00"))}}),
                  {}, {{"hot_total", AggKind::Sum, col("hot_val")}})}}};
    RelTable want = baseline(q);
    OffloadedQueryResult got = device(q);
    ASSERT_TRUE(got.stats.hostStages.empty())
        << got.stats.hostStages[0].second;
    EXPECT_EQ(got.result.col("hot_total").get(0),
              want.col("hot_total").get(0));
    EXPECT_TRUE(logContains(got.stats, "regexAccel"));
}

TEST_F(DevicePathsTest, TopKOperatorOffloads)
{
    Query q{"topk",
            {{"out", orderBy(filter(scan("events"),
                                    gt(col("e_val"), litDec("10.00"))),
                             {{"e_val", true}}, 25)}}};
    RelTable want = baseline(q);
    OffloadedQueryResult got = device(q);
    ASSERT_TRUE(got.stats.hostStages.empty());
    EXPECT_TRUE(logContains(got.stats, "TOPK"));
    ASSERT_EQ(got.result.numRows(), 25);
    EXPECT_EQ(canon(got.result), canon(want));
}

TEST_F(DevicePathsTest, AscendingTopKOffloads)
{
    Query q{"bottomk",
            {{"out", orderBy(scan("events"), {{"e_val", false}}, 10)}}};
    RelTable want = baseline(q);
    OffloadedQueryResult got = device(q);
    EXPECT_TRUE(logContains(got.stats, "TOPK"));
    EXPECT_EQ(canon(got.result), canon(want));
}

TEST_F(DevicePathsTest, FanOutExplosionSuspends)
{
    // A self-join on a constant column would produce a quadratic
    // per-key product; the merger refuses and the host takes over.
    auto big = std::make_shared<Table>("flat");
    auto &fk = big->addColumn("k", ColumnType::Int64);
    auto &fv = big->addColumn("v", ColumnType::Int64);
    for (int i = 0; i < 2000; ++i) {
        fk.push(7); // every row shares one key
        fv.push(i);
    }
    catalog.put(big, store->store(big));
    Query q{"boom",
            {{"out", groupBy(join(JoinType::Inner, scan("flat"),
                                  scan("flat", "o", {"k"}),
                                  {"k"}, {"o.k"}),
                             {}, {{"n", AggKind::Count, nullptr}})}}};
    RelTable want = baseline(q);
    OffloadedQueryResult got = device(q);
    EXPECT_FALSE(got.stats.hostStages.empty());
    EXPECT_EQ(got.result.col("n").get(0), want.col("n").get(0));
}

TEST_F(DevicePathsTest, GroupByMinMaxAvgMatchBaseline)
{
    Query q{"agg",
            {{"out", groupBy(scan("events"), {"e_tag"},
                             {{"lo", AggKind::Min, col("e_val")},
                              {"hi", AggKind::Max, col("e_val")},
                              {"mean", AggKind::Avg, col("e_val")},
                              {"n", AggKind::Count, nullptr}})}}};
    RelTable want = baseline(q);
    OffloadedQueryResult got = device(q);
    ASSERT_TRUE(got.stats.hostStages.empty());
    EXPECT_EQ(canon(got.result), canon(want));
}

TEST_F(DevicePathsTest, DmaAccountedWhenHostConsumesDeviceStage)
{
    // Stage 1 is a plain filter (device-resident tuples); stage 2 has
    // a count(distinct), which only the host can run.
    Query q{"dma",
            {{"s1", filter(scan("events"),
                           gt(col("e_val"), litDec("500.00")))},
             {"out", groupBy(scanStage("s1"), {},
                             {{"d", AggKind::CountDistinct,
                               col("e_code")}})}}};
    RelTable want = baseline(q);
    OffloadedQueryResult got = device(q);
    EXPECT_EQ(got.result.col("d").get(0), want.col("d").get(0));
    EXPECT_FALSE(got.stats.deviceStages.empty());
    EXPECT_FALSE(got.stats.hostStages.empty());
    EXPECT_GT(got.stats.dmaBytes, 0);
}

} // namespace
} // namespace aquoman
