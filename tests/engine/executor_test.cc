/** @file Unit tests for the baseline engine's operators. */

#include <gtest/gtest.h>

#include <memory>

#include "engine/executor.hh"

namespace aquoman {
namespace {

/** Small sales/inventory database matching the paper's Sec. III example. */
class ExecutorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto inv = std::make_shared<Table>("inventory");
        auto &ik = inv->addColumn("invtID", ColumnType::Int64);
        auto &cat_c = inv->addColumn("category", ColumnType::Varchar);
        for (int i = 1; i <= 10; ++i) {
            ik.push(i);
            inv->pushString(cat_c, i % 3 == 0 ? "Shoes" : "Toys");
        }

        auto sales = std::make_shared<Table>("sales_transactions");
        auto &tid = sales->addColumn("transactionID", ColumnType::Int64);
        auto &dept = sales->addColumn("department", ColumnType::Varchar);
        auto &sdate = sales->addColumn("saledate", ColumnType::Date);
        auto &price = sales->addColumn("price", ColumnType::Decimal);
        auto &disc = sales->addColumn("discount", ColumnType::Decimal);
        auto &tax = sales->addColumn("tax", ColumnType::Decimal);
        auto &item = sales->addColumn("invtID", ColumnType::Int64);
        for (int i = 0; i < 100; ++i) {
            tid.push(i);
            sales->pushString(dept, i % 2 ? "east" : "west");
            sdate.push(parseDate("2018-01-01") + i * 5);
            price.push(makeDecimal(10 + i));
            disc.push(i % 10);
            tax.push(i % 5);
            item.push(i % 10 + 1);
        }

        catalog.put(inv, nullptr);
        catalog.put(sales, nullptr);
    }

    Catalog catalog;
};

TEST_F(ExecutorTest, FilterProjectAggregate)
{
    // The paper's Fig. 1 query: net sale and revenue per department
    // before a date cutoff.
    std::int32_t cutoff = parseDate("2018-12-01");
    auto plan = orderBy(
        groupBy(
            project(
                filter(scan("sales_transactions"),
                       le(col("saledate"), litDateDays(cutoff))),
                {{"department", col("department")},
                 {"netsale", mul(col("price"),
                                 sub(litDec("1.00"), col("discount")))},
                 {"revenue",
                  mul(mul(col("price"),
                          sub(litDec("1.00"), col("discount"))),
                      add(litDec("1.00"), col("tax")))}}),
            {"department"},
            {{"netsale", AggKind::Sum, col("netsale")},
             {"revenue", AggKind::Sum, col("revenue")}}),
        {{"department", false}});
    Executor ex(catalog);
    RelTable out = ex.run(Query{"fig1", {{"out", plan}}});
    ASSERT_EQ(out.numRows(), 2);
    EXPECT_EQ(out.col("department").str(0), "east");
    EXPECT_EQ(out.col("department").str(1), "west");

    // Independent reference computation.
    std::int64_t east = 0, west = 0;
    const auto &sales = *catalog.get("sales_transactions").table;
    for (std::int64_t i = 0; i < sales.numRows(); ++i) {
        if (sales.col("saledate").get(i) > cutoff)
            continue;
        std::int64_t v = decimalMul(sales.col("price").get(i),
                                    100 - sales.col("discount").get(i));
        (i % 2 ? east : west) += v;
    }
    EXPECT_EQ(out.col("netsale").get(0), east);
    EXPECT_EQ(out.col("netsale").get(1), west);
}

TEST_F(ExecutorTest, InnerJoinMatchesReference)
{
    // The paper's Fig. 4 join query: shoe sales after a date.
    std::int32_t cutoff = parseDate("2018-03-15");
    auto plan = groupBy(
        join(JoinType::Inner,
             filter(scan("sales_transactions"),
                    gt(col("saledate"), litDateDays(cutoff))),
             filter(scan("inventory"),
                    eq(col("category"), litStr("Shoes"))),
             {"invtID"}, {"invtID"}),
        {}, {{"shoe_sales", AggKind::Sum, col("price")}});
    // Column name collision (invtID on both sides) must be reported.
    Executor ex(catalog);
    EXPECT_THROW(ex.run(Query{"bad", {{"out", plan}}}), PanicError);

    auto good = groupBy(
        join(JoinType::Inner,
             filter(scan("sales_transactions"),
                    gt(col("saledate"), litDateDays(cutoff))),
             filter(scan("inventory", "i"),
                    eq(col("i.category"), litStr("Shoes"))),
             {"invtID"}, {"i.invtID"}),
        {}, {{"shoe_sales", AggKind::Sum, col("price")}});
    RelTable out = ex.run(Query{"fig4", {{"out", good}}});
    ASSERT_EQ(out.numRows(), 1);

    std::int64_t want = 0;
    const auto &sales = *catalog.get("sales_transactions").table;
    for (std::int64_t i = 0; i < sales.numRows(); ++i) {
        std::int64_t item = sales.col("invtID").get(i);
        if (sales.col("saledate").get(i) > cutoff && item % 3 == 0)
            want += sales.col("price").get(i);
    }
    EXPECT_EQ(out.col("shoe_sales").get(0), want);
}

TEST_F(ExecutorTest, SemiAndAntiJoinPartitionLeftRows)
{
    auto shoes = filter(scan("inventory"),
                        eq(col("category"), litStr("Shoes")));
    auto semi = join(JoinType::LeftSemi, scan("sales_transactions"),
                     shoes, {"invtID"}, {"invtID"});
    auto anti = join(JoinType::LeftAnti, scan("sales_transactions"),
                     shoes, {"invtID"}, {"invtID"});
    Executor ex(catalog);
    RelTable s = ex.runPlan(semi, {});
    RelTable a = ex.runPlan(anti, {});
    EXPECT_EQ(s.numRows() + a.numRows(), 100);
    for (std::int64_t i = 0; i < s.numRows(); ++i)
        EXPECT_EQ(s.col("invtID").get(i) % 3, 0);
    for (std::int64_t i = 0; i < a.numRows(); ++i)
        EXPECT_NE(a.col("invtID").get(i) % 3, 0);
}

TEST_F(ExecutorTest, SemiJoinWithResidual)
{
    // Sales that share an item with a *different* transaction.
    auto semi = join(JoinType::LeftSemi, scan("sales_transactions"),
                     scan("sales_transactions", "o",
                          {"transactionID", "invtID"}),
                     {"invtID"}, {"o.invtID"},
                     ne(col("transactionID"), col("o.transactionID")));
    Executor ex(catalog);
    RelTable out = ex.runPlan(semi, {});
    // Every item appears in 10 transactions, so all rows qualify.
    EXPECT_EQ(out.numRows(), 100);
}

TEST_F(ExecutorTest, LeftOuterJoinProducesNulls)
{
    // Join inventory against sales of expensive items only.
    auto expensive = filter(scan("sales_transactions", "s"),
                            gt(col("s.price"), litDec("105.00")));
    auto outer = join(JoinType::LeftOuter, scan("inventory"), expensive,
                      {"invtID"}, {"s.invtID"});
    Executor ex(catalog);
    RelTable out = ex.runPlan(outer, {});
    // Items 6..10 sell above 105.00 at least once (prices 10..109).
    std::int64_t nulls = 0;
    for (std::int64_t i = 0; i < out.numRows(); ++i)
        nulls += out.col("s.transactionID").get(i) == kNullValue;
    EXPECT_GT(nulls, 0);
    EXPECT_EQ(out.numRows() - nulls + nulls, out.numRows());

    // Count() over the nullable column skips NULLs.
    auto counted = groupBy(outer, {"invtID"},
                           {{"n", AggKind::Count,
                             col("s.transactionID")}});
    RelTable cnt = ex.runPlan(counted, {});
    EXPECT_EQ(cnt.numRows(), 10);
    std::int64_t zero_groups = 0;
    for (std::int64_t i = 0; i < cnt.numRows(); ++i)
        zero_groups += cnt.col("n").get(i) == 0;
    EXPECT_GT(zero_groups, 0);
}

TEST_F(ExecutorTest, OrderByWithLimitAndDescending)
{
    auto plan = orderBy(scan("sales_transactions"),
                        {{"price", true}, {"transactionID", false}}, 5);
    Executor ex(catalog);
    RelTable out = ex.runPlan(plan, {});
    ASSERT_EQ(out.numRows(), 5);
    for (int i = 0; i < 4; ++i)
        EXPECT_GE(out.col("price").get(i), out.col("price").get(i + 1));
    EXPECT_EQ(out.col("price").get(0), makeDecimal(109));
}

TEST_F(ExecutorTest, GroupByCountDistinctAndMinMax)
{
    auto plan = groupBy(scan("sales_transactions"), {"department"},
                        {{"items", AggKind::CountDistinct, col("invtID")},
                         {"lo", AggKind::Min, col("price")},
                         {"hi", AggKind::Max, col("price")},
                         {"avg_price", AggKind::Avg, col("price")}});
    Executor ex(catalog);
    RelTable out = ex.runPlan(plan, {});
    ASSERT_EQ(out.numRows(), 2);
    for (std::int64_t g = 0; g < 2; ++g) {
        EXPECT_EQ(out.col("items").get(g), 5); // 10 items split evenly
        EXPECT_LE(out.col("lo").get(g), out.col("hi").get(g));
    }
}

TEST_F(ExecutorTest, CrossJoinBroadcastWithResidual)
{
    // Keyless join broadcasts a single-row stage (q11/q22 pattern).
    auto avg_stage = groupBy(scan("sales_transactions"), {},
                             {{"avg_price", AggKind::Avg, col("price")}});
    auto out_plan = join(JoinType::Inner,
                         scan("sales_transactions"),
                         scanStage("avg"), {}, {},
                         gt(col("price"), col("avg_price")));
    Executor ex(catalog);
    RelTable out = ex.run(Query{"q", {{"avg", avg_stage},
                                      {"out", out_plan}}});
    // Prices are 10.00..109.00 uniform; about half exceed the mean.
    EXPECT_GT(out.numRows(), 40);
    EXPECT_LT(out.numRows(), 60);
}

TEST_F(ExecutorTest, MetricsAccumulate)
{
    Executor ex(catalog);
    ex.runPlan(orderBy(scan("sales_transactions"), {{"price", false}}), {});
    const EngineMetrics &m = ex.metrics();
    EXPECT_GT(m.rowOps, 0.0);
    EXPECT_GT(m.touchedBaseBytes, 0);
    EXPECT_GT(m.peakIntermediateBytes, 0);
    EXPECT_GT(m.seqRowOps, 0.0);
    EXPECT_LE(m.seqRowOps, m.rowOps);
}

TEST_F(ExecutorTest, UnknownStageIsFatal)
{
    Executor ex(catalog);
    EXPECT_THROW(ex.runPlan(scanStage("nope"), {}), FatalError);
}

} // namespace
} // namespace aquoman
