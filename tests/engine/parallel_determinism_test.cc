/** @file
 * The determinism contract of the morsel-parallel execution core:
 * generated TPC-H tables are byte-identical, and query results plus
 * their EngineMetrics traces are bit-identical, whether the global
 * pool runs serially (AQUOMAN_THREADS=1 equivalent) or with several
 * workers. Only wall-clock is allowed to change with thread count.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string_view>
#include <vector>

#include "common/batch_mode.hh"
#include "common/thread_pool.hh"
#include "engine/executor.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

namespace aquoman::tpch {
namespace {

constexpr double kSf = 0.01;
const std::vector<int> kQueries{1, 3, 6, 13, 21};

void
expectTablesIdentical(const Table &a, const Table &b)
{
    ASSERT_EQ(a.numColumns(), b.numColumns()) << a.name();
    ASSERT_EQ(a.numRows(), b.numRows()) << a.name();
    for (int c = 0; c < a.numColumns(); ++c) {
        const Column &ca = a.col(c);
        const Column &cb = b.col(c);
        ASSERT_EQ(ca.name(), cb.name()) << a.name();
        ASSERT_EQ(ca.type(), cb.type()) << a.name() << "." << ca.name();
        ASSERT_EQ(ca.sorted(), cb.sorted())
            << a.name() << "." << ca.name();
        if (ca.type() == ColumnType::Varchar) {
            for (std::int64_t i = 0; i < ca.size(); ++i) {
                ASSERT_EQ(a.getString(ca, i), b.getString(cb, i))
                    << a.name() << "." << ca.name() << " row " << i;
            }
        } else {
            // Bit-exact raw values, asserted in bulk.
            ASSERT_EQ(ca.data(), cb.data())
                << a.name() << "." << ca.name();
        }
    }
}

void
expectRelTablesIdentical(const RelTable &a, const RelTable &b, int q)
{
    ASSERT_EQ(a.numColumns(), b.numColumns()) << "q" << q;
    ASSERT_EQ(a.numRows(), b.numRows()) << "q" << q;
    for (int c = 0; c < a.numColumns(); ++c) {
        const RelColumn &ca = a.col(c);
        const RelColumn &cb = b.col(c);
        ASSERT_EQ(ca.name, cb.name) << "q" << q;
        ASSERT_EQ(ca.type, cb.type) << "q" << q << " " << ca.name;
        if (ca.type == ColumnType::Varchar) {
            for (std::int64_t i = 0; i < ca.size(); ++i) {
                ASSERT_EQ(ca.str(i), cb.str(i))
                    << "q" << q << " " << ca.name << " row " << i;
            }
        } else {
            ASSERT_EQ(*ca.vals, *cb.vals) << "q" << q << " " << ca.name;
        }
    }
}

/** Exact (not approximate) equality: same FP accumulation order. */
void
expectMetricsIdentical(const EngineMetrics &a, const EngineMetrics &b,
                       int q)
{
    EXPECT_EQ(a.rowOps, b.rowOps) << "q" << q;
    EXPECT_EQ(a.seqRowOps, b.seqRowOps) << "q" << q;
    EXPECT_EQ(a.flashBytesRead, b.flashBytesRead) << "q" << q;
    EXPECT_EQ(a.touchedBaseBytes, b.touchedBaseBytes) << "q" << q;
    EXPECT_EQ(a.peakIntermediateBytes, b.peakIntermediateBytes)
        << "q" << q;
    EXPECT_EQ(a.totalIntermediateBytes, b.totalIntermediateBytes)
        << "q" << q;
}

/** Generate + run the probe queries at the current pool parallelism. */
struct RunArtifacts
{
    TpchDatabase db;
    std::vector<RelTable> results;
    std::vector<EngineMetrics> metrics;
};

RunArtifacts
runEverything()
{
    RunArtifacts out;
    TpchConfig cfg;
    cfg.scaleFactor = kSf;
    out.db = TpchDatabase::generate(cfg);
    Catalog catalog;
    for (auto t : {out.db.region, out.db.nation, out.db.supplier,
                   out.db.customer, out.db.part, out.db.partsupp,
                   out.db.orders, out.db.lineitem})
        catalog.put(t, nullptr);
    for (int q : kQueries) {
        Executor ex(catalog);
        out.results.push_back(ex.run(tpchQuery(q, kSf)));
        out.metrics.push_back(ex.metrics());
    }
    return out;
}

class ParallelDeterminism : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        ThreadPool::setGlobalParallelism(
            ThreadPool::configuredParallelism());
        // Restore whatever AQUOMAN_BATCH asked for, even on failure.
        const char *env = std::getenv("AQUOMAN_BATCH");
        setBatchExecutionEnabled(env == nullptr
                                 || std::string_view(env) != "0");
    }
};

TEST_F(ParallelDeterminism, SerialAndParallelRunsAreBitIdentical)
{
    ThreadPool::setGlobalParallelism(1);
    RunArtifacts serial = runEverything();

    ThreadPool::setGlobalParallelism(4);
    RunArtifacts parallel = runEverything();

    expectTablesIdentical(*serial.db.region, *parallel.db.region);
    expectTablesIdentical(*serial.db.nation, *parallel.db.nation);
    expectTablesIdentical(*serial.db.supplier, *parallel.db.supplier);
    expectTablesIdentical(*serial.db.customer, *parallel.db.customer);
    expectTablesIdentical(*serial.db.part, *parallel.db.part);
    expectTablesIdentical(*serial.db.partsupp, *parallel.db.partsupp);
    expectTablesIdentical(*serial.db.orders, *parallel.db.orders);
    expectTablesIdentical(*serial.db.lineitem, *parallel.db.lineitem);

    for (std::size_t i = 0; i < kQueries.size(); ++i) {
        expectRelTablesIdentical(serial.results[i], parallel.results[i],
                                 kQueries[i]);
        expectMetricsIdentical(serial.metrics[i], parallel.metrics[i],
                               kQueries[i]);
    }
}

/**
 * The batch engine's central contract: vectorized execution is a pure
 * wall-clock optimization. Query results AND the modelled metrics must
 * be bit-identical to the scalar-oracle interpreter, at every thread
 * count (the batch paths and morsel parallelism compose).
 */
TEST_F(ParallelDeterminism, BatchAndScalarEnginesAreBitIdentical)
{
    setBatchExecutionEnabled(false);
    ThreadPool::setGlobalParallelism(1);
    RunArtifacts scalar = runEverything();

    setBatchExecutionEnabled(true);
    ThreadPool::setGlobalParallelism(1);
    RunArtifacts batched = runEverything();
    ThreadPool::setGlobalParallelism(4);
    RunArtifacts batched_mt = runEverything();

    for (std::size_t i = 0; i < kQueries.size(); ++i) {
        expectRelTablesIdentical(scalar.results[i], batched.results[i],
                                 kQueries[i]);
        expectMetricsIdentical(scalar.metrics[i], batched.metrics[i],
                               kQueries[i]);
        expectRelTablesIdentical(scalar.results[i],
                                 batched_mt.results[i], kQueries[i]);
        expectMetricsIdentical(scalar.metrics[i], batched_mt.metrics[i],
                               kQueries[i]);
    }
}

/** Thread counts beyond the partition widths must not change output. */
TEST_F(ParallelDeterminism, OddThreadCountsAgreeOnDbgen)
{
    TpchConfig cfg;
    cfg.scaleFactor = kSf / 2;

    ThreadPool::setGlobalParallelism(1);
    TpchDatabase one = TpchDatabase::generate(cfg);
    ThreadPool::setGlobalParallelism(3);
    TpchDatabase three = TpchDatabase::generate(cfg);
    ThreadPool::setGlobalParallelism(7);
    TpchDatabase seven = TpchDatabase::generate(cfg);

    expectTablesIdentical(*one.lineitem, *three.lineitem);
    expectTablesIdentical(*one.lineitem, *seven.lineitem);
    expectTablesIdentical(*one.orders, *seven.orders);
    expectTablesIdentical(*one.customer, *seven.customer);
}

} // namespace
} // namespace aquoman::tpch
