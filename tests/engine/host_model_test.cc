/** @file Unit tests for the analytic host performance model. */

#include <gtest/gtest.h>

#include "engine/host_model.hh"

namespace aquoman {
namespace {

EngineMetrics
ioBoundTrace()
{
    EngineMetrics m;
    m.flashBytesRead = 240ll << 30;   // 240GB scan
    m.touchedBaseBytes = 240ll << 30;
    m.rowOps = 1e9;                   // trivial compute
    return m;
}

EngineMetrics
cpuBoundTrace()
{
    EngineMetrics m;
    m.flashBytesRead = 1 << 20;
    m.rowOps = 1e12;
    return m;
}

TEST(HostModelTest, IoBoundQueriesIgnoreThreadCount)
{
    HostModel s(HostConfig::small());
    HostModel l(HostConfig::large());
    EngineMetrics m = ioBoundTrace();
    double rs = s.estimate(m).runtime;
    double rl = l.estimate(m).runtime;
    // Both saturate the same 2.4GB/s SSDs.
    EXPECT_NEAR(rs, rl, rs * 0.01);
    EXPECT_NEAR(rl, (240.0 * (1ll << 30)) / 2.4e9, 2.0);
}

TEST(HostModelTest, CpuBoundQueriesScaleWithThreads)
{
    HostModel s(HostConfig::small());
    HostModel l(HostConfig::large());
    EngineMetrics m = cpuBoundTrace();
    double rs = s.estimate(m).runtime;
    double rl = l.estimate(m).runtime;
    // 32 threads vs 4 threads with parallel efficiency 0.8.
    EXPECT_GT(rs / rl, 5.0);
    EXPECT_LT(rs / rl, 8.5);
}

TEST(HostModelTest, SequentialWorkDefeatsParallelism)
{
    EngineMetrics m = cpuBoundTrace();
    m.seqRowOps = m.rowOps; // all sequential
    HostModel s(HostConfig::small());
    HostModel l(HostConfig::large());
    EXPECT_NEAR(s.estimate(m).runtime, l.estimate(m).runtime, 1e-6);
}

TEST(HostModelTest, IntermediateSpillAddsSwapIo)
{
    EngineMetrics m;
    m.peakIntermediateBytes = 20ll << 30; // exceeds small host's 16GB
    HostModel s(HostConfig::small());
    HostModel l(HostConfig::large());
    EXPECT_GT(s.estimate(m).ioTime, 0.0);
    EXPECT_EQ(l.estimate(m).ioTime, 0.0); // fits 128GB, no swap
}

TEST(HostModelTest, CleanBasePagesDoNotSwap)
{
    EngineMetrics m;
    m.touchedBaseBytes = 300ll << 30; // streaming scan way over DRAM
    m.flashBytesRead = 300ll << 30;
    HostModel s(HostConfig::small());
    double pure_scan = (300.0 * (1ll << 30)) / 2.4e9;
    EXPECT_NEAR(s.estimate(m).ioTime, pure_scan, 1.0);
}

TEST(HostModelTest, RssCappedByDram)
{
    EngineMetrics m;
    m.touchedBaseBytes = 300ll << 30;
    m.peakIntermediateBytes = 50ll << 30;
    HostModel s(HostConfig::small());
    HostModel l(HostConfig::large());
    EXPECT_EQ(s.estimate(m).maxRss, HostConfig::small().dramBytes);
    EXPECT_EQ(l.estimate(m).maxRss, HostConfig::large().dramBytes);
    EngineMetrics tiny;
    tiny.touchedBaseBytes = 1 << 20;
    EXPECT_EQ(l.estimate(tiny).maxRss, 1 << 20);
}

TEST(HostModelTest, TableVIConfigs)
{
    HostConfig s = HostConfig::small();
    EXPECT_EQ(s.hardwareThreads, 4);
    EXPECT_EQ(s.dramBytes, 16ll << 30);
    HostConfig l = HostConfig::large();
    EXPECT_EQ(l.hardwareThreads, 32);
    EXPECT_EQ(l.dramBytes, 128ll << 30);
}

} // namespace
} // namespace aquoman
