/** @file
 * Workload-generator contract tests: drawn substitution parameters stay
 * inside the dbgen value domains for every (seed, query, instance);
 * identical seeds reproduce byte-identical parameter streams in any
 * generation order; instance 0 is pinned to the validation parameters;
 * generated instances execute end-to-end on the engine; and the arrival
 * processes / tenant-mix traces are deterministic, strictly ordered,
 * and hit their configured mean rates.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/date.hh"
#include "engine/executor.hh"
#include "tpch/dbgen.hh"
#include "workload/arrivals.hh"
#include "workload/tenant_mix.hh"
#include "workload/tpch_params.hh"

namespace aquoman::workload {
namespace {

using tpch::TpchQueryParams;

/** Every field of a parameter set, rendered to one comparable string. */
std::string
fingerprint(const TpchQueryParams &p)
{
    std::ostringstream os;
    os << p.q1CutoffDate << '|' << p.q2Size << '|' << p.q2TypeSuffix
       << '|' << p.q2Region << '|' << p.q3Segment << '|' << p.q3Date
       << '|' << p.q4StartDate << '|' << p.q5Region << '|'
       << p.q5StartDate << '|' << p.q6StartDate << '|'
       << p.q6DiscountCents << '|' << p.q6Quantity << '|' << p.q7Nation1
       << '|' << p.q7Nation2 << '|' << p.q8Nation << '|' << p.q8Region
       << '|' << p.q8Type << '|' << p.q9Color << '|' << p.q10StartDate
       << '|' << p.q11Nation << '|' << p.q12Mode1 << '|' << p.q12Mode2
       << '|' << p.q12StartDate << '|' << p.q14StartDate << '|'
       << p.q15StartDate << '|' << p.q16Brand << '|' << p.q16TypePrefix;
    for (std::int64_t s : p.q16Sizes)
        os << ',' << s;
    os << '|' << p.q17Brand << '|' << p.q17Container << '|'
       << p.q18Quantity << '|' << p.q19Brand1 << '|' << p.q19Brand2
       << '|' << p.q19Brand3 << '|' << p.q19Qty1 << '|' << p.q19Qty2
       << '|' << p.q19Qty3 << '|' << p.q20Color << '|' << p.q20StartDate
       << '|' << p.q20Nation << '|' << p.q21Nation;
    for (std::int64_t c : p.q22Codes)
        os << ',' << c;
    return os.str();
}

TEST(TpchParams, InstanceZeroIsTheValidationParameters)
{
    for (int q = 1; q <= 22; ++q) {
        EXPECT_EQ(fingerprint(drawParams(1, q, 0)),
                  fingerprint(TpchQueryParams{}))
            << "q" << q;
        EXPECT_EQ(fingerprint(drawParams(999, q, 0)),
                  fingerprint(TpchQueryParams{}))
            << "q" << q;
    }
    EXPECT_EQ((QueryInstance{6, 0, {}}.name()), "q06");
    EXPECT_EQ((QueryInstance{6, 17, {}}.name()), "q06#17");
    EXPECT_EQ((QueryInstance{14, 3, {}}.name()), "q14#3");
}

TEST(TpchParams, DrawnParametersStayInDbgenDomains)
{
    // validateParams() fatal()s on the first out-of-domain value, so
    // surviving the sweep is the assertion.
    for (std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull})
        for (int q = 1; q <= 22; ++q)
            for (std::uint64_t i = 1; i <= 40; ++i)
                validateParams(q, drawParams(seed, q, i));
}

TEST(TpchParams, IdenticalSeedsYieldIdenticalStreams)
{
    TpchInstanceGenerator a(7, 0.01), b(7, 0.01);
    for (int q = 1; q <= 22; ++q) {
        for (std::uint64_t i = 1; i <= 10; ++i) {
            EXPECT_EQ(fingerprint(a.instance(q, i).params),
                      fingerprint(b.instance(q, i).params))
                << "q" << q << "#" << i;
        }
    }
    // Generation order is irrelevant: a fresh draw of an early index
    // after later ones is unchanged (independent sub-streams).
    std::string early = fingerprint(a.instance(6, 1).params);
    (void)a.instance(6, 1000);
    EXPECT_EQ(fingerprint(a.instance(6, 1).params), early);
}

TEST(TpchParams, DifferentSeedsAndIndicesDiverge)
{
    int seed_diffs = 0, index_diffs = 0;
    for (int q = 1; q <= 22; ++q) {
        if (q == 13) // q13 has no substitution parameters
            continue;
        for (std::uint64_t i = 1; i <= 5; ++i) {
            seed_diffs += fingerprint(drawParams(1, q, i))
                != fingerprint(drawParams(2, q, i));
            index_diffs += fingerprint(drawParams(1, q, i))
                != fingerprint(drawParams(1, q, i + 5));
        }
    }
    // Over 105 draws of multi-valued domains, collisions on every
    // draw would mean the seed / index is not reaching the stream.
    EXPECT_GT(seed_diffs, 50);
    EXPECT_GT(index_diffs, 50);
}

TEST(TpchParams, GeneratedInstancesExecuteOnTheEngine)
{
    tpch::TpchConfig cfg;
    cfg.scaleFactor = 0.01;
    tpch::TpchDatabase db = tpch::TpchDatabase::generate(cfg);
    Catalog catalog;
    for (const auto &t : {db.region, db.nation, db.supplier, db.customer,
                          db.part, db.partsupp, db.orders, db.lineitem})
        catalog.put(t, nullptr);
    db.registerMetadata(catalog);

    TpchInstanceGenerator gen(3, cfg.scaleFactor);
    for (int q : {3, 6, 12, 14}) {
        for (std::uint64_t i : {1ull, 2ull}) {
            QueryInstance inst = gen.instance(q, i);
            Executor ex(catalog);
            RelTable out = ex.run(gen.build(inst));
            EXPECT_GT(out.numColumns(), 0) << inst.name();
        }
    }
}

TEST(Arrivals, DeterministicStrictlyIncreasingWithinHorizon)
{
    for (ArrivalProcess p : {ArrivalProcess::Poisson, ArrivalProcess::OnOff,
                             ArrivalProcess::Diurnal}) {
        ArrivalConfig cfg;
        cfg.process = p;
        cfg.rateQps = 20.0;
        cfg.diurnalProfile = {0.5, 2.0, 1.0, 0.5};
        std::vector<double> a = generateArrivals(cfg, 11, 4, 50.0);
        std::vector<double> b = generateArrivals(cfg, 11, 4, 50.0);
        EXPECT_EQ(a, b) << arrivalProcessName(p);
        ASSERT_FALSE(a.empty()) << arrivalProcessName(p);
        EXPECT_GE(a.front(), 0.0);
        EXPECT_LT(a.back(), 50.0);
        for (std::size_t i = 1; i < a.size(); ++i)
            EXPECT_GT(a[i], a[i - 1]) << arrivalProcessName(p);
        // Different sub-streams give different sequences.
        EXPECT_NE(a, generateArrivals(cfg, 11, 5, 50.0))
            << arrivalProcessName(p);
    }
}

TEST(Arrivals, LongRunMeanMatchesConfiguredRate)
{
    // 20 qps over 200 s => 4000 expected; allow generous slack for the
    // bursty processes (all draws are deterministic, so this cannot
    // flake — the bounds just document the calibration). The on/off
    // cycle is shortened so ~80 burst cycles fit the horizon: the
    // long-run mean only concentrates once many cycles average out.
    for (ArrivalProcess p : {ArrivalProcess::Poisson, ArrivalProcess::OnOff,
                             ArrivalProcess::Diurnal}) {
        ArrivalConfig cfg;
        cfg.process = p;
        cfg.rateQps = 20.0;
        cfg.meanOnSec = 0.5;
        cfg.meanOffSec = 2.0;
        cfg.diurnalProfile = {0.2, 1.0, 2.0, 0.8};
        auto n = static_cast<double>(
            generateArrivals(cfg, 5, 1, 200.0).size());
        EXPECT_NEAR(n, 4000.0, 4000.0 * 0.25) << arrivalProcessName(p);
    }
}

TEST(TenantMix, TraceIsOrderedDistinctAndDeterministic)
{
    std::vector<TenantSpec> mix(2);
    mix[0].name = "a";
    mix[0].arrivals.rateQps = 30.0;
    mix[0].classes = {{6, 1.0}, {14, 2.0}};
    mix[1].name = "b";
    mix[1].arrivals.process = ArrivalProcess::OnOff;
    mix[1].arrivals.rateQps = 15.0;
    mix[1].classes = {{6, 1.0}, {1, 1.0}};

    std::vector<WorkloadEvent> trace = buildTrace(mix, 9, 40.0);
    ASSERT_GT(trace.size(), 100u);

    std::set<std::pair<int, std::uint64_t>> seen;
    std::set<int> tenants;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const WorkloadEvent &ev = trace[i];
        if (i > 0)
            EXPECT_GE(ev.atSec, trace[i - 1].atSec) << "event " << i;
        EXPECT_GE(ev.atSec, 0.0);
        EXPECT_LT(ev.atSec, 40.0);
        EXPECT_NE(ev.instance, 0u) << "instance 0 is reserved";
        // Every event is a distinct generated plan, even where the two
        // tenants share query class 6.
        EXPECT_TRUE(
            seen.emplace(ev.queryNumber, ev.instance).second)
            << "event " << i;
        tenants.insert(ev.tenant);
    }
    EXPECT_EQ(tenants.size(), 2u);

    // Byte-identical replay.
    std::vector<WorkloadEvent> again = buildTrace(mix, 9, 40.0);
    ASSERT_EQ(again.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(again[i].atSec, trace[i].atSec);
        EXPECT_EQ(again[i].tenant, trace[i].tenant);
        EXPECT_EQ(again[i].queryNumber, trace[i].queryNumber);
        EXPECT_EQ(again[i].instance, trace[i].instance);
    }
}

} // namespace
} // namespace aquoman::workload
