/** @file Unit tests for the TPC-H data generator. */

#include <gtest/gtest.h>

#include <set>

#include "common/compress_mode.hh"
#include "common/decimal.hh"
#include "tpch/dbgen.hh"
#include "tpch/text_pool.hh"

namespace aquoman::tpch {
namespace {

class DbgenTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        TpchConfig cfg;
        cfg.scaleFactor = 0.01;
        db = new TpchDatabase(TpchDatabase::generate(cfg));
    }

    static void
    TearDownTestSuite()
    {
        delete db;
        db = nullptr;
    }

    static TpchDatabase *db;
};

TpchDatabase *DbgenTest::db = nullptr;

TEST_F(DbgenTest, Cardinalities)
{
    EXPECT_EQ(db->region->numRows(), 5);
    EXPECT_EQ(db->nation->numRows(), 25);
    EXPECT_EQ(db->supplier->numRows(), 100);
    EXPECT_EQ(db->customer->numRows(), 1500);
    EXPECT_EQ(db->part->numRows(), 2000);
    EXPECT_EQ(db->partsupp->numRows(), 8000);
    EXPECT_EQ(db->orders->numRows(), 15000);
    // ~4 lineitems per order.
    EXPECT_GT(db->lineitem->numRows(), 15000 * 3);
    EXPECT_LT(db->lineitem->numRows(), 15000 * 5);
}

TEST_F(DbgenTest, PrimaryKeysAreDenseAndSorted)
{
    const Column &ck = db->customer->col("c_custkey");
    for (std::int64_t i = 0; i < ck.size(); ++i)
        EXPECT_EQ(ck.get(i), i + 1);
    EXPECT_TRUE(ck.sorted());
    const Column &ok = db->orders->col("o_orderkey");
    for (std::int64_t i = 0; i < ok.size(); ++i)
        EXPECT_EQ(ok.get(i), i + 1);
}

TEST_F(DbgenTest, ForeignKeysInRange)
{
    const Column &oc = db->orders->col("o_custkey");
    for (std::int64_t i = 0; i < oc.size(); ++i) {
        EXPECT_GE(oc.get(i), 1);
        EXPECT_LE(oc.get(i), db->customer->numRows());
    }
    const Column &lp = db->lineitem->col("l_partkey");
    const Column &ls = db->lineitem->col("l_suppkey");
    for (std::int64_t i = 0; i < lp.size(); ++i) {
        EXPECT_GE(lp.get(i), 1);
        EXPECT_LE(lp.get(i), db->part->numRows());
        EXPECT_GE(ls.get(i), 1);
        EXPECT_LE(ls.get(i), db->supplier->numRows());
    }
}

TEST_F(DbgenTest, LineitemSuppliersComeFromPartsupp)
{
    // Every (l_partkey, l_suppkey) combination must exist in partsupp.
    std::set<std::pair<std::int64_t, std::int64_t>> ps;
    const Column &pk = db->partsupp->col("ps_partkey");
    const Column &sk = db->partsupp->col("ps_suppkey");
    for (std::int64_t i = 0; i < pk.size(); ++i)
        ps.emplace(pk.get(i), sk.get(i));
    const Column &lp = db->lineitem->col("l_partkey");
    const Column &ls = db->lineitem->col("l_suppkey");
    for (std::int64_t i = 0; i < lp.size(); ++i)
        ASSERT_TRUE(ps.count({lp.get(i), ls.get(i)}));
}

TEST_F(DbgenTest, DatesRespectSpecOrdering)
{
    const Column &od = db->orders->col("o_orderdate");
    const Column &lo = db->lineitem->col("l_orderkey");
    const Column &sd = db->lineitem->col("l_shipdate");
    const Column &rd = db->lineitem->col("l_receiptdate");
    for (std::int64_t i = 0; i < lo.size(); ++i) {
        std::int64_t order_date = od.get(lo.get(i) - 1);
        EXPECT_GT(sd.get(i), order_date);
        EXPECT_GT(rd.get(i), sd.get(i));
        EXPECT_LE(rd.get(i), kEndDate);
    }
    for (std::int64_t i = 0; i < od.size(); ++i) {
        EXPECT_GE(od.get(i), kStartDate);
        EXPECT_LE(od.get(i), kEndDate);
    }
}

TEST_F(DbgenTest, ReturnFlagAndLineStatusFollowDates)
{
    const Column &rf = db->lineitem->col("l_returnflag");
    const Column &ls = db->lineitem->col("l_linestatus");
    const Column &sd = db->lineitem->col("l_shipdate");
    const Column &rd = db->lineitem->col("l_receiptdate");
    for (std::int64_t i = 0; i < rf.size(); ++i) {
        auto flag = db->lineitem->getString(rf, i);
        auto status = db->lineitem->getString(ls, i);
        if (rd.get(i) <= kCurrentDate)
            EXPECT_TRUE(flag == "R" || flag == "A");
        else
            EXPECT_EQ(flag, "N");
        EXPECT_EQ(status, sd.get(i) <= kCurrentDate ? "F" : "O");
    }
}

TEST_F(DbgenTest, ExtendedPriceFormula)
{
    const Column &lq = db->lineitem->col("l_quantity");
    const Column &lp = db->lineitem->col("l_partkey");
    const Column &le = db->lineitem->col("l_extendedprice");
    const Column &pr = db->part->col("p_retailprice");
    for (std::int64_t i = 0; i < lq.size(); ++i) {
        std::int64_t qty_units = lq.get(i) / kDecimalScale;
        EXPECT_EQ(le.get(i), qty_units * pr.get(lp.get(i) - 1));
    }
}

TEST_F(DbgenTest, TotalPriceMatchesLineitems)
{
    // o_totalprice == sum(extprice * (1+tax) * (1-disc)) per order.
    std::vector<std::int64_t> sums(db->orders->numRows(), 0);
    const auto &li = *db->lineitem;
    for (std::int64_t i = 0; i < li.numRows(); ++i) {
        std::int64_t v = decimalMul(
            decimalMul(li.col("l_extendedprice").get(i),
                       100 + li.col("l_tax").get(i)),
            100 - li.col("l_discount").get(i));
        sums[li.col("l_orderkey").get(i) - 1] += v;
    }
    const Column &tp = db->orders->col("o_totalprice");
    for (std::int64_t i = 0; i < tp.size(); ++i)
        EXPECT_EQ(tp.get(i), sums[i]);
}

TEST_F(DbgenTest, StringDomainsMatchSpecPools)
{
    const Column &seg = db->customer->col("c_mktsegment");
    for (std::int64_t i = 0; i < seg.size(); ++i) {
        auto s = db->customer->getString(seg, i);
        EXPECT_TRUE(std::find(kSegments.begin(), kSegments.end(), s)
                    != kSegments.end());
    }
    // p_type has at most 6*5*5 distinct values, so its heap is small
    // (regex-accelerator friendly); p_name's heap is large.
    EXPECT_LE(db->part->strings().numStrings(), 200000);
    const Column &brand = db->part->col("p_brand");
    for (std::int64_t i = 0; i < std::min<std::int64_t>(brand.size(), 100);
         ++i) {
        auto b = db->part->getString(brand, i);
        EXPECT_EQ(b.substr(0, 6), "Brand#");
    }
}

TEST_F(DbgenTest, PhoneCountryCodeEncodesNation)
{
    const Column &ph = db->customer->col("c_phone");
    const Column &nk = db->customer->col("c_nationkey");
    for (std::int64_t i = 0; i < ph.size(); ++i) {
        auto p = db->customer->getString(ph, i);
        EXPECT_EQ(std::stoi(std::string(p.substr(0, 2))),
                  10 + nk.get(i));
    }
}

TEST_F(DbgenTest, DeterministicForSameSeed)
{
    TpchConfig cfg;
    cfg.scaleFactor = 0.001;
    auto a = TpchDatabase::generate(cfg);
    auto b = TpchDatabase::generate(cfg);
    ASSERT_EQ(a.lineitem->numRows(), b.lineitem->numRows());
    for (std::int64_t i = 0; i < a.lineitem->numRows(); ++i) {
        EXPECT_EQ(a.lineitem->col("l_extendedprice").get(i),
                  b.lineitem->col("l_extendedprice").get(i));
    }
}

TEST_F(DbgenTest, InstallIntoPersistsAllTables)
{
    FlashConfig fc;
    fc.capacityBytes = 1ll << 30;
    FlashDevice dev(fc);
    ControllerSwitch sw(dev);
    TableStore store(sw);
    Catalog cat;
    db->installInto(cat, store);
    EXPECT_TRUE(cat.has("lineitem"));
    EXPECT_TRUE(cat.has("region"));
    EXPECT_EQ(cat.get("orders").densePrimaryKey, "o_orderkey");
    EXPECT_EQ(cat.get("lineitem").densePrimaryKey, "");
    EXPECT_EQ(cat.get("lineitem").fkRowIdTargets.at("l_orderkey"),
              "orders");
    // Flash now holds the whole database: page-padded raw bytes when
    // uncompressed, strictly fewer bytes than logical when the column
    // encodings are on (TPC-H compresses well past the page padding).
    std::int64_t flash_bytes = dev.allocatedPages() * fc.pageBytes;
    EXPECT_GT(flash_bytes, 0);
    if (compressionEnabled())
        EXPECT_LT(flash_bytes, db->storedBytes());
    else
        EXPECT_GT(flash_bytes, db->storedBytes());
}

} // namespace
} // namespace aquoman::tpch
