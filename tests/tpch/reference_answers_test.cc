/** @file
 * Independent brute-force reference computations for additional TPC-H
 * queries (complementing queries_test.cc): each query's engine answer
 * is recomputed with plain loops over the generated tables, giving a
 * third implementation to triangulate the engine and device paths.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "engine/executor.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

namespace aquoman::tpch {
namespace {

constexpr double kSf = 0.01;

class ReferenceAnswersTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        TpchConfig cfg;
        cfg.scaleFactor = kSf;
        db = new TpchDatabase(TpchDatabase::generate(cfg));
        catalog = new Catalog();
        for (auto t : {db->region, db->nation, db->supplier, db->customer,
                       db->part, db->partsupp, db->orders, db->lineitem})
            catalog->put(t, nullptr);
    }

    static void
    TearDownTestSuite()
    {
        delete catalog;
        delete db;
    }

    RelTable
    run(int q)
    {
        Executor ex(*catalog);
        return ex.run(tpchQuery(q, kSf));
    }

    static TpchDatabase *db;
    static Catalog *catalog;
};

TpchDatabase *ReferenceAnswersTest::db = nullptr;
Catalog *ReferenceAnswersTest::catalog = nullptr;

TEST_F(ReferenceAnswersTest, Q4SemiJoinCounts)
{
    RelTable out = run(4);
    // Reference: orders in the quarter with >=1 late-commit lineitem.
    const auto &ord = *db->orders;
    const auto &li = *db->lineitem;
    std::set<std::int64_t> late_orders;
    for (std::int64_t i = 0; i < li.numRows(); ++i) {
        if (li.col("l_commitdate").get(i)
                < li.col("l_receiptdate").get(i))
            late_orders.insert(li.col("l_orderkey").get(i));
    }
    std::map<std::string, std::int64_t> want;
    std::int32_t lo = parseDate("1993-07-01");
    std::int32_t hi = parseDate("1993-10-01");
    for (std::int64_t i = 0; i < ord.numRows(); ++i) {
        std::int64_t d = ord.col("o_orderdate").get(i);
        if (d >= lo && d < hi
                && late_orders.count(ord.col("o_orderkey").get(i))) {
            want[std::string(ord.getString(ord.col("o_orderpriority"),
                                           i))]++;
        }
    }
    ASSERT_EQ(out.numRows(),
              static_cast<std::int64_t>(want.size()));
    for (std::int64_t r = 0; r < out.numRows(); ++r) {
        std::string pr(out.col("o_orderpriority").str(r));
        EXPECT_EQ(out.col("order_count").get(r), want[pr]) << pr;
    }
}

TEST_F(ReferenceAnswersTest, Q5RevenuePerAsianNation)
{
    RelTable out = run(5);
    const auto &li = *db->lineitem;
    const auto &ord = *db->orders;
    const auto &cust = *db->customer;
    const auto &supp = *db->supplier;
    const auto &nat = *db->nation;
    const auto &reg = *db->region;
    // nationkey -> name for nations in ASIA.
    std::map<std::int64_t, std::string> asia;
    for (std::int64_t n = 0; n < nat.numRows(); ++n) {
        std::int64_t rk = nat.col("n_regionkey").get(n);
        if (reg.getString(reg.col("r_name"), rk) == "ASIA")
            asia[n] = std::string(nat.getString(nat.col("n_name"), n));
    }
    std::int32_t lo = parseDate("1994-01-01");
    std::int32_t hi = parseDate("1995-01-01");
    std::map<std::string, std::int64_t> want;
    for (std::int64_t i = 0; i < li.numRows(); ++i) {
        std::int64_t o = li.col("l_orderkey").get(i) - 1;
        std::int64_t d = ord.col("o_orderdate").get(o);
        if (d < lo || d >= hi)
            continue;
        std::int64_t c = ord.col("o_custkey").get(o) - 1;
        std::int64_t cn = cust.col("c_nationkey").get(c);
        std::int64_t s = li.col("l_suppkey").get(i) - 1;
        std::int64_t sn = supp.col("s_nationkey").get(s);
        if (cn != sn || !asia.count(cn))
            continue;
        want[asia[cn]] +=
            decimalMul(li.col("l_extendedprice").get(i),
                       100 - li.col("l_discount").get(i));
    }
    ASSERT_EQ(out.numRows(), 5); // all five ASIA nations group
    std::int64_t prev = std::numeric_limits<std::int64_t>::max();
    for (std::int64_t r = 0; r < out.numRows(); ++r) {
        std::string n(out.col("n_name").str(r));
        EXPECT_EQ(out.col("revenue").get(r), want[n]) << n;
        EXPECT_LE(out.col("revenue").get(r), prev); // ordered desc
        prev = out.col("revenue").get(r);
    }
}

TEST_F(ReferenceAnswersTest, Q12ShipmodePriorityCounts)
{
    RelTable out = run(12);
    const auto &li = *db->lineitem;
    const auto &ord = *db->orders;
    std::int32_t lo = parseDate("1994-01-01");
    std::int32_t hi = parseDate("1995-01-01");
    std::map<std::string, std::pair<std::int64_t, std::int64_t>> want;
    for (std::int64_t i = 0; i < li.numRows(); ++i) {
        auto mode = li.getString(li.col("l_shipmode"), i);
        if (mode != "MAIL" && mode != "SHIP")
            continue;
        std::int64_t rd = li.col("l_receiptdate").get(i);
        if (rd < lo || rd >= hi)
            continue;
        if (li.col("l_commitdate").get(i) >= rd)
            continue;
        if (li.col("l_shipdate").get(i)
                >= li.col("l_commitdate").get(i))
            continue;
        std::int64_t o = li.col("l_orderkey").get(i) - 1;
        auto pr = ord.getString(ord.col("o_orderpriority"), o);
        bool high = pr == "1-URGENT" || pr == "2-HIGH";
        auto &slot = want[std::string(mode)];
        (high ? slot.first : slot.second)++;
    }
    ASSERT_EQ(out.numRows(),
              static_cast<std::int64_t>(want.size()));
    for (std::int64_t r = 0; r < out.numRows(); ++r) {
        std::string mode(out.col("l_shipmode").str(r));
        EXPECT_EQ(out.col("high_line_count").get(r), want[mode].first)
            << mode;
        EXPECT_EQ(out.col("low_line_count").get(r), want[mode].second)
            << mode;
    }
}

TEST_F(ReferenceAnswersTest, Q19DiscountedRevenue)
{
    RelTable out = run(19);
    const auto &li = *db->lineitem;
    const auto &part = *db->part;
    std::int64_t want = 0;
    for (std::int64_t i = 0; i < li.numRows(); ++i) {
        auto mode = li.getString(li.col("l_shipmode"), i);
        if (mode != "AIR" && mode != "REG AIR")
            continue;
        if (li.getString(li.col("l_shipinstruct"), i)
                != "DELIVER IN PERSON")
            continue;
        std::int64_t p = li.col("l_partkey").get(i) - 1;
        auto brand = part.getString(part.col("p_brand"), p);
        auto container = part.getString(part.col("p_container"), p);
        std::int64_t qty = li.col("l_quantity").get(i) / kDecimalScale;
        std::int64_t size = part.col("p_size").get(p);
        auto in = [&](std::string_view pfx) {
            return container.substr(0, pfx.size()) == pfx;
        };
        bool c1 = brand == "Brand#12" && in("SM") && qty >= 1
            && qty <= 11 && size >= 1 && size <= 5
            && container != "SM CAN" && container != "SM DRUM"
            && container != "SM BAG" && container != "SM JAR";
        bool c2 = brand == "Brand#23"
            && (container == "MED BAG" || container == "MED BOX"
                || container == "MED PKG" || container == "MED PACK")
            && qty >= 10 && qty <= 20 && size >= 1 && size <= 10;
        bool c3 = brand == "Brand#34"
            && (container == "LG CASE" || container == "LG BOX"
                || container == "LG PACK" || container == "LG PKG")
            && qty >= 20 && qty <= 30 && size >= 1 && size <= 15;
        // c1 uses the explicit 4-container list, like the query.
        c1 = brand == "Brand#12"
            && (container == "SM CASE" || container == "SM BOX"
                || container == "SM PACK" || container == "SM PKG")
            && qty >= 1 && qty <= 11 && size >= 1 && size <= 5;
        if (c1 || c2 || c3) {
            want += decimalMul(li.col("l_extendedprice").get(i),
                               100 - li.col("l_discount").get(i));
        }
    }
    ASSERT_EQ(out.numRows(), 1);
    EXPECT_EQ(out.col("revenue").get(0), want);
}

TEST_F(ReferenceAnswersTest, Q2MinimumCostSupplierInvariant)
{
    RelTable out = run(2);
    // Every reported (part, supplier) pair must carry the true minimum
    // supply cost among that part's EUROPE suppliers.
    const auto &ps = *db->partsupp;
    const auto &supp = *db->supplier;
    const auto &nat = *db->nation;
    const auto &reg = *db->region;
    auto in_europe = [&](std::int64_t suppkey) {
        std::int64_t n = supp.col("s_nationkey").get(suppkey - 1);
        std::int64_t r = nat.col("n_regionkey").get(n);
        return reg.getString(reg.col("r_name"), r) == "EUROPE";
    };
    std::map<std::int64_t, std::int64_t> min_cost;
    for (std::int64_t i = 0; i < ps.numRows(); ++i) {
        if (!in_europe(ps.col("ps_suppkey").get(i)))
            continue;
        std::int64_t pk = ps.col("ps_partkey").get(i);
        std::int64_t cost = ps.col("ps_supplycost").get(i);
        auto it = min_cost.find(pk);
        if (it == min_cost.end() || cost < it->second)
            min_cost[pk] = cost;
    }
    const auto &part = *db->part;
    for (std::int64_t r = 0; r < out.numRows(); ++r) {
        std::int64_t pk = out.col("out_partkey").get(r);
        EXPECT_EQ(part.col("p_size").get(pk - 1), 15);
        ASSERT_TRUE(min_cost.count(pk));
    }
}

} // namespace
} // namespace aquoman::tpch
